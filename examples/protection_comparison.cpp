/**
 * @file
 * Protection-scheme comparison on a custom workload: runs a short
 * netperf-style experiment of your shape under all five schemes and
 * prints throughput / CPU / memory-bandwidth side by side.
 *
 * Usage:  build/examples/protection_comparison [instances] [segKiB]
 *         [rx|tx|bidi]
 * e.g.    build/examples/protection_comparison 8 64 bidi
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "workloads/netperf.hh"

using namespace damn;

int
main(int argc, char **argv)
{
    unsigned instances = 8;
    unsigned seg_kib = 64;
    work::NetMode mode = work::NetMode::Bidi;
    if (argc > 1)
        instances = unsigned(std::atoi(argv[1]));
    if (argc > 2)
        seg_kib = unsigned(std::atoi(argv[2]));
    if (argc > 3) {
        if (!std::strcmp(argv[3], "rx"))
            mode = work::NetMode::Rx;
        else if (!std::strcmp(argv[3], "tx"))
            mode = work::NetMode::Tx;
    }

    std::printf("netperf TCP-STREAM: %u instances, %u KiB aggregates, "
                "%s\n\n",
                instances, seg_kib,
                mode == work::NetMode::Rx   ? "RX"
                : mode == work::NetMode::Tx ? "TX"
                                            : "bidirectional");
    std::printf("%-10s %10s %10s %10s %12s %14s\n", "scheme", "Gb/s",
                "RX Gb/s", "TX Gb/s", "CPU%", "mem BW GB/s");
    std::printf("%s\n", std::string(70, '-').c_str());

    for (const auto scheme :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Deferred,
          dma::SchemeKind::Strict, dma::SchemeKind::Shadow,
          dma::SchemeKind::Damn}) {
        work::NetperfOpts o;
        o.scheme = scheme;
        o.mode = mode;
        o.instances = instances;
        o.segBytes = seg_kib * 1024;
        o.costFactor = instances >= 16
            ? o.sysParams.cost.multiFlowFactor
            : 1.0 + (o.sysParams.cost.multiFlowFactor - 1.0) *
                  instances / 16.0;
        const auto run = work::runNetperf(o);
        std::printf("%-10s %10.1f %10.1f %10.1f %11.1f%% %14.1f\n",
                    dma::schemeKindName(scheme), run.res.totalGbps,
                    run.res.rxGbps, run.res.txGbps, run.res.cpuPct,
                    run.res.memGBps);
    }

    std::printf("\nShapes to look for (paper, sections 4 & 6):\n"
                " - damn tracks iommu-off within a few percent;\n"
                " - strict pays synchronous IOTLB invalidations "
                "(single-core) and the\n"
                "   invalidation-queue lock (multi-core, capping near "
                "80 Gb/s);\n"
                " - shadow pays a copy per DMAed byte: ~2x CPU, and at "
                "bidirectional\n"
                "   line rate it saturates the ~80 GB/s memory "
                "controllers.\n");
    return 0;
}
