/**
 * @file
 * DMA attack demonstration: replay the three classic attacks from the
 * paper's motivation against every protection scheme and print what a
 * malicious NIC actually managed to do.
 *
 *   1. co-location theft  — read an unrelated kmalloc'ed secret that
 *      shares a page with a mapped packet buffer;
 *   2. stale-window theft — replay an old DMA address after dma_unmap,
 *      once the kernel reused the memory for a secret;
 *   3. TOCTTOU            — rewrite packet bytes after the OS checked
 *      them but before it used them.
 *
 * Run:  build/examples/attack_demo
 */

#include <cstdio>

#include "workloads/attacks.hh"

using namespace damn;

int
main()
{
    std::printf("Replaying DMA attacks against each protection scheme\n");
    std::printf("(every cell is a live attack against real buffers)\n\n");
    std::printf("%-10s %22s %22s %14s\n", "scheme", "co-location theft",
                "stale-window theft", "TOCTTOU");
    std::printf("%s\n", std::string(72, '-').c_str());

    for (const auto scheme :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Deferred,
          dma::SchemeKind::Strict, dma::SchemeKind::Shadow,
          dma::SchemeKind::Damn}) {
        const work::AttackReport r = work::runAttacks(scheme);
        const auto verdict = [](bool succeeded) {
            return succeeded ? "STOLEN/FORGED" : "blocked";
        };
        std::printf("%-10s %22s %22s %14s\n",
                    dma::schemeKindName(scheme),
                    verdict(r.colocationTheft),
                    verdict(r.staleWindowTheft), verdict(r.tocttou));
    }

    std::printf(
        "\nReading the table:\n"
        " - iommu-off: no protection; everything succeeds.\n"
        " - deferred (the Linux default): page-granularity mappings\n"
        "   leak co-located data, and the batched IOTLB flush leaves\n"
        "   a window for stale-address replays and TOCTTOU.\n"
        " - strict: closes the windows at great cost (figure 4/5),\n"
        "   but page granularity still leaks co-located data.\n"
        " - shadow buffers: full protection, paid for with a copy of\n"
        "   every DMAed byte.\n"
        " - damn: full protection -- secrets can never share pages\n"
        "   with DMA buffers, stale replays only ever see packet\n"
        "   memory, and OS-checked bytes are copied out of the\n"
        "   device's reach on first access.\n");
    return 0;
}
