/**
 * @file
 * Quickstart: the DAMN allocator in five minutes.
 *
 * Builds a simulated machine with DAMN as the protection scheme,
 * allocates packet buffers through the paper's Table-2 API, shows the
 * metadata-carrying IOVA encoding, performs a device DMA against the
 * permanent mapping, and exercises the shrinker.
 *
 * Run:  build/examples/quickstart
 */

#include <cstdio>

#include "net/nic.hh"

using namespace damn;

int
main()
{
    // 1. A simulated machine: 28 cores, IOMMU on, DAMN wired in as the
    //    DMA-API interposition layer with a deferred fallback.
    net::SystemParams params;
    params.scheme = dma::SchemeKind::Damn;
    net::System sys(params);
    net::NicDevice nic(sys, "mlx5_0");

    std::printf("machine: %u cores, %u NUMA nodes, IOMMU %s\n",
                sys.ctx.machine.numCores(), sys.ctx.machine.numSockets(),
                sys.mmu.enabled() ? "on" : "off");

    // 2. Allocate a receive buffer: device-writable, permanently
    //    IOMMU-mapped, zeroed (paper Table 2).
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    const mem::Pa rx_buf =
        sys.damn->damnAlloc(cpu, &nic, core::Rights::Write, 4096);
    const iommu::Iova rx_iova = sys.damn->iovaOf(rx_buf);

    std::printf("\ndamn_alloc(dev=mlx5_0, WRITE, 4096):\n");
    std::printf("  kernel address : 0x%llx\n",
                (unsigned long long)rx_buf);
    std::printf("  permanent IOVA : 0x%llx\n",
                (unsigned long long)rx_iova);

    // 3. The IOVA encodes its allocator (figure 3).
    const core::IovaFields f = core::decodeIova(rx_iova);
    std::printf("  decoded        : cpu=%u rights=%s dev=%u numa=%u "
                "offset=0x%llx\n",
                f.cpu, core::rightsName(f.rights), f.devIdx, f.numa,
                (unsigned long long)f.offset);

    // 4. The device can DMA into it right now — no dma_map needed.
    const char payload[] = "packet payload via permanent mapping";
    const dma::DmaOutcome dma =
        nic.dmaWrite(0, rx_iova, payload, sizeof(payload));
    char readback[sizeof(payload)] = {};
    sys.phys.read(rx_buf, readback, sizeof(readback));
    std::printf("\ndevice DMA write: %s -> buffer holds \"%s\"\n",
                dma.ok ? "ok" : "FAULT", readback);

    // 5. ...but only with the granted rights: reads fault (Rights::Write).
    char probe[8];
    const dma::DmaOutcome steal = nic.dmaRead(0, rx_iova, probe, 8);
    std::printf("device DMA read of a WRITE-only buffer: %s\n",
                steal.fault ? "blocked by the IOMMU" : "PROBLEM!");

    // 6. The unmodified driver still calls dma_map/dma_unmap; DAMN's
    //    interposition recognizes its buffers and returns immediately.
    const iommu::Iova mapped =
        sys.dmaApi->map(cpu, nic, rx_buf, 4096, dma::Dir::FromDevice);
    std::printf("\ndma_map through the interposed DMA API: 0x%llx "
                "(same permanent IOVA: %s)\n",
                (unsigned long long)mapped,
                mapped == rx_iova ? "yes" : "no");
    sys.dmaApi->unmap(cpu, nic, mapped, 4096, dma::Dir::FromDevice);

    // 7. Free; the chunk recycles inside DAMN's DMA cache.
    sys.damn->damnFree(cpu, rx_buf);
    std::printf("\nafter damn_free: DMA cache owns %llu KiB "
                "(recycled, still mapped)\n",
                (unsigned long long)(sys.damn->ownedBytes() / 1024));

    // 8. Memory pressure: the shrinker returns cached chunks to the OS
    //    and flushes the IOTLB.
    const std::uint64_t released = sys.damn->shrink(cpu);
    std::printf("shrinker released %llu KiB; DMA cache now owns %llu "
                "KiB\n",
                (unsigned long long)(released / 1024),
                (unsigned long long)(sys.damn->ownedBytes() / 1024));
    return 0;
}
