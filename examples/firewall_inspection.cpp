/**
 * @file
 * Deep packet inspection under DAMN: a netfilter firewall that reads
 * packet payloads, demonstrating the copy-on-access TOCTTOU defense
 * and its cost scaling (the figure-8 story as a runnable scenario).
 *
 * The firewall inspects HTTP-like headers inside the payload; DAMN
 * copies exactly the bytes it touches out of the device's reach, so a
 * rule decision can never be invalidated by a later device write.
 *
 * Run:  build/examples/firewall_inspection
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "net/stream.hh"

using namespace damn;

namespace {

/** Tiny HTTP-ish firewall: blocks requests whose path contains a "/admin"
 *  prefix, by inspecting the first line of the payload. */
struct Firewall
{
    unsigned allowed = 0;
    unsigned blocked = 0;

    bool
    inspect(sim::CpuCursor &cpu, net::SkBuff &skb,
            net::SkbAccessor &acc)
    {
        char line[128] = {};
        const std::uint32_t n =
            std::min<std::uint32_t>(sizeof(line) - 1,
                                    skb.len() - skb.headerLen);
        // Reading through the accessor secures these bytes first.
        acc.access(cpu, skb, skb.headerLen, n, line);
        const bool evil = std::strstr(line, "/admin") != nullptr;
        evil ? ++blocked : ++allowed;
        return !evil;
    }
};

} // namespace

int
main()
{
    net::SystemParams params;
    params.scheme = dma::SchemeKind::Damn;
    net::System sys(params);
    net::NicDevice nic(sys, "mlx5_0");
    net::TcpStack stack(sys, nic);
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);

    Firewall fw;
    bool last_verdict = false;
    stack.addHook([&](sim::CpuCursor &c, net::SkBuff &skb,
                      net::SkbAccessor &acc) {
        last_verdict = fw.inspect(c, skb, acc);
    });

    const char *requests[] = {
        "GET /index.html HTTP/1.1",
        "GET /admin/passwords HTTP/1.1",
        "POST /api/v1/items HTTP/1.1",
        "GET /admin HTTP/1.1",
    };

    std::printf("Firewall inspecting payloads through the skbuff "
                "accessor API (scheme: damn)\n\n");
    for (const char *req : requests) {
        net::RxBuffer buf = stack.driver.allocRxBuffer(cpu, 2048);
        // Wire format: 66 bytes of TCP/IP headers, then the payload.
        std::vector<std::uint8_t> wire(2048, 0);
        std::memcpy(wire.data() + 66, req, std::strlen(req));
        nic.dmaWrite(sys.ctx.now(), buf.seg.dmaAddr, wire.data(),
                     wire.size());
        const iommu::Iova dma = buf.seg.dmaAddr;

        net::SkBuff skb = stack.driver.rxBuild(cpu, buf, 2048);
        stack.rxSegment(cpu, skb, 1.0);

        // A malicious NIC now tries the classic TOCTTOU: rewrite the
        // path to something innocent-looking *after* the check.
        std::vector<std::uint8_t> forged(2048, 0);
        std::memcpy(forged.data() + 66, "GET /index.html  HTTP/1.1",
                    25);
        nic.dmaWrite(sys.ctx.now(), dma, forged.data(), forged.size());

        // What does the application layer actually see?
        char seen[64] = {};
        sys.accessor().access(cpu, skb, 66, sizeof(seen) - 1,
                              seen);
        std::printf("  %-32s verdict=%-7s app sees: \"%.30s\"\n", req,
                    last_verdict ? "ALLOW" : "BLOCK", seen);
        sys.accessor().freeSkb(cpu, skb);
    }

    std::printf("\n%u allowed, %u blocked; guard copied %llu bytes "
                "total (headers + inspected payload only).\n",
                fw.allowed, fw.blocked,
                (unsigned long long)sys.accessor().securedBytes());
    std::printf("Note the forged rewrite never reaches the OS view: "
                "inspected bytes were copied out of the device's "
                "reach at first access.\n");
    return 0;
}
