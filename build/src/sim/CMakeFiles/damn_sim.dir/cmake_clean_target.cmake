file(REMOVE_RECURSE
  "libdamn_sim.a"
)
