# Empty compiler generated dependencies file for damn_sim.
# This may be replaced when dependencies are built.
