file(REMOVE_RECURSE
  "CMakeFiles/damn_sim.dir/engine.cc.o"
  "CMakeFiles/damn_sim.dir/engine.cc.o.d"
  "libdamn_sim.a"
  "libdamn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
