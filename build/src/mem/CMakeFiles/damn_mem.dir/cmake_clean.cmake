file(REMOVE_RECURSE
  "CMakeFiles/damn_mem.dir/kmalloc.cc.o"
  "CMakeFiles/damn_mem.dir/kmalloc.cc.o.d"
  "CMakeFiles/damn_mem.dir/page_alloc.cc.o"
  "CMakeFiles/damn_mem.dir/page_alloc.cc.o.d"
  "CMakeFiles/damn_mem.dir/phys.cc.o"
  "CMakeFiles/damn_mem.dir/phys.cc.o.d"
  "libdamn_mem.a"
  "libdamn_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
