
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/kmalloc.cc" "src/mem/CMakeFiles/damn_mem.dir/kmalloc.cc.o" "gcc" "src/mem/CMakeFiles/damn_mem.dir/kmalloc.cc.o.d"
  "/root/repo/src/mem/page_alloc.cc" "src/mem/CMakeFiles/damn_mem.dir/page_alloc.cc.o" "gcc" "src/mem/CMakeFiles/damn_mem.dir/page_alloc.cc.o.d"
  "/root/repo/src/mem/phys.cc" "src/mem/CMakeFiles/damn_mem.dir/phys.cc.o" "gcc" "src/mem/CMakeFiles/damn_mem.dir/phys.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/damn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
