# Empty dependencies file for damn_mem.
# This may be replaced when dependencies are built.
