file(REMOVE_RECURSE
  "libdamn_mem.a"
)
