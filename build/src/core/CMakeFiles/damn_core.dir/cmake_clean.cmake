file(REMOVE_RECURSE
  "CMakeFiles/damn_core.dir/damn_allocator.cc.o"
  "CMakeFiles/damn_core.dir/damn_allocator.cc.o.d"
  "CMakeFiles/damn_core.dir/dma_cache.cc.o"
  "CMakeFiles/damn_core.dir/dma_cache.cc.o.d"
  "libdamn_core.a"
  "libdamn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
