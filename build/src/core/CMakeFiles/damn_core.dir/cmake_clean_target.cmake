file(REMOVE_RECURSE
  "libdamn_core.a"
)
