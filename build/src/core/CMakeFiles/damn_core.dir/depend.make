# Empty dependencies file for damn_core.
# This may be replaced when dependencies are built.
