# Empty compiler generated dependencies file for damn_work.
# This may be replaced when dependencies are built.
