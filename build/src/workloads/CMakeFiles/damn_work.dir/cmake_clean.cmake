file(REMOVE_RECURSE
  "CMakeFiles/damn_work.dir/attacks.cc.o"
  "CMakeFiles/damn_work.dir/attacks.cc.o.d"
  "CMakeFiles/damn_work.dir/fio.cc.o"
  "CMakeFiles/damn_work.dir/fio.cc.o.d"
  "CMakeFiles/damn_work.dir/graph500.cc.o"
  "CMakeFiles/damn_work.dir/graph500.cc.o.d"
  "CMakeFiles/damn_work.dir/memcached.cc.o"
  "CMakeFiles/damn_work.dir/memcached.cc.o.d"
  "CMakeFiles/damn_work.dir/netperf.cc.o"
  "CMakeFiles/damn_work.dir/netperf.cc.o.d"
  "libdamn_work.a"
  "libdamn_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
