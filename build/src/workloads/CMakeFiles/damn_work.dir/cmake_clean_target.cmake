file(REMOVE_RECURSE
  "libdamn_work.a"
)
