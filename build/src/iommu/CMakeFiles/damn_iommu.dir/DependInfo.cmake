
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iommu/io_pgtable.cc" "src/iommu/CMakeFiles/damn_iommu.dir/io_pgtable.cc.o" "gcc" "src/iommu/CMakeFiles/damn_iommu.dir/io_pgtable.cc.o.d"
  "/root/repo/src/iommu/iommu.cc" "src/iommu/CMakeFiles/damn_iommu.dir/iommu.cc.o" "gcc" "src/iommu/CMakeFiles/damn_iommu.dir/iommu.cc.o.d"
  "/root/repo/src/iommu/iotlb.cc" "src/iommu/CMakeFiles/damn_iommu.dir/iotlb.cc.o" "gcc" "src/iommu/CMakeFiles/damn_iommu.dir/iotlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/damn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/damn_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
