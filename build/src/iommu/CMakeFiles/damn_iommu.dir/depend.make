# Empty dependencies file for damn_iommu.
# This may be replaced when dependencies are built.
