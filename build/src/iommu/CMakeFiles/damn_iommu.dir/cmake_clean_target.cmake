file(REMOVE_RECURSE
  "libdamn_iommu.a"
)
