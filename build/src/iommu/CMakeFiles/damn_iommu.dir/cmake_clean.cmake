file(REMOVE_RECURSE
  "CMakeFiles/damn_iommu.dir/io_pgtable.cc.o"
  "CMakeFiles/damn_iommu.dir/io_pgtable.cc.o.d"
  "CMakeFiles/damn_iommu.dir/iommu.cc.o"
  "CMakeFiles/damn_iommu.dir/iommu.cc.o.d"
  "CMakeFiles/damn_iommu.dir/iotlb.cc.o"
  "CMakeFiles/damn_iommu.dir/iotlb.cc.o.d"
  "libdamn_iommu.a"
  "libdamn_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
