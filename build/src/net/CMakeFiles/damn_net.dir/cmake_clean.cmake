file(REMOVE_RECURSE
  "CMakeFiles/damn_net.dir/nic.cc.o"
  "CMakeFiles/damn_net.dir/nic.cc.o.d"
  "CMakeFiles/damn_net.dir/skbuff.cc.o"
  "CMakeFiles/damn_net.dir/skbuff.cc.o.d"
  "CMakeFiles/damn_net.dir/stack.cc.o"
  "CMakeFiles/damn_net.dir/stack.cc.o.d"
  "CMakeFiles/damn_net.dir/stream.cc.o"
  "CMakeFiles/damn_net.dir/stream.cc.o.d"
  "libdamn_net.a"
  "libdamn_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
