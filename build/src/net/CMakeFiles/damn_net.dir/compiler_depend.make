# Empty compiler generated dependencies file for damn_net.
# This may be replaced when dependencies are built.
