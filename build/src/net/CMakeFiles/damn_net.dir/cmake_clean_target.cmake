file(REMOVE_RECURSE
  "libdamn_net.a"
)
