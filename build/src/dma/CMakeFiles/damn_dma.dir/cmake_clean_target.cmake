file(REMOVE_RECURSE
  "libdamn_dma.a"
)
