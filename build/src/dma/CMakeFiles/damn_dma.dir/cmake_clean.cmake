file(REMOVE_RECURSE
  "CMakeFiles/damn_dma.dir/device.cc.o"
  "CMakeFiles/damn_dma.dir/device.cc.o.d"
  "CMakeFiles/damn_dma.dir/schemes.cc.o"
  "CMakeFiles/damn_dma.dir/schemes.cc.o.d"
  "libdamn_dma.a"
  "libdamn_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damn_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
