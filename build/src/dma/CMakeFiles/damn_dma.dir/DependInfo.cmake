
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dma/device.cc" "src/dma/CMakeFiles/damn_dma.dir/device.cc.o" "gcc" "src/dma/CMakeFiles/damn_dma.dir/device.cc.o.d"
  "/root/repo/src/dma/schemes.cc" "src/dma/CMakeFiles/damn_dma.dir/schemes.cc.o" "gcc" "src/dma/CMakeFiles/damn_dma.dir/schemes.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/damn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/damn_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/damn_iommu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
