# Empty compiler generated dependencies file for damn_dma.
# This may be replaced when dependencies are built.
