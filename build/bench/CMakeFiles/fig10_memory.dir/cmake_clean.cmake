file(REMOVE_RECURSE
  "CMakeFiles/fig10_memory.dir/fig10_memory.cc.o"
  "CMakeFiles/fig10_memory.dir/fig10_memory.cc.o.d"
  "fig10_memory"
  "fig10_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
