# Empty compiler generated dependencies file for fig6_membw.
# This may be replaced when dependencies are built.
