file(REMOVE_RECURSE
  "CMakeFiles/fig6_membw.dir/fig6_membw.cc.o"
  "CMakeFiles/fig6_membw.dir/fig6_membw.cc.o.d"
  "fig6_membw"
  "fig6_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
