file(REMOVE_RECURSE
  "CMakeFiles/fig5_multicore.dir/fig5_multicore.cc.o"
  "CMakeFiles/fig5_multicore.dir/fig5_multicore.cc.o.d"
  "fig5_multicore"
  "fig5_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
