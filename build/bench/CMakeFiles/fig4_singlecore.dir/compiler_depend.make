# Empty compiler generated dependencies file for fig4_singlecore.
# This may be replaced when dependencies are built.
