file(REMOVE_RECURSE
  "CMakeFiles/fig4_singlecore.dir/fig4_singlecore.cc.o"
  "CMakeFiles/fig4_singlecore.dir/fig4_singlecore.cc.o.d"
  "fig4_singlecore"
  "fig4_singlecore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_singlecore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
