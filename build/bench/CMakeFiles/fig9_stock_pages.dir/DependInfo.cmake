
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig9_stock_pages.cc" "bench/CMakeFiles/fig9_stock_pages.dir/fig9_stock_pages.cc.o" "gcc" "bench/CMakeFiles/fig9_stock_pages.dir/fig9_stock_pages.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/damn_work.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/damn_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/damn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/damn_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/iommu/CMakeFiles/damn_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/damn_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/damn_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
