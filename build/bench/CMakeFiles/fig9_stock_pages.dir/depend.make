# Empty dependencies file for fig9_stock_pages.
# This may be replaced when dependencies are built.
