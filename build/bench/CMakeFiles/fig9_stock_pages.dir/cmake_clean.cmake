file(REMOVE_RECURSE
  "CMakeFiles/fig9_stock_pages.dir/fig9_stock_pages.cc.o"
  "CMakeFiles/fig9_stock_pages.dir/fig9_stock_pages.cc.o.d"
  "fig9_stock_pages"
  "fig9_stock_pages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_stock_pages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
