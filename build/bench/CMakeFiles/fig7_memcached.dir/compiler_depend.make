# Empty compiler generated dependencies file for fig7_memcached.
# This may be replaced when dependencies are built.
