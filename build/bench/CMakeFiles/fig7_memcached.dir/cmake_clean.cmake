file(REMOVE_RECURSE
  "CMakeFiles/fig7_memcached.dir/fig7_memcached.cc.o"
  "CMakeFiles/fig7_memcached.dir/fig7_memcached.cc.o.d"
  "fig7_memcached"
  "fig7_memcached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_memcached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
