file(REMOVE_RECURSE
  "CMakeFiles/fig1_tradeoffs.dir/fig1_tradeoffs.cc.o"
  "CMakeFiles/fig1_tradeoffs.dir/fig1_tradeoffs.cc.o.d"
  "fig1_tradeoffs"
  "fig1_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
