# Empty compiler generated dependencies file for fig1_tradeoffs.
# This may be replaced when dependencies are built.
