# Empty dependencies file for fig8_tocttou.
# This may be replaced when dependencies are built.
