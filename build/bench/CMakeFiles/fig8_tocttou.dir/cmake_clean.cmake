file(REMOVE_RECURSE
  "CMakeFiles/fig8_tocttou.dir/fig8_tocttou.cc.o"
  "CMakeFiles/fig8_tocttou.dir/fig8_tocttou.cc.o.d"
  "fig8_tocttou"
  "fig8_tocttou.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tocttou.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
