file(REMOVE_RECURSE
  "CMakeFiles/fig11_nvme.dir/fig11_nvme.cc.o"
  "CMakeFiles/fig11_nvme.dir/fig11_nvme.cc.o.d"
  "fig11_nvme"
  "fig11_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
