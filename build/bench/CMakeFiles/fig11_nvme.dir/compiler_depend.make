# Empty compiler generated dependencies file for fig11_nvme.
# This may be replaced when dependencies are built.
