# Empty compiler generated dependencies file for table3_variants.
# This may be replaced when dependencies are built.
