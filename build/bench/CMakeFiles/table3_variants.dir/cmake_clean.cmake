file(REMOVE_RECURSE
  "CMakeFiles/table3_variants.dir/table3_variants.cc.o"
  "CMakeFiles/table3_variants.dir/table3_variants.cc.o.d"
  "table3_variants"
  "table3_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
