# Empty compiler generated dependencies file for fig2_graph500.
# This may be replaced when dependencies are built.
