file(REMOVE_RECURSE
  "CMakeFiles/fig2_graph500.dir/fig2_graph500.cc.o"
  "CMakeFiles/fig2_graph500.dir/fig2_graph500.cc.o.d"
  "fig2_graph500"
  "fig2_graph500.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_graph500.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
