# Empty dependencies file for firewall_inspection.
# This may be replaced when dependencies are built.
