file(REMOVE_RECURSE
  "CMakeFiles/firewall_inspection.dir/firewall_inspection.cpp.o"
  "CMakeFiles/firewall_inspection.dir/firewall_inspection.cpp.o.d"
  "firewall_inspection"
  "firewall_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firewall_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
