/**
 * @file
 * Shared DMA-API vocabulary: the failed-map sentinel, the transfer
 * direction, and the direction-to-IOMMU-permission conversion.
 *
 * Hoisted out of dma_api.hh so every consumer — the protection
 * schemes, the IOMMU backends, and DAMN's rights mapping in
 * core/iova_encoding.hh — shares a single definition instead of
 * duplicating the permission table.
 */

#ifndef DAMN_DMA_DMA_TYPES_HH
#define DAMN_DMA_DMA_TYPES_HH

#include <cstdint>

#include "iommu/io_pgtable.hh"

namespace damn::dma {

/**
 * Returned by DmaApi::map when the scheme cannot produce a mapping
 * (IOVA space or shadow-pool memory exhausted even after forced
 * reclaim).  Drivers treat it like a failed dma_map_single(): back off
 * and retry, never program it into a device.
 */
constexpr iommu::Iova kMapFailed = ~iommu::Iova{0};

/** DMA direction, as in the Linux DMA API. */
enum class Dir
{
    ToDevice,       //!< device reads (transmit buffers)
    FromDevice,     //!< device writes (receive buffers)
    Bidirectional,
};

/** IOMMU permission required for a direction. */
constexpr std::uint32_t
permFor(Dir d)
{
    switch (d) {
      case Dir::ToDevice:
        return iommu::PermRead;
      case Dir::FromDevice:
        return iommu::PermWrite;
      default:
        return iommu::PermRW;
    }
}

} // namespace damn::dma

#endif // DAMN_DMA_DMA_TYPES_HH
