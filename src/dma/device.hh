/**
 * @file
 * DMA-capable device base.
 *
 * A Device owns an IOMMU protection domain and can issue DMAs at any
 * virtual time — including *malicious* ones targeting arbitrary IOVAs,
 * which is exactly the paper's attack model (section 2.1): the attacker
 * controls the device but not the OS or the IOMMU configuration.
 */

#ifndef DAMN_DMA_DEVICE_HH
#define DAMN_DMA_DEVICE_HH

#include <cstdint>
#include <string>

#include "iommu/iommu.hh"
#include "mem/phys.hh"
#include "sim/context.hh"

namespace damn::dma {

/** Result of one device-initiated DMA. */
struct DmaOutcome
{
    bool ok = false;            //!< all pages translated with permission
    bool fault = false;         //!< at least one access was blocked
    std::uint64_t bytesDone = 0;//!< bytes transferred before any fault
    sim::TimeNs completes = 0;  //!< time the transfer finishes
    sim::TimeNs walkNs = 0;     //!< IOTLB-miss page-walk stall time
};

/** Result of one ATS-translated (page-faultable) DMA attempt. */
struct AtsDmaOutcome
{
    bool ok = false;             //!< every page translated; all bytes moved
    /** A page failed to translate: recoverable via PRI, not a fault.
     *  faultVa names the first untranslatable page. */
    bool needsFault = false;
    iommu::Iova faultVa = 0;
    std::uint64_t bytesDone = 0; //!< bytes moved before the stall
    sim::TimeNs completes = 0;
    sim::TimeNs walkNs = 0;      //!< translation latency (ATC + walks)
};

/**
 * A DMA-capable device attached behind the IOMMU.
 */
class Device
{
  public:
    Device(sim::Context &ctx, std::string name, iommu::Iommu &mmu,
           mem::PhysicalMemory &pm, sim::NumaId numa = 0)
        : ctx_(ctx), name_(std::move(name)), iommu_(mmu), pm_(pm),
          numa_(numa), domain_(mmu.createDomain())
    {}

    virtual ~Device() = default;
    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    const std::string &name() const { return name_; }
    iommu::DomainId domain() const { return domain_; }
    sim::NumaId numa() const { return numa_; }
    iommu::Iommu &mmu() { return iommu_; }

    /**
     * Device writes @p len bytes from @p src into DMA address @p addr
     * at time @p now.  Stops at the first faulting page (the IOMMU
     * blocks at page granularity).  Accounts memory-controller traffic.
     */
    DmaOutcome dmaWrite(sim::TimeNs now, iommu::Iova addr,
                        const void *src, std::uint64_t len);

    /** Device reads @p len bytes from DMA address @p addr into @p dst. */
    DmaOutcome dmaRead(sim::TimeNs now, iommu::Iova addr, void *dst,
                       std::uint64_t len);

    /**
     * Timing/translation-only DMA: identical IOMMU and bandwidth
     * behaviour to dmaWrite/dmaRead but moves no bytes.  Used by
     * throughput benches where payload contents are irrelevant.
     */
    DmaOutcome
    dmaTouch(sim::TimeNs now, iommu::Iova addr, std::uint64_t len,
             bool is_write)
    {
        return dmaAccess(now, addr, nullptr, len, is_write);
    }

    /**
     * DMA with device-side ATS translation through @p ats instead of
     * the IOMMU data path: per-page ATC lookups, stopping at the
     * first page that does not translate (out.needsFault — the PRI
     * retry signal; see dma/faultable.hh for the full
     * fault-and-resume loop).  Unplug/master-abort and memory
     * bandwidth accounting match dmaWrite/dmaRead.
     */
    AtsDmaOutcome dmaAts(iommu::AtsAgent &ats, sim::TimeNs now,
                         iommu::Iova addr, void *buf, std::uint64_t len,
                         bool is_write);

    /** Total faulted DMA attempts by this device. */
    std::uint64_t faultedDmas() const { return faultedDmas_; }

    // ---- Hot-plug lifecycle ----------------------------------------

    /** Whether the device is present on the bus. */
    bool attached() const { return attached_; }

    /**
     * Surprise hot-unplug: the device vanishes mid-operation.  Every
     * later DMA aborts immediately (master-abort on the bus) without
     * touching the IOMMU.  The domain itself is torn down separately
     * via Iommu::detachDomain() once the driver has drained.
     */
    void
    unplug()
    {
        attached_ = false;
        ctx_.stats.add("dma.unplugs");
    }

    /** Re-seat the device after a drain + detach cycle completed. */
    void replug() { attached_ = true; }

  protected:
    DmaOutcome dmaAccess(sim::TimeNs now, iommu::Iova addr, void *buf,
                         std::uint64_t len, bool is_write);

    sim::Context &ctx_;
    std::string name_;
    iommu::Iommu &iommu_;
    mem::PhysicalMemory &pm_;
    sim::NumaId numa_;
    iommu::DomainId domain_;
    std::uint64_t faultedDmas_ = 0;
    bool attached_ = true;
};

} // namespace damn::dma

#endif // DAMN_DMA_DEVICE_HH
