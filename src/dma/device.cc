/**
 * @file
 * Device DMA data path: per-page translation through the IOMMU.
 */

#include "dma/device.hh"

#include <algorithm>

#include "iommu/ats.hh"

namespace damn::dma {

DmaOutcome
Device::dmaAccess(sim::TimeNs now, iommu::Iova addr, void *buf,
                  std::uint64_t len, bool is_write)
{
    DmaOutcome out;

    // Surprise unplug fires *on* a DMA: the access that draws the
    // short straw sees the device disappear under it.
    if (attached_ &&
        ctx_.faults.shouldFail(sim::FaultSite::DeviceUnplug)) {
        unplug();
        ctx_.stats.add("dma.surprise_unplugs");
    }
    if (!attached_) {
        // Bus master-abort: completes immediately, no bytes moved, no
        // IOMMU interaction (there is no device to translate for).
        out.fault = true;
        out.completes = now;
        ++faultedDmas_;
        ctx_.stats.add("dma.unplugged_aborts");
        return out;
    }

    auto *cursor = static_cast<std::uint8_t *>(buf);
    sim::TimeNs latency = 0;
    std::uint64_t remaining = len;
    iommu::Iova iova = addr;

    while (remaining > 0) {
        const std::uint64_t page_room =
            mem::kPageSize - (iova & (mem::kPageSize - 1));
        const std::uint64_t chunk = std::min(remaining, page_room);

        const iommu::TranslateResult tr =
            iommu_.translate(domain_, iova, is_write);
        latency += tr.latencyNs;
        if (!tr.ok) {
            out.fault = true;
            ++faultedDmas_;
            break;
        }
        if (cursor != nullptr) {
            if (is_write)
                pm_.write(tr.pa, cursor, chunk);
            else
                pm_.read(tr.pa, cursor, chunk);
            cursor += chunk;
        }

        out.bytesDone += chunk;
        iova += chunk;
        remaining -= chunk;
    }

    // Device traffic crosses the memory controllers (scaled for DDIO).
    const auto mem_bytes = std::uint64_t(
        double(out.bytesDone) * ctx_.cost.dmaMemTrafficFactor);
    const sim::TimeNs bw_done = ctx_.memBw.transfer(now, mem_bytes);
    out.walkNs = latency;
    out.completes = std::max(now + latency, bw_done);
    out.ok = !out.fault;
    return out;
}

AtsDmaOutcome
Device::dmaAts(iommu::AtsAgent &ats, sim::TimeNs now, iommu::Iova addr,
               void *buf, std::uint64_t len, bool is_write)
{
    AtsDmaOutcome out;

    if (attached_ &&
        ctx_.faults.shouldFail(sim::FaultSite::DeviceUnplug)) {
        unplug();
        ctx_.stats.add("dma.surprise_unplugs");
    }
    if (!attached_) {
        // Master-abort, as in dmaAccess: no bytes, no translation —
        // and no page request either (there is no device left to
        // retry).
        out.completes = now;
        ++faultedDmas_;
        ctx_.stats.add("dma.unplugged_aborts");
        return out;
    }

    auto *cursor = static_cast<std::uint8_t *>(buf);
    sim::TimeNs latency = 0;
    std::uint64_t remaining = len;
    iommu::Iova iova = addr;

    while (remaining > 0) {
        const std::uint64_t page_room =
            mem::kPageSize - (iova & (mem::kPageSize - 1));
        const std::uint64_t chunk = std::min(remaining, page_room);

        const iommu::AtsAgent::Result tr = ats.translate(iova, is_write);
        latency += tr.latencyNs;
        if (!tr.ok) {
            // Untranslatable: stall here and let the caller post a
            // page request for this page, then retry.
            out.needsFault = true;
            out.faultVa = iova & ~iommu::Iova(mem::kPageSize - 1);
            break;
        }
        if (cursor != nullptr) {
            if (is_write)
                pm_.write(tr.pa, cursor, chunk);
            else
                pm_.read(tr.pa, cursor, chunk);
            cursor += chunk;
        }

        out.bytesDone += chunk;
        iova += chunk;
        remaining -= chunk;
    }

    const auto mem_bytes = std::uint64_t(
        double(out.bytesDone) * ctx_.cost.dmaMemTrafficFactor);
    const sim::TimeNs bw_done = ctx_.memBw.transfer(now, mem_bytes);
    out.walkNs = latency;
    out.completes = std::max(now + latency, bw_done);
    out.ok = remaining == 0;
    return out;
}

DmaOutcome
Device::dmaWrite(sim::TimeNs now, iommu::Iova addr, const void *src,
                 std::uint64_t len)
{
    // dmaAccess writes from the buffer into memory; the const_cast is
    // safe because is_write=true only reads from buf.
    return dmaAccess(now, addr, const_cast<void *>(src), len, true);
}

DmaOutcome
Device::dmaRead(sim::TimeNs now, iommu::Iova addr, void *dst,
                std::uint64_t len)
{
    return dmaAccess(now, addr, dst, len, false);
}

} // namespace damn::dma
