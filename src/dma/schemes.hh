/**
 * @file
 * Concrete DMA-API protection schemes evaluated by the paper.
 */

#ifndef DAMN_DMA_SCHEMES_HH
#define DAMN_DMA_SCHEMES_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dma/dma_api.hh"
#include "iommu/iommu.hh"
#include "iommu/iova_alloc.hh"
#include "mem/page_alloc.hh"

namespace damn::dma {

/** Scheme selector matching the paper's figure legends. */
enum class SchemeKind
{
    IommuOff,
    Strict,
    Deferred,
    Shadow,
    Damn,       //!< constructed by core/, listed here for experiments
};

const char *schemeKindName(SchemeKind k);

/**
 * iommu-off: no protection at all; DMA address == physical address.
 * The paper's unprotected performance baseline.
 */
class PassthroughDmaApi : public DmaApi
{
  public:
    /** Needs nothing from the context; parameter kept so makeScheme
     *  constructs every scheme uniformly. */
    explicit PassthroughDmaApi(sim::Context &) {}

    iommu::Iova
    map(sim::CpuCursor &, Device &, mem::Pa pa, std::uint32_t,
        Dir) override
    {
        return pa;
    }

    void
    unmap(sim::CpuCursor &, Device &, iommu::Iova, std::uint32_t,
          Dir) override
    {}

    const char *name() const override { return "iommu-off"; }
    bool subpage() const override { return false; }
    bool windowFree() const override { return false; }
    bool zeroCopy() const override { return true; }
};

/**
 * Shared machinery for the map side of strict and deferred: allocate an
 * IOVA range, write PTEs for the covering pages.  Page granularity —
 * data co-located on the buffer's pages becomes device-accessible,
 * hence only *partial* protection (paper section 4.1).
 */
class MappedDmaApi : public DmaApi
{
  public:
    MappedDmaApi(sim::Context &ctx, iommu::Iommu &mmu)
        : ctx_(ctx), iommu_(mmu)
    {
        iovaAlloc_.setAddressLimit(mmu.layout().dmaApiLimit());
    }

    iommu::Iova map(sim::CpuCursor &cpu, Device &dev, mem::Pa pa,
                    std::uint32_t len, Dir dir) override;

    bool subpage() const override { return false; }
    bool zeroCopy() const override { return true; }

    std::uint64_t
    outstandingIovas() const override
    {
        return iovaAlloc_.outstanding();
    }

    void
    setIovaSpaceBytes(std::uint64_t bytes) override
    {
        iovaAlloc_.setSpaceBytes(bytes);
    }

    double
    iovaUtilization() const override
    {
        return iovaAlloc_.utilization();
    }

    std::uint64_t mapFailures() const override { return mapFails_; }

  protected:
    /** Covering page count of a (pa, len) buffer. */
    static unsigned
    coveringPages(mem::Pa pa, std::uint32_t len)
    {
        const mem::Pa start = pa & ~(mem::kPageSize - 1);
        const mem::Pa end = pa + len;
        return unsigned((end - start + mem::kPageSize - 1) >>
                        mem::kPageShift);
    }

    /** Clear the PTEs of a mapping (both schemes do this eagerly). */
    void clearPtes(sim::CpuCursor &cpu, Device &dev, iommu::Iova dma_addr,
                   std::uint32_t len, iommu::Iova *iova_base,
                   unsigned *pages);

    /**
     * IOVA allocation with the kernel's fq_ring-style fallback: on
     * exhaustion, force the scheme's batched invalidations out (which
     * recycles pinned ranges under the deferred scheme), then fall
     * back to generic pressure reclaim, retrying after each step.
     * @return the range, or iommu::kInvalidIova when still exhausted.
     */
    iommu::Iova allocIovaWithReclaim(sim::CpuCursor &cpu,
                                     unsigned pages);

    sim::Context &ctx_;
    iommu::Iommu &iommu_;
    iommu::IovaAllocator iovaAlloc_;
    std::uint64_t mapFails_ = 0;
};

/**
 * strict: dma_unmap synchronously invalidates the IOTLB before
 * returning.  Secure at page granularity, but every unmap takes the
 * global invalidation-queue lock for the full hardware round trip.
 */
class StrictDmaApi : public MappedDmaApi
{
  public:
    using MappedDmaApi::MappedDmaApi;

    void unmap(sim::CpuCursor &cpu, Device &dev, iommu::Iova dma_addr,
               std::uint32_t len, Dir dir) override;

    /** dma_unmap_sg: one synchronous invalidation for the whole list. */
    void unmapBatch(sim::CpuCursor &cpu, Device &dev,
                    const std::vector<UnmapReq> &reqs) override;

    const char *name() const override { return "strict"; }
    bool windowFree() const override { return true; }
};

/**
 * deferred (Linux default): dma_unmap clears PTEs but batches IOTLB
 * invalidation until ~250 requests accumulate or 10 ms pass.  Until the
 * flush, a device with a warm IOTLB entry can still access the buffer —
 * the TOCTTOU / data-theft window the paper demonstrates.
 */
class DeferredDmaApi : public MappedDmaApi
{
  public:
    using MappedDmaApi::MappedDmaApi;

    void unmap(sim::CpuCursor &cpu, Device &dev, iommu::Iova dma_addr,
               std::uint32_t len, Dir dir) override;

    void flushPending(sim::CpuCursor &cpu) override;

    const char *name() const override { return "deferred"; }
    bool windowFree() const override { return false; }

    unsigned pendingFlushes() const { return unsigned(flushQueue_.size()); }

  private:
    void armTimer(sim::CoreId core);

    struct PendingUnmap
    {
        iommu::DomainId domain;
        iommu::Iova iova;
        unsigned pages;
    };

    std::vector<PendingUnmap> flushQueue_;
    bool timerArmed_ = false;
};

/**
 * shadow buffers (Markuze et al., ASPLOS'16): DMA is restricted to a
 * pool of permanently-mapped shadow pages; map/unmap copy data between
 * the driver's buffer and a shadow buffer.  Full byte-granularity
 * protection, no invalidations — but one extra copy per DMAed byte.
 */
class ShadowDmaApi : public DmaApi
{
  public:
    ShadowDmaApi(sim::Context &ctx, iommu::Iommu &mmu,
                 mem::PageAllocator &pa);

    iommu::Iova map(sim::CpuCursor &cpu, Device &dev, mem::Pa pa,
                    std::uint32_t len, Dir dir) override;
    void unmap(sim::CpuCursor &cpu, Device &dev, iommu::Iova dma_addr,
               std::uint32_t len, Dir dir) override;

    const char *name() const override { return "shadow"; }
    bool subpage() const override { return true; }
    bool windowFree() const override { return true; }
    bool zeroCopy() const override { return false; }

    /** Frames pinned by shadow pools (all devices). */
    std::uint64_t poolFrames() const { return poolFrames_; }

    void
    setIovaSpaceBytes(std::uint64_t bytes) override
    {
        iovaAlloc_.setSpaceBytes(bytes);
    }

    double
    iovaUtilization() const override
    {
        return iovaAlloc_.utilization();
    }

    std::uint64_t mapFailures() const override { return mapFails_; }

    /**
     * Pressure shrinker: release the pool blocks of every domain with
     * no in-flight shadow map (blocks cannot be released piecemeal —
     * live shadow buffers are scattered across them).  Registered with
     * the PressureController; also safe to call directly.
     * @return 4 KiB pages released.
     */
    std::uint64_t shrinkIdle(sim::CpuCursor &cpu);

    /**
     * Teardown: abort in-flight shadow maps for @p dev's domain, unmap
     * and free every pool block, and release the IOVAs.  The pool is
     * rebuilt lazily on the next map() after a replug.
     */
    std::uint64_t drainDomain(sim::CpuCursor &cpu, Device &dev) override;

    std::uint64_t
    outstandingIovas() const override
    {
        return iovaAlloc_.outstanding();
    }

  private:
    struct ShadowBuf
    {
        mem::Pa pa;
        iommu::Iova iova;
        unsigned bucket;
    };

    struct ActiveMap
    {
        ShadowBuf buf;
        mem::Pa origPa;
        std::uint32_t len;
        Dir dir;
        iommu::DomainId domain;
    };

    /** Per-device shadow pool: permanently-mapped, bucketed free lists. */
    struct Pool
    {
        std::vector<std::vector<ShadowBuf>> buckets;
        /** Backing order-5 blocks: (first frame, base IOVA). */
        std::vector<std::pair<mem::Pfn, iommu::Iova>> blocks;
    };

    static unsigned bucketFor(std::uint32_t len);
    mem::PhysicalMemory &pm() { return pageAlloc_.phys(); }
    /** Returns a buf with pa == 0 when pool growth fails (pressure). */
    ShadowBuf poolAlloc(sim::CpuCursor &cpu, Device &dev,
                        std::uint32_t len);
    void poolFree(Device &dev, const ShadowBuf &buf);
    Pool &poolOf(Device &dev);
    /** Unmap + free every backing block of @p pool (domain @p d). */
    std::uint64_t releasePool(sim::CpuCursor &cpu, iommu::DomainId d,
                              Pool &pool);

    sim::Context &ctx_;
    iommu::Iommu &iommu_;
    mem::PageAllocator &pageAlloc_;
    iommu::IovaAllocator iovaAlloc_;
    std::unordered_map<iommu::DomainId, Pool> pools_;
    std::unordered_map<iommu::Iova, ActiveMap> active_;
    std::uint64_t poolFrames_ = 0;
    std::uint64_t mapFails_ = 0;
};

/**
 * Construct a DMA-API-based scheme.  SchemeKind::Damn is built by
 * core/damn_dma.hh (it needs the DAMN allocator).
 */
std::unique_ptr<DmaApi> makeScheme(SchemeKind kind, sim::Context &ctx,
                                   iommu::Iommu &mmu,
                                   mem::PageAllocator &pa);

} // namespace damn::dma

#endif // DAMN_DMA_SCHEMES_HH
