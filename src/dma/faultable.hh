/**
 * @file
 * The PRI fault-and-resume loop: one faultable DMA end to end.
 *
 * Ties the pieces together the way a real stack does — the device
 * translates through its ATC (dma::Device::dmaAts), stalls on the
 * first untranslatable page, posts a page request
 * (IommuBackend::postPageRequest), the OS services the queue
 * (iommu::SvaDomain::servicePageRequest) and responds, and the device
 * retries from where it stalled.  Overflow auto-responses back the
 * device off and force it through a drain-and-retry, so forward
 * progress survives a flooded queue.
 */

#ifndef DAMN_DMA_FAULTABLE_HH
#define DAMN_DMA_FAULTABLE_HH

#include <cstdint>

#include "dma/device.hh"
#include "iommu/sva.hh"
#include "sim/cpu_cursor.hh"
#include "sim/histogram.hh"

namespace damn::dma {

/** What one faultable DMA cost, fault-wise. */
struct FaultableDmaResult
{
    bool ok = false;
    std::uint64_t bytesDone = 0;
    sim::TimeNs completes = 0;
    unsigned faultsServiced = 0;  //!< successful page-request services
    unsigned failedServices = 0;  //!< services that could not allocate
    unsigned autoResponses = 0;   //!< queue-overflow auto-responses seen
    sim::TimeNs serviceNsTotal = 0; //!< post-to-resume, summed
    sim::TimeNs serviceNsMax = 0;
};

/**
 * DMA @p len bytes at @p va into @p sva-backed pageable memory
 * through @p dev's ATS agent, faulting and resuming as needed.  Every
 * page request fetched while servicing is responded to (including
 * ones left queued by other parties), so PRI conservation holds at
 * return.  @p maxFaults bounds the retry loop.
 * @param hist  optional histogram collecting per-fault service
 *              latency (post-to-resume).
 */
FaultableDmaResult faultableDma(sim::CpuCursor &cpu, Device &dev,
                                iommu::AtsAgent &ats,
                                iommu::SvaDomain &sva, iommu::Iova va,
                                void *buf, std::uint64_t len,
                                bool is_write, unsigned maxFaults = 64,
                                sim::LatencyHistogram *hist = nullptr);

} // namespace damn::dma

#endif // DAMN_DMA_FAULTABLE_HH
