/**
 * @file
 * Protection scheme implementations.
 */

#include "dma/schemes.hh"

#include <algorithm>
#include <cassert>

#include "sim/tracer.hh"

namespace damn::dma {

const char *
schemeKindName(SchemeKind k)
{
    switch (k) {
      case SchemeKind::IommuOff:
        return "iommu-off";
      case SchemeKind::Strict:
        return "strict";
      case SchemeKind::Deferred:
        return "deferred";
      case SchemeKind::Shadow:
        return "shadow";
      case SchemeKind::Damn:
        return "damn";
    }
    return "?";
}

// ---------------------------------------------------------------------
// MappedDmaApi (shared map path of strict/deferred)
// ---------------------------------------------------------------------

iommu::Iova
MappedDmaApi::allocIovaWithReclaim(sim::CpuCursor &cpu, unsigned pages)
{
    iommu::Iova iova = iovaAlloc_.alloc(pages);
    if (iova != iommu::kInvalidIova)
        return iova;

    // IOVA space exhausted.  The kernel's fallback (the fq_ring flush
    // in iova_rcache): force the batched invalidations out now, which
    // under the deferred scheme frees every pinned range, then retry.
    ctx_.stats.add("iommu.iova_exhausted");
    ctx_.stats.add("iommu.iova_forced_flushes");
    ctx_.tracer.instant(cpu.id(), sim::TraceCat::Fault,
                        "iommu.iova_forced_flush", cpu.time, 0, pages);
    flushPending(cpu);
    iova = iovaAlloc_.alloc(pages);
    if (iova != iommu::kInvalidIova) {
        ctx_.stats.add("iommu.iova_flush_recoveries");
        return iova;
    }

    // The flush was not enough (strict has nothing batched; or every
    // range is genuinely live).  Last resort: generic pressure reclaim
    // — shrink whatever registered a reclaimer — and one final retry.
    ctx_.pressure.reclaim(cpu);
    iova = iovaAlloc_.alloc(pages);
    if (iova != iommu::kInvalidIova)
        ctx_.stats.add("iommu.iova_reclaim_recoveries");
    return iova;
}

iommu::Iova
MappedDmaApi::map(sim::CpuCursor &cpu, Device &dev, mem::Pa pa,
                  std::uint32_t len, Dir dir)
{
    assert(len > 0);
    const unsigned pages = coveringPages(pa, len);
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaMap,
                        "dma.map");
    span.bytes(len);
    span.aux(pages);

    // IOVA allocation: fast per-CPU cache, occasional slow rbtree path.
    cpu.charge(ctx_.cost.iovaAllocNs);
    if (ctx_.rng.chance(ctx_.cost.iovaSlowPathRate))
        cpu.charge(ctx_.cost.iovaAllocSlowNs);
    const iommu::Iova iova = allocIovaWithReclaim(cpu, pages);
    if (iova == iommu::kInvalidIova) {
        // Still exhausted after forced flush + reclaim: fail the map
        // like dma_map_single() returning DMA_MAPPING_ERROR.  The
        // driver backs off and retries.
        ++mapFails_;
        ctx_.stats.add("dma.map_fails");
        return kMapFailed;
    }
    ctx_.tracer.instant(cpu.id(), sim::TraceCat::DmaMap,
                        "dma.iova_alloc", cpu.time, 0, pages);

    // Write PTEs covering the buffer's pages.  Page granularity: data
    // co-located on those pages becomes device-accessible too.
    cpu.charge(ctx_.cost.ptePerPageNs * pages);
    const mem::Pa page_base = pa & ~(mem::kPageSize - 1);
    const std::uint32_t perm = permFor(dir);
    for (unsigned i = 0; i < pages; ++i) {
        const bool ok = iommu_.mapPage(
            dev.domain(), iova + std::uint64_t(i) * mem::kPageSize,
            page_base + std::uint64_t(i) * mem::kPageSize, perm);
        assert(ok && "double map of an IOVA");
        (void)ok;
    }

    ctx_.stats.add("dma.map");
    ctx_.stats.add("dma.map_pages", pages);
    return iova + mem::pageOffset(pa);
}

void
MappedDmaApi::clearPtes(sim::CpuCursor &cpu, Device &dev,
                        iommu::Iova dma_addr, std::uint32_t len,
                        iommu::Iova *iova_base, unsigned *pages)
{
    *iova_base = dma_addr & ~iommu::Iova(mem::kPageSize - 1);
    *pages = coveringPages(dma_addr, len);
    cpu.charge(ctx_.cost.ptePerPageNs * *pages);
    for (unsigned i = 0; i < *pages; ++i) {
        const bool ok = iommu_.unmapPage(
            dev.domain(), *iova_base + std::uint64_t(i) * mem::kPageSize);
        assert(ok && "unmap of an unmapped IOVA");
        (void)ok;
    }
    ctx_.stats.add("dma.unmap");
}

// ---------------------------------------------------------------------
// StrictDmaApi
// ---------------------------------------------------------------------

void
StrictDmaApi::unmap(sim::CpuCursor &cpu, Device &dev,
                    iommu::Iova dma_addr, std::uint32_t len, Dir)
{
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaUnmap,
                        "dma.unmap");
    span.bytes(len);
    iommu::Iova iova_base;
    unsigned pages;
    clearPtes(cpu, dev, dma_addr, len, &iova_base, &pages);

    {
        // Synchronous IOTLB invalidation through the backend's
        // machinery (VT-d spends the full hardware round trip holding
        // the global queue lock; SMMUv3 produces a TLBI + SYNC and
        // waits outside it).
        sim::TraceSpan inval(ctx_.tracer, cpu, sim::TraceCat::IommuInval,
                             "iommu.sync_inval");
        inval.aux(pages);
        const sim::TimeNs done = iommu_.backend().syncInvalidate(
            *cpu.core, cpu.time, dev.domain(), iova_base,
            std::uint64_t(pages) * mem::kPageSize);
        cpu.waitUntil(done);
        // Pipelined invalidation engines: spin for the completion
        // outside the submission lock.
        cpu.charge(ctx_.cost.strictPostWaitNs);
    }

    iovaAlloc_.free(iova_base, pages);
    ctx_.stats.add("dma.strict_invalidations");
}

void
StrictDmaApi::unmapBatch(sim::CpuCursor &cpu, Device &dev,
                         const std::vector<UnmapReq> &reqs)
{
    if (reqs.empty())
        return;
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaUnmap,
                        "dma.unmap_batch");
    span.aux(reqs.size());
    // Clear all PTEs, then pay for a single invalidate + wait round
    // trip covering every range (how dma_unmap_sg behaves).
    std::vector<iommu::IommuBackend::InvalRange> ranges;
    ranges.reserve(reqs.size());
    for (const UnmapReq &r : reqs) {
        iommu::Iova base;
        unsigned pages;
        clearPtes(cpu, dev, r.dmaAddr, r.len, &base, &pages);
        ranges.push_back({dev.domain(), base,
                          std::uint64_t(pages) * mem::kPageSize});
        span.bytes(r.len);
    }
    {
        sim::TraceSpan inval(ctx_.tracer, cpu, sim::TraceCat::IommuInval,
                             "iommu.sync_inval");
        inval.aux(ranges.size());
        cpu.time = iommu_.backend().syncInvalidateRanges(
            *cpu.core, cpu.time, ranges);
        cpu.charge(ctx_.cost.strictPostWaitNs);
    }
    for (const auto &r : ranges)
        iovaAlloc_.free(r.iova, unsigned(r.len >> mem::kPageShift));
    ctx_.stats.add("dma.strict_invalidations");
}

// ---------------------------------------------------------------------
// DeferredDmaApi
// ---------------------------------------------------------------------

void
DeferredDmaApi::unmap(sim::CpuCursor &cpu, Device &dev,
                      iommu::Iova dma_addr, std::uint32_t len, Dir)
{
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaUnmap,
                        "dma.unmap");
    span.bytes(len);
    iommu::Iova iova_base;
    unsigned pages;
    clearPtes(cpu, dev, dma_addr, len, &iova_base, &pages);

    // Queue for a batched flush; the IOVA is recycled only after the
    // flush (reusing it earlier would re-expose a stale translation to
    // the *new* owner's data).
    cpu.charge(ctx_.cost.deferredUnmapNs);
    flushQueue_.push_back({dev.domain(), iova_base, pages});

    if (flushQueue_.size() >= ctx_.cost.deferredBatch) {
        flushPending(cpu);
    } else {
        armTimer(cpu.id());
    }
}

void
DeferredDmaApi::flushPending(sim::CpuCursor &cpu)
{
    if (flushQueue_.empty())
        return;
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::IommuInval,
                        "iommu.batched_flush");
    span.aux(flushQueue_.size());
    // One hardware flush command, scoped to the domains with pending
    // unmaps: other domains' warm IOTLB entries must survive a
    // neighbour's deferred flush.
    std::vector<iommu::DomainId> domains;
    for (const PendingUnmap &p : flushQueue_) {
        if (std::find(domains.begin(), domains.end(), p.domain) ==
            domains.end())
            domains.push_back(p.domain);
    }
    const sim::TimeNs done = iommu_.backend().batchedFlush(
        *cpu.core, cpu.time, domains);
    cpu.waitUntil(done);
    for (const PendingUnmap &p : flushQueue_)
        iovaAlloc_.free(p.iova, p.pages);
    ctx_.stats.add("dma.deferred_flushes");
    ctx_.stats.add("dma.deferred_flushed_unmaps", flushQueue_.size());
    flushQueue_.clear();
}

void
DeferredDmaApi::armTimer(sim::CoreId core)
{
    if (timerArmed_)
        return;
    timerArmed_ = true;
    ctx_.engine.scheduleIn(ctx_.cost.deferredFlushTimerNs, [this, core] {
        timerArmed_ = false;
        // The flush timer runs in softirq context on the arming core.
        sim::CpuCursor cpu(ctx_.machine.core(core), ctx_.engine.now());
        flushPending(cpu);
    });
}

// ---------------------------------------------------------------------
// ShadowDmaApi
// ---------------------------------------------------------------------

namespace {

/** Shadow buckets: powers of two from 512 B to 128 KiB. */
constexpr std::uint32_t kMinShadow = 512;
constexpr unsigned kNumBuckets = 9; // 512 .. 128K

constexpr std::uint32_t
bucketSize(unsigned b)
{
    return kMinShadow << b;
}

} // namespace

ShadowDmaApi::ShadowDmaApi(sim::Context &ctx, iommu::Iommu &mmu,
                           mem::PageAllocator &pa)
    : ctx_(ctx), iommu_(mmu), pageAlloc_(pa)
{
    iovaAlloc_.setAddressLimit(mmu.layout().dmaApiLimit());
}

unsigned
ShadowDmaApi::bucketFor(std::uint32_t len)
{
    for (unsigned b = 0; b < kNumBuckets; ++b)
        if (len <= bucketSize(b))
            return b;
    assert(false && "shadow DMA larger than 128 KiB");
    return kNumBuckets - 1;
}

ShadowDmaApi::Pool &
ShadowDmaApi::poolOf(Device &dev)
{
    Pool &p = pools_[dev.domain()];
    if (p.buckets.empty())
        p.buckets.resize(kNumBuckets);
    return p;
}

ShadowDmaApi::ShadowBuf
ShadowDmaApi::poolAlloc(sim::CpuCursor &cpu, Device &dev,
                        std::uint32_t len)
{
    Pool &pool = poolOf(dev);
    const unsigned bucket = bucketFor(len);
    cpu.charge(ctx_.cost.shadowPoolOpNs);
    auto &freelist = pool.buckets[bucket];
    if (freelist.empty()) {
        // Grow the pool: one order-5 (128 KiB) block carved into
        // bucket-size shadow buffers, mapped R/W *once*, permanently.
        // Both the frames and the IOVA range can be exhausted under
        // pressure; each failure sheds idle pools (plus whatever else
        // registered a reclaimer) and retries once before giving up.
        const unsigned order = 5;
        mem::Pfn pfn =
            pageAlloc_.allocPages(order, dev.numa(), /*zero=*/true);
        if (pfn == mem::kInvalidPfn) {
            ctx_.stats.add("shadow.pool_grow_fails");
            ctx_.pressure.reclaim(cpu);
            pfn = pageAlloc_.allocPages(order, dev.numa(), /*zero=*/true);
            if (pfn == mem::kInvalidPfn)
                return ShadowBuf{0, 0, bucket};
        }
        iommu::Iova iova = iovaAlloc_.alloc(1u << order);
        if (iova == iommu::kInvalidIova) {
            ctx_.stats.add("iommu.iova_exhausted");
            ctx_.pressure.reclaim(cpu);
            iova = iovaAlloc_.alloc(1u << order);
            if (iova == iommu::kInvalidIova) {
                pageAlloc_.freePages(pfn, order);
                return ShadowBuf{0, 0, bucket};
            }
        }
        poolFrames_ += 1u << order;
        const std::uint64_t block = mem::kPageSize << order;
        pool.blocks.emplace_back(pfn, iova);
        for (unsigned i = 0; i < (1u << order); ++i) {
            iommu_.mapPage(dev.domain(),
                           iova + std::uint64_t(i) * mem::kPageSize,
                           mem::pfnToPa(pfn + i), iommu::PermRW);
        }
        const std::uint32_t sz = bucketSize(bucket);
        for (std::uint64_t off = 0; off + sz <= block; off += sz)
            freelist.push_back({mem::pfnToPa(pfn) + off, iova + off,
                                bucket});
        ctx_.stats.add("shadow.pool_grow");
    }
    const ShadowBuf buf = freelist.back();
    freelist.pop_back();
    return buf;
}

void
ShadowDmaApi::poolFree(Device &dev, const ShadowBuf &buf)
{
    poolOf(dev).buckets[buf.bucket].push_back(buf);
}

iommu::Iova
ShadowDmaApi::map(sim::CpuCursor &cpu, Device &dev, mem::Pa pa,
                  std::uint32_t len, Dir dir)
{
    assert(len > 0);
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaMap,
                        "dma.map");
    span.bytes(len);
    ShadowBuf buf = poolAlloc(cpu, dev, len);
    if (buf.pa == 0) {
        // Pool growth failed even after reclaim: fail the map; the
        // driver backs off and retries.
        ++mapFails_;
        ctx_.stats.add("dma.map_fails");
        return kMapFailed;
    }

    if (dir == Dir::ToDevice || dir == Dir::Bidirectional) {
        // Copy outbound data into the shadow buffer.  The source was
        // just written by the sender, so it is LLC-resident.
        // The destination shadow buffer is DRAM-cold, so the full
        // read+write traffic reaches the controllers.
        sim::TraceSpan copy(ctx_.tracer, cpu, sim::TraceCat::Copy,
                            "shadow.tx_copy");
        copy.bytes(len);
        cpu.charge(ctx_.copyCost(
            cpu.time, len, ctx_.cost.shadowTxCopyBytesPerNs,
            std::uint64_t(2.0 * len * ctx_.cost.coldCopyMemFactor)));
        if (ctx_.functionalData)
            pm().copy(buf.pa, pa, len);
        ctx_.stats.add("shadow.tx_copied_bytes", len);
    }

    active_[buf.iova] = ActiveMap{buf, pa, len, dir, dev.domain()};
    ctx_.stats.add("dma.map");
    return buf.iova;
}

void
ShadowDmaApi::unmap(sim::CpuCursor &cpu, Device &dev,
                    iommu::Iova dma_addr, std::uint32_t len, Dir dir)
{
    auto it = active_.find(dma_addr);
    assert(it != active_.end() && "shadow unmap of unknown DMA address");
    ActiveMap am = it->second;
    active_.erase(it);
    assert(am.len == len);
    (void)len;
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaUnmap,
                        "dma.unmap");
    span.bytes(am.len);

    if (dir == Dir::FromDevice || dir == Dir::Bidirectional) {
        // Copy inbound data out of the shadow buffer into the driver's
        // buffer — destination is a cold kmalloc()ed buffer.
        sim::TraceSpan copy(ctx_.tracer, cpu, sim::TraceCat::Copy,
                            "shadow.rx_copy");
        copy.bytes(am.len);
        cpu.charge(ctx_.copyCost(
            cpu.time, am.len, ctx_.cost.coldCopyBytesPerNs,
            std::uint64_t(2.0 * am.len * ctx_.cost.coldCopyMemFactor)));
        if (ctx_.functionalData)
            pm().copy(am.origPa, am.buf.pa, am.len);
        ctx_.stats.add("shadow.rx_copied_bytes", am.len);
    }

    cpu.charge(ctx_.cost.shadowPoolOpNs);
    poolFree(dev, am.buf);
    ctx_.stats.add("dma.unmap");
}

std::uint64_t
ShadowDmaApi::releasePool(sim::CpuCursor &cpu, iommu::DomainId d,
                          Pool &pool)
{
    // Release every backing block: unmap the permanent PTEs, free the
    // frames, recycle the IOVA range.  The bucket lists are emptied in
    // place (not clear()ed away) so a poolAlloc holding a freelist
    // reference across a nested reclaim stays valid.
    std::uint64_t released = 0;
    constexpr unsigned kBlockOrder = 5;
    constexpr unsigned kBlockPages = 1u << kBlockOrder;
    for (const auto &[pfn, iova] : pool.blocks) {
        cpu.charge(ctx_.cost.ptePerPageNs * kBlockPages);
        for (unsigned i = 0; i < kBlockPages; ++i) {
            const bool ok = iommu_.unmapPage(
                d, iova + std::uint64_t(i) * mem::kPageSize);
            assert(ok && "shadow pool PTE vanished");
            (void)ok;
        }
        pageAlloc_.freePages(pfn, kBlockOrder);
        iovaAlloc_.free(iova, kBlockPages);
        poolFrames_ -= kBlockPages;
        released += kBlockPages;
    }
    pool.blocks.clear();
    for (auto &bucket : pool.buckets)
        bucket.clear();
    return released;
}

std::uint64_t
ShadowDmaApi::drainDomain(sim::CpuCursor &cpu, Device &dev)
{
    const iommu::DomainId d = dev.domain();
    auto pit = pools_.find(d);
    if (pit == pools_.end())
        return 0;

    // In-flight maps die with the device: the data never arrives, so
    // there is nothing to copy back — just drop the bookkeeping.  The
    // shadow buffers return with their blocks below.
    for (auto it = active_.begin(); it != active_.end();) {
        if (it->second.domain == d) {
            it = active_.erase(it);
            ctx_.stats.add("shadow.aborted_maps");
        } else {
            ++it;
        }
    }

    const std::uint64_t released = releasePool(cpu, d, pit->second);
    if (released > 0)
        ctx_.stats.add("shadow.drained_pages", released);
    return released;
}

std::uint64_t
ShadowDmaApi::shrinkIdle(sim::CpuCursor &cpu)
{
    // A pool block cannot be released while any shadow buffer carved
    // from it is in flight, and buffers of all blocks mix in the
    // bucket lists — so the shrink granularity is a whole domain with
    // zero active maps.  Domains are walked in sorted order so reclaim
    // stays deterministic.
    std::vector<iommu::DomainId> idle;
    for (const auto &[d, pool] : pools_) {
        if (pool.blocks.empty())
            continue;
        bool busy = false;
        for (const auto &[iova, am] : active_) {
            (void)iova;
            if (am.domain == d) {
                busy = true;
                break;
            }
        }
        if (!busy)
            idle.push_back(d);
    }
    std::sort(idle.begin(), idle.end());

    std::uint64_t released = 0;
    for (const iommu::DomainId d : idle)
        released += releasePool(cpu, d, pools_[d]);
    if (released > 0)
        ctx_.stats.add("shadow.shrunk_pages", released);
    return released;
}

// ---------------------------------------------------------------------

std::unique_ptr<DmaApi>
makeScheme(SchemeKind kind, sim::Context &ctx, iommu::Iommu &mmu,
           mem::PageAllocator &pa)
{
    switch (kind) {
      case SchemeKind::IommuOff:
        return std::make_unique<PassthroughDmaApi>(ctx);
      case SchemeKind::Strict:
        return std::make_unique<StrictDmaApi>(ctx, mmu);
      case SchemeKind::Deferred:
        return std::make_unique<DeferredDmaApi>(ctx, mmu);
      case SchemeKind::Shadow:
        return std::make_unique<ShadowDmaApi>(ctx, mmu, pa);
      case SchemeKind::Damn:
        assert(false && "use core::makeDamnSystem for SchemeKind::Damn");
        return nullptr;
    }
    return nullptr;
}

} // namespace damn::dma
