/**
 * @file
 * The DMA API: the layer at which all *prior* IOMMU protection schemes
 * enforce their boundary (paper sections 3-4).
 *
 * Drivers dma_map a buffer before programming a device with its DMA
 * address and dma_unmap it on completion.  The pluggable protection
 * scheme decides what those operations cost and what security they buy:
 *
 *  - passthrough  (iommu-off): DMA address == physical address.
 *  - strict:      unmap synchronously invalidates the IOTLB.
 *  - deferred:    unmap batches invalidations (vulnerability window).
 *  - shadow:      per-DMA copy through permanently-mapped shadow pages.
 *
 * DAMN's interposition layer (core/damn_dma.hh) wraps any of these as
 * the fallback path for non-DAMN buffers (paper section 5.3).
 */

#ifndef DAMN_DMA_DMA_API_HH
#define DAMN_DMA_DMA_API_HH

#include <cstdint>
#include <vector>

#include "dma/device.hh"
#include "dma/dma_types.hh"
#include "iommu/io_pgtable.hh"
#include "sim/cpu_cursor.hh"

namespace damn::dma {

/**
 * Abstract DMA-mapping API with a pluggable protection scheme.
 */
class DmaApi
{
  public:
    virtual ~DmaApi() = default;

    /**
     * Map @p len bytes at kernel address @p pa for DMA by @p dev.
     * Charges the scheme's CPU costs to @p cpu.
     * @return the DMA address to program into the device, or
     *         kMapFailed when the scheme's resources are exhausted and
     *         forced reclaim could not recover them.
     */
    virtual iommu::Iova map(sim::CpuCursor &cpu, Device &dev, mem::Pa pa,
                            std::uint32_t len, Dir dir) = 0;

    /**
     * Unmap a previously mapped buffer.  @p dma_addr and @p len must
     * match the map call.
     */
    virtual void unmap(sim::CpuCursor &cpu, Device &dev,
                       iommu::Iova dma_addr, std::uint32_t len,
                       Dir dir) = 0;

    /** One entry of a scatter-gather unmap. */
    struct UnmapReq
    {
        iommu::Iova dmaAddr;
        std::uint32_t len;
        Dir dir;
    };

    /**
     * Unmap a scatter-gather list (dma_unmap_sg): schemes that pay a
     * per-invalidation cost issue a single IOTLB invalidation for the
     * whole list, as Linux does.  Default: per-entry unmap.
     */
    virtual void
    unmapBatch(sim::CpuCursor &cpu, Device &dev,
               const std::vector<UnmapReq> &reqs)
    {
        for (const UnmapReq &r : reqs)
            unmap(cpu, dev, r.dmaAddr, r.len, r.dir);
    }

    /** Scheme name as used in the paper's figures. */
    virtual const char *name() const = 0;

    // ---- Table 1 properties ----------------------------------------
    /** Protects at sub-page (byte) granularity. */
    virtual bool subpage() const = 0;
    /** No post-unmap vulnerability window. */
    virtual bool windowFree() const = 0;
    /** Compatible with zero-copy I/O paths. */
    virtual bool zeroCopy() const = 0;

    /** Force any batched invalidations out now (deferred scheme). */
    virtual void flushPending(sim::CpuCursor &) {}

    // ---- Resource pressure -----------------------------------------

    /**
     * Constrain the scheme's DMA-API IOVA space to @p bytes (pressure
     * experiments use small spaces to hit the exhaustion wall).
     * No-op for schemes that allocate no IOVAs.
     */
    virtual void setIovaSpaceBytes(std::uint64_t) {}

    /** High-water utilization of the scheme's IOVA space in [0, 1]. */
    virtual double iovaUtilization() const { return 0.0; }

    /** Failed map() calls (resources exhausted past reclaim). */
    virtual std::uint64_t mapFailures() const { return 0; }

    // ---- Lifecycle / teardown --------------------------------------

    /**
     * Release every *long-lived* per-domain resource the scheme keeps
     * for @p dev (shadow pools, deferred queues) so the domain can be
     * detached with zero live mappings.  Per-buffer mappings the driver
     * still holds are its own to unmap first.  Also flushes pending
     * invalidations.
     * @return 4 KiB mappings this call released.
     */
    virtual std::uint64_t
    drainDomain(sim::CpuCursor &cpu, Device &dev)
    {
        (void)dev;
        flushPending(cpu);
        return 0;
    }

    /**
     * IOVA pages the scheme has allocated and not yet freed, across all
     * domains.  0 after every device drained — the audit's leak check.
     */
    virtual std::uint64_t outstandingIovas() const { return 0; }
};

} // namespace damn::dma

#endif // DAMN_DMA_DMA_API_HH
