/**
 * @file
 * Fault-and-resume loop implementation.
 */

#include "dma/faultable.hh"

#include <algorithm>

#include "iommu/iommu.hh"

namespace damn::dma {

FaultableDmaResult
faultableDma(sim::CpuCursor &cpu, Device &dev, iommu::AtsAgent &ats,
             iommu::SvaDomain &sva, iommu::Iova va, void *buf,
             std::uint64_t len, bool is_write, unsigned maxFaults,
             sim::LatencyHistogram *hist)
{
    FaultableDmaResult res;
    iommu::IommuBackend &be = dev.mmu().backend();
    sim::Context &ctx = sva.ctx();

    std::uint64_t off = 0;
    std::uint32_t group = 0;
    unsigned attempts = 0;

    for (;;) {
        const AtsDmaOutcome out = dev.dmaAts(
            ats, cpu.time, va + off,
            buf != nullptr ? static_cast<std::uint8_t *>(buf) + off
                           : nullptr,
            len - off, is_write);
        res.bytesDone += out.bytesDone;
        off += out.bytesDone;
        cpu.waitUntil(out.completes);
        if (!out.needsFault) {
            res.ok = out.ok && off == len;
            break;
        }
        if (++attempts > maxFaults)
            break;

        const iommu::IommuBackend::PageRequest req{
            sva.domain(), out.faultVa, is_write, group++, cpu.time};
        const bool accepted = be.postPageRequest(req);
        if (!accepted) {
            // Overflow auto-response: the device backs off while the
            // OS catches up on the queue, then retries the access
            // (which will fault and post again).
            ++res.autoResponses;
            cpu.waitUntil(cpu.time + ctx.cost.priRetryBackoffNs);
        }
        // OS side: drain and service everything queued — our request
        // plus any backlog (each gets its response, so conservation
        // holds when we return).
        for (const iommu::IommuBackend::PageRequest &r :
             be.fetchPageRequests()) {
            const bool serviced = sva.servicePageRequest(cpu, r, &ats);
            const sim::TimeNs wait =
                cpu.time > r.time ? cpu.time - r.time : 0;
            res.serviceNsTotal += wait;
            res.serviceNsMax = std::max(res.serviceNsMax, wait);
            if (hist != nullptr)
                hist->record(wait);
            if (serviced)
                ++res.faultsServiced;
            else
                ++res.failedServices;
        }
    }
    res.completes = cpu.time;
    return res;
}

} // namespace damn::dma
