/**
 * @file
 * ddmin implementation (Zeller & Hildebrandt's minimizing delta
 * debugging, complement-only variant) over fuzz op sequences.
 */

#include "fuzz/shrink.hh"

#include <algorithm>

namespace damn::fuzz {

namespace {

/** Does @p cand still trip the expected oracle? */
bool
reproduces(const FuzzConfig &cfg, const Sequence &cand,
           const Violation &expected, FuzzResult *out)
{
    *out = runSequence(cfg, cand);
    return out->violated && out->violation.oracle == expected.oracle;
}

} // namespace

ShrinkResult
shrink(const FuzzConfig &cfg, const Sequence &seq,
       const Violation &expected, std::size_t maxAttempts)
{
    ShrinkResult best;
    best.seq = seq;
    best.result = runSequence(cfg, seq);
    best.attempts = 1;
    if (!best.result.violated ||
        best.result.violation.oracle != expected.oracle)
        return best; // caller's premise is wrong; nothing to shrink

    // Anything after the violating op is dead weight: drop it first.
    if (best.result.violation.opIndex + 1 < best.seq.size())
        best.seq.resize(best.result.violation.opIndex + 1);

    std::size_t n = 2; // chunk granularity
    while (best.seq.size() >= 2 && best.attempts < maxAttempts) {
        n = std::min(n, best.seq.size());
        const std::size_t chunk =
            std::max<std::size_t>(1, best.seq.size() / n);
        bool reduced = false;

        // Try removing each chunk (testing the complement).
        for (std::size_t start = 0;
             start < best.seq.size() && best.attempts < maxAttempts;
             /* advance below */) {
            const std::size_t end =
                std::min(start + chunk, best.seq.size());
            Sequence cand;
            cand.reserve(best.seq.size() - (end - start));
            cand.insert(cand.end(), best.seq.begin(),
                        best.seq.begin() + std::ptrdiff_t(start));
            cand.insert(cand.end(),
                        best.seq.begin() + std::ptrdiff_t(end),
                        best.seq.end());
            FuzzResult r;
            ++best.attempts;
            if (reproduces(cfg, cand, expected, &r)) {
                best.seq = std::move(cand);
                best.result = std::move(r);
                if (best.result.violation.opIndex + 1 < best.seq.size())
                    best.seq.resize(best.result.violation.opIndex + 1);
                reduced = true;
                // Same start now names the next chunk of the smaller
                // sequence; granularity resets relative to it.
            } else {
                start = end;
            }
        }

        if (reduced) {
            n = std::max<std::size_t>(2, n - 1);
        } else if (chunk == 1) {
            break; // 1-minimal: no single op can be removed
        } else {
            n = std::min(best.seq.size(), n * 2);
        }
    }
    return best;
}

} // namespace damn::fuzz
