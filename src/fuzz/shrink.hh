/**
 * @file
 * Delta-debugging shrinker for failing fuzz sequences.
 *
 * Classic ddmin over the op list: repeatedly try removing chunks
 * (halving granularity down to single ops) and keep any subsequence
 * that still trips the *same* oracle.  Every op's operands resolve
 * modulo current state (ops.hh), so any subsequence is executable and
 * the predicate is well-defined — the precondition ddmin needs.
 *
 * The result is locally minimal: removing any single remaining op no
 * longer reproduces the violation.
 */

#ifndef DAMN_FUZZ_SHRINK_HH
#define DAMN_FUZZ_SHRINK_HH

#include "fuzz/harness.hh"

namespace damn::fuzz {

/** Outcome of a shrink run. */
struct ShrinkResult
{
    Sequence seq;          //!< the locally-minimal reproducer
    FuzzResult result;     //!< its (still-failing) run result
    std::size_t attempts = 0; //!< candidate executions spent
};

/**
 * Minimize @p seq, which must fail under @p cfg with @p expected's
 * oracle.  Candidates count as reproductions only when the violated
 * oracle name matches (the failure mode, not just "any failure"), so
 * shrinking cannot wander onto an unrelated bug.
 *
 * @param maxAttempts  budget of candidate executions (each is a full
 *                     runSequence); the best-so-far is returned when
 *                     the budget runs out.
 */
ShrinkResult shrink(const FuzzConfig &cfg, const Sequence &seq,
                    const Violation &expected,
                    std::size_t maxAttempts = 2000);

} // namespace damn::fuzz

#endif // DAMN_FUZZ_SHRINK_HH
