/**
 * @file
 * Replayable fuzz corpus files (`*.dfz`).
 *
 * A corpus file pins one cell, one op sequence, and the verdict the
 * run produced when it was recorded, in a line-oriented text format
 * that diffs and reviews cleanly:
 *
 *     dfz 1
 *     scheme strict
 *     backend vtd
 *     seed 42
 *     inject none            # or: stale-tlb / stale-devtlb
 *     verdict clean          # or the violated oracle's name
 *     ops 4
 *     map 0 3 2
 *     dma 0 0 0
 *     inject_bug 0 0 0
 *     unmap 0 0 0
 *
 * `inject stale-tlb` arms the Iotlb::debugDropInvalidations self-check
 * hook exactly as FuzzConfig::injectStaleBug does, so shrunk repros of
 * the planted bug replay faithfully; `inject stale-devtlb` likewise
 * maps to FuzzConfig::injectDevTlbBug (the ATS device-TLB variant).  Replaying a file re-executes the
 * sequence and compares the fresh verdict against the recorded one —
 * the regression-corpus contract the `damn_fuzz --replay` flag and the
 * fuzz-smoke ctest enforce.
 */

#ifndef DAMN_FUZZ_CORPUS_HH
#define DAMN_FUZZ_CORPUS_HH

#include <string>

#include "fuzz/harness.hh"

namespace damn::fuzz {

/** In-memory form of one .dfz corpus file. */
struct CorpusFile
{
    FuzzConfig cfg;       //!< cell + seed + inject flag
    Sequence seq;         //!< the literal op list (NOT regenerated)
    std::string verdict;  //!< "clean" or the violated oracle name
};

/** The verdict string a result maps to. */
std::string verdictOf(const FuzzResult &res);

/** Render @p file in the .dfz text format. */
std::string serializeCorpus(const CorpusFile &file);

/**
 * Parse .dfz text.  Unknown header keys are rejected (version-1 files
 * are fully specified).  On failure returns false and sets @p err.
 */
bool parseCorpus(const std::string &text, CorpusFile *out,
                 std::string *err);

/** Write @p file to @p path; false (with @p err) on I/O failure. */
bool saveCorpus(const std::string &path, const CorpusFile &file,
                std::string *err);

/** Read and parse @p path. */
bool loadCorpus(const std::string &path, CorpusFile *out,
                std::string *err);

/** Outcome of replaying a corpus file. */
struct ReplayOutcome
{
    bool reproduced = false; //!< fresh verdict == recorded verdict
    std::string verdict;     //!< the fresh verdict
    FuzzResult result;
};

/** Re-execute @p file's sequence and compare verdicts. */
ReplayOutcome replayCorpus(const CorpusFile &file);

} // namespace damn::fuzz

#endif // DAMN_FUZZ_CORPUS_HH
