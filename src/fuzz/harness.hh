/**
 * @file
 * Deterministic property-based chaos harness (the fuzzer core).
 *
 * generate() expands a seed into a weighted random Sequence of chaos
 * ops (ops.hh); runSequence() executes it against a freshly built
 * net::System — one {scheme} x {backend} cell — checking the invariant
 * oracles after every step:
 *
 *   stale-device-tlb    the same property one cache further out: an
 *                       ATS device-TLB (ATC) entry whose range was
 *                       unmapped and whose ATS invalidation is known
 *                       to have completed must be gone.  IOTLB flushes
 *                       never count — only completed atsInvalidate /
 *                       atsInvalidateAll verbs promote.
 *   pri-conservation    page-request accounting balances on both
 *                       backends: posted == auto-responses + pending +
 *                       fetched, and responded <= fetched.
 *   stale-translation   a mapping that was unmapped *and* whose IOTLB
 *                       invalidation is known to have completed must
 *                       never translate again (the Table-1 property).
 *                       Tracked conservatively: ranges move from a
 *                       per-domain "pending" set (unmapped, flush not
 *                       yet certain) to "must-not-translate" only on
 *                       ops whose invalidation observably completed
 *                       (strict unmap / explicit flush / global sync /
 *                       domain reset) with zero dropped invalidations.
 *   ledger-mismatch     audit::Auditor's map/unmap ledger vs the I/O
 *                       page table, cross-checked per domain.
 *   iova-overlap        no two live DMA mappings overlap in IOVA space.
 *   fault-conservation  Iommu::faults() == faultLog + overflows; on
 *                       SMMUv3 additionally faults == eventq in-ring +
 *                       drained + overflowed (satellite: evtq
 *                       accounting).
 *   liveness            the engine watchdog saw forward progress.
 *   audit-teardown      every Teardown op's full Auditor battery.
 *
 * Everything is virtual-time deterministic: the same (config, sequence)
 * yields a bit-identical FuzzResult, including the digest — the
 * property the shrinker, the corpus replays and the --jobs determinism
 * check all lean on.
 */

#ifndef DAMN_FUZZ_HARNESS_HH
#define DAMN_FUZZ_HARNESS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dma/schemes.hh"
#include "fuzz/ops.hh"
#include "iommu/backend.hh"

namespace damn::fuzz {

/** One fuzz cell: a scheme x backend pair plus generator knobs. */
struct FuzzConfig
{
    dma::SchemeKind scheme = dma::SchemeKind::Strict;
    iommu::BackendKind backend = iommu::BackendKind::Vtd;
    std::uint64_t seed = 42;
    unsigned ops = 1000;

    /**
     * Append the crafted stale-TLB trigger tail (map, warm the IOTLB,
     * arm Iotlb::debugDropInvalidations, unmap) so the injected bug is
     * exercised — the oracle self-check the acceptance criteria pin.
     */
    bool injectStaleBug = false;

    /**
     * Append the crafted stale-*device*-TLB trigger tail instead: map,
     * warm the per-device ATC via an ATS translate, arm
     * AtsAgent::debugDropInvalidations, unmap, global sync (whose ATS
     * invalidation the armed hook swallows).  The stale-device-tlb
     * oracle must trip on the tail on either backend.
     */
    bool injectDevTlbBug = false;
};

/** An oracle violation, pinned to the op that exposed it. */
struct Violation
{
    std::string oracle;   //!< e.g. "stale-translation"
    std::string detail;   //!< deterministic human-readable specifics
    std::size_t opIndex = 0;
};

/** Outcome of one executed sequence. */
struct FuzzResult
{
    bool violated = false;
    Violation violation;
    std::size_t opsExecuted = 0;  //!< ops run (stops at a violation)
    std::uint64_t digest = 0;     //!< FNV-1a fingerprint of the run
    std::map<std::string, std::uint64_t> stats;
    std::uint64_t faults = 0;
    std::uint64_t watchdogStalls = 0;
};

/** Expand (seed, ops) into the weighted random op sequence. */
Sequence generate(const FuzzConfig &cfg);

/** Execute @p seq against a fresh cell and run the oracles. */
FuzzResult runSequence(const FuzzConfig &cfg, const Sequence &seq);

/** generate() + runSequence() in one step. */
inline FuzzResult
run(const FuzzConfig &cfg)
{
    return runSequence(cfg, generate(cfg));
}

/** The four protected schemes the fuzz matrix sweeps. */
std::vector<dma::SchemeKind> fuzzSchemes();

/** Both hardware backends. */
std::vector<iommu::BackendKind> fuzzBackends();

/** Parse a scheme name ("strict", ...); false on unknown. */
bool fuzzSchemeFromName(const std::string &name, dma::SchemeKind *out);

} // namespace damn::fuzz

#endif // DAMN_FUZZ_HARNESS_HH
