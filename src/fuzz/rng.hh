/**
 * @file
 * Shared fuzzing RNG: sim::Rng (deterministic xorshift64*) plus the
 * generator helpers every fuzz harness in tree kept reinventing —
 * weighted choice, container pick, and adversarial byte soup.
 *
 * The split from sim::Rng is deliberate: simulation code draws only
 * the primitives (next/below/chance) so its stream layout is frozen,
 * while fuzzers want richer draws whose evolution must never perturb
 * simulated output.  Everything here is a pure composition of
 * sim::Rng::next(), so a fuzz::Rng seeded with S produces the same
 * sequence on every platform and every standard library.
 */

#ifndef DAMN_FUZZ_RNG_HH
#define DAMN_FUZZ_RNG_HH

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace damn::fuzz {

/** Deterministic fuzzing RNG; see sim::Rng for the core generator. */
class Rng : public sim::Rng
{
  public:
    using sim::Rng::Rng;

    /** Well-mixed 32-bit draw (the high half of one next()). */
    std::uint32_t u32() { return std::uint32_t(next() >> 32); }

    /** Uniform pick from a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        assert(!v.empty());
        return v[below(v.size())];
    }

    /**
     * Weighted choice: returns an index into @p weights with
     * probability proportional to its weight.  Zero-weight entries are
     * never chosen; the total must be nonzero.
     */
    std::size_t
    weighted(const std::vector<unsigned> &weights)
    {
        std::uint64_t total = 0;
        for (const unsigned w : weights)
            total += w;
        assert(total != 0);
        std::uint64_t roll = below(total);
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (roll < weights[i])
                return i;
            roll -= weights[i];
        }
        return weights.size() - 1; // unreachable with nonzero total
    }

    /** Random byte soup over the full 0..255 range, length < @p max_len
     *  (adversarial string inputs for parsers/escapers). */
    std::string
    bytes(std::size_t max_len)
    {
        std::string s;
        const std::uint64_t len = below(max_len);
        s.reserve(std::size_t(len));
        for (std::uint64_t i = 0; i < len; ++i)
            s += char(std::uint8_t(below(256)));
        return s;
    }

    /** Like bytes() but at least one byte long. */
    std::string
    bytes1(std::size_t max_len)
    {
        std::string s;
        const std::uint64_t len = between(1, max_len);
        s.reserve(std::size_t(len));
        for (std::uint64_t i = 0; i < len; ++i)
            s += char(std::uint8_t(below(256)));
        return s;
    }
};

} // namespace damn::fuzz

#endif // DAMN_FUZZ_RNG_HH
