/**
 * @file
 * The fuzzer's operation alphabet.
 *
 * A fuzz sequence is a flat vector of (kind, a, b, c) tuples.  The
 * operands are *unresolved*: the executor interprets them modulo the
 * live state at execution time (e.g. "unmap the (a mod live)th live
 * mapping"), so every subsequence of a valid sequence is itself valid.
 * That property is what makes delta-debugging shrinks sound — removing
 * ops can change which objects later ops land on, but never produces
 * an ill-formed program.
 */

#ifndef DAMN_FUZZ_OPS_HH
#define DAMN_FUZZ_OPS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace damn::fuzz {

/** One step of a chaos sequence. */
enum class OpKind : std::uint8_t
{
    Map,         //!< allocate pages + dma_map (device a%D, size a, dir c)
    Unmap,       //!< dma_unmap the (a mod live)th live mapping
    BatchUnmap,  //!< dma_unmap_sg of 1+b%4 live mappings from index a
    Dma,         //!< device touch inside the (a mod live)th mapping
    WildDma,     //!< device touch of an arbitrary (likely unmapped) IOVA
    Flush,       //!< DmaApi::flushPending (force batched invalidations)
    Sync,        //!< backend batchedFlushAll (global TLBI + sync)
    Advance,     //!< run the engine 1+a%2000 microseconds forward
    Unplug,      //!< surprise hot-unplug of device a%D (bus-level only)
    Replug,      //!< re-seat device a%D on the bus
    Teardown,    //!< whole-machine drain + detach + audit + re-attach
    Reset,       //!< Iommu::resetDomain (FLR) of domain a%D
    Reclaim,     //!< PressureController::reclaim (forced reclaim ladder)
    ArmFaults,   //!< enable the fault injector (seed+a, sites from b,c)
    ClearFaults, //!< FaultInjector::reset (disarm)
    DrainEvents, //!< SMMUv3: driver consumes the event queue
    Quarantine,  //!< set the per-domain quarantine threshold to 1+a%50
    InjectBug,   //!< test-only: IOTLB (b even) or device TLBs (b odd)
                 //!< drop the next 1+a%4 invalidations
    // ---- ATS / PRI (page-faultable DMA) ------------------------------
    AtsTranslate,       //!< device-side ATS walk of a live mapping
                        //!< (warms the per-device ATC)
    TouchPageable,      //!< faultable DMA into the SVA window: stall,
                        //!< post page request, service, resume
    UnmapWhileFaulting, //!< post a page request, then evict its page
                        //!< before servicing (the unmap/fault race)
    PrqOverflow,        //!< post past the PRQ/stall-table bound and
                        //!< leave the queue full (auto-responses)
};

constexpr unsigned kNumOpKinds = 22;

struct Op
{
    OpKind kind = OpKind::Map;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint32_t c = 0;

    bool
    operator==(const Op &o) const
    {
        return kind == o.kind && a == o.a && b == o.b && c == o.c;
    }
};

using Sequence = std::vector<Op>;

inline const char *
opKindName(OpKind k)
{
    switch (k) {
      case OpKind::Map:
        return "map";
      case OpKind::Unmap:
        return "unmap";
      case OpKind::BatchUnmap:
        return "batch_unmap";
      case OpKind::Dma:
        return "dma";
      case OpKind::WildDma:
        return "wild_dma";
      case OpKind::Flush:
        return "flush";
      case OpKind::Sync:
        return "sync";
      case OpKind::Advance:
        return "advance";
      case OpKind::Unplug:
        return "unplug";
      case OpKind::Replug:
        return "replug";
      case OpKind::Teardown:
        return "teardown";
      case OpKind::Reset:
        return "reset";
      case OpKind::Reclaim:
        return "reclaim";
      case OpKind::ArmFaults:
        return "arm_faults";
      case OpKind::ClearFaults:
        return "clear_faults";
      case OpKind::DrainEvents:
        return "drain_events";
      case OpKind::Quarantine:
        return "quarantine";
      case OpKind::InjectBug:
        return "inject_bug";
      case OpKind::AtsTranslate:
        return "ats_translate";
      case OpKind::TouchPageable:
        return "touch_pageable";
      case OpKind::UnmapWhileFaulting:
        return "unmap_while_faulting";
      case OpKind::PrqOverflow:
        return "prq_overflow";
    }
    return "?";
}

inline bool
opKindFromName(const std::string &name, OpKind *out)
{
    for (unsigned i = 0; i < kNumOpKinds; ++i) {
        const OpKind k = OpKind(i);
        if (name == opKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

} // namespace damn::fuzz

#endif // DAMN_FUZZ_OPS_HH
