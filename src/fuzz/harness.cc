/**
 * @file
 * Fuzz harness implementation: sequence generation, the cell executor,
 * and the invariant oracles.  See harness.hh for the oracle contracts
 * and the soundness argument for the stale-translation tracking.
 */

#include "fuzz/harness.hh"

#include <algorithm>
#include <cassert>

#include "core/audit.hh"
#include "dma/device.hh"
#include "dma/faultable.hh"
#include "fuzz/rng.hh"
#include "iommu/ats.hh"
#include "iommu/backend_smmu.hh"
#include "iommu/sva.hh"
#include "net/system.hh"

namespace damn::fuzz {

namespace {

/** DMA buffer sizes the generator draws from (b-field modulo). */
constexpr std::uint32_t kLens[6] = {64, 512, 1024, 4096, 16384, 65536};

/** Live-mapping cap: a Map beyond this executes as an Unmap, keeping
 *  the working set bounded for arbitrarily long sequences. */
constexpr std::size_t kMaxLive = 400;

/** Watchdog budget: engine dispatches allowed without op progress. */
constexpr std::uint64_t kWatchdogBudget = 200000;

/**
 * Ordered set of disjoint [lo, hi) byte ranges with coalescing insert,
 * splitting erase, and O(log n) overlap query — the representation for
 * the per-domain pending / must-not-translate IOVA range tracking.
 */
class IntervalSet
{
  public:
    void
    insert(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo >= hi)
            return;
        auto it = m_.lower_bound(lo);
        if (it != m_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= lo)
                it = prev;
        }
        while (it != m_.end() && it->first <= hi) {
            lo = std::min(lo, it->first);
            hi = std::max(hi, it->second);
            it = m_.erase(it);
        }
        m_[lo] = hi;
    }

    void
    erase(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo >= hi)
            return;
        auto it = m_.lower_bound(lo);
        if (it != m_.begin()) {
            auto prev = std::prev(it);
            if (prev->second > lo)
                it = prev;
        }
        while (it != m_.end() && it->first < hi) {
            const std::uint64_t l = it->first;
            const std::uint64_t h = it->second;
            it = m_.erase(it);
            if (l < lo)
                m_[l] = lo;
            if (h > hi) {
                m_[hi] = h;
                break;
            }
        }
    }

    bool
    overlaps(std::uint64_t lo, std::uint64_t hi) const
    {
        auto it = m_.lower_bound(lo);
        if (it != m_.end() && it->first < hi)
            return true;
        if (it != m_.begin() && std::prev(it)->second > lo)
            return true;
        return false;
    }

    /** Move every range of @p o into this set (promotion). */
    void
    absorb(IntervalSet &o)
    {
        for (const auto &[l, h] : o.m_)
            insert(l, h);
        o.m_.clear();
    }

    bool empty() const { return m_.empty(); }
    void clear() { m_.clear(); }

  private:
    std::map<std::uint64_t, std::uint64_t> m_;
};

/** One live DMA mapping the executor tracks. */
struct Mapping
{
    unsigned dev;          //!< device index (== domain id here)
    iommu::Iova iova;
    mem::Pfn pfn;
    unsigned order;        //!< buddy order of the backing block
    std::uint32_t len;
    dma::Dir dir;
};

unsigned
orderFor(unsigned pages)
{
    unsigned o = 0;
    while ((1u << o) < pages)
        ++o;
    return o;
}

// ---- Run digest (FNV-1a 64) ----------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
mixByte(std::uint64_t &h, std::uint8_t b)
{
    h ^= b;
    h *= kFnvPrime;
}

void
mixU64(std::uint64_t &h, std::uint64_t v)
{
    for (unsigned i = 0; i < 8; ++i)
        mixByte(h, std::uint8_t(v >> (8 * i)));
}

void
mixStr(std::uint64_t &h, const std::string &s)
{
    for (const char c : s)
        mixByte(h, std::uint8_t(c));
    mixByte(h, 0);
}

} // namespace

std::vector<dma::SchemeKind>
fuzzSchemes()
{
    return {dma::SchemeKind::Strict, dma::SchemeKind::Deferred,
            dma::SchemeKind::Shadow, dma::SchemeKind::Damn};
}

std::vector<iommu::BackendKind>
fuzzBackends()
{
    return {iommu::BackendKind::Vtd, iommu::BackendKind::SmmuV3};
}

bool
fuzzSchemeFromName(const std::string &name, dma::SchemeKind *out)
{
    for (const dma::SchemeKind k :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
          dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
          dma::SchemeKind::Damn}) {
        if (name == dma::schemeKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

Sequence
generate(const FuzzConfig &cfg)
{
    // Weights indexed in OpKind declaration order.  InjectBug is never
    // drawn randomly — it only appears in the crafted trigger tail.
    static const std::vector<unsigned> kWeights = {
        30, // Map
        20, // Unmap
        4,  // BatchUnmap
        14, // Dma
        3,  // WildDma
        6,  // Flush
        4,  // Sync
        8,  // Advance
        2,  // Unplug
        3,  // Replug
        1,  // Teardown
        2,  // Reset
        2,  // Reclaim
        2,  // ArmFaults
        2,  // ClearFaults
        2,  // DrainEvents
        1,  // Quarantine
        0,  // InjectBug
        8,  // AtsTranslate
        8,  // TouchPageable
        3,  // UnmapWhileFaulting
        2,  // PrqOverflow
    };
    assert(kWeights.size() == kNumOpKinds);

    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 0xf022);
    Sequence seq;
    seq.reserve(cfg.ops + 16);
    for (unsigned i = 0; i < cfg.ops; ++i) {
        Op op;
        op.kind = OpKind(rng.weighted(kWeights));
        op.a = rng.u32();
        op.b = rng.u32();
        op.c = rng.u32();
        seq.push_back(op);
    }

    if (cfg.injectStaleBug) {
        // The crafted stale-TLB trigger: quiesce (no injected faults,
        // queue drained, device present, quarantine lifted), map a
        // page, warm its IOTLB entry, arm the test-only invalidation
        // drop, unmap — and for deferred-style schemes force the
        // (dropped) flush out.  Whatever the random prefix did, the
        // no-stale-translation oracle must trip on the tail.
        seq.push_back({OpKind::ClearFaults, 0, 0, 0});
        seq.push_back({OpKind::Flush, 0, 0, 0});
        seq.push_back({OpKind::Replug, 0, 0, 0});
        seq.push_back({OpKind::Reset, 0, 0, 0});
        seq.push_back({OpKind::Map, 0, 3, 2}); // dev0, 4 KiB, bidir
        seq.push_back({OpKind::Dma, 0, 0, 0}); // newest, 1-byte read
        seq.push_back({OpKind::InjectBug, 0, 0, 0}); // drop next inval
        seq.push_back({OpKind::Unmap, 0, 0, 0});     // newest
        seq.push_back({OpKind::Flush, 0, 0, 0});
    }

    if (cfg.injectDevTlbBug) {
        // The crafted stale-device-TLB trigger: quiesce, map a page,
        // warm the per-device ATC with an ATS translate, arm the
        // device-TLB invalidation drop (InjectBug with b odd), unmap,
        // then Sync — whose atsInvalidateAll the armed hook swallows
        // silently, so the promotion logic believes the ATC is clean
        // while the entry is still cached.  The stale-device-tlb
        // oracle must trip on the tail on either backend.
        seq.push_back({OpKind::ClearFaults, 0, 0, 0});
        seq.push_back({OpKind::Flush, 0, 0, 0});
        seq.push_back({OpKind::Replug, 0, 0, 0});
        seq.push_back({OpKind::Reset, 0, 0, 0});
        seq.push_back({OpKind::Map, 0, 3, 2});          // dev0, 4 KiB
        seq.push_back({OpKind::AtsTranslate, 0, 0, 0}); // warm the ATC
        seq.push_back({OpKind::InjectBug, 0, 1, 0});    // drop ATS inval
        seq.push_back({OpKind::Unmap, 0, 0, 0});        // newest
        seq.push_back({OpKind::Sync, 0, 0, 0});         // "certain" inval
    }
    return seq;
}

FuzzResult
runSequence(const FuzzConfig &cfg, const Sequence &seq)
{
    net::SystemParams p;
    p.scheme = cfg.scheme;
    p.backend = cfg.backend;
    p.physBytes = 1ull << 28; // 256 MiB: exhaustion is reachable
    p.sockets = 2;
    p.coresPerSocket = 2;
    p.iovaSpaceBytes = 64ull << 20;

    net::System sys(p);
    sys.ctx.functionalData = false; // timing/translation identical
    sim::Context &ctx = sys.ctx;
    sim::Engine &eng = ctx.engine;

    dma::Device dev0(ctx, "fz0", sys.mmu, sys.phys, 0);
    dma::Device dev1(ctx, "fz1", sys.mmu, sys.phys, 1);
    dma::Device *devs[2] = {&dev0, &dev1};
    audit::Auditor auditor(sys.mmu);

    // ATS/PRI state: one ATC per device over the regular mapping
    // population, plus one pageable SVA window (its own domain) that
    // TouchPageable / UnmapWhileFaulting / PrqOverflow fault through.
    iommu::AtsAgent ats0(ctx, sys.mmu, dev0.domain());
    iommu::AtsAgent ats1(ctx, sys.mmu, dev1.domain());
    iommu::AtsAgent *agents[2] = {&ats0, &ats1};
    iommu::SvaDomain sva(ctx, sys.mmu, sys.pageAlloc,
                         /*residentLimitPages=*/48);
    iommu::AtsAgent svaAts(ctx, sys.mmu, sva.domain());
    constexpr iommu::Iova kSvaBase = 0x7f0000000000ull;
    constexpr unsigned kSvaPages = 64;
    std::uint32_t priGroup = 0;

    auto *smmu = dynamic_cast<iommu::SmmuV3Backend *>(&sys.mmu.backend());
    const bool trackStale = net::System::schemeUsesIommu(p) &&
                            cfg.scheme != dma::SchemeKind::Shadow;
    const bool strictScheme = cfg.scheme == dma::SchemeKind::Strict;
    const unsigned ncores = ctx.machine.numCores();

    std::size_t opsDone = 0;
    eng.armWatchdog(kWatchdogBudget,
                    [&opsDone] { return std::uint64_t(opsDone); });

    sim::TimeNs t = 0;
    std::vector<Mapping> live;
    IntervalSet pending[2]; //!< unmapped, invalidation not yet certain
    IntervalSet mustNot[2]; //!< unmapped AND certainly invalidated
    // Same two-phase tracking for the per-device ATCs.  IOTLB flushes
    // never promote these — only a completed atsInvalidateAll does
    // (the Sync op), because the ATC lives outside the IOMMU.
    IntervalSet atsPending[2];
    IntervalSet atsMustNot[2];

    FuzzResult res;
    const auto fail = [&res](std::size_t i, const char *oracle,
                             std::string detail) {
        if (res.violated)
            return;
        res.violated = true;
        res.violation = Violation{oracle, std::move(detail), i};
    };

    // Newest-first resolution of a live-mapping operand: a 0 always
    // names the most recent mapping, so crafted tails work no matter
    // how large the prefix left the working set.
    const auto liveAt = [&live](std::uint32_t a) -> std::size_t {
        return live.size() - 1 - (a % live.size());
    };

    const auto pageRange =
        [](const Mapping &m) -> std::pair<std::uint64_t, std::uint64_t> {
        const std::uint64_t lo = m.iova & ~std::uint64_t(mem::kPageSize - 1);
        const std::uint64_t pages =
            (m.len + mem::kPageSize - 1) >> mem::kPageShift;
        return {lo, lo + pages * mem::kPageSize};
    };

    const auto runOracles = [&](std::size_t i) {
        if (res.violated)
            return;
        // 1. No stale translation after a certain invalidation.
        if (trackStale) {
            for (unsigned k = 0; k < 2 && !res.violated; ++k) {
                if (mustNot[k].empty())
                    continue;
                const iommu::DomainId d = devs[k]->domain();
                for (const iommu::TlbEntry &e :
                     sys.mmu.iotlb().validEntries(d)) {
                    const std::uint64_t lo = e.iovaPage;
                    const std::uint64_t hi =
                        lo + (e.huge ? iommu::kHugePageSize
                                     : mem::kPageSize);
                    if (mustNot[k].overlaps(lo, hi)) {
                        fail(i, "stale-translation",
                             "domain " + std::to_string(d) +
                                 " still translates iova " +
                                 std::to_string(lo) +
                                 " after its invalidation completed");
                        break;
                    }
                }
            }
        }
        // 1b. No stale device-TLB entry after a certain ATS inval.
        if (trackStale) {
            for (unsigned k = 0; k < 2 && !res.violated; ++k) {
                if (atsMustNot[k].empty())
                    continue;
                for (const iommu::Iova page :
                     agents[k]->validEntries()) {
                    if (atsMustNot[k].overlaps(page,
                                               page + mem::kPageSize)) {
                        fail(i, "stale-device-tlb",
                             "device " + std::to_string(k) +
                                 " ATC still holds iova " +
                                 std::to_string(page) +
                                 " after its ATS invalidation "
                                 "completed");
                        break;
                    }
                }
            }
        }
        // 1c. PRI accounting conservation (both backends).
        if (!res.violated) {
            iommu::IommuBackend &be = sys.mmu.backend();
            const std::uint64_t posted = be.pageRequestsPosted();
            const std::uint64_t fetched = be.pageRequestsFetched();
            const std::uint64_t responded = be.pageRequestsResponded();
            const std::uint64_t autoResp =
                be.pageRequestAutoResponses();
            const std::uint64_t inq = be.pendingPageRequests();
            if (posted != autoResp + inq + fetched ||
                responded > fetched)
                fail(i, "pri-conservation",
                     std::to_string(posted) + " posted vs " +
                         std::to_string(autoResp) + " auto + " +
                         std::to_string(inq) + " queued + " +
                         std::to_string(fetched) + " fetched (" +
                         std::to_string(responded) + " responded)");
        }
        // 2. Audit ledger vs I/O page table.
        for (unsigned k = 0; k < 2 && !res.violated; ++k) {
            const iommu::DomainId d = devs[k]->domain();
            const std::uint64_t ledger = auditor.ledgerPages(d);
            const std::uint64_t table = sys.mmu.pageTable(d).mappedPages();
            if (ledger != table)
                fail(i, "ledger-mismatch",
                     "domain " + std::to_string(d) + ": ledger " +
                         std::to_string(ledger) + " vs page table " +
                         std::to_string(table));
        }
        // 3. Fault accounting conservation (facade log).
        if (!res.violated) {
            const std::uint64_t f = sys.mmu.faults();
            const std::uint64_t logged = sys.mmu.faultLog().size();
            const std::uint64_t lost = sys.mmu.faultLogOverflows();
            if (f != logged + lost)
                fail(i, "fault-conservation",
                     std::to_string(f) + " faults vs " +
                         std::to_string(logged) + " logged + " +
                         std::to_string(lost) + " overflowed");
        }
        // 4. SMMUv3 event-queue conservation (hardware-side ring).
        if (!res.violated && smmu) {
            const std::uint64_t f = sys.mmu.faults();
            const std::uint64_t inq = smmu->eventQueue().size();
            const std::uint64_t drained = smmu->eventQueueDrained();
            const std::uint64_t lost = smmu->eventQueueOverflows();
            if (f != inq + drained + lost)
                fail(i, "evtq-conservation",
                     std::to_string(f) + " faults vs " +
                         std::to_string(inq) + " queued + " +
                         std::to_string(drained) + " drained + " +
                         std::to_string(lost) + " overflowed");
        }
        // 5. Engine liveness.
        if (!res.violated && eng.stallsDetected() > 0)
            fail(i, "liveness",
                 "engine watchdog tripped: " +
                     std::to_string(eng.stallsDetected()) + " stalls");
    };

    for (std::size_t i = 0; i < seq.size() && !res.violated; ++i) {
        const Op &op = seq[i];
        sim::CpuCursor cpu(ctx.machine.core(op.c % ncores), t);

        const std::uint64_t droppedBefore =
            ctx.stats.get("iommu.inval_dropped");
        const std::uint64_t flushedBefore =
            ctx.stats.get("dma.deferred_flushes");
        bool promoteAll = false;   //!< global sync completed this op
        bool skipTracking = false; //!< op manages the sets itself
        // Ranges unmapped this op, awaiting classification.
        std::vector<std::pair<unsigned, std::pair<std::uint64_t,
                                                  std::uint64_t>>>
            unmappedNow;

        const auto doUnmap = [&](const Mapping &m) {
            sys.dmaApi->unmap(cpu, *devs[m.dev], m.iova, m.len, m.dir);
            sys.pageAlloc.freePages(m.pfn, m.order);
            if (trackStale)
                unmappedNow.push_back({m.dev, pageRange(m)});
        };

        OpKind kind = op.kind;
        if (kind == OpKind::Map && live.size() >= kMaxLive)
            kind = OpKind::Unmap; // keep the working set bounded

        switch (kind) {
          case OpKind::Map: {
            const unsigned devIdx = op.a % 2;
            const std::uint32_t len = kLens[op.b % 6];
            const auto dir = static_cast<dma::Dir>(op.c % 3);
            const unsigned pages =
                (len + mem::kPageSize - 1) >> mem::kPageShift;
            const unsigned order = orderFor(pages);
            const mem::Pfn pfn =
                sys.pageAlloc.allocPages(order, op.c % p.sockets);
            if (pfn == mem::kInvalidPfn) {
                ctx.stats.add("fuzz.map_oom");
                break;
            }
            const mem::Pa pa = mem::pfnToPa(pfn);
            const iommu::Iova iova =
                sys.dmaApi->map(cpu, *devs[devIdx], pa, len, dir);
            if (iova == dma::kMapFailed) {
                sys.pageAlloc.freePages(pfn, order);
                ctx.stats.add("fuzz.map_failed");
                break;
            }
            for (const Mapping &m : live) {
                if (iova < m.iova + m.len && m.iova < iova + len) {
                    fail(i, "iova-overlap",
                         "map at " + std::to_string(iova) + "+" +
                             std::to_string(len) +
                             " overlaps live mapping at " +
                             std::to_string(m.iova) + "+" +
                             std::to_string(m.len));
                    break;
                }
            }
            if (trackStale) {
                // A recycled IOVA is live again: whatever history the
                // range had, it may translate now.
                const std::uint64_t lo =
                    iova & ~std::uint64_t(mem::kPageSize - 1);
                const std::uint64_t hi =
                    lo + std::uint64_t(pages) * mem::kPageSize;
                pending[devIdx].erase(lo, hi);
                mustNot[devIdx].erase(lo, hi);
                atsPending[devIdx].erase(lo, hi);
                atsMustNot[devIdx].erase(lo, hi);
            }
            live.push_back({devIdx, iova, pfn, order, len, dir});
          } break;

          case OpKind::Unmap: {
            if (live.empty()) {
                ctx.stats.add("fuzz.noop");
                break;
            }
            const std::size_t idx = liveAt(op.a);
            const Mapping m = live[idx];
            live.erase(live.begin() + std::ptrdiff_t(idx));
            doUnmap(m);
          } break;

          case OpKind::BatchUnmap: {
            if (live.empty()) {
                ctx.stats.add("fuzz.noop");
                break;
            }
            const unsigned want = 1 + op.b % 4;
            const unsigned devIdx = live[liveAt(op.a)].dev;
            std::vector<std::size_t> idxs;
            for (std::size_t k = 0;
                 k < live.size() && idxs.size() < want; ++k) {
                const std::size_t idx =
                    live.size() - 1 -
                    ((op.a % live.size()) + k) % live.size();
                if (live[idx].dev == devIdx)
                    idxs.push_back(idx);
            }
            std::vector<Mapping> picked;
            for (const std::size_t idx : idxs)
                picked.push_back(live[idx]);
            std::sort(idxs.begin(), idxs.end(),
                      std::greater<std::size_t>());
            for (const std::size_t idx : idxs)
                live.erase(live.begin() + std::ptrdiff_t(idx));
            std::vector<dma::DmaApi::UnmapReq> reqs;
            for (const Mapping &m : picked)
                reqs.push_back({m.iova, m.len, m.dir});
            sys.dmaApi->unmapBatch(cpu, *devs[devIdx], reqs);
            for (const Mapping &m : picked) {
                sys.pageAlloc.freePages(m.pfn, m.order);
                if (trackStale)
                    unmappedNow.push_back({m.dev, pageRange(m)});
            }
          } break;

          case OpKind::Dma: {
            if (live.empty()) {
                ctx.stats.add("fuzz.noop");
                break;
            }
            const Mapping &m = live[liveAt(op.a)];
            const std::uint32_t off = op.b % m.len;
            const std::uint64_t len = 1 + op.c % (m.len - off);
            // Access direction honors the mapping's permission so the
            // touch warms the IOTLB instead of perm-faulting.
            const bool isw = m.dir == dma::Dir::ToDevice ? false
                             : m.dir == dma::Dir::FromDevice
                                 ? true
                                 : (op.c & 1) != 0;
            const dma::DmaOutcome o =
                devs[m.dev]->dmaTouch(t, m.iova + off, len, isw);
            if (o.completes > t)
                t = o.completes;
          } break;

          case OpKind::WildDma: {
            const unsigned devIdx = op.a % 2;
            const iommu::Iova iova =
                (iommu::Iova(op.b) << 12) | (op.c & 0xfff);
            const dma::DmaOutcome o = devs[devIdx]->dmaTouch(
                t, iova, 1 + (op.c % 4096), (op.b & 1) != 0);
            if (o.completes > t)
                t = o.completes;
          } break;

          case OpKind::Flush:
            sys.dmaApi->flushPending(cpu);
            break;

          case OpKind::Sync: {
            const sim::TimeNs done =
                sys.mmu.backend().batchedFlushAll(*cpu.core, cpu.time);
            cpu.waitUntil(done);
            // Global sync also shoots down both device ATCs — the ATS
            // verbs ride the same droppable invalidation interface.
            for (unsigned k = 0; k < 2; ++k)
                cpu.waitUntil(sys.mmu.backend().atsInvalidateAll(
                    *cpu.core, cpu.time, *agents[k],
                    devs[k]->domain()));
            promoteAll = true; // gated on zero dropped invalidations
          } break;

          case OpKind::Advance: {
            const sim::TimeNs dur =
                sim::TimeNs(1 + op.a % 2000) * 1000; // 1 us .. 2 ms
            eng.run(t + dur);
            t += dur;
          } break;

          case OpKind::Unplug:
            devs[op.a % 2]->unplug();
            break;

          case OpKind::Replug:
            devs[op.a % 2]->replug();
            break;

          case OpKind::Teardown: {
            skipTracking = true;
            while (!live.empty()) {
                const Mapping m = live.back();
                live.pop_back();
                sys.dmaApi->unmap(cpu, *devs[m.dev], m.iova, m.len,
                                  m.dir);
                sys.pageAlloc.freePages(m.pfn, m.order);
            }
            sys.dmaApi->flushPending(cpu);
            for (unsigned k = 0; k < 2; ++k)
                sys.dmaApi->drainDomain(cpu, *devs[k]);
            for (unsigned k = 0; k < 2 && !res.violated; ++k) {
                const iommu::DomainId d = devs[k]->domain();
                const std::uint64_t forced = sys.mmu.detachDomain(d);
                std::uint64_t outstanding =
                    sys.dmaApi->outstandingIovas();
                if (sys.damnMode())
                    outstanding += sys.damn->outstandingIovaSlots(d);
                const audit::TeardownReport rep =
                    auditor.verifyTeardown(d, outstanding, forced);
                if (!rep.clean()) {
                    std::string detail =
                        "domain " + std::to_string(d) + ":";
                    for (const std::string &v : rep.violations)
                        detail += " [" + v + "]";
                    fail(i, "audit-teardown", detail);
                }
            }
            for (unsigned k = 0; k < 2; ++k) {
                sys.mmu.attachDomain(devs[k]->domain());
                devs[k]->replug();
            }
            for (unsigned k = 0; k < 2; ++k) {
                agents[k]->reset(); // detach implies device FLR
                pending[k].clear();
                mustNot[k].clear();
                atsPending[k].clear();
                atsMustNot[k].clear();
            }
          } break;

          case OpKind::Reset: {
            const unsigned k = op.a % 2;
            sys.mmu.resetDomain(devs[k]->domain());
            // resetDomain's IOTLB flush is a direct hardware call, not
            // a droppable queued command: promotion is unconditional.
            // FLR also clears the device's ATC outright.
            agents[k]->reset();
            if (trackStale) {
                mustNot[k].absorb(pending[k]);
                atsMustNot[k].absorb(atsPending[k]);
            }
          } break;

          case OpKind::Reclaim:
            ctx.pressure.reclaim(cpu);
            break;

          case OpKind::ArmFaults:
            ctx.faults.enable(cfg.seed * 1000003 + op.a);
            ctx.faults.setProbability(sim::FaultSite::IommuInval,
                                      double(op.b % 64) / 256.0);
            ctx.faults.setProbability(sim::FaultSite::DmaTranslate,
                                      double(op.c % 64) / 512.0);
            ctx.faults.setProbability(sim::FaultSite::PageAlloc,
                                      double((op.b >> 8) % 16) / 256.0);
            break;

          case OpKind::ClearFaults:
            ctx.faults.reset();
            break;

          case OpKind::DrainEvents:
            if (smmu)
                smmu->drainEventQueue();
            break;

          case OpKind::Quarantine:
            sys.mmu.setQuarantineThreshold(1 + op.a % 50);
            break;

          case OpKind::InjectBug:
            if ((op.b & 1) != 0) {
                // Odd b: plant the bug one cache out — the device
                // TLBs swallow the next ATS invalidations.
                agents[0]->debugDropInvalidations(1 + op.a % 4);
                agents[1]->debugDropInvalidations(1 + op.a % 4);
            } else {
                sys.mmu.iotlb().debugDropInvalidations(1 + op.a % 4);
            }
            break;

          case OpKind::AtsTranslate: {
            if (live.empty()) {
                ctx.stats.add("fuzz.noop");
                break;
            }
            const Mapping &m = live[liveAt(op.a)];
            const std::uint32_t off = op.b % m.len;
            const bool isw = m.dir == dma::Dir::ToDevice ? false
                             : m.dir == dma::Dir::FromDevice
                                 ? true
                                 : (op.c & 1) != 0;
            const iommu::AtsAgent::Result r =
                agents[m.dev]->translate(m.iova + off, isw);
            t += r.latencyNs;
          } break;

          case OpKind::TouchPageable: {
            const iommu::Iova va =
                kSvaBase +
                iommu::Iova(op.a % kSvaPages) * mem::kPageSize;
            const std::uint64_t len = 1 + op.b % (4 * mem::kPageSize);
            dma::faultableDma(cpu, *devs[op.c % 2], svaAts, sva, va,
                              nullptr, len, (op.b & 1) != 0,
                              /*maxFaults=*/8);
          } break;

          case OpKind::UnmapWhileFaulting: {
            const iommu::Iova va =
                kSvaBase +
                iommu::Iova(op.a % kSvaPages) * mem::kPageSize;
            // Queue the page's fault, then evict the page before the
            // handler runs — the unmap-while-faulting race.  The
            // handler must re-fault it cleanly (or auto-respond).
            sys.mmu.backend().postPageRequest(
                {sva.domain(), va, (op.b & 1) != 0, priGroup++,
                 cpu.time});
            sva.evict(cpu, va, &svaAts);
            for (const iommu::IommuBackend::PageRequest &r :
                 sys.mmu.backend().fetchPageRequests())
                sva.servicePageRequest(cpu, r, &svaAts);
          } break;

          case OpKind::PrqOverflow: {
            // Post past the queue bound and leave it full: the tail
            // posts must auto-respond, and the backlog stays queued
            // until the next TouchPageable drains it.
            const unsigned depth = std::max(ctx.cost.vtdPrqDepth,
                                            ctx.cost.smmuStallDepth);
            for (unsigned j = 0; j < depth + 4; ++j) {
                const iommu::Iova va =
                    kSvaBase + iommu::Iova((op.a + j) % kSvaPages) *
                                   mem::kPageSize;
                sys.mmu.backend().postPageRequest(
                    {sva.domain(), va, true, priGroup++, cpu.time});
            }
          } break;
        }

        if (cpu.time > t)
            t = cpu.time;

        // ---- Stale-translation bookkeeping --------------------------
        // Promote pending ranges to must-not-translate only when an
        // invalidation covering them observably completed this op with
        // zero drops; any drop poisons certainty for everything still
        // pending (conservative, hence sound).
        if (trackStale && !skipTracking) {
            const std::uint64_t dropped =
                ctx.stats.get("iommu.inval_dropped") - droppedBefore;
            const std::uint64_t flushed =
                ctx.stats.get("dma.deferred_flushes") - flushedBefore;
            if (dropped == 0) {
                if (strictScheme)
                    for (const auto &[k, r] : unmappedNow)
                        mustNot[k].insert(r.first, r.second);
                if (flushed > 0 || promoteAll)
                    for (unsigned k = 0; k < 2; ++k)
                        mustNot[k].absorb(pending[k]);
            } else {
                for (unsigned k = 0; k < 2; ++k)
                    pending[k].clear();
            }
            if (!strictScheme)
                for (const auto &[k, r] : unmappedNow)
                    pending[k].insert(r.first, r.second);
            // Device-TLB tracking: the DMA-API unmap path never
            // invalidates ATCs, so unmapped ranges always start
            // pending and only a completed global ATS shootdown (the
            // Sync op) promotes them; a dropped invalidation poisons
            // certainty exactly as for the IOTLB sets.
            if (dropped == 0) {
                if (promoteAll)
                    for (unsigned k = 0; k < 2; ++k)
                        atsMustNot[k].absorb(atsPending[k]);
            } else {
                for (unsigned k = 0; k < 2; ++k)
                    atsPending[k].clear();
            }
            for (const auto &[k, r] : unmappedNow)
                atsPending[k].insert(r.first, r.second);
        }

        ++opsDone;
        res.opsExecuted = opsDone;
        runOracles(i);
    }

    eng.disarmWatchdog();

    res.faults = sys.mmu.faults();
    res.watchdogStalls = eng.stallsDetected();
    res.stats = ctx.stats.snapshot();

    std::uint64_t h = kFnvOffset;
    mixStr(h, "damn-fuzz-v1");
    mixStr(h, dma::schemeKindName(cfg.scheme));
    mixStr(h, iommu::backendKindName(cfg.backend));
    mixU64(h, cfg.seed);
    mixU64(h, res.opsExecuted);
    mixU64(h, res.violated ? 1 : 0);
    mixStr(h, res.violation.oracle);
    mixStr(h, res.violation.detail);
    mixU64(h, res.violation.opIndex);
    mixU64(h, res.faults);
    mixU64(h, res.watchdogStalls);
    mixU64(h, std::uint64_t(eng.now()));
    for (const auto &[name, value] : res.stats) {
        mixStr(h, name);
        mixU64(h, value);
    }
    res.digest = h;
    return res;
}

} // namespace damn::fuzz
