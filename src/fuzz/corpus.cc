/**
 * @file
 * .dfz corpus file serialization, parsing, and replay.
 */

#include "fuzz/corpus.hh"

#include <fstream>
#include <sstream>

namespace damn::fuzz {

namespace {

/** Strip a trailing '#' comment and surrounding whitespace. */
std::string
cleanLine(std::string line)
{
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos)
        line.erase(hash);
    const char *ws = " \t\r\n";
    const std::size_t b = line.find_first_not_of(ws);
    if (b == std::string::npos)
        return {};
    const std::size_t e = line.find_last_not_of(ws);
    return line.substr(b, e - b + 1);
}

bool
parseU64(const std::string &tok, std::uint64_t *out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : tok) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + std::uint64_t(c - '0');
    }
    *out = v;
    return true;
}

} // namespace

std::string
verdictOf(const FuzzResult &res)
{
    return res.violated ? res.violation.oracle : "clean";
}

std::string
serializeCorpus(const CorpusFile &file)
{
    std::ostringstream os;
    os << "dfz 1\n";
    os << "scheme " << dma::schemeKindName(file.cfg.scheme) << "\n";
    os << "backend " << iommu::backendKindName(file.cfg.backend) << "\n";
    os << "seed " << file.cfg.seed << "\n";
    os << "inject "
       << (file.cfg.injectDevTlbBug
               ? "stale-devtlb"
               : file.cfg.injectStaleBug ? "stale-tlb" : "none")
       << "\n";
    os << "verdict " << file.verdict << "\n";
    os << "ops " << file.seq.size() << "\n";
    for (const Op &op : file.seq)
        os << opKindName(op.kind) << " " << op.a << " " << op.b << " "
           << op.c << "\n";
    return os.str();
}

bool
parseCorpus(const std::string &text, CorpusFile *out, std::string *err)
{
    std::istringstream is(text);
    std::string raw;
    CorpusFile file;
    bool sawMagic = false, sawVerdict = false;
    std::size_t opsDeclared = 0;
    bool inOps = false;
    std::size_t lineno = 0;

    const auto bad = [&](const std::string &what) {
        if (err)
            *err = "line " + std::to_string(lineno) + ": " + what;
        return false;
    };

    while (std::getline(is, raw)) {
        ++lineno;
        const std::string line = cleanLine(raw);
        if (line.empty())
            continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;

        if (!sawMagic) {
            std::string ver;
            ls >> ver;
            if (key != "dfz" || ver != "1")
                return bad("expected 'dfz 1' header");
            sawMagic = true;
            continue;
        }

        if (inOps) {
            OpKind kind;
            if (!opKindFromName(key, &kind))
                return bad("unknown op '" + key + "'");
            std::string ta, tb, tc;
            ls >> ta >> tb >> tc;
            std::uint64_t a = 0, b = 0, c = 0;
            if (!parseU64(ta, &a) || !parseU64(tb, &b) ||
                !parseU64(tc, &c))
                return bad("op needs three numeric operands");
            file.seq.push_back({kind, std::uint32_t(a),
                                std::uint32_t(b), std::uint32_t(c)});
            continue;
        }

        std::string val;
        ls >> val;
        if (key == "scheme") {
            if (!fuzzSchemeFromName(val, &file.cfg.scheme))
                return bad("unknown scheme '" + val + "'");
        } else if (key == "backend") {
            if (!iommu::backendFromName(val, &file.cfg.backend))
                return bad("unknown backend '" + val + "'");
        } else if (key == "seed") {
            if (!parseU64(val, &file.cfg.seed))
                return bad("bad seed");
        } else if (key == "inject") {
            if (val == "none") {
                file.cfg.injectStaleBug = false;
                file.cfg.injectDevTlbBug = false;
            } else if (val == "stale-tlb") {
                file.cfg.injectStaleBug = true;
            } else if (val == "stale-devtlb") {
                file.cfg.injectDevTlbBug = true;
            } else {
                return bad("unknown inject mode '" + val + "'");
            }
        } else if (key == "verdict") {
            if (val.empty())
                return bad("empty verdict");
            file.verdict = val;
            sawVerdict = true;
        } else if (key == "ops") {
            std::uint64_t n = 0;
            if (!parseU64(val, &n))
                return bad("bad op count");
            opsDeclared = std::size_t(n);
            inOps = true;
        } else {
            return bad("unknown header key '" + key + "'");
        }
    }

    if (!sawMagic)
        return bad("missing 'dfz 1' header");
    if (!sawVerdict)
        return bad("missing verdict");
    if (!inOps)
        return bad("missing ops section");
    if (file.seq.size() != opsDeclared)
        return bad("declared " + std::to_string(opsDeclared) +
                   " ops but found " + std::to_string(file.seq.size()));
    file.cfg.ops = unsigned(file.seq.size());
    *out = std::move(file);
    return true;
}

bool
saveCorpus(const std::string &path, const CorpusFile &file,
           std::string *err)
{
    std::ofstream os(path, std::ios::trunc);
    if (!os) {
        if (err)
            *err = "cannot open " + path + " for writing";
        return false;
    }
    os << serializeCorpus(file);
    os.flush();
    if (!os) {
        if (err)
            *err = "write to " + path + " failed";
        return false;
    }
    return true;
}

bool
loadCorpus(const std::string &path, CorpusFile *out, std::string *err)
{
    std::ifstream is(path);
    if (!is) {
        if (err)
            *err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseCorpus(buf.str(), out, err);
}

ReplayOutcome
replayCorpus(const CorpusFile &file)
{
    ReplayOutcome out;
    out.result = runSequence(file.cfg, file.seq);
    out.verdict = verdictOf(out.result);
    out.reproduced = out.verdict == file.verdict;
    return out;
}

} // namespace damn::fuzz
