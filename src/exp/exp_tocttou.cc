/**
 * @file
 * Figure 8: CPU cost of DAMN's TOCTTOU copy-on-access defense.  An
 * XOR netfilter callback touches a growing prefix of each segment's
 * payload through the skbuff accessor API; under damn every accessed
 * byte is first copied out of the device's reach.
 */

#include <algorithm>

#include "exp/experiment.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(fig8_tocttou)
{
    Experiment e;
    e.name = "fig8_tocttou";
    e.title = "CPU% vs bytes accessed per segment "
              "(XOR netfilter, 14-core RX)";
    e.paper = "Figure 8";
    e.axes = {"scheme", "touch_bytes"};
    e.run = [](RunCtx &ctx) {
        const auto schemes = ctx.schemesAmong(
            {dma::SchemeKind::IommuOff, dma::SchemeKind::Shadow,
             dma::SchemeKind::Damn});
        for (const std::uint32_t touch :
             {0u, 64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
            for (const dma::SchemeKind k : schemes) {
                work::NetperfOpts o;
                o.scheme = k;
                o.mode = work::NetMode::Rx;
                o.instances = 14;
                o.coreLimit = 14;
                o.segBytes = 64 * 1024;
                o.costFactor = 1.6; // fewer flows, less interference
                o.runWindow = ctx.window;
                const auto run = work::runNetperf(
                    o, [touch](work::NetperfRun &r) {
                        if (touch == 0)
                            return;
                        r.stack->addHook([touch, &r](
                                             sim::CpuCursor &cpu,
                                             net::SkBuff &skb,
                                             net::SkbAccessor &acc) {
                            const std::uint32_t n =
                                std::min<std::uint32_t>(touch,
                                                        skb.len());
                            // Inspect (and thereby secure) the
                            // bytes, then XOR them.
                            acc.access(cpu, skb, 0, n);
                            cpu.charge(sim::TimeNs(
                                double(n) /
                                r.sys->ctx.cost.xorBytesPerNs));
                        });
                    });
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.out.param("touch_bytes", std::uint64_t(touch));
                ctx.out.common(run.common);
            }
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
