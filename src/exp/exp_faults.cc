/**
 * @file
 * Fault storm: goodput degradation vs injected DMA-fault rate, per
 * scheme.  The injector drops NIC RX DMAs at a fixed-seed
 * probability; every dropped segment costs a retransmission timeout
 * plus a resend.
 */

#include "exp/experiment.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(fault_storm)
{
    Experiment e;
    e.name = "fault_storm";
    e.title = "RX goodput and recovery accounting vs injected nic.rx "
              "fault rate";
    e.paper = "extension";
    e.axes = {"scheme", "rate"};
    // Short windows: the storm sweeps 20 cells.
    e.defaultWindow = {5 * sim::kNsPerMs, 30 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        const std::pair<double, const char *> rates[] = {
            {0.0, "0"},
            {0.0001, "0.0001"},
            {0.001, "0.001"},
            {0.01, "0.01"},
        };
        for (const dma::SchemeKind k : ctx.schemes) {
            for (const auto &[rate, label] : rates) {
                work::NetperfOpts o =
                    work::multiCoreOpts(k, work::NetMode::Rx);
                o.runWindow = ctx.window;
                const auto run = work::runNetperf(
                    o, [&](work::NetperfRun &r) {
                        if (rate > 0.0) {
                            r.sys->ctx.faults.enable(ctx.seed);
                            r.sys->ctx.faults.setProbability(
                                sim::FaultSite::NicRx, rate);
                        }
                    });
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.out.param("rate", label);
                ctx.out.common(run.common);
                ctx.out.metric("drops", double(run.res.drops),
                               "count");
                ctx.out.metric("retransmits",
                               double(run.res.retransmits), "count");
                ctx.out.metric("failed_flows",
                               double(run.res.failedFlows), "count");
            }
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
