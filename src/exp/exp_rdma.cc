/**
 * @file
 * rdma_pagefault: page-faultable DMA (ATS/PRI) under a faulting RDMA
 * workload, swept over touched-memory footprint.
 *
 * The workload DMAs into an SVA domain (IOVA = process VA, nothing
 * pinned) with a bounded resident set, so growing the footprint drives
 * the device from ATC-hit steady state into fault-and-resume churn.
 * Each run reports the PRI picture — faults serviced, auto-responses,
 * page-request-queue high-water mark, device-TLB hit rate, and mean
 * post-to-resume fault-service latency — next to the usual throughput
 * and CPU numbers.  Native axis is both backends: VT-d services
 * requests through the PRQ registers, SMMUv3 through stall/resume
 * events, and the sweep shows where the two models diverge.
 */

#include "exp/experiment.hh"
#include "workloads/rdma.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(rdma_pagefault)
{
    Experiment e;
    e.name = "rdma_pagefault";
    e.title = "Faulting RDMA: touched footprint vs page-fault service "
              "latency (ATS/PRI, VT-d vs SMMUv3)";
    e.paper = "extension";
    e.axes = {"scheme", "backend", "footprint_kb"};
    e.defaultWindow = work::RunWindow{2 * sim::kNsPerMs,
                                      10 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        constexpr std::uint64_t kFootprints[] = {
            1ull << 20, 4ull << 20, 16ull << 20};
        // Every (backend, footprint, scheme) point builds a private
        // machine: route them through the intra-run cell pool
        // (--intra-jobs).
        std::vector<Cell> cells;
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd,
                             iommu::BackendKind::SmmuV3})) {
            for (const std::uint64_t fp : kFootprints) {
                for (const dma::SchemeKind k : ctx.schemesAmong(
                         {dma::SchemeKind::IommuOff,
                          dma::SchemeKind::Strict,
                          dma::SchemeKind::Deferred,
                          dma::SchemeKind::Shadow})) {
                    const std::string name =
                        std::string(iommu::backendKindName(bk)) +
                        "/" + std::to_string(fp >> 10) + "kb/" +
                        dma::schemeKindName(k);
                    cells.push_back({name, [&ctx, bk, fp,
                                            k](Collector &col) {
                        work::RdmaOpts o;
                        o.scheme = k;
                        o.footprintBytes = fp;
                        o.seed = ctx.seed;
                        o.runWindow = ctx.window;
                        o.trace = ctx.traceEvents;
                        o.sysParams.backend = bk;
                        const work::RdmaResult r = work::runRdma(o);
                        col.beginRun(dma::schemeKindName(k));
                        col.param("backend",
                                  iommu::backendKindName(bk));
                        col.param("footprint_kb", fp >> 10);
                        col.metric("faults_serviced",
                                   double(r.faultsServiced), "faults");
                        col.metric("auto_responses",
                                   double(r.autoResponses),
                                   "responses");
                        col.metric("prq_max_depth",
                                   double(r.prqMaxDepth), "entries");
                        col.metric("devtlb_hit_rate",
                                   r.devTlbHitRate * 100.0, "%");
                        col.metric("fault_service_avg_ns",
                                   r.avgFaultServiceNs, "ns");
                        col.common(r.common, /*with_latency=*/true);
                    }});
                }
            }
        }
        ctx.runCells(std::move(cells));
    };
    return e;
}

} // namespace
} // namespace damn::exp
