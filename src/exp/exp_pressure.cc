/**
 * @file
 * Pressure storm: drive every scheme into IOVA / memory exhaustion and
 * back out, and verify graceful degradation instead of asserts or
 * hangs.
 *
 * Two storm families, swept per scheme:
 *
 *  - IOVA storms shrink the DMA-API IOVA space (SystemParams::
 *    iovaSpaceBytes) far below what the posted RX rings and in-flight
 *    TX segments want, so every map() walks the forced-reclaim ladder:
 *    force-flush batched invalidations (the deferred scheme's fq_ring
 *    fallback), then generic pressure reclaim, then a counted failure
 *    the driver absorbs with backoff.
 *  - Memory storms shrink physical memory (SystemParams::physBytes) so
 *    the page allocator, kmalloc, the page-frag allocator, DAMN's
 *    magazines, and shadow pools all hit their exhaustion walls and
 *    the registered reclaimers (damn_shrink, shadow_shrink) must give
 *    memory back for traffic to keep trickling.
 *
 * The engine's stall watchdog is armed for the whole run: any retry
 * livelock shows up as a nonzero watchdog_stalls metric (must be 0).
 * After the storm, a relief phase tears the rings down, drains the
 * domain, and proves recovery by performing one fresh alloc + map.
 * Everything is virtual-time deterministic: byte-identical JSON at a
 * fixed seed, any --jobs value.
 */

#include "exp/experiment.hh"
#include "workloads/netperf.hh"

#include <string>
#include <vector>

namespace damn::exp {
namespace {

/** One point of the storm sweep. */
struct StormSpec
{
    const char *storm;            //!< axis value: "iova" / "mem"
    std::uint64_t iovaSpaceBytes; //!< 0 = scheme's full space
    std::uint64_t physBytes;      //!< 0 = SystemParams default
    /** Memory storms pin pages at boot until only this many frames
     *  stay free, so refill/kmalloc/cache-growth all hit the wall
     *  regardless of how small the workload's own footprint is.  The
     *  hog is released at relief time (pressure going away). */
    std::uint64_t keepFreeFrames = 0;
};

/** Dispatch budget the progress probe may stay flat for before the
 *  watchdog declares a livelock.  Bounded-retry backoff paths emit
 *  events at ~10/ms/flow, so an honest stall needs minutes of virtual
 *  time to reach this — a real livelock reaches it instantly. */
constexpr std::uint64_t kStallBudgetEvents = 200'000;

/** How long the relief phase may run before quiesced() is checked
 *  (covers the deepest retransmit/backoff chain). */
constexpr sim::TimeNs kReliefNs = 5 * sim::kNsPerMs;

void
stormOne(const RunCtx &ctx, Collector &col, dma::SchemeKind kind,
         iommu::BackendKind backend, const StormSpec &spec)
{
    work::NetperfOpts o;
    o.scheme = kind;
    o.mode = work::NetMode::Bidi;
    o.instances = 4;
    o.coreLimit = 2;
    o.segBytes = 16 * 1024;
    o.window = 32;
    o.runWindow = ctx.window;
    o.sysParams.backend = backend;
    o.sysParams.iovaSpaceBytes = spec.iovaSpaceBytes;
    if (spec.physBytes != 0)
        o.sysParams.physBytes = spec.physBytes;

    work::NetperfRun run = work::makeNetperfSystem(o);
    net::System &sys = *run.sys;

    // Memory storm: hog the page allocator down to the configured
    // residue before any traffic starts.
    std::vector<mem::Pfn> hog;
    if (spec.keepFreeFrames != 0) {
        while (sys.pageAlloc.freeFrames() > spec.keepFreeFrames) {
            const mem::Pfn pfn = sys.pageAlloc.allocPages(0, 0);
            if (pfn == mem::kInvalidPfn)
                break;
            hog.push_back(pfn);
        }
    }

    // Livelock sentry: "progress" is segments moving or teardown
    // advancing; bounded-retry loops that converge (to failed flows and
    // an empty queue) never accumulate the dispatch budget.
    const sim::Stats &st = sys.ctx.stats;
    sys.ctx.engine.armWatchdog(kStallBudgetEvents, [&st] {
        return st.get("net.rx_segments") + st.get("net.tx_segments") +
               st.get("net.rx_aborted_buffers") +
               st.get("net.tx_aborted_segments") +
               st.get("net.ring_teardowns");
    });

    net::StreamEngine stream(
        sys, *run.nic, *run.stack,
        net::StreamConfig{ctx.window.warmupNs, ctx.window.measureNs,
                          1.0});
    work::addNetperfFlows(run, stream, o);
    const net::StreamResult res = stream.run();

    // ---- Relief: tear down, drain, and prove the system recovered ---
    std::uint64_t drained = 0;
    bool quiesced = false;
    bool recovered = false;
    {
        // The storm lifts: give the pinned memory back first, then let
        // teardown and the straggling retries run against a machine
        // that can allocate again.
        for (const mem::Pfn pfn : hog)
            sys.pageAlloc.freePages(pfn, 0);
        hog.clear();
        sim::CpuCursor cpu(sys.ctx.machine.core(0), sys.ctx.now());
        stream.teardown(cpu);
        sys.ctx.engine.run(std::max(cpu.time, sys.ctx.now()) +
                           kReliefNs);
        quiesced = stream.quiesced();
    }
    {
        sim::CpuCursor cpu(sys.ctx.machine.core(0), sys.ctx.now());
        drained = sys.dmaApi->drainDomain(cpu, *run.nic);
        // Recovery probe: after the storm + drain, one ordinary
        // alloc + map + unmap must succeed again.
        const mem::Pfn pfn = sys.pageAlloc.allocPages(0, 0);
        if (pfn != mem::kInvalidPfn) {
            const iommu::Iova dma = sys.dmaApi->map(
                cpu, *run.nic, mem::pfnToPa(pfn), mem::kPageSize,
                dma::Dir::FromDevice);
            if (dma != dma::kMapFailed) {
                recovered = true;
                sys.dmaApi->unmap(cpu, *run.nic, dma, mem::kPageSize,
                                  dma::Dir::FromDevice);
            }
            sys.pageAlloc.freePages(pfn, 0);
        }
    }
    // Let every straggler retry timer fire while the watchdog is still
    // armed: a drain that livelocks counts as a stall, not a hang.
    sys.ctx.engine.runAll();
    sys.ctx.engine.disarmWatchdog();

    Run &row = col.beginRun(dma::schemeKindName(kind));
    ctx.backendParam(col, backend);
    col.param("storm", std::string(spec.storm));
    col.param("iova_kbytes", spec.iovaSpaceBytes / 1024);
    col.param("phys_mbytes",
              (spec.physBytes ? spec.physBytes
                              : o.sysParams.physBytes) >>
                  20);
    col.param("free_frames", spec.keepFreeFrames);
    col.metric("gbps", res.totalGbps, "Gb/s");
    col.metric("iova_exhausted",
               double(st.get("iommu.iova_exhausted")), "count");
    col.metric("forced_flushes",
               double(st.get("iommu.iova_forced_flushes")), "count");
    col.metric("flush_recoveries",
               double(st.get("iommu.iova_flush_recoveries") +
                      st.get("iommu.iova_reclaim_recoveries")),
               "count");
    col.metric("map_fails", double(sys.dmaApi->mapFailures()),
               "count");
    col.metric("reclaim_events",
               double(sys.ctx.pressure.reclaimEvents()), "count");
    col.metric("reclaimed_units",
               double(sys.ctx.pressure.reclaimedUnits()), "units");
    col.metric("tx_throttled", double(st.get("net.tx_throttled")),
               "count");
    col.metric("rx_refill_fails",
               double(st.get("net.rx_refill_fails")), "count");
    col.metric("drops", double(res.drops), "count");
    col.metric("failed_flows", double(res.failedFlows), "count");
    col.metric("drained_pages", double(drained), "pages");
    col.metric("watchdog_stalls",
               double(sys.ctx.engine.stallsDetected()), "count");
    col.metric("quiesced", quiesced ? 1.0 : 0.0, "bool");
    col.metric("recovered", recovered ? 1.0 : 0.0, "bool");
    row.stats = sys.ctx.stats.snapshot();
}

DAMN_EXPERIMENT(pressure_storm)
{
    Experiment e;
    e.name = "pressure_storm";
    e.title = "Resource-pressure storms: IOVA/memory exhaustion and "
              "recovery per scheme (no asserts, no hangs)";
    e.paper = "extension";
    e.axes = {"scheme", "backend", "storm", "iova_kbytes",
              "phys_mbytes", "free_frames"};
    e.defaultWindow = {5 * sim::kNsPerMs, 20 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        // IOVA storms: 512 KiB starves even the posted RX rings;
        // 2 MiB fits the rings but not the deferred scheme's pinned
        // backlog.  Memory storms: 8 MiB of physical memory (the page
        // allocator's 2-zone floor) with a boot-time hog pinning all
        // but the last 192 / 768 frames, so refills, kmalloc, and
        // cache growth all fail until the hog lifts at relief time.
        const StormSpec sweep[] = {
            {"iova", 512 * 1024, 0, 0},
            {"iova", 2 * 1024 * 1024, 0, 0},
            {"mem", 0, 8ull << 20, 192},
            {"mem", 0, 8ull << 20, 768},
        };
        const std::vector<dma::SchemeKind> schemes = ctx.schemesAmong(
            {dma::SchemeKind::Strict, dma::SchemeKind::Deferred,
             dma::SchemeKind::Shadow, dma::SchemeKind::Damn});
        // Native backend axis is the baseline VT-d; --backend widens
        // the sweep (e.g. --backend=all exercises the SMMUv3 cmdq
        // stall path under the same exhaustion storms).  Every storm
        // point is a private machine: route them through the
        // intra-run cell pool (--intra-jobs).
        std::vector<Cell> cells;
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
            for (const dma::SchemeKind k : schemes)
                for (const StormSpec &spec : sweep) {
                    const std::string name =
                        std::string(iommu::backendKindName(bk)) +
                        "/" + dma::schemeKindName(k) + "/" +
                        spec.storm;
                    cells.push_back(
                        {name, [&ctx, bk, k, spec](Collector &col) {
                             stormOne(ctx, col, k, bk, spec);
                         }});
                }
        ctx.runCells(std::move(cells));
    };
    return e;
}

} // namespace
} // namespace damn::exp
