/**
 * @file
 * The `damn_bench` driver: experiment selection, execution, text
 * report, and the machine-readable JSON schema.
 *
 * Split from main() so tests can exercise every stage — argument
 * parsing, selection, runs, and serialization — in-process.
 */

#ifndef DAMN_EXP_DRIVER_HH
#define DAMN_EXP_DRIVER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "exp/experiment.hh"
#include "exp/json.hh"

namespace damn::exp {

/** Schema version of the --json output (bump on breaking change).
 *  v2: runs gained an "attribution" cost-attribution block. */
constexpr int kJsonSchemaVersion = 2;

/** Parsed command line of one damn_bench invocation. */
struct DriverOptions
{
    bool list = false;
    bool help = false;
    std::string only;  //!< glob over experiment names; empty = all
    std::vector<dma::SchemeKind> schemes = defaultSchemes();
    /** The --backend selection; empty keeps each experiment's default
     *  backend axis (vtd for everything but backend_matrix). */
    std::vector<iommu::BackendKind> backends;
    /** Worker threads for (experiment, rep) units; 0 = one per
     *  hardware thread.  Output is byte-identical for every value. */
    unsigned jobs = 0;
    /** Worker threads *inside* one experiment invocation
     *  (RunCtx::runCells / sim::ShardedEngine); 1 = serial.  The
     *  total core budget is jobs x intra-jobs; output is
     *  byte-identical for every value. */
    unsigned intraJobs = 1;
    unsigned repeat = 1;
    sim::TimeNs warmupNs = 0;   //!< 0 = per-experiment default
    sim::TimeNs measureNs = 0;  //!< 0 = per-experiment default
    std::uint64_t seed = 42;
    std::string jsonPath;  //!< empty = no JSON output
    std::string tracePath; //!< empty = no Chrome trace output
};

/** Parse argv (argv[0] ignored).  False + *err on bad usage. */
bool parseArgs(int argc, const char *const *argv, DriverOptions *opts,
               std::string *err);

/** One experiment's collected runs. */
struct ExperimentResult
{
    const Experiment *exp = nullptr;
    std::vector<Run> runs;
};

/** Everything one driver invocation measured. */
struct Report
{
    DriverOptions opts;
    std::vector<ExperimentResult> experiments;
};

/** Experiments matching --only, sorted by name. */
std::vector<const Experiment *>
selectExperiments(const DriverOptions &opts);

/** Resolve DriverOptions::jobs: 0 becomes hardware_concurrency
 *  (minimum 1). */
unsigned effectiveJobs(const DriverOptions &opts);

/**
 * Run every selected experiment (repeat times each).
 *
 * Units of work are (experiment, rep) pairs; with jobs > 1 they
 * execute on a worker pool, each on a private deterministic simulated
 * machine, and merge back in registration order — the Report (and
 * everything serialized from it) is byte-identical to a serial run.
 */
Report runExperiments(const DriverOptions &opts);

/** Flatten into experiment/scheme/metric-keyed rows. */
std::vector<ResultRow> flatten(const Report &report);

/** Build the documented JSON document for a report. */
Json reportJson(const Report &report);

/** Chrome trace-event JSON over every run that recorded events
 *  (one trace "process" per run, labeled experiment/scheme/params). */
std::string chromeTraceForReport(const Report &report);

/** Human-readable table of every run (uniform across experiments). */
void printReport(const Report &report, std::FILE *out);

/** The `damn_bench --list` listing. */
void printList(const DriverOptions &opts, std::FILE *out);

/** Full CLI entry point (damn_bench's main). */
int runDriver(int argc, const char *const *argv);

} // namespace damn::exp

#endif // DAMN_EXP_DRIVER_HH
