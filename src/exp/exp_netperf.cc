/**
 * @file
 * The netperf TCP_STREAM experiments: figures 1, 4, 5, 6 and the
 * latency-profile extension.  All five sweep the scheme axis over a
 * pre-parameterized stream configuration and report through the
 * uniform metric set.
 */

#include "exp/experiment.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

/** Paper reference points, per figure, live in the old per-figure
 *  headers' comments; the registry keeps only the methodology. */

DAMN_EXPERIMENT(fig1_tradeoffs)
{
    Experiment e;
    e.name = "fig1_tradeoffs";
    e.title = "Bidirectional multi-core netperf TCP_STREAM: "
              "throughput and CPU per scheme";
    e.paper = "Figure 1";
    e.axes = {"scheme"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd})) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o = work::bidirectionalOpts(k);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.common(run.common);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(fig4_singlecore)
{
    Experiment e;
    e.name = "fig4_singlecore";
    e.title = "Single-core netperf TCP_STREAM (4 instances on core 0, "
              "64 KiB aggregates): throughput and core-0 CPU";
    e.paper = "Figure 4";
    e.axes = {"scheme", "mode"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
        for (const auto &[mode, label] :
             {std::pair{work::NetMode::Rx, "rx"},
              std::pair{work::NetMode::Tx, "tx"}}) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o = work::singleCoreOpts(k, mode);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.param("mode", label);
                ctx.out.metric("gbps", run.res.totalGbps, "Gb/s");
                // Everything is pinned to core 0; machine-wide CPU%
                // would divide by 28 idle cores.
                ctx.out.metric(
                    "cpu_pct",
                    run.sys->ctx.machine.coreUtilizationPct(
                        0, ctx.window.measureNs),
                    "%");
                ctx.out.snapshotStats(run.sys->ctx.stats);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(fig5_multicore)
{
    Experiment e;
    e.name = "fig5_multicore";
    e.title = "Multi-core netperf TCP_STREAM (28 instances, one per "
              "core): throughput and CPU";
    e.paper = "Figure 5";
    e.axes = {"scheme", "mode"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
        for (const auto &[mode, label] :
             {std::pair{work::NetMode::Rx, "rx"},
              std::pair{work::NetMode::Tx, "tx"}}) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o = work::multiCoreOpts(k, mode);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.param("mode", label);
                ctx.out.common(run.common);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(fig6_membw)
{
    Experiment e;
    e.name = "fig6_membw";
    e.title = "Bidirectional netperf TCP_STREAM: memory bandwidth "
              "(shadow saturates the memory controllers)";
    e.paper = "Figure 6";
    e.axes = {"scheme"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd})) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o = work::bidirectionalOpts(k);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.common(run.common);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(latency_profile)
{
    Experiment e;
    e.name = "latency_profile";
    e.title = "Per-segment end-to-end latency distribution, "
              "multi-core netperf RX";
    e.paper = "extension";
    e.axes = {"scheme"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd})) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o =
                    work::multiCoreOpts(k, work::NetMode::Rx);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.common(run.common, /*with_latency=*/true);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(netperf_stream)
{
    Experiment e;
    e.name = "netperf_stream";
    e.title = "Canonical multi-core netperf TCP_STREAM RX run "
              "(the trace/attribution showcase)";
    e.paper = "extension";
    e.axes = {"scheme"};
    // Short default window: this experiment exists for tracing and
    // attribution inspection, not statistics.
    e.defaultWindow = work::RunWindow{10 * sim::kNsPerMs,
                                      50 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        // Every (backend, scheme) point is an independent machine:
        // route them through the intra-run cell pool (--intra-jobs).
        std::vector<Cell> cells;
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd})) {
            for (const dma::SchemeKind k : ctx.schemes) {
                const std::string name =
                    std::string(iommu::backendKindName(bk)) + "/" +
                    dma::schemeKindName(k);
                cells.push_back({name, [&ctx, bk, k](Collector &col) {
                    work::NetperfOpts o =
                        work::multiCoreOpts(k, work::NetMode::Rx);
                    o.sysParams.backend = bk;
                    o.runWindow = ctx.window;
                    o.trace = ctx.traceEvents;
                    const auto run = work::runNetperf(o);
                    col.beginRun(dma::schemeKindName(k));
                    ctx.backendParam(col, bk);
                    col.common(run.common);
                }});
            }
        }
        ctx.runCells(std::move(cells));
    };
    return e;
}

} // namespace
} // namespace damn::exp
