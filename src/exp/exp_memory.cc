/**
 * @file
 * The memory-exposure and memory-footprint experiments: figure 9
 * (pages ever vs currently mapped under deferred protection) and
 * figure 10 (kernel memory usage, iommu-off vs damn).
 */

#include <algorithm>

#include "exp/experiment.hh"
#include "workloads/kbuild.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

constexpr double kMiBPerFrame = 4096.0 / (1 << 20);

DAMN_EXPERIMENT(fig9_stock_pages)
{
    Experiment e;
    e.name = "fig9_stock_pages";
    e.title = "Pages ever vs currently mapped for DMA over time "
              "(deferred, netperf + kbuild churn)";
    e.paper = "Figure 9";
    e.axes = {"t_ms"};
    // The measure window is the sampling horizon (the paper runs 30
    // wall-clock minutes; we run a scaled-down window, no warmup).
    e.defaultWindow = {0, 3 * sim::kNsPerSec};
    e.run = [](RunCtx &ctx) {
        if (ctx.schemesAmong({dma::SchemeKind::Deferred}).empty())
            return;

        work::NetperfOpts o;
        o.scheme = dma::SchemeKind::Deferred;
        o.mode = work::NetMode::Rx;
        o.instances = 4;
        o.coreLimit = 4;
        o.segBytes = 64 * 1024;

        work::NetperfRun run = work::makeNetperfSystem(o);
        work::KbuildChurn churn(run.sys->ctx, run.sys->pageAlloc, {});
        churn.start();

        net::StreamEngine eng(*run.sys, *run.nic, *run.stack, {});
        work::addNetperfFlows(run, eng, o);
        eng.startAll();

        auto &sys = *run.sys;
        const sim::TimeNs horizon = ctx.window.measureNs;
        const unsigned samples = 15;
        const sim::TimeNs step = std::max<sim::TimeNs>(
            horizon / samples, sim::TimeNs(1));
        for (sim::TimeNs t = step; t <= horizon; t += step) {
            sys.ctx.engine.run(t);
            ctx.out.beginRun(
                dma::schemeKindName(dma::SchemeKind::Deferred));
            ctx.out.param("t_ms", t / sim::kNsPerMs);
            ctx.out.metric("ever_mapped_mib",
                           double(sys.mmu.everMappedFrames()) *
                               kMiBPerFrame,
                           "MiB");
            ctx.out.metric("currently_mapped_mib",
                           double(sys.mmu.currentlyMappedPages()) *
                               kMiBPerFrame,
                           "MiB");
        }
        // One stats snapshot for the whole timeline (cumulative).
        ctx.out.snapshotStats(sys.ctx.stats);
    };
    return e;
}

DAMN_EXPERIMENT(fig10_memory)
{
    Experiment e;
    e.name = "fig10_memory";
    e.title = "Kernel memory usage vs netperf instance count, "
              "iommu-off vs damn";
    e.paper = "Figure 10";
    e.axes = {"scheme", "mode", "instances"};
    e.defaultWindow = {30 * sim::kNsPerMs, 100 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        const auto schemes = ctx.schemesAmong(
            {dma::SchemeKind::IommuOff, dma::SchemeKind::Damn});
        for (const auto &[mode, label] :
             {std::pair{work::NetMode::Rx, "rx"},
              std::pair{work::NetMode::Tx, "tx"},
              std::pair{work::NetMode::Bidi, "bidi"}}) {
            for (const unsigned instances : {4u, 8u, 16u, 28u, 56u}) {
                for (const dma::SchemeKind k : schemes) {
                    work::NetperfOpts o;
                    o.scheme = k;
                    o.mode = mode;
                    o.instances = instances;
                    o.segBytes = 16 * 1024;
                    o.costFactor = o.sysParams.cost.multiFlowFactor;
                    o.runWindow = ctx.window;
                    const auto run = work::runNetperf(o);
                    ctx.out.beginRun(dma::schemeKindName(k));
                    ctx.out.param("mode", label);
                    ctx.out.param("instances",
                                  std::uint64_t(instances));
                    ctx.out.metric(
                        "kernel_mem_mib",
                        double(run.sys->pageAlloc.allocatedFrames()) *
                            kMiBPerFrame,
                        "MiB");
                    ctx.out.metric("gbps", run.res.totalGbps, "Gb/s");
                    ctx.out.snapshotStats(run.sys->ctx.stats);
                }
            }
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
