/**
 * @file
 * The application benchmarks: figure 7 (memcached) and figure 11
 * (fio/NVMe block-size sweep).
 */

#include "exp/experiment.hh"
#include "workloads/fio.hh"
#include "workloads/memcached.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(fig7_memcached)
{
    Experiment e;
    e.name = "fig7_memcached";
    e.title = "memcached (memslap 50/50 GET/SET, 512 KiB values): "
              "TPS and CPU per scheme";
    e.paper = "Figure 7";
    e.axes = {"scheme"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd})) {
            for (const dma::SchemeKind k : ctx.schemes) {
                work::MemcachedOpts o;
                o.scheme = k;
                o.backend = bk;
                o.runWindow = ctx.window;
                const work::MemcachedResult r = work::runMemcached(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.common(r.common);
            }
        }
    };
    return e;
}

DAMN_EXPERIMENT(fig11_nvme)
{
    Experiment e;
    e.name = "fig11_nvme";
    e.title = "fio direct sequential read, 12 jobs: IOPS and CPU vs "
              "block size (DAMN does not apply to storage)";
    e.paper = "Figure 11";
    e.axes = {"scheme", "block_bytes"};
    e.defaultWindow = {20 * sim::kNsPerMs, 150 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        const auto schemes = ctx.schemesAmong(
            {dma::SchemeKind::IommuOff, dma::SchemeKind::Deferred,
             dma::SchemeKind::Strict, dma::SchemeKind::Shadow});
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
        for (const std::uint32_t bs :
             {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 65536u,
              131072u}) {
            for (const dma::SchemeKind k : schemes) {
                work::FioOpts o;
                o.scheme = k;
                o.backend = bk;
                o.blockBytes = bs;
                o.runWindow = ctx.window;
                const work::FioResult r = work::runFio(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.backendParam(bk);
                ctx.out.param("block_bytes", std::uint64_t(bs));
                ctx.out.common(r.common);
                ctx.out.metric("gbytes_per_sec", r.throughputGBps,
                               "GB/s");
                ctx.out.metric("failed_ios", double(r.failedIos),
                               "ios");
            }
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
