/**
 * @file
 * JSON serialization and parsing.
 */

#include "exp/json.hh"

#include <cassert>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace damn::exp {

void
Json::set(const std::string &key, Json v)
{
    assert(kind_ == Kind::Object);
    for (auto &[k, existing] : members_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    members_.emplace_back(key, std::move(v));
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::int64_t
Json::asInt() const
{
    switch (kind_) {
    case Kind::Int: return int_;
    case Kind::Uint: return std::int64_t(uint_);
    case Kind::Double: return std::int64_t(double_);
    default: throw std::runtime_error("json: not a number");
    }
}

std::uint64_t
Json::asUint() const
{
    switch (kind_) {
    case Kind::Int: return std::uint64_t(int_);
    case Kind::Uint: return uint_;
    case Kind::Double: return std::uint64_t(double_);
    default: throw std::runtime_error("json: not a number");
    }
}

double
Json::asDouble() const
{
    switch (kind_) {
    case Kind::Int: return double(int_);
    case Kind::Uint: return double(uint_);
    case Kind::Double: return double_;
    default: throw std::runtime_error("json: not a number");
    }
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null (parse treats it as absent).
        out += "null";
        return;
    }
    char buf[64];
    // Shortest round-trip representation: deterministic and exact.
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

void
appendIndent(std::string &out, unsigned indent)
{
    out.append(std::size_t(indent) * 2, ' ');
}

} // namespace

void
Json::dumpTo(std::string &out, unsigned indent) const
{
    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Int:
        out += std::to_string(int_);
        break;
    case Kind::Uint:
        out += std::to_string(uint_);
        break;
    case Kind::Double:
        appendDouble(out, double_);
        break;
    case Kind::String:
        appendEscaped(out, string_);
        break;
    case Kind::Array:
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += "[\n";
        for (std::size_t i = 0; i < items_.size(); ++i) {
            appendIndent(out, indent + 1);
            items_[i].dumpTo(out, indent + 1);
            if (i + 1 < items_.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent);
        out += ']';
        break;
    case Kind::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            appendIndent(out, indent + 1);
            appendEscaped(out, members_[i].first);
            out += ": ";
            members_[i].second.dumpTo(out, indent + 1);
            if (i + 1 < members_.size())
                out += ',';
            out += '\n';
        }
        appendIndent(out, indent);
        out += '}';
        break;
    }
}

std::size_t
Json::dumpSizeHint(unsigned indent) const
{
    // Upper-bound-ish estimate of the serialized size, so dump() can
    // reserve once instead of growing the string geometrically while
    // serializing a multi-megabyte sweep report.  Scalars get a flat
    // allowance; strings their length plus quotes/escape slop;
    // containers the per-element indentation and punctuation.
    switch (kind_) {
    case Kind::Null:
    case Kind::Bool:
        return 5;
    case Kind::Int:
    case Kind::Uint:
    case Kind::Double:
        return 24;
    case Kind::String:
        return string_.size() + 8;
    case Kind::Array: {
        std::size_t n = 4;
        for (const Json &v : items_)
            n += v.dumpSizeHint(indent + 1) + 2 * (indent + 1) + 2;
        return n;
    }
    case Kind::Object: {
        std::size_t n = 4;
        for (const auto &[k, v] : members_)
            n += k.size() + 4 + v.dumpSizeHint(indent + 1) +
                2 * (indent + 1) + 2;
        return n;
    }
    }
    return 0;
}

std::string
Json::dump() const
{
    std::string out;
    out.reserve(dumpSizeHint(0) + 2);
    dumpTo(out, 0);
    out += '\n';
    return out;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    Json
    document()
    {
        const Json v = value();
        skipWs();
        if (pos_ != s_.size())
            fail("trailing garbage");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                s_[pos_] == '\t' || s_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipWs();
        if (pos_ >= s_.size())
            fail("unexpected end of input");
        return s_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return Json(string());
        case 't':
            if (consumeLiteral("true"))
                return Json(true);
            fail("bad literal");
        case 'f':
            if (consumeLiteral("false"))
                return Json(false);
            fail("bad literal");
        case 'n':
            if (consumeLiteral("null"))
                return Json();
            fail("bad literal");
        default: return number();
        }
    }

    Json
    object()
    {
        expect('{');
        Json obj = Json::object();
        if (peek() == '}') {
            ++pos_;
            return obj;
        }
        while (true) {
            if (peek() != '"')
                fail("expected object key");
            std::string key = string();
            expect(':');
            obj.set(key, value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return obj;
        }
    }

    Json
    array()
    {
        expect('[');
        Json arr = Json::array();
        if (peek() == ']') {
            ++pos_;
            return arr;
        }
        while (true) {
            arr.push(value());
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return arr;
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                fail("unterminated escape");
            switch (s_[pos_++]) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            case 'r': out += '\r'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'u': {
                if (pos_ + 4 > s_.size())
                    fail("bad \\u escape");
                unsigned code = 0;
                const auto res = std::from_chars(
                    s_.data() + pos_, s_.data() + pos_ + 4, code, 16);
                if (res.ec != std::errc())
                    fail("bad \\u escape");
                pos_ += 4;
                // Our writer only emits \u00xx control codes.
                out += char(code & 0xff);
                break;
            }
            default: fail("unknown escape");
            }
        }
        if (pos_ >= s_.size())
            fail("unterminated string");
        ++pos_; // closing quote
        return out;
    }

    Json
    number()
    {
        skipWs();
        const std::size_t start = pos_;
        bool is_float = false;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size()) {
            const char c = s_[pos_];
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                is_float = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected a value");
        const std::string tok = s_.substr(start, pos_ - start);
        if (is_float) {
            double v = 0;
            const auto res = std::from_chars(
                tok.data(), tok.data() + tok.size(), v);
            if (res.ec != std::errc())
                fail("bad number");
            return Json(v);
        }
        if (!tok.empty() && tok[0] == '-') {
            std::int64_t v = 0;
            const auto res = std::from_chars(
                tok.data(), tok.data() + tok.size(), v);
            if (res.ec != std::errc())
                fail("bad number");
            return Json(v);
        }
        std::uint64_t v = 0;
        const auto res =
            std::from_chars(tok.data(), tok.data() + tok.size(), v);
        if (res.ec != std::errc())
            fail("bad number");
        return Json(v);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

Json
Json::parse(const std::string &text)
{
    return Parser(text).document();
}

} // namespace damn::exp
