/**
 * @file
 * The backend matrix: every protection scheme crossed with every IOMMU
 * hardware model (Intel VT-d vs ARM SMMUv3) over the two workload
 * shapes whose invalidation behavior the backends price differently —
 * bidirectional netperf (lock-bound strict unmaps) and fio/NVMe
 * (pipelined invalidation completion).
 *
 * Unlike the paper-figure experiments (whose native backend axis is
 * the evaluated VT-d testbed), this experiment's native axis is *both*
 * backends, and every run is labeled with its backend — the question
 * here is how much of each scheme's cost is hardware-model-specific.
 */

#include "exp/experiment.hh"
#include "workloads/fio.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(backend_matrix)
{
    Experiment e;
    e.name = "backend_matrix";
    e.title = "Scheme x IOMMU-backend matrix (VT-d vs SMMUv3) over "
              "netperf and fio";
    e.paper = "extension";
    e.axes = {"scheme", "backend", "workload"};
    e.defaultWindow = work::RunWindow{5 * sim::kNsPerMs,
                                      25 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd,
                             iommu::BackendKind::SmmuV3})) {
            // Bidirectional netperf: the figure-1 configuration, where
            // strict's unmap path hammers the invalidation interface.
            for (const dma::SchemeKind k : ctx.schemes) {
                work::NetperfOpts o = work::bidirectionalOpts(k);
                o.sysParams.backend = bk;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const auto run = work::runNetperf(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.out.param("backend", iommu::backendKindName(bk));
                ctx.out.param("workload", "netperf");
                ctx.out.common(run.common);
            }

            // fio direct reads (DAMN does not apply to storage); one
            // mid-size block where unmap cost is still visible.
            for (const dma::SchemeKind k : ctx.schemesAmong(
                     {dma::SchemeKind::IommuOff,
                      dma::SchemeKind::Deferred,
                      dma::SchemeKind::Strict,
                      dma::SchemeKind::Shadow})) {
                work::FioOpts o;
                o.scheme = k;
                o.backend = bk;
                o.blockBytes = 4096;
                o.runWindow = ctx.window;
                o.trace = ctx.traceEvents;
                const work::FioResult r = work::runFio(o);
                ctx.out.beginRun(dma::schemeKindName(k));
                ctx.out.param("backend", iommu::backendKindName(bk));
                ctx.out.param("workload", "fio");
                ctx.out.common(r.common);
                ctx.out.metric("gbytes_per_sec", r.throughputGBps,
                               "GB/s");
            }
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
