/**
 * @file
 * Experiment registry implementation.
 */

#include "exp/experiment.hh"

#include "sim/shard.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace damn::exp {

const std::vector<dma::SchemeKind> &
defaultSchemes()
{
    static const std::vector<dma::SchemeKind> k = {
        dma::SchemeKind::IommuOff,  dma::SchemeKind::Deferred,
        dma::SchemeKind::Strict,    dma::SchemeKind::Shadow,
        dma::SchemeKind::Damn,
    };
    return k;
}

bool
schemeFromName(const std::string &name, dma::SchemeKind *out)
{
    for (const dma::SchemeKind k : defaultSchemes()) {
        if (name == dma::schemeKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

namespace {

std::vector<Experiment> &
registry()
{
    static std::vector<Experiment> r;
    return r;
}

} // namespace

bool
registerExperiment(Experiment e)
{
    if (e.name.empty() || !e.run)
        throw std::invalid_argument("experiment needs a name and a run fn");
    for (const Experiment &have : registry())
        if (have.name == e.name)
            throw std::invalid_argument("duplicate experiment: " + e.name);
    registry().push_back(std::move(e));
    return true;
}

std::vector<const Experiment *>
allExperiments()
{
    std::vector<const Experiment *> out;
    out.reserve(registry().size());
    for (const Experiment &e : registry())
        out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const Experiment *a, const Experiment *b) {
                  return a->name < b->name;
              });
    return out;
}

const Experiment *
findExperiment(const std::string &name)
{
    for (const Experiment &e : registry())
        if (e.name == name)
            return &e;
    return nullptr;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative fnmatch with `*` backtracking.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

void
RunCtx::runCells(std::vector<Cell> cells)
{
    // Each cell fills a private collector; the merge below splices
    // them back in cell order, so the JSON/trace output is the same
    // bytes as a serial loop no matter how many workers ran.
    std::vector<Collector> parts(cells.size());
    sim::ShardedEngine se;
    for (std::size_t i = 0; i < cells.size(); ++i)
        se.addTask(cells[i].name,
                   [&cells, &parts, i] { cells[i].fn(parts[i]); });
    se.runAll(intraJobs);
    for (Collector &part : parts)
        out.append(part.take());
}

void
Collector::snapshotStats(const sim::Stats &stats,
                         const std::string &prefix)
{
    Run &run = runs_.back();
    for (const auto &[name, value] : stats.snapshot()) {
        const std::string key =
            prefix.empty() ? name : prefix + "." + name;
        run.stats[key] += value;
    }
}

void
Collector::common(const work::CommonResult &c, bool with_latency)
{
    if (c.gbps != 0.0)
        metric("gbps", c.gbps, "Gb/s");
    if (c.cpuPct != 0.0)
        metric("cpu_pct", c.cpuPct, "%");
    if (c.opsPerSec != 0.0)
        metric("ops_per_sec", c.opsPerSec, "ops/s");
    if (c.memGBps != 0.0)
        metric("mem_gbps", c.memGBps, "GB/s");
    if (with_latency && c.latency.count() > 0) {
        metric("latency.p50_us", double(c.latency.p50()) / 1e3, "us");
        metric("latency.p95_us", double(c.latency.p95()) / 1e3, "us");
        metric("latency.p99_us", double(c.latency.p99()) / 1e3, "us");
        metric("latency.max_us", double(c.latency.maxNs()) / 1e3, "us");
    }
    for (const auto &[name, value] : c.stats)
        runs_.back().stats[name] += value;
    if (c.trace.hasData())
        runs_.back().trace = c.trace;
}

} // namespace damn::exp
