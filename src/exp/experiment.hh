/**
 * @file
 * Declarative experiment registry.
 *
 * Every figure/table of the paper's evaluation (plus our extension
 * benches) is one registered Experiment: a descriptor naming it, a
 * default warmup/measure window, and a run function that sweeps its
 * parameter axes and reports rows through a Collector.  One driver
 * (`damn_bench`) lists, filters, runs, prints, and serializes them all
 * through a single machine-readable schema — no experiment owns a
 * main() or a printf table of its own.
 *
 * Results are uniform: each run (one scheme/configuration point) holds
 * an ordered set of metrics (name, value, unit), the parameter values
 * that produced it, and a snapshot of the System's sim::Stats
 * counters.  A flattened ResultRow view keys every value by
 * experiment/scheme/metric for programmatic consumers.
 */

#ifndef DAMN_EXP_EXPERIMENT_HH
#define DAMN_EXP_EXPERIMENT_HH

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dma/schemes.hh"
#include "iommu/backend.hh"
#include "workloads/run_window.hh"

namespace damn::exp {

/** The default scheme axis: the five configurations every figure
 *  compares (the one authoritative list). */
const std::vector<dma::SchemeKind> &defaultSchemes();

/** Parse a scheme name as printed by dma::schemeKindName().
 *  Returns false when @p name is unknown. */
bool schemeFromName(const std::string &name, dma::SchemeKind *out);

/** One metric of one run. */
struct Metric
{
    std::string name;  //!< e.g. "rx.gbps"
    double value = 0.0;
    std::string unit;  //!< e.g. "Gb/s", "%", "ops/s"
};

/**
 * One configuration point of an experiment: a scheme (or config
 * label), the parameter axis values that produced it, its metrics,
 * and the stats snapshot of the System(s) that ran it.
 */
struct Run
{
    std::string scheme;
    std::vector<std::pair<std::string, std::string>> params;
    std::vector<Metric> metrics;
    std::map<std::string, std::uint64_t> stats;
    /** Cost attribution (+ events when recording); empty when the
     *  workload does not report one. */
    sim::TraceBundle trace;
};

/** Flattened result view: one value keyed by experiment/scheme/metric. */
struct ResultRow
{
    std::string experiment;
    std::string scheme;
    std::vector<std::pair<std::string, std::string>> params;
    std::string metric;
    double value = 0.0;
    std::string unit;
    /** Stats snapshot of the run this row came from. */
    const std::map<std::string, std::uint64_t> *stats = nullptr;
};

/** Collects the runs of one experiment while it executes. */
class Collector
{
  public:
    /** Open a new run; subsequent param()/metric() calls fill it. */
    Run &
    beginRun(std::string scheme)
    {
        runs_.emplace_back();
        runs_.back().scheme = std::move(scheme);
        return runs_.back();
    }

    /** Record a parameter axis value of the current run. */
    void
    param(const std::string &key, std::string value)
    {
        runs_.back().params.emplace_back(key, std::move(value));
    }

    void
    param(const std::string &key, std::uint64_t value)
    {
        param(key, std::to_string(value));
    }

    /** Record one metric of the current run. */
    void
    metric(std::string name, double value, std::string unit)
    {
        runs_.back().metrics.push_back(
            {std::move(name), value, std::move(unit)});
    }

    /** Attach a stats snapshot (optionally namespaced by @p prefix)
     *  to the current run; repeated calls merge. */
    void snapshotStats(const sim::Stats &stats,
                       const std::string &prefix = "");

    /** Record the common workload fields as metrics and absorb the
     *  run's stats snapshot.  Zero-valued fields are skipped (the
     *  workload reported no such quantity). */
    void common(const work::CommonResult &c, bool with_latency = false);

    const std::vector<Run> &runs() const { return runs_; }
    std::vector<Run> take() { return std::move(runs_); }

    /** Splice another collector's runs onto this one, preserving
     *  their order.  RunCtx::runCells merges the per-cell collectors
     *  back into the experiment's collector with this. */
    void
    append(std::vector<Run> runs)
    {
        for (Run &r : runs)
            runs_.push_back(std::move(r));
    }

  private:
    std::vector<Run> runs_;
};

struct Experiment;

/**
 * One independent configuration point of an experiment, packaged for
 * intra-run parallel execution (RunCtx::runCells).  The function gets
 * a private Collector; each cell must be self-contained — it builds
 * its own System(s) and shares no mutable state with other cells.
 */
struct Cell
{
    std::string name; //!< progress/debug label, e.g. "vtd/strict"
    std::function<void(Collector &)> fn;
};

/** Resolved inputs of one experiment invocation. */
struct RunCtx
{
    const Experiment &exp;
    /** The run window: the experiment's defaults, or the driver's
     *  --warmup-ms/--measure-ms overrides. */
    work::RunWindow window;
    /** The default scheme axis after --schemes filtering. */
    std::vector<dma::SchemeKind> schemes;
    /** Base seed for anything stochastic (fault injection, graph
     *  generation).  Varies per --repeat repetition. */
    std::uint64_t seed = 42;
    Collector &out;
    /** True when the driver wants trace-event recording (--trace):
     *  workloads should enable their tracer rings. */
    bool traceEvents = false;

    /** An experiment with a native scheme subset intersects it with
     *  the user's --schemes selection (native order preserved). */
    std::vector<dma::SchemeKind>
    schemesAmong(const std::vector<dma::SchemeKind> &native) const
    {
        std::vector<dma::SchemeKind> out_v;
        for (const dma::SchemeKind k : native)
            for (const dma::SchemeKind want : schemes)
                if (k == want) {
                    out_v.push_back(k);
                    break;
                }
        return out_v;
    }

    /** The --backend selection; empty means "experiment default". */
    std::vector<iommu::BackendKind> backends;

    /** The backend axis this invocation sweeps: the user's --backend
     *  list when given, else the experiment's @p native default. */
    std::vector<iommu::BackendKind>
    backendsOr(const std::vector<iommu::BackendKind> &native) const
    {
        return backends.empty() ? native : backends;
    }

    /**
     * True when the invocation's backend axis differs from the
     * baseline {vtd}.  Output stays byte-compatible with pre-backend
     * versions: the "backend" run parameter (and the driver's
     * "backends" header key) is emitted only when this holds.
     */
    bool
    explicitBackendAxis() const
    {
        return !(backends.empty() ||
                 (backends.size() == 1 &&
                  backends[0] == iommu::BackendKind::Vtd));
    }

    /** Record the backend axis value of the current run (only when
     *  the axis was explicitly swept; see explicitBackendAxis()). */
    void
    backendParam(iommu::BackendKind bk) const
    {
        if (explicitBackendAxis())
            out.param("backend", iommu::backendKindName(bk));
    }

    /** Cell-local flavor of backendParam(): writes into the cell's
     *  private collector instead of ctx.out. */
    void
    backendParam(Collector &col, iommu::BackendKind bk) const
    {
        if (explicitBackendAxis())
            col.param("backend", iommu::backendKindName(bk));
    }

    /**
     * Intra-run worker budget (--intra-jobs): how many threads one
     * experiment invocation may use to run its independent cells in
     * parallel.  1 = serial.  Composes with the driver's --jobs pool:
     * the core budget is jobs x intra-jobs.
     */
    unsigned intraJobs = 1;

    /**
     * Run independent configuration cells of this experiment, spread
     * over @ref intraJobs workers via `sim::ShardedEngine` task
     * shards, then merge their collectors into ctx.out **in cell
     * order**.  Output is byte-identical to running the cells in a
     * plain loop at any intraJobs value; a cell that throws aborts
     * with that cell's exception after the pool drains (first failing
     * cell in cell order wins, matching the serial loop).
     */
    void runCells(std::vector<Cell> cells);
};

/** One registered experiment. */
struct Experiment
{
    std::string name;   //!< registry key, e.g. "fig4_singlecore"
    std::string title;  //!< one-line human description
    std::string paper;  //!< paper anchor, e.g. "Figure 4" / "extension"
    /** Parameter axes the run function sweeps (documentation). */
    std::vector<std::string> axes;
    work::RunWindow defaultWindow{};
    std::function<void(RunCtx &)> run;
};

/** Register an experiment; returns true (for static-init use). */
bool registerExperiment(Experiment e);

/** All registered experiments, sorted by name. */
std::vector<const Experiment *> allExperiments();

/** Look up one experiment by exact name (nullptr if absent). */
const Experiment *findExperiment(const std::string &name);

/** Shell-style glob match (`*` and `?`) used by --only. */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Defines and self-registers an experiment:
 *
 *   DAMN_EXPERIMENT(fig4_singlecore)
 *   {
 *       Experiment e;
 *       e.name = "fig4_singlecore";
 *       ...
 *       return e;
 *   }
 */
#define DAMN_EXPERIMENT(ident)                                         \
    static ::damn::exp::Experiment damnExpMake_##ident();              \
    static const bool damnExpReg_##ident [[maybe_unused]] =            \
        ::damn::exp::registerExperiment(damnExpMake_##ident());        \
    static ::damn::exp::Experiment damnExpMake_##ident()

} // namespace damn::exp

#endif // DAMN_EXP_EXPERIMENT_HH
