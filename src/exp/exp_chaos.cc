/**
 * @file
 * Chaos soak: repeated surprise-unplug / replug cycles under a fault
 * storm and memory pressure, per scheme, with the full teardown
 * invariant audit after every cycle.
 *
 * Each cycle runs a short traffic burst (NIC streams + NVMe reads)
 * with the injector arming NIC RX/TX drops, link flaps, page-allocation
 * failures, lost NVMe commands, and one scheduled surprise unplug.
 * The cycle then ends the device's life on the bus and walks the
 * canonical drain ordering — rings, then caches, then page table, then
 * IOTLB — and damn::audit cross-checks ledger, page table, IOTLB, and
 * allocator IOVA accounting for leaks.  The experiment *fails loudly*:
 * any hang (flows not quiesced by the virtual-time watchdog) or any
 * audit violation is a nonzero metric the harness asserts on.
 *
 * Everything is seeded and virtual-time-driven, so the whole soak —
 * fault schedule included — is byte-identical across runs at a fixed
 * seed.
 */

#include "core/audit.hh"
#include "exp/experiment.hh"
#include "iommu/backend_smmu.hh"
#include "nvme/nvme.hh"
#include "workloads/netperf.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace damn::exp {
namespace {

/** One unplug/replug cycle every 400 us of measurement window: the
 *  default 20 ms window yields 50 cycles per scheme. */
constexpr sim::TimeNs kCycleQuantumNs = 400 * sim::kNsPerUs;
/** Fault-storm traffic burst per cycle. */
constexpr sim::TimeNs kBurstNs = 250 * sim::kNsPerUs;
/** Virtual-time watchdog: how long after teardown the flows get to
 *  quiesce (covers the deepest retransmit backoff chain). */
constexpr sim::TimeNs kDrainWindowNs = 1 * sim::kNsPerMs;

struct CycleTotals
{
    std::uint64_t cycles = 0;
    std::uint64_t hangs = 0;
    std::uint64_t auditViolations = 0;
    std::uint64_t forceCleared = 0;
    std::uint64_t abortedSegments = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t failedFlows = 0;
    std::uint64_t drainedPages = 0;
    std::uint64_t surpriseUnplugs = 0;
    std::uint64_t nvmeAborted = 0;
    std::uint64_t nvmeOk = 0;
    // SMMUv3 event-queue accounting (zero on VT-d): conservation
    // requires faults == in-ring + drained + overflowed at soak end.
    std::uint64_t evtqInRing = 0;
    std::uint64_t evtqDrained = 0;
    std::uint64_t evtqOverflows = 0;
    std::uint64_t iommuFaults = 0;
};

std::uint64_t
outstandingIovasOf(net::System &sys, iommu::DomainId d)
{
    std::uint64_t n = sys.dmaApi->outstandingIovas();
    if (sys.damnMode())
        n += sys.damn->outstandingIovaSlots(d);
    return n;
}

CycleTotals
soakOneScheme(dma::SchemeKind kind, iommu::BackendKind backend,
              std::uint64_t seed, std::uint64_t cycles,
              std::map<std::string, std::uint64_t> *stats_out)
{
    work::NetperfOpts o;
    o.scheme = kind;
    o.mode = work::NetMode::Bidi;
    o.instances = 4;
    o.coreLimit = 2;
    o.segBytes = 16 * 1024;
    o.window = 8;
    o.sysParams.backend = backend;
    work::NetperfRun run = work::makeNetperfSystem(o);
    net::System &sys = *run.sys;
    auto *smmu =
        dynamic_cast<iommu::SmmuV3Backend *>(&sys.mmu.backend());

    nvme::NvmeDevice nvme(sys.ctx, "nvme0", sys.mmu, sys.phys);
    // The auditor installs the Iommu map observer; both domains exist
    // by now, nothing is mapped yet.
    audit::Auditor auditor(sys.mmu);

    // One reusable O_DIRECT-style IO buffer for the NVMe burst.
    const mem::Pfn io_pfn = sys.pageAlloc.allocPages(0, 0);
    const mem::Pa io_pa = mem::pfnToPa(io_pfn);
    constexpr std::uint32_t kIoBytes = 4096;

    CycleTotals t;
    // Engines stay alive for the whole soak: torn-down flows may still
    // hold scheduled events (retry timers) that reference them and
    // fire — harmlessly — during later cycles.
    std::vector<std::unique_ptr<net::StreamEngine>> engines;
    sim::TimeNs clock = sys.ctx.now();

    for (std::uint64_t c = 0; c < cycles; ++c) {
        // ---- Arm the storm ------------------------------------------
        sys.ctx.faults.reset();
        sys.ctx.faults.enable(seed + c);
        sys.ctx.faults.setProbability(sim::FaultSite::NicRx, 0.02);
        sys.ctx.faults.setProbability(sim::FaultSite::NicTx, 0.02);
        sys.ctx.faults.setProbability(sim::FaultSite::NicLinkFlap,
                                      0.005);
        sys.ctx.faults.setProbability(sim::FaultSite::PageAlloc, 0.01);
        sys.ctx.faults.setProbability(sim::FaultSite::NvmeCmd, 0.05);
        sys.ctx.faults.setProbability(sim::FaultSite::IommuInval, 0.01);
        // One scheduled surprise unplug per cycle, landing on whichever
        // device issues the Nth DMA of the burst; the offset varies per
        // cycle so the unplug hits every pipeline stage over the soak.
        sys.ctx.faults.failNth(sim::FaultSite::DeviceUnplug,
                               1 + (c % 13) * 17);

        // ---- Traffic burst ------------------------------------------
        engines.push_back(std::make_unique<net::StreamEngine>(
            sys, *run.nic, *run.stack));
        net::StreamEngine &stream = *engines.back();
        work::addNetperfFlows(run, stream, o);
        stream.startAll();
        clock += kBurstNs;
        sys.ctx.engine.run(clock);

        // NVMe reads ride the same storm (lost commands, unplug).
        {
            sim::CpuCursor cpu(sys.ctx.machine.core(0), clock);
            const iommu::Iova dma = sys.dmaApi->map(
                cpu, nvme, io_pa, kIoBytes, dma::Dir::FromDevice);
            sim::TimeNs io_t = cpu.time;
            for (unsigned i = 0; i < 4; ++i) {
                const nvme::NvmeCmdResult r =
                    nvme.submitRead(io_t, dma, kIoBytes);
                io_t = r.completes;
                if (r.ok)
                    ++t.nvmeOk;
            }
            sys.dmaApi->unmap(cpu, nvme, dma, kIoBytes,
                              dma::Dir::FromDevice);
        }

        // ---- End of life: unplug, drain, detach, audit --------------
        t.surpriseUnplugs +=
            sys.ctx.faults.injected(sim::FaultSite::DeviceUnplug);
        // The storm is over; recovery runs on a quiet bus.  Whichever
        // device the injector missed gets an orderly surprise now.
        sys.ctx.faults.reset();
        if (run.nic->attached())
            run.nic->unplug();
        if (nvme.attached())
            nvme.unplug();

        {
            sim::CpuCursor cpu(sys.ctx.machine.core(0), clock);
            stream.teardown(cpu);
            clock = std::max(clock, cpu.time);
        }
        clock += kDrainWindowNs;
        sys.ctx.engine.run(clock);
        if (!stream.quiesced())
            ++t.hangs;

        {
            sim::CpuCursor cpu(sys.ctx.machine.core(0), clock);
            t.drainedPages += sys.dmaApi->drainDomain(cpu, *run.nic);
            t.drainedPages += sys.dmaApi->drainDomain(cpu, nvme);
        }
        for (dma::Device *dev :
             {static_cast<dma::Device *>(run.nic.get()),
              static_cast<dma::Device *>(&nvme)}) {
            const iommu::DomainId d = dev->domain();
            const std::uint64_t forced = sys.mmu.detachDomain(d);
            t.forceCleared += forced;
            const audit::TeardownReport rep = auditor.verifyTeardown(
                d, outstandingIovasOf(sys, d), forced);
            t.auditViolations += rep.violations.size();
        }

        // Driver-side event-queue consumption, as a real SMMUv3 fault
        // handler would do each interrupt: keeps the bounded ring from
        // pinning at its overflow wall across cycles.
        if (smmu)
            smmu->drainEventQueue(); // lifetime total read at soak end

        // ---- Replug: next cycle gets a fresh device -----------------
        sys.mmu.attachDomain(run.nic->domain());
        sys.mmu.attachDomain(nvme.domain());
        run.nic->replug();
        nvme.replug();

        t.abortedSegments += stream.abortedSegments();
        t.drops += stream.totalDrops();
        t.retransmits += stream.totalRetransmits();
        t.failedFlows += stream.failedFlows();
        ++t.cycles;
    }

    // Let every straggler retry timer fire (they see the torn-down
    // engines and return) so nothing dangles past the soak.
    sys.ctx.engine.runAll();

    t.nvmeAborted = nvme.abortedCmds();
    t.iommuFaults = sys.mmu.faults();
    if (smmu) {
        t.evtqInRing = smmu->eventQueue().size();
        t.evtqDrained = smmu->eventQueueDrained();
        t.evtqOverflows = smmu->eventQueueOverflows();
    }
    sys.pageAlloc.freePages(io_pfn, 0);
    *stats_out = sys.ctx.stats.snapshot();
    return t;
}

DAMN_EXPERIMENT(chaos_soak)
{
    Experiment e;
    e.name = "chaos_soak";
    e.title = "Unplug/replug soak under fault storm: hangs and "
              "teardown-audit violations per scheme (both must be 0)";
    e.paper = "extension";
    e.axes = {"scheme", "backend"};
    // 20 ms of measurement == 50 unplug/replug cycles per scheme.
    e.defaultWindow = {0, 20 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        const std::uint64_t cycles = std::max<std::uint64_t>(
            1, ctx.window.measureNs / kCycleQuantumNs);
        const std::vector<dma::SchemeKind> schemes = ctx.schemesAmong(
            {dma::SchemeKind::Strict, dma::SchemeKind::Deferred,
             dma::SchemeKind::Shadow, dma::SchemeKind::Damn});
        // Native backend axis is the baseline VT-d; --backend widens
        // the soak (e.g. --backend=all runs the same storm against
        // the SMMUv3 model's cmdq/event-queue machinery).
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
        for (const dma::SchemeKind k : schemes) {
            std::map<std::string, std::uint64_t> stats;
            const CycleTotals t =
                soakOneScheme(k, bk, ctx.seed, cycles, &stats);
            Run &row = ctx.out.beginRun(dma::schemeKindName(k));
            ctx.backendParam(bk);
            ctx.out.metric("cycles", double(t.cycles), "count");
            ctx.out.metric("hangs", double(t.hangs), "count");
            ctx.out.metric("audit_violations",
                           double(t.auditViolations), "count");
            ctx.out.metric("force_cleared_pages",
                           double(t.forceCleared), "pages");
            ctx.out.metric("surprise_unplugs",
                           double(t.surpriseUnplugs), "count");
            ctx.out.metric("aborted_segments",
                           double(t.abortedSegments), "count");
            ctx.out.metric("drops", double(t.drops), "count");
            ctx.out.metric("retransmits", double(t.retransmits),
                           "count");
            ctx.out.metric("failed_flows", double(t.failedFlows),
                           "count");
            ctx.out.metric("drained_pages", double(t.drainedPages),
                           "pages");
            ctx.out.metric("nvme_ok_cmds", double(t.nvmeOk), "count");
            ctx.out.metric("nvme_aborted_cmds", double(t.nvmeAborted),
                           "count");
            if (bk == iommu::BackendKind::SmmuV3) {
                // Event-queue conservation, visible in the artifact:
                // faults == in-ring + drained + overflowed.
                ctx.out.metric("iommu_faults", double(t.iommuFaults),
                               "count");
                ctx.out.metric("evtq_in_ring", double(t.evtqInRing),
                               "count");
                ctx.out.metric("evtq_drained", double(t.evtqDrained),
                               "count");
                ctx.out.metric("evtq_overflows",
                               double(t.evtqOverflows), "count");
            }
            row.stats = std::move(stats);
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
