/**
 * @file
 * The tables: table 1 (attack-verified protection/performance matrix)
 * and table 3 (factors behind the damn vs iommu-off gap).
 */

#include "exp/experiment.hh"
#include "net/system.hh"
#include "workloads/attacks.hh"
#include "workloads/netperf.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(table1_matrix)
{
    Experiment e;
    e.name = "table1_matrix";
    e.title = "Protection-performance tradeoff matrix, with the "
              "secure columns backed by live attack replays";
    e.paper = "Table 1";
    e.axes = {"scheme"};
    e.run = [](RunCtx &ctx) {
        for (const iommu::BackendKind bk :
             ctx.backendsOr({iommu::BackendKind::Vtd}))
        for (const dma::SchemeKind k : ctx.schemes) {
            const work::AttackReport rep = work::runAttacks(k, bk);

            net::SystemParams p;
            p.scheme = k;
            p.backend = bk;
            net::System sys(p);

            Run &run = ctx.out.beginRun(dma::schemeKindName(k));
            ctx.backendParam(bk);
            ctx.out.metric("subpage_protected",
                           rep.colocationTheft ? 0.0 : 1.0, "bool");
            ctx.out.metric("window_protected",
                           (rep.staleWindowTheft || rep.tocttou)
                               ? 0.0
                               : 1.0,
                           "bool");
            // Multi-gigabit capability per the paper's verdict: only
            // strict cannot drive the NIC at line rate (figure 5).
            ctx.out.metric("multi_gbps",
                           k == dma::SchemeKind::Strict ? 0.0 : 1.0,
                           "bool");
            ctx.out.metric("zero_copy",
                           sys.dmaApi->zeroCopy() ? 1.0 : 0.0,
                           "bool");
            run.stats["attack.colocation_faults"] =
                rep.colocationFaults.size();
            run.stats["attack.stale_window_faults"] =
                rep.staleWindowFaults.size();
            run.stats["attack.tocttou_faults"] =
                rep.tocttouFaults.size();
        }
    };
    return e;
}

DAMN_EXPERIMENT(table3_variants)
{
    Experiment e;
    e.name = "table3_variants";
    e.title = "Factors behind the damn vs iommu-off gap "
              "(bidirectional netperf, DMA-cache variants)";
    e.paper = "Table 3";
    e.axes = {"variant"};
    e.run = [](RunCtx &ctx) {
        if (ctx.schemesAmong({dma::SchemeKind::Damn}).empty())
            return;

        struct Variant
        {
            const char *name;
            dma::SchemeKind scheme;
            core::DmaCacheConfig cache;
        };
        core::DmaCacheConfig stock;
        core::DmaCacheConfig huge;
        huge.hugeIovaPages = true;
        huge.denseIova = true;
        core::DmaCacheConfig noiommu;
        noiommu.mapInIommu = false;
        const Variant variants[] = {
            {"damn", dma::SchemeKind::Damn, stock},
            {"damn+huge-iova", dma::SchemeKind::Damn, huge},
            {"damn-no-iommu", dma::SchemeKind::Damn, noiommu},
            {"iommu-off", dma::SchemeKind::IommuOff, stock},
        };

        struct Done
        {
            const Variant *v;
            work::CommonResult common;
        };
        std::vector<Done> done;
        for (const Variant &v : variants) {
            work::NetperfOpts o = work::bidirectionalOpts(v.scheme);
            o.sysParams.damnCache = v.cache;
            o.runWindow = ctx.window;
            done.push_back({&v, work::runNetperf(o).common});
        }
        const double off_gbps = done.back().common.gbps;

        for (const Done &d : done) {
            ctx.out.beginRun(dma::schemeKindName(d.v->scheme));
            ctx.out.param("variant", d.v->name);
            ctx.out.common(d.common);
            if (off_gbps > 0.0)
                ctx.out.metric("pct_of_off",
                               100.0 * d.common.gbps / off_gbps, "%");
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
