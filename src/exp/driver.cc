/**
 * @file
 * damn_bench driver implementation.
 */

#include "exp/driver.hh"

#include <atomic>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <thread>

namespace damn::exp {

namespace {

const char kUsage[] =
    "usage: damn_bench [options]\n"
    "\n"
    "Runs the paper's evaluation experiments through one driver and\n"
    "reports every metric through a uniform schema.\n"
    "\n"
    "  --list             list registered experiments and exit\n"
    "  --only=GLOB        run only experiments whose name matches GLOB\n"
    "                     (shell-style * and ?, e.g. --only='fig4*')\n"
    "  --schemes=a,b,...  restrict the scheme axis (names as printed:\n"
    "                     iommu-off, deferred, strict, shadow, damn)\n"
    "  --backend=a,b,...  set the IOMMU backend axis (vtd, smmuv3);\n"
    "                     default: each experiment's native axis\n"
    "  --jobs=N           run (experiment, rep) units on N worker\n"
    "                     threads (default: one per hardware thread;\n"
    "                     results are byte-identical for any N)\n"
    "  --intra-jobs=K     shard *inside* one experiment: its\n"
    "                     independent configuration cells run on K\n"
    "                     worker threads (default 1 = serial; results\n"
    "                     are byte-identical for any K).  Composes\n"
    "                     with --jobs: total core budget is N x K\n"
    "  --repeat=N         run each experiment N times, varying the seed\n"
    "                     (rows gain a rep=<i> parameter)\n"
    "  --warmup-ms=N      override every experiment's warmup window\n"
    "  --measure-ms=N     override every experiment's measure window\n"
    "  --seed=N           base seed for stochastic experiments (42)\n"
    "  --json=PATH        also write results as JSON (schema v2,\n"
    "                     documented in EXPERIMENTS.md; deterministic)\n"
    "  --trace=PATH       record trace events and write a Chrome\n"
    "                     trace-event JSON (chrome://tracing /\n"
    "                     Perfetto; deterministic per seed)\n"
    "  --help             this text\n";

bool
parseU64(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    const auto res = std::from_chars(text.data(),
                                     text.data() + text.size(), *out);
    return res.ec == std::errc() &&
        res.ptr == text.data() + text.size();
}

/** Split "--key=value" arguments; value empty for bare flags. */
bool
splitArg(const std::string &arg, std::string *key, std::string *value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
        *key = arg.substr(2);
        value->clear();
    } else {
        *key = arg.substr(2, eq - 2);
        *value = arg.substr(eq + 1);
    }
    return true;
}

std::string
paramsLabel(const Run &run)
{
    std::string out;
    for (const auto &[k, v] : run.params) {
        if (!out.empty())
            out += ' ';
        out += k + "=" + v;
    }
    return out;
}

} // namespace

bool
parseArgs(int argc, const char *const *argv, DriverOptions *opts,
          std::string *err)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string key, value;
        if (!splitArg(arg, &key, &value)) {
            *err = "unrecognized argument: " + arg;
            return false;
        }
        std::uint64_t n = 0;
        if (key == "list") {
            opts->list = true;
        } else if (key == "help") {
            opts->help = true;
        } else if (key == "only") {
            opts->only = value;
        } else if (key == "schemes") {
            std::vector<dma::SchemeKind> selected;
            std::size_t start = 0;
            while (start <= value.size()) {
                std::size_t comma = value.find(',', start);
                if (comma == std::string::npos)
                    comma = value.size();
                const std::string name =
                    value.substr(start, comma - start);
                dma::SchemeKind k;
                if (!schemeFromName(name, &k)) {
                    *err = "unknown scheme: '" + name + "'";
                    return false;
                }
                selected.push_back(k);
                start = comma + 1;
            }
            opts->schemes = std::move(selected);
        } else if (key == "backend") {
            std::vector<iommu::BackendKind> selected;
            std::size_t start = 0;
            while (start <= value.size()) {
                std::size_t comma = value.find(',', start);
                if (comma == std::string::npos)
                    comma = value.size();
                const std::string name =
                    value.substr(start, comma - start);
                iommu::BackendKind k;
                if (!iommu::backendFromName(name, &k)) {
                    *err = "unknown backend: '" + name + "'";
                    return false;
                }
                selected.push_back(k);
                start = comma + 1;
            }
            opts->backends = std::move(selected);
        } else if (key == "jobs") {
            if (!parseU64(value, &n) || n == 0) {
                *err = "--jobs needs a positive integer";
                return false;
            }
            opts->jobs = unsigned(n);
        } else if (key == "intra-jobs") {
            if (!parseU64(value, &n) || n == 0) {
                *err = "--intra-jobs needs a positive integer";
                return false;
            }
            opts->intraJobs = unsigned(n);
        } else if (key == "repeat") {
            if (!parseU64(value, &n) || n == 0) {
                *err = "--repeat needs a positive integer";
                return false;
            }
            opts->repeat = unsigned(n);
        } else if (key == "warmup-ms") {
            if (!parseU64(value, &n)) {
                *err = "--warmup-ms needs an integer";
                return false;
            }
            opts->warmupNs = n * sim::kNsPerMs;
        } else if (key == "measure-ms") {
            if (!parseU64(value, &n) || n == 0) {
                *err = "--measure-ms needs a positive integer";
                return false;
            }
            opts->measureNs = n * sim::kNsPerMs;
        } else if (key == "seed") {
            if (!parseU64(value, &n)) {
                *err = "--seed needs an integer";
                return false;
            }
            opts->seed = n;
        } else if (key == "json") {
            if (value.empty()) {
                *err = "--json needs a path";
                return false;
            }
            opts->jsonPath = value;
        } else if (key == "trace") {
            if (value.empty()) {
                *err = "--trace needs a path";
                return false;
            }
            opts->tracePath = value;
        } else {
            *err = "unknown option: --" + key;
            return false;
        }
    }
    return true;
}

std::vector<const Experiment *>
selectExperiments(const DriverOptions &opts)
{
    std::vector<const Experiment *> out;
    for (const Experiment *e : allExperiments())
        if (opts.only.empty() || globMatch(opts.only, e->name))
            out.push_back(e);
    return out;
}

namespace {

/**
 * Execute one (experiment, rep) unit on a private simulated machine.
 * Thread-confined by construction: every piece of mutable simulation
 * state (Engine, Machine, Stats, Tracer, FaultInjector, RNG streams)
 * lives in Contexts the experiment's run function creates itself; the
 * only cross-thread data are the read-only registry/options and this
 * unit's own result vector.
 */
std::vector<Run>
runUnit(const DriverOptions &opts, const Experiment &e, unsigned rep)
{
    Collector out;
    RunCtx ctx{
        e,
        work::RunWindow{
            opts.warmupNs ? opts.warmupNs : e.defaultWindow.warmupNs,
            opts.measureNs ? opts.measureNs
                           : e.defaultWindow.measureNs,
        },
        opts.schemes,
        opts.seed + rep,
        out,
        !opts.tracePath.empty(),
        opts.backends,
        opts.intraJobs,
    };
    e.run(ctx);
    std::vector<Run> runs = out.take();
    if (opts.repeat > 1)
        for (Run &run : runs)
            run.params.insert(run.params.begin(),
                              {"rep", std::to_string(rep)});
    return runs;
}

} // namespace

unsigned
effectiveJobs(const DriverOptions &opts)
{
    if (opts.jobs != 0)
        return opts.jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

Report
runExperiments(const DriverOptions &opts)
{
    Report report;
    report.opts = opts;
    const std::vector<const Experiment *> selected =
        selectExperiments(opts);

    // The work queue: every (experiment, rep) pair, experiment-major
    // in registration order.  Results land in a slot per unit, so the
    // merge below reads them back in exactly the serial order no
    // matter which worker finished which unit when.
    struct Unit
    {
        const Experiment *exp;
        unsigned rep;
    };
    std::vector<Unit> units;
    units.reserve(selected.size() * opts.repeat);
    for (const Experiment *e : selected)
        for (unsigned rep = 0; rep < opts.repeat; ++rep)
            units.push_back({e, rep});

    std::vector<std::vector<Run>> results(units.size());
    const std::size_t jobs =
        std::min<std::size_t>(effectiveJobs(opts), units.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < units.size(); ++i)
            results[i] = runUnit(opts, *units[i].exp, units[i].rep);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::exception_ptr> errors(units.size());
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (std::size_t w = 0; w < jobs; ++w) {
            pool.emplace_back([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= units.size())
                        return;
                    try {
                        results[i] = runUnit(opts, *units[i].exp,
                                             units[i].rep);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
        // Surface the first failure in unit order (deterministic even
        // when several units threw).
        for (std::exception_ptr &ep : errors)
            if (ep)
                std::rethrow_exception(ep);
    }

    report.experiments.reserve(selected.size());
    std::size_t unit = 0;
    for (const Experiment *e : selected) {
        ExperimentResult res;
        res.exp = e;
        std::size_t total = 0;
        for (unsigned rep = 0; rep < opts.repeat; ++rep)
            total += results[unit + rep].size();
        res.runs.reserve(total);
        for (unsigned rep = 0; rep < opts.repeat; ++rep, ++unit)
            for (Run &run : results[unit])
                res.runs.push_back(std::move(run));
        report.experiments.push_back(std::move(res));
    }
    return report;
}

std::vector<ResultRow>
flatten(const Report &report)
{
    std::vector<ResultRow> rows;
    std::size_t total = 0;
    for (const ExperimentResult &er : report.experiments)
        for (const Run &run : er.runs)
            total += run.metrics.size();
    rows.reserve(total);
    for (const ExperimentResult &er : report.experiments) {
        for (const Run &run : er.runs) {
            for (const Metric &m : run.metrics) {
                ResultRow row;
                row.experiment = er.exp->name;
                row.scheme = run.scheme;
                row.params = run.params;
                row.metric = m.name;
                row.value = m.value;
                row.unit = m.unit;
                row.stats = &run.stats;
                rows.push_back(std::move(row));
            }
        }
    }
    return rows;
}

Json
reportJson(const Report &report)
{
    Json doc = Json::object();
    doc.set("schema_version", kJsonSchemaVersion);
    doc.set("generator", "damn_bench");
    doc.set("seed", report.opts.seed);
    doc.set("repeat", std::uint64_t(report.opts.repeat));
    Json schemes = Json::array();
    for (const dma::SchemeKind k : report.opts.schemes)
        schemes.push(dma::schemeKindName(k));
    doc.set("schemes", std::move(schemes));
    // Backward-compatible v2 extension: the backend axis appears in
    // the header (and as a per-run "backend" param) only when it
    // differs from the pre-backend baseline {vtd}, so default and
    // --backend=vtd invocations serialize byte-identically to older
    // versions.
    if (!(report.opts.backends.empty() ||
          (report.opts.backends.size() == 1 &&
           report.opts.backends[0] == iommu::BackendKind::Vtd))) {
        Json backends = Json::array();
        for (const iommu::BackendKind k : report.opts.backends)
            backends.push(iommu::backendKindName(k));
        doc.set("backends", std::move(backends));
    }
    doc.set("warmup_ms_override",
            std::uint64_t(report.opts.warmupNs / sim::kNsPerMs));
    doc.set("measure_ms_override",
            std::uint64_t(report.opts.measureNs / sim::kNsPerMs));

    Json experiments = Json::array();
    experiments.reserve(report.experiments.size());
    for (const ExperimentResult &er : report.experiments) {
        Json exp = Json::object();
        exp.set("name", er.exp->name);
        exp.set("title", er.exp->title);
        exp.set("paper", er.exp->paper);
        Json axes = Json::array();
        axes.reserve(er.exp->axes.size());
        for (const std::string &a : er.exp->axes)
            axes.push(a);
        exp.set("axes", std::move(axes));

        Json runs = Json::array();
        runs.reserve(er.runs.size());
        for (const Run &run : er.runs) {
            Json jr = Json::object();
            jr.set("scheme", run.scheme);
            Json params = Json::object();
            for (const auto &[k, v] : run.params)
                params.set(k, v);
            jr.set("params", std::move(params));
            Json metrics = Json::object();
            for (const Metric &m : run.metrics) {
                Json jm = Json::object();
                jm.set("value", m.value);
                jm.set("unit", m.unit);
                metrics.set(m.name, std::move(jm));
            }
            jr.set("metrics", std::move(metrics));
            Json stats = Json::object();
            for (const auto &[k, v] : run.stats)
                stats.set(k, v);
            jr.set("stats", std::move(stats));
            if (run.trace.hasData()) {
                const sim::TraceBundle &tb = run.trace;
                Json attr = Json::object();
                attr.set("total_busy_ns", tb.totalBusyNs);
                attr.set("total_cycles", tb.totalCycles);
                attr.set("attributed_ns", tb.attributedNs);
                attr.set("coverage_pct", tb.coveragePct());
                attr.set("dropped_events", tb.droppedEvents);
                Json cats = Json::object();
                for (const sim::TraceBundle::Category &c :
                     tb.categories) {
                    Json jc = Json::object();
                    jc.set("ns", c.ns);
                    jc.set("cycles", c.cycles);
                    jc.set("bytes", c.bytes);
                    jc.set("events", c.events);
                    cats.set(c.name, std::move(jc));
                }
                attr.set("categories", std::move(cats));
                jr.set("attribution", std::move(attr));
            }
            runs.push(std::move(jr));
        }
        exp.set("runs", std::move(runs));
        experiments.push(std::move(exp));
    }
    doc.set("experiments", std::move(experiments));
    return doc;
}

std::string
chromeTraceForReport(const Report &report)
{
    std::vector<sim::TraceProcess> procs;
    for (const ExperimentResult &er : report.experiments) {
        for (const Run &run : er.runs) {
            if (run.trace.events.empty())
                continue;
            sim::TraceProcess p;
            p.name = er.exp->name + "/" + run.scheme;
            const std::string params = paramsLabel(run);
            if (!params.empty())
                p.name += " " + params;
            p.bundle = &run.trace;
            procs.push_back(std::move(p));
        }
    }
    return sim::chromeTraceJson(procs);
}

void
printReport(const Report &report, std::FILE *out)
{
    for (const ExperimentResult &er : report.experiments) {
        std::fprintf(out, "\n==== %s (%s) ====\n%s\n",
                     er.exp->name.c_str(), er.exp->paper.c_str(),
                     er.exp->title.c_str());
        std::fprintf(out, "%-12s %-28s %-20s %14s %s\n", "scheme",
                     "params", "metric", "value", "unit");
        std::fprintf(out, "%s\n", std::string(86, '-').c_str());
        for (const Run &run : er.runs) {
            const std::string params = paramsLabel(run);
            for (const Metric &m : run.metrics) {
                std::fprintf(out, "%-12s %-28s %-20s %14.3f %s\n",
                             run.scheme.c_str(), params.c_str(),
                             m.name.c_str(), m.value, m.unit.c_str());
            }
        }
    }
}

void
printList(const DriverOptions &opts, std::FILE *out)
{
    std::fprintf(out, "%-20s %-12s %s\n", "experiment", "paper",
                 "title");
    std::fprintf(out, "%s\n", std::string(76, '-').c_str());
    for (const Experiment *e : selectExperiments(opts))
        std::fprintf(out, "%-20s %-12s %s\n", e->name.c_str(),
                     e->paper.c_str(), e->title.c_str());
}

int
runDriver(int argc, const char *const *argv)
{
    DriverOptions opts;
    std::string err;
    if (!parseArgs(argc, argv, &opts, &err)) {
        std::fprintf(stderr, "damn_bench: %s\n%s", err.c_str(), kUsage);
        return 2;
    }
    if (opts.help) {
        std::fprintf(stdout, "%s", kUsage);
        return 0;
    }
    if (opts.list) {
        printList(opts, stdout);
        return 0;
    }
    const auto selected = selectExperiments(opts);
    if (selected.empty()) {
        std::fprintf(stderr,
                     "damn_bench: no experiment matches '%s' "
                     "(try --list)\n",
                     opts.only.c_str());
        return 1;
    }

    const Report report = runExperiments(opts);
    printReport(report, stdout);

    if (!opts.jsonPath.empty()) {
        const std::string text = reportJson(report).dump();
        std::FILE *f = std::fopen(opts.jsonPath.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "damn_bench: cannot write %s: %s\n",
                         opts.jsonPath.c_str(), std::strerror(errno));
            return 1;
        }
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::fprintf(stdout, "\nwrote %s (%zu bytes)\n",
                     opts.jsonPath.c_str(), text.size());
    }

    if (!opts.tracePath.empty()) {
        const std::string text = chromeTraceForReport(report);
        std::FILE *f = std::fopen(opts.tracePath.c_str(), "wb");
        if (!f) {
            std::fprintf(stderr, "damn_bench: cannot write %s: %s\n",
                         opts.tracePath.c_str(), std::strerror(errno));
            return 1;
        }
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::fprintf(stdout, "wrote %s (%zu bytes)\n",
                     opts.tracePath.c_str(), text.size());
    }
    return 0;
}

} // namespace damn::exp
