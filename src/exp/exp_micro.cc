/**
 * @file
 * Allocator microbenchmarks in *virtual* time: the damn_alloc/
 * damn_free fast paths per size class, plus the two DESIGN.md
 * ablations (context-split caches, magazine layer).
 *
 * The old google-benchmark binary also timed the substrate data
 * structures in host time; host time is not deterministic, so only
 * the virtual-time measurements — which are bit-identical at a fixed
 * seed — survive the port into the unified driver.
 */

#include "exp/experiment.hh"
#include "net/nic.hh"

namespace damn::exp {
namespace {

net::System
makeDamnSystem(core::DmaCacheConfig cache = {})
{
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    p.damnCache = cache;
    return net::System(p);
}

DAMN_EXPERIMENT(micro_allocator)
{
    Experiment e;
    e.name = "micro_allocator";
    e.title = "damn_alloc/damn_free virtual ns per op, per size "
              "class and DESIGN.md ablation";
    e.paper = "extension";
    e.axes = {"path", "size", "context_split", "magazines"};
    e.run = [](RunCtx &ctx) {
        if (ctx.schemesAmong({dma::SchemeKind::Damn}).empty())
            return;
        const char *damn = dma::schemeKindName(dma::SchemeKind::Damn);

        // Fast path per size class.
        for (const std::uint32_t size :
             {256u, 4096u, 16384u, 65536u}) {
            net::System sys = makeDamnSystem();
            net::NicDevice nic(sys, "mlx5_bench");
            sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
            constexpr unsigned kPairs = 4096;
            for (unsigned i = 0; i < kPairs; ++i) {
                const mem::Pa pa = sys.damn->damnAlloc(
                    cpu, &nic, core::Rights::Write, size);
                sys.damn->damnFree(cpu, pa);
            }
            ctx.out.beginRun(damn);
            ctx.out.param("path", "alloc_free");
            ctx.out.param("size", std::uint64_t(size));
            ctx.out.metric("virtual_ns_per_op",
                           double(cpu.time) / kPairs, "ns");
            ctx.out.snapshotStats(sys.ctx.stats);
        }

        // Ablation (design decision 2): two DMA-cache copies per
        // context vs one cache paying irq disable/enable per op.
        for (const bool split : {false, true}) {
            net::System sys = makeDamnSystem();
            net::NicDevice nic(sys, "nic");
            sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
            const core::AllocCtx alloc_ctx = split
                ? core::AllocCtx::Interrupt
                : core::AllocCtx::Standard;
            constexpr unsigned kPairs = 1024;
            for (unsigned i = 0; i < kPairs; ++i) {
                if (!split)
                    cpu.charge(sys.ctx.cost.irqDisableNs * 2);
                const mem::Pa pa = sys.damn->damnAlloc(
                    cpu, &nic, core::Rights::Write, 4096, alloc_ctx);
                sys.damn->damnFree(cpu, pa, alloc_ctx);
            }
            ctx.out.beginRun(damn);
            ctx.out.param("path", "ablation_context_split");
            ctx.out.param("context_split", split ? "1" : "0");
            ctx.out.metric("virtual_ns_per_op",
                           double(cpu.time) / kPairs, "ns");
            ctx.out.snapshotStats(sys.ctx.stats);
        }

        // Ablation (design decision 4): magazine layer vs hitting the
        // depot on every chunk request.  Producer/consumer batches:
        // allocate a ring's worth of whole chunks, then free them all.
        for (const bool magazines : {false, true}) {
            core::DmaCacheConfig cache;
            cache.magazineCapacity = magazines ? 16 : 1;
            net::System sys = makeDamnSystem(cache);
            net::NicDevice nic(sys, "nic");
            sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
            constexpr unsigned kBatches = 64;
            std::uint64_t ops = 0;
            std::vector<mem::Pa> batch;
            for (unsigned b = 0; b < kBatches; ++b) {
                batch.clear();
                for (int i = 0; i < 32; ++i) {
                    batch.push_back(sys.damn->damnAlloc(
                        cpu, &nic, core::Rights::Write, 65536));
                }
                for (const mem::Pa pa : batch)
                    sys.damn->damnFree(cpu, pa);
                ops += 64;
            }
            ctx.out.beginRun(damn);
            ctx.out.param("path", "ablation_magazines");
            ctx.out.param("magazines", magazines ? "1" : "0");
            ctx.out.metric("virtual_ns_per_op",
                           double(cpu.time) / double(ops), "ns");
            ctx.out.snapshotStats(sys.ctx.stats);
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
