/**
 * @file
 * Minimal JSON value: build, serialize, parse.
 *
 * Exists so `damn_bench --json` needs no external dependency and its
 * output is *deterministic*: objects preserve insertion order (the
 * driver builds them in a fixed order), integers round-trip exactly
 * (64-bit, no double conversion), and doubles serialize via the
 * shortest round-trip form — two runs that compute the same values
 * emit byte-identical files.
 */

#ifndef DAMN_EXP_JSON_HH
#define DAMN_EXP_JSON_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace damn::exp {

/** A JSON value (null / bool / int / uint / double / string /
 *  array / object). */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    //!< std::int64_t
        Uint,   //!< std::uint64_t (counters)
        Double,
        String,
        Array,
        Object,
    };

    Json() : kind_(Kind::Null) {}
    Json(bool b) : kind_(Kind::Bool), bool_(b) {}
    Json(int v) : kind_(Kind::Int), int_(v) {}
    Json(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Json(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Json(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Json(double v) : kind_(Kind::Double), double_(v) {}
    Json(const char *s) : kind_(Kind::String), string_(s) {}
    Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {}

    static Json array() { Json j; j.kind_ = Kind::Array; return j; }
    static Json object() { Json j; j.kind_ = Kind::Object; return j; }

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** Append to an array. */
    void
    push(Json v)
    {
        items_.push_back(std::move(v));
    }

    /** Pre-size an array's items (or an object's members). */
    void
    reserve(std::size_t n)
    {
        if (kind_ == Kind::Object)
            members_.reserve(n);
        else
            items_.reserve(n);
    }

    /** Set a key of an object (insertion-ordered; overwrites). */
    void set(const std::string &key, Json v);

    /** Object lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    const std::vector<Json> &items() const { return items_; }
    const std::vector<std::pair<std::string, Json>> &
    members() const
    {
        return members_;
    }

    bool boolean() const { return bool_; }
    std::int64_t asInt() const;
    std::uint64_t asUint() const;
    double asDouble() const;
    const std::string &str() const { return string_; }

    /** Serialize (pretty, 2-space indent, "\n" line endings). */
    std::string dump() const;

    /** Parse a JSON document; throws std::runtime_error on error. */
    static Json parse(const std::string &text);

  private:
    void dumpTo(std::string &out, unsigned indent) const;
    std::size_t dumpSizeHint(unsigned indent) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;                            //!< array
    std::vector<std::pair<std::string, Json>> members_;  //!< object
};

} // namespace damn::exp

#endif // DAMN_EXP_JSON_HH
