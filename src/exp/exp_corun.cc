/**
 * @file
 * Figure 2: bidirectional netperf on 4 cores beside 3 x 8-core
 * Graph500 BFS teams, plus the two solo baselines.
 */

#include "exp/experiment.hh"
#include "workloads/graph500.hh"

namespace damn::exp {
namespace {

DAMN_EXPERIMENT(fig2_graph500)
{
    Experiment e;
    e.name = "fig2_graph500";
    e.title = "netperf (4 cores, bidi) + Graph500 (3 x 8 cores): "
              "mutual interference per scheme";
    e.paper = "Figure 2";
    e.axes = {"scheme", "config"};
    e.defaultWindow = {30 * sim::kNsPerMs, 300 * sim::kNsPerMs};
    e.run = [](RunCtx &ctx) {
        for (const dma::SchemeKind k : ctx.schemes) {
            work::CorunOpts o;
            o.scheme = k;
            o.runWindow = ctx.window;
            const work::CorunResult r = work::runNetGraphCorun(o);
            ctx.out.beginRun(dma::schemeKindName(k));
            ctx.out.param("config", "net+graph");
            ctx.out.common(r.net);
            ctx.out.metric("bfs_iter_seconds", r.iterSeconds, "s");
        }

        // Solo baselines (the paper's "as if the other were absent"
        // reference), under the unprotected configuration.
        const auto base = ctx.schemesAmong({dma::SchemeKind::IommuOff});
        if (base.empty())
            return;
        {
            work::CorunOpts o;
            o.withGraph = false;
            o.runWindow = ctx.window;
            const work::CorunResult r = work::runNetGraphCorun(o);
            ctx.out.beginRun(dma::schemeKindName(base[0]));
            ctx.out.param("config", "net-only");
            ctx.out.common(r.net);
        }
        {
            work::CorunOpts o;
            o.withNet = false;
            o.runWindow = ctx.window;
            const work::CorunResult r = work::runNetGraphCorun(o);
            Run &run = ctx.out.beginRun(dma::schemeKindName(base[0]));
            ctx.out.param("config", "graph-only");
            for (const auto &[name, value] : r.net.stats)
                run.stats[name] += value;
            ctx.out.metric("bfs_iter_seconds", r.iterSeconds, "s");
        }
    };
    return e;
}

} // namespace
} // namespace damn::exp
