/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Modules register counters by name; benches and tests read them out.
 * Deliberately simple: a stats object is plumbed explicitly (no
 * globals), keeping experiments independent and deterministic.
 */

#ifndef DAMN_SIM_STATS_HH
#define DAMN_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace damn::sim {

/** Map of named 64-bit counters with accumulate semantics. */
class Stats
{
  public:
    /** Add @p delta to counter @p name (creates it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track a maximum. */
    void
    max(const std::string &name, std::uint64_t value)
    {
        auto &c = counters_[name];
        if (value > c)
            c = value;
    }

    /** Read counter @p name (0 if absent). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /**
     * Immutable copy of every counter, for attaching to experiment
     * results after a run.  The map is ordered, so serializing a
     * snapshot is deterministic.
     */
    std::map<std::string, std::uint64_t>
    snapshot() const
    {
        return counters_;
    }

    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

/**
 * Write-side view of a Stats object that prefixes every counter name
 * with "<prefix>.".  Lets a reusable component (a co-runner, a churn
 * task) publish counters under its own namespace without knowing who
 * else shares the registry.
 */
class ScopedStats
{
  public:
    ScopedStats(Stats &stats, std::string prefix)
        : stats_(stats), prefix_(std::move(prefix))
    {}

    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        stats_.add(prefix_ + "." + name, delta);
    }

    void
    set(const std::string &name, std::uint64_t value)
    {
        stats_.set(prefix_ + "." + name, value);
    }

    void
    max(const std::string &name, std::uint64_t value)
    {
        stats_.max(prefix_ + "." + name, value);
    }

    const std::string &prefix() const { return prefix_; }

  private:
    Stats &stats_;
    std::string prefix_;
};

} // namespace damn::sim

#endif // DAMN_SIM_STATS_HH
