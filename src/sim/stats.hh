/**
 * @file
 * Lightweight named-counter statistics registry.
 *
 * Modules register counters by name; benches and tests read them out.
 * Deliberately simple: a stats object is plumbed explicitly (no
 * globals), keeping experiments independent and deterministic.
 */

#ifndef DAMN_SIM_STATS_HH
#define DAMN_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <string>

namespace damn::sim {

/** Map of named 64-bit counters with accumulate semantics. */
class Stats
{
  public:
    /** Add @p delta to counter @p name (creates it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track a maximum. */
    void
    max(const std::string &name, std::uint64_t value)
    {
        auto &c = counters_[name];
        if (value > c)
            c = value;
    }

    /** Read counter @p name (0 if absent). */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    bool
    has(const std::string &name) const
    {
        return counters_.count(name) != 0;
    }

    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    void clear() { counters_.clear(); }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace damn::sim

#endif // DAMN_SIM_STATS_HH
