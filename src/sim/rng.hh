/**
 * @file
 * Deterministic xorshift64* random number generator.
 *
 * Workloads use this instead of std::mt19937 for speed and bit-exact
 * reproducibility across standard libraries.
 */

#ifndef DAMN_SIM_RNG_HH
#define DAMN_SIM_RNG_HH

#include <cstdint>

namespace damn::sim {

/** xorshift64* PRNG; passes BigCrush for our purposes and is tiny. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed ? seed : 1)
    {}

    std::uint64_t
    next()
    {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    between(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace damn::sim

#endif // DAMN_SIM_RNG_HH
