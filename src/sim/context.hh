/**
 * @file
 * Bundle of the simulation singletons one experiment run owns.
 *
 * Passed by reference throughout; there are no global singletons, so
 * tests and benches can run many independent simulated machines in one
 * process.
 */

#ifndef DAMN_SIM_CONTEXT_HH
#define DAMN_SIM_CONTEXT_HH

#include "sim/cost_model.hh"
#include "sim/engine.hh"
#include "sim/fault_injector.hh"
#include "sim/machine.hh"
#include "sim/mem_bw.hh"
#include "sim/pressure.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/tracer.hh"

namespace damn::sim {

/** Everything a simulated-machine experiment needs, in one object. */
struct Context
{
    explicit Context(CostModel cm = {}, unsigned sockets = 2,
                     unsigned cores_per_socket = 14)
        : cost(cm),
          machine(sockets, cores_per_socket),
          memBw(cm.memBwGBps)
    {
        tracer.attach(machine);
    }

    Engine engine;
    CostModel cost;
    Machine machine;
    MemBwServer memBw;
    Stats stats;
    Rng rng;
    /** Deterministic fault injection; disabled (zero-cost) by default. */
    FaultInjector faults;
    /** Virtual-time tracing + cost attribution (sim/tracer.hh). */
    Tracer tracer;
    /** Resource-pressure watermarks + forced reclaim (sim/pressure.hh).
     *  Inert until a System registers resources and reclaimers. */
    PressureController pressure{stats};

    /**
     * When true (default), all data paths move real bytes through the
     * simulated physical memory, so tests can assert byte-exact
     * outcomes.  Throughput benches set this to false: timing and
     * translation behaviour are identical, but large payload memcpys
     * on the host are skipped.
     */
    bool functionalData = true;

    TimeNs now() const { return engine.now(); }

    /**
     * CPU time of a copy of @p bytes at @p bytes_per_ns, including the
     * memory-controller contention stall: copies slow down once the
     * controllers run past ~80% utilization (processor-sharing
     * approximation; CPU copies do not queue FIFO behind device DMA).
     * Also books the copy's controller occupancy (@p mem_bytes).
     */
    TimeNs
    copyCost(TimeNs at, std::uint64_t bytes, double bytes_per_ns,
             std::uint64_t mem_bytes)
    {
        const double mult = memStallFactor(memBw.utilization(at));
        memBw.occupy(at, mem_bytes);
        return cost.copyCallNs +
            TimeNs(double(bytes) / bytes_per_ns * mult);
    }

    /** Reset all measurement windows (busy time, bytes, counters). */
    void
    resetAccounting()
    {
        machine.resetAccounting();
        memBw.resetAccounting();
        stats.clear();
        tracer.resetWindow();
    }
};

} // namespace damn::sim

#endif // DAMN_SIM_CONTEXT_HH
