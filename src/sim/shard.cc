/**
 * @file
 * ShardedEngine execution: window planning (earliest-activity
 * fixpoint), deterministic message delivery, and the worker pool.
 */

#include "sim/shard.hh"

#include <algorithm>
#include <cassert>
#include <thread>

namespace damn::sim {

namespace {

/**
 * Generation-counting spin barrier.  Spins briefly then yields, so it
 * behaves on machines with fewer cores than workers (windows are
 * coarse; barrier cost is not the bottleneck either way).
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned n) : n_(n) {}

    void
    wait()
    {
        const unsigned gen = gen_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            n_) {
            arrived_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_acq_rel);
            return;
        }
        unsigned spins = 0;
        while (gen_.load(std::memory_order_acquire) == gen)
            if (++spins > 64)
                std::this_thread::yield();
    }

  private:
    const unsigned n_;
    std::atomic<unsigned> arrived_{0};
    std::atomic<unsigned> gen_{0};
};

} // namespace

void
ShardedEngine::send(unsigned channel, Engine::Callback cb)
{
    Channel &ch = channels_[channel];
    const TimeNs at = shards_[ch.src].eng->now();
    assert(at >= ch.promise &&
           "send() violates an active promiseNoSendBefore()");
    ch.outbox.push_back(Msg{timeSatAdd(at, ch.lookahead),
                            std::move(cb)});
}

void
ShardedEngine::promiseNoSendBefore(unsigned channel, TimeNs when)
{
    channels_[channel].promise = when;
}

void
ShardedEngine::deliverOutboxes()
{
    // Fixed global order — channel creation order, then per-channel
    // send order — so destination sequence numbers (the
    // same-timestamp tie-break) are identical at any worker count.
    for (Channel &ch : channels_) {
        for (Msg &m : ch.outbox) {
            shards_[ch.dst].eng->schedule(m.arrival, std::move(m.cb));
            ++stats_.messages;
        }
        ch.outbox.clear();
    }
}

void
ShardedEngine::computePlan(TimeNs until, Plan *plan)
{
    const std::size_t n = shards_.size();
    plan->lockstep = false;
    plan->horizonEnd.assign(n, until);

    TimeNs t = kTimeNever;
    for (Shard &sh : shards_) {
        const TimeNs next = sh.eng->nextEventTime();
        if (next < t)
            t = next;
    }
    if (t == kTimeNever || t > until) {
        plan->done = true;
        return;
    }
    plan->done = false;

    if (channels_.empty())
        return; // independent shards: one wide-open window each

    if (minLookahead_ == 0) {
        // A zero-lookahead edge exists: a send at time T can arrive at
        // T, so no shard may run past T.  Lock-step over exactly the
        // minimal timestamp; delivered same-time messages re-enter the
        // next round (with higher sequence numbers, i.e. serial FIFO
        // order after the pre-existing events at T).
        plan->lockstep = true;
        plan->horizonEnd.assign(n, t);
        return;
    }

    // Earliest-activity fixpoint (Bellman–Ford over the channel
    // graph): activity_[s] lower-bounds the next virtual time shard s
    // can dispatch anything, accounting for transitive cross-shard
    // wakeups.  Seeded with each queue's head; relaxed through every
    // edge (promise-clamped, lookahead-shifted) until stable.  All
    // lookaheads here are >= 1, so cycles strictly increase and n-1
    // passes suffice.
    activity_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        activity_[i] = shards_[i].eng->nextEventTime();
    for (std::size_t pass = 0; pass < n; ++pass) {
        bool changed = false;
        for (const Channel &ch : channels_) {
            const TimeNs cand = timeSatAdd(
                std::max(activity_[ch.src], ch.promise), ch.lookahead);
            if (cand < activity_[ch.dst]) {
                activity_[ch.dst] = cand;
                changed = true;
            }
        }
        if (!changed)
            break;
    }

    // A shard may dispatch strictly below the earliest possible
    // arrival on any of its in-channels.  The shard holding the
    // global-minimum timestamp always keeps it (every bound is
    // >= t + 1), so each round makes progress.
    for (const Channel &ch : channels_) {
        const TimeNs bound = timeSatAdd(
            std::max(activity_[ch.src], ch.promise), ch.lookahead);
        if (bound != kTimeNever && bound - 1 < plan->horizonEnd[ch.dst])
            plan->horizonEnd[ch.dst] = bound - 1;
    }
}

void
ShardedEngine::runShardWindow(unsigned s, const Plan &plan)
{
    Shard &sh = shards_[s];
    try {
        sh.dispatched += sh.eng->run(plan.horizonEnd[s]);
    } catch (...) {
        if (!sh.error)
            sh.error = std::current_exception();
        abort_.store(true, std::memory_order_release);
    }
}

void
ShardedEngine::runTask(unsigned t)
{
    Task &task = tasks_[t];
    try {
        task.fn();
    } catch (...) {
        // Remaining tasks still run (mirroring the driver's unit
        // pool); the first failure in task order is rethrown after.
        task.error = std::current_exception();
    }
}

void
ShardedEngine::armShardWatchdogs()
{
    for (unsigned s = 0; s < shards_.size(); ++s) {
        std::function<std::uint64_t()> probe;
        if (wdProgress_)
            probe = [this, s] { return wdProgress_(s); };
        shards_[s].eng->armWatchdog(
            wdMax_, std::move(probe),
            [this, s](const StallInfo &info) { recordStall(s, info); });
    }
}

void
ShardedEngine::recordStall(unsigned s, const StallInfo &info)
{
    std::lock_guard<std::mutex> g(stallMu_);
    stallLog_.push_back(ShardStall{s, shards_[s].name, info});
    abort_.store(true, std::memory_order_release);
    if (wdOnStall_)
        wdOnStall_(stallLog_.back());
}

void
ShardedEngine::runSerial(TimeNs until)
{
    for (std::size_t t = 0; t < tasks_.size(); ++t)
        runTask(unsigned(t));
    if (shards_.empty())
        return;
    for (;;) {
        if (abort_.load(std::memory_order_acquire))
            return;
        deliverOutboxes();
        computePlan(until, &plan_);
        if (plan_.done)
            return;
        ++stats_.rounds;
        if (plan_.lockstep)
            ++stats_.lockstepRounds;
        for (unsigned s = 0; s < shards_.size(); ++s)
            runShardWindow(s, plan_);
    }
}

void
ShardedEngine::runParallel(TimeNs until, unsigned workers)
{
    taskNext_.store(0, std::memory_order_relaxed);
    shardNext_.store(shards_.size(), std::memory_order_relaxed);
    SpinBarrier barrier(workers);

    auto workerBody = [&](unsigned wid) {
        for (;;) {
            const std::size_t t =
                taskNext_.fetch_add(1, std::memory_order_acq_rel);
            if (t >= tasks_.size())
                break;
            runTask(unsigned(t));
        }
        barrier.wait();
        if (shards_.empty())
            return;
        for (;;) {
            if (wid == 0) {
                // Coordinator phase: deliver last round's messages and
                // plan the next window.  Runs strictly between
                // barriers, so it may touch every shard engine.
                bool done = abort_.load(std::memory_order_acquire);
                if (!done) {
                    deliverOutboxes();
                    computePlan(until, &plan_);
                    done = plan_.done;
                }
                if (!done) {
                    ++stats_.rounds;
                    if (plan_.lockstep)
                        ++stats_.lockstepRounds;
                }
                plan_.done = done;
                shardNext_.store(0, std::memory_order_relaxed);
            }
            barrier.wait(); // plan published
            if (plan_.done)
                return;
            for (;;) {
                const std::size_t s =
                    shardNext_.fetch_add(1, std::memory_order_acq_rel);
                if (s >= shards_.size())
                    break;
                runShardWindow(unsigned(s), plan_);
            }
            barrier.wait(); // round complete
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned wid = 1; wid < workers; ++wid)
        pool.emplace_back(workerBody, wid);
    workerBody(0);
    for (std::thread &th : pool)
        th.join();
}

void
ShardedEngine::rethrowFirstError()
{
    std::exception_ptr first;
    for (const Task &t : tasks_)
        if (t.error) {
            first = t.error;
            break;
        }
    if (!first)
        for (const Shard &sh : shards_)
            if (sh.error) {
                first = sh.error;
                break;
            }
    tasks_.clear();
    if (first)
        std::rethrow_exception(first);
}

std::uint64_t
ShardedEngine::run(TimeNs until, unsigned workers)
{
    stats_ = ShardRunStats{};
    stallLog_.clear();
    abort_.store(false, std::memory_order_relaxed);
    for (Shard &sh : shards_) {
        sh.dispatched = 0;
        sh.error = nullptr;
    }
    for (Task &t : tasks_)
        t.error = nullptr;
    if (wdArmed_)
        armShardWatchdogs();

    const std::size_t widest = std::max(
        std::max(tasks_.size(), shards_.size()), std::size_t{1});
    const unsigned w = unsigned(std::min<std::size_t>(
        std::max(1u, workers), widest));
    if (w <= 1)
        runSerial(until);
    else
        runParallel(until, w);

    stats_.tasksRun = tasks_.size();
    for (const Shard &sh : shards_)
        stats_.dispatched += sh.dispatched;
    std::stable_sort(stallLog_.begin(), stallLog_.end(),
                     [](const ShardStall &a, const ShardStall &b) {
                         return a.shard < b.shard;
                     });
    rethrowFirstError();
    return stats_.dispatched;
}

} // namespace damn::sim
