/**
 * @file
 * Small-buffer-optimized move-only callable, the engine's event
 * callback representation.
 *
 * `std::function` heap-allocates for any capture list larger than its
 * (implementation-defined, typically two-pointer) inline buffer, and
 * the simulator's event callbacks routinely capture `this` plus a few
 * words of state — every schedule() paid an allocation and every
 * dispatch an indirect-through-heap call.  SmallFn fixes the inline
 * buffer at 48 bytes (covers every callback in tree; checked with a
 * static_assert at each capture-heavy call site that cares) and falls
 * back to a single heap cell only beyond that, so the common path is
 * allocation-free and the callable body sits in the same cache lines
 * as the event bookkeeping.
 *
 * Move-only on purpose: event callbacks are dispatched exactly once
 * and priority-queue reshuffling only ever relocates them.
 */

#ifndef DAMN_SIM_SMALL_FN_HH
#define DAMN_SIM_SMALL_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace damn::sim {

/** Move-only `void()` callable with a 48-byte inline buffer. */
class SmallFn
{
  public:
    static constexpr std::size_t kInlineBytes = 48;

    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    SmallFn(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(store_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            // Oversized capture: one owning pointer in the buffer.
            ::new (static_cast<void *>(store_))
                Fn *(new Fn(std::forward<F>(f)));
            ops_ = &heapOps<Fn>;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** Destroy the held callable (if any); empty afterwards. */
    void
    reset()
    {
        if (ops_) {
            ops_->destroy(store_);
            ops_ = nullptr;
        }
    }

    explicit operator bool() const { return ops_ != nullptr; }

    void operator()() { ops_->invoke(store_); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *src, void *dst) noexcept;
        void (*destroy)(void *) noexcept;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *p) { (*static_cast<Fn *>(p))(); },
        [](void *src, void *dst) noexcept {
            Fn *f = static_cast<Fn *>(src);
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void *p) noexcept { static_cast<Fn *>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *p) { (**static_cast<Fn **>(p))(); },
        [](void *src, void *dst) noexcept {
            ::new (dst) Fn *(*static_cast<Fn **>(src));
        },
        [](void *p) noexcept { delete *static_cast<Fn **>(p); },
    };

    void
    moveFrom(SmallFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            ops_->relocate(other.store_, store_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char store_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace damn::sim

#endif // DAMN_SIM_SMALL_FN_HH
