/**
 * @file
 * Deterministic fault injector.
 *
 * Every layer that can fail under real hardware (DMA translation, NIC
 * RX/TX, NVMe commands, IOTLB invalidations) consults a named *site* on
 * its data path.  Sites fire either probabilistically (seeded, per-site
 * RNG streams, so enabling one site never perturbs another) or on a
 * schedule ("fail the Nth operation").  Because the simulation engine
 * is deterministic, the same seed over the same run yields the same
 * fault schedule bit-for-bit — the property the recovery tests lean on.
 *
 * When disabled (the default) shouldFail() is a single branch and no
 * RNG state advances, so experiment outputs are unchanged.
 */

#ifndef DAMN_SIM_FAULT_INJECTOR_HH
#define DAMN_SIM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <set>

#include "sim/rng.hh"

namespace damn::sim {

/** Places on the data path where a fault can be injected. */
enum class FaultSite : unsigned
{
    DmaTranslate, //!< IOMMU translation of a device access
    NicRx,        //!< NIC receive segment DMA
    NicTx,        //!< NIC transmit segment DMA
    NvmeCmd,      //!< NVMe command execution
    IommuInval,   //!< IOTLB invalidation command
    DeviceUnplug, //!< surprise hot-unplug, checked per device DMA
    NicLinkFlap,  //!< transient link-down event on a NIC port
    PageAlloc,    //!< OS page-allocation failure (memory pressure)
};

constexpr unsigned kNumFaultSites = 8;

inline const char *
faultSiteName(FaultSite s)
{
    switch (s) {
      case FaultSite::DmaTranslate:
        return "dma.translate";
      case FaultSite::NicRx:
        return "nic.rx";
      case FaultSite::NicTx:
        return "nic.tx";
      case FaultSite::NvmeCmd:
        return "nvme.cmd";
      case FaultSite::IommuInval:
        return "iommu.inval";
      case FaultSite::DeviceUnplug:
        return "device.unplug";
      case FaultSite::NicLinkFlap:
        return "nic.link_flap";
      case FaultSite::PageAlloc:
        return "mem.page_alloc";
    }
    return "?";
}

/**
 * Seeded, virtual-time-deterministic fault injector.  One per
 * sim::Context; data paths call shouldFail(site) at their injection
 * point and take their recovery path when it returns true.
 */
class FaultInjector
{
  public:
    /** Arm the injector.  Each site gets its own RNG stream derived
     *  from @p seed, so fault schedules are per-site reproducible. */
    void
    enable(std::uint64_t seed)
    {
        enabled_ = true;
        seed_ = seed;
        for (unsigned i = 0; i < kNumFaultSites; ++i)
            sites_[i].rng = Rng(seed * 0x9e3779b97f4a7c15ull + i + 1);
    }

    /** Disarm: shouldFail() returns false without any accounting. */
    void disable() { enabled_ = false; }

    bool enabled() const { return enabled_; }
    std::uint64_t seed() const { return seed_; }

    /** Fault each operation at @p site with probability @p p. */
    void
    setProbability(FaultSite site, double p)
    {
        sites_[unsigned(site)].probability = p;
    }

    /** Fault the @p nth operation at @p site (1-based, repeatable). */
    void
    failNth(FaultSite site, std::uint64_t nth)
    {
        sites_[unsigned(site)].scheduled.insert(nth);
    }

    /**
     * The injection point: counts the operation and decides whether it
     * faults.  Zero overhead when the injector is disabled.
     */
    bool
    shouldFail(FaultSite site)
    {
        if (!enabled_)
            return false;
        Site &s = sites_[unsigned(site)];
        const std::uint64_t n = ++s.ops;
        bool fail = false;
        if (!s.scheduled.empty()) {
            auto it = s.scheduled.find(n);
            if (it != s.scheduled.end()) {
                s.scheduled.erase(it);
                fail = true;
            }
        }
        if (!fail && s.probability > 0.0 && s.rng.chance(s.probability))
            fail = true;
        if (fail)
            ++s.injected;
        return fail;
    }

    /** Operations seen at @p site while enabled. */
    std::uint64_t ops(FaultSite site) const
    {
        return sites_[unsigned(site)].ops;
    }

    /** Faults injected at @p site. */
    std::uint64_t injected(FaultSite site) const
    {
        return sites_[unsigned(site)].injected;
    }

    std::uint64_t
    totalInjected() const
    {
        std::uint64_t t = 0;
        for (const Site &s : sites_)
            t += s.injected;
        return t;
    }

    /**
     * Disarm and clear all probabilities, schedules and statistics.
     *
     * Contract: reset() returns every per-site RNG stream to its
     * *default-constructed* state — it does NOT re-derive streams from
     * the old seed.  The streams stay in that indeterminate-for-
     * injection state until the next enable(), which re-seeds all of
     * them from its argument.  Consequently enable(s) → reset() →
     * enable(s) reproduces the exact fault schedule of the first
     * enable(s): determinism survives a reset, but only through a
     * subsequent enable().  shouldFail() between reset() and enable()
     * always returns false and advances no RNG state.
     */
    void
    reset()
    {
        enabled_ = false;
        seed_ = 0;
        for (Site &s : sites_)
            s = Site{};
    }

  private:
    struct Site
    {
        double probability = 0.0;
        Rng rng = Rng(); // re-seeded by enable()
        std::set<std::uint64_t> scheduled;
        std::uint64_t ops = 0;
        std::uint64_t injected = 0;
    };

    bool enabled_ = false;
    std::uint64_t seed_ = 0;
    std::array<Site, kNumFaultSites> sites_{};
};

} // namespace damn::sim

#endif // DAMN_SIM_FAULT_INJECTOR_HH
