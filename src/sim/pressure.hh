/**
 * @file
 * Watermark-based resource-pressure controller.
 *
 * Allocation-heavy subsystems (page allocator, kmalloc heap, IOVA
 * space, DAMN caches, shadow pools) register a usage probe; reclaim
 * providers (deferred-flush queues, magazine shrinkers, pool releasers)
 * register a callback tagged with a relative cost.  When an allocation
 * fails — or a producer polls and finds a resource past its critical
 * watermark — reclaim() runs the callbacks cheapest-first until overall
 * pressure drops below the low watermark or every provider has run.
 *
 * This is the simulated analog of Linux's vmpressure / shrinker /
 * fq_ring-flush machinery: the point is that exhaustion becomes a
 * *recoverable, observable* degradation path instead of an assert.
 * Everything is deterministic — registration order is preserved, cost
 * ties break by registration order, and all accounting goes through
 * the run's sim::Stats registry.
 */

#ifndef DAMN_SIM_PRESSURE_HH
#define DAMN_SIM_PRESSURE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/cpu_cursor.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace damn::sim {

/** Pressure level of one resource (or of the whole machine). */
enum class PressureLevel : std::uint8_t
{
    Ok = 0,       //!< below the low watermark
    Low = 1,      //!< between low and critical: reclaim opportunistically
    Critical = 2, //!< past critical: allocations are about to fail
};

constexpr const char *
pressureLevelName(PressureLevel l)
{
    switch (l) {
      case PressureLevel::Ok:
        return "ok";
      case PressureLevel::Low:
        return "low";
      case PressureLevel::Critical:
        return "critical";
    }
    return "?";
}

/**
 * Tracks watermark levels across registered resources and drives
 * cost-ordered reclaim.  One instance per sim::Context.
 */
class PressureController
{
  public:
    /** Usage probe: current utilization of the resource in [0, 1]. */
    using UsageFn = std::function<double()>;
    /** Reclaimer: release what it can, charging CPU time to @p cpu.
     *  Returns the units (bytes, pages, IOVA pages — provider-defined)
     *  it reclaimed; 0 means it had nothing to give back. */
    using ReclaimFn = std::function<std::uint64_t(CpuCursor &)>;

    explicit PressureController(Stats &stats) : stats_(stats) {}

    PressureController(const PressureController &) = delete;
    PressureController &operator=(const PressureController &) = delete;

    /**
     * Register a watched resource.  Watermarks are utilization
     * fractions; crossing them flips the reported level.
     */
    void
    registerResource(std::string name, UsageFn usage,
                     double low_watermark = 0.75,
                     double critical_watermark = 0.90)
    {
        resources_.push_back(Resource{std::move(name), std::move(usage),
                                      low_watermark, critical_watermark,
                                      PressureLevel::Ok});
    }

    /**
     * Register a reclaim provider.  @p cost orders providers: lower
     * runs first (flush a queue before tearing down caches).  Ties
     * keep registration order, so reclaim is deterministic.
     */
    void
    registerReclaimer(std::string name, unsigned cost, ReclaimFn fn)
    {
        reclaimers_.push_back(
            Reclaimer{std::move(name), cost, std::move(fn)});
        std::stable_sort(reclaimers_.begin(), reclaimers_.end(),
                         [](const Reclaimer &a, const Reclaimer &b) {
                             return a.cost < b.cost;
                         });
    }

    /** Current level of one resource (Ok when unknown). */
    PressureLevel
    level(const std::string &resource) const
    {
        for (const Resource &r : resources_)
            if (r.name == resource)
                return levelOf(r);
        return PressureLevel::Ok;
    }

    /** Worst level across every registered resource. */
    PressureLevel
    overall() const
    {
        PressureLevel worst = PressureLevel::Ok;
        for (const Resource &r : resources_)
            worst = std::max(worst, levelOf(r));
        return worst;
    }

    /**
     * Sample every resource, record level-transition counters, and
     * return the overall level.  Producers on throttle-capable paths
     * (RX refill, TX submit, NVMe submit) call this to decide whether
     * to back off before allocating.
     */
    PressureLevel
    poll()
    {
        PressureLevel worst = PressureLevel::Ok;
        for (Resource &r : resources_) {
            const PressureLevel l = levelOf(r);
            if (l != r.lastLevel) {
                stats_.add("pressure." + r.name + ".to_" +
                           pressureLevelName(l));
                r.lastLevel = l;
            }
            worst = std::max(worst, l);
        }
        return worst;
    }

    /**
     * Forced reclaim: run providers cheapest-first until overall
     * pressure drops below Low or every provider has run.  Called from
     * allocation-failure paths (the feedback loop) and from throttle
     * sites that found poll() == Critical.
     * @return total units reclaimed across the providers that ran.
     */
    std::uint64_t
    reclaim(CpuCursor &cpu)
    {
        if (reclaiming_)
            return 0; // a reclaimer's own allocation failed: don't recurse
        reclaiming_ = true;
        ++reclaimEvents_;
        stats_.add("pressure.reclaims");
        const TimeNs t0 = cpu.time;
        std::uint64_t total = 0;
        for (Reclaimer &rec : reclaimers_) {
            const std::uint64_t got = rec.fn(cpu);
            if (got > 0) {
                total += got;
                stats_.add("pressure.reclaimed." + rec.name, got);
            }
            if (poll() < PressureLevel::Low)
                break;
        }
        reclaimedUnits_ += total;
        lastReclaimNs_ = cpu.time - t0;
        stats_.add("pressure.reclaim_ns", std::uint64_t(lastReclaimNs_));
        if (total == 0)
            stats_.add("pressure.reclaim_futile");
        reclaiming_ = false;
        return total;
    }

    std::uint64_t reclaimEvents() const { return reclaimEvents_; }
    std::uint64_t reclaimedUnits() const { return reclaimedUnits_; }
    /** Virtual-time cost of the most recent reclaim() pass. */
    TimeNs lastReclaimNs() const { return lastReclaimNs_; }
    std::size_t numResources() const { return resources_.size(); }
    std::size_t numReclaimers() const { return reclaimers_.size(); }

  private:
    struct Resource
    {
        std::string name;
        UsageFn usage;
        double low;
        double critical;
        PressureLevel lastLevel;
    };

    struct Reclaimer
    {
        std::string name;
        unsigned cost;
        ReclaimFn fn;
    };

    static PressureLevel
    levelOf(const Resource &r)
    {
        const double u = r.usage();
        if (u >= r.critical)
            return PressureLevel::Critical;
        if (u >= r.low)
            return PressureLevel::Low;
        return PressureLevel::Ok;
    }

    Stats &stats_;
    std::vector<Resource> resources_;
    std::vector<Reclaimer> reclaimers_;
    bool reclaiming_ = false;
    std::uint64_t reclaimEvents_ = 0;
    std::uint64_t reclaimedUnits_ = 0;
    TimeNs lastReclaimNs_ = 0;
};

} // namespace damn::sim

#endif // DAMN_SIM_PRESSURE_HH
