/**
 * @file
 * Shared memory-bandwidth server.
 *
 * Every byte that crosses the memory controllers — CPU copy traffic and
 * device DMA alike — is accounted here.  The server is a FIFO rate
 * limiter at the platform's sustainable bandwidth; when aggregate demand
 * exceeds it, transfers stretch.  This is the mechanism by which shadow
 * buffers throttle the NIC in the paper's figure 6: their extra copy
 * pushes total traffic to the ~80 GB/s controller limit, the NIC's DMA
 * completions slide, rings back up, and the OS throttles I/O.
 */

#ifndef DAMN_SIM_MEM_BW_HH
#define DAMN_SIM_MEM_BW_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "sim/types.hh"

namespace damn::sim {

/**
 * Contention stall multiplier for bandwidth consumers that share the
 * controllers (CPU copies, BFS streaming) rather than queueing FIFO.
 * Below ~80% utilization the controllers absorb the load; past that,
 * latency grows queueing-theoretically.  Capped: real memory systems
 * retain forward progress under total saturation.
 */
inline double
memStallFactor(double rho)
{
    if (rho <= 0.8)
        return 1.0;
    const double r = rho < 0.96 ? rho : 0.96;
    const double stall = 0.2 / (1.0 - r);
    return stall < 5.0 ? stall : 5.0;
}

/**
 * FIFO bandwidth server.  transfer() returns the time the last byte of
 * the request leaves the memory system.
 */
class MemBwServer
{
  public:
    /**
     * @param bytes_per_ns sustainable aggregate bandwidth.  The paper
     * measures ~80 GB/s as the advertised limit of the evaluation
     * server's memory controllers (section 6.1, "Beyond 100 Gb/s").
     */
    explicit MemBwServer(double bytes_per_ns = 80.0)
        : bytesPerNs_(bytes_per_ns)
    {}

    /**
     * Request a transfer of @p bytes starting at @p now.
     * @return completion time of the transfer.
     */
    TimeNs
    transfer(TimeNs now, std::uint64_t bytes)
    {
        const TimeNs begin = now > freeAt_ ? now : freeAt_;
        const double dur = double(bytes) / bytesPerNs_;
        freeAt_ = begin + TimeNs(dur);
        totalBytes_ += bytes;
        noteLoad(now, dur);
        return freeAt_;
    }

    /**
     * Account controller occupancy for CPU-side copy traffic.  Unlike
     * device DMA, a CPU copy shares the controllers with everything
     * else rather than queueing FIFO; the *stall* it experiences is
     * modeled by the caller via utilization() (see Context::copyCost).
     * The occupancy still counts against the ceiling, so heavy copy
     * traffic (shadow buffers) pushes device DMA completions out.
     */
    void
    occupy(TimeNs now, std::uint64_t bytes)
    {
        const TimeNs begin = now > freeAt_ ? now : freeAt_;
        const double dur = double(bytes) / bytesPerNs_;
        freeAt_ = begin + TimeNs(dur);
        totalBytes_ += bytes;
        noteLoad(now, dur);
    }

    /**
     * Smoothed controller utilization in [0, ~1.2]: injected service
     * time per wall time, averaged over the trailing window.  Uses
     * time-bucketed accumulation so out-of-order virtual timestamps
     * (cursor times on backlogged cores run ahead of the engine clock)
     * are attributed to the right interval.
     */
    double
    utilization(TimeNs now) const
    {
        const std::uint64_t idx = now / kBucketNs;
        // Hot-path memo: per-packet copy costing asks for utilization
        // many times between load changes; the answer depends only on
        // the bucket index and the load table, so replay it until
        // either moves.  Pure caching — identical values, and thereby
        // identical simulated output, with or without the memo.
        if (idx == memoIdx_ && !memoStale_)
            return memoUtil_;
        const std::uint64_t lo = idx >= kWindowBuckets
            ? idx - kWindowBuckets : 0;
        double sum = 0.0;
        for (std::uint64_t i = lo; i < idx; ++i) {
            const auto slot = i % kBuckets;
            if (bucketEpoch_[slot] == i)
                sum += loadNs_[slot];
        }
        memoIdx_ = idx;
        memoUtil_ = sum / (double(kWindowBuckets) * kBucketNs);
        memoStale_ = false;
        return memoUtil_;
    }

    /**
     * Account bytes without queueing delay (cache-resident traffic that
     * still shows up at the memory controller with probability < 1 is
     * pre-scaled by the caller).
     */
    void accountOnly(std::uint64_t bytes) { totalBytes_ += bytes; }

    /** True when the server is backlogged at time @p now. */
    bool congested(TimeNs now) const { return freeAt_ > now; }

    /** Backlog depth at time @p now (how far behind the server is). */
    TimeNs
    backlogNs(TimeNs now) const
    {
        return freeAt_ > now ? freeAt_ - now : 0;
    }

    double bytesPerNs() const { return bytesPerNs_; }
    std::uint64_t totalBytes() const { return totalBytes_; }

    /** Achieved bandwidth over a window, in GB/s (1e9 bytes/s). */
    double
    achievedGBps(TimeNs window) const
    {
        if (window == 0)
            return 0.0;
        return double(totalBytes_) / double(window);
    }

    void resetAccounting() { totalBytes_ = 0; }

  private:
    static constexpr TimeNs kBucketNs = 50'000;  //!< 50 us buckets
    static constexpr unsigned kBuckets = 64;     //!< ring capacity
    static constexpr unsigned kWindowBuckets = 4;//!< 200 us window

    void
    noteLoad(TimeNs at, double service_ns)
    {
        const std::uint64_t idx = at / kBucketNs;
        const auto slot = idx % kBuckets;
        if (bucketEpoch_[slot] != idx) {
            bucketEpoch_[slot] = idx;
            loadNs_[slot] = 0.0;
        }
        loadNs_[slot] += service_ns;
        memoStale_ = true;
    }

    double bytesPerNs_;
    TimeNs freeAt_ = 0;
    std::uint64_t totalBytes_ = 0;
    std::array<double, kBuckets> loadNs_{};
    std::array<std::uint64_t, kBuckets> bucketEpoch_{};
    mutable std::uint64_t memoIdx_ = ~std::uint64_t{0};
    mutable double memoUtil_ = 0.0;
    mutable bool memoStale_ = true;
};

} // namespace damn::sim

#endif // DAMN_SIM_MEM_BW_HH
