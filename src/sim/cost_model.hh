/**
 * @file
 * Calibrated cost model for the simulated kernel + hardware.
 *
 * Every virtual-time charge in the system comes from a named constant
 * here.  Constants are calibrated against the paper's *own* single-core
 * measurements (figure 4) on the 2 GHz Broadwell evaluation server, so
 * that the multi-core and bidirectional experiments *emerge* from the
 * closed-loop simulation rather than being dialed in.  Derivations:
 *
 *  - iommu-off RX sustains 67 Gb/s on one 100%-busy core with 64 KiB
 *    LRO segments => 7.8 us of CPU per segment.  Of that, the 64 KiB
 *    kernel->user copy at an effective ~11 GB/s (DDIO keeps freshly
 *    DMAed data in LLC) is ~6.0 us, leaving ~1.8 us for driver + TCP +
 *    ACK processing => kStackPerSegmentNs + kDriverPerBufferNs.
 *  - strict RX drops to 50 Gb/s => ~2.6 us extra per segment; with one
 *    receive buffer per LRO segment that is one synchronous IOTLB
 *    invalidation (queue lock + wait-descriptor round trip) =>
 *    kStrictInvalidateNs ~ 1.6-2.6 us; we use 1.9 us, mid-range, which
 *    also reproduces the ~80 Gb/s multi-core ceiling of figure 5 (the
 *    invalidation engine serializes at 1/kStrictInvalidateNs ops/s).
 *  - shadow-buffer RX drops to 26 Gb/s => ~12 us extra per segment for
 *    one additional 64 KiB copy into cache-cold kmalloc buffers =>
 *    kColdCopyBytesPerNs ~ 5.5 GB/s.  Shadow TX copies data the sender
 *    just wrote (LLC-resident) => kShadowTxCopyBytesPerNs ~ 14 GB/s,
 *    matching the paper's 1.7x TX improvement and its footnote that the
 *    RX/TX gap is a cache-footprint effect.
 *  - deferred map+unmap costs ~55 ns per buffer (Linux 4.7 per-CPU IOVA
 *    caching per Peleg et al. [34]); its IOTLB flush is batched over
 *    kDeferredBatch unmaps or kDeferredFlushNs, whichever first.
 *
 * Absolute numbers on different (or real) hardware will differ; the
 * shapes — who wins, by what factor, where crossovers fall — are what
 * the model preserves.  See EXPERIMENTS.md for measured-vs-paper.
 */

#ifndef DAMN_SIM_COST_MODEL_HH
#define DAMN_SIM_COST_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace damn::sim {

/** All tunable virtual-time costs, in one place. */
struct CostModel
{
    // ---- CPU clock ------------------------------------------------
    /** Core clock, GHz (E5-2660 v4, Turbo disabled). */
    double cpuGhz = 2.0;

    /** Convert cycles to ns at the model clock. */
    TimeNs
    cyclesToNs(double cycles) const
    {
        return TimeNs(cycles / cpuGhz);
    }

    // ---- Copy costs (CPU side) ------------------------------------
    /** Kernel<->user copy of freshly-DMAed (DDIO/LLC-warm) data, B/ns. */
    double warmCopyBytesPerNs = 11.0;
    /** copy_from_user on TX: netperf reuses one small send buffer, so
     *  the source stays cache-hot, B/ns. */
    double txUserCopyBytesPerNs = 14.0;
    /** Copy into cache-cold destination buffers (shadow RX path), B/ns. */
    double coldCopyBytesPerNs = 5.5;
    /** Shadow TX copy: source just written by the app, LLC->LLC, B/ns. */
    double shadowTxCopyBytesPerNs = 16.5;
    /** Fixed per-copy-call overhead (function call, checks), ns. */
    TimeNs copyCallNs = 40;

    /** CPU time of a warm copy of @p bytes. */
    TimeNs
    warmCopyNs(std::uint64_t bytes) const
    {
        return copyCallNs + TimeNs(double(bytes) / warmCopyBytesPerNs);
    }

    /** CPU time of a cold copy of @p bytes. */
    TimeNs
    coldCopyNs(std::uint64_t bytes) const
    {
        return copyCallNs + TimeNs(double(bytes) / coldCopyBytesPerNs);
    }

    // ---- Memory-system traffic factors ----------------------------
    /**
     * Fraction of copy read+write traffic that actually reaches the
     * memory controller (the rest is LLC-resident thanks to DDIO and
     * short reuse distances).
     */
    double copyMemTrafficFactor = 0.7;
    /** Fraction of NIC DMA traffic that reaches DRAM (DDIO absorbs
     *  part of the RX write stream). */
    double dmaMemTrafficFactor = 0.85;
    /** Cache-cold copies (shadow RX) miss the LLC on both streams, so
     *  their full read+write traffic reaches DRAM. */
    double coldCopyMemFactor = 1.0;

    // ---- Network stack / driver -----------------------------------
    /** TCP/IP + socket processing per segment (any size), ns. */
    TimeNs stackPerSegmentNs = 1100;
    /** Driver work per posted/completed buffer (descriptor handling,
     *  skb setup/teardown), ns. */
    TimeNs driverPerBufferNs = 250;
    /** Interrupt entry/exit + NAPI poll amortized per segment, ns. */
    TimeNs irqPerSegmentNs = 300;
    /** ACK build/parse cost per data segment (delayed ACK, 1 per 2
     *  segments, folded in), ns. */
    TimeNs ackPerSegmentNs = 150;
    /** Lightweight per-byte packet inspection (figure 8's XOR with a
     *  constant -- vectorized, cache-resident), B/ns. */
    double xorBytesPerNs = 64.0;
    /**
     * Multi-flow inefficiency factor applied to per-segment stack and
     * driver costs when many flows share the machine (cache and
     * scheduler interference; calibrated against fig. 5's CPU%).
     */
    double multiFlowFactor = 2.5;

    // ---- Allocator costs ------------------------------------------
    /** kmalloc/kfree pair for a packet buffer, ns. */
    TimeNs kmallocNs = 90;
    /** Page-fragment (sk_page_frag) alloc or free, ns. */
    TimeNs pageFragNs = 35;
    /** Page allocator order-k allocation, ns. */
    TimeNs pageAllocNs = 180;
    /** DAMN fast path: bump-pointer carve + refcount, ns (section 5.4:
     *  a handful of arithmetic ops and one atomic). */
    TimeNs damnFastAllocNs = 25;
    /** DAMN free fast path: refcount decrement, ns. */
    TimeNs damnFastFreeNs = 20;
    /** Magazine hit (pop/push on per-core stack), ns. */
    TimeNs magazineOpNs = 30;
    /** Depot exchange (global lock + list splice), ns: lock hold time. */
    TimeNs depotExchangeNs = 250;
    /** Zeroing freshly acquired chunk pages, B/ns (streaming stores). */
    double zeroBytesPerNs = 16.0;
    /** Cost to disable+enable interrupts around a critical section, ns.
     *  Used only by the single-cache ablation (design decision 2). */
    TimeNs irqDisableNs = 60;

    // ---- DMA API / IOMMU ------------------------------------------
    /** IOVA range allocation via the kernel allocator with per-CPU
     *  caching (Linux >= 4.7), ns. */
    TimeNs iovaAllocNs = 35;
    /** IOVA allocation slow path: global rbtree under lock, ns (lock
     *  hold time; pre-4.7 behaviour and cache misses). */
    TimeNs iovaAllocSlowNs = 400;
    /** Probability that an IOVA alloc misses the per-CPU cache. */
    double iovaSlowPathRate = 0.02;
    /** Writing/clearing one PTE in the I/O page table, ns. */
    TimeNs ptePerPageNs = 12;
    /**
     * Strict-mode synchronous invalidation: queue-lock hold +
     * invalidation descriptor + wait descriptor round trip, ns.
     * This whole duration holds the global invalidation-queue lock.
     */
    TimeNs strictInvalidateNs = 1650;
    /**
     * Fraction of strict-mode invalidation *spin-wait* time that OS
     * accounting books as busy (the wait loop issues pause/cpu_relax;
     * calibrated to the paper's 64% CPU at the 80 Gb/s strict ceiling).
     */
    double strictSpinBusyFraction = 0.55;
    /**
     * Extra out-of-lock completion wait per strict invalidation, ns.
     * IOMMUs with pipelined invalidation engines (the NVMe testbed's)
     * have a short submission slot (the lock hold above) but a longer
     * round-trip latency that the unmapping CPU still spins through
     * without blocking other submitters.  Zero on the NIC server,
     * where the wait happens under the lock.
     */
    TimeNs strictPostWaitNs = 0;
    /** Deferred-mode per-unmap bookkeeping (add to flush queue), ns. */
    TimeNs deferredUnmapNs = 20;
    /** Deferred flush: one batched invalidation for the whole queue. */
    TimeNs deferredFlushNs = 2200;
    /** Deferred batching threshold (Linux: ~250 pending). */
    unsigned deferredBatch = 250;
    /** Deferred flush timer (Linux: 10 ms). */
    TimeNs deferredFlushTimerNs = 10 * kNsPerMs;
    /**
     * IOTLB miss page walk, ns of *DMA-engine occupancy* per miss.
     * The raw 4-level walk takes ~100-150 ns, but the NIC pipelines
     * many outstanding DMAs, hiding most of it; the residual engine
     * stall is what throttles line rate when the IOTLB thrashes
     * (Table 3's huge-page variant recovers exactly this).
     */
    TimeNs iotlbWalkNs = 60;
    /** Walk with hot upper levels (page-walk-cache hit), ns. */
    TimeNs iotlbWalkPwcNs = 15;
    /** Shadow-buffer pool alloc/free per buffer, ns. */
    TimeNs shadowPoolOpNs = 110;
    /** DAMN dma_map interposition: page-flag check + IOVA lookup, ns. */
    TimeNs damnMapLookupNs = 15;
    /** DAMN dma_unmap interposition: IOVA MSB check, ns. */
    TimeNs damnUnmapCheckNs = 5;

    // ---- ARM SMMUv3 backend ----------------------------------------
    // The command-queue architecture splits what VT-d prices as one
    // locked round trip (strictInvalidateNs) into a cheap *producer*
    // slot under the cmdq lock and an asynchronous *consumer* drain
    // awaited outside it — the contention asymmetry the backend_matrix
    // experiment measures.
    //
    // Calibration sources (published ARM SMMUv3 numbers; the model
    // keeps their *shape* — cheap contended producer, latency-bound
    // CMD_SYNC, DRAM-bound walks — at our 2 GHz reference clock):
    //
    //  [S1] Arm SMMUv3 Architecture Specification (IHI 0070): command
    //       queue producer protocol (two 64-bit dwords + PROD update),
    //       CMD_SYNC completion by MSI or SEV polling, STE→CD indirection
    //       on the config path, CMDQS/EVTQS log2 ring sizing.
    //  [S2] Linux `iommu/arm-smmu-v3` lock-free command-queue series
    //       (Will Deacon, 2019, merged v5.4): insertion of a command
    //       batch is tens of ns when uncontended — the series exists
    //       because the *lock*, not the 2-dword write, dominated at
    //       high core counts.  Anchors smmuCmdSubmitNs ≈ 35 ns
    //       (~70 cycles: slot reservation + 2 stores + doorbell).
    //  [S3] "Optimizing the performance of SMMUv3" (John Garry,
    //       HiSilicon, Linux Plumbers / upstream threads, Kunpeng 920
    //       measurements): strict-mode per-unmap cost is dominated by
    //       the CMD_SYNC round trip (sub-microsecond once the queue
    //       ahead has drained) and the consumer's TLBI drain rate
    //       (~10 M invalidations/s ceiling).  Anchors
    //       smmuCmdSyncNs ≈ 750 ns and smmuTlbiNs ≈ 110 ns.
    //  [S4] Arm MMU-600 TRM: TBU translation latency — single-digit
    //       cycles on TLB hit, walk-cache hits save the upper-level
    //       walks; a cold stage-1 4 KiB walk is 3-4 dependent memory
    //       reads of which the PWC typically leaves ~2 DRAM touches.
    //       Anchors smmuWalkNs ≈ 105 ns (≈ 2 × ~50 ns DRAM + fabric),
    //       smmuWalkPwcNs ≈ 22 ns, smmuCdFetchNs ≈ 140 ns (STE then
    //       CD: two dependent cold reads).
    //  [S5] WFE-based CMD_SYNC polling (smmu_queue_poll in Linux)
    //       parks the core between events rather than pause-spinning
    //       like VT-d's wait-descriptor loop — we book 30% of the
    //       wait as busy vs VT-d's 55% (strictSpinBusyFraction).
    //
    /** Producing one command into the queue (slot reservation + two
     *  64-bit writes + PROD update), held under the cmdq lock, ns.
     *  [S1][S2] */
    TimeNs smmuCmdSubmitNs = 35;
    /** CMD_SYNC completion round trip once the queue ahead of it has
     *  drained (MSI or sev-based wakeup), ns.  [S1][S3] */
    TimeNs smmuCmdSyncNs = 750;
    /** Consuming one CMD_TLBI_* (walking and nuking TLB tags), ns.
     *  [S3] */
    TimeNs smmuTlbiNs = 110;
    /** Fraction of the out-of-lock CMD_SYNC wait booked as busy
     *  (wfe-based polling is gentler than VT-d's pause loop).  [S5] */
    double smmuSyncSpinBusyFraction = 0.30;
    /** SMMUv3 translation-table walk on a walk-cache miss, ns.  ARM
     *  walks are 3-4 levels like VT-d but the SMMU shares the
     *  interconnect path with device traffic.  [S4] */
    TimeNs smmuWalkNs = 105;
    /** Walk with hot upper levels (walk-cache hit), ns.  [S4] */
    TimeNs smmuWalkPwcNs = 22;
    /** STE + CD fetch on a config-cache miss (first walk after
     *  attach/CFGI), ns.  [S1][S4] */
    TimeNs smmuCdFetchNs = 140;
    /** Command-queue ring capacity, commands (2^CMDQS = 2^8; typical
     *  MMU-600 configuration and the Linux driver's default ring
     *  allocation).  [S1] */
    unsigned smmuCmdqDepth = 256;
    /** Event-queue ring capacity, fault records (2^EVTQS = 2^7).
     *  [S1] */
    unsigned smmuEvtqDepth = 128;

    // ---- ATS / PRI (page-faultable DMA, both backends) -------------
    // PCIe Address Translation Services let an endpoint cache
    // translations in its own device TLB (ATC) and — with the Page
    // Request Interface — recover from misses by faulting to the OS
    // and resuming.  The IOMMU side is VT-d's page-request queue and
    // SMMUv3's stall/CMD_RESUME model.
    /** Device-TLB (ATC) capacity, 4 KiB translations.  Endpoint ATCs
     *  are small (tens of entries on ConnectX-class NICs). */
    unsigned atsDevTlbEntries = 64;
    /** Device-TLB hit: the translation resolves inside the endpoint,
     *  no fabric round trip, ns. */
    TimeNs atsDevTlbHitNs = 5;
    /** ATS translation-request round trip over PCIe (miss path),
     *  excluding the IOMMU-side walk itself, ns.  Roughly one
     *  non-posted PCIe transaction. */
    TimeNs atsTranslateNs = 250;
    /** Device-TLB invalidation: the invalidation message to the
     *  endpoint plus its completion response, charged on top of the
     *  producer-side queue submission, ns. */
    TimeNs atsInvalidateNs = 520;
    /** Producing the page-request response (VT-d page_group_response
     *  descriptor / SMMUv3 CMD_RESUME), ns. */
    TimeNs priResponseNs = 150;
    /** OS page-fault service CPU per request (PRQ IRQ, mm locking,
     *  PTE install) excluding the page allocation itself, ns.
     *  Calibrated to the few-microsecond I/O-page-fault service
     *  latencies reported for virtual-address RDMA prototypes. */
    TimeNs priFaultServiceNs = 2400;
    /** Endpoint back-off before retrying a request that got a failure
     *  auto-response (queue overflow), ns. */
    TimeNs priRetryBackoffNs = 1200;
    /** VT-d page-request queue capacity, records (PRQ ring). */
    unsigned vtdPrqDepth = 32;
    /** SMMUv3 stalled-transaction capacity: how many faulting
     *  transactions can wait for CMD_RESUME, records. */
    unsigned smmuStallDepth = 32;

    // ---- NIC / PCIe / memory ceilings ------------------------------
    /** Per-port line rate, Gb/s (ConnectX-4). */
    double nicPortGbps = 100.0;
    /** Practical PCIe 3.0 x16 per-direction ceiling, Gb/s (the paper
     *  observes 106 Gb/s despite the 128 Gb/s spec). */
    double pcieGbps = 106.0;
    /** Aggregate memory bandwidth, B/ns (GB/s). */
    double memBwGBps = 80.0;
    /** Wire overhead per MTU frame (preamble/Ethernet/IP/TCP), bytes. */
    unsigned perFrameOverheadBytes = 90;
    /** MTU (jumbo frames), bytes. */
    unsigned mtuBytes = 9000;
    /** How long a port stays down after an injected link flap, ns.
     *  Real flaps are ms-scale; shortened (like nvmeTimeoutNs) so
     *  recovery is observable inside millisecond-scale runs. */
    TimeNs nicLinkFlapDownNs = 50 * kNsPerUs;

    // ---- Inter-machine link latencies (sharding lookahead) ---------
    // Minimum one-way latencies of the modeled physical links.  These
    // are *floors*, not averages: nothing crosses the link faster, so
    // they double as the conservative lookahead of cross-shard
    // channels in sim::ShardedEngine (DESIGN.md §15) — the larger the
    // floor, the wider the parallel window.
    /** One PCIe hop (root port -> endpoint posted write), ns. */
    TimeNs pcieHopNs = 150;
    /** NIC MAC/PCS + serialization onto the wire for a minimal frame,
     *  plus a few meters of fiber, one way, ns. */
    TimeNs nicWireLatencyNs = 450;
    /** Cut-through ToR switch forwarding latency, ns. */
    TimeNs torSwitchHopNs = 300;

    /** Minimum latency between two machines through the ToR: onto the
     *  wire, one switch hop, off the wire.  The cross-shard lookahead
     *  for machine-boundary partitions. */
    TimeNs
    interMachineLinkNs() const
    {
        return 2 * nicWireLatencyNs + torSwitchHopNs;
    }

    // ---- NVMe -------------------------------------------------------
    /** Device IOPS ceiling (Intel DC P3700 400G: ~900k read IOPS). */
    double nvmeMaxIops = 900e3;
    /** Device throughput ceiling, B/ns (~3.2 GiB/s). */
    double nvmeMaxBytesPerNs = 3.2 * 1.073741824;
    /** Kernel block-layer + driver CPU per IO (submit+complete), ns. */
    TimeNs nvmePerIoCpuNs = 1800;
    /** Command timeout before the driver retries a lost IO, ns.  Real
     *  NVMe timeouts are seconds; the model shortens the constant so
     *  retry behaviour is observable inside millisecond-scale runs. */
    TimeNs nvmeTimeoutNs = 50 * kNsPerUs;
    /** Bounded retries after a timed-out command before the error is
     *  surfaced to the submitter. */
    unsigned nvmeMaxRetries = 3;
};

} // namespace damn::sim

#endif // DAMN_SIM_COST_MODEL_HH
