/**
 * @file
 * Engine event loop: 4-ary heap maintenance and the batched dispatch
 * loop.
 */

#include "sim/engine.hh"

namespace damn::sim {

void
Engine::heapPush(HeapNode node)
{
    std::size_t i = heap_.size();
    heap_.push_back(node);
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
Engine::heapPop()
{
    const std::size_t n = heap_.size() - 1;
    heap_[0] = heap_[n];
    heap_.pop_back();
    if (n == 0)
        return;
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = first + kArity < n ? first + kArity : n;
        for (std::size_t c = first + 1; c < last; ++c)
            if (before(heap_[c], heap_[best]))
                best = c;
        if (!before(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

std::uint64_t
Engine::run(TimeNs until)
{
    std::uint64_t n = 0;
    // Batch buffer is local so a callback that re-enters run() (legal,
    // if unusual) cannot clobber an in-flight batch.
    std::vector<HeapNode> batch;
    while (!heap_.empty()) {
        if (heap_[0].when > until)
            break;
        // Pop every event sharing the minimal timestamp before running
        // any of them: one `until` comparison per timestamp, and events
        // a callback schedules at the same instant sort after the batch
        // (their seq is higher) so FIFO order is preserved.
        const TimeNs t = heap_[0].when;
        batch.clear();
        do {
            const HeapNode node = heap_[0];
            heapPop();
            // Stale node: its event was cancelled (slot freed, maybe
            // since reused under a different seq).  Skip silently —
            // cancel() already adjusted the live count.
            if (slots_[node.slot].seq == node.seq)
                batch.push_back(node);
        } while (!heap_.empty() && heap_[0].when == t);
        now_ = t;
        for (const HeapNode &node : batch) {
            Slot &s = slots_[node.slot];
            // A batch member may be cancelled by an earlier member's
            // callback; the slot check repeats at dispatch time.
            if (s.seq != node.seq)
                continue;
            SmallFn cb = std::move(s.cb);
            releaseSlot(node.slot);
            --live_;
            ++dispatched_;
            ++n;
            cb();
        }
        // Cheap when unarmed: one branch per batch.
        if (wdArmed_ && dispatched_ - wdLastCheck_ >= wdStride_ &&
            watchdogCheck())
            break;
    }
    return n;
}

bool
Engine::watchdogCheck()
{
    wdLastCheck_ = dispatched_;
    const std::uint64_t p = wdProgress_ ? wdProgress_() : dispatched_;
    if (p != wdLastProgress_) {
        wdLastProgress_ = p;
        wdDispatchedAtProgress_ = dispatched_;
        return false;
    }
    if (dispatched_ - wdDispatchedAtProgress_ < wdMax_)
        return false;
    ++stalls_;
    lastStall_ = StallInfo{now_, dispatched_, live_,
                           dispatched_ - wdDispatchedAtProgress_, p};
    // Re-baseline so a caller that chooses to continue running is not
    // re-tripped on the very next batch.
    wdDispatchedAtProgress_ = dispatched_;
    if (wdOnStall_)
        wdOnStall_(lastStall_);
    return true;
}

} // namespace damn::sim
