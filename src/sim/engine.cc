/**
 * @file
 * Engine event loop implementation.
 */

#include "sim/engine.hh"

namespace damn::sim {

std::uint64_t
Engine::run(TimeNs until)
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        if (queue_.top().when > until)
            break;
        // Moving out of a priority_queue requires const_cast; the element
        // is popped immediately afterwards so the heap order is unharmed.
        Event ev = std::move(const_cast<Event &>(queue_.top()));
        queue_.pop();
        auto it = cancelled_.find(ev.id);
        if (it != cancelled_.end()) {
            // cancel() already dropped this event from the live count.
            cancelled_.erase(it);
            continue;
        }
        --live_;
        now_ = ev.when;
        ++dispatched_;
        ++n;
        ev.cb();
    }
    return n;
}

} // namespace damn::sim
