/**
 * @file
 * Tracer implementation: bounded rings, name interning, the JSON
 * string escaper, and the Chrome trace-event exporter.
 */

#include "sim/tracer.hh"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace damn::sim {

const char *
traceCatName(TraceCat c)
{
    switch (c) {
      case TraceCat::Other:
        return "other";
      case TraceCat::DmaMap:
        return "dma.map";
      case TraceCat::DmaUnmap:
        return "dma.unmap";
      case TraceCat::IommuInval:
        return "iommu.inval";
      case TraceCat::Iotlb:
        return "iommu.iotlb";
      case TraceCat::NicRing:
        return "nic.ring";
      case TraceCat::NetDriver:
        return "net.driver";
      case TraceCat::NetStack:
        return "net.stack";
      case TraceCat::Copy:
        return "copy";
      case TraceCat::App:
        return "app";
      case TraceCat::Nvme:
        return "nvme";
      case TraceCat::Fault:
        return "fault";
      case TraceCat::kCount:
        break;
    }
    return "?";
}

void
Tracer::attach(Machine &machine)
{
    perCore_.resize(machine.numCores());
    machine.setBusyObserver(this);
}

void
Tracer::startRecording(std::size_t capacity)
{
    assert(capacity > 0);
    ringCapacity_ = capacity;
    recording_ = true;
    for (PerCore &pc : perCore_) {
        pc.ring.clear();
        pc.ring.reserve(capacity < 4096 ? capacity : 4096);
        pc.head = 0;
        pc.count = 0;
        pc.dropped = 0;
    }
}

std::uint32_t
Tracer::intern(std::string_view name)
{
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (names_[i] == name)
            return std::uint32_t(i);
    names_.emplace_back(name);
    return std::uint32_t(names_.size() - 1);
}

void
Tracer::append(CoreId core, const TraceEvent &ev)
{
    assert(core < perCore_.size());
    PerCore &pc = perCore_[core];
    if (pc.ring.size() < ringCapacity_) {
        pc.ring.push_back(ev);
        pc.head = pc.ring.size() % ringCapacity_;
        pc.count = pc.ring.size();
        return;
    }
    // Full: overwrite the oldest slot.
    pc.ring[pc.head] = ev;
    pc.head = (pc.head + 1) % ringCapacity_;
    pc.dropped += 1;
}

void
Tracer::span(CoreId core, TraceCat cat, std::string_view name,
             TimeNs t0, TimeNs t1, std::uint64_t bytes,
             std::uint64_t aux)
{
    if (!recording_)
        return;
    TraceEvent ev;
    ev.t0 = t0;
    ev.t1 = t1 > t0 ? t1 : t0;
    ev.seq = nextSeq_++;
    ev.bytes = bytes;
    ev.aux = aux;
    ev.nameId = intern(name);
    ev.core = core;
    ev.cat = cat;
    ev.instant = false;
    append(core, ev);
}

void
Tracer::instant(CoreId core, TraceCat cat, std::string_view name,
                TimeNs t, std::uint64_t bytes, std::uint64_t aux)
{
    totals_[idx(cat)].events += 1;
    if (bytes != 0)
        totals_[idx(cat)].bytes += bytes;
    if (!recording_)
        return;
    TraceEvent ev;
    ev.t0 = t;
    ev.t1 = t;
    ev.seq = nextSeq_++;
    ev.bytes = bytes;
    ev.aux = aux;
    ev.nameId = intern(name);
    ev.core = core;
    ev.cat = cat;
    ev.instant = true;
    append(core, ev);
}

void
Tracer::resetWindow()
{
    totals_ = {};
    for (PerCore &pc : perCore_) {
        pc.ring.clear();
        pc.head = 0;
        pc.count = 0;
        pc.dropped = 0;
    }
}

std::uint64_t
Tracer::droppedEvents() const
{
    std::uint64_t n = 0;
    for (const PerCore &pc : perCore_)
        n += pc.dropped;
    return n;
}

std::uint64_t
Tracer::bufferedEvents() const
{
    std::uint64_t n = 0;
    for (const PerCore &pc : perCore_)
        n += pc.count;
    return n;
}

TraceBundle
Tracer::bundle(const Machine &machine, double cpu_ghz) const
{
    TraceBundle b;
    b.totalBusyNs = machine.totalBusyNs();
    b.totalCycles = std::uint64_t(double(b.totalBusyNs) * cpu_ghz);
    for (std::size_t c = 0; c < kTraceCatCount; ++c) {
        const Totals &t = totals_[c];
        if (t.ns == 0 && t.bytes == 0 && t.events == 0)
            continue;
        TraceBundle::Category cat;
        cat.name = traceCatName(TraceCat(c));
        cat.ns = t.ns;
        cat.cycles = std::uint64_t(double(t.ns) * cpu_ghz);
        cat.bytes = t.bytes;
        cat.events = t.events;
        b.attributedNs += t.ns;
        b.categories.push_back(std::move(cat));
    }
    b.droppedEvents = droppedEvents();
    if (recording_) {
        b.names = names_;
        b.events.reserve(bufferedEvents());
        for (const PerCore &pc : perCore_)
            b.events.insert(b.events.end(), pc.ring.begin(),
                            pc.ring.end());
        std::sort(b.events.begin(), b.events.end(),
                  [](const TraceEvent &a, const TraceEvent &e) {
                      if (a.t0 != e.t0)
                          return a.t0 < e.t0;
                      return a.seq < e.seq;
                  });
    }
    return b;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
        const unsigned char u = static_cast<unsigned char>(ch);
        switch (ch) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (u < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", u);
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

namespace {

/** Virtual ns as a Chrome µs timestamp: fixed "<µs>.<3 digits>". */
void
appendTsUs(std::string &out, TimeNs ns)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    out += buf;
}

void
appendU64(std::string &out, std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

} // namespace

std::string
chromeTraceJson(const std::vector<TraceProcess> &procs)
{
    std::string out;
    out += "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t pid = 0; pid < procs.size(); ++pid) {
        const TraceProcess &proc = procs[pid];
        if (proc.bundle == nullptr)
            continue;
        const TraceBundle &b = *proc.bundle;

        if (!first)
            out += ',';
        first = false;
        out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
        appendU64(out, pid);
        out += ",\"tid\":0,\"args\":{\"name\":\"";
        out += jsonEscape(proc.name);
        out += "\"}}";

        for (const TraceEvent &ev : b.events) {
            const std::string_view name = ev.nameId < b.names.size()
                ? std::string_view(b.names[ev.nameId])
                : std::string_view("?");
            out += ",{\"name\":\"";
            out += jsonEscape(name);
            out += "\",\"cat\":\"";
            out += traceCatName(ev.cat);
            if (ev.instant) {
                out += "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
                appendTsUs(out, ev.t0);
            } else {
                out += "\",\"ph\":\"X\",\"ts\":";
                appendTsUs(out, ev.t0);
                out += ",\"dur\":";
                appendTsUs(out, ev.t1 - ev.t0);
            }
            out += ",\"pid\":";
            appendU64(out, pid);
            out += ",\"tid\":";
            appendU64(out, ev.core);
            if (ev.bytes != 0 || ev.aux != 0) {
                out += ",\"args\":{";
                if (ev.bytes != 0) {
                    out += "\"bytes\":";
                    appendU64(out, ev.bytes);
                }
                if (ev.aux != 0) {
                    if (ev.bytes != 0)
                        out += ',';
                    out += "\"aux\":";
                    appendU64(out, ev.aux);
                }
                out += '}';
            }
            out += '}';
        }
    }
    out += "],\"displayTimeUnit\":\"ns\"}";
    return out;
}

} // namespace damn::sim
