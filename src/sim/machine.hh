/**
 * @file
 * Simulated machine topology: cores, NUMA domains, busy-time accounting.
 *
 * Mirrors the paper's evaluation server: a dual-socket 28-core
 * (2 x 14) Xeon E5-2660 v4 at 2 GHz (Turbo Boost and hyperthreading
 * disabled), 4 DDR4-2400 DIMMs per socket.
 */

#ifndef DAMN_SIM_MACHINE_HH
#define DAMN_SIM_MACHINE_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace damn::sim {

/**
 * Observer of per-core busy-time bookings.  The Tracer implements
 * this to attribute every charged nanosecond to a cost category; the
 * hook sits inside Core::occupy so no charge site can bypass it.
 */
class BusyObserver
{
  public:
    virtual void onBusy(CoreId core, TimeNs booked) = 0;

  protected:
    ~BusyObserver() = default;
};

/**
 * One simulated CPU core.  Tracks the time up to which the core is
 * committed to already-charged work, plus cumulative busy time for
 * utilization reporting.
 */
class Core
{
  public:
    Core(CoreId id, NumaId numa) : id_(id), numa_(numa) {}

    CoreId id() const { return id_; }
    NumaId numa() const { return numa_; }

    /** Virtual time at which the core becomes free. */
    TimeNs freeAt() const { return freeAt_; }

    /**
     * Charge @p duration ns of work starting no earlier than @p start.
     * Work on one core serializes: if the core is still busy at
     * @p start, the new work begins when the previous work ends.
     *
     * @return the virtual time at which the charged work completes.
     */
    TimeNs
    charge(TimeNs start, TimeNs duration)
    {
        return occupy(start, duration, 1.0);
    }

    /**
     * Occupy the core for @p duration wall nanoseconds but book only
     * @p busy_fraction of it as busy time.  Models pause-loop waits
     * (spin-wait with cpu_relax) that OS accounting attributes only
     * partially to CPU consumption.
     */
    TimeNs
    occupy(TimeNs start, TimeNs duration, double busy_fraction)
    {
        const TimeNs begin = start > freeAt_ ? start : freeAt_;
        freeAt_ = begin + duration;
        const TimeNs booked = TimeNs(double(duration) * busy_fraction);
        busyNs_ += booked;
        if (observer_ != nullptr)
            observer_->onBusy(id_, booked);
        return freeAt_;
    }

    /** Install the busy-time observer (nullptr detaches). */
    void setBusyObserver(BusyObserver *obs) { observer_ = obs; }

    /** Cumulative busy nanoseconds since construction (or last reset). */
    TimeNs busyNs() const { return busyNs_; }

    /** Reset busy-time accounting (used between measurement windows). */
    void resetAccounting() { busyNs_ = 0; }

  private:
    CoreId id_;
    NumaId numa_;
    TimeNs freeAt_ = 0;
    TimeNs busyNs_ = 0;
    BusyObserver *observer_ = nullptr;
};

/**
 * Machine topology: @p sockets NUMA domains with @p cores_per_socket
 * cores each.  Core ids interleave across sockets the way Linux
 * enumerates them on this platform (even ids socket 0, odd ids socket 1),
 * which matters when experiments pin work "divided equally between the
 * two CPUs".
 */
class Machine
{
  public:
    Machine(unsigned sockets = 2, unsigned cores_per_socket = 14)
        : sockets_(sockets)
    {
        const unsigned n = sockets * cores_per_socket;
        cores_.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            cores_.emplace_back(CoreId{i}, NumaId{i % sockets});
    }

    unsigned numCores() const { return unsigned(cores_.size()); }
    unsigned numSockets() const { return sockets_; }

    Core &core(CoreId id) { assert(id < cores_.size()); return cores_[id]; }
    const Core &
    core(CoreId id) const
    {
        assert(id < cores_.size());
        return cores_[id];
    }

    /** NUMA domain of a core. */
    NumaId numaOf(CoreId id) const { return core(id).numa(); }

    /** Sum of busy time across all cores. */
    TimeNs
    totalBusyNs() const
    {
        TimeNs t = 0;
        for (const auto &c : cores_)
            t += c.busyNs();
        return t;
    }

    /**
     * Machine-wide CPU utilization over a window of @p window ns,
     * in percent; 100% means all cores fully busy (paper convention:
     * one fully-busy core out of 28 reports as 3.57%).
     */
    double
    utilizationPct(TimeNs window) const
    {
        if (window == 0)
            return 0.0;
        return 100.0 * double(totalBusyNs()) /
            (double(window) * numCores());
    }

    /** Utilization of a single core over @p window ns, in percent. */
    double
    coreUtilizationPct(CoreId id, TimeNs window) const
    {
        if (window == 0)
            return 0.0;
        return 100.0 * double(core(id).busyNs()) / double(window);
    }

    void
    resetAccounting()
    {
        for (auto &c : cores_)
            c.resetAccounting();
    }

    /** Install @p obs as every core's busy-time observer. */
    void
    setBusyObserver(BusyObserver *obs)
    {
        for (auto &c : cores_)
            c.setBusyObserver(obs);
    }

  private:
    unsigned sockets_;
    std::vector<Core> cores_;
};

} // namespace damn::sim

#endif // DAMN_SIM_MACHINE_HH
