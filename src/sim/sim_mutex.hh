/**
 * @file
 * Virtual-time lock and serial-resource models.
 *
 * SimMutex models a spinlock in virtual time: an acquirer at time t is
 * granted the lock at max(t, time the previous holder releases), and the
 * wait is charged to the acquiring core as spin (busy) time.  This is
 * how the contended IOTLB invalidation-queue lock of the *strict*
 * protection scheme is reproduced (paper section 4.1 / figure 5).
 */

#ifndef DAMN_SIM_SIM_MUTEX_HH
#define DAMN_SIM_SIM_MUTEX_HH

#include <cstdint>

#include "sim/machine.hh"
#include "sim/types.hh"

namespace damn::sim {

/**
 * A lock that serializes critical sections in virtual time.
 *
 * Usage: @c acquireAndHold(core, now, hold) models "spin until granted,
 * then hold the lock for @p hold ns doing work"; both the spin and the
 * hold are charged to the core, and the function returns the release
 * time.
 */
class SimMutex
{
  public:
    /**
     * Acquire at virtual time @p now, hold for @p hold_ns, release.
     *
     * @param core   core doing the acquiring; spin + hold time are
     *               charged to it.
     * @param now    virtual time of the acquisition attempt.
     * @param hold_ns critical-section length.
     * @return time the lock is released (== caller's completion time).
     */
    /** Sentinel: derive the queue position from @p now. */
    static constexpr TimeNs kArrivalIsNow = ~TimeNs{0};

    /**
     * @param arrival  position in the lock's FIFO.  Callers inside a
     * discrete event should pass the *event* time here when @p now is
     * a core-cursor time that may run ahead of the engine clock —
     * otherwise one backlogged core drags the lock's free time into
     * the future and every other acquirer spins on phantom contention.
     */
    TimeNs
    acquireAndHold(Core &core, TimeNs now, TimeNs hold_ns,
                   double spin_busy_fraction = 1.0,
                   TimeNs arrival = kArrivalIsNow)
    {
        if (arrival == kArrivalIsNow)
            arrival = now;
        const TimeNs grant = arrival > freeAt_ ? arrival : freeAt_;
        freeAt_ = grant + hold_ns;
        // The requester starts no earlier than its own 'now'.
        const TimeNs start = grant > now ? grant : now;
        const TimeNs spin = start - now;
        core.occupy(now, spin, spin_busy_fraction);
        const TimeNs done = core.charge(now + spin, hold_ns);
        totalSpinNs_ += spin;
        maxSpinNs_ = spin > maxSpinNs_ ? spin : maxSpinNs_;
        ++acquisitions_;
        return done;
    }

    /** Cumulative spin time burned by all acquirers. */
    TimeNs totalSpinNs() const { return totalSpinNs_; }
    /** Longest single spin. */
    TimeNs maxSpinNs() const { return maxSpinNs_; }
    /** Number of acquisitions. */
    std::uint64_t acquisitions() const { return acquisitions_; }
    /** Time the lock becomes free. */
    TimeNs freeAt() const { return freeAt_; }

    void
    resetAccounting()
    {
        totalSpinNs_ = 0;
        maxSpinNs_ = 0;
        acquisitions_ = 0;
    }

  private:
    TimeNs freeAt_ = 0;
    TimeNs totalSpinNs_ = 0;
    TimeNs maxSpinNs_ = 0;
    std::uint64_t acquisitions_ = 0;
};

/**
 * A serial hardware resource (e.g., the IOMMU invalidation engine):
 * requests queue FIFO and are serviced one at a time, but the requester
 * does not necessarily spin (asynchronous submissions just take a slot).
 */
class SerialResource
{
  public:
    /**
     * Enqueue a request of @p service_ns at time @p now.
     * @return completion time of this request.
     */
    TimeNs
    submit(TimeNs now, TimeNs service_ns)
    {
        const TimeNs begin = now > freeAt_ ? now : freeAt_;
        freeAt_ = begin + service_ns;
        busyNs_ += service_ns;
        ++requests_;
        return freeAt_;
    }

    TimeNs freeAt() const { return freeAt_; }
    TimeNs busyNs() const { return busyNs_; }
    std::uint64_t requests() const { return requests_; }

    void
    resetAccounting()
    {
        busyNs_ = 0;
        requests_ = 0;
    }

  private:
    TimeNs freeAt_ = 0;
    TimeNs busyNs_ = 0;
    std::uint64_t requests_ = 0;
};

} // namespace damn::sim

#endif // DAMN_SIM_SIM_MUTEX_HH
