/**
 * @file
 * Log-bucketed latency histogram for virtual-time measurements.
 *
 * Streams record per-segment end-to-end latencies here; benches can
 * then report p50/p95/p99 alongside throughput — the strict scheme's
 * invalidation-lock queueing shows up as a fat tail long before it
 * caps throughput.
 */

#ifndef DAMN_SIM_HISTOGRAM_HH
#define DAMN_SIM_HISTOGRAM_HH

#include <array>
#include <cstdint>

#include "sim/types.hh"

namespace damn::sim {

/**
 * Histogram over [1 ns, ~18e18 ns) with 4 sub-buckets per octave
 * (~19% relative resolution), fixed memory, O(1) record.
 */
class LatencyHistogram
{
  public:
    static constexpr unsigned kSubBuckets = 4;
    static constexpr unsigned kBuckets = 64 * kSubBuckets;

    /** Record one sample. */
    void
    record(TimeNs v)
    {
        ++counts_[bucketOf(v)];
        ++n_;
        sum_ += v;
        if (v > max_)
            max_ = v;
        if (n_ == 1 || v < min_)
            min_ = v;
    }

    std::uint64_t count() const { return n_; }
    TimeNs minNs() const { return n_ ? min_ : 0; }
    TimeNs maxNs() const { return max_; }

    double
    meanNs() const
    {
        return n_ == 0 ? 0.0 : double(sum_) / double(n_);
    }

    /** Value at quantile @p q in [0, 1] (bucket upper bound). */
    TimeNs
    quantile(double q) const
    {
        if (n_ == 0)
            return 0;
        const auto target = std::uint64_t(q * double(n_ - 1)) + 1;
        std::uint64_t seen = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            seen += counts_[b];
            if (seen >= target)
                return bucketUpper(b);
        }
        return max_;
    }

    TimeNs p50() const { return quantile(0.50); }
    TimeNs p95() const { return quantile(0.95); }
    TimeNs p99() const { return quantile(0.99); }

    void
    reset()
    {
        counts_.fill(0);
        n_ = 0;
        sum_ = 0;
        max_ = 0;
        min_ = 0;
    }

  private:
    static unsigned
    bucketOf(TimeNs v)
    {
        if (v < 2)
            return 0;
        const unsigned octave = 63 - unsigned(__builtin_clzll(v));
        const unsigned sub = unsigned(
            (v >> (octave > 2 ? octave - 2 : 0)) & (kSubBuckets - 1));
        const unsigned idx = octave * kSubBuckets + sub;
        return idx < kBuckets ? idx : kBuckets - 1;
    }

    static TimeNs
    bucketUpper(unsigned b)
    {
        const unsigned octave = b / kSubBuckets;
        const unsigned sub = b % kSubBuckets;
        if (octave < 2)
            return TimeNs(1) << (octave + 1);
        const TimeNs base = TimeNs(1) << octave;
        return base + (base >> 2) * (sub + 1);
    }

    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t n_ = 0;
    std::uint64_t sum_ = 0;
    TimeNs max_ = 0;
    TimeNs min_ = 0;
};

} // namespace damn::sim

#endif // DAMN_SIM_HISTOGRAM_HH
