/**
 * @file
 * Cursor tying a sequence of kernel operations to a core in virtual time.
 *
 * Kernel code paths in the simulation are plain C++ functions; they
 * receive a CpuCursor identifying *which simulated core* executes them
 * and *when*.  Each charge() advances the cursor and books busy time on
 * the core.
 */

#ifndef DAMN_SIM_CPU_CURSOR_HH
#define DAMN_SIM_CPU_CURSOR_HH

#include "sim/machine.hh"
#include "sim/types.hh"

namespace damn::sim {

/** A (core, time) execution point for charging kernel work. */
struct CpuCursor
{
    CpuCursor(Core &c, TimeNs t) : core(&c), time(t) {}

    Core *core;
    TimeNs time;

    /** Execute @p dur ns of work on this core; advances the cursor. */
    void
    charge(TimeNs dur)
    {
        time = core->charge(time, dur);
    }

    /**
     * Wait (without burning CPU) until @p until, e.g. for an async
     * completion.  No busy time is charged.
     */
    void
    waitUntil(TimeNs until)
    {
        if (until > time)
            time = until;
    }

    CoreId id() const { return core->id(); }
    NumaId numa() const { return core->numa(); }
};

} // namespace damn::sim

#endif // DAMN_SIM_CPU_CURSOR_HH
