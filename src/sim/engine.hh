/**
 * @file
 * Discrete-event simulation engine with virtual nanosecond time.
 *
 * The engine is intentionally single-threaded and deterministic: events
 * scheduled at the same virtual time fire in scheduling order.  All
 * "concurrency" in the simulated machine (28 cores, devices, interrupt
 * handlers) is expressed as interleaved events over virtual time.
 */

#ifndef DAMN_SIM_ENGINE_HH
#define DAMN_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace damn::sim {

/**
 * Event-driven simulation core.  Owns the virtual clock and an ordered
 * queue of callbacks.
 */
class Engine
{
  public:
    using Callback = std::function<void()>;

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current virtual time. */
    TimeNs now() const { return now_; }

    /**
     * Schedule a callback at absolute virtual time @p when.
     * Scheduling in the past clamps to now().
     * @return a handle usable with cancel().
     */
    std::uint64_t
    schedule(TimeNs when, Callback cb)
    {
        if (when < now_)
            when = now_;
        const std::uint64_t id = nextId_++;
        queue_.push(Event{when, id, std::move(cb)});
        ++live_;
        return id;
    }

    /** Schedule a callback @p delay ns from now. */
    std::uint64_t
    scheduleIn(TimeNs delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.  Cancellation is lazy: the
     * event stays in the queue but is skipped when popped.
     * @return true if the handle was live.
     */
    bool
    cancel(std::uint64_t id)
    {
        const bool fresh = cancelled_.insert(id).second;
        if (fresh)
            --live_;
        return fresh;
    }

    /**
     * Run until the queue drains or virtual time would exceed @p until.
     * Events at exactly @p until still fire.
     * @return number of events dispatched.
     */
    std::uint64_t run(TimeNs until);

    /** Run until the event queue is empty. */
    std::uint64_t runAll() { return run(~TimeNs{0}); }

    /** Number of not-yet-dispatched (and not cancelled) events. */
    std::uint64_t pending() const { return live_; }

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Event
    {
        TimeNs when;
        std::uint64_t id; // tie-breaker => FIFO among same-time events
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    TimeNs now_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t live_ = 0;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    // Lazily-cancelled event ids; kept small because entries are erased
    // when the matching event is popped.
    std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace damn::sim

#endif // DAMN_SIM_ENGINE_HH
