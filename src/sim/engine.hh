/**
 * @file
 * Discrete-event simulation engine with virtual nanosecond time.
 *
 * The engine is intentionally single-threaded and deterministic: events
 * scheduled at the same virtual time fire in scheduling order.  All
 * "concurrency" in the simulated machine (28 cores, devices, interrupt
 * handlers) is expressed as interleaved events over virtual time.
 * Many engines can coexist in one process (one per worker thread in a
 * `damn_bench --jobs` sweep); an Engine never touches shared state.
 *
 * Internals are built for dispatch rate, the simulator's wall-clock
 * bottleneck:
 *
 *  - the ready queue is a flat 4-ary heap of 24-byte nodes
 *    (when/seq/slot) — shallower than a binary heap and sift paths
 *    touch four children per cache line instead of two per two;
 *  - callbacks live in a slab of generation-tagged slots as SmallFn
 *    values (48-byte inline buffer, see sim/small_fn.hh), so
 *    schedule() and dispatch are allocation-free for every callback
 *    in tree;
 *  - cancel() is O(1) and allocation-free: it frees the slot and bumps
 *    its generation, leaving a stale heap node that is recognized (by
 *    sequence mismatch) and skipped when it surfaces — no
 *    unordered_set, no per-pop hash lookup;
 *  - events sharing the minimal timestamp are popped as one batch
 *    before any of them runs, so the per-event loop does one heap
 *    operation and no repeated `until` comparisons.
 *
 * Handles returned by schedule() encode (slot, generation); a handle
 * whose event already dispatched or was already cancelled is simply
 * stale — cancel() returns false and corrupts no bookkeeping, and
 * pending() is exact at all times.
 */

#ifndef DAMN_SIM_ENGINE_HH
#define DAMN_SIM_ENGINE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace damn::sim {

/** Diagnostic snapshot captured when the stall watchdog trips. */
struct StallInfo
{
    TimeNs now = 0;                      //!< virtual time of the stall
    std::uint64_t dispatched = 0;        //!< lifetime dispatch count
    std::uint64_t pending = 0;           //!< events still queued
    std::uint64_t eventsSinceProgress = 0;
    std::uint64_t progressValue = 0;     //!< last probe reading
};

/**
 * Event-driven simulation core.  Owns the virtual clock and an ordered
 * queue of callbacks.
 */
class Engine
{
  public:
    using Callback = SmallFn;

    Engine() = default;
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    /** Current virtual time. */
    TimeNs now() const { return now_; }

    /**
     * Schedule a callback at absolute virtual time @p when.
     * Scheduling in the past clamps to now().
     * @return a handle usable with cancel().
     */
    std::uint64_t
    schedule(TimeNs when, Callback cb)
    {
        if (when < now_)
            when = now_;
        const std::uint32_t slot = acquireSlot();
        Slot &s = slots_[slot];
        s.cb = std::move(cb);
        s.seq = nextSeq_++;
        heapPush(HeapNode{when, s.seq, slot});
        ++live_;
        return handleOf(slot, s.gen);
    }

    /** Schedule a callback @p delay ns from now. */
    std::uint64_t
    scheduleIn(TimeNs delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event: O(1), allocation-free.  The
     * callback is destroyed immediately; its heap node stays behind
     * and is skipped (by generation/sequence mismatch) when popped.
     * @return true if the handle was live; false for handles whose
     * event already dispatched or was already cancelled (stale handles
     * are recognized exactly — they never perturb bookkeeping).
     */
    bool
    cancel(std::uint64_t id)
    {
        const std::uint32_t slot = slotOf(id);
        if (slot >= slots_.size())
            return false;
        Slot &s = slots_[slot];
        if (s.gen != genOf(id) || s.seq == 0)
            return false;
        releaseSlot(slot);
        --live_;
        return true;
    }

    /**
     * Run until the queue drains or virtual time would exceed @p until.
     * Events at exactly @p until still fire.
     * @return number of events dispatched.
     */
    std::uint64_t run(TimeNs until);

    /** Run until the event queue is empty. */
    std::uint64_t runAll() { return run(~TimeNs{0}); }

    /**
     * Timestamp of the earliest live event, or kTimeNever when the
     * queue is empty.  Prunes stale (cancelled) heap heads as a side
     * effect so the answer is exact; never advances the clock or
     * dispatches anything.  This is the peek primitive the sharded
     * engine's lower-bound-on-timestamp computation is built on.
     */
    TimeNs
    nextEventTime()
    {
        while (!heap_.empty()) {
            if (slots_[heap_[0].slot].seq == heap_[0].seq)
                return heap_[0].when;
            heapPop();
        }
        return kTimeNever;
    }

    /** Number of not-yet-dispatched (and not cancelled) events. */
    std::uint64_t pending() const { return live_; }

    /** Total events dispatched over the engine's lifetime. */
    std::uint64_t dispatched() const { return dispatched_; }

    // ---- Stall watchdog ---------------------------------------------
    //
    // Livelock/deadlock detector for pressure scenarios: retry loops
    // that keep the queue busy without the workload advancing would
    // otherwise spin run() forever.  Progress is measured by a caller
    // probe (e.g. a completed-segments counter); if it stays flat for
    // @p max_events_without_progress dispatches, run() records a
    // StallInfo diagnostic, invokes the optional callback, and returns
    // instead of hanging.  Dispatch-count based, hence deterministic.

    /**
     * Arm (or re-arm) the watchdog.  @p progress is polled every few
     * dispatches; any change of its value counts as forward progress.
     * A null @p progress treats every dispatch as progress (watchdog
     * effectively only trips on a zero-progress probe — pass one).
     */
    void
    armWatchdog(std::uint64_t max_events_without_progress,
                std::function<std::uint64_t()> progress,
                std::function<void(const StallInfo &)> on_stall = {})
    {
        wdArmed_ = true;
        wdMax_ = max_events_without_progress
                     ? max_events_without_progress
                     : 1;
        wdProgress_ = std::move(progress);
        wdOnStall_ = std::move(on_stall);
        wdStride_ = wdMax_ / 2 < 1024 ? (wdMax_ / 2 ? wdMax_ / 2 : 1)
                                      : 1024;
        wdLastProgress_ = wdProgress_ ? wdProgress_() : 0;
        wdDispatchedAtProgress_ = dispatched_;
        wdLastCheck_ = dispatched_;
    }

    void disarmWatchdog() { wdArmed_ = false; }

    /** Stalls detected over the engine's lifetime. */
    std::uint64_t stallsDetected() const { return stalls_; }

    /** Diagnostics of the most recent stall (valid when > 0 stalls). */
    const StallInfo &lastStall() const { return lastStall_; }

  private:
    /** One ready-queue entry; `seq` both orders same-time events FIFO
     *  and detects stale nodes whose slot was cancelled or reused. */
    struct HeapNode
    {
        TimeNs when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** Callback storage cell.  seq == 0 means free (on the freelist);
     *  gen counts reuses so stale handles/nodes are recognized. */
    struct Slot
    {
        SmallFn cb;
        std::uint64_t seq = 0;
        std::uint32_t gen = 0;
        std::uint32_t nextFree = kNoSlot;
    };

    static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};

    static std::uint64_t
    handleOf(std::uint32_t slot, std::uint32_t gen)
    {
        return (std::uint64_t(gen) << 32) | slot;
    }
    static std::uint32_t slotOf(std::uint64_t id)
    {
        return std::uint32_t(id);
    }
    static std::uint32_t genOf(std::uint64_t id)
    {
        return std::uint32_t(id >> 32);
    }

    std::uint32_t
    acquireSlot()
    {
        if (freeHead_ != kNoSlot) {
            const std::uint32_t slot = freeHead_;
            freeHead_ = slots_[slot].nextFree;
            return slot;
        }
        slots_.emplace_back();
        return std::uint32_t(slots_.size() - 1);
    }

    void
    releaseSlot(std::uint32_t slot)
    {
        Slot &s = slots_[slot];
        s.cb.reset();
        s.seq = 0;
        ++s.gen;
        s.nextFree = freeHead_;
        freeHead_ = slot;
    }

    /** Earlier-fires-first: (when, seq) lexicographic. */
    static bool
    before(const HeapNode &a, const HeapNode &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void heapPush(HeapNode node);
    void heapPop();

    static constexpr unsigned kArity = 4;

    /** Watchdog check inside run(); true = stall, abandon the loop. */
    bool watchdogCheck();

    TimeNs now_ = 0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t live_ = 0;
    std::uint64_t dispatched_ = 0;
    std::vector<HeapNode> heap_;
    std::vector<Slot> slots_;
    std::uint32_t freeHead_ = kNoSlot;

    // Stall-watchdog state.
    bool wdArmed_ = false;
    std::uint64_t wdMax_ = 0;
    std::uint64_t wdStride_ = 1024;
    std::uint64_t wdLastProgress_ = 0;
    std::uint64_t wdDispatchedAtProgress_ = 0;
    std::uint64_t wdLastCheck_ = 0;
    std::uint64_t stalls_ = 0;
    StallInfo lastStall_{};
    std::function<std::uint64_t()> wdProgress_;
    std::function<void(const StallInfo &)> wdOnStall_;
};

} // namespace damn::sim

#endif // DAMN_SIM_ENGINE_HH
