/**
 * @file
 * Conservative-lookahead sharded simulation: many `sim::Engine`
 * instances advancing in parallel, byte-identical to serial.
 *
 * A ShardedEngine coordinates two kinds of work units:
 *
 *  - **Shards** bind an existing Engine (typically one `sim::Context`
 *    / `net::System` partition: a NUMA node, a device, or a client
 *    machine) and are connected by timestamped **channels**.  A
 *    channel carries callbacks from its source shard to its
 *    destination shard with a fixed minimum latency — the *lookahead*,
 *    derived from the modeled link (PCIe hop, NIC wire, switch hop;
 *    see sim/cost_model.hh).  Execution proceeds in conservative
 *    windows (classic Chandy–Misra–Bryant null-message reasoning, in
 *    its barrier-synchronized LBTS form): each round computes, per
 *    shard, a lower bound on the timestamp of any message that could
 *    still arrive, lets every shard dispatch freely *below* that
 *    bound, then delivers the messages produced by the round.
 *
 *  - **Tasks** are fully independent closures (no channels, infinite
 *    lookahead): the degenerate-but-common partition where one run
 *    sweeps isolated configuration cells.  They are claimed atomically
 *    and any number can execute concurrently.
 *
 * Determinism contract (the point of the design): for a fixed input,
 * the outcome — every shard engine's dispatch order, every stat,
 * every trace — is **byte-identical at any worker count**, because
 *
 *  1. a shard's window is executed by exactly one worker, and the
 *     window bounds are pure functions of queue state, not timing;
 *  2. cross-shard sends only buffer into the (source-confined) channel
 *     outbox during a round and are delivered *between* rounds in a
 *     fixed global order: channel-creation order, then per-channel
 *     send order — so destination-engine sequence numbers (the
 *     same-timestamp FIFO tie-break) never depend on scheduling;
 *  3. tasks execute with no shared state and their results are
 *     consumed by the caller in task order.
 *
 * Zero-lookahead edges are legal and degrade gracefully: rounds
 * become lock-steps over one timestamp, and a same-timestamp message
 * is scheduled *after* the destination's pre-existing events at that
 * instant (higher sequence number) — exactly the order a serial
 * engine would produce.
 *
 * Senders can widen windows beyond the raw link lookahead with
 * promiseNoSendBefore(): a contract that the channel stays quiet
 * until a given virtual time (e.g. a periodic telemetry source
 * promises silence until its next tick).  This is the null message of
 * the classic algorithm, expressed as state instead of traffic.
 */

#ifndef DAMN_SIM_SHARD_HH
#define DAMN_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/engine.hh"
#include "sim/types.hh"

namespace damn::sim {

/** A stall report from one shard's engine watchdog. */
struct ShardStall
{
    unsigned shard = 0;    //!< shard id (addShard order)
    std::string name;      //!< shard name
    StallInfo info;        //!< the engine-level diagnostic
};

/** Aggregate counters of the most recent run(). */
struct ShardRunStats
{
    std::uint64_t rounds = 0;         //!< conservative windows executed
    std::uint64_t lockstepRounds = 0; //!< rounds pinned to one timestamp
    std::uint64_t messages = 0;       //!< cross-shard callbacks delivered
    std::uint64_t dispatched = 0;     //!< events dispatched across shards
    std::uint64_t tasksRun = 0;       //!< isolated tasks executed
};

/**
 * Coordinator for conservative parallel discrete-event simulation.
 *
 * Thread-confinement rules callers must follow:
 *  - shard callbacks may touch only their own shard's state, and may
 *    call send()/promiseNoSendBefore() only on channels whose source
 *    is the executing shard;
 *  - tasks may touch only their own captured state;
 *  - the watchdog progress probe for shard `s` is invoked on the
 *    worker currently running `s` and must read only `s`-local state.
 * `verify-tsan` audits these rules for everything routed through the
 * bench driver.
 */
class ShardedEngine
{
  public:
    ShardedEngine() = default;
    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    /**
     * Bind @p eng as a new shard.  The engine is not owned; it must
     * outlive the ShardedEngine and must not be run()/scheduled by
     * anyone else while a sharded run is in flight.
     * @return the shard id (dense, addShard order).
     */
    unsigned
    addShard(std::string name, Engine &eng)
    {
        shards_.push_back(Shard{std::move(name), &eng, 0, {}});
        return unsigned(shards_.size() - 1);
    }

    /**
     * Register an isolated work unit: no engine, no channels, runs
     * exactly once during the next run()/runAll() (concurrently with
     * other tasks when workers allow).  Exceptions propagate: after
     * all tasks finish, the first failure in task order is rethrown.
     */
    unsigned
    addTask(std::string name, std::function<void()> fn)
    {
        tasks_.push_back(Task{std::move(name), std::move(fn), nullptr});
        return unsigned(tasks_.size() - 1);
    }

    /**
     * Create a directed channel src → dst with the given lookahead: a
     * callback sent at source-virtual-time t executes on the
     * destination engine at t + lookaheadNs.  Use the minimum modeled
     * latency of the physical link the channel represents — larger
     * lookahead means wider windows and fewer barriers.
     * @return the channel id (creation order = delivery order).
     */
    unsigned
    connect(unsigned src, unsigned dst, TimeNs lookaheadNs)
    {
        channels_.push_back(Channel{src, dst, lookaheadNs, 0, {}});
        if (lookaheadNs < minLookahead_)
            minLookahead_ = lookaheadNs;
        return unsigned(channels_.size() - 1);
    }

    /** The engine bound to shard @p s. */
    Engine &engine(unsigned s) { return *shards_[s].eng; }

    const std::string &shardName(unsigned s) const
    {
        return shards_[s].name;
    }

    unsigned shardCount() const { return unsigned(shards_.size()); }

    /** Minimum lookahead over all channels (kTimeNever when there are
     *  no channels — every shard is independent). */
    TimeNs minLookaheadNs() const { return minLookahead_; }

    /**
     * Send a callback over @p channel.  Must be called from the source
     * shard's executing context (or before run() starts, at source
     * virtual time 0).  The callback is delivered to the destination
     * engine at source-now + lookahead, after the current round — at
     * equal timestamps it dispatches after the destination's
     * pre-existing events, matching serial engine FIFO order.
     */
    void send(unsigned channel, Engine::Callback cb);

    /**
     * Promise that no further send() will happen on @p channel before
     * source virtual time @p when (sends at exactly @p when are
     * allowed).  Widens every window bound that the channel
     * constrains; violated promises trip an assert.  A new send
     * implicitly re-promises nothing — call again after each send for
     * periodic sources.
     */
    void promiseNoSendBefore(unsigned channel, TimeNs when);

    /**
     * Run tasks, then advance every shard to @p until (events at
     * exactly @p until still fire) using @p workers threads.
     * workers == 1 executes the identical window/delivery algorithm
     * inline — the parallel path is byte-identical to it by
     * construction.  @return events dispatched across all shards.
     */
    std::uint64_t run(TimeNs until, unsigned workers);

    /** run() until every shard's queue drains. */
    std::uint64_t
    runAll(unsigned workers)
    {
        return run(kTimeNever, workers);
    }

    // ---- Per-shard stall watchdog -----------------------------------

    /**
     * Arm the stall watchdog on every shard engine for subsequent
     * runs.  @p progress is polled with the shard id on the worker
     * running that shard; a flat reading for
     * @p max_events_without_progress dispatches trips a ShardStall,
     * invokes @p on_stall (serialized), and aborts the whole run at
     * the next round boundary.  Dispatch-count based, hence
     * deterministic at any worker count.
     */
    void
    armWatchdog(std::uint64_t max_events_without_progress,
                std::function<std::uint64_t(unsigned)> progress,
                std::function<void(const ShardStall &)> on_stall = {})
    {
        wdArmed_ = true;
        wdMax_ = max_events_without_progress;
        wdProgress_ = std::move(progress);
        wdOnStall_ = std::move(on_stall);
    }

    /** Stall reports of the most recent run, in shard order. */
    const std::vector<ShardStall> &stalls() const { return stallLog_; }

    std::uint64_t stallsDetected() const { return stallLog_.size(); }

    /** Counters of the most recent run(). */
    const ShardRunStats &lastRunStats() const { return stats_; }

  private:
    struct Msg
    {
        TimeNs arrival;
        Engine::Callback cb;
    };

    struct Channel
    {
        unsigned src;
        unsigned dst;
        TimeNs lookahead;
        /** promiseNoSendBefore() bound (absolute virtual time). */
        TimeNs promise;
        /** Round-local buffer; source-confined during execution,
         *  drained by the coordinator between rounds. */
        std::vector<Msg> outbox;
    };

    struct Shard
    {
        std::string name;
        Engine *eng;
        std::uint64_t dispatched;  //!< this run, via windows
        std::exception_ptr error;
    };

    struct Task
    {
        std::string name;
        std::function<void()> fn;
        std::exception_ptr error;
    };

    /** One round's marching orders (computed by the coordinator). */
    struct Plan
    {
        bool done = false;
        bool lockstep = false;
        /** Per shard: dispatch events with when <= horizonEnd[s]. */
        std::vector<TimeNs> horizonEnd;
    };

    void deliverOutboxes();
    void computePlan(TimeNs until, Plan *plan);
    void runShardWindow(unsigned s, const Plan &plan);
    void runTask(unsigned t);
    void armShardWatchdogs();
    void recordStall(unsigned s, const StallInfo &info);
    void runSerial(TimeNs until);
    void runParallel(TimeNs until, unsigned workers);
    void rethrowFirstError();

    std::vector<Shard> shards_;
    std::vector<Channel> channels_;
    std::vector<Task> tasks_;
    TimeNs minLookahead_ = kTimeNever;

    // Per-run coordination state.
    Plan plan_;
    std::vector<TimeNs> activity_;  //!< EA relaxation scratch
    std::atomic<bool> abort_{false};
    std::atomic<std::size_t> taskNext_{0};
    std::atomic<std::size_t> shardNext_{0};
    ShardRunStats stats_;

    // Watchdog state.
    bool wdArmed_ = false;
    std::uint64_t wdMax_ = 0;
    std::function<std::uint64_t(unsigned)> wdProgress_;
    std::function<void(const ShardStall &)> wdOnStall_;
    std::mutex stallMu_;
    std::vector<ShardStall> stallLog_;
};

} // namespace damn::sim

#endif // DAMN_SIM_SHARD_HH
