/**
 * @file
 * Deterministic virtual-time event tracing and cost attribution.
 *
 * Two independent facilities behind one object, both owned by the
 * simulation Context:
 *
 *  - *Cost attribution* (always on): every nanosecond booked on any
 *    core lands in exactly one category — whichever TraceSpan is
 *    innermost on that core when the charge happens, or "other" when
 *    none is.  Attribution therefore accounts for 100% of the machine's
 *    busy time by construction; instrumentation only decides how
 *    informative the split is.  The hook is the Core busy-time
 *    observer (see sim/machine.hh), so no charge site can escape it.
 *
 *  - *Event recording* (off by default): when recording, spans and
 *    instants additionally append typed events to a bounded per-core
 *    ring buffer (oldest events overwritten, drops counted).  The
 *    exporter merges the rings into Chrome trace-event JSON.
 *
 * Determinism rules: events carry virtual times and a global sequence
 * number assigned in (single-threaded) execution order; names are
 * interned in first-use order; export sorts by (start time, sequence).
 * Nothing reads wall-clock time, so two same-seed runs serialize to
 * byte-identical output.
 *
 * Cost rules: recording never charges virtual CPU time — a traced run
 * and an untraced run book identical busy time and produce identical
 * metrics.  When recording is off the per-event wall-clock cost is a
 * category push/pop and one array add per charge.
 */

#ifndef DAMN_SIM_TRACER_HH
#define DAMN_SIM_TRACER_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/cpu_cursor.hh"
#include "sim/machine.hh"
#include "sim/types.hh"

namespace damn::sim {

class CostModel;

/**
 * Cost-attribution categories: the layers the paper's overhead
 * analysis argues about.  One enum for spans and attribution keeps the
 * trace and the table consistent.
 */
enum class TraceCat : std::uint8_t
{
    Other = 0,   //!< busy time charged outside any span
    DmaMap,      //!< DmaApi::map (IOVA alloc + PTE writes + bookkeeping)
    DmaUnmap,    //!< DmaApi::unmap / unmapBatch (PTE clears, recycling)
    IommuInval,  //!< IOTLB invalidation (sync or batched flush)
    Iotlb,       //!< IOTLB lookup outcomes (device-side, no CPU time)
    NicRing,     //!< NIC descriptor post/complete
    NetDriver,   //!< driver buffer management (alloc, skb build, TX map)
    NetStack,    //!< TCP/IP protocol work (segments, ACKs, IRQs)
    Copy,        //!< payload copies (shadow bounce, copy_to/from_user)
    App,         //!< application-level per-segment work
    Nvme,        //!< NVMe submission/completion CPU work
    Fault,       //!< fault handling and recovery
    kCount,
};

constexpr std::size_t kTraceCatCount =
    static_cast<std::size_t>(TraceCat::kCount);

/** Stable category name ("dma.map", "net.stack", ...). */
const char *traceCatName(TraceCat c);

/** One recorded event.  Spans have t1 > t0; instants have t1 == t0. */
struct TraceEvent
{
    TimeNs t0 = 0;
    TimeNs t1 = 0;
    std::uint64_t seq = 0;   //!< global record order (tie-break key)
    std::uint64_t bytes = 0; //!< payload bytes involved (0 = n/a)
    std::uint64_t aux = 0;   //!< event-specific extra (iova, count, ...)
    std::uint32_t nameId = 0;
    CoreId core = 0;
    TraceCat cat = TraceCat::Other;
    bool instant = false;
};

/**
 * Snapshot of one run's trace state, detachable from the live
 * simulation: the attribution table, the merged event log, and the
 * name table.  This is what workloads hand to the experiment layer.
 */
struct TraceBundle
{
    struct Category
    {
        std::string name;          //!< traceCatName()
        TimeNs ns = 0;             //!< busy time attributed
        std::uint64_t cycles = 0;  //!< ns converted at the modeled GHz
        std::uint64_t bytes = 0;
        std::uint64_t events = 0;  //!< span/instant activations
    };

    /** Non-empty categories, in enum order. */
    std::vector<Category> categories;
    TimeNs totalBusyNs = 0;          //!< machine busy time at snapshot
    std::uint64_t totalCycles = 0;
    TimeNs attributedNs = 0;         //!< sum of categories[].ns
    std::uint64_t droppedEvents = 0; //!< ring overwrites
    std::vector<TraceEvent> events;  //!< merged, sorted by (t0, seq)
    std::vector<std::string> names;  //!< interned event names

    bool hasData() const { return totalBusyNs != 0 || !events.empty(); }
    double
    coveragePct() const
    {
        return totalBusyNs == 0
            ? 100.0
            : 100.0 * double(attributedNs) / double(totalBusyNs);
    }
};

/** The tracing subsystem of one Context. */
class Tracer final : public BusyObserver
{
  public:
    /** Default per-core event ring capacity (events, not bytes). */
    static constexpr std::size_t kDefaultRingCapacity = 1u << 16;

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Wire the tracer to @p machine: sizes per-core state and installs
     * the busy-time observer.  Called once by the Context constructor.
     */
    void attach(Machine &machine);

    // --- event recording control -----------------------------------

    /** Start appending events (bounded ring of @p capacity per core). */
    void startRecording(std::size_t capacity = kDefaultRingCapacity);
    void stopRecording() { recording_ = false; }
    bool recording() const { return recording_; }

    // --- category scopes (used by TraceSpan) -----------------------

    void
    pushCat(CoreId core, TraceCat cat)
    {
        PerCore &pc = perCore_[core];
        if (pc.depth < kMaxDepth)
            pc.stack[pc.depth] = cat;
        ++pc.depth;
        totals_[idx(cat)].events += 1;
    }

    void
    popCat(CoreId core)
    {
        PerCore &pc = perCore_[core];
        if (pc.depth > 0)
            --pc.depth;
    }

    /** Innermost category on @p core ("other" outside any span). */
    TraceCat
    currentCat(CoreId core) const
    {
        const PerCore &pc = perCore_[core];
        if (pc.depth == 0)
            return TraceCat::Other;
        const unsigned top = pc.depth < kMaxDepth ? pc.depth : kMaxDepth;
        return pc.stack[top - 1];
    }

    /** Busy-time hook: attribute @p booked to the current category. */
    void
    onBusy(CoreId core, TimeNs booked) override
    {
        totals_[idx(currentCat(core))].ns += booked;
    }

    /** Attribute payload bytes to a category (copies, DMA sizes). */
    void
    addBytes(TraceCat cat, std::uint64_t bytes)
    {
        totals_[idx(cat)].bytes += bytes;
    }

    // --- event recording -------------------------------------------

    /** Intern @p name; stable id in first-use order. */
    std::uint32_t intern(std::string_view name);

    /** Record a completed span (no-op unless recording). */
    void span(CoreId core, TraceCat cat, std::string_view name,
              TimeNs t0, TimeNs t1, std::uint64_t bytes = 0,
              std::uint64_t aux = 0);

    /** Record an instant event; attributes the activation always,
     *  appends the event only when recording. */
    void instant(CoreId core, TraceCat cat, std::string_view name,
                 TimeNs t, std::uint64_t bytes = 0,
                 std::uint64_t aux = 0);

    // --- windows and export ----------------------------------------

    /**
     * Reset attribution totals and discard buffered events; called
     * alongside Machine::resetAccounting so the attribution window
     * always equals the busy-time window.  Interned names and the
     * recording flag survive (name ids stay stable across windows).
     */
    void resetWindow();

    /** Events overwritten because a ring was full. */
    std::uint64_t droppedEvents() const;

    /** Events currently buffered across all cores. */
    std::uint64_t bufferedEvents() const;

    /** Attributed ns for one category (testing/inspection). */
    TimeNs attributedNs(TraceCat cat) const { return totals_[idx(cat)].ns; }

    /**
     * Snapshot the attribution table and (if recording) the merged,
     * sorted event log.  @p machine supplies the busy-time total the
     * table is checked against; @p cpu_ghz converts ns to cycles.
     */
    TraceBundle bundle(const Machine &machine, double cpu_ghz) const;

  private:
    static constexpr unsigned kMaxDepth = 16;

    static std::size_t idx(TraceCat c) { return std::size_t(c); }

    struct Totals
    {
        TimeNs ns = 0;
        std::uint64_t bytes = 0;
        std::uint64_t events = 0;
    };

    struct PerCore
    {
        std::array<TraceCat, kMaxDepth> stack{};
        unsigned depth = 0; //!< may exceed kMaxDepth; excess not stored
        std::vector<TraceEvent> ring;
        std::size_t head = 0;  //!< next write slot
        std::size_t count = 0; //!< valid events (<= capacity)
        std::uint64_t dropped = 0;
    };

    void append(CoreId core, const TraceEvent &ev);

    std::vector<PerCore> perCore_;
    std::array<Totals, kTraceCatCount> totals_{};
    std::vector<std::string> names_;
    std::size_t ringCapacity_ = kDefaultRingCapacity;
    std::uint64_t nextSeq_ = 0;
    bool recording_ = false;
};

/**
 * RAII span: pushes its category for the lifetime of the scope (so
 * every cpu.charge() inside lands in it) and, when recording, emits a
 * span event covering [cursor time at entry, cursor time at exit].
 */
class TraceSpan
{
  public:
    TraceSpan(Tracer &tracer, CpuCursor &cpu, TraceCat cat,
              std::string_view name)
        : tracer_(&tracer), cpu_(&cpu), name_(name), t0_(cpu.time),
          cat_(cat)
    {
        tracer_->pushCat(cpu_->id(), cat_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach payload bytes: attribution plus the event's bytes arg. */
    void
    bytes(std::uint64_t b)
    {
        bytes_ += b;
        tracer_->addBytes(cat_, b);
    }

    void aux(std::uint64_t a) { aux_ = a; }

    ~TraceSpan()
    {
        tracer_->popCat(cpu_->id());
        if (tracer_->recording())
            tracer_->span(cpu_->id(), cat_, name_, t0_, cpu_->time,
                          bytes_, aux_);
    }

  private:
    Tracer *tracer_;
    CpuCursor *cpu_;
    std::string_view name_;
    TimeNs t0_;
    std::uint64_t bytes_ = 0;
    std::uint64_t aux_ = 0;
    TraceCat cat_;
};

/**
 * Escape @p s for inclusion inside a JSON string literal (quotes not
 * added).  Control characters become \u00XX (with the usual two-char
 * shortcuts); other bytes pass through untouched.  Exposed for the
 * fuzz suite.
 */
std::string jsonEscape(std::string_view s);

/** One run's contribution to a merged Chrome trace. */
struct TraceProcess
{
    std::string name; //!< e.g. "fig4_singlecore/strict mode=rx"
    const TraceBundle *bundle = nullptr;
};

/**
 * Serialize runs as Chrome trace-event JSON (chrome://tracing /
 * Perfetto "JSON Object Format").  Each TraceProcess becomes one pid
 * with a process_name metadata record; cores become tids.  Timestamps
 * are virtual microseconds with fixed 3-digit sub-µs precision, so
 * output is deterministic.
 */
std::string chromeTraceJson(const std::vector<TraceProcess> &procs);

} // namespace damn::sim

#endif // DAMN_SIM_TRACER_HH
