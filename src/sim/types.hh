/**
 * @file
 * Fundamental simulation types shared by every module.
 */

#ifndef DAMN_SIM_TYPES_HH
#define DAMN_SIM_TYPES_HH

#include <cstdint>

namespace damn::sim {

/** Virtual time, in nanoseconds since simulation start. */
using TimeNs = std::uint64_t;

/** Identifier of a simulated core (0-based, dense). */
using CoreId = std::uint32_t;

/** Identifier of a NUMA domain. */
using NumaId = std::uint32_t;

/** "Never": the largest representable virtual time.  Used as the
 *  empty-queue sentinel by Engine::nextEventTime() and as the
 *  no-constraint bound in the sharded engine's lookahead math. */
constexpr TimeNs kTimeNever = ~TimeNs{0};

/** Saturating virtual-time addition (kTimeNever is absorbing). */
constexpr TimeNs
timeSatAdd(TimeNs a, TimeNs b)
{
    return a > kTimeNever - b ? kTimeNever : a + b;
}

/** Handy time-unit literals (virtual time). */
constexpr TimeNs kNsPerUs = 1000;
constexpr TimeNs kNsPerMs = 1000 * 1000;
constexpr TimeNs kNsPerSec = 1000ull * 1000 * 1000;

/** Convert gigabits/second to bytes/nanosecond. */
constexpr double
gbpsToBytesPerNs(double gbps)
{
    return gbps * 1e9 / 8.0 / 1e9;
}

/** Convert bytes/nanosecond to gigabits/second. */
constexpr double
bytesPerNsToGbps(double bpn)
{
    return bpn * 8.0;
}

/** Convert gigabytes/second (1e9 bytes) to bytes/nanosecond. */
constexpr double
gBpsToBytesPerNs(double gBps)
{
    return gBps;
}

} // namespace damn::sim

#endif // DAMN_SIM_TYPES_HH
