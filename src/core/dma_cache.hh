/**
 * @file
 * The DMA cache: DAMN's per-(device, rights, NUMA) allocator
 * (paper section 5.4).
 *
 * Two-level hierarchy:
 *  - bottom: magazines + depot caching *chunks* (C = 16 physically
 *    contiguous pages = 64 KiB), each permanently IOMMU-mapped for the
 *    owning device with the cache's access rights;
 *  - top: per-core bump-pointer allocators that carve a chunk to
 *    satisfy requests, with a per-chunk reference count held in the
 *    head page struct (the kernel "page frag" pattern).
 *
 * Two bump allocators per core — one for byte allocations (damn_alloc)
 * and one for page-aligned allocations (damn_alloc_pages) — and the
 * whole per-core structure is physically duplicated per execution
 * context (standard vs interrupt) so no interrupt disabling is needed
 * on the fast path.
 */

#ifndef DAMN_CORE_DMA_CACHE_HH
#define DAMN_CORE_DMA_CACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core/iova_encoding.hh"
#include "core/magazine.hh"
#include "iommu/iommu.hh"
#include "mem/page_alloc.hh"
#include "sim/context.hh"
#include "sim/cpu_cursor.hh"

namespace damn::core {

/** Execution context of an allocation (paper: two physical copies). */
enum class AllocCtx : std::uint8_t
{
    Standard = 0,   //!< process/syscall context (TX path)
    Interrupt = 1,  //!< irq/softirq context (RX path)
};

/** Tunables, including the Table-3 analysis variants. */
struct DmaCacheConfig
{
    unsigned chunkPages = 16;       //!< C: 64 KiB chunks
    unsigned magazineCapacity = 16; //!< M
    bool mapInIommu = true;         //!< false: "damn without iommu"
    bool hugeIovaPages = false;     //!< map 2 MiB IOVA pages
    bool denseIova = false;         //!< dense IOVAs, no metadata encoding

    std::uint64_t
    chunkBytes() const
    {
        return std::uint64_t(chunkPages) * mem::kPageSize;
    }
};

/**
 * One DMA cache.  Thread-safety is by construction: per-core state is
 * indexed by the cursor's core, and depot access is modeled through a
 * virtual-time lock.
 */
class DmaCache : public ChunkSource
{
  public:
    DmaCache(sim::Context &ctx, mem::PageAllocator &pa,
             iommu::Iommu &mmu, iommu::DomainId domain,
             std::uint32_t cache_id, std::uint32_t dev_idx,
             Rights rights, sim::NumaId numa,
             const DmaCacheConfig &config);

    ~DmaCache() override = default;
    DmaCache(const DmaCache &) = delete;
    DmaCache &operator=(const DmaCache &) = delete;

    /**
     * Allocate @p size bytes (<= chunk size) from the calling core's
     * bump allocator for context @p actx.
     *
     * @param align  required alignment (8 for damn_alloc, the natural
     *               block size for damn_alloc_pages).
     * @return kernel address of the buffer, or 0 on OOM.
     */
    mem::Pa alloc(sim::CpuCursor &cpu, std::uint32_t size,
                  std::uint32_t align, AllocCtx actx);

    /**
     * A chunk's refcount dropped to zero (all buffers freed): recycle
     * it into the freeing core's magazine layer.
     */
    void recycleChunk(sim::CpuCursor &cpu, const Chunk &chunk,
                      AllocCtx actx);

    /** IOVA of a buffer inside one of this cache's chunks. */
    iommu::Iova iovaOf(mem::Pa pa) const;

    // ChunkSource interface (used by the depot).
    Chunk allocChunk(sim::CpuCursor &cpu) override;
    void releaseChunk(sim::CpuCursor &cpu, const Chunk &c) override;

    /**
     * Memory-pressure shrinker (paper section 5.4): drop every chunk
     * cached in magazines and the depot back to the OS.  Chunks with
     * live allocations are untouched.  The caller must follow with an
     * IOTLB flush before the freed pages are reused.
     * @return chunks released.
     */
    std::uint64_t shrink(sim::CpuCursor &cpu);

    /**
     * Teardown drain: retire every per-core bump chunk (dropping the
     * allocator's bias reference, so idle chunks become reclaimable)
     * and then shrink().  After a drain, ownedChunks() counts only
     * chunks with buffers the workload still holds.
     * @return chunks released to the OS.
     */
    std::uint64_t drain(sim::CpuCursor &cpu);

    /**
     * IOVA slots handed out and not yet recycled.  Equals ownedChunks()
     * after a complete drain; the audit flags any excess as a leak.
     */
    std::uint64_t outstandingIovaSlots() const;

    /** Total chunks currently owned (live + cached). */
    std::uint64_t ownedChunks() const { return ownedChunks_; }
    /** Bytes of memory owned by this cache. */
    std::uint64_t
    ownedBytes() const
    {
        return ownedChunks_ * config_.chunkBytes();
    }

    std::uint32_t cacheId() const { return cacheId_; }
    Rights rights() const { return rights_; }
    sim::NumaId numa() const { return numa_; }
    std::uint32_t devIdx() const { return devIdx_; }
    iommu::DomainId domain() const { return domain_; }
    const DmaCacheConfig &config() const { return config_; }
    const Depot &depot() const { return depot_; }

  private:
    /** Bump-pointer state over the current chunk. */
    struct BumpState
    {
        Chunk chunk;            //!< invalid when no chunk installed
        std::uint32_t offset = 0;
    };

    /** Per-core, per-context allocator state. */
    struct PerCore
    {
        Magazine loaded;
        Magazine prev;
        BumpState bump;         //!< damn_alloc carving
        BumpState pageBump;     //!< damn_alloc_pages carving
    };

    PerCore &
    state(sim::CoreId core, AllocCtx actx)
    {
        return perCore_[core][unsigned(actx)];
    }

    /** Magazine-protocol chunk acquisition. */
    Chunk getChunk(sim::CpuCursor &cpu, PerCore &pc);
    /** Magazine-protocol chunk return. */
    void putChunk(sim::CpuCursor &cpu, PerCore &pc, const Chunk &c);

    /** Drop the allocator's bias reference on a retiring bump chunk. */
    void retireBumpChunk(sim::CpuCursor &cpu, PerCore &pc, BumpState &bs);

    /** Set up compound-page metadata on a fresh chunk. */
    void initCompound(const Chunk &c);
    /** Tear down compound-page metadata (release path). */
    void clearCompound(const Chunk &c);

    /** Allocate the chunk's IOVA per the configured encoding. */
    iommu::Iova allocChunkIova(sim::CoreId creating_core);

    /** Huge-page mode: round the dense cursor up to 2 MiB. */
    std::uint64_t alignUp32MiB();

    sim::Context &ctx_;
    mem::PageAllocator &pageAlloc_;
    iommu::Iommu &iommu_;
    iommu::DomainId domain_;
    std::uint32_t cacheId_;
    std::uint32_t devIdx_;
    Rights rights_;
    sim::NumaId numa_;
    DmaCacheConfig config_;

    Depot depot_;
    std::vector<std::array<PerCore, 2>> perCore_;

    // IOVA slot management (metadata encoding mode).
    std::vector<std::uint64_t> freeSlots_;
    std::uint64_t nextSlot_ = 0;
    // Dense mode: simple bump inside this cache's private dense region.
    std::uint64_t denseNext_ = 0;
    // Huge-page mode: carved-but-unused chunks of the current 2 MiB
    // physical block.
    std::vector<Chunk> hugeCarved_;

    std::uint64_t ownedChunks_ = 0;
};

} // namespace damn::core

#endif // DAMN_CORE_DMA_CACHE_HH
