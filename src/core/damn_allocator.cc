/**
 * @file
 * DamnAllocator implementation.
 */

#include "core/damn_allocator.hh"

#include <cassert>

namespace damn::core {

const char *
rightsName(Rights r)
{
    switch (r) {
      case Rights::Read:
        return "R";
      case Rights::Write:
        return "W";
      case Rights::RW:
        return "RW";
    }
    return "?";
}

DamnAllocator::DamnAllocator(sim::Context &ctx, mem::PageAllocator &pa,
                             mem::KmallocHeap &heap, iommu::Iommu &mmu,
                             DamnConfig config)
    : ctx_(ctx), pageAlloc_(pa), heap_(heap), iommu_(mmu),
      config_(config)
{}

DmaCache &
DamnAllocator::cacheFor(dma::Device &dev, Rights rights, sim::NumaId numa)
{
    const CacheKey key{dev.domain(), rights, numa};
    auto it = cacheIndex_.find(key);
    if (it != cacheIndex_.end())
        return *caches_[it->second];

    auto dit = devIdx_.find(dev.domain());
    if (dit == devIdx_.end()) {
        dit = devIdx_.emplace(dev.domain(),
                              std::uint32_t(devIdx_.size())).first;
    }

    const auto id = std::uint32_t(caches_.size());
    caches_.push_back(std::make_unique<DmaCache>(
        ctx_, pageAlloc_, iommu_, dev.domain(), id, dit->second, rights,
        numa, config_.cache));
    cacheIndex_.emplace(key, id);
    return *caches_[id];
}

mem::Pa
DamnAllocator::damnAlloc(sim::CpuCursor &cpu, dma::Device *dev,
                         Rights rights, std::uint32_t size, AllocCtx actx)
{
    assert(size > 0);
    if (dev == nullptr) {
        // Fall back to the standard kernel allocation API (section 5.1).
        if (size <= 4096) {
            cpu.charge(ctx_.cost.kmallocNs);
            return heap_.kmalloc(size);
        }
        unsigned order = 0;
        while ((mem::kPageSize << order) < size)
            ++order;
        cpu.charge(ctx_.cost.pageAllocNs);
        const mem::Pfn pfn = pageAlloc_.allocPages(order, cpu.numa());
        return pfn == mem::kInvalidPfn ? 0 : mem::pfnToPa(pfn);
    }
    DmaCache &cache = cacheFor(*dev, rights, cpu.numa());
    return cache.alloc(cpu, size, /*align=*/8, actx);
}

mem::Pfn
DamnAllocator::damnAllocPages(sim::CpuCursor &cpu, dma::Device *dev,
                              Rights rights, unsigned k, AllocCtx actx)
{
    const std::uint32_t bytes = std::uint32_t(mem::kPageSize) << k;
    if (dev == nullptr) {
        cpu.charge(ctx_.cost.pageAllocNs);
        return pageAlloc_.allocPages(k, cpu.numa());
    }
    DmaCache &cache = cacheFor(*dev, rights, cpu.numa());
    const mem::Pa pa = cache.alloc(cpu, bytes, /*align=*/bytes, actx);
    return pa == 0 ? mem::kInvalidPfn : mem::paToPfn(pa);
}

mem::Pfn
DamnAllocator::headOf(mem::Pa addr) const
{
    const mem::Pfn pfn = mem::paToPfn(addr);
    const mem::Page &pg = pageAlloc_.phys().page(pfn);
    if (pg.test(mem::PG_head))
        return pfn;
    if (pg.test(mem::PG_tail))
        return pg.compoundHead;
    return mem::kInvalidPfn;
}

bool
DamnAllocator::isDamnBuffer(mem::Pa addr) const
{
    // Section 5.5: a DAMN page is a compound whose *third* page struct
    // carries the F flag.
    const mem::Pfn head = headOf(addr);
    if (head == mem::kInvalidPfn)
        return false;
    return pageAlloc_.phys().page(head + 2).test(mem::PG_damn);
}

const DmaCache &
DamnAllocator::cacheOf(mem::Pa addr) const
{
    [[maybe_unused]] const mem::Pfn head = headOf(addr);
    assert(head != mem::kInvalidPfn);
    const std::uint32_t id = pageAlloc_.phys().page(head + 1).priv2;
    return *caches_.at(id);
}

iommu::Iova
DamnAllocator::iovaOf(mem::Pa addr) const
{
    assert(isDamnBuffer(addr));
    return cacheOf(addr).iovaOf(addr);
}

Rights
DamnAllocator::rightsOf(mem::Pa addr) const
{
    return cacheOf(addr).rights();
}

iommu::DomainId
DamnAllocator::domainOf(mem::Pa addr) const
{
    [[maybe_unused]] const mem::Pfn head = headOf(addr);
    assert(head != mem::kInvalidPfn);
    return cacheOf(addr).domain();
}

void
DamnAllocator::damnFree(sim::CpuCursor &cpu, mem::Pa addr, AllocCtx actx)
{
    if (addr == 0)
        return;

    if (isDamnBuffer(addr)) {
        cpu.charge(ctx_.cost.damnFastFreeNs);
        auto &pm = pageAlloc_.phys();
        const mem::Pfn head = headOf(addr);
        mem::Page &hp = pm.page(head);
        assert(hp.refcount > 0 && "damn_free of a free buffer");
        if (--hp.refcount == 0) {
            // Look up the owning cache through the tail-page metadata
            // (the IOVA encoding carries the same identity, verified by
            // tests) and recycle the chunk.
            const std::uint32_t id = pm.page(head + 1).priv2;
            DmaCache &cache = *caches_.at(id);
            cache.recycleChunk(cpu, Chunk{head, pm.page(head + 1).priv},
                               actx);
        }
        ctx_.stats.add("damn.frees");
        return;
    }

    // Fallback buffers: kmalloc objects or raw pages.
    const mem::Page &pg = pageAlloc_.phys().pageOf(addr);
    if (pg.test(mem::PG_slab)) {
        cpu.charge(ctx_.cost.kmallocNs);
        heap_.kfree(addr);
        return;
    }
    cpu.charge(ctx_.cost.pageAllocNs);
    pageAlloc_.freePages(mem::paToPfn(addr), pg.order);
}

void
DamnAllocator::damnFreePages(sim::CpuCursor &cpu, mem::Pfn page,
                             unsigned k, AllocCtx actx)
{
    if (page == mem::kInvalidPfn)
        return;
    const mem::Pa addr = mem::pfnToPa(page);
    if (isDamnBuffer(addr)) {
        damnFree(cpu, addr, actx);
        return;
    }
    cpu.charge(ctx_.cost.pageAllocNs);
    pageAlloc_.freePages(page, k);
}

std::uint64_t
DamnAllocator::shrink(sim::CpuCursor &cpu)
{
    std::uint64_t chunks = 0;
    for (auto &cache : caches_)
        chunks += cache->shrink(cpu);
    if (chunks > 0) {
        // One *global* batched IOTLB flush covers every released
        // mapping — the shrinker returns chunks from all device caches
        // at once, so a single global command beats per-domain ones;
        // the freed pages may be handed out by the OS only after this.
        cpu.time = iommu_.backend().batchedFlushAll(*cpu.core, cpu.time);
    }
    return chunks * config_.cache.chunkBytes();
}

std::uint64_t
DamnAllocator::drainDomain(sim::CpuCursor &cpu, iommu::DomainId d)
{
    std::uint64_t chunks = 0;
    for (auto &cache : caches_)
        if (cache->domain() == d)
            chunks += cache->drain(cpu);
    if (chunks > 0) {
        // Teardown flush is scoped: only the detaching domain's entries
        // need to die, and other devices' warm entries must survive.
        cpu.time = iommu_.backend().batchedFlush(*cpu.core, cpu.time, {d});
    }
    return chunks * config_.cache.chunkBytes();
}

std::uint64_t
DamnAllocator::outstandingIovaSlots(iommu::DomainId d) const
{
    std::uint64_t n = 0;
    for (const auto &cache : caches_)
        if (cache->domain() == d)
            n += cache->outstandingIovaSlots();
    return n;
}

std::uint64_t
DamnAllocator::ownedBytes() const
{
    std::uint64_t b = 0;
    for (const auto &cache : caches_)
        b += cache->ownedBytes();
    return b;
}

} // namespace damn::core
