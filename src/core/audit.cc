/**
 * @file
 * Teardown invariant checker implementation.
 */

#include "core/audit.hh"

namespace damn::audit {

Auditor::Auditor(iommu::Iommu &mmu) : mmu_(mmu)
{
    ledger_.resize(mmu.numDomains());
    mmu_.onMapChange(
        [this](iommu::MapEvent ev, iommu::DomainId d, iommu::Iova iova,
               unsigned pages) { onEvent(ev, d, iova, pages); });
}

void
Auditor::onEvent(iommu::MapEvent ev, iommu::DomainId d, iommu::Iova iova,
                 unsigned pages)
{
    if (d >= ledger_.size())
        ledger_.resize(d + 1);
    auto &dom = ledger_[d];
    switch (ev) {
      case iommu::MapEvent::Map:
        ++mapEvents_;
        dom[iova] = pages;
        break;
      case iommu::MapEvent::Unmap:
        ++unmapEvents_;
        dom.erase(iova);
        break;
      case iommu::MapEvent::DetachClear:
        // The IOMMU dropped the whole table; anything still in the
        // ledger was force-cleared and is reported by verifyTeardown()
        // through the detach return value — the ledger follows suit.
        dom.clear();
        break;
    }
}

std::uint64_t
Auditor::ledgerPages(iommu::DomainId d) const
{
    if (d >= ledger_.size())
        return 0;
    std::uint64_t n = 0;
    for (const auto &[iova, pages] : ledger_[d])
        n += pages;
    return n;
}

std::uint64_t
Auditor::staleTlbEntries(iommu::DomainId d) const
{
    // Cold audit path: validEntries() and the page walks below are
    // linear scans charged no virtual time and no Tracer category —
    // never call from a per-packet path.
    std::uint64_t stale = 0;
    for (const iommu::TlbEntry &e :
         mmu_.iotlb().validEntries(d)) {
        const iommu::WalkResult w = mmu_.pageTable(d).walk(e.iovaPage);
        const std::uint64_t page_mask =
            (e.huge ? iommu::kHugePageSize : mem::kPageSize) - 1;
        if (!w.present || w.huge != e.huge ||
            (w.pa & ~page_mask) != e.paPage)
            ++stale;
    }
    return stale;
}

TeardownReport
Auditor::verifyTeardown(iommu::DomainId d,
                        std::uint64_t outstanding_iovas,
                        std::uint64_t force_cleared) const
{
    TeardownReport r;
    r.domain = d;
    r.ledgerPages = ledgerPages(d);
    r.tablePages = mmu_.pageTable(d).mappedPages();
    r.tlbEntries = mmu_.iotlb().validEntries(d).size();
    r.staleTlbEntries = staleTlbEntries(d);
    r.leakedIovas = outstanding_iovas;
    r.forceCleared = force_cleared;

    const auto flag = [&r](const std::string &v) {
        r.violations.push_back(v);
    };
    if (r.tablePages != 0)
        flag("page table still holds " + std::to_string(r.tablePages) +
             " live pages");
    if (r.ledgerPages != 0)
        flag("ledger still holds " + std::to_string(r.ledgerPages) +
             " live pages");
    if (r.ledgerPages != r.tablePages)
        flag("ledger (" + std::to_string(r.ledgerPages) +
             ") and page table (" + std::to_string(r.tablePages) +
             ") disagree");
    if (r.tlbEntries != 0)
        flag(std::to_string(r.tlbEntries) +
             " IOTLB entries survived teardown");
    if (r.staleTlbEntries != 0)
        flag(std::to_string(r.staleTlbEntries) +
             " stale IOTLB entries (freed memory device-reachable)");
    if (r.leakedIovas != 0)
        flag(std::to_string(r.leakedIovas) + " IOVAs leaked");
    if (r.forceCleared != 0)
        flag("detach force-cleared " + std::to_string(r.forceCleared) +
             " pages the drain missed");
    return r;
}

} // namespace damn::audit
