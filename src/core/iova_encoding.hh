/**
 * @file
 * DAMN's metadata-carrying IOVA encoding (paper figure 3).
 *
 * The IOVA space is split on the MSB of the backend's implemented
 * input-address width (iommu::AddressLayout): tag bit == 1 marks a
 * DAMN-allocated buffer, letting dma_unmap decide in O(1) whether to do
 * nothing (DAMN) or fall back to the legacy path (section 5.3).  The
 * upper bits of a DAMN IOVA encode the allocating core, the access
 * rights, and the device, so the deallocation path can locate the
 * owning DMA cache (section 5.5).
 *
 * Field layout for the default 48-bit backends (the paper's figure is
 * schematic about exact widths; we document our concrete choice):
 *
 *   47    46..40   39..37    36..30   29      28..0
 *   [1]   cpu idx  rights    dev idx  numa    offset (512 MiB/region)
 *          7 bits  one-hot    7 bits  1 bit   29 bits
 *
 * rights is one-hot {R, W, RW} exactly as drawn ("R/W/RW").  The numa
 * bit is our addition (the evaluation machine has 2 NUMA domains and
 * DAMN keeps one DMA cache per domain, section 5.4); it subdivides the
 * offset space so per-domain caches of the same (device, rights) pair
 * never collide.  A backend with a narrower input size shifts the
 * whole encoding down (fields keep their widths; only the offset space
 * shrinks) — encode/decode take the backend's AddressLayout.
 */

#ifndef DAMN_CORE_IOVA_ENCODING_HH
#define DAMN_CORE_IOVA_ENCODING_HH

#include <cassert>
#include <cstdint>

#include "dma/dma_types.hh"
#include "iommu/backend.hh"
#include "iommu/iova_alloc.hh"
#include "sim/types.hh"

namespace damn::core {

/** DMA access rights of a DAMN buffer (paper Table 2). */
enum class Rights : std::uint8_t
{
    Read = 1,   //!< device may read (TX)
    Write = 2,  //!< device may write (RX)
    RW = 3,
};

/** Decoded fields of a DAMN IOVA. */
struct IovaFields
{
    sim::CoreId cpu = 0;
    Rights rights = Rights::Read;
    std::uint32_t devIdx = 0;
    sim::NumaId numa = 0;
    std::uint64_t offset = 0;
};

// Legacy aliases: the concrete values of the default 48-bit layout.
constexpr unsigned kCpuShift = 40;
constexpr unsigned kRightsShift = 37;
constexpr unsigned kDevShift = 30;
constexpr unsigned kNumaShift = 29;
constexpr std::uint64_t kOffsetMask = (1ull << kNumaShift) - 1;

static_assert(iommu::AddressLayout{}.cpuShift() == kCpuShift);
static_assert(iommu::AddressLayout{}.rightsShift() == kRightsShift);
static_assert(iommu::AddressLayout{}.devShift() == kDevShift);
static_assert(iommu::AddressLayout{}.numaShift() == kNumaShift);
static_assert(iommu::AddressLayout{}.offsetMask() == kOffsetMask);
static_assert(iommu::AddressLayout{}.tagMask() == iommu::kDamnIovaBit);

constexpr unsigned kMaxCpus = 128;
constexpr unsigned kMaxDevices = 128;

/** True iff @p iova belongs to DAMN's half of the address space. */
constexpr bool
isDamnIova(iommu::Iova iova,
           const iommu::AddressLayout &lay = iommu::AddressLayout{})
{
    return (iova & lay.tagMask()) != 0;
}

/** One-hot rights field value. */
constexpr std::uint64_t
rightsField(Rights r)
{
    switch (r) {
      case Rights::Read:
        return 1;
      case Rights::Write:
        return 2;
      case Rights::RW:
        return 4;
    }
    return 0;
}

/** Compose a DAMN IOVA in @p lay's address space. */
inline iommu::Iova
encodeIova(sim::CoreId cpu, Rights rights, std::uint32_t dev_idx,
           sim::NumaId numa, std::uint64_t offset,
           const iommu::AddressLayout &lay = iommu::AddressLayout{})
{
    assert(cpu < kMaxCpus);
    assert(dev_idx < kMaxDevices);
    assert(numa < 2);
    assert(offset <= lay.offsetMask());
    return lay.tagMask() |
        (std::uint64_t(cpu) << lay.cpuShift()) |
        (rightsField(rights) << lay.rightsShift()) |
        (std::uint64_t(dev_idx) << lay.devShift()) |
        (std::uint64_t(numa) << lay.numaShift()) |
        offset;
}

/** Decompose a DAMN IOVA; @p iova must have the tag bit set. */
inline IovaFields
decodeIova(iommu::Iova iova,
           const iommu::AddressLayout &lay = iommu::AddressLayout{})
{
    assert(isDamnIova(iova, lay));
    IovaFields f;
    f.cpu = sim::CoreId((iova >> lay.cpuShift()) & 0x7f);
    const std::uint64_t r = (iova >> lay.rightsShift()) & 0x7;
    f.rights = r == 1 ? Rights::Read : r == 2 ? Rights::Write : Rights::RW;
    f.devIdx = std::uint32_t((iova >> lay.devShift()) & 0x7f);
    f.numa = sim::NumaId((iova >> lay.numaShift()) & 0x1);
    f.offset = iova & lay.offsetMask();
    return f;
}

/** IOMMU permission bits for DAMN rights (via the shared DMA-API
 *  direction table, so the two conversions can never diverge). */
constexpr std::uint32_t
permOf(Rights r)
{
    switch (r) {
      case Rights::Read:
        return dma::permFor(dma::Dir::ToDevice);
      case Rights::Write:
        return dma::permFor(dma::Dir::FromDevice);
      case Rights::RW:
        return dma::permFor(dma::Dir::Bidirectional);
    }
    return 0;
}

const char *rightsName(Rights r);

} // namespace damn::core

#endif // DAMN_CORE_IOVA_ENCODING_HH
