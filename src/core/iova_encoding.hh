/**
 * @file
 * DAMN's metadata-carrying IOVA encoding (paper figure 3).
 *
 * The 48-bit IOVA space is split on the MSB: bit 47 == 1 marks a
 * DAMN-allocated buffer, letting dma_unmap decide in O(1) whether to do
 * nothing (DAMN) or fall back to the legacy path (section 5.3).  The
 * upper bits of a DAMN IOVA encode the allocating core, the access
 * rights, and the device, so the deallocation path can locate the
 * owning DMA cache (section 5.5).
 *
 * Field layout used here (the paper's figure is schematic about exact
 * widths; we document our concrete choice):
 *
 *   47    46..40   39..37    36..30   29      28..0
 *   [1]   cpu idx  rights    dev idx  numa    offset (512 MiB/region)
 *          7 bits  one-hot    7 bits  1 bit   29 bits
 *
 * rights is one-hot {R, W, RW} exactly as drawn ("R/W/RW").  The numa
 * bit is our addition (the evaluation machine has 2 NUMA domains and
 * DAMN keeps one DMA cache per domain, section 5.4); it subdivides the
 * offset space so per-domain caches of the same (device, rights) pair
 * never collide.
 */

#ifndef DAMN_CORE_IOVA_ENCODING_HH
#define DAMN_CORE_IOVA_ENCODING_HH

#include <cassert>
#include <cstdint>

#include "iommu/iova_alloc.hh"
#include "sim/types.hh"

namespace damn::core {

/** DMA access rights of a DAMN buffer (paper Table 2). */
enum class Rights : std::uint8_t
{
    Read = 1,   //!< device may read (TX)
    Write = 2,  //!< device may write (RX)
    RW = 3,
};

/** Decoded fields of a DAMN IOVA. */
struct IovaFields
{
    sim::CoreId cpu = 0;
    Rights rights = Rights::Read;
    std::uint32_t devIdx = 0;
    sim::NumaId numa = 0;
    std::uint64_t offset = 0;
};

constexpr unsigned kCpuShift = 40;
constexpr unsigned kRightsShift = 37;
constexpr unsigned kDevShift = 30;
constexpr unsigned kNumaShift = 29;
constexpr std::uint64_t kOffsetMask = (1ull << kNumaShift) - 1;

constexpr unsigned kMaxCpus = 128;
constexpr unsigned kMaxDevices = 128;

/** True iff @p iova belongs to DAMN's half of the address space. */
constexpr bool
isDamnIova(iommu::Iova iova)
{
    return (iova & iommu::kDamnIovaBit) != 0;
}

/** One-hot rights field value. */
constexpr std::uint64_t
rightsField(Rights r)
{
    switch (r) {
      case Rights::Read:
        return 1;
      case Rights::Write:
        return 2;
      case Rights::RW:
        return 4;
    }
    return 0;
}

/** Compose a DAMN IOVA. */
inline iommu::Iova
encodeIova(sim::CoreId cpu, Rights rights, std::uint32_t dev_idx,
           sim::NumaId numa, std::uint64_t offset)
{
    assert(cpu < kMaxCpus);
    assert(dev_idx < kMaxDevices);
    assert(numa < 2);
    assert(offset <= kOffsetMask);
    return iommu::kDamnIovaBit |
        (std::uint64_t(cpu) << kCpuShift) |
        (rightsField(rights) << kRightsShift) |
        (std::uint64_t(dev_idx) << kDevShift) |
        (std::uint64_t(numa) << kNumaShift) |
        offset;
}

/** Decompose a DAMN IOVA; @p iova must have bit 47 set. */
inline IovaFields
decodeIova(iommu::Iova iova)
{
    assert(isDamnIova(iova));
    IovaFields f;
    f.cpu = sim::CoreId((iova >> kCpuShift) & 0x7f);
    const std::uint64_t r = (iova >> kRightsShift) & 0x7;
    f.rights = r == 1 ? Rights::Read : r == 2 ? Rights::Write : Rights::RW;
    f.devIdx = std::uint32_t((iova >> kDevShift) & 0x7f);
    f.numa = sim::NumaId((iova >> kNumaShift) & 0x1);
    f.offset = iova & kOffsetMask;
    return f;
}

/** IOMMU permission bits for DAMN rights. */
constexpr std::uint32_t
permOf(Rights r)
{
    switch (r) {
      case Rights::Read:
        return iommu::PermRead;
      case Rights::Write:
        return iommu::PermWrite;
      case Rights::RW:
        return iommu::PermRW;
    }
    return 0;
}

const char *rightsName(Rights r);

} // namespace damn::core

#endif // DAMN_CORE_IOVA_ENCODING_HH
