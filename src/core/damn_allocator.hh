/**
 * @file
 * DAMN's public allocation API (paper Table 2) and DMA-cache registry.
 *
 * damn_alloc / damn_alloc_pages take a device pointer and an access-
 * rights mask; buffers come from the DMA cache matching (device,
 * rights, NUMA domain of the calling core).  A NULL device falls back
 * to the standard kernel allocators (kmalloc / alloc_pages), exactly as
 * the paper specifies for flows that have no device at hand.
 *
 * The free side receives only an address: DAMN recovers the owning
 * allocator from compound-page metadata (section 5.5) — no device or
 * rights argument needed.
 */

#ifndef DAMN_CORE_DAMN_ALLOCATOR_HH
#define DAMN_CORE_DAMN_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/dma_cache.hh"
#include "dma/device.hh"
#include "mem/kmalloc.hh"

namespace damn::core {

/** Top-level DAMN configuration. */
struct DamnConfig
{
    DmaCacheConfig cache;
};

/**
 * The DMA-Aware Malloc for Networking.
 */
class DamnAllocator
{
  public:
    DamnAllocator(sim::Context &ctx, mem::PageAllocator &pa,
                  mem::KmallocHeap &heap, iommu::Iommu &mmu,
                  DamnConfig config = {});

    DamnAllocator(const DamnAllocator &) = delete;
    DamnAllocator &operator=(const DamnAllocator &) = delete;

    /** The backing IOMMU's IOVA address layout (tag bit, fields). */
    iommu::AddressLayout layout() const { return iommu_.layout(); }

    // ---- Paper Table 2 -------------------------------------------

    /**
     * Allocate an @p size byte buffer DMA-accessible to @p dev with
     * @p rights.  NULL @p dev falls back to the kernel allocator.
     * @return kernel virtual address (== Pa), 0 on failure.
     */
    mem::Pa damnAlloc(sim::CpuCursor &cpu, dma::Device *dev,
                      Rights rights, std::uint32_t size,
                      AllocCtx actx = AllocCtx::Standard);

    /**
     * Allocate 2^k physically contiguous pages DMA-accessible to
     * @p dev with @p rights.
     * @return pfn of the first page, kInvalidPfn on failure.
     */
    mem::Pfn damnAllocPages(sim::CpuCursor &cpu, dma::Device *dev,
                            Rights rights, unsigned k,
                            AllocCtx actx = AllocCtx::Standard);

    /** Free a buffer from damnAlloc (device/rights looked up). */
    void damnFree(sim::CpuCursor &cpu, mem::Pa addr,
                  AllocCtx actx = AllocCtx::Standard);

    /** Free pages from damnAllocPages. */
    void damnFreePages(sim::CpuCursor &cpu, mem::Pfn page, unsigned k,
                       AllocCtx actx = AllocCtx::Standard);

    // ---- Introspection used by the DMA-API interposition ----------

    /** True iff @p addr lies in a DAMN chunk (compound F-flag check). */
    bool isDamnBuffer(mem::Pa addr) const;

    /** Permanently-mapped IOVA of a DAMN buffer. */
    iommu::Iova iovaOf(mem::Pa addr) const;

    /** Rights of the cache owning @p addr (device-writable check for
     *  the TOCTTOU guard). */
    Rights rightsOf(mem::Pa addr) const;

    /** Device (domain) allowed to access @p addr. */
    iommu::DomainId domainOf(mem::Pa addr) const;

    // ---- Memory pressure / accounting -------------------------------

    /**
     * Shrinker (paper section 5.4): release chunks cached in magazines
     * and depots back to the OS, then flush the IOTLB once so the
     * freed pages cannot be reached through stale entries.
     * @return bytes released.
     */
    std::uint64_t shrink(sim::CpuCursor &cpu);

    /**
     * Device-teardown drain: retire bump chunks and release cached
     * chunks of every cache serving domain @p d, followed by one
     * domain-scoped IOTLB flush.  Live buffers survive; the caller
     * checks outstandingIovaSlots(d) afterwards to find leaks.
     * @return bytes released.
     */
    std::uint64_t drainDomain(sim::CpuCursor &cpu, iommu::DomainId d);

    /** IOVA chunk slots still outstanding across domain @p d's caches. */
    std::uint64_t outstandingIovaSlots(iommu::DomainId d) const;

    /** Bytes owned by all DMA caches (live + cached). */
    std::uint64_t ownedBytes() const;

    /** The cache serving (dev, rights, numa), created on first use. */
    DmaCache &cacheFor(dma::Device &dev, Rights rights, sim::NumaId numa);

    const std::vector<std::unique_ptr<DmaCache>> &caches() const
    {
        return caches_;
    }

    mem::PageAllocator &pageAllocator() { return pageAlloc_; }
    mem::KmallocHeap &heap() { return heap_; }

  private:
    struct CacheKey
    {
        iommu::DomainId domain;
        Rights rights;
        sim::NumaId numa;

        bool
        operator<(const CacheKey &o) const
        {
            if (domain != o.domain)
                return domain < o.domain;
            if (rights != o.rights)
                return rights < o.rights;
            return numa < o.numa;
        }
    };

    /** Head pfn of the DAMN compound containing @p addr. */
    mem::Pfn headOf(mem::Pa addr) const;
    const DmaCache &cacheOf(mem::Pa addr) const;

    sim::Context &ctx_;
    mem::PageAllocator &pageAlloc_;
    mem::KmallocHeap &heap_;
    iommu::Iommu &iommu_;
    DamnConfig config_;

    std::map<CacheKey, std::uint32_t> cacheIndex_;
    std::vector<std::unique_ptr<DmaCache>> caches_;
    std::map<iommu::DomainId, std::uint32_t> devIdx_;
};

} // namespace damn::core

#endif // DAMN_CORE_DAMN_ALLOCATOR_HH
