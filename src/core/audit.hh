/**
 * @file
 * Map/unmap ledger and teardown invariant checker.
 *
 * The auditor observes every successful I/O page-table mutation via
 * Iommu::onMapChange() and keeps its own per-domain ledger of live
 * mappings.  At teardown it cross-checks three independent sources of
 * truth — the ledger, the page table, and the IOTLB — plus the
 * allocators' IOVA accounting, and reports every violated invariant:
 *
 *   1. zero live mappings     (ledger empty, page table empty, agree)
 *   2. zero stale IOTLB state (no valid entries for the domain; no
 *                              entry anywhere translating a torn-down
 *                              page)
 *   3. zero leaked IOVAs      (allocators report nothing outstanding)
 *   4. nothing force-cleared  (detachDomain() found an empty table)
 *
 * A clean report means the drain ordering — rings, then caches, then
 * page table, then IOTLB — ran to completion; any violation pinpoints
 * the layer that leaked.
 */

#ifndef DAMN_CORE_AUDIT_HH
#define DAMN_CORE_AUDIT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iommu/iommu.hh"

namespace damn::audit {

/** Outcome of verifyTeardown(): empty violations == clean. */
struct TeardownReport
{
    iommu::DomainId domain = 0;
    std::uint64_t ledgerPages = 0;   //!< live mappings per the ledger
    std::uint64_t tablePages = 0;    //!< live mappings per the page table
    std::uint64_t tlbEntries = 0;    //!< valid IOTLB entries surviving
    std::uint64_t staleTlbEntries = 0; //!< TLB entries the table disowns
    std::uint64_t leakedIovas = 0;   //!< allocator-reported outstanding
    std::uint64_t forceCleared = 0;  //!< pages detachDomain() had to drop
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }
};

/**
 * The ledger.  Construct it against an Iommu *before* the workload
 * maps anything — it installs the map observer (there is one slot;
 * constructing a second Auditor steals it).
 */
class Auditor
{
  public:
    explicit Auditor(iommu::Iommu &mmu);

    Auditor(const Auditor &) = delete;
    Auditor &operator=(const Auditor &) = delete;

    /** Live 4 KiB-equivalent pages the ledger holds for @p d. */
    std::uint64_t ledgerPages(iommu::DomainId d) const;

    /** Total Map events seen (lifetime). */
    std::uint64_t mapEvents() const { return mapEvents_; }
    /** Total Unmap events seen (lifetime). */
    std::uint64_t unmapEvents() const { return unmapEvents_; }

    /**
     * IOTLB entries for @p d whose translation the page table no
     * longer backs (missing, different frame, or different page size):
     * each one keeps freed memory device-reachable.
     */
    std::uint64_t staleTlbEntries(iommu::DomainId d) const;

    /**
     * Run the full invariant battery for a domain that should now be
     * completely torn down.
     *
     * @param outstanding_iovas  allocator-side leak count (DAMN slots
     *                           plus the scheme's DMA-API IOVAs).
     * @param force_cleared      return value of Iommu::detachDomain().
     */
    TeardownReport verifyTeardown(iommu::DomainId d,
                                  std::uint64_t outstanding_iovas,
                                  std::uint64_t force_cleared) const;

  private:
    void onEvent(iommu::MapEvent ev, iommu::DomainId d, iommu::Iova iova,
                 unsigned pages);

    iommu::Iommu &mmu_;
    /** Per-domain: iova page -> pages mapped there (1 or 512). */
    std::vector<std::map<iommu::Iova, unsigned>> ledger_;
    std::uint64_t mapEvents_ = 0;
    std::uint64_t unmapEvents_ = 0;
};

} // namespace damn::audit

#endif // DAMN_CORE_AUDIT_HH
