/**
 * @file
 * DMA cache implementation.
 */

#include "core/dma_cache.hh"

#include <cassert>

namespace damn::core {

namespace {

/** Round @p v up to a multiple of @p align (power of two). */
constexpr std::uint32_t
alignUp(std::uint32_t v, std::uint32_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** log2 of a power-of-two page count. */
unsigned
orderOf(unsigned pages)
{
    unsigned o = 0;
    while ((1u << o) < pages)
        ++o;
    assert((1u << o) == pages && "chunkPages must be a power of two");
    return o;
}

} // namespace

DmaCache::DmaCache(sim::Context &ctx, mem::PageAllocator &pa,
                   iommu::Iommu &mmu, iommu::DomainId domain,
                   std::uint32_t cache_id, std::uint32_t dev_idx,
                   Rights rights, sim::NumaId numa,
                   const DmaCacheConfig &config)
    : ctx_(ctx), pageAlloc_(pa), iommu_(mmu), domain_(domain),
      cacheId_(cache_id), devIdx_(dev_idx), rights_(rights), numa_(numa),
      config_(config),
      depot_(*this, config.magazineCapacity, ctx.cost.depotExchangeNs),
      perCore_(ctx.machine.numCores())
{
    assert(config_.chunkPages >= 4 &&
           "compound metadata needs the third page struct");
    for (auto &ctxs : perCore_) {
        for (auto &pc : ctxs) {
            pc.loaded = Magazine(config_.magazineCapacity);
            pc.prev = Magazine(config_.magazineCapacity);
        }
    }
}

iommu::Iova
DmaCache::allocChunkIova(sim::CoreId creating_core)
{
    const std::uint64_t chunk_bytes = config_.chunkBytes();
    const iommu::AddressLayout lay = iommu_.layout();
    if (config_.denseIova || config_.hugeIovaPages) {
        // Analysis-only variants (Table 3): IOVAs are packed densely in
        // a private 16 GiB region; no metadata is encoded.
        const iommu::Iova base =
            lay.tagMask() |
            (std::uint64_t(cacheId_) << lay.denseRegionShift());
        const iommu::Iova iova = base + denseNext_;
        denseNext_ += chunk_bytes;
        return iova;
    }
    std::uint64_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        // Only fresh slots can run off the end of the encoded offset
        // field; recycled ones fit by construction.  Fail soft — every
        // encoded IOVA has the tag bit set, so 0 is an unambiguous
        // invalid sentinel for the caller's OOM path.
        slot = nextSlot_;
        if (slot * chunk_bytes > lay.offsetMask()) {
            ctx_.stats.add("damn.iova_region_exhausted");
            return 0;
        }
        ++nextSlot_;
    }
    const std::uint64_t offset = slot * chunk_bytes;
    return encodeIova(creating_core, rights_, devIdx_, numa_, offset,
                      lay);
}

void
DmaCache::initCompound(const Chunk &c)
{
    auto &pm = pageAlloc_.phys();
    mem::Page &head = pm.page(c.pfn);
    head.set(mem::PG_head);
    head.order = std::uint8_t(orderOf(config_.chunkPages));
    head.refcount = 0;
    for (unsigned i = 1; i < config_.chunkPages; ++i) {
        mem::Page &tail = pm.page(c.pfn + i);
        tail.set(mem::PG_tail);
        tail.compoundHead = c.pfn;
    }
    // DAMN metadata lives in tail page structs: the IOVA and owning
    // cache id in the first tail page, the F flag on the *third* page
    // (the head and second pages have predetermined semantics the
    // paper must not repurpose -- section 5.5).
    pm.page(c.pfn + 1).priv = c.iova;
    pm.page(c.pfn + 1).priv2 = cacheId_;
    pm.page(c.pfn + 2).set(mem::PG_damn);
}

void
DmaCache::clearCompound(const Chunk &c)
{
    auto &pm = pageAlloc_.phys();
    pm.page(c.pfn).clearFlag(mem::PG_head);
    pm.page(c.pfn).order = 0;
    for (unsigned i = 1; i < config_.chunkPages; ++i) {
        mem::Page &tail = pm.page(c.pfn + i);
        tail.clearFlag(mem::PG_tail);
        tail.compoundHead = 0;
    }
    pm.page(c.pfn + 1).priv = 0;
    pm.page(c.pfn + 1).priv2 = 0;
    pm.page(c.pfn + 2).clearFlag(mem::PG_damn);
}

Chunk
DmaCache::allocChunk(sim::CpuCursor &cpu)
{
    const unsigned order = orderOf(config_.chunkPages);
    Chunk c;

    if (config_.hugeIovaPages) {
        if (hugeCarved_.empty()) {
            // Allocate a whole 2 MiB physical block, map it with one
            // huge PTE, and carve it into chunks.
            constexpr unsigned kHugeOrder = 9; // 512 pages
            cpu.charge(ctx_.cost.pageAllocNs);
            const mem::Pfn block = pageAlloc_.allocPages(
                kHugeOrder, numa_, /*zero=*/ctx_.functionalData);
            assert(block != mem::kInvalidPfn);
            cpu.charge(sim::TimeNs(double(iommu::kHugePageSize) /
                                   ctx_.cost.zeroBytesPerNs));
            const iommu::Iova block_iova = allocChunkIova(cpu.id());
            // Huge mappings must be 2 MiB aligned in both spaces; the
            // dense region base and chunk-multiple offsets guarantee
            // IOVA alignment only if we round up.
            assert((block_iova & (iommu::kHugePageSize - 1)) == 0);
            if (config_.mapInIommu) {
                cpu.charge(ctx_.cost.ptePerPageNs);
                const bool ok = iommu_.mapHuge(domain_, block_iova,
                                               mem::pfnToPa(block),
                                               permOf(rights_));
                assert(ok);
                (void)ok;
            }
            const unsigned per_block = unsigned(
                iommu::kHugePageSize / config_.chunkBytes());
            for (unsigned i = 0; i < per_block; ++i) {
                hugeCarved_.push_back(Chunk{
                    block + std::uint64_t(i) * config_.chunkPages,
                    block_iova + std::uint64_t(i) * config_.chunkBytes(),
                });
            }
            // Keep denseNext_ 2 MiB aligned for the next block.
            denseNext_ = alignUp32MiB();
        }
        c = hugeCarved_.back();
        hugeCarved_.pop_back();
        initCompound(c);
        ++ownedChunks_;
        ctx_.stats.add("damn.chunks_allocated");
        return c;
    }

    cpu.charge(ctx_.cost.pageAllocNs);
    c.pfn = pageAlloc_.allocPages(order, numa_,
                                  /*zero=*/ctx_.functionalData);
    if (c.pfn == mem::kInvalidPfn) {
        // OS page allocator exhausted: propagate the failure up the
        // magazine protocol instead of dying here — alloc() returns 0
        // and the caller takes its OOM path.
        ctx_.stats.add("damn.chunk_alloc_fails");
        return Chunk{};
    }
    // The depot zeroes every chunk it obtains from the OS (TX security,
    // section 5.6); zeroing costs CPU time.
    cpu.charge(sim::TimeNs(double(config_.chunkBytes()) /
                           ctx_.cost.zeroBytesPerNs));

    if (config_.mapInIommu) {
        c.iova = allocChunkIova(cpu.id());
        if (c.iova == 0) {
            // Encoded-IOVA region exhausted: give the pages back and
            // propagate the failure like a page-allocator miss.
            cpu.charge(ctx_.cost.pageAllocNs);
            pageAlloc_.freePages(c.pfn, order);
            ctx_.stats.add("damn.chunk_alloc_fails");
            return Chunk{};
        }
        cpu.charge(ctx_.cost.ptePerPageNs * config_.chunkPages);
        for (unsigned i = 0; i < config_.chunkPages; ++i) {
            const bool ok = iommu_.mapPage(
                domain_, c.iova + std::uint64_t(i) * mem::kPageSize,
                mem::pfnToPa(c.pfn + i), permOf(rights_));
            assert(ok && "DAMN chunk IOVA already mapped");
            (void)ok;
        }
    } else {
        // "damn without iommu" (Table 3): DMA address == PA.
        c.iova = mem::pfnToPa(c.pfn);
    }

    initCompound(c);
    ++ownedChunks_;
    ctx_.stats.add("damn.chunks_allocated");
    return c;
}

std::uint64_t
DmaCache::alignUp32MiB()
{
    const std::uint64_t mask = iommu::kHugePageSize - 1;
    return (denseNext_ + mask) & ~mask;
}

void
DmaCache::releaseChunk(sim::CpuCursor &cpu, const Chunk &c)
{
    assert(!config_.hugeIovaPages &&
           "huge-page variant chunks are never released (analysis only)");
    [[maybe_unused]] auto &pm = pageAlloc_.phys();
    assert(pm.page(c.pfn).refcount == 0 && "releasing a live chunk");

    if (config_.mapInIommu) {
        cpu.charge(ctx_.cost.ptePerPageNs * config_.chunkPages);
        for (unsigned i = 0; i < config_.chunkPages; ++i) {
            const bool ok = iommu_.unmapPage(
                domain_, c.iova + std::uint64_t(i) * mem::kPageSize);
            assert(ok);
            (void)ok;
        }
        if (!config_.denseIova) {
            const IovaFields f = decodeIova(c.iova, iommu_.layout());
            freeSlots_.push_back(f.offset / config_.chunkBytes());
        }
    }

    clearCompound(c);
    cpu.charge(ctx_.cost.pageAllocNs);
    pageAlloc_.freePages(c.pfn, orderOf(config_.chunkPages));
    assert(ownedChunks_ > 0);
    --ownedChunks_;
    ctx_.stats.add("damn.chunks_released");
}

Chunk
DmaCache::getChunk(sim::CpuCursor &cpu, PerCore &pc)
{
    cpu.charge(ctx_.cost.magazineOpNs);
    if (!pc.loaded.empty())
        return pc.loaded.pop();
    if (!pc.prev.empty()) {
        std::swap(pc.loaded, pc.prev);
        return pc.loaded.pop();
    }
    depot_.exchangeForFull(cpu, pc.loaded);
    if (pc.loaded.empty())
        return Chunk{}; // depot + OS both dry: allocation failure
    return pc.loaded.pop();
}

void
DmaCache::putChunk(sim::CpuCursor &cpu, PerCore &pc, const Chunk &c)
{
    cpu.charge(ctx_.cost.magazineOpNs);
    if (!pc.loaded.full()) {
        pc.loaded.push(c);
        return;
    }
    if (pc.prev.empty()) {
        std::swap(pc.loaded, pc.prev);
        pc.loaded.push(c);
        return;
    }
    depot_.exchangeForEmpty(cpu, pc.loaded);
    pc.loaded.push(c);
}

void
DmaCache::retireBumpChunk(sim::CpuCursor &cpu, PerCore &pc, BumpState &bs)
{
    if (!bs.chunk.valid())
        return;
    mem::Page &head = pageAlloc_.phys().page(bs.chunk.pfn);
    assert(head.refcount > 0);
    if (--head.refcount == 0)
        putChunk(cpu, pc, bs.chunk);
    bs.chunk = Chunk{};
    bs.offset = 0;
}

mem::Pa
DmaCache::alloc(sim::CpuCursor &cpu, std::uint32_t size,
                std::uint32_t align, AllocCtx actx)
{
    assert(size > 0 && size <= config_.chunkBytes());
    assert((align & (align - 1)) == 0 && "alignment must be a power of 2");
    cpu.charge(ctx_.cost.damnFastAllocNs);

    PerCore &pc = state(cpu.id(), actx);
    BumpState &bs = align >= mem::kPageSize ? pc.pageBump : pc.bump;

    std::uint32_t start = alignUp(bs.offset, align);
    if (!bs.chunk.valid() || start + size > config_.chunkBytes()) {
        retireBumpChunk(cpu, pc, bs);
        bs.chunk = getChunk(cpu, pc);
        if (!bs.chunk.valid()) {
            ctx_.stats.add("damn.alloc_fails");
            return 0;
        }
        bs.offset = 0;
        start = 0;
        // Install the allocator's bias reference.
        pageAlloc_.phys().page(bs.chunk.pfn).refcount = 1;
    }

    bs.offset = start + size;
    ++pageAlloc_.phys().page(bs.chunk.pfn).refcount;
    ctx_.stats.add("damn.allocs");
    return mem::pfnToPa(bs.chunk.pfn) + start;
}

void
DmaCache::recycleChunk(sim::CpuCursor &cpu, const Chunk &chunk,
                       AllocCtx actx)
{
    putChunk(cpu, state(cpu.id(), actx), chunk);
    ctx_.stats.add("damn.chunks_recycled");
}

iommu::Iova
DmaCache::iovaOf(mem::Pa pa) const
{
    const auto &pm = pageAlloc_.phys();
    const mem::Pfn pfn = mem::paToPfn(pa);
    const mem::Page &pg = pm.page(pfn);
    const mem::Pfn head =
        pg.test(mem::PG_head) ? pfn : pg.compoundHead;
    const iommu::Iova chunk_iova = pm.page(head + 1).priv;
    const std::uint64_t delta = pa - mem::pfnToPa(head);
    return chunk_iova + delta;
}

std::uint64_t
DmaCache::shrink(sim::CpuCursor &cpu)
{
    if (config_.hugeIovaPages)
        return 0; // analysis-only variant: never shrunk
    std::uint64_t released = 0;
    for (auto &ctxs : perCore_) {
        for (auto &pc : ctxs) {
            for (Magazine *m : {&pc.loaded, &pc.prev}) {
                for (Chunk &c : m->drain()) {
                    releaseChunk(cpu, c);
                    ++released;
                }
            }
        }
    }
    released += depot_.shrink(cpu);
    return released;
}

std::uint64_t
DmaCache::drain(sim::CpuCursor &cpu)
{
    if (config_.hugeIovaPages)
        return 0; // analysis-only variant: never drained
    // Retire the per-core bump chunks first: each holds the allocator's
    // bias reference, and dropping it lets idle chunks fall into the
    // magazines that shrink() then empties.  Chunks with buffers still
    // alive keep their refcount and survive the drain.
    for (sim::CoreId core = 0; core < sim::CoreId(perCore_.size());
         ++core) {
        for (const AllocCtx actx :
             {AllocCtx::Standard, AllocCtx::Interrupt}) {
            PerCore &pc = state(core, actx);
            retireBumpChunk(cpu, pc, pc.bump);
            retireBumpChunk(cpu, pc, pc.pageBump);
        }
    }
    return shrink(cpu);
}

std::uint64_t
DmaCache::outstandingIovaSlots() const
{
    // Dense/huge/unmapped variants have no recycling slot machinery:
    // every owned chunk is the outstanding unit.
    if (config_.denseIova || config_.hugeIovaPages || !config_.mapInIommu)
        return ownedChunks_;
    return nextSlot_ - freeSlots_.size();
}

} // namespace damn::core
