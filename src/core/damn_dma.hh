/**
 * @file
 * DAMN's DMA-API interposition (paper section 5.3).
 *
 * Drivers are unmodified: they still call dma_map/dma_unmap on every
 * buffer.  This layer checks whether the buffer was allocated by DAMN:
 *
 *  - dma_map of a DAMN buffer returns its permanent IOVA (a page-flag
 *    check plus a tail-page read); anything else falls back to the
 *    configured legacy scheme.
 *  - dma_unmap inspects the MSB of the DMA address (figure 3): a DAMN
 *    IOVA needs no teardown — the call returns immediately.
 */

#ifndef DAMN_CORE_DAMN_DMA_HH
#define DAMN_CORE_DAMN_DMA_HH

#include <memory>

#include "core/damn_allocator.hh"
#include "dma/dma_api.hh"
#include "sim/tracer.hh"

namespace damn::core {

/** DMA API with DAMN interposition over a legacy fallback scheme. */
class DamnDmaApi : public dma::DmaApi
{
  public:
    DamnDmaApi(sim::Context &ctx, DamnAllocator &alloc,
               std::unique_ptr<dma::DmaApi> fallback)
        : ctx_(ctx), alloc_(alloc), fallback_(std::move(fallback))
    {}

    iommu::Iova
    map(sim::CpuCursor &cpu, dma::Device &dev, mem::Pa pa,
        std::uint32_t len, dma::Dir dir) override
    {
        sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaMap,
                            "dma.map");
        span.bytes(len);
        cpu.charge(ctx_.cost.damnMapLookupNs);
        if (alloc_.isDamnBuffer(pa)) {
            // Long-lived mapping already exists; just look up the IOVA.
            ctx_.stats.add("damn.map_hits");
            return alloc_.iovaOf(pa);
        }
        return fallback_->map(cpu, dev, pa, len, dir);
    }

    void
    unmap(sim::CpuCursor &cpu, dma::Device &dev, iommu::Iova dma_addr,
          std::uint32_t len, dma::Dir dir) override
    {
        sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::DmaUnmap,
                            "dma.unmap");
        span.bytes(len);
        cpu.charge(ctx_.cost.damnUnmapCheckNs);
        if (isDamnIova(dma_addr, alloc_.layout())) {
            // Nothing to tear down; the buffer is freed later by the
            // networking subsystem through damn_free.
            ctx_.stats.add("damn.unmap_hits");
            return;
        }
        fallback_->unmap(cpu, dev, dma_addr, len, dir);
    }

    void
    unmapBatch(sim::CpuCursor &cpu, dma::Device &dev,
               const std::vector<UnmapReq> &reqs) override
    {
        std::vector<UnmapReq> legacy;
        for (const UnmapReq &r : reqs) {
            cpu.charge(ctx_.cost.damnUnmapCheckNs);
            if (isDamnIova(r.dmaAddr, alloc_.layout()))
                ctx_.stats.add("damn.unmap_hits");
            else
                legacy.push_back(r);
        }
        if (!legacy.empty())
            fallback_->unmapBatch(cpu, dev, legacy);
    }

    void
    flushPending(sim::CpuCursor &cpu) override
    {
        fallback_->flushPending(cpu);
    }

    std::uint64_t
    drainDomain(sim::CpuCursor &cpu, dma::Device &dev) override
    {
        // DAMN's long-lived mappings are the chunk caches; drain them
        // (bump retire + shrink + scoped flush) and then let the
        // fallback release whatever it keeps per domain.
        const std::uint64_t bytes = alloc_.drainDomain(cpu, dev.domain());
        return bytes / mem::kPageSize +
               fallback_->drainDomain(cpu, dev);
    }

    std::uint64_t
    outstandingIovas() const override
    {
        return fallback_->outstandingIovas();
    }

    // DAMN's own IOVAs are metadata-encoded (not range-allocated), so
    // the pressure knobs act on the fallback scheme's space.
    void
    setIovaSpaceBytes(std::uint64_t bytes) override
    {
        fallback_->setIovaSpaceBytes(bytes);
    }

    double
    iovaUtilization() const override
    {
        return fallback_->iovaUtilization();
    }

    std::uint64_t
    mapFailures() const override
    {
        return fallback_->mapFailures();
    }

    const char *name() const override { return "damn"; }
    bool subpage() const override { return true; }
    bool windowFree() const override { return true; }
    bool zeroCopy() const override { return true; }

    DamnAllocator &allocator() { return alloc_; }
    dma::DmaApi &fallback() { return *fallback_; }

  private:
    sim::Context &ctx_;
    DamnAllocator &alloc_;
    std::unique_ptr<dma::DmaApi> fallback_;
};

} // namespace damn::core

#endif // DAMN_CORE_DAMN_DMA_HH
