/**
 * @file
 * Magazines and depot (Bonwick & Adams, USENIX ATC'01) specialized for
 * DAMN's physical page chunks (paper section 5.4).
 *
 * A magazine is an M-element per-core LIFO of objects; manipulating it
 * needs no synchronization.  A core allocates/frees against its
 * *loaded* magazine first, then its *previous* magazine, and only on
 * failure exchanges a magazine with the global depot (lock-protected).
 * The two-magazine scheme guarantees at least M allocations and M
 * deallocations between depot visits.
 */

#ifndef DAMN_CORE_MAGAZINE_HH
#define DAMN_CORE_MAGAZINE_HH

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "iommu/io_pgtable.hh"
#include "mem/page_alloc.hh"
#include "sim/cpu_cursor.hh"
#include "sim/sim_mutex.hh"

namespace damn::core {

/** A DMA-cache chunk: C contiguous pages, permanently IOMMU-mapped. */
struct Chunk
{
    mem::Pfn pfn = mem::kInvalidPfn;
    iommu::Iova iova = 0;

    bool valid() const { return pfn != mem::kInvalidPfn; }
};

/** Fixed-capacity per-core LIFO of chunks. */
class Magazine
{
  public:
    explicit Magazine(unsigned capacity = 16) : cap_(capacity)
    {
        slots_.reserve(capacity);
    }

    bool empty() const { return slots_.empty(); }
    bool full() const { return slots_.size() == cap_; }
    unsigned size() const { return unsigned(slots_.size()); }
    unsigned capacity() const { return cap_; }

    /** Pop the most recently pushed chunk; magazine must be non-empty. */
    Chunk
    pop()
    {
        assert(!empty());
        const Chunk c = slots_.back();
        slots_.pop_back();
        return c;
    }

    /** Push a chunk; magazine must not be full. */
    void
    push(const Chunk &c)
    {
        assert(!full());
        slots_.push_back(c);
    }

    /** Drain all chunks (shrinker path). */
    std::vector<Chunk>
    drain()
    {
        return std::exchange(slots_, {});
    }

  private:
    unsigned cap_;
    std::vector<Chunk> slots_;
};

/**
 * Source of fresh chunks backing a depot; implemented by the DMA cache
 * (page allocation + zeroing + permanent IOMMU mapping).
 */
class ChunkSource
{
  public:
    virtual ~ChunkSource() = default;

    /** Produce a fresh, zeroed, IOMMU-mapped chunk. */
    virtual Chunk allocChunk(sim::CpuCursor &cpu) = 0;

    /** Return a chunk to the OS (shrinker): unmap + free pages. */
    virtual void releaseChunk(sim::CpuCursor &cpu, const Chunk &c) = 0;
};

/**
 * The global depot: full and empty magazines behind a lock, falling
 * back to the chunk source when no full magazine is available.
 */
class Depot
{
  public:
    Depot(ChunkSource &source, unsigned magazine_capacity,
          sim::TimeNs exchange_hold_ns)
        : source_(source), magCap_(magazine_capacity),
          holdNs_(exchange_hold_ns)
    {}

    /**
     * Exchange an empty (or partial) magazine for a full one.
     * The caller's magazine is drained into the depot's empty pool and
     * a full magazine is returned through @p mag.  Under memory
     * pressure the replacement may be partial or even empty — the
     * chunk source ran dry — and the caller must treat an empty
     * magazine as allocation failure.
     */
    void
    exchangeForFull(sim::CpuCursor &cpu, Magazine &mag)
    {
        cpu.time = lock_.acquireAndHold(*cpu.core, cpu.time, holdNs_);
        // Stash whatever the caller still holds.
        for (Chunk &c : mag.drain())
            spare_.push_back(c);
        if (fulls_.empty())
            refill(cpu);
        if (fulls_.empty()) {
            // Source exhausted with nothing spare: hand back the (now
            // empty) caller magazine — the OOM signal.
            mag = Magazine(magCap_);
            ++exchanges_;
            return;
        }
        mag = std::move(fulls_.back());
        fulls_.pop_back();
        ++exchanges_;
    }

    /**
     * Exchange a full magazine for an empty one (deallocation side).
     */
    void
    exchangeForEmpty(sim::CpuCursor &cpu, Magazine &mag)
    {
        cpu.time = lock_.acquireAndHold(*cpu.core, cpu.time, holdNs_);
        fulls_.push_back(std::move(mag));
        mag = Magazine(magCap_);
        ++exchanges_;
    }

    /** Chunks cached in the depot (full magazines + spares). */
    std::uint64_t
    cachedChunks() const
    {
        std::uint64_t n = spare_.size();
        for (const auto &m : fulls_)
            n += m.size();
        return n;
    }

    /**
     * Shrinker: release every cached chunk back to the OS.
     * @return number of chunks released.
     */
    std::uint64_t
    shrink(sim::CpuCursor &cpu)
    {
        cpu.time = lock_.acquireAndHold(*cpu.core, cpu.time, holdNs_);
        std::uint64_t n = 0;
        for (auto &m : fulls_) {
            for (Chunk &c : m.drain()) {
                source_.releaseChunk(cpu, c);
                ++n;
            }
        }
        fulls_.clear();
        for (Chunk &c : spare_) {
            source_.releaseChunk(cpu, c);
            ++n;
        }
        spare_.clear();
        return n;
    }

    std::uint64_t exchanges() const { return exchanges_; }

  private:
    /** Fill one magazine from spares/fresh chunks. Lock already held.
     *  Stops early (possibly pushing nothing) when the source cannot
     *  produce a chunk — page-allocator exhaustion. */
    void
    refill(sim::CpuCursor &cpu)
    {
        Magazine m(magCap_);
        while (!m.full()) {
            if (!spare_.empty()) {
                m.push(spare_.back());
                spare_.pop_back();
            } else {
                const Chunk c = source_.allocChunk(cpu);
                if (!c.valid())
                    break;
                m.push(c);
            }
        }
        if (!m.empty())
            fulls_.push_back(std::move(m));
    }

    ChunkSource &source_;
    unsigned magCap_;
    sim::TimeNs holdNs_;
    sim::SimMutex lock_;
    std::vector<Magazine> fulls_;
    std::vector<Chunk> spare_;
    std::uint64_t exchanges_ = 0;
};

} // namespace damn::core

#endif // DAMN_CORE_MAGAZINE_HH
