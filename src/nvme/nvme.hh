/**
 * @file
 * NVMe SSD model (the paper's Intel DC P3700 400 GiB, section 6.5).
 *
 * The paper's point about storage is that its DMA *rate* is high in
 * IOPS terms but bounded by the device (~900 K IOPS, ~3.2 GiB/s), so
 * DMA-API-based schemes — which DAMN deliberately leaves in place for
 * storage — keep up.  The model therefore needs exactly two ceilings
 * (IOPS and bytes/s), per-IO DMA through the IOMMU, and submission/
 * completion queue semantics.
 */

#ifndef DAMN_NVME_NVME_HH
#define DAMN_NVME_NVME_HH

#include "dma/device.hh"
#include "sim/sim_mutex.hh"

namespace damn::nvme {

/** Result of a driver-level command submission (with retry). */
struct NvmeCmdResult
{
    bool ok = false;
    bool aborted = false;        //!< device unplugged; no point retrying
    unsigned attempts = 0;       //!< total device-side submissions
    unsigned timeouts = 0;       //!< attempts that timed out
    sim::TimeNs completes = 0;   //!< success or final-failure time
    std::uint64_t bytesDone = 0; //!< bytes DMAed on the winning attempt
};

/** NVMe device: per-IO pacing against IOPS and bandwidth ceilings. */
class NvmeDevice : public dma::Device
{
  public:
    NvmeDevice(sim::Context &ctx, std::string name, iommu::Iommu &mmu,
               mem::PhysicalMemory &pm)
        : dma::Device(ctx, std::move(name), mmu, pm)
    {}

    /**
     * Device-side execution of one read IO: the device DMA-writes
     * @p bytes of block data to @p dma_addr.  Pacing: one slot of the
     * IOPS engine plus the media/bus bandwidth, plus host memory
     * bandwidth.
     *
     * @return DMA outcome; `completes` is the completion-queue entry
     *         time.
     */
    dma::DmaOutcome
    readIo(sim::TimeNs now, iommu::Iova dma_addr, std::uint32_t bytes)
    {
        if (ctx_.faults.shouldFail(sim::FaultSite::NvmeCmd)) {
            // The command is lost in flight: no DMA, no completion
            // entry.  The driver notices only via its timeout.
            ++cmdDrops_;
            ctx_.stats.add("nvme.cmd_drops");
            dma::DmaOutcome out;
            out.fault = true;
            out.completes = now;
            return out;
        }
        dma::DmaOutcome out = dmaTouch(now, dma_addr, bytes, true);
        const auto &c = ctx_.cost;
        const sim::TimeNs iop_ns = sim::TimeNs(1e9 / c.nvmeMaxIops);
        const sim::TimeNs bw_ns =
            sim::TimeNs(double(bytes) / c.nvmeMaxBytesPerNs);
        const sim::TimeNs iops_done = iopsEngine_.submit(now, iop_ns);
        const sim::TimeNs media_done = media_.submit(now, bw_ns);
        out.completes = std::max({out.completes, iops_done, media_done});
        ++ios_;
        return out;
    }

    /**
     * Driver-level submission: issue the read, and on a faulted or
     * lost command wait out the timeout and retry, up to the cost
     * model's bounded retry budget.  Surfaces `ok = false` after the
     * budget instead of hanging forever.
     */
    NvmeCmdResult
    submitRead(sim::TimeNs now, iommu::Iova dma_addr,
               std::uint32_t bytes)
    {
        const auto &c = ctx_.cost;
        NvmeCmdResult r;
        sim::TimeNs t = now;
        for (unsigned attempt = 0; attempt <= c.nvmeMaxRetries;
             ++attempt) {
            if (!attached()) {
                // Surprise unplug: the driver sees the controller gone
                // and aborts instead of burning the timeout budget.
                r.aborted = true;
                ++abortedCmds_;
                ctx_.stats.add("nvme.aborted_cmds");
                ctx_.tracer.instant(0, sim::TraceCat::Nvme,
                                    "nvme.abort", t, 0, attempt);
                r.completes = t;
                return r;
            }
            ++r.attempts;
            // Device-side events; core 0's ring by convention.
            ctx_.tracer.instant(0, sim::TraceCat::Nvme, "nvme.submit",
                                t, bytes, attempt);
            const dma::DmaOutcome out = readIo(t, dma_addr, bytes);
            if (!out.fault) {
                r.ok = true;
                r.completes = out.completes;
                r.bytesDone = out.bytesDone;
                ctx_.tracer.instant(0, sim::TraceCat::Nvme,
                                    "nvme.complete", r.completes,
                                    r.bytesDone, attempt);
                return r;
            }
            if (!attached()) {
                // The fault *was* the unplug; abort without waiting.
                r.aborted = true;
                ++abortedCmds_;
                ctx_.stats.add("nvme.aborted_cmds");
                ctx_.tracer.instant(0, sim::TraceCat::Nvme,
                                    "nvme.abort", out.completes, 0,
                                    attempt);
                r.completes = out.completes;
                return r;
            }
            ++r.timeouts;
            ++timeouts_;
            ctx_.tracer.instant(0, sim::TraceCat::Nvme, "nvme.timeout",
                                out.completes, 0, attempt);
            t = out.completes + c.nvmeTimeoutNs;
        }
        ++failedCmds_;
        ctx_.stats.add("nvme.failed_cmds");
        ctx_.tracer.instant(0, sim::TraceCat::Nvme, "nvme.fail", t, 0,
                            r.attempts);
        r.completes = t;
        return r;
    }

    std::uint64_t completedIos() const { return ios_; }
    std::uint64_t cmdDrops() const { return cmdDrops_; }
    std::uint64_t timeouts() const { return timeouts_; }
    std::uint64_t failedCmds() const { return failedCmds_; }
    std::uint64_t abortedCmds() const { return abortedCmds_; }

  private:
    sim::SerialResource iopsEngine_;
    sim::SerialResource media_;
    std::uint64_t ios_ = 0;
    std::uint64_t cmdDrops_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t failedCmds_ = 0;
    std::uint64_t abortedCmds_ = 0;
};

} // namespace damn::nvme

#endif // DAMN_NVME_NVME_HH
