/**
 * @file
 * DMA attack replays (paper sections 2.1, 4.1, 5.6 and Table 1).
 *
 * These are *functional* attacks: a malicious device issues real DMAs
 * through the simulated IOMMU against real buffer contents, and the
 * report records byte-exact outcomes.  Three classic attacks:
 *
 *  1. Co-location data theft: a DMA-mapped buffer shares its page
 *     with an unrelated kmalloc'ed secret; a page-granularity mapping
 *     exposes the secret to the device.
 *  2. Stale-window data theft: after dma_unmap, the OS reuses the
 *     buffer's page for a secret; a device with a warm IOTLB entry
 *     reads it until the (deferred) invalidation finally lands.
 *  3. TOCTTOU: the device rewrites packet bytes *after* the OS has
 *     inspected them (e.g., past a firewall check) but before use.
 */

#ifndef DAMN_WORK_ATTACKS_HH
#define DAMN_WORK_ATTACKS_HH

#include <memory>

#include "net/stack.hh"

namespace damn::work {

/** Outcome of the attack suite against one protection scheme. */
struct AttackReport
{
    /** Attack 1: device read an unrelated secret co-located on a
     *  mapped buffer's page. */
    bool colocationTheft = false;
    /** Attack 2: device read reused memory through a stale IOTLB
     *  entry after dma_unmap returned. */
    bool staleWindowTheft = false;
    /** Attack 3: device changed packet bytes the OS had already
     *  checked, and the OS later consumed the changed bytes. */
    bool tocttou = false;

    /** Domain the attacking device operated under. */
    iommu::DomainId attackerDomain = 0;
    /**
     * IOMMU fault records attributable to each attack (filtered to the
     * attacker's domain): when a scheme *blocks* an attack, the blocked
     * DMA shows up here with the offending IOVA and the right reason,
     * which is how an operator would attribute a real attack.
     */
    std::vector<iommu::FaultRecord> colocationFaults;
    std::vector<iommu::FaultRecord> staleWindowFaults;
    std::vector<iommu::FaultRecord> tocttouFaults;

    bool
    anySucceeded() const
    {
        return colocationTheft || staleWindowTheft || tocttou;
    }
};

/** A device under attacker control. */
class AttackerDevice : public dma::Device
{
  public:
    using dma::Device::Device;

    /** Remember the current end of the IOMMU fault log. */
    void markFaults() { faultMark_ = iommu_.faultLog().size(); }

    /** Fault records in *this device's* domain since markFaults(). */
    std::vector<iommu::FaultRecord>
    faultsSinceMark() const
    {
        std::vector<iommu::FaultRecord> out;
        const auto &log = iommu_.faultLog();
        for (std::size_t i = faultMark_; i < log.size(); ++i)
            if (log[i].domain == domain_)
                out.push_back(log[i]);
        return out;
    }

  private:
    std::size_t faultMark_ = 0;
};

/** Run all three attacks against a fresh System under @p scheme,
 *  deployed on @p backend's IOMMU model. */
AttackReport runAttacks(dma::SchemeKind scheme,
                        iommu::BackendKind backend =
                            iommu::BackendKind::Vtd);

} // namespace damn::work

#endif // DAMN_WORK_ATTACKS_HH
