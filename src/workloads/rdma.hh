/**
 * @file
 * Faulting RDMA workload: one-sided transfers into pageable memory.
 *
 * Models an RNIC doing virtual-address RDMA (the Crete-thesis shape):
 * payloads land in an SVA domain where IOVA = process VA and nothing
 * is pinned, so the device faults pages in through ATS/PRI as the
 * access pattern walks the registered footprint.  A bounded resident
 * set forces steady-state eviction, so the fault rate tracks the
 * footprint — the sweep axis of the rdma_pagefault experiment.
 *
 * The per-message *control* path (work-request descriptor) still goes
 * through the DMA API, so the protection scheme keeps its usual cost
 * axis; the payload path prices the ATS/PRI machinery of the chosen
 * backend.
 */

#ifndef DAMN_WORK_RDMA_HH
#define DAMN_WORK_RDMA_HH

#include "net/system.hh"
#include "workloads/run_window.hh"

namespace damn::work {

struct RdmaOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::Strict;
    /** Registered (touchable) memory footprint, bytes. */
    std::uint64_t footprintBytes = 4ull << 20;
    /** Resident-set bound, pages; faults appear once the footprint
     *  exceeds it.  0 = unbounded (first-touch faults only). */
    unsigned residentLimitPages = 128;
    /** RDMA message size, bytes. */
    std::uint32_t messageBytes = 16384;
    std::uint64_t seed = 42;
    bool trace = false;
    RunWindow runWindow{};
    net::SystemParams sysParams{};
};

struct RdmaResult
{
    CommonResult common;
    std::uint64_t messages = 0;
    // PRI counters over the measurement window:
    std::uint64_t faultsServiced = 0;
    std::uint64_t autoResponses = 0;
    std::uint64_t prqMaxDepth = 0;  //!< whole-run high-water mark
    double devTlbHitRate = 0.0;
    double avgFaultServiceNs = 0.0; //!< post-to-resume mean
};

RdmaResult runRdma(const RdmaOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_RDMA_HH
