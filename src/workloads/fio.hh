/**
 * @file
 * fio NVMe workload (paper section 6.5 / figure 11).
 *
 * 12 fio jobs perform asynchronous direct sequential reads (O_DIRECT,
 * so the page cache is bypassed and every read is a device DMA into a
 * freshly mapped buffer).  Sweeps the block size; the NVMe device's
 * IOPS / bandwidth ceilings bind everywhere, so the question is only
 * how much CPU each protection scheme burns per IO.
 */

#ifndef DAMN_WORK_FIO_HH
#define DAMN_WORK_FIO_HH

#include <memory>

#include "net/system.hh"
#include "nvme/nvme.hh"
#include "workloads/run_window.hh"

namespace damn::work {

struct FioOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    iommu::BackendKind backend = iommu::BackendKind::Vtd;
    unsigned jobs = 12;
    unsigned queueDepth = 32;
    std::uint32_t blockBytes = 512;
    bool trace = false; //!< record trace events (rings on)
    RunWindow runWindow{20 * sim::kNsPerMs, 150 * sim::kNsPerMs};
};

/** Uniform result: opsPerSec is the IO completion rate. */
struct FioResult
{
    CommonResult common;
    double throughputGBps = 0.0;
    /** IOs that failed (retry budget / resources exhausted). */
    std::uint64_t failedIos = 0;

    double kiops() const { return common.opsPerSec / 1e3; }
};

/** Run the figure-11 experiment for one scheme + block size. */
FioResult runFio(const FioOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_FIO_HH
