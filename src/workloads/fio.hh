/**
 * @file
 * fio NVMe workload (paper section 6.5 / figure 11).
 *
 * 12 fio jobs perform asynchronous direct sequential reads (O_DIRECT,
 * so the page cache is bypassed and every read is a device DMA into a
 * freshly mapped buffer).  Sweeps the block size; the NVMe device's
 * IOPS / bandwidth ceilings bind everywhere, so the question is only
 * how much CPU each protection scheme burns per IO.
 */

#ifndef DAMN_WORK_FIO_HH
#define DAMN_WORK_FIO_HH

#include <memory>

#include "net/system.hh"
#include "nvme/nvme.hh"

namespace damn::work {

struct FioOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    unsigned jobs = 12;
    unsigned queueDepth = 32;
    std::uint32_t blockBytes = 512;
    sim::TimeNs warmupNs = 20 * sim::kNsPerMs;
    sim::TimeNs measureNs = 150 * sim::kNsPerMs;
};

struct FioResult
{
    double kiops = 0.0;
    double cpuPct = 0.0;     //!< machine-wide (24-core R430 server)
    double throughputGBps = 0.0;
};

/** Run the figure-11 experiment for one scheme + block size. */
FioResult runFio(const FioOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_FIO_HH
