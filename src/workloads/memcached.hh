/**
 * @file
 * memcached + memslap workload (paper section 6.1 / figure 7).
 *
 * 28 single-threaded memcached instances (one per core) serve a
 * 50%/50% GET/SET mix of 512 KiB keys+values driven by memslap clients
 * on the traffic-generator machines.  A SET moves 512 KiB *into* the
 * server (RX-heavy); a GET moves 512 KiB *out* (TX-heavy); each op
 * additionally costs hashing + slab bookkeeping CPU.
 */

#ifndef DAMN_WORK_MEMCACHED_HH
#define DAMN_WORK_MEMCACHED_HH

#include "workloads/netperf.hh"

namespace damn::work {

struct MemcachedOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    iommu::BackendKind backend = iommu::BackendKind::Vtd;
    unsigned instances = 28;
    std::uint32_t valueBytes = 512 * 1024;
    /** Socket-write flush granularity of the server's event loop (no
     *  full TSO aggregation on push-style writes). */
    std::uint32_t segBytes = 8 * 1024;
    /** memcached-side CPU per operation (parse, hash, slab churn for
     *  512 KiB objects, syscalls), ns. */
    sim::TimeNs opCpuNs = 100 * sim::kNsPerUs;
    /** memslap-side turnaround between response and next request
     *  (client parse + build + RTT), ns. */
    sim::TimeNs clientTurnaroundNs = 700 * sim::kNsPerUs;
    RunWindow runWindow{};
};

/** Uniform result: opsPerSec is the memcached TPS. */
struct MemcachedResult
{
    CommonResult common;
};

/** Run the figure-7 experiment for one scheme. */
MemcachedResult runMemcached(const MemcachedOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_MEMCACHED_HH
