/**
 * @file
 * Sharded scale-out netperf: K server machines (one full `net::System`
 * per shard) advancing in parallel under `sim::ShardedEngine`, linked
 * in a telemetry ring through the modeled ToR switch.
 *
 * This is the engine-shard flavor of intra-run parallelism (DESIGN.md
 * §15): every shard runs its own netperf traffic on its own engine,
 * and the shards exchange periodic cross-machine telemetry messages
 * over channels whose lookahead is the minimum inter-machine link
 * latency (`CostModel::interMachineLinkNs`).  The telemetry senders
 * promise silence until their next tick, so the conservative window
 * width is the telemetry period, not the raw wire latency.
 *
 * The result carries a determinism digest folded over every shard's
 * outcome (dispatch counts, traffic totals, telemetry, stats); equal
 * digests across worker counts certify byte-identical execution — the
 * property bench_selfperf's scaling section and tests/test_shard.cc
 * gate on.
 */

#ifndef DAMN_WORK_SHARDED_HH
#define DAMN_WORK_SHARDED_HH

#include "net/system.hh"
#include "sim/shard.hh"
#include "workloads/netperf.hh"

namespace damn::work {

/** Configuration of one sharded scale-out netperf run. */
struct ShardedNetperfOpts
{
    net::ShardPlan plan{};
    dma::SchemeKind scheme = dma::SchemeKind::Damn;
    NetMode mode = NetMode::Rx;
    /** netperf instances on each machine shard. */
    unsigned instancesPerShard = 7;
    std::uint32_t segBytes = 16 * 1024;
    unsigned window = 32;
    double costFactor = 1.0;
    RunWindow runWindow{};
    net::SystemParams sysParams{}; //!< scheme field is overwritten
    /** Worker threads for the sharded engine (1 = serial). */
    unsigned workers = 1;
    /** Stall-watchdog budget in events; 0 leaves the watchdog off. */
    std::uint64_t stallBudgetEvents = 0;
};

/** Aggregated outcome of a sharded run. */
struct ShardedNetperfResult
{
    std::uint64_t events = 0;     //!< dispatched across all shards
    std::uint64_t segments = 0;   //!< in-measurement-window segments
    std::uint64_t bytes = 0;
    double gbps = 0.0;            //!< aggregate over all shards
    double cpuPct = 0.0;          //!< mean machine-wide CPU over shards
    std::uint64_t telemetryReceived = 0;
    std::uint64_t rounds = 0;         //!< conservative windows executed
    std::uint64_t lockstepRounds = 0;
    std::uint64_t messages = 0;       //!< cross-shard deliveries
    /** FNV-1a fold of every shard's outcome; equal digests across
     *  worker counts certify byte-identical execution. */
    std::uint64_t digest = 0;
    std::vector<sim::ShardStall> stalls;
};

/** Run one sharded scale-out netperf measurement. */
ShardedNetperfResult runShardedNetperf(const ShardedNetperfOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_SHARDED_HH
