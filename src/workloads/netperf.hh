/**
 * @file
 * netperf TCP_STREAM experiment runner (paper sections 4, 6.1).
 *
 * Provides pre-parameterized configurations matching each figure's
 * methodology: single-core (4 instances pinned to core 0, both ports,
 * 64 KiB TSO/LRO aggregates), multi-core (28 instances, one per core),
 * and bidirectional (28 RX + 28 TX).
 */

#ifndef DAMN_WORK_NETPERF_HH
#define DAMN_WORK_NETPERF_HH

#include <memory>

#include "net/stream.hh"
#include "workloads/run_window.hh"

namespace damn::work {

/** Traffic mix of a netperf run. */
enum class NetMode
{
    Rx,     //!< evaluation machine receives
    Tx,     //!< evaluation machine transmits
    Bidi,   //!< half the instances each way
};

/** Full configuration of one netperf experiment. */
struct NetperfOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    NetMode mode = NetMode::Rx;
    unsigned instances = 28;
    bool singleCore = false;        //!< pin everything to core 0
    unsigned coreLimit = 0;         //!< >0: round-robin over first N cores
    std::uint32_t segBytes = 16 * 1024;
    unsigned window = 32;
    double costFactor = 1.0;
    bool trace = false;             //!< record trace events (rings on)
    RunWindow runWindow{};
    net::SystemParams sysParams{};  //!< scheme field is overwritten
};

/** A completed run: results plus the machine for post-inspection. */
struct NetperfRun
{
    std::unique_ptr<net::System> sys;
    std::unique_ptr<net::NicDevice> nic;
    std::unique_ptr<net::TcpStack> stack;
    net::StreamResult res;
    /** The uniform workload-result view of @ref res. */
    CommonResult common;
};

/** Build the System/NIC/stack for @p opts without running traffic. */
NetperfRun makeNetperfSystem(const NetperfOpts &opts);

/** Uniform view of a stream measurement (opsPerSec == segments/s). */
CommonResult toCommon(const net::StreamResult &res,
                      const RunWindow &window);

/**
 * Run one netperf experiment.  @p customize, when given, can add
 * netfilter hooks or tweak the stack before traffic starts.
 */
NetperfRun runNetperf(
    const NetperfOpts &opts,
    const std::function<void(NetperfRun &)> &customize = {});

/** Figure 4 methodology: 4 instances on one core, 64 KiB aggregates. */
NetperfOpts singleCoreOpts(dma::SchemeKind scheme, NetMode mode);

/** Figure 5 methodology: 28 instances, one per core. */
NetperfOpts multiCoreOpts(dma::SchemeKind scheme, NetMode mode);

/** Figures 1/6 methodology: bidirectional multi-core streams. */
NetperfOpts bidirectionalOpts(dma::SchemeKind scheme);

/** Flow list construction shared with other workloads. */
void addNetperfFlows(NetperfRun &run, net::StreamEngine &eng,
                     const NetperfOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_NETPERF_HH
