/**
 * @file
 * Functional DMA attack implementations.
 */

#include "workloads/attacks.hh"

#include <cassert>
#include <cstring>

#include "net/nic.hh"

namespace damn::work {

namespace {

constexpr std::uint8_t kSecretByte = 0xAB;
constexpr std::uint32_t kBufBytes = 256;

/** Does @p buf contain a run of at least 64 secret bytes? */
bool
containsSecret(const std::vector<std::uint8_t> &buf)
{
    unsigned run = 0;
    for (const std::uint8_t b : buf) {
        run = b == kSecretByte ? run + 1 : 0;
        if (run >= 64)
            return true;
    }
    return false;
}

/**
 * Attack 1: read the page around a legitimately mapped TX buffer and
 * look for an unrelated kmalloc'ed secret co-located on it.
 */
bool
colocationAttack(net::System &sys, net::NicDevice &nic)
{
    sim::CpuCursor cpu(sys.ctx.machine.core(0), sys.ctx.now());

    // The victim kernel allocates a packet buffer and, right next to
    // it, an unrelated secret (kmalloc co-locates same-size objects).
    mem::Pa packet;
    if (sys.damnMode()) {
        packet = sys.damn->damnAlloc(cpu, &nic, core::Rights::Read,
                                     kBufBytes);
    } else {
        packet = sys.heap.kmalloc(kBufBytes);
    }
    const mem::Pa secret = sys.heap.kmalloc(kBufBytes);
    sys.phys.fill(secret, kSecretByte, kBufBytes);
    sys.phys.fill(packet, 0x11, kBufBytes);

    const iommu::Iova dma = sys.dmaApi->map(cpu, nic, packet, kBufBytes,
                                            dma::Dir::ToDevice);

    // The attacker-controlled device reads the whole page surrounding
    // the DMA address it was legitimately given.
    std::vector<std::uint8_t> loot(mem::kPageSize, 0);
    const iommu::Iova page = dma & ~iommu::Iova(mem::kPageSize - 1);
    nic.dmaRead(sys.ctx.now(), page, loot.data(), loot.size());
    const bool stolen = containsSecret(loot);

    sys.dmaApi->unmap(cpu, nic, dma, kBufBytes, dma::Dir::ToDevice);
    if (sys.damnMode())
        sys.damn->damnFree(cpu, packet);
    else
        sys.heap.kfree(packet);
    sys.heap.kfree(secret);
    return stolen;
}

/**
 * Attack 2: after dma_unmap returns, the OS reuses the buffer's memory
 * for a secret; the device retries the old DMA address through a warm
 * IOTLB entry.
 */
bool
staleWindowAttack(net::System &sys, net::NicDevice &nic)
{
    sim::CpuCursor cpu(sys.ctx.machine.core(0), sys.ctx.now());

    mem::Pa packet;
    if (sys.damnMode()) {
        packet = sys.damn->damnAlloc(cpu, &nic, core::Rights::Read,
                                     kBufBytes);
    } else {
        packet = sys.heap.kmalloc(kBufBytes);
    }
    sys.phys.fill(packet, 0x22, kBufBytes);
    const iommu::Iova dma = sys.dmaApi->map(cpu, nic, packet, kBufBytes,
                                            dma::Dir::ToDevice);

    // Legitimate transmit DMA primes the IOTLB.
    std::vector<std::uint8_t> scratch(kBufBytes);
    const dma::DmaOutcome prime =
        nic.dmaRead(sys.ctx.now(), dma, scratch.data(), kBufBytes);
    assert(prime.ok);
    (void)prime;

    // Transmit completes; the driver unmaps and frees the buffer...
    sys.dmaApi->unmap(cpu, nic, dma, kBufBytes, dma::Dir::ToDevice);
    if (sys.damnMode())
        sys.damn->damnFree(cpu, packet);
    else
        sys.heap.kfree(packet);

    // ...and the kernel immediately reuses the memory for a secret.
    // (kmalloc free lists are LIFO, so the same object comes back;
    // under DAMN the secret can *never* land in a DMA chunk -- it goes
    // to the ordinary slab instead.)
    const mem::Pa reused = sys.heap.kmalloc(kBufBytes);
    sys.phys.fill(reused, kSecretByte, kBufBytes);
    if (!sys.damnMode())
        assert(reused == packet);

    // The attacker replays the stale DMA address.
    std::vector<std::uint8_t> loot(kBufBytes, 0);
    nic.dmaRead(sys.ctx.now(), dma, loot.data(), loot.size());
    const bool stolen = containsSecret(loot);

    sys.heap.kfree(reused);
    return stolen;
}

/**
 * Attack 3: TOCTTOU — rewrite packet bytes after the OS inspected
 * them (firewall pass) and see whether the OS consumes the forgery.
 */
bool
tocttouAttack(net::System &sys, net::NicDevice &nic,
              net::TcpStack &stack)
{
    sim::CpuCursor cpu(sys.ctx.machine.core(0), sys.ctx.now());
    constexpr std::uint32_t kPktBytes = 2048;
    constexpr std::uint32_t kCheckBytes = 128;
    constexpr std::uint32_t kTarget = 64; // byte the attacker flips

    // A packet arrives by DMA into a posted receive buffer.
    net::RxBuffer buf = stack.driver.allocRxBuffer(cpu, kPktBytes);
    std::vector<std::uint8_t> wire(kPktBytes, 0x33);
    const dma::DmaOutcome in = nic.dmaWrite(sys.ctx.now(), buf.seg.dmaAddr,
                                            wire.data(), kPktBytes);
    assert(in.ok);
    (void)in;
    const iommu::Iova dma = buf.seg.dmaAddr;
    net::SkBuff skb = stack.driver.rxBuild(cpu, buf, kPktBytes);

    // The firewall inspects the head of the packet and approves it.
    std::vector<std::uint8_t> checked(kCheckBytes);
    sys.accessor().access(cpu, skb, 0, kCheckBytes, checked.data());
    assert(checked[kTarget] == 0x33);

    // Time-of-check-to-time-of-use: the device rewrites the checked
    // bytes through whatever access it still has.
    std::vector<std::uint8_t> forged(kCheckBytes, 0xEE);
    nic.dmaWrite(sys.ctx.now(), dma, forged.data(), kCheckBytes);

    // The OS now *uses* the approved bytes.
    std::vector<std::uint8_t> used(kCheckBytes);
    sys.accessor().access(cpu, skb, 0, kCheckBytes, used.data());
    const bool fooled = used[kTarget] == 0xEE;

    sys.accessor().freeSkb(cpu, skb);
    return fooled;
}

/** Fault records landed in @p d's domain since index @p mark. */
std::vector<iommu::FaultRecord>
faultsSince(const iommu::Iommu &mmu, std::size_t mark, iommu::DomainId d)
{
    std::vector<iommu::FaultRecord> out;
    const auto &log = mmu.faultLog();
    for (std::size_t i = mark; i < log.size(); ++i)
        if (log[i].domain == d)
            out.push_back(log[i]);
    return out;
}

} // namespace

AttackReport
runAttacks(dma::SchemeKind scheme, iommu::BackendKind backend)
{
    AttackReport rep;
    net::SystemParams p;
    p.scheme = scheme;
    p.backend = backend;
    net::System sys(p);
    net::NicDevice nic(sys, "mlx5_evil");
    net::TcpStack stack(sys, nic);
    rep.attackerDomain = nic.domain();

    // Bracket each attack with a fault-log mark so a blocked attack can
    // be attributed to its records (domain + IOVA + reason).
    std::size_t mark = sys.mmu.faultLog().size();
    rep.colocationTheft = colocationAttack(sys, nic);
    rep.colocationFaults = faultsSince(sys.mmu, mark, nic.domain());

    mark = sys.mmu.faultLog().size();
    rep.staleWindowTheft = staleWindowAttack(sys, nic);
    rep.staleWindowFaults = faultsSince(sys.mmu, mark, nic.domain());

    mark = sys.mmu.faultLog().size();
    rep.tocttou = tocttouAttack(sys, nic, stack);
    rep.tocttouFaults = faultsSince(sys.mmu, mark, nic.domain());
    return rep;
}

} // namespace damn::work
