/**
 * @file
 * memcached workload implementation.
 *
 * Modeled at *operation* granularity, matching how memslap drives the
 * server: each instance serves one outstanding operation at a time
 * (request -> value transfer -> response), so throughput is bound by
 * per-op latency (server CPU + wire time + client turnaround), not by
 * line rate — the paper's configuration moves only ~74 Gb/s on a
 * 200 Gb/s machine.
 *
 * A SET streams the value *into* the server (RX segments), a GET
 * streams it *out* (TX segments).  The server's socket writes are
 * push-style and flushed per event-loop iteration, so TX aggregates
 * are small (8 KiB) — which is what makes the *strict* scheme's
 * per-segment IOTLB invalidations the bottleneck (paper: half the
 * TPS at 70% CPU).
 */

#include "workloads/memcached.hh"

#include <memory>

namespace damn::work {

namespace {

/** One memcached instance: alternating GET/SET closed loop. */
class Instance
{
  public:
    Instance(net::System &sys, net::NicDevice &nic, net::TcpStack &stack,
             const MemcachedOpts &opts, unsigned idx)
        : sys_(sys), nic_(nic), stack_(stack), opts_(opts),
          core_(idx % sys.ctx.machine.numCores()), port_(idx % 2)
    {}

    void start() { nextOp(); }

    std::uint64_t opsDone = 0;
    sim::TimeNs windowStart = 0;

  private:
    void
    nextOp()
    {
        isGet_ = !isGet_;
        segsLeft_ = opts_.valueBytes / opts_.segBytes;
        // Request arrival + parse + hash lookup / slab work.
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        cpu.charge(opts_.opCpuNs);
        sys_.ctx.engine.schedule(cpu.time, [this] { moveSegment(); });
    }

    void
    moveSegment()
    {
        if (segsLeft_ == 0) {
            finishOp();
            return;
        }
        --segsLeft_;
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        if (isGet_) {
            // Server transmits a value chunk.
            auto skb = std::make_shared<net::SkBuff>(
                stack_.txBuild(cpu, opts_.segBytes, 1.3));
            if (skb->allocFailed) {
                // Memory/IOVA pressure: retry this chunk later.
                ++segsLeft_;
                sys_.ctx.stats.add("net.tx_throttled");
                sys_.ctx.engine.schedule(
                    cpu.time + 100 * sim::kNsPerUs,
                    [this] { moveSegment(); });
                return;
            }
            const dma::DmaOutcome out = nic_.transferSegmentSg(
                cpu.time, port_, net::Traffic::Tx,
                stack_.driver.sgOf(*skb));
            sys_.ctx.engine.schedule(out.completes, [this, skb] {
                sim::CpuCursor c2(sys_.ctx.machine.core(core_),
                                  sys_.ctx.now());
                stack_.txComplete(c2, *skb, 1.3);
                sys_.ctx.engine.schedule(c2.time,
                                         [this] { moveSegment(); });
            });
        } else {
            // Server receives a value chunk into a posted buffer.
            net::RxBuffer buf = stack_.driver.allocRxBuffer(
                cpu, opts_.segBytes, core::AllocCtx::Interrupt);
            if (!buf.valid()) {
                // Memory/IOVA pressure: retry the post later.
                ++segsLeft_;
                sys_.ctx.stats.add("net.rx_refill_fails");
                sys_.ctx.engine.schedule(
                    cpu.time + 100 * sim::kNsPerUs,
                    [this] { moveSegment(); });
                return;
            }
            const dma::DmaOutcome out = nic_.transferSegment(
                cpu.time, port_, net::Traffic::Rx, buf.seg.dmaAddr,
                opts_.segBytes);
            sys_.ctx.engine.schedule(out.completes, [this, buf] {
                sim::CpuCursor c2(sys_.ctx.machine.core(core_),
                                  sys_.ctx.now());
                net::SkBuff skb =
                    stack_.driver.rxBuild(c2, buf, opts_.segBytes);
                stack_.rxSegment(c2, skb, 1.3);
                stack_.appRead(c2, skb, 1.3, core::AllocCtx::Interrupt);
                sys_.ctx.engine.schedule(c2.time,
                                         [this] { moveSegment(); });
            });
        }
    }

    void
    finishOp()
    {
        if (sys_.ctx.now() >= windowStart)
            ++opsDone;
        // Client-side turnaround before the next request (memslap
        // parses the response, builds the next op, RTT).
        sys_.ctx.engine.scheduleIn(opts_.clientTurnaroundNs,
                                   [this] { nextOp(); });
    }

    net::System &sys_;
    net::NicDevice &nic_;
    net::TcpStack &stack_;
    MemcachedOpts opts_;
    unsigned core_;
    unsigned port_;
    bool isGet_ = false;
    unsigned segsLeft_ = 0;
};

} // namespace

MemcachedResult
runMemcached(const MemcachedOpts &opts)
{
    net::SystemParams p;
    p.scheme = opts.scheme;
    p.backend = opts.backend;
    net::System sys(p);
    sys.ctx.functionalData = false;
    net::NicDevice nic(sys, "mlx5_0");
    net::TcpStack stack(sys, nic);

    std::vector<std::unique_ptr<Instance>> instances;
    for (unsigned i = 0; i < opts.instances; ++i) {
        instances.push_back(std::make_unique<Instance>(
            sys, nic, stack, opts, i));
    }
    for (auto &inst : instances) {
        inst->windowStart = opts.runWindow.warmupNs;
        inst->start();
    }

    opts.runWindow.settle(sys.ctx);
    opts.runWindow.finish(sys.ctx);

    MemcachedResult r;
    std::uint64_t ops = 0;
    for (const auto &inst : instances)
        ops += inst->opsDone;
    r.common.opsPerSec = opts.runWindow.perSecond(ops);
    r.common.cpuPct = opts.runWindow.cpuPct(sys.ctx);
    r.common.gbps = opts.runWindow.perSecond(ops * opts.valueBytes) *
        8.0 / 1e9;
    r.common.memGBps =
        sys.ctx.memBw.achievedGBps(opts.runWindow.measureNs);
    r.common.stats = sys.ctx.stats.snapshot();
    return r;
}

} // namespace damn::work
