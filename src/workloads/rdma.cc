/**
 * @file
 * Faulting RDMA workload implementation.
 *
 * A small pipeline of outstanding work requests (WQEs) per iteration,
 * like an RNIC send queue: every WQE translates through the ATC until
 * it stalls, posts its page request, and the OS services the whole
 * queue in one sweep — so the page-request queue actually builds
 * depth instead of ping-ponging one request at a time.
 */

#include "workloads/rdma.hh"

#include <algorithm>
#include <vector>

#include "dma/device.hh"
#include "iommu/ats.hh"
#include "iommu/sva.hh"
#include "sim/cpu_cursor.hh"
#include "sim/rng.hh"
#include "sim/tracer.hh"

namespace damn::work {

namespace {

/** One in-flight work request. */
struct Wqe
{
    iommu::Iova va = 0;
    std::uint32_t len = 0;
    std::uint64_t off = 0;
    bool isWrite = true;
    unsigned attempts = 0;
    bool done = false;
};

constexpr iommu::Iova kVaBase = 0x7f0000000000ull;
constexpr unsigned kQueueDepth = 4;   //!< outstanding WQEs
constexpr unsigned kMaxFaultsPerWqe = 16;

} // namespace

RdmaResult
runRdma(const RdmaOpts &opts)
{
    net::SystemParams p = opts.sysParams;
    p.scheme = opts.scheme;
    net::System sys(p);
    sim::Context &ctx = sys.ctx;
    ctx.functionalData = false;
    if (opts.trace)
        ctx.tracer.startRecording();

    dma::Device rnic(ctx, "rnic0", sys.mmu, sys.phys);
    iommu::SvaDomain sva(ctx, sys.mmu, sys.pageAlloc,
                         opts.residentLimitPages);
    iommu::AtsAgent ats(ctx, sys.mmu, sva.domain());
    iommu::IommuBackend &be = sys.mmu.backend();

    const std::uint64_t footprintPages =
        std::max<std::uint64_t>(1, opts.footprintBytes / mem::kPageSize);

    // The per-message work descriptor lives in one pinned kernel page
    // and goes through the DMA API — the scheme-priced control path.
    const mem::Pfn descPfn = sys.pageAlloc.allocPages(0, 0);
    const mem::Pa descPa = mem::pfnToPa(descPfn);

    sim::Rng rng(opts.seed);
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    sim::LatencyHistogram faultLat;

    bool settled = false;
    std::uint64_t measMessages = 0;
    std::uint64_t measBytes = 0;
    std::uint64_t faultsBase = 0, autoBase = 0;
    std::uint64_t hitsBase = 0, missesBase = 0;

    while (cpu.time < opts.runWindow.endNs()) {
        if (!settled && cpu.time >= opts.runWindow.warmupNs) {
            opts.runWindow.settle(ctx);
            faultsBase = ctx.stats.get("sva.faults_serviced");
            autoBase = ctx.stats.get("pri.auto_responses");
            hitsBase = ctx.stats.get("ats.devtlb_hits");
            missesBase = ctx.stats.get("ats.devtlb_misses");
            settled = true;
        }

        // Post a queue's worth of WQEs: descriptor DMA through the
        // protection scheme, payload target drawn from the footprint.
        std::vector<Wqe> sq(kQueueDepth);
        for (Wqe &w : sq) {
            w.va = kVaBase + rng.below(footprintPages) * mem::kPageSize;
            w.len = opts.messageBytes;
            w.isWrite = rng.below(4) != 0; // RDMA-write-mostly mix
            {
                sim::TraceSpan span(ctx.tracer, cpu,
                                    sim::TraceCat::NetDriver,
                                    "rdma.post_wqe");
                cpu.charge(ctx.cost.driverPerBufferNs);
                const iommu::Iova d = sys.dmaApi->map(
                    cpu, rnic, descPa, 64, dma::Dir::ToDevice);
                if (d != dma::kMapFailed) {
                    cpu.waitUntil(
                        rnic.dmaTouch(cpu.time, d, 64, false).completes);
                    sys.dmaApi->unmap(cpu, rnic, d, 64,
                                      dma::Dir::ToDevice);
                }
            }
        }

        // Drain the send queue: devices make progress until they
        // stall, then the OS services the accumulated page requests.
        unsigned pendingWqes = kQueueDepth;
        while (pendingWqes > 0) {
            bool anyRejected = false;
            for (std::uint32_t i = 0; i < sq.size(); ++i) {
                Wqe &w = sq[i];
                if (w.done)
                    continue;
                const dma::AtsDmaOutcome out = rnic.dmaAts(
                    ats, cpu.time, w.va + w.off, nullptr,
                    w.len - w.off, w.isWrite);
                w.off += out.bytesDone;
                cpu.waitUntil(out.completes);
                if (!out.needsFault || ++w.attempts > kMaxFaultsPerWqe) {
                    w.done = true;
                    --pendingWqes;
                    if (settled && out.ok) {
                        ++measMessages;
                        measBytes += w.len;
                    }
                    continue;
                }
                if (!be.postPageRequest({sva.domain(), out.faultVa,
                                         w.isWrite, i, cpu.time}))
                    anyRejected = true;
            }
            if (anyRejected)
                cpu.waitUntil(cpu.time + ctx.cost.priRetryBackoffNs);
            for (const iommu::IommuBackend::PageRequest &r :
                 be.fetchPageRequests()) {
                sva.servicePageRequest(cpu, r, &ats);
                if (settled)
                    faultLat.record(cpu.time > r.time ? cpu.time - r.time
                                                      : 0);
            }
        }
    }
    opts.runWindow.finish(ctx);

    RdmaResult res;
    res.messages = measMessages;
    res.common.gbps =
        opts.runWindow.measureNs == 0
            ? 0.0
            : double(measBytes) * 8.0 / double(opts.runWindow.measureNs);
    res.common.opsPerSec = opts.runWindow.perSecond(measMessages);
    res.common.cpuPct = opts.runWindow.cpuPct(ctx);
    res.common.memGBps =
        ctx.memBw.achievedGBps(opts.runWindow.measureNs);
    res.common.latency = faultLat;
    res.common.stats = ctx.stats.snapshot();
    res.common.trace = ctx.tracer.bundle(ctx.machine, p.cost.cpuGhz);

    res.faultsServiced =
        ctx.stats.get("sva.faults_serviced") - faultsBase;
    res.autoResponses = ctx.stats.get("pri.auto_responses") - autoBase;
    res.prqMaxDepth = be.pageRequestMaxDepth();
    const std::uint64_t hits = ctx.stats.get("ats.devtlb_hits") - hitsBase;
    const std::uint64_t misses =
        ctx.stats.get("ats.devtlb_misses") - missesBase;
    res.devTlbHitRate = hits + misses == 0
                            ? 0.0
                            : double(hits) / double(hits + misses);
    res.avgFaultServiceNs = faultLat.count() == 0
                                ? 0.0
                                : double(faultLat.meanNs());
    (void)descPfn;
    return res;
}

} // namespace damn::work
