/**
 * @file
 * netperf runner implementation.
 */

#include "workloads/netperf.hh"

namespace damn::work {

NetperfRun
makeNetperfSystem(const NetperfOpts &opts)
{
    NetperfRun run;
    net::SystemParams p = opts.sysParams;
    p.scheme = opts.scheme;
    run.sys = std::make_unique<net::System>(p);
    // Throughput experiments skip payload byte movement (timing and
    // translation behaviour are unchanged; see Context::functionalData).
    run.sys->ctx.functionalData = false;
    run.nic = std::make_unique<net::NicDevice>(*run.sys, "mlx5_0");
    run.stack = std::make_unique<net::TcpStack>(*run.sys, *run.nic);
    return run;
}

void
addNetperfFlows(NetperfRun &run, net::StreamEngine &eng,
                const NetperfOpts &opts)
{
    const unsigned ncores = run.sys->ctx.machine.numCores();
    for (unsigned i = 0; i < opts.instances; ++i) {
        net::FlowSpec f;
        if (opts.mode == NetMode::Rx) {
            f.kind = net::Traffic::Rx;
        } else if (opts.mode == NetMode::Tx) {
            f.kind = net::Traffic::Tx;
        } else {
            f.kind = i % 2 == 0 ? net::Traffic::Rx : net::Traffic::Tx;
        }
        if (opts.singleCore) {
            f.core = 0;
        } else if (opts.coreLimit > 0) {
            f.core = i % opts.coreLimit;
        } else {
            f.core = i % ncores;
        }
        f.port = i % 2;
        f.segBytes = opts.segBytes;
        f.window = opts.window;
        eng.addFlow(f);
    }
}

CommonResult
toCommon(const net::StreamResult &res, const RunWindow &window)
{
    CommonResult c;
    c.gbps = res.totalGbps;
    c.cpuPct = res.cpuPct;
    c.memGBps = res.memGBps;
    std::uint64_t segments = 0;
    for (const net::FlowResult &f : res.flows)
        segments += f.segments;
    c.opsPerSec = window.perSecond(segments);
    c.latency = res.latency;
    return c;
}

NetperfRun
runNetperf(const NetperfOpts &opts,
           const std::function<void(NetperfRun &)> &customize)
{
    NetperfRun run = makeNetperfSystem(opts);
    if (customize)
        customize(run);
    if (opts.trace)
        run.sys->ctx.tracer.startRecording();

    net::StreamConfig sc;
    sc.warmupNs = opts.runWindow.warmupNs;
    sc.measureNs = opts.runWindow.measureNs;
    sc.costFactor = opts.costFactor;
    net::StreamEngine eng(*run.sys, *run.nic, *run.stack, sc);
    addNetperfFlows(run, eng, opts);
    run.res = eng.run();

    run.common = toCommon(run.res, opts.runWindow);
    run.common.stats = run.sys->ctx.stats.snapshot();
    run.common.trace = run.sys->ctx.tracer.bundle(
        run.sys->ctx.machine, run.sys->ctx.cost.cpuGhz);
    return run;
}

NetperfOpts
singleCoreOpts(dma::SchemeKind scheme, NetMode mode)
{
    NetperfOpts o;
    o.scheme = scheme;
    o.mode = mode;
    o.instances = 4;
    o.singleCore = true;
    o.segBytes = 64 * 1024;
    o.costFactor = 1.0;
    return o;
}

NetperfOpts
multiCoreOpts(dma::SchemeKind scheme, NetMode mode)
{
    NetperfOpts o;
    o.scheme = scheme;
    o.mode = mode;
    o.instances = 28;
    o.segBytes = 16 * 1024;
    o.costFactor = o.sysParams.cost.multiFlowFactor;
    return o;
}

NetperfOpts
bidirectionalOpts(dma::SchemeKind scheme)
{
    NetperfOpts o;
    o.scheme = scheme;
    o.mode = NetMode::Bidi;
    o.instances = 56; // 28 receiving + 28 transmitting, one pair/core
    o.segBytes = 16 * 1024;
    o.costFactor = o.sysParams.cost.multiFlowFactor;
    return o;
}

} // namespace damn::work
