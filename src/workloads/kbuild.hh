/**
 * @file
 * Kernel-compile-like allocator churn (paper figure 9).
 *
 * Figure 9 runs netperf alongside an iterative kernel compile "which
 * stresses the kernel allocator": the churn keeps claiming and
 * releasing pages with varied lifetimes, so the page allocator keeps
 * handing *different* physical pages to the NIC driver for receive
 * buffers.  Under stock DMA-API protection the set of pages that have
 * *ever* been IOMMU-mapped therefore grows without bound, while the
 * *currently* mapped set stays small — the paper's argument for why
 * partial protection's exposure compounds over time.
 */

#ifndef DAMN_WORK_KBUILD_HH
#define DAMN_WORK_KBUILD_HH

#include <deque>
#include <vector>

#include "mem/page_alloc.hh"
#include "sim/context.hh"

namespace damn::work {

/** Background allocator churn task. */
class KbuildChurn
{
  public:
    struct Config
    {
        sim::CoreId core = 8;           //!< runs beside the netperfs
        sim::TimeNs intervalNs = 20 * sim::kNsPerUs;
        unsigned pagesPerBurst = 24;
        /** Uniform random hold time of each burst. */
        sim::TimeNs minHoldNs = 200 * sim::kNsPerUs;
        sim::TimeNs maxHoldNs = 20 * sim::kNsPerMs;
    };

    KbuildChurn(sim::Context &ctx, mem::PageAllocator &pa, Config cfg)
        : ctx_(ctx), pageAlloc_(pa), cfg_(cfg),
          stats_(ctx.stats, "kbuild")
    {}

    /** Begin churning (runs until the engine stops). */
    void
    start()
    {
        tick();
    }

    std::uint64_t bursts() const { return bursts_; }

  private:
    struct Burst
    {
        std::vector<std::pair<mem::Pfn, unsigned>> blocks;
    };

    void
    tick()
    {
        // Claim a burst of mixed-order blocks (object files, dentries,
        // page cache, short-lived task stacks).  Mixed orders make the
        // churn compete with the NIC driver's receive-buffer blocks in
        // the buddy free lists.
        auto burst = std::make_shared<Burst>();
        unsigned pages = 0;
        while (pages < cfg_.pagesPerBurst) {
            const auto order = unsigned(ctx_.rng.below(5));
            const mem::Pfn pfn = pageAlloc_.allocPages(order, 0);
            if (pfn != mem::kInvalidPfn)
                burst->blocks.push_back({pfn, order});
            pages += 1u << order;
        }
        ++bursts_;
        stats_.add("bursts");
        stats_.add("pages", pages);

        const sim::TimeNs hold = ctx_.rng.between(cfg_.minHoldNs,
                                                  cfg_.maxHoldNs);
        ctx_.engine.scheduleIn(hold, [this, burst] {
            for (const auto &[pfn, order] : burst->blocks)
                pageAlloc_.freePages(pfn, order);
        });
        ctx_.engine.scheduleIn(cfg_.intervalNs, [this] { tick(); });
    }

    sim::Context &ctx_;
    mem::PageAllocator &pageAlloc_;
    Config cfg_;
    sim::ScopedStats stats_;
    std::uint64_t bursts_ = 0;
};

} // namespace damn::work

#endif // DAMN_WORK_KBUILD_HH
