/**
 * @file
 * The shared measurement vocabulary of every workload runner.
 *
 * Each workload (netperf, memcached, fio, graph500 co-runs) used to
 * hand-roll its own warmup/measure bookkeeping and result fields; the
 * experiment layer needs them uniform so one driver can sweep schemes
 * and emit one machine-readable schema.  Two pieces:
 *
 *  - RunWindow: the warmup + steady-state measurement window, with the
 *    settle/finish helpers that advance virtual time and reset the
 *    accounting between the two phases;
 *  - CommonResult: the fields every workload reports — throughput,
 *    machine-wide CPU, operation rate, memory bandwidth, and the
 *    per-operation latency distribution.
 */

#ifndef DAMN_WORK_RUN_WINDOW_HH
#define DAMN_WORK_RUN_WINDOW_HH

#include "sim/context.hh"
#include "sim/histogram.hh"

namespace damn::work {

/** Warmup + measurement window of one workload run. */
struct RunWindow
{
    sim::TimeNs warmupNs = 30 * sim::kNsPerMs;
    sim::TimeNs measureNs = 200 * sim::kNsPerMs;

    /** Virtual time at which the measurement window closes. */
    sim::TimeNs endNs() const { return warmupNs + measureNs; }

    /** Length of the measurement window in seconds. */
    double seconds() const { return double(measureNs) / 1e9; }

    /** Convert an in-window event count to a per-second rate. */
    double
    perSecond(std::uint64_t count) const
    {
        return measureNs == 0 ? 0.0 : double(count) / seconds();
    }

    /**
     * Run @p ctx to the end of warmup and reset the busy-time /
     * bandwidth accounting, so that everything booked afterwards
     * belongs to the measurement window.  (Stats counters are *not*
     * cleared: they describe the whole run and experiments snapshot
     * them at the end.)
     */
    void
    settle(sim::Context &ctx) const
    {
        ctx.engine.run(warmupNs);
        ctx.machine.resetAccounting();
        ctx.memBw.resetAccounting();
        // Keep the trace/attribution window equal to the busy-time
        // window: warmup events are discarded, measurement retained.
        ctx.tracer.resetWindow();
    }

    /** Run @p ctx to the end of the measurement window. */
    void
    finish(sim::Context &ctx) const
    {
        ctx.engine.run(endNs());
    }

    /** Machine-wide CPU% over the measurement window. */
    double
    cpuPct(const sim::Context &ctx) const
    {
        return ctx.machine.utilizationPct(measureNs);
    }
};

/**
 * The result fields every workload has in common.  A workload that has
 * no meaningful value for a field leaves it at zero (e.g. fio has no
 * network Gb/s; the co-runner baselines have no ops rate).
 */
struct CommonResult
{
    double gbps = 0.0;      //!< network throughput moved
    double cpuPct = 0.0;    //!< machine-wide (100% == all cores busy)
    double opsPerSec = 0.0; //!< workload-defined operations per second
    double memGBps = 0.0;   //!< achieved memory-controller bandwidth
    /** Per-operation latency distribution (empty when not tracked). */
    sim::LatencyHistogram latency;
    /** Snapshot of the System's stats counters at the end of the run. */
    std::map<std::string, std::uint64_t> stats;
    /** Cost-attribution table + (when recording) the event log. */
    sim::TraceBundle trace;
};

} // namespace damn::work

#endif // DAMN_WORK_RUN_WINDOW_HH
