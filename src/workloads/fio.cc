/**
 * @file
 * fio/NVMe workload implementation.
 */

#include "workloads/fio.hh"

#include <cassert>

namespace damn::work {

namespace {

/** One fio job's asynchronous IO pump. */
class FioJob
{
  public:
    FioJob(net::System &sys, nvme::NvmeDevice &dev, const FioOpts &opts,
           unsigned core)
        : sys_(sys), dev_(dev), opts_(opts), core_(core)
    {
        // fio preallocates its IO buffers once and reuses them.  Under
        // memory pressure the job runs at whatever queue depth the
        // allocator can back, rather than asserting.
        unsigned order = 0;
        while ((mem::kPageSize << order) < opts.blockBytes)
            ++order;
        for (unsigned i = 0; i < opts.queueDepth; ++i) {
            mem::Pfn pfn = sys_.pageAlloc.allocPages(order, 0);
            if (pfn == mem::kInvalidPfn) {
                sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                                   sys_.ctx.now());
                sys_.ctx.pressure.reclaim(cpu);
                pfn = sys_.pageAlloc.allocPages(order, 0);
            }
            if (pfn == mem::kInvalidPfn) {
                sys_.ctx.stats.add("nvme.buffer_alloc_fails");
                break;
            }
            buffers_.push_back(mem::pfnToPa(pfn));
        }
    }

    void
    start()
    {
        for (unsigned i = 0; i < unsigned(buffers_.size()); ++i)
            submit(i);
    }

    std::uint64_t completed = 0; //!< IOs finished inside the window
    std::uint64_t failedIos = 0; //!< retry budget exhausted / unmappable
    sim::TimeNs windowStart = 0;

  private:
    /** Backoff budget for pressure-throttled / unmappable submissions. */
    static constexpr unsigned kMaxBackoffs = 8;

    void
    submit(unsigned slot, unsigned backoffs = 0)
    {
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        // Admission throttle: when the system is critically short on
        // memory or IOVA space, hold new IOs back (bounded) and give
        // the reclaimers a chance instead of piling onto the queue.
        if (backoffs < kMaxBackoffs &&
            sys_.ctx.pressure.poll() == sim::PressureLevel::Critical) {
            sys_.ctx.pressure.reclaim(cpu);
            if (sys_.ctx.pressure.poll() ==
                sim::PressureLevel::Critical) {
                sys_.ctx.stats.add("nvme.throttled");
                sys_.ctx.engine.schedule(
                    cpu.time + sys_.ctx.cost.nvmeTimeoutNs,
                    [this, slot, backoffs] {
                        submit(slot, backoffs + 1);
                    });
                return;
            }
        }
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::Nvme,
                            "nvme.submit_io");
        span.bytes(opts_.blockBytes);
        // Block layer + driver submission half.
        cpu.charge(sys_.ctx.cost.nvmePerIoCpuNs / 2);
        // O_DIRECT: the user buffer is DMA-mapped for this request.
        const iommu::Iova dma = sys_.dmaApi->map(
            cpu, dev_, buffers_[slot], opts_.blockBytes,
            dma::Dir::FromDevice);
        if (dma == dma::kMapFailed) {
            // IOVA space exhausted past forced reclaim: back off and
            // retry; past the budget the IO fails and the slot parks
            // (graceful queue-depth degradation).
            if (backoffs < kMaxBackoffs) {
                sys_.ctx.stats.add("nvme.map_fail_retries");
                sys_.ctx.engine.schedule(
                    cpu.time + sys_.ctx.cost.nvmeTimeoutNs,
                    [this, slot, backoffs] {
                        submit(slot, backoffs + 1);
                    });
            } else {
                ++failedIos;
                sys_.ctx.stats.add("nvme.failed_ios");
            }
            return;
        }

        const nvme::NvmeCmdResult out =
            dev_.submitRead(cpu.time, dma, opts_.blockBytes);
        if (!out.ok) {
            // Retry budget exhausted (or device unplugged): count the
            // failed IO and error-complete it so the mapping is not
            // leaked; a healthy device gets the slot back.
            ++failedIos;
            sys_.ctx.stats.add("nvme.failed_ios");
            const bool aborted = out.aborted;
            sys_.ctx.engine.schedule(
                out.completes, [this, slot, dma, aborted] {
                    sim::CpuCursor c2(sys_.ctx.machine.core(core_),
                                      sys_.ctx.now());
                    sys_.dmaApi->unmap(c2, dev_, dma, opts_.blockBytes,
                                       dma::Dir::FromDevice);
                    if (!aborted)
                        submit(slot);
                });
            return;
        }

        sys_.ctx.engine.schedule(out.completes, [this, slot, dma] {
            complete(slot, dma);
        });
    }

    void
    complete(unsigned slot, iommu::Iova dma)
    {
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::Nvme,
                            "nvme.complete_io");
        cpu.charge(sys_.ctx.cost.nvmePerIoCpuNs / 2);
        sys_.dmaApi->unmap(cpu, dev_, dma, opts_.blockBytes,
                           dma::Dir::FromDevice);
        if (sys_.ctx.now() >= windowStart)
            ++completed;
        sys_.ctx.engine.schedule(cpu.time,
                                 [this, slot] { submit(slot); });
    }

    net::System &sys_;
    nvme::NvmeDevice &dev_;
    FioOpts opts_;
    unsigned core_;
    std::vector<mem::Pa> buffers_;
};

} // namespace

FioResult
runFio(const FioOpts &opts)
{
    assert(opts.scheme != dma::SchemeKind::Damn &&
           "DAMN does not apply to storage (paper section 2.2)");

    // The NVMe testbed is the Dell R430: 2 x 12-core Haswell at
    // 2.4 GHz; its (newer-stepping) IOMMU completes invalidations
    // faster than the Broadwell server's.
    net::SystemParams p;
    p.scheme = opts.scheme;
    p.backend = opts.backend;
    p.sockets = 2;
    p.coresPerSocket = 12;
    p.cost.cpuGhz = 2.4;
    // The R430's IOMMU pipelines invalidations: short submission slot,
    // ~1.2 us out-of-lock completion wait (sustains the device's IOPS
    // while costing the unmapping CPU -- figure 11's 2x CPU at 512 B).
    p.cost.strictInvalidateNs = 600;
    p.cost.strictPostWaitNs = 1200;
    net::System sys(p);
    sys.ctx.functionalData = false;
    if (opts.trace)
        sys.ctx.tracer.startRecording();

    nvme::NvmeDevice dev(sys.ctx, "nvme0", sys.mmu, sys.phys);

    std::vector<std::unique_ptr<FioJob>> jobs;
    for (unsigned j = 0; j < opts.jobs; ++j) {
        jobs.push_back(std::make_unique<FioJob>(
            sys, dev, opts, j % sys.ctx.machine.numCores()));
    }
    for (auto &job : jobs) {
        job->windowStart = opts.runWindow.warmupNs;
        job->start();
    }

    opts.runWindow.settle(sys.ctx);
    opts.runWindow.finish(sys.ctx);

    FioResult r;
    std::uint64_t ios = 0;
    for (const auto &job : jobs) {
        ios += job->completed;
        r.failedIos += job->failedIos;
    }
    r.common.opsPerSec = opts.runWindow.perSecond(ios);
    r.common.cpuPct = opts.runWindow.cpuPct(sys.ctx);
    r.common.memGBps =
        sys.ctx.memBw.achievedGBps(opts.runWindow.measureNs);
    r.common.stats = sys.ctx.stats.snapshot();
    r.common.trace =
        sys.ctx.tracer.bundle(sys.ctx.machine, p.cost.cpuGhz);
    r.throughputGBps = r.common.opsPerSec * opts.blockBytes / 1e9;
    return r;
}

} // namespace damn::work
