/**
 * @file
 * fio/NVMe workload implementation.
 */

#include "workloads/fio.hh"

#include <cassert>

namespace damn::work {

namespace {

/** One fio job's asynchronous IO pump. */
class FioJob
{
  public:
    FioJob(net::System &sys, nvme::NvmeDevice &dev, const FioOpts &opts,
           unsigned core)
        : sys_(sys), dev_(dev), opts_(opts), core_(core)
    {
        // fio preallocates its IO buffers once and reuses them.
        unsigned order = 0;
        while ((mem::kPageSize << order) < opts.blockBytes)
            ++order;
        for (unsigned i = 0; i < opts.queueDepth; ++i) {
            const mem::Pfn pfn = sys_.pageAlloc.allocPages(order, 0);
            assert(pfn != mem::kInvalidPfn);
            buffers_.push_back(mem::pfnToPa(pfn));
        }
    }

    void
    start()
    {
        for (unsigned i = 0; i < opts_.queueDepth; ++i)
            submit(i);
    }

    std::uint64_t completed = 0; //!< IOs finished inside the window
    sim::TimeNs windowStart = 0;

  private:
    void
    submit(unsigned slot)
    {
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::Nvme,
                            "nvme.submit_io");
        span.bytes(opts_.blockBytes);
        // Block layer + driver submission half.
        cpu.charge(sys_.ctx.cost.nvmePerIoCpuNs / 2);
        // O_DIRECT: the user buffer is DMA-mapped for this request.
        const iommu::Iova dma = sys_.dmaApi->map(
            cpu, dev_, buffers_[slot], opts_.blockBytes,
            dma::Dir::FromDevice);

        const nvme::NvmeCmdResult out =
            dev_.submitRead(cpu.time, dma, opts_.blockBytes);
        assert(out.ok && "NVMe retry budget exhausted");

        sys_.ctx.engine.schedule(out.completes, [this, slot, dma] {
            complete(slot, dma);
        });
    }

    void
    complete(unsigned slot, iommu::Iova dma)
    {
        sim::CpuCursor cpu(sys_.ctx.machine.core(core_),
                           sys_.ctx.now());
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::Nvme,
                            "nvme.complete_io");
        cpu.charge(sys_.ctx.cost.nvmePerIoCpuNs / 2);
        sys_.dmaApi->unmap(cpu, dev_, dma, opts_.blockBytes,
                           dma::Dir::FromDevice);
        if (sys_.ctx.now() >= windowStart)
            ++completed;
        sys_.ctx.engine.schedule(cpu.time,
                                 [this, slot] { submit(slot); });
    }

    net::System &sys_;
    nvme::NvmeDevice &dev_;
    FioOpts opts_;
    unsigned core_;
    std::vector<mem::Pa> buffers_;
};

} // namespace

FioResult
runFio(const FioOpts &opts)
{
    assert(opts.scheme != dma::SchemeKind::Damn &&
           "DAMN does not apply to storage (paper section 2.2)");

    // The NVMe testbed is the Dell R430: 2 x 12-core Haswell at
    // 2.4 GHz; its (newer-stepping) IOMMU completes invalidations
    // faster than the Broadwell server's.
    net::SystemParams p;
    p.scheme = opts.scheme;
    p.sockets = 2;
    p.coresPerSocket = 12;
    p.cost.cpuGhz = 2.4;
    // The R430's IOMMU pipelines invalidations: short submission slot,
    // ~1.2 us out-of-lock completion wait (sustains the device's IOPS
    // while costing the unmapping CPU -- figure 11's 2x CPU at 512 B).
    p.cost.strictInvalidateNs = 600;
    p.cost.strictPostWaitNs = 1200;
    net::System sys(p);
    sys.ctx.functionalData = false;
    if (opts.trace)
        sys.ctx.tracer.startRecording();

    nvme::NvmeDevice dev(sys.ctx, "nvme0", sys.mmu, sys.phys);

    std::vector<std::unique_ptr<FioJob>> jobs;
    for (unsigned j = 0; j < opts.jobs; ++j) {
        jobs.push_back(std::make_unique<FioJob>(
            sys, dev, opts, j % sys.ctx.machine.numCores()));
    }
    for (auto &job : jobs) {
        job->windowStart = opts.runWindow.warmupNs;
        job->start();
    }

    opts.runWindow.settle(sys.ctx);
    opts.runWindow.finish(sys.ctx);

    FioResult r;
    std::uint64_t ios = 0;
    for (const auto &job : jobs)
        ios += job->completed;
    r.common.opsPerSec = opts.runWindow.perSecond(ios);
    r.common.cpuPct = opts.runWindow.cpuPct(sys.ctx);
    r.common.memGBps =
        sys.ctx.memBw.achievedGBps(opts.runWindow.measureNs);
    r.common.stats = sys.ctx.stats.snapshot();
    r.common.trace =
        sys.ctx.tracer.bundle(sys.ctx.machine, p.cost.cpuGhz);
    r.throughputGBps = r.common.opsPerSec * opts.blockBytes / 1e9;
    return r;
}

} // namespace damn::work
