/**
 * @file
 * Sharded scale-out netperf implementation.
 */

#include "workloads/sharded.hh"

#include <memory>
#include <string>
#include <vector>

namespace damn::work {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void
fold(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
}

void
foldStr(std::uint64_t &h, const std::string &s)
{
    for (const char c : s) {
        h ^= std::uint8_t(c);
        h *= kFnvPrime;
    }
}

/** One machine shard: a full System plus its stream state. */
struct ShardState
{
    NetperfRun run;
    std::unique_ptr<net::StreamEngine> streams;
    std::uint64_t telemetryRx = 0;
    std::uint64_t telemetryHash = 0;
    std::uint64_t segsAtWarmup = 0;
    std::uint64_t bytesAtWarmup = 0;
};

/** Periodic cross-shard heartbeat: one per shard, rescheduling itself
 *  on the source engine and promising silence until the next tick —
 *  the promise, not the wire latency, sets the window width. */
struct Telemetry
{
    sim::ShardedEngine *se = nullptr;
    sim::Engine *srcEng = nullptr;
    sim::Engine *dstEng = nullptr;
    ShardState *dst = nullptr;
    unsigned channel = 0;
    unsigned srcShard = 0;
    sim::TimeNs period = 0;
    std::uint64_t seq = 0;

    void
    tick()
    {
        const sim::TimeNs at = srcEng->now();
        ++seq;
        ShardState *d = dst;
        sim::Engine *de = dstEng;
        const unsigned src = srcShard;
        const std::uint64_t n = seq;
        se->send(channel, [d, de, src, n] {
            ++d->telemetryRx;
            fold(d->telemetryHash, src);
            fold(d->telemetryHash, n);
            fold(d->telemetryHash, de->now());
        });
        se->promiseNoSendBefore(channel, at + period);
        srcEng->scheduleIn(period, [this] { tick(); });
    }
};

} // namespace

ShardedNetperfResult
runShardedNetperf(const ShardedNetperfOpts &opts)
{
    const unsigned k = opts.plan.shards > 0 ? opts.plan.shards : 1;
    const sim::TimeNs link =
        opts.plan.resolvedLinkNs(opts.sysParams.cost);

    std::vector<std::unique_ptr<ShardState>> shards;
    std::vector<std::unique_ptr<Telemetry>> heartbeats;
    sim::ShardedEngine se;

    NetperfOpts base;
    base.scheme = opts.scheme;
    base.mode = opts.mode;
    base.instances = opts.instancesPerShard;
    base.segBytes = opts.segBytes;
    base.window = opts.window;
    base.costFactor = opts.costFactor;
    base.runWindow = opts.runWindow;
    base.sysParams = opts.sysParams;

    for (unsigned s = 0; s < k; ++s) {
        auto st = std::make_unique<ShardState>();
        st->run = makeNetperfSystem(base);
        net::StreamConfig sc;
        sc.warmupNs = opts.runWindow.warmupNs;
        sc.measureNs = opts.runWindow.measureNs;
        sc.costFactor = opts.costFactor;
        st->streams = std::make_unique<net::StreamEngine>(
            *st->run.sys, *st->run.nic, *st->run.stack, sc);
        addNetperfFlows(st->run, *st->streams, base);
        se.addShard("machine" + std::to_string(s),
                    st->run.sys->ctx.engine);
        shards.push_back(std::move(st));
    }

    // Telemetry ring s -> (s+1) % k through the ToR (skipped for a
    // single shard, which has nothing to talk to).
    if (k > 1) {
        for (unsigned s = 0; s < k; ++s) {
            const unsigned d = (s + 1) % k;
            const unsigned ch = se.connect(s, d, link);
            auto hb = std::make_unique<Telemetry>();
            hb->se = &se;
            hb->srcEng = &shards[s]->run.sys->ctx.engine;
            hb->dstEng = &shards[d]->run.sys->ctx.engine;
            hb->dst = shards[d].get();
            hb->channel = ch;
            hb->srcShard = s;
            hb->period = opts.plan.telemetryPeriodNs;
            // Quiet until the first tick: the window opens at the full
            // telemetry period right away.
            se.promiseNoSendBefore(ch, hb->period);
            Telemetry *raw = hb.get();
            raw->srcEng->schedule(raw->period, [raw] { raw->tick(); });
            heartbeats.push_back(std::move(hb));
        }
    }

    for (auto &st : shards)
        st->streams->startAll();

    if (opts.stallBudgetEvents != 0) {
        std::vector<ShardState *> raw;
        for (auto &st : shards)
            raw.push_back(st.get());
        se.armWatchdog(
            opts.stallBudgetEvents,
            [raw](unsigned s) {
                return raw[s]->streams->totalSegments() +
                       raw[s]->telemetryRx;
            });
    }

    ShardedNetperfResult r;

    // Warmup phase, then reset the busy-time/bandwidth accounting on
    // every shard so the measurement window is clean (the sharded
    // analogue of RunWindow::settle).
    r.events += se.run(opts.runWindow.warmupNs, opts.workers);
    r.rounds += se.lastRunStats().rounds;
    r.lockstepRounds += se.lastRunStats().lockstepRounds;
    r.messages += se.lastRunStats().messages;
    for (const sim::ShardStall &st : se.stalls())
        r.stalls.push_back(st);
    for (auto &st : shards) {
        sim::Context &ctx = st->run.sys->ctx;
        ctx.machine.resetAccounting();
        ctx.memBw.resetAccounting();
        ctx.tracer.resetWindow();
        st->segsAtWarmup = st->streams->totalSegments();
        st->bytesAtWarmup = st->streams->totalBytes();
    }

    if (r.stalls.empty()) {
        r.events += se.run(opts.runWindow.endNs(), opts.workers);
        r.rounds += se.lastRunStats().rounds;
        r.lockstepRounds += se.lastRunStats().lockstepRounds;
        r.messages += se.lastRunStats().messages;
        for (const sim::ShardStall &st : se.stalls())
            r.stalls.push_back(st);
    }

    std::uint64_t h = kFnvOffset;
    double cpuSum = 0.0;
    for (unsigned s = 0; s < k; ++s) {
        ShardState &st = *shards[s];
        sim::Context &ctx = st.run.sys->ctx;
        const std::uint64_t segs =
            st.streams->totalSegments() - st.segsAtWarmup;
        const std::uint64_t bytes =
            st.streams->totalBytes() - st.bytesAtWarmup;
        r.segments += segs;
        r.bytes += bytes;
        r.telemetryReceived += st.telemetryRx;
        cpuSum += opts.runWindow.cpuPct(ctx);
        fold(h, ctx.engine.dispatched());
        fold(h, ctx.engine.now());
        fold(h, segs);
        fold(h, bytes);
        fold(h, st.telemetryRx);
        fold(h, st.telemetryHash);
        fold(h, st.streams->totalDrops());
        fold(h, st.streams->totalRetransmits());
        for (const auto &[name, value] : ctx.stats.all()) {
            foldStr(h, name);
            fold(h, value);
        }
    }
    r.digest = h;
    r.cpuPct = k > 0 ? cpuSum / k : 0.0;
    r.gbps = opts.runWindow.measureNs == 0
                 ? 0.0
                 : sim::bytesPerNsToGbps(
                       double(r.bytes) /
                       double(opts.runWindow.measureNs));
    return r;
}

} // namespace damn::work
