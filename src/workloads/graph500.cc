/**
 * @file
 * Graph500 BFS kernel + DES co-runner.
 */

#include "workloads/graph500.hh"

#include <algorithm>
#include <cassert>
#include <queue>

#include "workloads/netperf.hh"

namespace damn::work {

Graph
Graph::generate(unsigned scale, unsigned edgefactor, std::uint64_t seed)
{
    const std::uint64_t v = 1ull << scale;
    const std::uint64_t e = v * edgefactor;
    sim::Rng rng(seed);

    // Kronecker-flavored generator (R-MAT with Graph500's A/B/C
    // parameters 0.57/0.19/0.19): recursive quadrant descent.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    edges.reserve(e);
    for (std::uint64_t i = 0; i < e; ++i) {
        std::uint64_t src = 0, dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.uniform();
            // quadrant probabilities: a=.57, b=.19, c=.19, d=.05
            const int quad = r < 0.57 ? 0 : r < 0.76 ? 1 : r < 0.95 ? 2
                                                                    : 3;
            src = (src << 1) | std::uint64_t(quad >> 1);
            dst = (dst << 1) | std::uint64_t(quad & 1);
        }
        edges.emplace_back(std::uint32_t(src), std::uint32_t(dst));
    }

    // Build a symmetric CSR (undirected; self-loops kept, Graph500
    // drops them only during validation).
    Graph g;
    g.offsets_.assign(v + 1, 0);
    for (const auto &[s, d] : edges) {
        ++g.offsets_[s + 1];
        ++g.offsets_[d + 1];
    }
    for (std::uint64_t i = 1; i <= v; ++i)
        g.offsets_[i] += g.offsets_[i - 1];
    g.targets_.resize(g.offsets_[v]);
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const auto &[s, d] : edges) {
        g.targets_[cursor[s]++] = d;
        g.targets_[cursor[d]++] = s;
    }
    return g;
}

BfsResult
bfs(const Graph &g, std::uint32_t root)
{
    BfsResult r;
    r.parent.assign(g.numVertices(), -1);
    r.parent[root] = root;
    std::vector<std::uint32_t> frontier{root};
    std::vector<std::uint32_t> next;
    r.verticesVisited = 1;

    while (!frontier.empty()) {
        next.clear();
        for (const std::uint32_t u : frontier) {
            for (const std::uint32_t *p = g.neighborsBegin(u);
                 p != g.neighborsEnd(u); ++p) {
                ++r.edgesTraversed;
                const std::uint32_t w = *p;
                if (r.parent[w] == -1) {
                    r.parent[w] = u;
                    next.push_back(w);
                    ++r.verticesVisited;
                }
            }
        }
        frontier.swap(next);
    }
    return r;
}

bool
validateBfs(const Graph &g, std::uint32_t root, const BfsResult &r)
{
    if (r.parent[root] != std::int64_t(root))
        return false;

    // Compute levels by walking parent chains; detect cycles.
    const std::uint64_t v = g.numVertices();
    std::vector<std::int64_t> level(v, -1);
    level[root] = 0;
    for (std::uint32_t u = 0; u < v; ++u) {
        if (r.parent[u] < 0 || level[u] >= 0)
            continue;
        // Walk up to the root or a known level.
        std::vector<std::uint32_t> chain;
        std::uint32_t w = u;
        while (level[w] < 0) {
            chain.push_back(w);
            w = std::uint32_t(r.parent[w]);
            if (chain.size() > v)
                return false; // cycle
        }
        std::int64_t lvl = level[w];
        for (auto it = chain.rbegin(); it != chain.rend(); ++it)
            level[*it] = ++lvl;
    }

    // Each non-root tree edge must exist and span exactly one level.
    for (std::uint32_t u = 0; u < v; ++u) {
        if (r.parent[u] < 0 || u == root)
            continue;
        const auto p = std::uint32_t(r.parent[u]);
        if (level[u] != level[p] + 1)
            return false;
        const bool edge_exists =
            std::find(g.neighborsBegin(p), g.neighborsEnd(p), u) !=
            g.neighborsEnd(p);
        if (!edge_exists)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// BfsCorunner
// ---------------------------------------------------------------------

BfsCorunner::BfsCorunner(sim::Context &ctx, Config cfg)
    : ctx_(ctx), cfg_(cfg), stats_(ctx.stats, "bfs")
{}

void
BfsCorunner::start()
{
    // Stagger the workers: real BFS teams are not phase-locked, and a
    // synchronized start would make every worker sample the memory
    // controllers right after the whole team injected its quanta.
    const auto period = sim::TimeNs(double(cfg_.quantumBytes) /
                                    cfg_.perCoreBytesPerNs);
    for (unsigned t = 0; t < cfg_.teams; ++t) {
        for (unsigned m = 0; m < cfg_.coresPerTeam; ++m) {
            ctx_.engine.scheduleIn(ctx_.rng.below(period),
                                   [this, t, m] { runQuantum(t, m); });
        }
    }
}

void
BfsCorunner::runQuantum(unsigned team, unsigned member)
{
    const unsigned core_id =
        cfg_.firstCore + team * cfg_.coresPerTeam + member;
    sim::Core &core = ctx_.machine.core(core_id);
    sim::CpuCursor cpu(core, ctx_.now());

    // Jitter the quantum size (frontier sizes vary wildly across BFS
    // levels); this also keeps workers from re-synchronizing.
    const std::uint64_t chunk = cfg_.quantumBytes / 2 +
        ctx_.rng.below(cfg_.quantumBytes);
    // BFS is memory-bound: the quantum's time is its edge traffic at
    // the kernel's uncontended streaming rate, stretched when the
    // shared memory controllers are congested (processor-sharing
    // approximation, like CPU copies), plus a small compute share.
    const double stall =
        sim::memStallFactor(ctx_.memBw.utilization(cpu.time));
    const double mem_ns =
        double(chunk) / cfg_.perCoreBytesPerNs * stall;
    cpu.charge(sim::TimeNs(mem_ns * (1.0 + cfg_.computeFraction)));
    ctx_.memBw.occupy(cpu.time, chunk);

    if (cpu.time >= windowStart_) {
        processedBytes_ += chunk;
        stats_.add("quanta");
        stats_.add("bytes", chunk);
    }

    ctx_.engine.schedule(cpu.time,
                         [this, team, member] { runQuantum(team, member); });
}

double
BfsCorunner::meanIterationSeconds(sim::TimeNs now) const
{
    if (processedBytes_ == 0 || now <= windowStart_)
        return 0.0;
    const double window_s = double(now - windowStart_) / 1e9;
    const double iterations = double(processedBytes_) /
        (double(cfg_.bytesPerIteration) * cfg_.teams);
    return window_s / (iterations / 1.0);
}

// ---------------------------------------------------------------------
// runNetGraphCorun
// ---------------------------------------------------------------------

CorunResult
runNetGraphCorun(const CorunOpts &opts)
{
    NetperfOpts o;
    o.scheme = opts.scheme;
    o.mode = NetMode::Bidi;
    o.instances = 8; // 4 RX + 4 TX over 4 cores, 2 per CPU
    o.coreLimit = 4;
    // Few flows => LRO aggregates fully, as in the single-core test.
    o.segBytes = 64 * 1024;
    o.costFactor = 1.2;
    o.runWindow = opts.runWindow;

    NetperfRun run = makeNetperfSystem(o);
    std::unique_ptr<BfsCorunner> bfs;
    if (opts.withGraph) {
        bfs = std::make_unique<BfsCorunner>(run.sys->ctx, opts.bfs);
        bfs->start();
    }

    CorunResult r;
    if (opts.withNet) {
        net::StreamConfig sc;
        sc.warmupNs = o.runWindow.warmupNs;
        sc.measureNs = o.runWindow.measureNs;
        sc.costFactor = o.costFactor;
        net::StreamEngine eng(*run.sys, *run.nic, *run.stack, sc);
        work::addNetperfFlows(run, eng, o);
        if (bfs) {
            run.sys->ctx.engine.scheduleIn(
                o.runWindow.warmupNs,
                [&] { bfs->resetWindow(o.runWindow.warmupNs); });
        }
        r.net = toCommon(eng.run(), o.runWindow);
    } else {
        assert(bfs && "a co-run needs at least one side");
        opts.runWindow.settle(run.sys->ctx);
        bfs->resetWindow(run.sys->ctx.now());
        opts.runWindow.finish(run.sys->ctx);
    }
    if (bfs)
        r.iterSeconds = bfs->meanIterationSeconds(run.sys->ctx.now());
    r.net.stats = run.sys->ctx.stats.snapshot();
    return r;
}

} // namespace damn::work
