/**
 * @file
 * Graph500 BFS workload (paper sections 4.2, 6.4 / figure 2).
 *
 * Two pieces:
 *  - a *real* CSR graph + BFS kernel (`Graph`, `bfs`) used by tests and
 *    examples, faithful to the Graph500 reference: Kronecker-style
 *    random edges, top-down level-synchronous BFS with a validation
 *    pass;
 *  - a DES co-runner (`BfsCorunner`) that reproduces the benchmark's
 *    *resource footprint* on the simulated machine: each BFS iteration
 *    streams the edge array through the memory controllers from a team
 *    of cores, so its iteration time stretches when something else
 *    (shadow buffers' extra copies) cannibalizes memory bandwidth.
 */

#ifndef DAMN_WORK_GRAPH500_HH
#define DAMN_WORK_GRAPH500_HH

#include <cstdint>
#include <vector>

#include "dma/schemes.hh"
#include "sim/context.hh"
#include "sim/cpu_cursor.hh"
#include "sim/rng.hh"
#include "workloads/run_window.hh"

namespace damn::work {

/** Compressed-sparse-row undirected graph. */
class Graph
{
  public:
    /**
     * Generate a random graph with 2^scale vertices and roughly
     * edgefactor * 2^scale undirected edges (Graph500 terminology).
     */
    static Graph generate(unsigned scale, unsigned edgefactor,
                          std::uint64_t seed);

    std::uint64_t numVertices() const { return offsets_.size() - 1; }
    std::uint64_t numEdges() const { return targets_.size(); }

    /** Neighbors of @p v. */
    const std::uint32_t *
    neighborsBegin(std::uint32_t v) const
    {
        return targets_.data() + offsets_[v];
    }
    const std::uint32_t *
    neighborsEnd(std::uint32_t v) const
    {
        return targets_.data() + offsets_[v + 1];
    }

    std::uint32_t
    degree(std::uint32_t v) const
    {
        return std::uint32_t(offsets_[v + 1] - offsets_[v]);
    }

  private:
    std::vector<std::uint64_t> offsets_; //!< size V+1
    std::vector<std::uint32_t> targets_;
};

/** BFS result: parent array (-1 == unreached). */
struct BfsResult
{
    std::vector<std::int64_t> parent;
    std::uint64_t verticesVisited = 0;
    std::uint64_t edgesTraversed = 0;
};

/** Level-synchronous top-down BFS from @p root. */
BfsResult bfs(const Graph &g, std::uint32_t root);

/**
 * Validate a BFS tree per the Graph500 rules: the root is its own
 * parent, every tree edge exists in the graph, and levels differ by
 * exactly one along tree edges.
 */
bool validateBfs(const Graph &g, std::uint32_t root, const BfsResult &r);

/**
 * The figure-2 co-runner: @p teams teams of @p cores_per_team cores
 * each repeatedly run one BFS iteration whose edge traffic streams
 * through the shared memory-bandwidth server.
 */
class BfsCorunner
{
  public:
    struct Config
    {
        unsigned teams = 3;
        unsigned coresPerTeam = 8;
        /** First core id to use (netperf owns the lower ids). */
        unsigned firstCore = 4;
        /**
         * Edge traffic per BFS iteration per team (2^20 vertices x
         * degree 256 ~ 268M directed edges streamed with metadata).
         */
        std::uint64_t bytesPerIteration = 8ull << 30;
        /** Uncontended per-core streaming bandwidth of the BFS kernel
         *  (random-access bound), B/ns. */
        double perCoreBytesPerNs = 1.8;
        /** Compute overhead as a fraction of memory time. */
        double computeFraction = 0.10;
        /** Memory-traffic quantum per event, bytes. */
        std::uint64_t quantumBytes = 256 * 1024;
    };

    BfsCorunner(sim::Context &ctx, Config cfg);

    /** Start all teams iterating (runs until the engine stops). */
    void start();

    /** Mean seconds per BFS iteration, from the fractional progress
     *  made between resetWindow() and @p now. */
    double meanIterationSeconds(sim::TimeNs now) const;

    void
    resetWindow(sim::TimeNs now)
    {
        windowStart_ = now;
        processedBytes_ = 0;
    }

  private:
    void runQuantum(unsigned team, unsigned member);

    sim::Context &ctx_;
    Config cfg_;
    sim::ScopedStats stats_;
    std::uint64_t processedBytes_ = 0;
    sim::TimeNs windowStart_ = 0;
};

/**
 * The figure-2 experiment: bidirectional netperf on the first 4 cores
 * beside 3 x 8-core Graph500 BFS teams, under one protection scheme.
 * Either side can be disabled to obtain the solo baselines.
 */
struct CorunOpts
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    bool withNet = true;
    bool withGraph = true;
    RunWindow runWindow{30 * sim::kNsPerMs, 300 * sim::kNsPerMs};
    BfsCorunner::Config bfs{};
};

/** Co-run result: netperf reports uniformly; the BFS side reports its
 *  mean iteration time (the paper's figure-2 metric). */
struct CorunResult
{
    CommonResult net;          //!< zeros when withNet is false
    double iterSeconds = 0.0;  //!< 0 when withGraph is false
};

CorunResult runNetGraphCorun(const CorunOpts &opts);

} // namespace damn::work

#endif // DAMN_WORK_GRAPH500_HH
