/**
 * @file
 * Buddy page allocator with NUMA zones.
 *
 * The functional analog of Linux's zoned buddy allocator: physically
 * contiguous order-k blocks, split/merge on demand, one zone per NUMA
 * node with fallback to remote nodes on exhaustion.  DAMN's depot layer
 * sits directly on top of this (paper section 5.4), as does the kmalloc
 * slab layer.
 */

#ifndef DAMN_MEM_PAGE_ALLOC_HH
#define DAMN_MEM_PAGE_ALLOC_HH

#include <cstdint>
#include <set>
#include <vector>

#include "mem/phys.hh"
#include "sim/types.hh"

namespace damn::mem {

/** Returned when an allocation cannot be satisfied. */
constexpr Pfn kInvalidPfn = ~Pfn{0};

/** Zoned buddy allocator over a PhysicalMemory. */
class PageAllocator
{
  public:
    static constexpr unsigned kMaxOrder = 10; //!< up to 4 MiB blocks

    /**
     * @param pm     backing physical memory; frame 0 is reserved so
     *               Pa 0 can serve as a null pointer.
     * @param zones  number of NUMA zones; the frame space is split
     *               equally among them.
     */
    PageAllocator(PhysicalMemory &pm, unsigned zones = 2);

    PageAllocator(const PageAllocator &) = delete;
    PageAllocator &operator=(const PageAllocator &) = delete;

    /**
     * Allocate 2^order physically contiguous pages, preferring
     * @p node, falling back to other zones.
     *
     * @param zero  scrub the block before returning it.
     * @return head pfn, or kInvalidPfn if memory is exhausted.
     */
    Pfn allocPages(unsigned order, sim::NumaId node = 0, bool zero = false);

    /** Free a block previously returned by allocPages. */
    void freePages(Pfn pfn, unsigned order);

    /** NUMA node owning a frame. */
    sim::NumaId nodeOf(Pfn pfn) const;

    /** Frames currently allocated (any order). */
    std::uint64_t allocatedFrames() const { return allocatedFrames_; }
    /** Free frames in a zone. */
    std::uint64_t freeFramesInZone(unsigned zone) const;
    /** Total free frames. */
    std::uint64_t freeFrames() const;
    /** Lifetime allocation count (calls, not frames). */
    std::uint64_t allocCalls() const { return allocCalls_; }

    PhysicalMemory &phys() { return pm_; }

  private:
    struct Zone
    {
        Pfn base;
        Pfn frames;
        // Free blocks per order; ordered sets make splits/merges
        // deterministic and allow O(log n) removal of a specific buddy.
        std::vector<std::set<Pfn>> free;
        std::uint64_t freeFrames = 0;
    };

    Pfn allocFromZone(Zone &z, unsigned order, bool zero);
    void freeToZone(Zone &z, Pfn pfn, unsigned order);
    Zone &zoneOf(Pfn pfn);

    PhysicalMemory &pm_;
    std::vector<Zone> zones_;
    std::uint64_t allocatedFrames_ = 0;
    std::uint64_t allocCalls_ = 0;
};

} // namespace damn::mem

#endif // DAMN_MEM_PAGE_ALLOC_HH
