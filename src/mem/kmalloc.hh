/**
 * @file
 * Size-class slab allocator: the simulated kernel's kmalloc.
 *
 * Deliberately reproduces the property the paper exploits to motivate
 * byte-granularity protection: unrelated allocations are co-located on
 * the same physical page, so page-granularity IOMMU mappings of a
 * kmalloc()ed DMA buffer expose neighbouring kernel data to the device
 * (paper section 4.1, "partial protection").  Security tests allocate a
 * "secret" next to a packet buffer and verify which protection schemes
 * let a malicious device read it.
 */

#ifndef DAMN_MEM_KMALLOC_HH
#define DAMN_MEM_KMALLOC_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/page_alloc.hh"
#include "mem/phys.hh"

namespace damn::mem {

/** Slab-style kmalloc over the buddy allocator. */
class KmallocHeap
{
  public:
    /** kmalloc size classes, bytes (power-of-two like Linux's). */
    static constexpr std::array<std::uint32_t, 10> kClasses = {
        8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
    };

    explicit KmallocHeap(PageAllocator &pa) : pa_(pa)
    {
        slabs_.resize(kClasses.size());
    }

    KmallocHeap(const KmallocHeap &) = delete;
    KmallocHeap &operator=(const KmallocHeap &) = delete;

    /**
     * Allocate @p size bytes (<= 4096), 8-byte aligned, physically
     * contiguous.  Larger requests must use the page allocator, as in
     * Linux.
     * @return kernel address (Pa), or 0 on exhaustion.
     */
    Pa kmalloc(std::uint32_t size);

    /** Free a kmalloc()ed object. */
    void kfree(Pa addr);

    /** Size class that would serve a request of @p size bytes. */
    static unsigned classFor(std::uint32_t size);

    /** Bytes currently allocated (object granularity). */
    std::uint64_t allocatedBytes() const { return allocatedBytes_; }
    /** Live objects. */
    std::uint64_t liveObjects() const { return liveObjects_; }
    /** Pages pinned by the heap (partially-full slabs included). */
    std::uint64_t pinnedPages() const { return pinnedPages_; }
    /** Slab refills that failed (page allocator exhausted). */
    std::uint64_t refillFails() const { return refillFails_; }

  private:
    struct SlabClass
    {
        std::vector<Pa> freeList;   //!< free objects, LIFO
        std::uint64_t pages = 0;
    };

    /** Grow a size class by one slab page; false on page exhaustion. */
    bool refill(unsigned cls);

    PageAllocator &pa_;
    std::vector<SlabClass> slabs_;
    std::uint64_t allocatedBytes_ = 0;
    std::uint64_t liveObjects_ = 0;
    std::uint64_t pinnedPages_ = 0;
    std::uint64_t refillFails_ = 0;
};

} // namespace damn::mem

#endif // DAMN_MEM_KMALLOC_HH
