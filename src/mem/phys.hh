/**
 * @file
 * Byte-accurate simulated physical memory and the page-struct array.
 *
 * Mirrors the Linux model the paper leans on: every physical 4 KiB
 * frame has a `struct page` in a flat array, enabling constant-time
 * conversion between physical addresses and page structs (paper
 * section 5.1).  Kernel virtual addresses are identity-mapped to
 * physical addresses (the direct map), so a `Pa` doubles as the kernel
 * pointer throughout the codebase.
 *
 * Frames are backed lazily so experiments can declare multi-GiB
 * machines while touching only the pages they actually use.
 */

#ifndef DAMN_MEM_PHYS_HH
#define DAMN_MEM_PHYS_HH

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace damn::mem {

/** Physical address (also the kernel direct-map virtual address). */
using Pa = std::uint64_t;
/** Page frame number. */
using Pfn = std::uint64_t;

constexpr unsigned kPageShift = 12;
constexpr std::uint64_t kPageSize = 1ull << kPageShift;

constexpr Pfn paToPfn(Pa pa) { return pa >> kPageShift; }
constexpr Pa pfnToPa(Pfn pfn) { return pfn << kPageShift; }
constexpr std::uint64_t pageOffset(Pa pa) { return pa & (kPageSize - 1); }

/** Page flags (subset of Linux's, plus DAMN's F flag). */
enum PageFlag : std::uint32_t
{
    PG_head = 1u << 0,          //!< first page of a compound
    PG_tail = 1u << 1,          //!< non-first page of a compound
    PG_slab = 1u << 2,          //!< owned by the kmalloc slab layer
    PG_reserved = 1u << 3,      //!< not available to the allocator
    PG_damn = 1u << 4,          //!< DAMN's F flag (set on the *third*
                                //!< page of a DAMN compound, section 5.5)
    PG_dma_mapped = 1u << 5,    //!< currently mapped in the IOMMU
    PG_ever_dma = 1u << 6,      //!< was mapped for DMA at least once
};

/**
 * Per-frame OS metadata, the analog of Linux's `struct page`.
 *
 * DAMN-specific fields (iova, cacheId) live in the *tail* page structs
 * of a compound, exactly as the paper does to avoid growing the page
 * struct (section 5.5); helpers in core/compound.hh enforce that
 * placement.
 */
struct Page
{
    std::uint32_t flags = 0;
    std::int32_t refcount = 0;
    std::uint8_t order = 0;     //!< compound order (head page only)
    Pfn compoundHead = 0;       //!< head pfn (tail pages only)

    // Fields reused for subsystem-private data (valid per context):
    std::uint64_t priv = 0;     //!< DAMN: chunk IOVA (tail page 1)
    std::uint32_t priv2 = 0;    //!< DAMN: owning DMA-cache id (tail 1)
    std::uint32_t slabClass = 0;//!< kmalloc: size-class index

    bool test(PageFlag f) const { return flags & f; }
    void set(PageFlag f) { flags |= f; }
    void clearFlag(PageFlag f) { flags &= ~std::uint32_t(f); }
};

/**
 * The machine's physical memory: lazily-backed 4 KiB frames plus the
 * page-struct array.
 */
class PhysicalMemory
{
  public:
    /** @param bytes total physical memory size; must be page-aligned. */
    explicit PhysicalMemory(std::uint64_t bytes)
        : numFrames_(bytes >> kPageShift),
          frames_(numFrames_),
          pages_(numFrames_)
    {
        assert(bytes % kPageSize == 0);
        assert(numFrames_ > 0);
    }

    std::uint64_t sizeBytes() const { return numFrames_ * kPageSize; }
    Pfn numFrames() const { return numFrames_; }

    /** Page struct for a frame (constant time, like Linux's memmap). */
    Page &page(Pfn pfn) { assert(pfn < numFrames_); return pages_[pfn]; }
    const Page &
    page(Pfn pfn) const
    {
        assert(pfn < numFrames_);
        return pages_[pfn];
    }

    /** Page struct for the frame containing @p pa. */
    Page &pageOf(Pa pa) { return page(paToPfn(pa)); }

    /** Pfn of a page struct (reverse of page()). */
    Pfn
    pfnOf(const Page &pg) const
    {
        return Pfn(&pg - pages_.data());
    }

    /** Write @p len bytes at @p pa (may cross frames). */
    void write(Pa pa, const void *src, std::uint64_t len);
    /** Read @p len bytes at @p pa (may cross frames). */
    void read(Pa pa, void *dst, std::uint64_t len) const;
    /** Fill @p len bytes at @p pa with @p value. */
    void fill(Pa pa, std::uint8_t value, std::uint64_t len);
    /** Copy @p len bytes within physical memory. */
    void copy(Pa dst, Pa src, std::uint64_t len);
    /** Read one byte. */
    std::uint8_t readByte(Pa pa) const;
    /** Write one byte. */
    void writeByte(Pa pa, std::uint8_t v);

    /** Number of frames that have been touched (backed). */
    std::uint64_t backedFrames() const { return backed_; }

  private:
    using Frame = std::array<std::uint8_t, kPageSize>;

    std::uint8_t *
    backing(Pfn pfn)
    {
        assert(pfn < numFrames_);
        auto &f = frames_[pfn];
        if (!f) {
            f = std::make_unique<Frame>();
            f->fill(0);
            ++backed_;
        }
        return f->data();
    }

    const std::uint8_t *
    backingConst(Pfn pfn) const
    {
        // Reads of never-written frames observe zeros without backing
        // them; a static zero frame serves all such reads.
        static const Frame kZero{};
        assert(pfn < numFrames_);
        const auto &f = frames_[pfn];
        return f ? f->data() : kZero.data();
    }

    Pfn numFrames_;
    std::vector<std::unique_ptr<Frame>> frames_;
    std::vector<Page> pages_;
    std::uint64_t backed_ = 0;
};

} // namespace damn::mem

#endif // DAMN_MEM_PHYS_HH
