/**
 * @file
 * Buddy allocator implementation.
 */

#include "mem/page_alloc.hh"

#include <cassert>

namespace damn::mem {

namespace {

/** Marks a free buddy block: head page carries order + this flag. */
constexpr std::uint32_t kBuddyFree = 1u << 31;

} // namespace

PageAllocator::PageAllocator(PhysicalMemory &pm, unsigned zones)
    : pm_(pm)
{
    assert(zones >= 1);
    const Pfn per_zone = pm.numFrames() / zones;
    assert(per_zone >= (1ull << kMaxOrder));
    zones_.resize(zones);
    for (unsigned zi = 0; zi < zones; ++zi) {
        Zone &z = zones_[zi];
        z.base = per_zone * zi;
        z.frames = per_zone;
        z.free.resize(kMaxOrder + 1);
        // Seed the free lists with max-order blocks.  Frame 0 stays
        // reserved (null); the first max-order block of zone 0 is
        // donated frame-by-frame minus frame 0 -- simpler: skip the
        // whole first block of zone 0 and mark it reserved.
        Pfn start = z.base;
        if (zi == 0) {
            for (Pfn p = 0; p < (1ull << kMaxOrder); ++p)
                pm_.page(p).set(PG_reserved);
            start += 1ull << kMaxOrder;
        }
        const Pfn end = z.base + z.frames;
        for (Pfn p = start; p + (1ull << kMaxOrder) <= end;
             p += 1ull << kMaxOrder) {
            z.free[kMaxOrder].insert(p);
            z.freeFrames += 1ull << kMaxOrder;
            Page &pg = pm_.page(p);
            pg.order = kMaxOrder;
            pg.flags |= kBuddyFree;
        }
    }
}

sim::NumaId
PageAllocator::nodeOf(Pfn pfn) const
{
    for (unsigned zi = 0; zi < zones_.size(); ++zi) {
        const Zone &z = zones_[zi];
        if (pfn >= z.base && pfn < z.base + z.frames)
            return sim::NumaId(zi);
    }
    return 0;
}

PageAllocator::Zone &
PageAllocator::zoneOf(Pfn pfn)
{
    return zones_[nodeOf(pfn)];
}

Pfn
PageAllocator::allocFromZone(Zone &z, unsigned order, bool zero)
{
    // Find the smallest available order >= requested.
    unsigned o = order;
    while (o <= kMaxOrder && z.free[o].empty())
        ++o;
    if (o > kMaxOrder)
        return kInvalidPfn;

    const Pfn pfn = *z.free[o].begin();
    z.free[o].erase(z.free[o].begin());
    pm_.page(pfn).flags &= ~kBuddyFree;

    // Split down to the requested order, returning the upper halves
    // to the free lists.
    while (o > order) {
        --o;
        const Pfn buddy = pfn + (1ull << o);
        Page &bpg = pm_.page(buddy);
        bpg.order = std::uint8_t(o);
        bpg.flags |= kBuddyFree;
        z.free[o].insert(buddy);
    }

    Page &pg = pm_.page(pfn);
    pg.order = std::uint8_t(order);
    pg.refcount = 1;

    const Pfn frames = 1ull << order;
    z.freeFrames -= frames;
    allocatedFrames_ += frames;
    ++allocCalls_;

    if (zero)
        pm_.fill(pfnToPa(pfn), 0, frames * kPageSize);
    return pfn;
}

Pfn
PageAllocator::allocPages(unsigned order, sim::NumaId node, bool zero)
{
    assert(order <= kMaxOrder);
    const unsigned nz = unsigned(zones_.size());
    for (unsigned i = 0; i < nz; ++i) {
        const unsigned zi = (node + i) % nz;
        const Pfn pfn = allocFromZone(zones_[zi], order, zero);
        if (pfn != kInvalidPfn)
            return pfn;
    }
    return kInvalidPfn;
}

void
PageAllocator::freeToZone(Zone &z, Pfn pfn, unsigned order)
{
    // Coalesce with free buddies as far as possible.
    while (order < kMaxOrder) {
        const Pfn buddy = pfn ^ (1ull << order);
        if (buddy < z.base || buddy + (1ull << order) > z.base + z.frames)
            break;
        Page &bpg = pm_.page(buddy);
        if (!(bpg.flags & kBuddyFree) || bpg.order != order)
            break;
        z.free[order].erase(buddy);
        bpg.flags &= ~kBuddyFree;
        pfn = pfn < buddy ? pfn : buddy;
        ++order;
    }
    Page &pg = pm_.page(pfn);
    pg.order = std::uint8_t(order);
    pg.flags |= kBuddyFree;
    z.free[order].insert(pfn);
}

void
PageAllocator::freePages(Pfn pfn, unsigned order)
{
    assert(order <= kMaxOrder);
    Page &pg = pm_.page(pfn);
    assert(!(pg.flags & kBuddyFree) && "double free");
    pg.refcount = 0;
    // Clear per-page metadata across the block so reuse starts clean.
    for (Pfn p = pfn; p < pfn + (1ull << order); ++p) {
        Page &tp = pm_.page(p);
        tp.flags &= kBuddyFree; // wipe everything but the buddy bit
        tp.compoundHead = 0;
        tp.priv = 0;
        tp.priv2 = 0;
        tp.slabClass = 0;
    }

    Zone &z = zoneOf(pfn);
    const Pfn frames = 1ull << order;
    z.freeFrames += frames;
    assert(allocatedFrames_ >= frames);
    allocatedFrames_ -= frames;
    freeToZone(z, pfn, order);
}

std::uint64_t
PageAllocator::freeFramesInZone(unsigned zone) const
{
    assert(zone < zones_.size());
    return zones_[zone].freeFrames;
}

std::uint64_t
PageAllocator::freeFrames() const
{
    std::uint64_t t = 0;
    for (const auto &z : zones_)
        t += z.freeFrames;
    return t;
}

} // namespace damn::mem
