/**
 * @file
 * Per-core page-fragment allocator — the kernel's sk_page_frag /
 * netdev_alloc_frag mechanism that stock Linux uses for TX payload
 * buffers.
 *
 * A bump pointer carves an order-3 (32 KiB) block; each fragment takes
 * a reference on the block's head page, and the block returns to the
 * buddy allocator when the last fragment is freed.  The paper notes
 * (section 5.4) that DAMN's top-level allocator is essentially this
 * same "page frag" pattern — the difference is that DAMN's blocks are
 * permanently IOMMU-mapped chunks.
 */

#ifndef DAMN_MEM_PAGE_FRAG_HH
#define DAMN_MEM_PAGE_FRAG_HH

#include <vector>

#include "mem/page_alloc.hh"
#include "sim/context.hh"
#include "sim/cpu_cursor.hh"

namespace damn::mem {

/** Per-core bump allocator over buddy blocks with page refcounting. */
class PageFragAllocator
{
  public:
    static constexpr unsigned kBlockOrder = 5; // 128 KiB
    static constexpr std::uint64_t kBlockBytes =
        kPageSize << kBlockOrder;

    PageFragAllocator(sim::Context &ctx, PageAllocator &pa)
        : ctx_(ctx), pageAlloc_(pa),
          perCore_(ctx.machine.numCores())
    {}

    PageFragAllocator(const PageFragAllocator &) = delete;
    PageFragAllocator &operator=(const PageFragAllocator &) = delete;

    /**
     * Allocate @p size bytes (<= 32 KiB) from the calling core's
     * current block.
     * @return the fragment's address, or 0 when the buddy allocator
     *         cannot back a fresh block (memory pressure) — the caller
     *         backs off and retries, as the TX path does for a failed
     *         sk_page_frag refill.
     */
    Pa
    alloc(sim::CpuCursor &cpu, std::uint32_t size)
    {
        assert(size > 0 && size <= kBlockBytes);
        cpu.charge(ctx_.cost.pageFragNs);
        Bump &b = perCore_[cpu.id()];
        if (b.pfn == kInvalidPfn || b.offset + size > kBlockBytes) {
            retire(cpu, b);
            cpu.charge(ctx_.cost.pageAllocNs);
            b.pfn = pageAlloc_.allocPages(kBlockOrder, cpu.numa());
            if (b.pfn == kInvalidPfn) {
                ctx_.stats.add("mem.page_frag_fails");
                return 0;
            }
            b.offset = 0;
            Page &head = pageAlloc_.phys().page(b.pfn);
            head.set(PG_head);
            head.order = kBlockOrder;
            head.refcount = 1; // allocator bias
            for (Pfn p = b.pfn + 1; p < b.pfn + (1u << kBlockOrder);
                 ++p) {
                Page &tail = pageAlloc_.phys().page(p);
                tail.set(PG_tail);
                tail.compoundHead = b.pfn;
            }
        }
        const Pa pa = pfnToPa(b.pfn) + b.offset;
        b.offset += size;
        ++pageAlloc_.phys().page(b.pfn).refcount;
        return pa;
    }

    /** Drop a fragment's reference; frees the block when it was last. */
    void
    free(sim::CpuCursor &cpu, Pa addr)
    {
        cpu.charge(ctx_.cost.pageFragNs);
        auto &pm = pageAlloc_.phys();
        const Page &pg = pm.pageOf(addr);
        const Pfn head =
            pg.test(PG_head) ? paToPfn(addr) : pg.compoundHead;
        Page &hp = pm.page(head);
        assert(hp.refcount > 0);
        if (--hp.refcount == 0) {
            cpu.charge(ctx_.cost.pageAllocNs);
            pageAlloc_.freePages(head, kBlockOrder);
        }
    }

  private:
    struct Bump
    {
        Pfn pfn = kInvalidPfn;
        std::uint64_t offset = 0;
    };

    /** Drop the allocator bias on the outgoing block. */
    void
    retire(sim::CpuCursor &cpu, Bump &b)
    {
        if (b.pfn == kInvalidPfn)
            return;
        Page &hp = pageAlloc_.phys().page(b.pfn);
        assert(hp.refcount > 0);
        if (--hp.refcount == 0) {
            cpu.charge(ctx_.cost.pageAllocNs);
            pageAlloc_.freePages(b.pfn, kBlockOrder);
        }
        b.pfn = kInvalidPfn;
        b.offset = 0;
    }

    sim::Context &ctx_;
    PageAllocator &pageAlloc_;
    std::vector<Bump> perCore_;
};

} // namespace damn::mem

#endif // DAMN_MEM_PAGE_FRAG_HH
