/**
 * @file
 * PhysicalMemory data-path implementation.
 */

#include "mem/phys.hh"

#include <algorithm>

namespace damn::mem {

void
PhysicalMemory::write(Pa pa, const void *src, std::uint64_t len)
{
    const auto *s = static_cast<const std::uint8_t *>(src);
    while (len > 0) {
        const Pfn pfn = paToPfn(pa);
        const std::uint64_t off = pageOffset(pa);
        const std::uint64_t chunk = std::min(len, kPageSize - off);
        std::memcpy(backing(pfn) + off, s, chunk);
        pa += chunk;
        s += chunk;
        len -= chunk;
    }
}

void
PhysicalMemory::read(Pa pa, void *dst, std::uint64_t len) const
{
    auto *d = static_cast<std::uint8_t *>(dst);
    while (len > 0) {
        const Pfn pfn = paToPfn(pa);
        const std::uint64_t off = pageOffset(pa);
        const std::uint64_t chunk = std::min(len, kPageSize - off);
        std::memcpy(d, backingConst(pfn) + off, chunk);
        pa += chunk;
        d += chunk;
        len -= chunk;
    }
}

void
PhysicalMemory::fill(Pa pa, std::uint8_t value, std::uint64_t len)
{
    while (len > 0) {
        const Pfn pfn = paToPfn(pa);
        const std::uint64_t off = pageOffset(pa);
        const std::uint64_t chunk = std::min(len, kPageSize - off);
        std::memset(backing(pfn) + off, value, chunk);
        pa += chunk;
        len -= chunk;
    }
}

void
PhysicalMemory::copy(Pa dst, Pa src, std::uint64_t len)
{
    // Buffers never overlap in practice (distinct allocations); do a
    // simple bounce through a stack buffer per chunk to stay safe.
    std::uint8_t tmp[512];
    while (len > 0) {
        const std::uint64_t chunk = std::min<std::uint64_t>(len,
                                                            sizeof(tmp));
        read(src, tmp, chunk);
        write(dst, tmp, chunk);
        src += chunk;
        dst += chunk;
        len -= chunk;
    }
}

std::uint8_t
PhysicalMemory::readByte(Pa pa) const
{
    return backingConst(paToPfn(pa))[pageOffset(pa)];
}

void
PhysicalMemory::writeByte(Pa pa, std::uint8_t v)
{
    backing(paToPfn(pa))[pageOffset(pa)] = v;
}

} // namespace damn::mem
