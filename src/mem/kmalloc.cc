/**
 * @file
 * kmalloc slab implementation.
 */

#include "mem/kmalloc.hh"

#include <cassert>

namespace damn::mem {

unsigned
KmallocHeap::classFor(std::uint32_t size)
{
    for (unsigned i = 0; i < kClasses.size(); ++i)
        if (size <= kClasses[i])
            return i;
    assert(false && "kmalloc size > 4096; use the page allocator");
    return unsigned(kClasses.size()) - 1;
}

bool
KmallocHeap::refill(unsigned cls)
{
    const Pfn pfn = pa_.allocPages(0, 0, /*zero=*/false);
    if (pfn == kInvalidPfn) {
        // Kernel heap exhausted: surface the failure so kmalloc can
        // honor its "0 on exhaustion" contract.
        ++refillFails_;
        return false;
    }
    Page &pg = pa_.phys().page(pfn);
    pg.set(PG_slab);
    pg.slabClass = cls;
    ++pinnedPages_;
    ++slabs_[cls].pages;

    const std::uint32_t obj = kClasses[cls];
    const Pa base = pfnToPa(pfn);
    // Carve back-to-front so the freelist pops front-to-back; unrelated
    // consecutive allocations land adjacent on the same page.
    for (std::uint64_t off = kPageSize; off >= obj; off -= obj)
        slabs_[cls].freeList.push_back(base + off - obj);
    return true;
}

Pa
KmallocHeap::kmalloc(std::uint32_t size)
{
    assert(size > 0);
    const unsigned cls = classFor(size);
    auto &slab = slabs_[cls];
    if (slab.freeList.empty() && !refill(cls))
        return 0;
    const Pa addr = slab.freeList.back();
    slab.freeList.pop_back();
    allocatedBytes_ += kClasses[cls];
    ++liveObjects_;
    return addr;
}

void
KmallocHeap::kfree(Pa addr)
{
    if (addr == 0)
        return;
    Page &pg = pa_.phys().pageOf(addr);
    assert(pg.test(PG_slab) && "kfree of a non-slab address");
    const unsigned cls = pg.slabClass;
    assert(pageOffset(addr) % kClasses[cls] == 0 && "misaligned kfree");
    slabs_[cls].freeList.push_back(addr);
    assert(allocatedBytes_ >= kClasses[cls]);
    allocatedBytes_ -= kClasses[cls];
    assert(liveObjects_ > 0);
    --liveObjects_;
}

} // namespace damn::mem
