/**
 * @file
 * IOMMU facade: domains, translation, fault reporting, statistics.
 *
 * The facade is backend-neutral: per-device protection domains with
 * their own I/O page tables, device-side translation through the
 * backend's IOTLB, and a driver-side bounded fault log with quarantine
 * semantics.  Everything hardware-specific — invalidation machinery
 * and its contention model, TLB/walk-cache geometry, device-routing
 * structures, the hardware fault-reporting ring — lives behind the
 * iommu::IommuBackend interface (backend.hh); see backend_vtd.hh for
 * the Intel VT-d model the paper measured and backend_smmu.hh for the
 * ARM SMMUv3 model.
 *
 * Faults are *reported*, not just counted: blocked DMAs append a
 * FaultRecord (domain, IOVA, direction, reason, timestamp) to a
 * bounded log with overflow-as-a-count semantics, are delivered to the
 * backend's hardware-side reporting structure, drive an optional
 * callback, and — past a configurable per-domain threshold —
 * quarantine the offending device until it is reset.  This is the
 * substrate the recovery paths and the attack-attribution tests build
 * on.
 */

#ifndef DAMN_IOMMU_IOMMU_HH
#define DAMN_IOMMU_IOMMU_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "iommu/backend.hh"
#include "iommu/io_pgtable.hh"
#include "iommu/iotlb.hh"
#include "sim/context.hh"

namespace damn::iommu {

/** Outcome of a device-side address translation. */
struct TranslateResult
{
    bool ok = false;          //!< translation succeeded with permission
    bool fault = false;       //!< blocked (missing mapping or perms)
    mem::Pa pa = 0;
    sim::TimeNs latencyNs = 0; //!< device-visible latency (walks)
};

/** What a MapObserver is being told about. */
enum class MapEvent : std::uint8_t
{
    Map,         //!< @p pages mappings were installed at @p iova
    Unmap,       //!< @p pages mappings at @p iova were removed
    DetachClear, //!< detachDomain() dropped the domain's whole table
};

/**
 * The IOMMU: owns domains, the hardware backend (which owns the IOTLB
 * and invalidation machinery) and the fault log; performs device-side
 * translations and tracks mapping statistics (pages *ever* vs
 * *currently* mapped — figure 9).
 */
class Iommu
{
  public:
    using FaultCallback = std::function<void(const FaultRecord &)>;
    /** Observer of page-table mutations (the audit ledger hook). */
    using MapObserver =
        std::function<void(MapEvent, DomainId, Iova, unsigned pages)>;

    /** Default fault-log capacity (hardware exposes a small reporting
     *  structure; we model a driver-side bounded ring). */
    static constexpr std::size_t kDefaultFaultLogCapacity = 256;

    /**
     * @param enabled  when false, translate() is an identity map
     *                 (the paper's iommu-off baseline).
     * @param kind     hardware model backing this IOMMU.
     */
    Iommu(sim::Context &ctx, bool enabled = true,
          BackendKind kind = BackendKind::Vtd)
        : ctx_(ctx), enabled_(enabled), backend_(makeBackend(kind, ctx))
    {}

    Iommu(const Iommu &) = delete;
    Iommu &operator=(const Iommu &) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool e) { enabled_ = e; }

    /** The hardware model (invalidation entry points live here). */
    IommuBackend &backend() { return *backend_; }
    const IommuBackend &backend() const { return *backend_; }
    BackendKind backendKind() const { return backend_->kind(); }
    /** The backend's IOVA address layout (allocators partition on it). */
    AddressLayout layout() const { return backend_->layout(); }

    /** Create a protection domain (one per attached device). */
    DomainId
    createDomain()
    {
        domains_.push_back(std::make_unique<IoPageTable>());
        domainFaults_.push_back(0);
        quarantined_.push_back(false);
        detached_.push_back(false);
        const auto d = DomainId(domains_.size() - 1);
        backend_->attachDevice(d);
        return d;
    }

    unsigned numDomains() const { return unsigned(domains_.size()); }

    IoPageTable &
    pageTable(DomainId d)
    {
        return *domains_.at(d);
    }

    /** Map a 4 KiB page and update ever/current statistics. */
    bool
    mapPage(DomainId d, Iova iova, mem::Pa pa, std::uint32_t perm)
    {
        const bool ok = pageTable(d).map(iova, pa, perm);
        if (ok) {
            noteMapped(pa, 1);
            notifyObserver(MapEvent::Map, d, iova, 1);
        }
        return ok;
    }

    /** Remove a 4 KiB mapping (page-table only; IOTLB may stay stale). */
    bool
    unmapPage(DomainId d, Iova iova)
    {
        const bool ok = pageTable(d).unmap(iova);
        if (ok)
            notifyObserver(MapEvent::Unmap, d, iova, 1);
        return ok;
    }

    /** Map a 2 MiB block. */
    bool
    mapHuge(DomainId d, Iova iova, mem::Pa pa, std::uint32_t perm)
    {
        const bool ok = pageTable(d).mapHuge(iova, pa, perm);
        if (ok) {
            noteMapped(pa, 512);
            notifyObserver(MapEvent::Map, d, iova, 512);
        }
        return ok;
    }

    /**
     * Translate a device access.  IOTLB hit, or charged page walk +
     * fill; faults when no valid mapping grants the access, when the
     * domain is quarantined, or when the injector forces a fault.
     */
    TranslateResult translate(DomainId d, Iova iova, bool is_write);

    /** The backend's IOTLB (shorthand for backend().tlb()). */
    Iotlb &iotlb() { return backend_->tlb(); }

    /** Distinct frames that were ever DMA-mapped (figure 9). */
    std::uint64_t everMappedFrames() const { return everMapped_.size(); }
    /** Frames currently mapped across all domains. */
    std::uint64_t
    currentlyMappedPages() const
    {
        std::uint64_t t = 0;
        for (const auto &d : domains_)
            t += d->mappedPages();
        return t;
    }

    // ---- Fault reporting -------------------------------------------

    std::uint64_t faults() const { return faults_; }

    /** Faults charged to @p d (including while quarantined). */
    std::uint64_t
    domainFaults(DomainId d) const
    {
        return domainFaults_.at(d);
    }

    /** The bounded fault log, oldest first. */
    const std::vector<FaultRecord> &faultLog() const { return faultLog_; }

    /** Records dropped because the log was full (hardware raises an
     *  overflow flag; we keep a count). */
    std::uint64_t faultLogOverflows() const { return faultLogOverflows_; }

    void clearFaultLog() { faultLog_.clear(); faultLogOverflows_ = 0; }

    /** Resize the log; an over-capacity log keeps its oldest entries. */
    void
    setFaultLogCapacity(std::size_t cap)
    {
        faultLogCap_ = cap;
        if (faultLog_.size() > cap)
            faultLog_.resize(cap);
    }

    /** Invoked on every fault, even when the log overflowed. */
    void onFault(FaultCallback cb) { faultCb_ = std::move(cb); }

    // ---- Quarantine ------------------------------------------------

    /**
     * Quarantine a domain once its fault count reaches @p n (0, the
     * default, disables quarantining).  A quarantined domain faults on
     * *every* DMA until resetDomain() — graceful degradation instead of
     * letting a misbehaving device hammer the fabric.
     */
    void setQuarantineThreshold(std::uint64_t n) { quarantineThreshold_ = n; }
    std::uint64_t quarantineThreshold() const { return quarantineThreshold_; }

    bool quarantined(DomainId d) const { return quarantined_.at(d); }

    /**
     * Device reset (FLR): lift quarantine, zero the domain's fault
     * count, and flush its IOTLB entries.  Mappings survive — the
     * driver decides what to re-post.
     */
    void
    resetDomain(DomainId d)
    {
        quarantined_.at(d) = false;
        domainFaults_.at(d) = 0;
        backend_->tlb().invalidateDomain(d);
    }

    // ---- Device lifecycle ------------------------------------------

    /** Install the page-table-mutation observer (see damn::audit). */
    void onMapChange(MapObserver cb) { mapObserver_ = std::move(cb); }

    bool detached(DomainId d) const { return detached_.at(d); }

    /**
     * Tear down a detached/unplugged device's domain: drop its whole
     * I/O page table, its backend routing config, and its IOTLB
     * entries (direct hardware flush — teardown invalidation is
     * modeled as guaranteed, not injectable), and fault every later
     * DMA with FaultReason::Detached.
     *
     * Drivers are expected to have unmapped everything *before* this;
     * the return value counts the 4 KiB-equivalent pages the teardown
     * had to force-clear — 0 when the drain above was complete, and
     * anything else is a leak the audit layer flags.
     */
    std::uint64_t
    detachDomain(DomainId d)
    {
        const std::uint64_t leaked = domains_.at(d)->mappedPages();
        domains_.at(d) = std::make_unique<IoPageTable>();
        backend_->tlb().invalidateDomain(d);
        backend_->detachDevice(d);
        detached_.at(d) = true;
        notifyObserver(MapEvent::DetachClear, d, 0, 0);
        return leaked;
    }

    /**
     * Re-attach after a replug: fresh (empty) domain state, fault
     * count zeroed, quarantine lifted, routing config re-installed.
     * The page table is whatever detachDomain() left — empty.
     */
    void
    attachDomain(DomainId d)
    {
        detached_.at(d) = false;
        quarantined_.at(d) = false;
        domainFaults_.at(d) = 0;
        backend_->attachDevice(d);
    }

  private:
    void
    noteMapped(mem::Pa pa, unsigned pages)
    {
        const mem::Pfn pfn = mem::paToPfn(pa);
        for (unsigned i = 0; i < pages; ++i)
            everMapped_.insert(pfn + i);
    }

    void
    notifyObserver(MapEvent ev, DomainId d, Iova iova, unsigned pages)
    {
        if (mapObserver_)
            mapObserver_(ev, d, iova, pages);
    }

    void recordFault(DomainId d, Iova iova, bool is_write,
                     FaultReason reason);

    sim::Context &ctx_;
    bool enabled_;
    std::unique_ptr<IommuBackend> backend_;
    std::vector<std::unique_ptr<IoPageTable>> domains_;
    std::unordered_set<mem::Pfn> everMapped_;

    std::uint64_t faults_ = 0;
    std::vector<std::uint64_t> domainFaults_;
    std::vector<bool> quarantined_;
    std::vector<bool> detached_;
    MapObserver mapObserver_;
    std::uint64_t quarantineThreshold_ = 0;
    std::size_t faultLogCap_ = kDefaultFaultLogCapacity;
    std::vector<FaultRecord> faultLog_;
    std::uint64_t faultLogOverflows_ = 0;
    FaultCallback faultCb_;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IOMMU_HH
