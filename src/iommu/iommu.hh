/**
 * @file
 * IOMMU facade: domains, translation, invalidation queue, statistics.
 *
 * Models an Intel VT-d style IOMMU: per-device protection domains with
 * their own I/O page tables, a shared IOTLB, and a single invalidation
 * queue whose submission lock is global — the contention point that
 * cripples the *strict* protection scheme in the paper (sections 4.1,
 * 6.1).
 */

#ifndef DAMN_IOMMU_IOMMU_HH
#define DAMN_IOMMU_IOMMU_HH

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "iommu/io_pgtable.hh"
#include "iommu/iotlb.hh"
#include "sim/context.hh"
#include "sim/sim_mutex.hh"

namespace damn::iommu {

/** Outcome of a device-side address translation. */
struct TranslateResult
{
    bool ok = false;          //!< translation succeeded with permission
    bool fault = false;       //!< blocked (missing mapping or perms)
    mem::Pa pa = 0;
    sim::TimeNs latencyNs = 0; //!< device-visible latency (walks)
};

/**
 * The invalidation queue: submissions serialize on a global lock, and
 * strict-mode callers hold it for the full invalidate + wait round trip.
 */
class InvalidationQueue
{
  public:
    explicit InvalidationQueue(sim::Context &ctx) : ctx_(ctx) {}

    /**
     * Synchronously invalidate an IOVA range (strict mode): acquire the
     * global queue lock, submit, wait for completion, release.  The
     * caller's core burns the spin + wait time.
     * @return completion time.
     */
    sim::TimeNs
    syncInvalidate(sim::Core &core, sim::TimeNs now, Iotlb &tlb,
                   DomainId domain, Iova iova, std::uint64_t len)
    {
        const sim::TimeNs done = lock_.acquireAndHold(
            core, now, ctx_.cost.strictInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        tlb.invalidateRange(domain, iova, len);
        return done;
    }

    /**
     * One batched flush covering many deferred unmaps: a single lock
     * acquisition and a single (larger) hardware operation.
     * @return completion time.
     */
    sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now, Iotlb &tlb)
    {
        const sim::TimeNs done =
            lock_.acquireAndHold(core, now, ctx_.cost.deferredFlushNs,
                                 1.0, ctx_.engine.now());
        tlb.invalidateAll();
        return done;
    }

    sim::SimMutex &lock() { return lock_; }

  private:
    sim::Context &ctx_;
    sim::SimMutex lock_;
};

/**
 * The IOMMU: owns domains, the IOTLB and the invalidation queue;
 * performs device-side translations and tracks mapping statistics
 * (pages *ever* vs *currently* mapped — figure 9).
 */
class Iommu
{
  public:
    /**
     * @param enabled  when false, translate() is an identity map
     *                 (the paper's iommu-off baseline).
     */
    Iommu(sim::Context &ctx, bool enabled = true)
        : ctx_(ctx), enabled_(enabled), invalQueue_(ctx)
    {}

    Iommu(const Iommu &) = delete;
    Iommu &operator=(const Iommu &) = delete;

    bool enabled() const { return enabled_; }
    void setEnabled(bool e) { enabled_ = e; }

    /** Create a protection domain (one per attached device). */
    DomainId
    createDomain()
    {
        domains_.push_back(std::make_unique<IoPageTable>());
        return DomainId(domains_.size() - 1);
    }

    unsigned numDomains() const { return unsigned(domains_.size()); }

    IoPageTable &
    pageTable(DomainId d)
    {
        return *domains_.at(d);
    }

    /** Map a 4 KiB page and update ever/current statistics. */
    bool
    mapPage(DomainId d, Iova iova, mem::Pa pa, std::uint32_t perm)
    {
        const bool ok = pageTable(d).map(iova, pa, perm);
        if (ok)
            noteMapped(pa, 1);
        return ok;
    }

    /** Remove a 4 KiB mapping (page-table only; IOTLB may stay stale). */
    bool
    unmapPage(DomainId d, Iova iova)
    {
        return pageTable(d).unmap(iova);
    }

    /** Map a 2 MiB block. */
    bool
    mapHuge(DomainId d, Iova iova, mem::Pa pa, std::uint32_t perm)
    {
        const bool ok = pageTable(d).mapHuge(iova, pa, perm);
        if (ok)
            noteMapped(pa, 512);
        return ok;
    }

    /**
     * Translate a device access.  IOTLB hit, or charged page walk +
     * fill; faults when no valid mapping grants the access.
     */
    TranslateResult translate(DomainId d, Iova iova, bool is_write);

    Iotlb &iotlb() { return iotlb_; }
    InvalidationQueue &invalQueue() { return invalQueue_; }

    /** Distinct frames that were ever DMA-mapped (figure 9). */
    std::uint64_t everMappedFrames() const { return everMapped_.size(); }
    /** Frames currently mapped across all domains. */
    std::uint64_t
    currentlyMappedPages() const
    {
        std::uint64_t t = 0;
        for (const auto &d : domains_)
            t += d->mappedPages();
        return t;
    }

    std::uint64_t faults() const { return faults_; }

  private:
    void
    noteMapped(mem::Pa pa, unsigned pages)
    {
        const mem::Pfn pfn = mem::paToPfn(pa);
        for (unsigned i = 0; i < pages; ++i)
            everMapped_.insert(pfn + i);
    }

    sim::Context &ctx_;
    bool enabled_;
    std::vector<std::unique_ptr<IoPageTable>> domains_;
    Iotlb iotlb_;
    InvalidationQueue invalQueue_;
    std::unordered_set<mem::Pfn> everMapped_;
    std::uint64_t faults_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IOMMU_HH
