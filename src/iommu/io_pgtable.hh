/**
 * @file
 * Four-level I/O page table (Intel VT-d second-level style).
 *
 * Maps 48-bit I/O virtual addresses to physical addresses at 4 KiB
 * granularity, with optional 2 MiB "huge" mappings (used by the paper's
 * Table 3 huge-IOVA-page variant).  Each mapping carries read/write
 * permission bits; translation fails on a missing entry or an access
 * that exceeds the granted rights.
 */

#ifndef DAMN_IOMMU_IO_PGTABLE_HH
#define DAMN_IOMMU_IO_PGTABLE_HH

#include <cstdint>
#include <memory>

#include "mem/phys.hh"

namespace damn::iommu {

/** I/O virtual address (48-bit significant). */
using Iova = std::uint64_t;

/** DMA access permissions. */
enum Perm : std::uint32_t
{
    PermNone = 0,
    PermRead = 1,   //!< device may read (TX buffers)
    PermWrite = 2,  //!< device may write (RX buffers)
    PermRW = PermRead | PermWrite,
};

constexpr unsigned kIovaBits = 48;
constexpr std::uint64_t kHugePageSize = 2ull << 20; // 2 MiB

/** Result of a page-table walk. */
struct WalkResult
{
    bool present = false;
    mem::Pa pa = 0;          //!< translated physical address
    std::uint32_t perm = 0;  //!< permissions of the covering entry
    bool huge = false;       //!< covered by a 2 MiB entry
};

/**
 * Radix page table: 4 levels x 9 bits + 12-bit page offset = 48 bits.
 * Level 1 is the leaf level for 4 KiB pages; level 2 entries may be
 * leaves for 2 MiB pages.
 */
class IoPageTable
{
  public:
    IoPageTable();
    ~IoPageTable();

    IoPageTable(const IoPageTable &) = delete;
    IoPageTable &operator=(const IoPageTable &) = delete;

    /**
     * Map one 4 KiB page: @p iova -> @p pa with @p perm.
     * @return false if already mapped (callers treat as a bug).
     */
    bool map(Iova iova, mem::Pa pa, std::uint32_t perm);

    /** Map one 2 MiB block (iova and pa must be 2 MiB aligned). */
    bool mapHuge(Iova iova, mem::Pa pa, std::uint32_t perm);

    /**
     * Remove the 4 KiB mapping at @p iova.
     * @return true if a mapping was removed.
     */
    bool unmap(Iova iova);

    /** Remove the 2 MiB mapping at @p iova. */
    bool unmapHuge(Iova iova);

    /** Walk the table for @p iova. */
    WalkResult walk(Iova iova) const;

    /** Currently-mapped 4 KiB-equivalent page count. */
    std::uint64_t mappedPages() const { return mapped4k_ + mapped2m_ * 512; }
    std::uint64_t mapped4kEntries() const { return mapped4k_; }
    std::uint64_t mapped2mEntries() const { return mapped2m_; }

  private:
    struct Node; // 512-ary radix node

    struct Entry
    {
        std::uint64_t val = 0;          //!< leaf: pa | perm bits | flags
        std::unique_ptr<Node> child;    //!< interior: next level
    };

    static constexpr std::uint64_t kPresent = 1ull << 0;
    static constexpr std::uint64_t kReadBit = 1ull << 1;
    static constexpr std::uint64_t kWriteBit = 1ull << 2;
    static constexpr std::uint64_t kHugeBit = 1ull << 3;
    static constexpr std::uint64_t kAddrMask = ~0xfffull;

    Entry *lookupEntry(Iova iova, unsigned leaf_level, bool create);
    const Entry *peekEntry(Iova iova, unsigned leaf_level) const;

    std::unique_ptr<Node> root_;
    std::uint64_t mapped4k_ = 0;
    std::uint64_t mapped2m_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IO_PGTABLE_HH
