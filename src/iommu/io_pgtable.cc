/**
 * @file
 * Radix I/O page-table implementation.
 */

#include "iommu/io_pgtable.hh"

#include <array>
#include <cassert>

namespace damn::iommu {

struct IoPageTable::Node
{
    std::array<Entry, 512> slots;
};

namespace {

/** Index of @p iova at radix @p level (level 1 = leaf for 4 KiB). */
constexpr unsigned
levelIndex(Iova iova, unsigned level)
{
    const unsigned shift = 12 + 9 * (level - 1);
    return unsigned((iova >> shift) & 0x1ff);
}

constexpr std::uint64_t
permBits(std::uint32_t perm)
{
    std::uint64_t b = 0;
    if (perm & PermRead)
        b |= 1ull << 1;
    if (perm & PermWrite)
        b |= 1ull << 2;
    return b;
}

} // namespace

IoPageTable::IoPageTable() : root_(std::make_unique<Node>()) {}
IoPageTable::~IoPageTable() = default;

IoPageTable::Entry *
IoPageTable::lookupEntry(Iova iova, unsigned leaf_level, bool create)
{
    Node *node = root_.get();
    for (unsigned level = 4; level > leaf_level; --level) {
        Entry &e = node->slots[levelIndex(iova, level)];
        if (!e.child) {
            if (!create)
                return nullptr;
            // Refuse to descend through a huge leaf.
            assert(!(e.val & kPresent) && "descending through a leaf");
            e.child = std::make_unique<Node>();
        }
        node = e.child.get();
    }
    return &node->slots[levelIndex(iova, leaf_level)];
}

const IoPageTable::Entry *
IoPageTable::peekEntry(Iova iova, unsigned leaf_level) const
{
    const Node *node = root_.get();
    for (unsigned level = 4; level > leaf_level; --level) {
        const Entry &e = node->slots[levelIndex(iova, level)];
        if (!e.child)
            return nullptr;
        node = e.child.get();
    }
    return &node->slots[levelIndex(iova, leaf_level)];
}

bool
IoPageTable::map(Iova iova, mem::Pa pa, std::uint32_t perm)
{
    assert((iova & (mem::kPageSize - 1)) == 0);
    assert((pa & (mem::kPageSize - 1)) == 0);
    Entry *e = lookupEntry(iova, 1, /*create=*/true);
    if (e->val & kPresent)
        return false;
    e->val = (pa & kAddrMask) | permBits(perm) | kPresent;
    ++mapped4k_;
    return true;
}

bool
IoPageTable::mapHuge(Iova iova, mem::Pa pa, std::uint32_t perm)
{
    assert((iova & (kHugePageSize - 1)) == 0);
    assert((pa & (kHugePageSize - 1)) == 0);
    Entry *e = lookupEntry(iova, 2, /*create=*/true);
    if ((e->val & kPresent) || e->child)
        return false;
    e->val = (pa & kAddrMask) | permBits(perm) | kPresent | kHugeBit;
    ++mapped2m_;
    return true;
}

bool
IoPageTable::unmap(Iova iova)
{
    Entry *e = lookupEntry(iova, 1, /*create=*/false);
    if (!e || !(e->val & kPresent))
        return false;
    e->val = 0;
    assert(mapped4k_ > 0);
    --mapped4k_;
    return true;
}

bool
IoPageTable::unmapHuge(Iova iova)
{
    Entry *e = lookupEntry(iova, 2, /*create=*/false);
    if (!e || !(e->val & kPresent) || !(e->val & kHugeBit))
        return false;
    e->val = 0;
    assert(mapped2m_ > 0);
    --mapped2m_;
    return true;
}

WalkResult
IoPageTable::walk(Iova iova) const
{
    WalkResult r;
    // Check for a huge leaf at level 2 first.
    if (const Entry *e2 = peekEntry(iova, 2)) {
        if (e2->val & kPresent) {
            if (e2->val & kHugeBit) {
                r.present = true;
                r.huge = true;
                r.pa = (e2->val & kAddrMask) |
                    (iova & (kHugePageSize - 1));
                r.perm = (((e2->val >> 1) & 1) ? std::uint32_t(PermRead) : 0u) |
                    (((e2->val >> 2) & 1) ? std::uint32_t(PermWrite) : 0u);
                return r;
            }
        }
        if (e2->child) {
            const Entry &e1 = e2->child->slots[levelIndex(iova, 1)];
            if (e1.val & kPresent) {
                r.present = true;
                r.pa = (e1.val & kAddrMask) | (iova & (mem::kPageSize - 1));
                r.perm = (((e1.val >> 1) & 1) ? std::uint32_t(PermRead) : 0u) |
                    (((e1.val >> 2) & 1) ? std::uint32_t(PermWrite) : 0u);
                return r;
            }
        }
    }
    return r;
}

} // namespace damn::iommu
