/**
 * @file
 * IOTLB implementation.
 */

#include "iommu/iotlb.hh"

namespace damn::iommu {

TlbEntry *
Iotlb::setBase(bool huge, DomainId domain, Iova page_tag)
{
    // Real IOTLBs index by the low page-number bits (not a hash).
    // This is what makes DAMN's metadata-in-IOVA encoding cost IOTLB
    // reach: regions that differ only in their *high* bits (cpu,
    // rights, device fields) map the same offsets onto the same sets
    // and conflict, while densely recycled DMA-API IOVAs spread out.
    (void)domain;
    auto &bank = huge ? bank2m_ : bank4k_;
    const unsigned sets = huge ? sets2m_ : sets4k_;
    const unsigned ways = waysOf(huge);
    const unsigned shift = huge ? 21 : 12;
    return &bank[std::size_t((page_tag >> shift) % sets) * ways];
}

bool
Iotlb::walkCached(DomainId domain, Iova iova)
{
    const Iova tag = iova >> 21;
    PwcEntry *victim = &pwc_[0];
    for (PwcEntry &e : pwc_) {
        if (e.valid && e.domain == domain && e.tag == tag) {
            e.lastUse = ++clock_;
            return true;
        }
        if (!e.valid || e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->domain = domain;
    victim->tag = tag;
    victim->lastUse = ++clock_;
    return false;
}

const TlbEntry *
Iotlb::lookup(DomainId domain, Iova iova)
{
    // The LRU clock advances only when a stamp is actually written (on
    // hit; insert/walkCached stamp for themselves), keeping the miss
    // path scan-only.  Only the *relative order* of lastUse values
    // feeds victim selection, so skipping ticks on misses leaves every
    // eviction decision — and therefore all simulated output —
    // unchanged.
    //
    // 2 MiB bank first: a huge entry covers the 4 KiB tag too.
    const Iova tag2m = iova & ~(kHugePageSize - 1);
    TlbEntry *set = setBase(true, domain, tag2m);
    for (unsigned w = 0; w < ways2m_; ++w) {
        TlbEntry &e = set[w];
        if (e.valid && e.domain == domain && e.iovaPage == tag2m &&
            e.huge) {
            e.lastUse = ++clock_;
            ++hits_;
            return &e;
        }
    }
    const Iova tag4k = iova & ~Iova(mem::kPageSize - 1);
    set = setBase(false, domain, tag4k);
    for (unsigned w = 0; w < ways4k_; ++w) {
        TlbEntry &e = set[w];
        if (e.valid && e.domain == domain && e.iovaPage == tag4k &&
            !e.huge) {
            e.lastUse = ++clock_;
            ++hits_;
            return &e;
        }
    }
    ++misses_;
    return nullptr;
}

void
Iotlb::insert(DomainId domain, Iova iova, const WalkResult &walk)
{
    if (!walk.present)
        return;
    const bool huge = walk.huge;
    const std::uint64_t page_mask =
        huge ? kHugePageSize - 1 : mem::kPageSize - 1;
    const Iova tag = iova & ~page_mask;
    TlbEntry *set = setBase(huge, domain, tag);
    const unsigned ways = waysOf(huge);
    TlbEntry *victim = &set[0];
    for (unsigned w = 0; w < ways; ++w) {
        TlbEntry &e = set[w];
        // An existing entry for this tag must be updated in place —
        // duplicate entries for one translation would let a stale copy
        // survive a refill.
        if (e.valid && e.domain == domain && e.iovaPage == tag &&
            e.huge == huge) {
            victim = &e;
            break;
        }
        if (!e.valid) {
            victim = &e;
            continue;
        }
        if (victim->valid && e.lastUse < victim->lastUse)
            victim = &e;
    }
    victim->valid = true;
    victim->domain = domain;
    victim->iovaPage = tag;
    victim->paPage = walk.pa & ~page_mask;
    victim->perm = walk.perm;
    victim->huge = huge;
    victim->lastUse = ++clock_;
}

void
Iotlb::invalidateRange(DomainId domain, Iova iova, std::uint64_t len)
{
    if (debugDropRemaining_ > 0) {
        --debugDropRemaining_;
        return;
    }
    ++invalidations_;
    const Iova lo = iova;
    const Iova hi = iova + len;
    for (auto *bank : {&bank4k_, &bank2m_}) {
        for (TlbEntry &e : *bank) {
            if (!e.valid || e.domain != domain)
                continue;
            const std::uint64_t sz =
                e.huge ? kHugePageSize : mem::kPageSize;
            if (e.iovaPage < hi && e.iovaPage + sz > lo)
                e.valid = false;
        }
    }
}

void
Iotlb::invalidateDomain(DomainId domain)
{
    if (debugDropRemaining_ > 0) {
        --debugDropRemaining_;
        return;
    }
    ++invalidations_;
    for (auto *bank : {&bank4k_, &bank2m_})
        for (TlbEntry &e : *bank)
            if (e.domain == domain)
                e.valid = false;
}

void
Iotlb::invalidateAll()
{
    ++invalidations_;
    for (auto *bank : {&bank4k_, &bank2m_})
        for (TlbEntry &e : *bank)
            e.valid = false;
}

std::vector<TlbEntry>
Iotlb::validEntries(DomainId domain) const
{
    std::vector<TlbEntry> out;
    for (const auto *bank : {&bank4k_, &bank2m_})
        for (const TlbEntry &e : *bank)
            if (e.valid && e.domain == domain)
                out.push_back(e);
    return out;
}

} // namespace damn::iommu
