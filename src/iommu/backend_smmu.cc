/**
 * @file
 * ARM SMMUv3 backend implementation.
 */

#include "iommu/backend_smmu.hh"

#include "iommu/ats.hh"

namespace damn::iommu {

void
SmmuV3Backend::attachDevice(DomainId d)
{
    if (d >= steValid_.size()) {
        steValid_.resize(d + 1, false);
        cdCached_.resize(d + 1, false);
    }
    steValid_[d] = true;
    // A fresh (or re-installed) STE+CD is not yet in the config cache:
    // the first walk after attach pays the descriptor fetch.
    cdCached_[d] = false;
    ctx_.stats.add("smmu.ste_writes");
}

void
SmmuV3Backend::detachDevice(DomainId d)
{
    if (d >= steValid_.size())
        return;
    steValid_[d] = false;
    // CFGI_STE: teardown config invalidation is modeled as guaranteed,
    // like the facade's teardown IOTLB flush.
    cdCached_[d] = false;
    ctx_.stats.add("smmu.cfgi_ste");
}

sim::TimeNs
SmmuV3Backend::walkLatency(DomainId d, Iova iova)
{
    sim::TimeNs lat = tlb_.walkCached(d, iova) ? ctx_.cost.smmuWalkPwcNs
                                               : ctx_.cost.smmuWalkNs;
    if (d >= cdCached_.size())
        cdCached_.resize(d + 1, false);
    if (!cdCached_[d]) {
        // Config-cache miss: fetch STE + CD before the walk can start.
        cdCached_[d] = true;
        lat += ctx_.cost.smmuCdFetchNs;
        ctx_.stats.add("smmu.cd_fetches");
    }
    return lat;
}

sim::TimeNs
SmmuV3Backend::produce(sim::Core &core, sim::TimeNs now, unsigned n)
{
    if (pendingCmds_ + n + 1 > ctx_.cost.smmuCmdqDepth) {
        // Ring wrap: the producer polls CONS until the consumer frees
        // enough slots.  Everything already produced has drained by
        // then.
        ctx_.stats.add("smmu.cmdq_stalls");
        const sim::TimeNs drained = consumer_.freeAt();
        if (drained > now) {
            core.occupy(now, drained - now,
                        ctx_.cost.smmuSyncSpinBusyFraction);
            now = drained;
        }
        pendingCmds_ = 0;
    }
    const sim::TimeNs t = cmdqLock_.acquireAndHold(
        core, now, sim::TimeNs(n) * ctx_.cost.smmuCmdSubmitNs, 1.0,
        ctx_.engine.now());
    // The consumer starts chewing on the new commands as soon as they
    // are visible, concurrently with whatever the producer does next.
    consumer_.submit(t, sim::TimeNs(n) * ctx_.cost.smmuTlbiNs);
    pendingCmds_ += n;
    ctx_.stats.add("smmu.cmds", n);
    return t;
}

sim::TimeNs
SmmuV3Backend::submitTlbiRange(sim::Core &core, sim::TimeNs now,
                               DomainId domain, Iova iova,
                               std::uint64_t len)
{
    const sim::TimeNs t = produce(core, now, 1);
    pending_.push_back({PendingInval::Kind::Range, domain, iova, len});
    return t;
}

sim::TimeNs
SmmuV3Backend::submitTlbiDomain(sim::Core &core, sim::TimeNs now,
                                DomainId domain)
{
    const sim::TimeNs t = produce(core, now, 1);
    pending_.push_back({PendingInval::Kind::Domain, domain, 0, 0});
    return t;
}

sim::TimeNs
SmmuV3Backend::submitTlbiAll(sim::Core &core, sim::TimeNs now)
{
    const sim::TimeNs t = produce(core, now, 1);
    pending_.push_back({PendingInval::Kind::All, 0, 0, 0});
    return t;
}

sim::TimeNs
SmmuV3Backend::sync(sim::Core &core, sim::TimeNs now)
{
    // Producing the CMD_SYNC takes a slot like any other command ...
    const sim::TimeNs t = cmdqLock_.acquireAndHold(
        core, now, ctx_.cost.smmuCmdSubmitNs, 1.0, ctx_.engine.now());
    // ... but completion is awaited *outside* the lock: the SYNC
    // finishes once the consumer has drained everything ahead of it.
    const sim::TimeNs done = consumer_.submit(t, ctx_.cost.smmuCmdSyncNs);
    if (done > t)
        core.occupy(t, done - t, ctx_.cost.smmuSyncSpinBusyFraction);
    pendingCmds_ = 0;
    ctx_.stats.add("smmu.syncs");

    if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
        // The batch is dropped in flight: time spent, stale entries
        // survive — the same injectable hole as VT-d's queue.
        ctx_.stats.add("iommu.inval_dropped");
        pending_.clear();
        return done;
    }
    for (const PendingInval &p : pending_) {
        switch (p.kind) {
          case PendingInval::Kind::Range:
            tlb_.invalidateRange(p.domain, p.iova, p.len);
            break;
          case PendingInval::Kind::Domain:
            tlb_.invalidateDomain(p.domain);
            break;
          case PendingInval::Kind::All:
            tlb_.invalidateAll();
            break;
          case PendingInval::Kind::AtcRange:
            p.agent->invalidateRange(p.iova, p.len);
            break;
          case PendingInval::Kind::AtcAll:
            p.agent->invalidateAll();
            break;
        }
    }
    ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                        "smmu.cmdq_sync", done, 0, pending_.size());
    pending_.clear();
    return done;
}

sim::TimeNs
SmmuV3Backend::syncInvalidate(sim::Core &core, sim::TimeNs now,
                              DomainId domain, Iova iova,
                              std::uint64_t len)
{
    const sim::TimeNs t = submitTlbiRange(core, now, domain, iova, len);
    return sync(core, t);
}

sim::TimeNs
SmmuV3Backend::syncInvalidateRanges(sim::Core &core, sim::TimeNs now,
                                    const std::vector<InvalRange> &ranges)
{
    // One producer critical section writes the whole TLBI list; a
    // single CMD_SYNC then covers it (dma_unmap_sg on SMMUv3).
    const sim::TimeNs t = produce(core, now, unsigned(ranges.size()));
    for (const InvalRange &r : ranges)
        pending_.push_back(
            {PendingInval::Kind::Range, r.domain, r.iova, r.len});
    return sync(core, t);
}

sim::TimeNs
SmmuV3Backend::batchedFlush(sim::Core &core, sim::TimeNs now,
                            const std::vector<DomainId> &domains)
{
    const sim::TimeNs t = produce(core, now, unsigned(domains.size()));
    for (const DomainId d : domains)
        pending_.push_back({PendingInval::Kind::Domain, d, 0, 0});
    return sync(core, t);
}

sim::TimeNs
SmmuV3Backend::batchedFlushAll(sim::Core &core, sim::TimeNs now)
{
    const sim::TimeNs t = submitTlbiAll(core, now);
    return sync(core, t);
}

bool
SmmuV3Backend::postPageRequest(const PageRequest &req)
{
    if (!priAccept(req, ctx_.cost.smmuStallDepth)) {
        // Stalled-transaction table full: the SMMU terminates the
        // transaction instead of stalling it (the auto-response).
        ctx_.stats.add("smmu.stall_auto_terms");
        return false;
    }
    ctx_.stats.add("smmu.stall_events");
    return true;
}

std::vector<IommuBackend::PageRequest>
SmmuV3Backend::fetchPageRequests()
{
    return priDrain();
}

sim::TimeNs
SmmuV3Backend::respondPageRequest(sim::Core &core, sim::TimeNs now,
                                  const PageRequest &req, bool success)
{
    (void)req;
    (void)success;
    // CMD_RESUME takes one cmdq slot; the stalled transaction resumes
    // (or terminates) as soon as the SMMU consumes it — no CMD_SYNC.
    const sim::TimeNs t = produce(core, now, 1);
    const sim::TimeNs done = t + ctx_.cost.priResponseNs;
    priNoteResponse();
    ctx_.stats.add("smmu.cmd_resumes");
    return done;
}

sim::TimeNs
SmmuV3Backend::submitAtcInvRange(sim::Core &core, sim::TimeNs now,
                                 AtsAgent &agent, Iova iova,
                                 std::uint64_t len)
{
    const sim::TimeNs t = produce(core, now, 1);
    pending_.push_back(
        {PendingInval::Kind::AtcRange, 0, iova, len, &agent});
    return t;
}

sim::TimeNs
SmmuV3Backend::submitAtcInvAll(sim::Core &core, sim::TimeNs now,
                               AtsAgent &agent)
{
    const sim::TimeNs t = produce(core, now, 1);
    pending_.push_back({PendingInval::Kind::AtcAll, 0, 0, 0, &agent});
    return t;
}

sim::TimeNs
SmmuV3Backend::atsInvalidate(sim::Core &core, sim::TimeNs now,
                             AtsAgent &agent, DomainId domain,
                             Iova iova, std::uint64_t len)
{
    (void)domain;
    // CMD_ATC_INV + CMD_SYNC; the endpoint round trip rides on the
    // sync wait.
    const sim::TimeNs t = submitAtcInvRange(core, now, agent, iova, len);
    ctx_.stats.add("smmu.atc_invals");
    return sync(core, t);
}

sim::TimeNs
SmmuV3Backend::atsInvalidateAll(sim::Core &core, sim::TimeNs now,
                                AtsAgent &agent, DomainId domain)
{
    (void)domain;
    const sim::TimeNs t = submitAtcInvAll(core, now, agent);
    ctx_.stats.add("smmu.atc_invals");
    return sync(core, t);
}

void
SmmuV3Backend::deliverFault(const FaultRecord &rec)
{
    if (eventq_.size() < ctx_.cost.smmuEvtqDepth) {
        eventq_.push_back(rec);
        ctx_.stats.add("smmu.evtq_records");
    } else {
        ++evtqOverflows_;
        ctx_.stats.add("smmu.evtq_overflows");
    }
}

} // namespace damn::iommu
