/**
 * @file
 * SVA domain: demand-faulted device-accessible process memory.
 */

#include "iommu/sva.hh"

#include "iommu/iommu.hh"
#include "sim/tracer.hh"

namespace damn::iommu {

SvaDomain::SvaDomain(sim::Context &ctx, Iommu &mmu,
                     mem::PageAllocator &alloc,
                     unsigned residentLimitPages)
    : ctx_(ctx), mmu_(mmu), alloc_(alloc),
      residentLimit_(residentLimitPages), domain_(mmu.createDomain())
{}

SvaDomain::~SvaDomain()
{
    for (const auto &[va, r] : resident_)
        alloc_.freePages(r.pfn, 0);
}

bool
SvaDomain::resident(Iova va) const
{
    return resident_.count(va & ~Iova(mem::kPageSize - 1)) != 0;
}

mem::Pa
SvaDomain::paOf(Iova va) const
{
    const Iova page = va & ~Iova(mem::kPageSize - 1);
    const auto it = resident_.find(page);
    return it == resident_.end() ? 0 : mem::pfnToPa(it->second.pfn);
}

bool
SvaDomain::handleFault(sim::CpuCursor &cpu, Iova va, bool is_write,
                       AtsAgent *ats)
{
    (void)is_write; // pages are installed RW; rights don't split here
    const Iova page = va & ~Iova(mem::kPageSize - 1);
    if (const auto it = resident_.find(page); it != resident_.end()) {
        // Spurious fault: another request already brought it in.
        it->second.lastUse = ++useClock_;
        ctx_.stats.add("sva.spurious_faults");
        return true;
    }
    if (residentLimit_ != 0 && resident_.size() >= residentLimit_)
        evictLru(cpu, ats);
    if (ctx_.faults.shouldFail(sim::FaultSite::PageAlloc)) {
        ctx_.stats.add("sva.fault_alloc_fails");
        ++failedFaults_;
        return false;
    }
    const mem::Pfn pfn =
        alloc_.allocPages(0, cpu.numa(), /*zero=*/ctx_.functionalData);
    if (pfn == mem::kInvalidPfn) {
        ctx_.stats.add("sva.fault_alloc_fails");
        ++failedFaults_;
        return false;
    }
    cpu.charge(ctx_.cost.pageAllocNs + ctx_.cost.ptePerPageNs);
    mmu_.mapPage(domain_, page, mem::pfnToPa(pfn), PermRW);
    resident_.emplace(page, Resident{pfn, ++useClock_});
    ++faultsServiced_;
    ctx_.stats.add("sva.faults_serviced");
    return true;
}

bool
SvaDomain::servicePageRequest(sim::CpuCursor &cpu,
                              const IommuBackend::PageRequest &req,
                              AtsAgent *ats)
{
    sim::TraceSpan span(ctx_.tracer, cpu, sim::TraceCat::Fault,
                        "sva.page_fault");
    cpu.charge(ctx_.cost.priFaultServiceNs);
    const bool ok = handleFault(cpu, req.iova, req.isWrite, ats);
    const sim::TimeNs done =
        mmu_.backend().respondPageRequest(*cpu.core, cpu.time, req, ok);
    cpu.waitUntil(done);
    return ok;
}

bool
SvaDomain::evict(sim::CpuCursor &cpu, Iova va, AtsAgent *ats)
{
    const Iova page = va & ~Iova(mem::kPageSize - 1);
    const auto it = resident_.find(page);
    if (it == resident_.end())
        return false;
    const mem::Pfn pfn = it->second.pfn;
    mmu_.unmapPage(domain_, page);
    cpu.waitUntil(mmu_.backend().syncInvalidate(
        *cpu.core, cpu.time, domain_, page, mem::kPageSize));
    if (ats != nullptr)
        cpu.waitUntil(mmu_.backend().atsInvalidate(
            *cpu.core, cpu.time, *ats, domain_, page, mem::kPageSize));
    alloc_.freePages(pfn, 0);
    resident_.erase(it);
    ++evictions_;
    ctx_.stats.add("sva.evictions");
    return true;
}

void
SvaDomain::evictLru(sim::CpuCursor &cpu, AtsAgent *ats)
{
    auto lru = resident_.begin();
    for (auto it = resident_.begin(); it != resident_.end(); ++it)
        if (it->second.lastUse < lru->second.lastUse)
            lru = it;
    if (lru != resident_.end())
        evict(cpu, lru->first, ats);
}

} // namespace damn::iommu
