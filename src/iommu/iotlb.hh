/**
 * @file
 * Set-associative IOTLB model.
 *
 * Caches IOVA-to-PA translations per domain.  Crucially for the
 * paper's security analysis, a stale IOTLB entry keeps a translation
 * *functionally alive* after the page-table entry is gone — this is the
 * deferred-mode vulnerability window the attack tests exploit.
 */

#ifndef DAMN_IOMMU_IOTLB_HH
#define DAMN_IOMMU_IOTLB_HH

#include <cstdint>
#include <vector>

#include "iommu/io_pgtable.hh"

namespace damn::iommu {

/** Identifier of an IOMMU domain (one per attached device here). */
using DomainId = std::uint32_t;

/** One cached translation. */
struct TlbEntry
{
    bool valid = false;
    DomainId domain = 0;
    Iova iovaPage = 0;          //!< page-aligned tag (4 KiB or 2 MiB)
    mem::Pa paPage = 0;
    std::uint32_t perm = 0;
    bool huge = false;
    std::uint64_t lastUse = 0;  //!< LRU stamp
};

/**
 * Two-bank set-associative IOTLB: a 4 KiB bank and a 2 MiB bank, as in
 * real VT-d implementations.  A 2 MiB entry covers 512x the IOVA range,
 * which is why Table 3's huge+dense variant gains throughput.
 */
class Iotlb
{
  public:
    /**
     * @param sets4k / @p ways4k  geometry of the 4 KiB bank.
     * @param sets2m / @p ways2m  geometry of the 2 MiB bank.
     * @param pwc_entries         page-walk-cache capacity (backends
     *                            differ; see iommu::TlbGeometry).
     */
    Iotlb(unsigned sets4k = 256, unsigned ways4k = 4,
          unsigned sets2m = 32, unsigned ways2m = 4,
          unsigned pwc_entries = 32)
        : sets4k_(sets4k), ways4k_(ways4k),
          sets2m_(sets2m), ways2m_(ways2m),
          bank4k_(std::size_t(sets4k) * ways4k),
          bank2m_(std::size_t(sets2m) * ways2m),
          pwc_(pwc_entries)
    {}

    /** Look up @p iova for @p domain; returns nullptr on miss. */
    const TlbEntry *lookup(DomainId domain, Iova iova);

    /**
     * Page-walk-cache lookup+fill for a missing translation: true when
     * the upper page-table levels for @p iova's 2 MiB region are
     * cached, making the walk cheap.  DAMN's metadata-in-IOVA encoding
     * spreads buffers across many 2 MiB regions (one per allocating
     * core x cache), which thrashes this cache — the effect Table 3's
     * dense-IOVA variant removes.
     */
    bool walkCached(DomainId domain, Iova iova);

    /** Insert a walk result (evicts LRU way of the set). */
    void insert(DomainId domain, Iova iova, const WalkResult &walk);

    /** Invalidate any entry covering [@p iova, @p iova + @p len). */
    void invalidateRange(DomainId domain, Iova iova, std::uint64_t len);

    /** Invalidate everything belonging to @p domain. */
    void invalidateDomain(DomainId domain);

    /** Invalidate the whole IOTLB (global flush). */
    void invalidateAll();

    /**
     * Snapshot of every valid entry cached for @p domain (both banks).
     *
     * COLD PATH ONLY: audit/teardown use, never per-packet.  It scans
     * both banks linearly, allocates the result vector, charges no
     * virtual time and no sim::Tracer category, and — being const —
     * cannot perturb the hot-path state (hit/miss counters, LRU clock,
     * entry stamps), so calling it mid-run never changes simulated
     * output.  After a domain invalidation this must be empty;
     * anything else is a stale translation keeping freed memory
     * device-reachable.
     */
    std::vector<TlbEntry> validEntries(DomainId domain) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t invalidations() const { return invalidations_; }

    /**
     * TEST-ONLY oracle self-check hook: silently discard the next
     * @p n *targeted* invalidations (invalidateRange/invalidateDomain;
     * never the global invalidateAll).  The drop is invisible — the
     * invalidation counter does not advance and no stat is booked — so
     * it plants exactly the stale-translation hole the fuzzer's
     * no-stale-translation-after-sync oracle must catch.  Production
     * code never calls this; the fuzz harness arms it via its
     * inject_bug op.
     */
    void debugDropInvalidations(unsigned n) { debugDropRemaining_ = n; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0 : double(hits_) / double(total);
    }

    void
    resetAccounting()
    {
        hits_ = 0;
        misses_ = 0;
        invalidations_ = 0;
    }

  private:
    TlbEntry *setBase(bool huge, DomainId domain, Iova page_tag);
    unsigned waysOf(bool huge) const { return huge ? ways2m_ : ways4k_; }

    /** Page-walk cache: fully associative LRU of 2 MiB region tags. */
    struct PwcEntry
    {
        bool valid = false;
        DomainId domain = 0;
        Iova tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned sets4k_, ways4k_, sets2m_, ways2m_;
    std::vector<TlbEntry> bank4k_;
    std::vector<TlbEntry> bank2m_;
    std::vector<PwcEntry> pwc_;
    std::uint64_t clock_ = 0;
    unsigned debugDropRemaining_ = 0; //!< test-only; see above
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t invalidations_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IOTLB_HH
