/**
 * @file
 * The IOMMU backend concept: everything that differs between IOMMU
 * *hardware families* lives behind this interface, so the generic
 * facade (iommu.hh), the protection schemes (dma/schemes.hh) and the
 * DAMN allocator (core/) are written once and run unchanged on every
 * modeled implementation.
 *
 * A backend owns:
 *
 *  - the IOTLB (geometry differs per implementation — see TlbGeometry),
 *  - the page-walk latency model (walk caches, descriptor fetches),
 *  - the invalidation machinery (VT-d's invalidation queue vs the
 *    SMMUv3 command queue) with its per-op cost and contention model,
 *  - the device attach/detach hooks (VT-d context entries vs SMMUv3
 *    stream-table entries),
 *  - the hardware-side fault reporting structure (VT-d fault recording
 *    registers vs the SMMUv3 event queue),
 *  - the IOVA address layout the allocators partition (AddressLayout).
 *
 * Concrete models: backend_vtd.hh (Intel VT-d, the paper's testbed)
 * and backend_smmu.hh (ARM SMMUv3).
 */

#ifndef DAMN_IOMMU_BACKEND_HH
#define DAMN_IOMMU_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "iommu/iotlb.hh"
#include "sim/context.hh"

namespace damn::iommu {

/** Which hardware model backs the IOMMU facade. */
enum class BackendKind : std::uint8_t
{
    Vtd,    //!< Intel VT-d (the paper's testbed)
    SmmuV3, //!< ARM SMMUv3
};

const char *backendKindName(BackendKind k);

class AtsAgent;

/** Parse a --backend= token; returns false on an unknown name. */
bool backendFromName(const std::string &name, BackendKind *out);

/** Why a DMA was blocked. */
enum class FaultReason : std::uint8_t
{
    NotPresent,  //!< no mapping covers the IOVA
    Permission,  //!< mapping exists but lacks the access right
    Quarantined, //!< the domain is quarantined after repeated faults
    Injected,    //!< forced by the fault injector (transient HW fault)
    Detached,    //!< the domain was detached (device torn down)
};

const char *faultReasonName(FaultReason r);

/** One entry of the IOMMU fault log (a fault recording register on
 *  VT-d, an event-queue record on SMMUv3). */
struct FaultRecord
{
    DomainId domain = 0;
    Iova iova = 0;
    bool isWrite = false;
    FaultReason reason = FaultReason::NotPresent;
    sim::TimeNs time = 0;
};

/**
 * How a backend carves up its IOVA space.  Everything is derived from
 * the implemented input-address width: the top bit tags DAMN's encoded
 * half (paper section 5.4) and the DAMN metadata fields are packed
 * immediately below it (paper figure 3), so a backend with a narrower
 * input size shifts the whole encoding down rather than breaking it.
 *
 * For the default 48-bit layout the derived values reproduce the
 * paper's concrete split:
 *
 *   47    46..40   39..37    36..30   29      28..0
 *   [1]   cpu idx  rights    dev idx  numa    offset (512 MiB/region)
 */
struct AddressLayout
{
    /** Implemented input-address width, bits. */
    unsigned iovaBits = 48;

    /** Bit tagging DAMN's half of the space (the MSB). */
    constexpr unsigned tagBit() const { return iovaBits - 1; }
    /** Mask of the tag bit (== the DAMN half's base address). */
    constexpr Iova tagMask() const { return Iova{1} << tagBit(); }
    /** Exclusive ceiling of the DMA-API half managed by IovaAllocator. */
    constexpr Iova dmaApiLimit() const { return tagMask(); }

    // DAMN metadata fields (core/iova_encoding.hh), packed below the tag.
    constexpr unsigned cpuShift() const { return tagBit() - 7; }
    constexpr unsigned rightsShift() const { return tagBit() - 10; }
    constexpr unsigned devShift() const { return tagBit() - 17; }
    constexpr unsigned numaShift() const { return tagBit() - 18; }
    /** Per-(cpu, rights, dev, numa) region offset space. */
    constexpr std::uint64_t offsetMask() const
    {
        return (std::uint64_t{1} << numaShift()) - 1;
    }
    /** Region shift of the dense (non-encoded) DAMN IOVA mode. */
    constexpr unsigned denseRegionShift() const { return tagBit() - 13; }

    constexpr bool operator==(const AddressLayout &) const = default;
};

/** IOTLB dimensions of a backend (see Iotlb's constructor). */
struct TlbGeometry
{
    unsigned sets4k = 256;
    unsigned ways4k = 4;
    unsigned sets2m = 32;
    unsigned ways2m = 4;
    unsigned pwcEntries = 32;
};

/**
 * Abstract IOMMU hardware model.  The generic Iommu facade delegates
 * every hardware-specific operation here; all methods charge their
 * costs through the owning sim::Context.
 *
 * Invalidation-ordering contract (what the schemes rely on):
 *
 *  - the three flush entry points return the *completion* time; when
 *    they return, the invalidated translations are gone from tlb()
 *    unless an injected `iommu.inval` fault dropped the operation
 *    (time spent, stale entries survive — the recovery tests poke
 *    exactly this hole);
 *  - an entry stays visible (stale) until a flush covering it
 *    completes — this models the deferred-mode vulnerability window
 *    on every backend;
 *  - calls serialize on backend-defined producer locks, which is where
 *    the backends price contention differently (VT-d holds its global
 *    queue lock for the whole hardware round trip; SMMUv3 holds the
 *    command-queue lock only while producing commands).
 *
 * ATS extension of the contract: a device-side TLB (AtsAgent's ATC)
 * caches translations *outside* the IOMMU, so the flush entry points
 * above do NOT touch it.  An ATC entry is certainly gone only once an
 * atsInvalidate()/atsInvalidateAll() covering it has completed — and
 * those verbs ride the same invalidation machinery, including the
 * injectable `iommu.inval` drop hole (VT-d: the device-TLB
 * invalidation descriptor is dropped; SMMUv3: the CMD_ATC_INV is
 * pending until the covering CMD_SYNC, and an injected fault drops
 * the whole batch).
 */
class IommuBackend
{
  public:
    /** One range of a scatter-gather invalidation. */
    struct InvalRange
    {
        DomainId domain;
        Iova iova;
        std::uint64_t len;
    };

    IommuBackend(sim::Context &ctx, const TlbGeometry &g)
        : ctx_(ctx), tlb_(g.sets4k, g.ways4k, g.sets2m, g.ways2m,
                          g.pwcEntries)
    {}

    virtual ~IommuBackend() = default;
    IommuBackend(const IommuBackend &) = delete;
    IommuBackend &operator=(const IommuBackend &) = delete;

    virtual BackendKind kind() const = 0;
    const char *name() const { return backendKindName(kind()); }
    virtual AddressLayout layout() const = 0;

    // ---- Device lifecycle ------------------------------------------

    /** A domain was created or re-attached: install the hardware
     *  config that routes the device to its page table (a VT-d context
     *  entry, an SMMUv3 STE + CD). */
    virtual void attachDevice(DomainId d) = 0;

    /** The domain is being torn down: drop the routing config.  Like
     *  the facade's teardown IOTLB flush this is modeled as guaranteed
     *  (not injectable). */
    virtual void detachDevice(DomainId d) = 0;

    // ---- Translation -----------------------------------------------

    /**
     * Device-visible latency of translating @p iova after a tlb() miss
     * (walk caches and descriptor fetches are looked up *and filled*
     * here, so call it exactly once per miss).
     */
    virtual sim::TimeNs walkLatency(DomainId d, Iova iova) = 0;

    // ---- Invalidation ----------------------------------------------

    /**
     * Synchronously invalidate one IOVA range (the strict scheme's
     * per-unmap flush).
     * @return completion time.
     */
    virtual sim::TimeNs syncInvalidate(sim::Core &core, sim::TimeNs now,
                                       DomainId domain, Iova iova,
                                       std::uint64_t len) = 0;

    /**
     * Synchronously invalidate a scatter-gather list of ranges with
     * one completion wait (dma_unmap_sg under the strict scheme).
     * @return completion time.
     */
    virtual sim::TimeNs
    syncInvalidateRanges(sim::Core &core, sim::TimeNs now,
                         const std::vector<InvalRange> &ranges) = 0;

    /**
     * One batched flush covering many deferred unmaps, scoped to
     * @p domains so one device's flush cannot evict every other
     * domain's warm entries.
     * @return completion time.
     */
    virtual sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now,
                 const std::vector<DomainId> &domains) = 0;

    /**
     * Global flush.  Used when the released mappings span every domain
     * at once — e.g. the DAMN shrinker returning chunks from all
     * device caches — where one global command beats per-domain ones.
     * @return completion time.
     */
    virtual sim::TimeNs batchedFlushAll(sim::Core &core,
                                        sim::TimeNs now) = 0;

    // ---- ATS / PRI (page-faultable DMA) ----------------------------

    /** One PCIe page request (PRI): a device asking the OS to make an
     *  address translatable so a stalled/faulted DMA can resume. */
    struct PageRequest
    {
        DomainId domain = 0;
        Iova iova = 0;
        bool isWrite = false;
        std::uint32_t group = 0;  //!< page-request-group / stall tag
        sim::TimeNs time = 0;     //!< when the device posted it
    };

    /**
     * A device posts a page request.  Bounded queue: when the ring is
     * full the hardware auto-responds failure (the device must back
     * off and retry) and this returns false.  VT-d models the PRQ
     * ring + PRSR status bits; SMMUv3 models the stalled-transaction
     * table whose overflow terminates the transaction.
     */
    virtual bool postPageRequest(const PageRequest &req) = 0;

    /** OS-side consumption: drain every queued request (and clear any
     *  overflow condition so new requests can be accepted again). */
    virtual std::vector<PageRequest> fetchPageRequests() = 0;

    /**
     * OS responds to a fetched request: VT-d produces a
     * page_group_response descriptor into the invalidation queue;
     * SMMUv3 produces a CMD_RESUME into the command queue.
     * @return completion time (when the device may retry).
     */
    virtual sim::TimeNs respondPageRequest(sim::Core &core,
                                           sim::TimeNs now,
                                           const PageRequest &req,
                                           bool success) = 0;

    /**
     * Invalidate @p agent's device TLB for one IOVA range (VT-d
     * device-TLB invalidation descriptor; SMMUv3 CMD_ATC_INV +
     * CMD_SYNC).  Subject to the injectable `iommu.inval` drop.
     * @return completion time.
     */
    virtual sim::TimeNs atsInvalidate(sim::Core &core, sim::TimeNs now,
                                      AtsAgent &agent, DomainId domain,
                                      Iova iova, std::uint64_t len) = 0;

    /** Invalidate @p agent's whole device TLB (global CMD_ATC_INV /
     *  device-TLB global invalidation descriptor). */
    virtual sim::TimeNs atsInvalidateAll(sim::Core &core,
                                         sim::TimeNs now,
                                         AtsAgent &agent,
                                         DomainId domain) = 0;

    // PRI accounting shared by both models (the conservation law the
    // fuzzer's pri-conservation oracle checks):
    //   posted == autoResponses + pending + fetched,
    //   responded <= fetched.
    std::size_t pendingPageRequests() const { return prq_.size(); }
    std::uint64_t pageRequestsPosted() const { return priPosted_; }
    std::uint64_t pageRequestsFetched() const { return priFetched_; }
    std::uint64_t pageRequestsResponded() const { return priResponded_; }
    std::uint64_t
    pageRequestAutoResponses() const
    {
        return priAutoResponses_;
    }
    /** High-water mark of the request queue over the run. */
    std::size_t pageRequestMaxDepth() const { return priMaxDepth_; }

    // ---- Fault delivery --------------------------------------------

    /**
     * A translation faulted: record it in the backend's hardware-side
     * reporting structure.  The facade keeps the driver-side bounded
     * log and the quarantine logic; backends only model how the
     * hardware surfaces the event (VT-d: fault recording registers,
     * already covered by the facade log, so a no-op; SMMUv3: the
     * bounded event queue with overflow accounting).
     */
    virtual void deliverFault(const FaultRecord &) {}

    /** The backend's IOTLB (geometry chosen by the implementation). */
    Iotlb &tlb() { return tlb_; }
    const Iotlb &tlb() const { return tlb_; }

  protected:
    /** Bounded-queue accept half of postPageRequest(): counts the
     *  post, auto-responds failure when @p depth is reached. */
    bool
    priAccept(const PageRequest &req, std::size_t depth)
    {
        ++priPosted_;
        ctx_.stats.add("pri.requests");
        if (prq_.size() >= depth) {
            ++priAutoResponses_;
            ctx_.stats.add("pri.auto_responses");
            return false;
        }
        prq_.push_back(req);
        if (prq_.size() > priMaxDepth_)
            priMaxDepth_ = prq_.size();
        return true;
    }

    /** Drain half of fetchPageRequests(). */
    std::vector<PageRequest>
    priDrain()
    {
        priFetched_ += prq_.size();
        std::vector<PageRequest> out = std::move(prq_);
        prq_.clear();
        return out;
    }

    /** Response accounting for respondPageRequest(). */
    void
    priNoteResponse()
    {
        ++priResponded_;
        ctx_.stats.add("pri.responses");
    }

    sim::Context &ctx_;
    Iotlb tlb_;

  private:
    std::vector<PageRequest> prq_;
    std::uint64_t priPosted_ = 0;
    std::uint64_t priFetched_ = 0;
    std::uint64_t priResponded_ = 0;
    std::uint64_t priAutoResponses_ = 0;
    std::size_t priMaxDepth_ = 0;
};

/** Construct a backend model. */
std::unique_ptr<IommuBackend> makeBackend(BackendKind kind,
                                          sim::Context &ctx);

} // namespace damn::iommu

#endif // DAMN_IOMMU_BACKEND_HH
