/**
 * @file
 * Shared Virtual Addressing: a protection domain where IOVA = process
 * virtual address and pages are demand-faulted.
 *
 * An SvaDomain owns one facade domain and a resident set of pageable
 * frames.  Nothing is premapped: a device DMA into the domain misses
 * its ATS translation, posts a page request, and the simulated OS
 * fault handler here allocates a frame (through the `mem.page_alloc`
 * fault site, so service can fail under pressure), installs the PTE,
 * and responds so the device resumes.  A bounded resident limit plus
 * LRU eviction models memory pressure: eviction unmaps the page,
 * invalidates the IOTLB *and* the device TLB, and frees the frame —
 * the full reclaim path a faultable mapping must survive.
 */

#ifndef DAMN_IOMMU_SVA_HH
#define DAMN_IOMMU_SVA_HH

#include <cstdint>
#include <map>

#include "iommu/ats.hh"
#include "iommu/backend.hh"
#include "mem/page_alloc.hh"
#include "sim/context.hh"
#include "sim/cpu_cursor.hh"

namespace damn::iommu {

class Iommu;

/** One SVA domain: pageable process memory a device can fault on. */
class SvaDomain
{
  public:
    /**
     * @param residentLimitPages  evict LRU beyond this many resident
     *                            pages; 0 means unbounded.
     */
    SvaDomain(sim::Context &ctx, Iommu &mmu, mem::PageAllocator &alloc,
              unsigned residentLimitPages = 0);
    ~SvaDomain();

    SvaDomain(const SvaDomain &) = delete;
    SvaDomain &operator=(const SvaDomain &) = delete;

    DomainId domain() const { return domain_; }
    sim::Context &ctx() { return ctx_; }

    bool resident(Iova va) const;
    /** Frame backing @p va's page, 0 when not resident. */
    mem::Pa paOf(Iova va) const;

    /**
     * The OS page-fault handler: make @p va's page resident.  Spurious
     * faults (already resident) succeed cheaply.  Returns false when
     * the allocation fails — injected `mem.page_alloc` fault or real
     * exhaustion — in which case the device gets a failure response
     * and must retry.
     */
    bool handleFault(sim::CpuCursor &cpu, Iova va, bool is_write,
                     AtsAgent *ats = nullptr);

    /**
     * Service one fetched page request end to end: charge the handler
     * CPU, run handleFault(), and produce the success/failure response
     * through the backend (the device's resume signal).
     */
    bool servicePageRequest(sim::CpuCursor &cpu,
                            const IommuBackend::PageRequest &req,
                            AtsAgent *ats = nullptr);

    /**
     * Reclaim @p va's page: unmap, synchronous IOTLB invalidation,
     * device-TLB invalidation when @p ats is given, free the frame.
     * Returns false when the page was not resident.
     */
    bool evict(sim::CpuCursor &cpu, Iova va, AtsAgent *ats = nullptr);

    std::uint64_t residentPages() const { return resident_.size(); }
    std::uint64_t faultsServiced() const { return faultsServiced_; }
    std::uint64_t failedFaults() const { return failedFaults_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    struct Resident
    {
        mem::Pfn pfn;
        std::uint64_t lastUse;
    };

    void evictLru(sim::CpuCursor &cpu, AtsAgent *ats);

    sim::Context &ctx_;
    Iommu &mmu_;
    mem::PageAllocator &alloc_;
    unsigned residentLimit_;
    DomainId domain_;
    std::map<Iova, Resident> resident_;
    std::uint64_t useClock_ = 0;
    std::uint64_t faultsServiced_ = 0;
    std::uint64_t failedFaults_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_SVA_HH
