/**
 * @file
 * ATS device-TLB (ATC) implementation.
 */

#include "iommu/ats.hh"

#include "iommu/iommu.hh"

namespace damn::iommu {

AtsAgent::AtsAgent(sim::Context &ctx, Iommu &mmu, DomainId domain)
    : ctx_(ctx), mmu_(mmu), domain_(domain),
      atc_(ctx.cost.atsDevTlbEntries)
{}

AtsAgent::Entry *
AtsAgent::find(Iova page)
{
    for (Entry &e : atc_)
        if (e.valid && e.page == page)
            return &e;
    return nullptr;
}

void
AtsAgent::insert(Iova page, mem::Pa paPage, std::uint32_t perm)
{
    Entry *victim = &atc_[0];
    for (Entry &e : atc_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lastUse < victim->lastUse)
            victim = &e;
    }
    *victim = {true, page, paPage, perm, ++clock_};
}

AtsAgent::Result
AtsAgent::translate(Iova iova, bool is_write)
{
    Result r;
    const Iova page = iova & ~Iova(mem::kPageSize - 1);
    const std::uint32_t need = is_write ? PermWrite : PermRead;

    if (Entry *e = find(page); e != nullptr && (e->perm & need) == need) {
        e->lastUse = ++clock_;
        ++hits_;
        ctx_.stats.add("ats.devtlb_hits");
        r.ok = true;
        r.hit = true;
        r.pa = e->paPage + (iova - page);
        r.latencyNs = ctx_.cost.atsDevTlbHitNs;
        return r;
    }

    // ATC miss: a PCIe translation request — one fabric round trip
    // plus the IOMMU-side walk.  The walk reads the domain's page
    // table directly; "no sufficient mapping" comes back as a
    // translation with no access rights (the PRI retry signal), not a
    // recorded IOMMU fault.
    ++misses_;
    ctx_.stats.add("ats.devtlb_misses");
    r.latencyNs = ctx_.cost.atsTranslateNs +
                  mmu_.backend().walkLatency(domain_, iova);
    const WalkResult w = mmu_.pageTable(domain_).walk(iova);
    if (!w.present || (w.perm & need) != need)
        return r;
    const mem::Pa paPage = w.pa & ~mem::Pa(mem::kPageSize - 1);
    insert(page, paPage, w.perm);
    r.ok = true;
    r.pa = w.pa;
    return r;
}

void
AtsAgent::invalidateRange(Iova iova, std::uint64_t len)
{
    if (debugDropRemaining_ > 0) {
        --debugDropRemaining_;
        return;
    }
    ++invalidations_;
    const Iova lo = iova;
    const Iova hi = iova + len;
    for (Entry &e : atc_)
        if (e.valid && e.page < hi && e.page + mem::kPageSize > lo)
            e.valid = false;
}

void
AtsAgent::invalidateAll()
{
    if (debugDropRemaining_ > 0) {
        --debugDropRemaining_;
        return;
    }
    ++invalidations_;
    for (Entry &e : atc_)
        e.valid = false;
}

void
AtsAgent::reset()
{
    for (Entry &e : atc_)
        e.valid = false;
    debugDropRemaining_ = 0;
}

std::vector<Iova>
AtsAgent::validEntries() const
{
    std::vector<Iova> out;
    for (const Entry &e : atc_)
        if (e.valid)
            out.push_back(e.page);
    return out;
}

std::size_t
AtsAgent::entries() const
{
    std::size_t n = 0;
    for (const Entry &e : atc_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace damn::iommu
