/**
 * @file
 * IOMMU translation path.
 */

#include "iommu/iommu.hh"

namespace damn::iommu {

TranslateResult
Iommu::translate(DomainId d, Iova iova, bool is_write)
{
    TranslateResult r;
    if (!enabled_) {
        r.ok = true;
        r.pa = iova; // identity: DMA address == physical address
        return r;
    }

    const std::uint32_t need = is_write ? PermWrite : PermRead;

    if (const TlbEntry *e = iotlb_.lookup(d, iova)) {
        if ((e->perm & need) == need) {
            const std::uint64_t mask =
                (e->huge ? kHugePageSize : mem::kPageSize) - 1;
            r.ok = true;
            r.pa = e->paPage | (iova & mask);
            return r;
        }
        // Permission fault despite a cached translation.
        r.fault = true;
        ++faults_;
        return r;
    }

    const WalkResult w = pageTable(d).walk(iova);
    r.latencyNs = iotlb_.walkCached(d, iova) ? ctx_.cost.iotlbWalkPwcNs
                                             : ctx_.cost.iotlbWalkNs;
    if (!w.present || (w.perm & need) != need) {
        r.fault = true;
        ++faults_;
        return r;
    }
    iotlb_.insert(d, iova, w);
    r.ok = true;
    r.pa = w.pa;
    return r;
}

} // namespace damn::iommu
