/**
 * @file
 * IOMMU translation path and fault reporting.
 */

#include "iommu/iommu.hh"

namespace damn::iommu {

void
Iommu::recordFault(DomainId d, Iova iova, bool is_write,
                   FaultReason reason)
{
    const FaultRecord rec{d, iova, is_write, reason, ctx_.engine.now()};
    ++faults_;
    // Device-originated events have no CPU; by convention they land in
    // core 0's event ring.
    ctx_.tracer.instant(0, sim::TraceCat::Fault, "iommu.fault",
                        rec.time, 0,
                        std::uint64_t(static_cast<std::uint8_t>(reason)));
    const std::uint64_t df = ++domainFaults_.at(d);
    if (faultLog_.size() < faultLogCap_)
        faultLog_.push_back(rec);
    else
        ++faultLogOverflows_;
    // Hardware-side delivery (the SMMUv3 event queue; a no-op on
    // VT-d, whose recording registers the log above already models).
    backend_->deliverFault(rec);
    if (quarantineThreshold_ != 0 && reason != FaultReason::Quarantined &&
        df >= quarantineThreshold_)
        quarantined_.at(d) = true;
    if (faultCb_)
        faultCb_(rec);
}

TranslateResult
Iommu::translate(DomainId d, Iova iova, bool is_write)
{
    TranslateResult r;
    if (!enabled_) {
        r.ok = true;
        r.pa = iova; // identity: DMA address == physical address
        return r;
    }

    if (detached_.at(d)) {
        r.fault = true;
        recordFault(d, iova, is_write, FaultReason::Detached);
        return r;
    }

    if (quarantined_.at(d)) {
        r.fault = true;
        recordFault(d, iova, is_write, FaultReason::Quarantined);
        return r;
    }

    if (ctx_.faults.shouldFail(sim::FaultSite::DmaTranslate)) {
        r.fault = true;
        recordFault(d, iova, is_write, FaultReason::Injected);
        return r;
    }

    const std::uint32_t need = is_write ? PermWrite : PermRead;

    Iotlb &tlb = backend_->tlb();
    if (const TlbEntry *e = tlb.lookup(d, iova)) {
        if ((e->perm & need) == need) {
            const std::uint64_t mask =
                (e->huge ? kHugePageSize : mem::kPageSize) - 1;
            r.ok = true;
            r.pa = e->paPage | (iova & mask);
            return r;
        }
        // Permission fault despite a cached translation.
        r.fault = true;
        recordFault(d, iova, is_write, FaultReason::Permission);
        return r;
    }

    const WalkResult w = pageTable(d).walk(iova);
    r.latencyNs = backend_->walkLatency(d, iova);
    // Misses only: per-hit instants would dwarf everything else in the
    // trace, and the hit count is already in the IOTLB stats.
    ctx_.tracer.instant(0, sim::TraceCat::Iotlb, "iotlb.miss",
                        ctx_.engine.now(), 0, r.latencyNs);
    if (!w.present || (w.perm & need) != need) {
        r.fault = true;
        recordFault(d, iova, is_write,
                    w.present ? FaultReason::Permission
                              : FaultReason::NotPresent);
        return r;
    }
    tlb.insert(d, iova, w);
    r.ok = true;
    r.pa = w.pa;
    return r;
}

} // namespace damn::iommu
