/**
 * @file
 * ARM SMMUv3 backend.
 *
 * The second hardware model behind IommuBackend, after the Crete
 * ARMv8 RDMA thesis's description of the SMMU programming model.  The
 * structures that matter for DAMN's cost analysis:
 *
 *  - **Stream table**: each device's StreamID indexes an STE which
 *    points at a Context Descriptor (CD) holding the page-table root.
 *    Attach installs STE + CD; the SMMU caches the CD and pays a
 *    descriptor fetch on the first walk after attach (or after a
 *    CFGI_STE/CFGI_CD config invalidation).
 *
 *  - **Command queue**: *all* invalidation traffic is produced into a
 *    single memory ring (CMD_TLBI_NH_VA / _ASID / _ALL ...) and
 *    consumed asynchronously by the SMMU.  Producers serialize only
 *    while reserving slots and writing commands; completion is
 *    observed by producing a CMD_SYNC and waiting for it to drain.
 *    This is the architectural asymmetry vs VT-d that makes scheme x
 *    backend an interesting axis: VT-d's strict mode holds a global
 *    lock for the full invalidate round trip, while SMMUv3 holds the
 *    cmdq lock only for the (cheap) production and overlaps the
 *    (expensive) consumption with other cores' work.
 *
 *  - **Event queue**: translation faults are delivered as records in a
 *    bounded memory ring; when the ring is full, further records are
 *    dropped and a global overflow flag is raised (modeled as a
 *    counter).  The facade's driver-side FaultRecord log rides on top
 *    unchanged, so quarantine/reset and the lifecycle machinery work
 *    identically on both backends.
 *
 *  - **TLB geometry**: half the 4 KiB reach of the VT-d model and a
 *    smaller walk cache — DAMN's encoded IOVAs, which spread buffers
 *    across many 2 MiB regions, hurt proportionally more here.
 */

#ifndef DAMN_IOMMU_BACKEND_SMMU_HH
#define DAMN_IOMMU_BACKEND_SMMU_HH

#include "iommu/backend.hh"
#include "sim/sim_mutex.hh"

namespace damn::iommu {

/** ARM SMMUv3 hardware model. */
class SmmuV3Backend : public IommuBackend
{
  public:
    /** SMMU-class IOTLB: 512 4 KiB entries, 64 2 MiB entries, and a
     *  16-entry walk cache. */
    static constexpr TlbGeometry kGeometry{128, 4, 16, 4, 16};

    explicit SmmuV3Backend(sim::Context &ctx)
        : IommuBackend(ctx, kGeometry)
    {}

    BackendKind kind() const override { return BackendKind::SmmuV3; }
    /** SMMUv3 supports up to 52-bit IAS; we model the common 48-bit
     *  configuration so DAMN's encoding is directly comparable. */
    AddressLayout layout() const override { return AddressLayout{48}; }

    void attachDevice(DomainId d) override;
    void detachDevice(DomainId d) override;

    sim::TimeNs walkLatency(DomainId d, Iova iova) override;

    sim::TimeNs syncInvalidate(sim::Core &core, sim::TimeNs now,
                               DomainId domain, Iova iova,
                               std::uint64_t len) override;
    sim::TimeNs
    syncInvalidateRanges(sim::Core &core, sim::TimeNs now,
                         const std::vector<InvalRange> &ranges) override;
    sim::TimeNs batchedFlush(sim::Core &core, sim::TimeNs now,
                             const std::vector<DomainId> &domains) override;
    sim::TimeNs batchedFlushAll(sim::Core &core, sim::TimeNs now) override;

    void deliverFault(const FaultRecord &rec) override;

    // ---- Command-queue primitives (also driven by tests) -----------

    /**
     * Produce a CMD_TLBI_NH_VA (range form) without a CMD_SYNC: the
     * invalidation is *pending* — stale translations stay visible in
     * tlb() until a later sync() applies it.
     * @return time the producer releases the cmdq lock.
     */
    sim::TimeNs submitTlbiRange(sim::Core &core, sim::TimeNs now,
                                DomainId domain, Iova iova,
                                std::uint64_t len);

    /** Produce a CMD_TLBI_NH_ASID (whole-domain) without a CMD_SYNC. */
    sim::TimeNs submitTlbiDomain(sim::Core &core, sim::TimeNs now,
                                 DomainId domain);

    /** Produce a CMD_TLBI_NH_ALL (global) without a CMD_SYNC. */
    sim::TimeNs submitTlbiAll(sim::Core &core, sim::TimeNs now);

    /**
     * Produce a CMD_SYNC and wait for it — and therefore every prior
     * command — to be consumed.  The wait happens *outside* the cmdq
     * lock (WFE-style, partially booked as busy time).  On return the
     * pending invalidations have been applied to tlb(), unless an
     * injected `iommu.inval` fault dropped the batch (time spent,
     * stale entries survive — same injectable hole as VT-d).
     * @return completion time.
     */
    sim::TimeNs sync(sim::Core &core, sim::TimeNs now);

    /** Commands produced and not yet covered by a CMD_SYNC. */
    std::size_t pendingCommands() const { return pending_.size(); }

    // ---- ATS / PRI (stall model) -----------------------------------

    /**
     * A faulting transaction stalls: it occupies a slot in the
     * stalled-transaction table until the OS issues CMD_RESUME.  A
     * full table terminates the transaction (the auto-response) — the
     * device must retry from scratch.
     */
    bool postPageRequest(const PageRequest &req) override;

    std::vector<PageRequest> fetchPageRequests() override;

    /** CMD_RESUME (retry or terminate) produced into the cmdq; fire
     *  and forget — no CMD_SYNC needed for the device to resume. */
    sim::TimeNs respondPageRequest(sim::Core &core, sim::TimeNs now,
                                   const PageRequest &req,
                                   bool success) override;

    /**
     * Produce a CMD_ATC_INV *without* a CMD_SYNC: like the TLBI
     * commands, the device-TLB invalidation is pending — stale ATC
     * entries stay visible until a later sync() applies it (and an
     * injected `iommu.inval` fault at that sync drops it with the
     * rest of the batch).  This is the ATS-invalidation-vs-CMD_SYNC
     * race the conformance suite pins.
     * @return time the producer releases the cmdq lock.
     */
    sim::TimeNs submitAtcInvRange(sim::Core &core, sim::TimeNs now,
                                  AtsAgent &agent, Iova iova,
                                  std::uint64_t len);

    /** Produce a global CMD_ATC_INV for @p agent without a CMD_SYNC. */
    sim::TimeNs submitAtcInvAll(sim::Core &core, sim::TimeNs now,
                                AtsAgent &agent);

    sim::TimeNs atsInvalidate(sim::Core &core, sim::TimeNs now,
                              AtsAgent &agent, DomainId domain,
                              Iova iova, std::uint64_t len) override;

    sim::TimeNs atsInvalidateAll(sim::Core &core, sim::TimeNs now,
                                 AtsAgent &agent,
                                 DomainId domain) override;

    // ---- Event queue (hardware-side fault ring) --------------------

    /** Records currently in the event queue, oldest first. */
    const std::vector<FaultRecord> &eventQueue() const { return eventq_; }

    /** Records dropped because the ring was full (the architecture's
     *  EVENTQ overflow flag, as a count). */
    std::uint64_t eventQueueOverflows() const { return evtqOverflows_; }

    /** Records consumed by the driver over the backend's lifetime
     *  (conservation: faults == in-queue + drained + overflowed). */
    std::uint64_t eventQueueDrained() const { return evtqDrained_; }

    /** Driver-side consumption: empty the ring, clearing the overflow
     *  condition so new records can be delivered again. */
    std::vector<FaultRecord>
    drainEventQueue()
    {
        if (!eventq_.empty()) {
            evtqDrained_ += eventq_.size();
            ctx_.stats.add("smmu.evtq_drained", eventq_.size());
        }
        std::vector<FaultRecord> out = std::move(eventq_);
        eventq_.clear();
        return out;
    }

    /** True when @p d's CD is in the config cache (no descriptor fetch
     *  on the next walk). */
    bool
    configCached(DomainId d) const
    {
        return d < cdCached_.size() && cdCached_[d];
    }

  private:
    struct PendingInval
    {
        enum class Kind : std::uint8_t
        {
            Range,
            Domain,
            All,
            AtcRange, //!< CMD_ATC_INV, one range of agent's ATC
            AtcAll,   //!< CMD_ATC_INV, agent's whole ATC
        } kind;
        DomainId domain = 0;
        Iova iova = 0;
        std::uint64_t len = 0;
        AtsAgent *agent = nullptr; //!< ATC commands only
    };

    /**
     * Reserve @p n cmdq slots and write the commands: the producer
     * side, under the (short) cmdq lock.  A full ring first stalls the
     * producer until the consumer catches up.
     * @return time the lock is released.
     */
    sim::TimeNs produce(sim::Core &core, sim::TimeNs now, unsigned n);

    sim::SimMutex cmdqLock_;        //!< producer slot reservation
    sim::SerialResource consumer_;  //!< the SMMU draining the ring
    std::vector<PendingInval> pending_;
    std::uint64_t pendingCmds_ = 0; //!< ring occupancy (incl. applied-kind dups)

    std::vector<bool> steValid_;
    std::vector<bool> cdCached_;    //!< config cache (CD per domain)

    std::vector<FaultRecord> eventq_;
    std::uint64_t evtqOverflows_ = 0;
    std::uint64_t evtqDrained_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_BACKEND_SMMU_HH
