/**
 * @file
 * PCIe Address Translation Services: the device side.
 *
 * An AtsAgent models one endpoint's ATS capability — a small device
 * TLB (ATC) caching translations *outside* the IOMMU, filled by
 * translation requests over the fabric.  The whole point of modeling
 * it separately from the IOMMU's IOTLB is that its entries go stale
 * independently: an unmap + IOTLB flush leaves the ATC untouched
 * until a device-TLB invalidation (IommuBackend::atsInvalidate*)
 * completes.  That extra stale window is what the fuzzer's
 * stale-device-tlb oracle patrols.
 *
 * A translation request that resolves to "no access" (unmapped or
 * insufficient permission) is not a fault: with PRI the device posts
 * a page request (IommuBackend::postPageRequest) and retries after
 * the OS services it — see iommu/sva.hh and dma/faultable.hh.
 */

#ifndef DAMN_IOMMU_ATS_HH
#define DAMN_IOMMU_ATS_HH

#include <cstdint>
#include <vector>

#include "iommu/iotlb.hh"
#include "sim/context.hh"

namespace damn::iommu {

class Iommu;

/** One device's ATS state: its ATC plus request/hit accounting. */
class AtsAgent
{
  public:
    /** Outcome of a device-side ATS translation. */
    struct Result
    {
        bool ok = false;       //!< translated with sufficient rights
        bool hit = false;      //!< served from the ATC
        mem::Pa pa = 0;
        sim::TimeNs latencyNs = 0;
    };

    AtsAgent(sim::Context &ctx, Iommu &mmu, DomainId domain);

    DomainId domain() const { return domain_; }

    /**
     * Translate @p iova for an @p is_write access.  ATC hit costs
     * atsDevTlbHitNs; a miss pays the PCIe translation-request round
     * trip plus the IOMMU-side walk and fills the ATC.  When the walk
     * finds no sufficient mapping the result is !ok — the PRI retry
     * path, not a recorded IOMMU fault.
     */
    Result translate(Iova iova, bool is_write);

    // ---- Hardware-side ATC maintenance (called by the backends) ----

    /** Apply a device-TLB invalidation covering [iova, iova+len). */
    void invalidateRange(Iova iova, std::uint64_t len);

    /** Apply a global device-TLB invalidation (the agent serves one
     *  domain, so "global" and "domain" coincide). */
    void invalidateAll();

    /** Device reset (FLR): the ATC is cleared unconditionally — a
     *  direct hardware reset, not a droppable queued command. */
    void reset();

    /**
     * Test-only fault hook mirroring Iotlb::debugDropInvalidations():
     * silently ignore the next @p n invalidation messages, leaving
     * stale ATC entries behind — the bug the fuzzer's
     * stale-device-tlb oracle must catch.  Production code never
     * calls this.
     */
    void debugDropInvalidations(unsigned n) { debugDropRemaining_ = n; }

    /** Page-aligned IOVAs of all valid ATC entries (oracle probe). */
    std::vector<Iova> validEntries() const;

    std::size_t entries() const;
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t invalidations() const { return invalidations_; }

    double
    hitRate() const
    {
        const std::uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0 : double(hits_) / double(total);
    }

  private:
    struct Entry
    {
        bool valid = false;
        Iova page = 0;
        mem::Pa paPage = 0;
        std::uint32_t perm = 0;
        std::uint64_t lastUse = 0;
    };

    Entry *find(Iova page);
    void insert(Iova page, mem::Pa paPage, std::uint32_t perm);

    sim::Context &ctx_;
    Iommu &mmu_;
    DomainId domain_;
    std::vector<Entry> atc_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t invalidations_ = 0;
    unsigned debugDropRemaining_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_ATS_HH
