/**
 * @file
 * Backend name tables and the factory.
 */

#include "iommu/backend.hh"

#include "iommu/backend_smmu.hh"
#include "iommu/backend_vtd.hh"

namespace damn::iommu {

const char *
backendKindName(BackendKind k)
{
    switch (k) {
      case BackendKind::Vtd:
        return "vtd";
      case BackendKind::SmmuV3:
        return "smmuv3";
    }
    return "?";
}

bool
backendFromName(const std::string &name, BackendKind *out)
{
    for (const BackendKind k : {BackendKind::Vtd, BackendKind::SmmuV3}) {
        if (name == backendKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

const char *
faultReasonName(FaultReason r)
{
    switch (r) {
      case FaultReason::NotPresent:
        return "not-present";
      case FaultReason::Permission:
        return "permission";
      case FaultReason::Quarantined:
        return "quarantined";
      case FaultReason::Injected:
        return "injected";
      case FaultReason::Detached:
        return "detached";
    }
    return "?";
}

std::unique_ptr<IommuBackend>
makeBackend(BackendKind kind, sim::Context &ctx)
{
    switch (kind) {
      case BackendKind::Vtd:
        return std::make_unique<VtdBackend>(ctx);
      case BackendKind::SmmuV3:
        return std::make_unique<SmmuV3Backend>(ctx);
    }
    return nullptr;
}

} // namespace damn::iommu
