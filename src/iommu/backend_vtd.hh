/**
 * @file
 * Intel VT-d backend: the hardware model the paper measured (sections
 * 4.1, 6.1), re-expressed behind the IommuBackend interface with
 * behavior byte-identical to the original hard-wired implementation.
 *
 * VT-d specifics modeled here:
 *
 *  - a single invalidation queue whose submission lock is global and —
 *    in strict mode — held for the full invalidate + wait round trip;
 *    this is the contention point that cripples the *strict* scheme;
 *  - a radix-walked IOTLB with VT-d-class geometry (1024 4 KiB + 128
 *    2 MiB entries) and a 32-entry page-walk cache;
 *  - context-entry routing that is free to install/drop: VT-d's
 *    root/context tables are in-memory structures the CPU writes
 *    directly, so attach/detach charge nothing;
 *  - fault reporting through the fault recording registers, which the
 *    facade's bounded log already models — deliverFault is a no-op;
 *  - the page-request queue (PRI): a bounded in-memory ring the
 *    hardware appends page requests to, exposed through the PRQH/PRQT
 *    head/tail registers and the PRS status register's pending +
 *    overflow bits (the register map the twizzler driver programs).
 *    Overflow auto-responds failure; responses and device-TLB
 *    invalidations are descriptors in the same invalidation queue.
 */

#ifndef DAMN_IOMMU_BACKEND_VTD_HH
#define DAMN_IOMMU_BACKEND_VTD_HH

#include "iommu/ats.hh"
#include "iommu/backend.hh"
#include "sim/sim_mutex.hh"

namespace damn::iommu {

/**
 * The VT-d invalidation queue: submissions serialize on a global lock,
 * and strict-mode callers hold it for the full invalidate + wait round
 * trip.
 */
class InvalidationQueue
{
  public:
    explicit InvalidationQueue(sim::Context &ctx) : ctx_(ctx) {}

    /**
     * Synchronously invalidate an IOVA range (strict mode): acquire the
     * global queue lock, submit, wait for completion, release.  The
     * caller's core burns the spin + wait time.  An injected
     * `iommu.inval` fault drops the command: the time is spent but the
     * stale entries survive.
     * @return completion time.
     */
    sim::TimeNs
    syncInvalidate(sim::Core &core, sim::TimeNs now, Iotlb &tlb,
                   DomainId domain, Iova iova, std::uint64_t len)
    {
        const sim::TimeNs done = lock_.acquireAndHold(
            core, now, ctx_.cost.strictInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        tlb.invalidateRange(domain, iova, len);
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_range", done, 0, len);
        return done;
    }

    /**
     * One batched flush covering many deferred unmaps: a single lock
     * acquisition and a single (larger) hardware operation, scoped to
     * the domains whose unmaps are being flushed so one device's
     * deferred flush cannot evict every other domain's warm entries.
     * @return completion time.
     */
    sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now, Iotlb &tlb,
                 const std::vector<DomainId> &domains)
    {
        const sim::TimeNs done =
            lock_.acquireAndHold(core, now, ctx_.cost.deferredFlushNs,
                                 1.0, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        for (const DomainId d : domains)
            tlb.invalidateDomain(d);
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_domains", done, 0,
                            domains.size());
        return done;
    }

    /**
     * Global flush (VT-d global IOTLB invalidation).  Used when the
     * released mappings span every domain at once, where one global
     * command is cheaper than per-domain commands.
     * @return completion time.
     */
    sim::TimeNs
    batchedFlushAll(sim::Core &core, sim::TimeNs now, Iotlb &tlb)
    {
        const sim::TimeNs done =
            lock_.acquireAndHold(core, now, ctx_.cost.deferredFlushNs,
                                 1.0, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        tlb.invalidateAll();
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_all", done);
        return done;
    }

    sim::SimMutex &lock() { return lock_; }

  private:
    sim::Context &ctx_;
    sim::SimMutex lock_;
};

/** Intel VT-d hardware model. */
class VtdBackend : public IommuBackend
{
  public:
    /** VT-d-class IOTLB: 1024 4 KiB entries, 128 2 MiB entries, and a
     *  32-entry page-walk cache. */
    static constexpr TlbGeometry kGeometry{256, 4, 32, 4, 32};

    explicit VtdBackend(sim::Context &ctx)
        : IommuBackend(ctx, kGeometry), queue_(ctx)
    {}

    BackendKind kind() const override { return BackendKind::Vtd; }
    AddressLayout layout() const override { return AddressLayout{48}; }

    // Context entries live in cacheable system memory and are written
    // directly by the CPU — install/drop is free at this resolution.
    void attachDevice(DomainId) override {}
    void detachDevice(DomainId) override {}

    sim::TimeNs
    walkLatency(DomainId d, Iova iova) override
    {
        return tlb_.walkCached(d, iova) ? ctx_.cost.iotlbWalkPwcNs
                                        : ctx_.cost.iotlbWalkNs;
    }

    sim::TimeNs
    syncInvalidate(sim::Core &core, sim::TimeNs now, DomainId domain,
                   Iova iova, std::uint64_t len) override
    {
        return queue_.syncInvalidate(core, now, tlb_, domain, iova, len);
    }

    sim::TimeNs
    syncInvalidateRanges(sim::Core &core, sim::TimeNs now,
                         const std::vector<InvalRange> &ranges) override
    {
        // One invalidate + wait round trip covers the whole list (how
        // dma_unmap_sg prices on VT-d); the per-range hardware
        // invalidations ride along for free.
        const sim::TimeNs done = queue_.lock().acquireAndHold(
            core, now, ctx_.cost.strictInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        for (const InvalRange &r : ranges)
            tlb_.invalidateRange(r.domain, r.iova, r.len);
        return done;
    }

    sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now,
                 const std::vector<DomainId> &domains) override
    {
        return queue_.batchedFlush(core, now, tlb_, domains);
    }

    sim::TimeNs
    batchedFlushAll(sim::Core &core, sim::TimeNs now) override
    {
        return queue_.batchedFlushAll(core, now, tlb_);
    }

    // ---- ATS / PRI -------------------------------------------------

    bool
    postPageRequest(const PageRequest &req) override
    {
        if (!priAccept(req, ctx_.cost.vtdPrqDepth)) {
            // PRS overflow bit: sticky until the driver drains and
            // clears it; the hardware auto-responded failure.
            prsOverflow_ = true;
            ctx_.stats.add("vtd.prq_auto_responses");
            return false;
        }
        ++prqTail_;
        ctx_.stats.add("vtd.prq_posts");
        return true;
    }

    std::vector<PageRequest>
    fetchPageRequests() override
    {
        // The driver advances PRQH to PRQT and clears PRS.PRO.
        prqHead_ = prqTail_;
        prsOverflow_ = false;
        return priDrain();
    }

    /** Page_group_response descriptor through the invalidation queue. */
    sim::TimeNs
    respondPageRequest(sim::Core &core, sim::TimeNs now,
                       const PageRequest &req, bool success) override
    {
        (void)req;
        (void)success;
        const sim::TimeNs done = queue_.lock().acquireAndHold(
            core, now, ctx_.cost.priResponseNs, 1.0, ctx_.engine.now());
        priNoteResponse();
        ctx_.stats.add("vtd.prq_responses");
        return done;
    }

    /**
     * Device-TLB invalidation descriptor + invalidation-wait round
     * trip under the queue lock.  The same injectable hole as the
     * IOTLB descriptors: an `iommu.inval` fault spends the time but
     * leaves the ATC stale.
     */
    sim::TimeNs
    atsInvalidate(sim::Core &core, sim::TimeNs now, AtsAgent &agent,
                  DomainId domain, Iova iova, std::uint64_t len) override
    {
        (void)domain;
        const sim::TimeNs done = queue_.lock().acquireAndHold(
            core, now, ctx_.cost.atsInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        agent.invalidateRange(iova, len);
        ctx_.stats.add("vtd.devtlb_invals");
        return done;
    }

    sim::TimeNs
    atsInvalidateAll(sim::Core &core, sim::TimeNs now, AtsAgent &agent,
                     DomainId domain) override
    {
        (void)domain;
        const sim::TimeNs done = queue_.lock().acquireAndHold(
            core, now, ctx_.cost.atsInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        agent.invalidateAll();
        ctx_.stats.add("vtd.devtlb_invals");
        return done;
    }

    // PRQ register view (conformance tests read these): monotone
    // head/tail counters instead of wrapped ring offsets.
    std::uint64_t prqHead() const { return prqHead_; }
    std::uint64_t prqTail() const { return prqTail_; }
    /** PRS pending bit: unfetched requests exist. */
    bool prsPending() const { return prqHead_ != prqTail_; }
    /** PRS overflow bit: a request was auto-responded since the last
     *  drain. */
    bool prsOverflow() const { return prsOverflow_; }

    // The facade's bounded log *is* the VT-d fault-recording model.
    void deliverFault(const FaultRecord &) override {}

    /** The global invalidation queue (tests poke its lock directly). */
    InvalidationQueue &invalQueue() { return queue_; }

  private:
    InvalidationQueue queue_;
    std::uint64_t prqHead_ = 0;
    std::uint64_t prqTail_ = 0;
    bool prsOverflow_ = false;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_BACKEND_VTD_HH
