/**
 * @file
 * Intel VT-d backend: the hardware model the paper measured (sections
 * 4.1, 6.1), re-expressed behind the IommuBackend interface with
 * behavior byte-identical to the original hard-wired implementation.
 *
 * VT-d specifics modeled here:
 *
 *  - a single invalidation queue whose submission lock is global and —
 *    in strict mode — held for the full invalidate + wait round trip;
 *    this is the contention point that cripples the *strict* scheme;
 *  - a radix-walked IOTLB with VT-d-class geometry (1024 4 KiB + 128
 *    2 MiB entries) and a 32-entry page-walk cache;
 *  - context-entry routing that is free to install/drop: VT-d's
 *    root/context tables are in-memory structures the CPU writes
 *    directly, so attach/detach charge nothing;
 *  - fault reporting through the fault recording registers, which the
 *    facade's bounded log already models — deliverFault is a no-op.
 */

#ifndef DAMN_IOMMU_BACKEND_VTD_HH
#define DAMN_IOMMU_BACKEND_VTD_HH

#include "iommu/backend.hh"
#include "sim/sim_mutex.hh"

namespace damn::iommu {

/**
 * The VT-d invalidation queue: submissions serialize on a global lock,
 * and strict-mode callers hold it for the full invalidate + wait round
 * trip.
 */
class InvalidationQueue
{
  public:
    explicit InvalidationQueue(sim::Context &ctx) : ctx_(ctx) {}

    /**
     * Synchronously invalidate an IOVA range (strict mode): acquire the
     * global queue lock, submit, wait for completion, release.  The
     * caller's core burns the spin + wait time.  An injected
     * `iommu.inval` fault drops the command: the time is spent but the
     * stale entries survive.
     * @return completion time.
     */
    sim::TimeNs
    syncInvalidate(sim::Core &core, sim::TimeNs now, Iotlb &tlb,
                   DomainId domain, Iova iova, std::uint64_t len)
    {
        const sim::TimeNs done = lock_.acquireAndHold(
            core, now, ctx_.cost.strictInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        tlb.invalidateRange(domain, iova, len);
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_range", done, 0, len);
        return done;
    }

    /**
     * One batched flush covering many deferred unmaps: a single lock
     * acquisition and a single (larger) hardware operation, scoped to
     * the domains whose unmaps are being flushed so one device's
     * deferred flush cannot evict every other domain's warm entries.
     * @return completion time.
     */
    sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now, Iotlb &tlb,
                 const std::vector<DomainId> &domains)
    {
        const sim::TimeNs done =
            lock_.acquireAndHold(core, now, ctx_.cost.deferredFlushNs,
                                 1.0, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        for (const DomainId d : domains)
            tlb.invalidateDomain(d);
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_domains", done, 0,
                            domains.size());
        return done;
    }

    /**
     * Global flush (VT-d global IOTLB invalidation).  Used when the
     * released mappings span every domain at once, where one global
     * command is cheaper than per-domain commands.
     * @return completion time.
     */
    sim::TimeNs
    batchedFlushAll(sim::Core &core, sim::TimeNs now, Iotlb &tlb)
    {
        const sim::TimeNs done =
            lock_.acquireAndHold(core, now, ctx_.cost.deferredFlushNs,
                                 1.0, ctx_.engine.now());
        if (ctx_.faults.shouldFail(sim::FaultSite::IommuInval)) {
            ctx_.stats.add("iommu.inval_dropped");
            return done;
        }
        tlb.invalidateAll();
        ctx_.tracer.instant(core.id(), sim::TraceCat::Iotlb,
                            "iotlb.invalidate_all", done);
        return done;
    }

    sim::SimMutex &lock() { return lock_; }

  private:
    sim::Context &ctx_;
    sim::SimMutex lock_;
};

/** Intel VT-d hardware model. */
class VtdBackend : public IommuBackend
{
  public:
    /** VT-d-class IOTLB: 1024 4 KiB entries, 128 2 MiB entries, and a
     *  32-entry page-walk cache. */
    static constexpr TlbGeometry kGeometry{256, 4, 32, 4, 32};

    explicit VtdBackend(sim::Context &ctx)
        : IommuBackend(ctx, kGeometry), queue_(ctx)
    {}

    BackendKind kind() const override { return BackendKind::Vtd; }
    AddressLayout layout() const override { return AddressLayout{48}; }

    // Context entries live in cacheable system memory and are written
    // directly by the CPU — install/drop is free at this resolution.
    void attachDevice(DomainId) override {}
    void detachDevice(DomainId) override {}

    sim::TimeNs
    walkLatency(DomainId d, Iova iova) override
    {
        return tlb_.walkCached(d, iova) ? ctx_.cost.iotlbWalkPwcNs
                                        : ctx_.cost.iotlbWalkNs;
    }

    sim::TimeNs
    syncInvalidate(sim::Core &core, sim::TimeNs now, DomainId domain,
                   Iova iova, std::uint64_t len) override
    {
        return queue_.syncInvalidate(core, now, tlb_, domain, iova, len);
    }

    sim::TimeNs
    syncInvalidateRanges(sim::Core &core, sim::TimeNs now,
                         const std::vector<InvalRange> &ranges) override
    {
        // One invalidate + wait round trip covers the whole list (how
        // dma_unmap_sg prices on VT-d); the per-range hardware
        // invalidations ride along for free.
        const sim::TimeNs done = queue_.lock().acquireAndHold(
            core, now, ctx_.cost.strictInvalidateNs,
            ctx_.cost.strictSpinBusyFraction, ctx_.engine.now());
        for (const InvalRange &r : ranges)
            tlb_.invalidateRange(r.domain, r.iova, r.len);
        return done;
    }

    sim::TimeNs
    batchedFlush(sim::Core &core, sim::TimeNs now,
                 const std::vector<DomainId> &domains) override
    {
        return queue_.batchedFlush(core, now, tlb_, domains);
    }

    sim::TimeNs
    batchedFlushAll(sim::Core &core, sim::TimeNs now) override
    {
        return queue_.batchedFlushAll(core, now, tlb_);
    }

    // The facade's bounded log *is* the VT-d fault-recording model.
    void deliverFault(const FaultRecord &) override {}

    /** The global invalidation queue (tests poke its lock directly). */
    InvalidationQueue &invalQueue() { return queue_; }

  private:
    InvalidationQueue queue_;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_BACKEND_VTD_HH
