/**
 * @file
 * IOVA range allocator for the DMA-API half of the address space.
 *
 * DAMN partitions the 48-bit IOVA space by the MSB (paper section 5.4):
 * bit 47 == 0 is managed here for DMA-API mappings, bit 47 == 1 belongs
 * to DAMN's encoded IOVAs (core/iova_encoding.hh).  Functionally this is
 * a recycling free-list allocator with Linux-4.7-style per-CPU caching
 * semantics; timing costs are charged by the protection schemes using
 * CostModel::iovaAllocNs / iovaAllocSlowNs.
 */

#ifndef DAMN_IOMMU_IOVA_ALLOC_HH
#define DAMN_IOMMU_IOVA_ALLOC_HH

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "iommu/io_pgtable.hh"
#include "mem/phys.hh"

namespace damn::iommu {

/** First allocatable IOVA (skip the null page). */
constexpr Iova kIovaBase = 0x10000;
/** DAMN's half of the address space starts here (bit 47 set). */
constexpr Iova kDamnIovaBit = 1ull << 47;
/** Returned by IovaAllocator::alloc when the space is exhausted. */
constexpr Iova kInvalidIova = ~Iova{0};

/**
 * Page-granular IOVA range allocator with size-bucketed recycling.
 * Single instance per IOMMU domain, as in Linux.
 *
 * Exhaustion is a *recoverable* condition: alloc() returns
 * kInvalidIova, and the caller (the protection scheme) is expected to
 * reclaim — force a deferred flush, shrink a pool — and retry, the way
 * Linux falls back to flushing the fq_ring when the rbtree is full.
 */
class IovaAllocator
{
  public:
    IovaAllocator() = default;

    /**
     * Allocate a range of @p pages IOVA pages.
     * @return page-aligned IOVA below the DAMN bit, or kInvalidIova
     *         when the (possibly limit()-constrained) space has no
     *         fresh range left and no recycled range of this size.
     */
    Iova
    alloc(unsigned pages)
    {
        assert(pages > 0);
        auto &bucket = freeLists_[pages];
        if (!bucket.empty()) {
            const Iova iova = bucket.back();
            bucket.pop_back();
            ++recycled_;
            outstanding_ += pages;
            return iova;
        }
        const std::uint64_t bytes = std::uint64_t(pages) * mem::kPageSize;
        if (next_ + bytes > limit_) {
            // Fresh space exhausted: split the smallest recycled range
            // that still fits (Linux's rbtree allocator reuses any
            // free range; a strict size-bucket miss here would turn
            // harmless fragmentation into permanent exhaustion).
            for (auto it = freeLists_.upper_bound(pages);
                 it != freeLists_.end(); ++it) {
                if (it->second.empty())
                    continue;
                const Iova iova = it->second.back();
                it->second.pop_back();
                const unsigned rest = it->first - pages;
                freeLists_[rest].push_back(iova + bytes);
                ++recycled_;
                ++splits_;
                outstanding_ += pages;
                return iova;
            }
            ++failures_;
            return kInvalidIova;
        }
        const Iova iova = next_;
        next_ += bytes;
        ++fresh_;
        outstanding_ += pages;
        return iova;
    }

    /**
     * Bound the space by the backend's address layout: the DMA-API
     * half ends where the DAMN tag bit begins.  Defaults to the
     * 48-bit layout's kDamnIovaBit; schemes call this with
     * Iommu::layout().dmaApiLimit() at construction.
     */
    void
    setAddressLimit(Iova ceiling)
    {
        cap_ = ceiling;
        limit_ = std::min(limit_, cap_);
    }

    /**
     * Constrain the allocatable space to @p bytes past kIovaBase
     * (experiments use small spaces to reach the exhaustion wall
     * quickly).  Defaults to the full DMA-API half.  Shrinking below
     * the high-water mark only affects future fresh allocations.
     */
    void
    setSpaceBytes(std::uint64_t bytes)
    {
        limit_ = std::min(cap_, kIovaBase + bytes);
    }

    /** Current ceiling of the allocatable space, bytes past base. */
    std::uint64_t spaceBytes() const { return limit_ - kIovaBase; }

    /** Utilization of the configured space in [0, 1], counting the
     *  high-water mark (recycled ranges still occupy address space). */
    double
    utilization() const
    {
        return double(next_ - kIovaBase) / double(limit_ - kIovaBase);
    }

    /** Return a range for reuse. */
    void
    free(Iova iova, unsigned pages)
    {
        assert(outstanding_ >= pages && "double free of IOVA range");
        outstanding_ -= pages;
        freeLists_[pages].push_back(iova);
    }

    std::uint64_t recycled() const { return recycled_; }
    std::uint64_t fresh() const { return fresh_; }
    /** Failed alloc() calls (space exhausted). */
    std::uint64_t failures() const { return failures_; }
    /** Recycled ranges split to satisfy a smaller request. */
    std::uint64_t splits() const { return splits_; }
    /** High-water mark of the IOVA space, bytes. */
    std::uint64_t spaceUsed() const { return next_ - kIovaBase; }
    /** Pages currently allocated and not yet freed (leak detector). */
    std::uint64_t outstanding() const { return outstanding_; }

  private:
    Iova next_ = kIovaBase;
    Iova cap_ = kDamnIovaBit;   //!< the backend layout's dmaApiLimit()
    Iova limit_ = kDamnIovaBit;
    std::map<unsigned, std::vector<Iova>> freeLists_;
    std::uint64_t recycled_ = 0;
    std::uint64_t fresh_ = 0;
    std::uint64_t failures_ = 0;
    std::uint64_t splits_ = 0;
    std::uint64_t outstanding_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IOVA_ALLOC_HH
