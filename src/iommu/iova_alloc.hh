/**
 * @file
 * IOVA range allocator for the DMA-API half of the address space.
 *
 * DAMN partitions the 48-bit IOVA space by the MSB (paper section 5.4):
 * bit 47 == 0 is managed here for DMA-API mappings, bit 47 == 1 belongs
 * to DAMN's encoded IOVAs (core/iova_encoding.hh).  Functionally this is
 * a recycling free-list allocator with Linux-4.7-style per-CPU caching
 * semantics; timing costs are charged by the protection schemes using
 * CostModel::iovaAllocNs / iovaAllocSlowNs.
 */

#ifndef DAMN_IOMMU_IOVA_ALLOC_HH
#define DAMN_IOMMU_IOVA_ALLOC_HH

#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "iommu/io_pgtable.hh"
#include "mem/phys.hh"

namespace damn::iommu {

/** First allocatable IOVA (skip the null page). */
constexpr Iova kIovaBase = 0x10000;
/** DAMN's half of the address space starts here (bit 47 set). */
constexpr Iova kDamnIovaBit = 1ull << 47;

/**
 * Page-granular IOVA range allocator with size-bucketed recycling.
 * Single instance per IOMMU domain, as in Linux.
 */
class IovaAllocator
{
  public:
    IovaAllocator() = default;

    /**
     * Allocate a range of @p pages IOVA pages.
     * @return page-aligned IOVA below the DAMN bit.
     */
    Iova
    alloc(unsigned pages)
    {
        assert(pages > 0);
        outstanding_ += pages;
        auto &bucket = freeLists_[pages];
        if (!bucket.empty()) {
            const Iova iova = bucket.back();
            bucket.pop_back();
            ++recycled_;
            return iova;
        }
        const Iova iova = next_;
        next_ += std::uint64_t(pages) * mem::kPageSize;
        assert(next_ < kDamnIovaBit && "DMA-API IOVA space exhausted");
        ++fresh_;
        return iova;
    }

    /** Return a range for reuse. */
    void
    free(Iova iova, unsigned pages)
    {
        assert(outstanding_ >= pages && "double free of IOVA range");
        outstanding_ -= pages;
        freeLists_[pages].push_back(iova);
    }

    std::uint64_t recycled() const { return recycled_; }
    std::uint64_t fresh() const { return fresh_; }
    /** High-water mark of the IOVA space, bytes. */
    std::uint64_t spaceUsed() const { return next_ - kIovaBase; }
    /** Pages currently allocated and not yet freed (leak detector). */
    std::uint64_t outstanding() const { return outstanding_; }

  private:
    Iova next_ = kIovaBase;
    std::map<unsigned, std::vector<Iova>> freeLists_;
    std::uint64_t recycled_ = 0;
    std::uint64_t fresh_ = 0;
    std::uint64_t outstanding_ = 0;
};

} // namespace damn::iommu

#endif // DAMN_IOMMU_IOVA_ALLOC_HH
