/**
 * @file
 * Skbuff accessor / TOCTTOU-guard implementation.
 */

#include "net/skbuff.hh"

#include <algorithm>
#include <cassert>

namespace damn::net {

bool
SkbAccessor::needsSecuring(const SkbSegment &seg) const
{
    // Decide by the *backing memory*, not the ownership marker: split
    // leftovers of a partially-secured segment are owner=Borrowed (the
    // bookkeeping piece owns the chunk reference) but still live in
    // device-writable DAMN memory and must be secured on access.
    if (seg.secured || seg.len == 0 || alloc_ == nullptr)
        return false;
    if (!alloc_->isDamnBuffer(seg.pa))
        return false;
    // Only device-*writable* memory can be changed under the OS's feet.
    const core::Rights r = alloc_->rightsOf(seg.pa);
    return r == core::Rights::Write || r == core::Rights::RW;
}

std::uint64_t
SkbAccessor::secureRange(sim::CpuCursor &cpu, SkBuff &skb,
                         std::uint32_t off, std::uint32_t len)
{
    std::uint64_t copied = 0;
    std::uint32_t cursor = 0;

    for (std::size_t i = 0; i < skb.segs.size() && len > 0; ++i) {
        SkbSegment &seg = skb.segs[i];
        const std::uint32_t seg_start = cursor;
        const std::uint32_t seg_end = cursor + seg.len;
        cursor = seg_end;
        if (off >= seg_end || off + len <= seg_start)
            continue;
        if (!needsSecuring(seg))
            continue;

        // Overlap of [off, off+len) with this segment, in segment-local
        // coordinates.
        const std::uint32_t lo = std::max(off, seg_start) - seg_start;
        const std::uint32_t hi =
            std::min<std::uint64_t>(off + std::uint64_t(len), seg_end) -
            seg_start;
        const std::uint32_t n = hi - lo;

        // Copy the accessed bytes into kernel memory the device cannot
        // reach.  Data was just DMAed, so the source is LLC-warm.
        mem::Pa safe;
        SegOwner owner;
        if (n <= 4096) {
            safe = heap_.kmalloc(n);
            if (safe == 0) {
                ctx_.pressure.reclaim(cpu);
                safe = heap_.kmalloc(n);
            }
            owner = SegOwner::Kmalloc;
            cpu.charge(ctx_.cost.kmallocNs);
        } else {
            unsigned order = 0;
            while ((mem::kPageSize << order) < n)
                ++order;
            mem::Pfn pfn = pageAlloc_.allocPages(order, cpu.numa());
            if (pfn == mem::kInvalidPfn) {
                ctx_.pressure.reclaim(cpu);
                pfn = pageAlloc_.allocPages(order, cpu.numa());
            }
            safe = pfn == mem::kInvalidPfn ? 0 : mem::pfnToPa(pfn);
            owner = SegOwner::Pages;
            cpu.charge(ctx_.cost.pageAllocNs);
        }
        if (safe == 0) {
            // No kernel memory to copy into, even after reclaim: leave
            // the range in device-visible memory (degraded protection,
            // counted) instead of crashing the consumer.
            ctx_.stats.add("skb.secure_fails");
            continue;
        }
        cpu.charge(ctx_.copyCost(
            cpu.time, n, ctx_.cost.warmCopyBytesPerNs,
            std::uint64_t(2.0 * n * ctx_.cost.copyMemTrafficFactor)));
        if (ctx_.functionalData)
            pm_.copy(safe, seg.pa + lo, n);

        // Split the segment: [0,lo) raw | [lo,hi) secured | [hi,len).
        std::vector<SkbSegment> repl;
        if (lo > 0) {
            SkbSegment pre = seg;
            pre.len = lo;
            // Only the *last* owned piece keeps ownership so the
            // backing buffer is freed exactly once.
            pre.owner = SegOwner::Borrowed;
            pre.dmaMapped = false;
            repl.push_back(pre);
        }
        SkbSegment sec;
        sec.pa = safe;
        sec.len = n;
        sec.owner = owner;
        sec.secured = true;
        if (n > 4096) {
            unsigned order = 0;
            while ((mem::kPageSize << order) < n)
                ++order;
            sec.pageOrder = std::uint8_t(order);
        }
        repl.push_back(sec);
        if (hi < seg.len) {
            SkbSegment post = seg;
            post.pa = seg.pa + hi;
            post.len = seg.len - hi;
            post.owner = SegOwner::Borrowed;
            post.dmaMapped = false;
            repl.push_back(post);
        }
        // The original backing buffer stays alive until the skb is
        // freed: hand its ownership (and DMA-mapping state) to a
        // zero-visible-length bookkeeping piece appended at the end of
        // the replacement list so freeSkb still releases it.
        SkbSegment keeper = seg;
        keeper.len = 0;
        keeper.secured = true;
        repl.push_back(keeper);

        skb.segs.erase(skb.segs.begin() + long(i));
        skb.segs.insert(skb.segs.begin() + long(i), repl.begin(),
                        repl.end());
        i += repl.size() - 1;

        copied += n;
        // Rewind the walk cursor: the replacement pieces cover the
        // same byte range as the original segment.
        cursor = seg_end;
    }

    securedBytes_ += copied;
    ctx_.stats.add("guard.secured_bytes", copied);
    return copied;
}

void
SkbAccessor::access(sim::CpuCursor &cpu, SkBuff &skb, std::uint32_t off,
                    std::uint32_t len, void *dst)
{
    assert(off + std::uint64_t(len) <= skb.len());
    secureRange(cpu, skb, off, len);

    if (dst != nullptr && ctx_.functionalData) {
        auto *out = static_cast<std::uint8_t *>(dst);
        std::uint32_t cursor = 0;
        std::uint32_t remaining = len;
        for (const SkbSegment &seg : skb.segs) {
            if (remaining == 0)
                break;
            const std::uint32_t seg_start = cursor;
            const std::uint32_t seg_end = cursor + seg.len;
            cursor = seg_end;
            if (off >= seg_end || seg.len == 0)
                continue;
            const std::uint32_t lo =
                off > seg_start ? off - seg_start : 0;
            const std::uint32_t n =
                std::min(seg.len - lo, remaining);
            pm_.read(seg.pa + lo, out, n);
            out += n;
            off += n;
            remaining -= n;
        }
        assert(remaining == 0);
    }
}

void
SkbAccessor::freeSkb(sim::CpuCursor &cpu, SkBuff &skb,
                     core::AllocCtx actx)
{
    for (SkbSegment &seg : skb.segs) {
        assert(!seg.dmaMapped &&
               "freeing an skb segment still mapped for DMA");
        switch (seg.owner) {
          case SegOwner::Damn:
            assert(alloc_ != nullptr);
            alloc_->damnFree(cpu, seg.pa, actx);
            break;
          case SegOwner::Kmalloc:
            cpu.charge(ctx_.cost.kmallocNs);
            heap_.kfree(seg.pa);
            break;
          case SegOwner::Pages:
            cpu.charge(ctx_.cost.pageAllocNs);
            pageAlloc_.freePages(mem::paToPfn(seg.pa), seg.pageOrder);
            break;
          case SegOwner::PageFrag:
            frag_.free(cpu, seg.pa);
            break;
          case SegOwner::Borrowed:
            break;
        }
        seg.owner = SegOwner::Borrowed;
    }
    skb.segs.clear();
}

} // namespace damn::net
