/**
 * @file
 * NIC pacing + DMA implementation.
 */

#include "net/nic.hh"

#include <algorithm>
#include <cassert>

namespace damn::net {

sim::TimeNs
NicDevice::pace(sim::TimeNs now, unsigned port, Traffic dir,
                std::uint32_t seg_bytes, sim::TimeNs dma_latency)
{
    assert(port < ports_.size());
    const auto &c = sys_.ctx.cost;
    const unsigned d = unsigned(dir);

    // The DMA engine occupies the port for the segment's wire time plus
    // any IOTLB walk stalls -- misses slow the engine down and thereby
    // the achievable line rate (the effect behind Table 3).
    const double wire_bpn = sim::gbpsToBytesPerNs(c.nicPortGbps);
    const sim::TimeNs wire_ns =
        sim::TimeNs(double(wireBytes(seg_bytes)) / wire_bpn) + dma_latency;
    const sim::TimeNs wire_done =
        ports_[port].wire[d].submit(now, wire_ns);

    // Both ports share one PCIe link per direction.
    const double pcie_bpn = sim::gbpsToBytesPerNs(c.pcieGbps);
    const sim::TimeNs pcie_ns =
        sim::TimeNs(double(seg_bytes) / pcie_bpn);
    const sim::TimeNs pcie_done = pcie_[d].submit(now, pcie_ns);

    return std::max(wire_done, pcie_done);
}

dma::DmaOutcome
NicDevice::dropSegment(sim::TimeNs now, unsigned port, Traffic dir,
                       std::uint32_t seg_bytes)
{
    // Injected wire/DMA fault: the segment occupied the wire but no
    // byte reached (or left) memory.  The driver sees a faulted
    // completion and takes its recovery path.
    dma::DmaOutcome out;
    out.fault = true;
    out.completes = pace(now, port, dir, seg_bytes, 0);
    ctx_.stats.add(dir == Traffic::Rx ? "nic.rx_injected_drops"
                                      : "nic.tx_injected_drops");
    return out;
}

bool
NicDevice::linkFlapped(sim::TimeNs now, unsigned port)
{
    // An injected flap takes the link down for a fixed window; every
    // segment that meets the downed link is lost on the wire.
    if (ctx_.faults.shouldFail(sim::FaultSite::NicLinkFlap)) {
        ports_[port].linkDownUntil =
            std::max(ports_[port].linkDownUntil,
                     now + ctx_.cost.nicLinkFlapDownNs);
        ++linkFlaps_;
        ctx_.stats.add("nic.link_flaps");
    }
    if (now < ports_[port].linkDownUntil) {
        ctx_.stats.add("nic.link_down_drops");
        return true;
    }
    return false;
}

dma::DmaOutcome
NicDevice::transferSegment(sim::TimeNs now, unsigned port, Traffic dir,
                           iommu::Iova dma_addr, std::uint32_t seg_bytes)
{
    if (linkFlapped(now, port))
        return dropSegment(now, port, dir, seg_bytes);
    if (ctx_.faults.shouldFail(dir == Traffic::Rx
                                   ? sim::FaultSite::NicRx
                                   : sim::FaultSite::NicTx))
        return dropSegment(now, port, dir, seg_bytes);

    // Ring events carry no CPU cost (the DMA engine does the work);
    // they land in core 0's ring by the device-event convention.
    ctx_.tracer.instant(0, sim::TraceCat::NicRing,
                        dir == Traffic::Rx ? "nic.rx_post"
                                           : "nic.tx_post",
                        now, seg_bytes, port);
    dma::DmaOutcome out =
        dmaTouch(now, dma_addr, seg_bytes, dir == Traffic::Rx);
    const sim::TimeNs paced =
        pace(now, port, dir, std::uint32_t(out.bytesDone), out.walkNs);
    out.completes = std::max(out.completes, paced);
    ctx_.tracer.instant(0, sim::TraceCat::NicRing,
                        dir == Traffic::Rx ? "nic.rx_complete"
                                           : "nic.tx_complete",
                        out.completes, std::uint32_t(out.bytesDone),
                        port);
    return out;
}

dma::DmaOutcome
NicDevice::transferSegmentSg(
    sim::TimeNs now, unsigned port, Traffic dir,
    const std::vector<std::pair<iommu::Iova, std::uint32_t>> &sg)
{
    if (linkFlapped(now, port) ||
        ctx_.faults.shouldFail(dir == Traffic::Rx
                                   ? sim::FaultSite::NicRx
                                   : sim::FaultSite::NicTx)) {
        std::uint32_t seg_bytes = 0;
        for (const auto &[iova, len] : sg)
            seg_bytes += len;
        return dropSegment(now, port, dir, seg_bytes);
    }

    dma::DmaOutcome total;
    total.ok = true;
    std::uint32_t seg_bytes = 0;
    sim::TimeNs dma_done = now;
    for (const auto &[iova, len] : sg) {
        dma::DmaOutcome o = dmaTouch(now, iova, len, dir == Traffic::Rx);
        total.bytesDone += o.bytesDone;
        total.ok = total.ok && o.ok;
        total.fault = total.fault || o.fault;
        total.walkNs += o.walkNs;
        dma_done = std::max(dma_done, o.completes);
        seg_bytes += len;
    }
    ctx_.tracer.instant(0, sim::TraceCat::NicRing,
                        dir == Traffic::Rx ? "nic.rx_post"
                                           : "nic.tx_post",
                        now, seg_bytes, port);
    const sim::TimeNs paced =
        pace(now, port, dir, seg_bytes, total.walkNs);
    total.completes = std::max(dma_done, paced);
    ctx_.tracer.instant(0, sim::TraceCat::NicRing,
                        dir == Traffic::Rx ? "nic.rx_complete"
                                           : "nic.tx_complete",
                        total.completes, std::uint32_t(total.bytesDone),
                        port);
    return total;
}

} // namespace damn::net
