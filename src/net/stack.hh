/**
 * @file
 * TCP-lite network stack and NIC driver.
 *
 * Implements the kernel paths the paper instruments:
 *  - driver RX: post receive buffers, unmap + build skbuffs on
 *    completion (allocation flavor per deployment: stock kernel
 *    buffers vs dma_alloc_skb with a device pointer, section 5.7);
 *  - TCP RX: netfilter hooks, header access through the interposed
 *    accessor API (DAMN's header copy), socket delivery, and the
 *    kernel->user copy at the POSIX boundary;
 *  - TCP TX: user->kernel copy, TSO segment construction (head +
 *    page frags), scatter-gather DMA mapping;
 *  - netfilter: callbacks that inspect a configurable part of each
 *    segment's payload (figure 8's XOR workload).
 */

#ifndef DAMN_NET_STACK_HH
#define DAMN_NET_STACK_HH

#include <functional>
#include <vector>

#include "net/nic.hh"
#include "net/skbuff.hh"
#include "net/system.hh"

namespace damn::net {

/** A posted receive buffer awaiting device DMA. */
struct RxBuffer
{
    SkbSegment seg;

    /** False when allocation failed (memory pressure). */
    bool valid() const { return seg.dmaMapped; }
};

/** Netfilter callback: may inspect the packet through the accessor. */
using NetfilterHook =
    std::function<void(sim::CpuCursor &, SkBuff &, SkbAccessor &)>;

/**
 * NIC driver: buffer management + DMA mapping around the device.
 */
class NicDriver
{
  public:
    NicDriver(System &sys, NicDevice &nic) : sys_(sys), nic_(nic) {}

    /**
     * Allocate and DMA-map one receive buffer of @p bytes.
     * Allocation flavor follows the deployment: DAMN systems use
     * damn_alloc_pages(dev, WRITE); others use the stock page
     * allocator + dma_map.  Under memory pressure (genuine exhaustion
     * or an injected mem.page_alloc fault) the returned buffer is
     * !valid() and the caller must retry later, as the kernel's RX
     * refill path does.
     */
    RxBuffer allocRxBuffer(sim::CpuCursor &cpu, std::uint32_t bytes,
                           core::AllocCtx actx = core::AllocCtx::Interrupt);

    /** Completion: dma_unmap the buffer and wrap it in an skb. */
    SkBuff rxBuild(sim::CpuCursor &cpu, RxBuffer buf,
                   std::uint32_t actual_len);

    /**
     * Teardown path: unmap a posted-but-never-completed buffer and
     * free its memory (ring teardown after an unplug).  The data never
     * arrived, so no skb is delivered.
     */
    void abortRxBuffer(sim::CpuCursor &cpu, RxBuffer buf,
                       core::AllocCtx actx = core::AllocCtx::Interrupt);

    /**
     * Map every segment of a TX skb (scatter-gather).
     * @return false when a segment's dma_map failed (resources
     *         exhausted); already-mapped segments are rolled back and
     *         the caller must drop the skb and back off.
     */
    bool txMap(sim::CpuCursor &cpu, SkBuff &skb);

    /** Unmap every mapped segment (TX completion path). */
    void txUnmap(sim::CpuCursor &cpu, SkBuff &skb);

    /** Scatter-gather list of a mapped skb (for the NIC DMA engine). */
    std::vector<std::pair<iommu::Iova, std::uint32_t>>
    sgOf(const SkBuff &skb) const;

    NicDevice &nic() { return nic_; }

  private:
    System &sys_;
    NicDevice &nic_;
};

/**
 * The TCP-lite stack: per-segment kernel paths with per-deployment
 * allocation and protection behaviour.
 */
class TcpStack
{
  public:
    /** TX frag granularity (kernel page-frag size). */
    static constexpr std::uint32_t kTxFragBytes = 16 * 1024;
    /** TX skb head (headers + metadata). */
    static constexpr std::uint32_t kTxHeadBytes = 256;

    TcpStack(System &sys, NicDevice &nic)
        : driver(sys, nic), sys_(sys), nic_(nic)
    {}

    /**
     * Kernel receive path for one LRO aggregate: netfilter, header
     * access (secured under DAMN), TCP/socket processing.
     * @param factor multi-flow inefficiency factor on per-segment costs.
     */
    void rxSegment(sim::CpuCursor &cpu, SkBuff &skb, double factor);

    /**
     * Application read at the POSIX boundary: kernel->user copy of the
     * whole segment, then the skb is freed.
     */
    void appRead(sim::CpuCursor &cpu, SkBuff &skb, double factor,
                 core::AllocCtx actx = core::AllocCtx::Interrupt);

    /**
     * Application write + TCP transmit path: user->kernel copy into a
     * freshly built TSO segment (head + page frags), DMA-mapped and
     * ready for the NIC.
     */
    SkBuff txBuild(sim::CpuCursor &cpu, std::uint32_t seg_bytes,
                   double factor,
                   core::AllocCtx actx = core::AllocCtx::Standard);

    /** TX completion: unmap + free. */
    void txComplete(sim::CpuCursor &cpu, SkBuff &skb, double factor,
                    core::AllocCtx actx = core::AllocCtx::Standard);

    /**
     * TX abort: the segment will never complete (device unplugged or
     * retry budget exhausted) — unmap and free without completion-path
     * accounting, so the mapping is not leaked.
     */
    void txAbort(sim::CpuCursor &cpu, SkBuff &skb,
                 core::AllocCtx actx = core::AllocCtx::Standard);

    /**
     * Zero-copy transmit (sendfile / zero-copy forwarding, paper
     * section 2.2): page-cache pages are handed to the NIC directly,
     * with no user->kernel copy.  These pages are *not* DAMN buffers,
     * so the DMA mapping falls back to the legacy DMA-API scheme —
     * DAMN explicitly does not cover this path.
     *
     * @param file_pages page-cache pages (borrowed, not freed with the
     *                   skb) carrying @p seg_bytes of file data.
     */
    SkBuff txBuildZeroCopy(sim::CpuCursor &cpu,
                           const std::vector<mem::Pa> &file_pages,
                           std::uint32_t seg_bytes, double factor,
                           core::AllocCtx actx =
                               core::AllocCtx::Standard);

    void addHook(NetfilterHook hook) { hooks_.push_back(std::move(hook)); }
    void clearHooks() { hooks_.clear(); }

    /** Charge a CPU copy that also crosses the memory controllers. */
    void chargeCopy(sim::CpuCursor &cpu, std::uint64_t bytes,
                    double bytes_per_ns);

    NicDriver driver;

  private:
    System &sys_;
    NicDevice &nic_;
    std::vector<NetfilterHook> hooks_;
};

} // namespace damn::net

#endif // DAMN_NET_STACK_HH
