/**
 * @file
 * Closed-loop streaming engine: drives N TCP flows through the NIC,
 * the driver, and the stack under a chosen protection scheme, and
 * measures throughput / CPU / memory bandwidth over a steady-state
 * window.
 *
 * Everything is closed-loop: receive flows stall the (infinitely fast)
 * traffic peer when no receive buffers are posted (lossless Ethernet
 * flow control), and transmit flows stall the application when the TX
 * ring window is full.  Throughput therefore *emerges* from whichever
 * resource binds: CPU, NIC line rate, PCIe, memory bandwidth, or the
 * IOTLB invalidation lock.
 */

#ifndef DAMN_NET_STREAM_HH
#define DAMN_NET_STREAM_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/stack.hh"
#include "sim/histogram.hh"

namespace damn::net {

/** One netperf-like flow. */
struct FlowSpec
{
    Traffic kind = Traffic::Rx;
    sim::CoreId core = 0;
    unsigned port = 0;
    std::uint32_t segBytes = 64 * 1024; //!< effective TSO/LRO aggregate
    unsigned window = 32;               //!< ring credit (outstanding segs)
    sim::TimeNs extraCpuNs = 0;         //!< app-level work per segment
    /** Optional per-segment callback (RX only), e.g. memcached logic. */
    std::function<void(sim::CpuCursor &, SkBuff &)> perSegment;
    /**
     * TCP-lite loss recovery: a segment whose DMA faults (IOMMU fault
     * or injected drop) is retransmitted after an exponentially
     * backed-off timeout, up to @ref maxRetries times; past that the
     * flow is marked failed and stops making progress.
     */
    unsigned maxRetries = 10;
    sim::TimeNs rtoNs = 100 * sim::kNsPerUs; //!< base retransmit timeout
};

/** Measurement window configuration. */
struct StreamConfig
{
    sim::TimeNs warmupNs = 30 * sim::kNsPerMs;
    sim::TimeNs measureNs = 200 * sim::kNsPerMs;
    double costFactor = 1.0; //!< multi-flow inefficiency factor
};

/** Per-flow measurement. */
struct FlowResult
{
    std::uint64_t segments = 0;
    std::uint64_t bytes = 0;
    double gbps = 0.0;
    std::uint64_t drops = 0;       //!< segments lost to faulted DMA
    std::uint64_t retransmits = 0; //!< recovery resends issued
    bool failed = false;           //!< retry budget exhausted
};

/** Whole-run measurement. */
struct StreamResult
{
    double rxGbps = 0.0;
    double txGbps = 0.0;
    double totalGbps = 0.0;
    double cpuPct = 0.0;    //!< machine-wide (100% == all cores busy)
    double memGBps = 0.0;   //!< achieved memory-controller bandwidth
    std::vector<FlowResult> flows;
    std::uint64_t drops = 0;       //!< total faulted segments
    std::uint64_t retransmits = 0; //!< total recovery resends
    unsigned failedFlows = 0;      //!< flows that exhausted retries
    /** Per-segment end-to-end latency (wire start -> app consumed). */
    sim::LatencyHistogram latency;
};

/** Drives flows against one System + NIC + stack. */
class StreamEngine
{
  public:
    StreamEngine(System &sys, NicDevice &nic, TcpStack &stack,
                 StreamConfig config = {})
        : sys_(sys), nic_(nic), stack_(stack), config_(config)
    {}

    /** Register a flow before run(). */
    void addFlow(const FlowSpec &spec) { flows_.push_back(State{spec}); }

    /** Run warmup + measurement; returns aggregated results. */
    StreamResult run();

    /**
     * Start all flows without running the engine — for callers that
     * step virtual time themselves (e.g., to sample statistics at
     * intervals).  Counting windows are left wide open.
     */
    void
    startAll()
    {
        windowStart_ = 0;
        windowEnd_ = ~sim::TimeNs{0};
        for (std::size_t fi = 0; fi < flows_.size(); ++fi)
            startFlow(fi);
    }

    /**
     * Ring teardown (device removal): stop every flow, unmap and free
     * all posted RX buffers, and let in-flight work abort as its
     * events fire.  Run the engine forward afterwards, then check
     * quiesced().  The engine object must stay alive until the
     * simulation no longer holds events that reference it.
     */
    void teardown(sim::CpuCursor &cpu);

    /** True when no RX/TX segment or posted buffer is outstanding. */
    bool
    quiesced() const
    {
        for (const State &f : flows_)
            if (f.txInflight != 0 || f.rxInflight != 0 ||
                !f.posted.empty())
                return false;
        return true;
    }

    bool tornDown() const { return tornDown_; }
    /** Segments/buffers completed-with-error during teardown. */
    std::uint64_t abortedSegments() const { return abortedSegments_; }

    // Live recovery accounting, for callers that drive the engine
    // themselves via startAll() and never get a StreamResult.
    std::uint64_t
    totalDrops() const
    {
        std::uint64_t n = 0;
        for (const State &f : flows_)
            n += f.drops;
        return n;
    }

    std::uint64_t
    totalSegments() const
    {
        std::uint64_t n = 0;
        for (const State &f : flows_)
            n += f.segments;
        return n;
    }

    std::uint64_t
    totalBytes() const
    {
        std::uint64_t n = 0;
        for (const State &f : flows_)
            n += f.bytes;
        return n;
    }

    std::uint64_t
    totalRetransmits() const
    {
        std::uint64_t n = 0;
        for (const State &f : flows_)
            n += f.retransmits;
        return n;
    }

    unsigned
    failedFlows() const
    {
        unsigned n = 0;
        for (const State &f : flows_)
            n += f.failed ? 1 : 0;
        return n;
    }

  private:
    struct State
    {
        explicit State(FlowSpec s) : spec(std::move(s)) {}

        FlowSpec spec;
        std::deque<RxBuffer> posted; //!< RX: buffers owned by the NIC
        unsigned txInflight = 0;
        unsigned rxInflight = 0;     //!< segments between DMA and stack
        bool generatorStalled = false;
        bool appStalled = false;
        std::uint64_t segments = 0;  //!< counted inside the window
        std::uint64_t bytes = 0;
        unsigned rxRetries = 0;      //!< consecutive faults, this segment
        unsigned txAllocRetries = 0; //!< consecutive build/map failures
        std::uint64_t drops = 0;     //!< whole-run recovery accounting
        std::uint64_t retransmits = 0;
        bool failed = false;
    };

    void startFlow(std::size_t fi);
    void pumpRx(std::size_t fi);
    void rxProcess(std::size_t fi, RxBuffer buf, sim::TimeNs started);
    void refillRx(std::size_t fi);
    void pumpTx(std::size_t fi);
    void txSend(std::size_t fi, std::shared_ptr<SkBuff> skb,
                sim::TimeNs when, sim::TimeNs started, unsigned attempt);
    void txDone(std::size_t fi, std::shared_ptr<SkBuff> skb,
                sim::TimeNs started);
    bool inWindow() const;

    System &sys_;
    NicDevice &nic_;
    TcpStack &stack_;
    StreamConfig config_;
    std::vector<State> flows_;
    sim::LatencyHistogram latency_;
    sim::TimeNs windowStart_ = 0;
    sim::TimeNs windowEnd_ = 0;
    bool tornDown_ = false;
    std::uint64_t abortedSegments_ = 0;
};

} // namespace damn::net

#endif // DAMN_NET_STREAM_HH
