/**
 * @file
 * The NIC model: a dual-port 100 Gb/s Ethernet adapter behind the
 * IOMMU (the evaluation machine's Mellanox ConnectX-4).
 *
 * Resources modeled:
 *  - per-port, per-direction wire pacing at 100 Gb/s with per-frame
 *    overhead (jumbo MTU, TSO/LRO aggregate segments);
 *  - a shared per-direction PCIe 3.0 ceiling (~106 Gb/s usable, as the
 *    paper measures);
 *  - IOTLB walk stalls extend the DMA engine's occupancy, so poor
 *    IOTLB reach directly throttles line rate (Table 3);
 *  - all DMA bytes consume the machine's shared memory bandwidth.
 */

#ifndef DAMN_NET_NIC_HH
#define DAMN_NET_NIC_HH

#include <vector>

#include "dma/device.hh"
#include "net/system.hh"
#include "sim/sim_mutex.hh"

namespace damn::net {

/** Direction of traffic through a port, from the host's viewpoint. */
enum class Traffic
{
    Rx, //!< device -> memory (receive)
    Tx, //!< memory -> device (transmit)
};

/** Dual-port NIC. */
class NicDevice : public dma::Device
{
  public:
    NicDevice(System &sys, std::string name, unsigned ports = 2)
        : dma::Device(sys.ctx, std::move(name), sys.mmu, sys.phys),
          sys_(sys), ports_(ports)
    {}

    unsigned numPorts() const { return unsigned(ports_.size()); }

    /**
     * Move one aggregate segment of @p seg_bytes through port @p port
     * in direction @p dir at time @p now, DMAing to/from @p dma_addr.
     *
     * Functionally performs the DMA (translation, faults, data when
     * functionalData is on) and models wire + PCIe + memory-bandwidth
     * pacing.  @return the DMA outcome; `completes` is when the
     * segment has fully crossed into/out of memory.
     */
    dma::DmaOutcome transferSegment(sim::TimeNs now, unsigned port,
                                    Traffic dir, iommu::Iova dma_addr,
                                    std::uint32_t seg_bytes);

    /**
     * Scatter-gather variant: one segment spread over several DMA
     * addresses (TX skbs with frags).
     */
    dma::DmaOutcome transferSegmentSg(
        sim::TimeNs now, unsigned port, Traffic dir,
        const std::vector<std::pair<iommu::Iova, std::uint32_t>> &sg);

    /** True while @p port 's link is down after an injected flap. */
    bool
    linkDown(unsigned port, sim::TimeNs now) const
    {
        return now < ports_[port].linkDownUntil;
    }

    std::uint64_t linkFlaps() const { return linkFlaps_; }

    /** Wire bytes of a @p seg_bytes aggregate (frames + overhead). */
    std::uint64_t
    wireBytes(std::uint32_t seg_bytes) const
    {
        const auto &c = sys_.ctx.cost;
        const std::uint64_t frames =
            (seg_bytes + c.mtuBytes - 1) / c.mtuBytes;
        return seg_bytes + frames * c.perFrameOverheadBytes;
    }

  private:
    struct Port
    {
        sim::SerialResource wire[2]; // indexed by Traffic
        sim::TimeNs linkDownUntil = 0; //!< link-flap outage end
    };

    sim::TimeNs pace(sim::TimeNs now, unsigned port, Traffic dir,
                     std::uint32_t seg_bytes, sim::TimeNs dma_latency);
    dma::DmaOutcome dropSegment(sim::TimeNs now, unsigned port,
                                Traffic dir, std::uint32_t seg_bytes);
    /** Link-flap injection + down-window check; true => drop. */
    bool linkFlapped(sim::TimeNs now, unsigned port);

    System &sys_;
    std::vector<Port> ports_;
    sim::SerialResource pcie_[2]; // per direction, shared by both ports
    std::uint64_t linkFlaps_ = 0;
};

} // namespace damn::net

#endif // DAMN_NET_NIC_HH
