/**
 * @file
 * StreamEngine implementation.
 */

#include "net/stream.hh"

#include <algorithm>
#include <cassert>

namespace damn::net {

bool
StreamEngine::inWindow() const
{
    const sim::TimeNs now = sys_.ctx.now();
    return now >= windowStart_ && now < windowEnd_;
}

void
StreamEngine::startFlow(std::size_t fi)
{
    State &f = flows_[fi];
    if (f.spec.kind == Traffic::Rx) {
        // Post the initial ring of receive buffers from the flow's core
        // (driver probe path), then let the peer stream.  Buffers the
        // allocator cannot produce (memory pressure) are retried like
        // any ring refill.
        sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core), 0);
        for (unsigned i = 0; i < f.spec.window; ++i) {
            RxBuffer buf =
                stack_.driver.allocRxBuffer(cpu, f.spec.segBytes);
            if (buf.valid()) {
                f.posted.push_back(buf);
            } else {
                sys_.ctx.stats.add("net.rx_refill_fails");
                sys_.ctx.engine.schedule(
                    cpu.time + f.spec.rtoNs,
                    [this, fi] { refillRx(fi); });
            }
        }
        pumpRx(fi);
    } else {
        pumpTx(fi);
    }
}

void
StreamEngine::refillRx(std::size_t fi)
{
    State &f = flows_[fi];
    if (tornDown_ || f.failed)
        return;
    sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core),
                       sys_.ctx.now());
    RxBuffer buf = stack_.driver.allocRxBuffer(
        cpu, f.spec.segBytes, core::AllocCtx::Interrupt);
    if (!buf.valid()) {
        // Still under pressure: try again after a timeout, as the
        // kernel's ring-refill work item does.
        sys_.ctx.stats.add("net.rx_refill_fails");
        sys_.ctx.engine.schedule(cpu.time + f.spec.rtoNs,
                                 [this, fi] { refillRx(fi); });
        return;
    }
    f.posted.push_back(buf);
    if (f.generatorStalled) {
        f.generatorStalled = false;
        sys_.ctx.engine.schedule(cpu.time, [this, fi] { pumpRx(fi); });
    }
}

void
StreamEngine::pumpRx(std::size_t fi)
{
    State &f = flows_[fi];
    if (tornDown_ || f.failed)
        return;
    if (f.posted.empty()) {
        // Lossless flow control: the peer pauses until buffers are
        // reposted.
        f.generatorStalled = true;
        return;
    }
    RxBuffer buf = f.posted.front();
    f.posted.pop_front();

    const sim::TimeNs now = sys_.ctx.now();
    const dma::DmaOutcome out = nic_.transferSegment(
        now, f.spec.port, Traffic::Rx, buf.seg.dmaAddr, f.spec.segBytes);
    if (out.fault) {
        // The DMA faulted (IOMMU fault or injected drop): the segment
        // never landed.  Re-post the buffer at the head of the ring and
        // have the peer retransmit after an exponentially backed-off
        // timeout; give up (flow failed) once the budget is exhausted.
        ++f.drops;
        sys_.ctx.tracer.instant(f.spec.core, sim::TraceCat::Fault,
                                "net.rx_drop", out.completes,
                                f.spec.segBytes);
        f.posted.push_front(buf);
        if (!nic_.attached()) {
            // Surprise unplug: no retransmit will ever land.  Fail the
            // flow immediately; the posted ring (including this
            // buffer) is recovered by teardown().
            f.failed = true;
            return;
        }
        ++f.rxRetries;
        if (f.rxRetries > f.spec.maxRetries) {
            f.failed = true;
            return;
        }
        ++f.retransmits;
        const unsigned shift = std::min(f.rxRetries - 1, 16u);
        const sim::TimeNs retry_at =
            out.completes + (f.spec.rtoNs << shift);
        sys_.ctx.engine.schedule(retry_at,
                                 [this, fi] { pumpRx(fi); });
        return;
    }
    f.rxRetries = 0;

    ++f.rxInflight;
    sys_.ctx.engine.schedule(out.completes, [this, fi, buf, now] {
        rxProcess(fi, buf, now);
    });
    // The peer streams the next segment as soon as the wire frees up
    // (the pacing resources serialize per-flow occupancy).
    sys_.ctx.engine.schedule(out.completes, [this, fi] { pumpRx(fi); });
}

void
StreamEngine::rxProcess(std::size_t fi, RxBuffer buf,
                        sim::TimeNs started)
{
    State &f = flows_[fi];
    assert(f.rxInflight > 0);
    --f.rxInflight;
    sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core),
                       sys_.ctx.now());

    if (tornDown_) {
        // The ring is gone: complete the buffer with error instead of
        // delivering data up a dead stack.
        stack_.driver.abortRxBuffer(cpu, buf,
                                    core::AllocCtx::Interrupt);
        ++abortedSegments_;
        return;
    }

    SkBuff skb = stack_.driver.rxBuild(cpu, buf, f.spec.segBytes);

    // Drivers refill the ring before handing the skb up (NAPI refills
    // eagerly); the freed buffer below therefore goes back to the page
    // allocator where *any* consumer may claim it before the next
    // refill -- the behaviour figure 9 measures on stock kernels.
    RxBuffer refill = stack_.driver.allocRxBuffer(
        cpu, f.spec.segBytes, core::AllocCtx::Interrupt);
    if (refill.valid()) {
        f.posted.push_back(refill);
        if (f.generatorStalled) {
            f.generatorStalled = false;
            sys_.ctx.engine.schedule(cpu.time,
                                     [this, fi] { pumpRx(fi); });
        }
    } else {
        // Memory pressure: retry the refill later; the peer stalls on
        // flow control if the ring runs dry meanwhile.
        sys_.ctx.stats.add("net.rx_refill_fails");
        sys_.ctx.engine.schedule(cpu.time + f.spec.rtoNs,
                                 [this, fi] { refillRx(fi); });
    }

    stack_.rxSegment(cpu, skb, config_.costFactor);
    if (f.spec.extraCpuNs != 0 || f.spec.perSegment) {
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::App,
                            "app.segment");
        if (f.spec.extraCpuNs)
            cpu.charge(f.spec.extraCpuNs);
        if (f.spec.perSegment)
            f.spec.perSegment(cpu, skb);
    }
    stack_.appRead(cpu, skb, config_.costFactor,
                   core::AllocCtx::Interrupt);

    if (inWindow()) {
        ++f.segments;
        f.bytes += f.spec.segBytes;
        latency_.record(cpu.time - started);
    }
}

void
StreamEngine::pumpTx(std::size_t fi)
{
    State &f = flows_[fi];
    if (tornDown_ || f.failed)
        return;
    if (f.txInflight >= f.spec.window) {
        f.appStalled = true;
        return;
    }

    sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core),
                       sys_.ctx.now());
    auto skb = std::make_shared<SkBuff>(
        stack_.txBuild(cpu, f.spec.segBytes, config_.costFactor,
                       core::AllocCtx::Standard));
    if (skb->allocFailed) {
        // Memory or IOVA pressure beat the build: nothing was mapped
        // (txBuild already freed the partial skb).  Throttle the
        // application with an exponentially backed-off retry instead
        // of spinning; give up once the budget is exhausted.
        sys_.ctx.stats.add("net.tx_throttled");
        ++f.txAllocRetries;
        if (f.txAllocRetries > f.spec.maxRetries) {
            f.failed = true;
            return;
        }
        const unsigned shift = std::min(f.txAllocRetries - 1, 16u);
        sys_.ctx.engine.schedule(cpu.time + (f.spec.rtoNs << shift),
                                 [this, fi] { pumpTx(fi); });
        return;
    }
    f.txAllocRetries = 0;
    if (f.spec.extraCpuNs) {
        sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::App,
                            "app.segment");
        cpu.charge(f.spec.extraCpuNs);
    }
    ++f.txInflight;

    txSend(fi, skb, cpu.time, sys_.ctx.now(), /*attempt=*/1);
    // The application loops: next socket write follows immediately
    // (CPU availability permitting -- the cursor serialized on core).
    sys_.ctx.engine.schedule(cpu.time, [this, fi] { pumpTx(fi); });
}

void
StreamEngine::txSend(std::size_t fi, std::shared_ptr<SkBuff> skb,
                     sim::TimeNs when, sim::TimeNs started,
                     unsigned attempt)
{
    State &f = flows_[fi];

    // Abort the in-flight segment: complete with error (unmap + free,
    // so the mapping does not leak) and retire the ring credit.
    const auto abort_tx = [&](sim::TimeNs at) {
        sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core), at);
        stack_.txAbort(cpu, *skb, core::AllocCtx::Standard);
        ++abortedSegments_;
        assert(f.txInflight > 0);
        --f.txInflight;
    };

    if (tornDown_) {
        abort_tx(when);
        return;
    }

    const dma::DmaOutcome out = nic_.transferSegmentSg(
        when, f.spec.port, Traffic::Tx, stack_.driver.sgOf(*skb));
    if (out.fault) {
        ++f.drops;
        sys_.ctx.tracer.instant(f.spec.core, sim::TraceCat::Fault,
                                "net.tx_drop", out.completes,
                                f.spec.segBytes, attempt);
        if (!nic_.attached() || attempt > f.spec.maxRetries) {
            // Unplugged or out of budget: the segment will never make
            // it.  Error-complete it so nothing stays mapped.
            f.failed = true;
            abort_tx(out.completes);
            return;
        }
        // The skb stays mapped; the retransmission timer fires with
        // exponential backoff until the retry budget runs out.
        ++f.retransmits;
        const unsigned shift = std::min(attempt - 1, 16u);
        const sim::TimeNs retry_at =
            out.completes + (f.spec.rtoNs << shift);
        sys_.ctx.engine.schedule(
            retry_at, [this, fi, skb, retry_at, started, attempt] {
                txSend(fi, skb, retry_at, started, attempt + 1);
            });
        return;
    }

    sys_.ctx.engine.schedule(out.completes, [this, fi, skb, started] {
        txDone(fi, skb, started);
    });
}

void
StreamEngine::txDone(std::size_t fi, std::shared_ptr<SkBuff> skb,
                     sim::TimeNs started)
{
    State &f = flows_[fi];
    sim::CpuCursor cpu(sys_.ctx.machine.core(f.spec.core),
                       sys_.ctx.now());
    stack_.txComplete(cpu, *skb, config_.costFactor,
                      core::AllocCtx::Standard);

    if (inWindow()) {
        ++f.segments;
        f.bytes += f.spec.segBytes;
        latency_.record(cpu.time - started);
    }

    assert(f.txInflight > 0);
    --f.txInflight;
    if (f.appStalled && !tornDown_ && !f.failed) {
        f.appStalled = false;
        sys_.ctx.engine.schedule(cpu.time, [this, fi] { pumpTx(fi); });
    }
}

void
StreamEngine::teardown(sim::CpuCursor &cpu)
{
    if (tornDown_)
        return;
    tornDown_ = true;
    for (State &f : flows_) {
        // Ring teardown: every posted (never-completed) buffer is
        // unmapped and freed.  In-flight segments abort as their
        // events fire; run the engine forward and check quiesced().
        while (!f.posted.empty()) {
            stack_.driver.abortRxBuffer(cpu, f.posted.front(),
                                        core::AllocCtx::Interrupt);
            ++abortedSegments_;
            f.posted.pop_front();
        }
        f.generatorStalled = false;
        f.appStalled = false;
    }
    sys_.ctx.stats.add("net.ring_teardowns");
}

StreamResult
StreamEngine::run()
{
    assert(!flows_.empty());
    for (std::size_t fi = 0; fi < flows_.size(); ++fi)
        startFlow(fi);

    sys_.ctx.engine.run(config_.warmupNs);
    windowStart_ = config_.warmupNs;
    windowEnd_ = config_.warmupNs + config_.measureNs;
    sys_.ctx.machine.resetAccounting();
    sys_.ctx.memBw.resetAccounting();
    sys_.ctx.tracer.resetWindow();

    sys_.ctx.engine.run(windowEnd_);

    StreamResult r;
    const double window_s = double(config_.measureNs) / 1e9;
    for (const State &f : flows_) {
        FlowResult fr;
        fr.segments = f.segments;
        fr.bytes = f.bytes;
        fr.gbps = double(f.bytes) * 8.0 / 1e9 / window_s;
        fr.drops = f.drops;
        fr.retransmits = f.retransmits;
        fr.failed = f.failed;
        r.flows.push_back(fr);
        r.drops += fr.drops;
        r.retransmits += fr.retransmits;
        if (fr.failed)
            ++r.failedFlows;
        if (f.spec.kind == Traffic::Rx)
            r.rxGbps += fr.gbps;
        else
            r.txGbps += fr.gbps;
    }
    r.totalGbps = r.rxGbps + r.txGbps;
    r.cpuPct = sys_.ctx.machine.utilizationPct(config_.measureNs);
    r.memGBps = sys_.ctx.memBw.achievedGBps(config_.measureNs);
    r.latency = latency_;
    return r;
}

} // namespace damn::net
