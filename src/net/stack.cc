/**
 * @file
 * Driver + TCP-lite implementation.
 */

#include "net/stack.hh"

#include <cassert>

namespace damn::net {

// ---------------------------------------------------------------------
// NicDriver
// ---------------------------------------------------------------------

RxBuffer
NicDriver::allocRxBuffer(sim::CpuCursor &cpu, std::uint32_t bytes,
                         core::AllocCtx actx)
{
    RxBuffer buf;
    buf.seg.len = bytes;
    buf.seg.dmaDir = dma::Dir::FromDevice;

    // Injected memory pressure: the allocation fails before any
    // allocator is consulted, like a failed GFP_ATOMIC alloc.
    if (sys_.ctx.faults.shouldFail(sim::FaultSite::PageAlloc)) {
        sys_.ctx.stats.add("mem.injected_alloc_fails");
        return buf;
    }

    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetDriver,
                        "driver.rx_alloc");

    unsigned order = 0;
    while ((mem::kPageSize << order) < bytes)
        ++order;

    if (sys_.damnMode()) {
        // dma_alloc_skb flavor: buffer comes from DAMN, device-writable.
        mem::Pfn pfn = sys_.damn->damnAllocPages(
            cpu, &nic_, core::Rights::Write, order, actx);
        if (pfn == mem::kInvalidPfn) {
            sys_.ctx.pressure.reclaim(cpu);
            pfn = sys_.damn->damnAllocPages(cpu, &nic_,
                                            core::Rights::Write, order,
                                            actx);
        }
        if (pfn == mem::kInvalidPfn)
            return buf;
        buf.seg.pa = mem::pfnToPa(pfn);
        buf.seg.owner = SegOwner::Damn;
    } else {
        cpu.charge(sys_.ctx.cost.pageAllocNs);
        mem::Pfn pfn = sys_.pageAlloc.allocPages(order, cpu.numa());
        if (pfn == mem::kInvalidPfn) {
            sys_.ctx.pressure.reclaim(cpu);
            pfn = sys_.pageAlloc.allocPages(order, cpu.numa());
        }
        if (pfn == mem::kInvalidPfn)
            return buf;
        buf.seg.pa = mem::pfnToPa(pfn);
        buf.seg.owner = SegOwner::Pages;
        buf.seg.pageOrder = std::uint8_t(order);
    }

    // Unmodified driver: always goes through the DMA API.  For DAMN
    // buffers the interposition returns the permanent IOVA.
    const iommu::Iova dma_addr = sys_.dmaApi->map(
        cpu, nic_, buf.seg.pa, bytes, dma::Dir::FromDevice);
    if (dma_addr == dma::kMapFailed) {
        // IOVA space gone even after forced reclaim: give the memory
        // back and report the refill failure to the caller.
        SkBuff skb;
        skb.dev = &nic_;
        skb.append(buf.seg);
        sys_.accessor().freeSkb(cpu, skb, actx);
        buf.seg = SkbSegment{};
        sys_.ctx.stats.add("net.rx_map_fails");
        return buf;
    }
    buf.seg.dmaAddr = dma_addr;
    buf.seg.dmaLen = bytes;
    buf.seg.dmaMapped = true;
    return buf;
}

SkBuff
NicDriver::rxBuild(sim::CpuCursor &cpu, RxBuffer buf,
                   std::uint32_t actual_len)
{
    assert(buf.seg.dmaMapped);
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetDriver,
                        "driver.rx_build");
    sys_.dmaApi->unmap(cpu, nic_, buf.seg.dmaAddr, buf.seg.dmaLen,
                       dma::Dir::FromDevice);
    buf.seg.dmaMapped = false;

    SkBuff skb;
    skb.dev = &nic_;
    buf.seg.len = actual_len;
    skb.append(buf.seg);
    return skb;
}

void
NicDriver::abortRxBuffer(sim::CpuCursor &cpu, RxBuffer buf,
                         core::AllocCtx actx)
{
    if (!buf.seg.dmaMapped)
        return;
    sys_.dmaApi->unmap(cpu, nic_, buf.seg.dmaAddr, buf.seg.dmaLen,
                       dma::Dir::FromDevice);
    buf.seg.dmaMapped = false;

    SkBuff skb;
    skb.dev = &nic_;
    skb.append(buf.seg);
    sys_.accessor().freeSkb(cpu, skb, actx);
    sys_.ctx.stats.add("net.rx_aborted_buffers");
}

bool
NicDriver::txMap(sim::CpuCursor &cpu, SkBuff &skb)
{
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetDriver,
                        "driver.tx_map");
    for (SkbSegment &seg : skb.segs) {
        if (seg.len == 0)
            continue;
        const iommu::Iova addr = sys_.dmaApi->map(
            cpu, nic_, seg.pa, seg.len, dma::Dir::ToDevice);
        if (addr == dma::kMapFailed) {
            // Roll back the segments already mapped so nothing leaks;
            // the caller drops the skb and backs off.
            txUnmap(cpu, skb);
            sys_.ctx.stats.add("net.tx_map_fails");
            return false;
        }
        seg.dmaAddr = addr;
        seg.dmaLen = seg.len;
        seg.dmaDir = dma::Dir::ToDevice;
        seg.dmaMapped = true;
    }
    return true;
}

void
NicDriver::txUnmap(sim::CpuCursor &cpu, SkBuff &skb)
{
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetDriver,
                        "driver.tx_unmap");
    std::vector<dma::DmaApi::UnmapReq> reqs;
    for (SkbSegment &seg : skb.segs) {
        if (!seg.dmaMapped)
            continue;
        reqs.push_back({seg.dmaAddr, seg.dmaLen, seg.dmaDir});
        seg.dmaMapped = false;
    }
    sys_.dmaApi->unmapBatch(cpu, nic_, reqs);
}

std::vector<std::pair<iommu::Iova, std::uint32_t>>
NicDriver::sgOf(const SkBuff &skb) const
{
    std::vector<std::pair<iommu::Iova, std::uint32_t>> sg;
    sg.reserve(skb.segs.size());
    for (const SkbSegment &seg : skb.segs)
        if (seg.dmaMapped)
            sg.emplace_back(seg.dmaAddr, seg.dmaLen);
    return sg;
}

// ---------------------------------------------------------------------
// TcpStack
// ---------------------------------------------------------------------

void
TcpStack::chargeCopy(sim::CpuCursor &cpu, std::uint64_t bytes,
                     double bytes_per_ns)
{
    const auto &c = sys_.ctx.cost;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::Copy,
                        "skb.copy");
    span.bytes(bytes);
    // Copy traffic (read + write streams, partially LLC-absorbed)
    // occupies the memory controllers; when they are saturated the
    // copy stretches and the extra stall is CPU-visible.
    const auto mem_bytes =
        std::uint64_t(2.0 * double(bytes) * c.copyMemTrafficFactor);
    cpu.charge(sys_.ctx.copyCost(cpu.time, bytes, bytes_per_ns,
                                 mem_bytes));
}

void
TcpStack::rxSegment(sim::CpuCursor &cpu, SkBuff &skb, double factor)
{
    const auto &c = sys_.ctx.cost;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetStack,
                        "stack.rx_segment");
    span.bytes(skb.len());
    cpu.charge(sim::TimeNs(double(c.irqPerSegmentNs +
                                  c.driverPerBufferNs) * factor));

    // Netfilter hooks see the (reassembled) segment first.
    for (const NetfilterHook &hook : hooks_)
        hook(cpu, skb, sys_.accessor());

    // TCP/IP processing reads the headers through the accessor API;
    // under DAMN this is the copy that takes them out of the device's
    // reach (section 5.2).
    sys_.accessor().access(cpu, skb, 0,
                           std::min(skb.headerLen, skb.len()));

    cpu.charge(sim::TimeNs(double(c.stackPerSegmentNs) * factor));
    cpu.charge(c.ackPerSegmentNs);
    sys_.ctx.stats.add("net.rx_segments");
    sys_.ctx.stats.add("net.rx_bytes", skb.len());
}

void
TcpStack::appRead(sim::CpuCursor &cpu, SkBuff &skb, double factor,
                  core::AllocCtx actx)
{
    (void)factor;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::App,
                        "app.read");
    // The POSIX copy_to_user boundary: freshly-DMAed data is LLC-warm
    // (DDIO).  Under DAMN this copy doubles as the security boundary
    // for payload bytes -- no extra work.
    chargeCopy(cpu, skb.len(), sys_.ctx.cost.warmCopyBytesPerNs);
    sys_.accessor().freeSkb(cpu, skb, actx);
    sys_.ctx.stats.add("net.user_read_bytes", skb.len());
}

SkBuff
TcpStack::txBuild(sim::CpuCursor &cpu, std::uint32_t seg_bytes,
                  double factor, core::AllocCtx actx)
{
    const auto &c = sys_.ctx.cost;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetStack,
                        "stack.tx_build");
    span.bytes(seg_bytes);
    SkBuff skb;
    skb.dev = &nic_;

    // Head buffer (protocol headers + a little data).
    SkbSegment head;
    head.len = kTxHeadBytes;
    if (sys_.damnMode()) {
        head.pa = sys_.damn->damnAlloc(cpu, &nic_, core::Rights::Read,
                                       kTxHeadBytes, actx);
        if (head.pa == 0) {
            sys_.ctx.pressure.reclaim(cpu);
            head.pa = sys_.damn->damnAlloc(cpu, &nic_,
                                           core::Rights::Read,
                                           kTxHeadBytes, actx);
        }
        head.owner = SegOwner::Damn;
    } else {
        cpu.charge(c.kmallocNs);
        head.pa = sys_.heap.kmalloc(kTxHeadBytes);
        if (head.pa == 0) {
            sys_.ctx.pressure.reclaim(cpu);
            head.pa = sys_.heap.kmalloc(kTxHeadBytes);
        }
        head.owner = SegOwner::Kmalloc;
    }
    if (head.pa == 0) {
        skb.allocFailed = true;
        sys_.ctx.stats.add("net.tx_alloc_fails");
        return skb;
    }
    skb.append(head);

    // Payload frags, filled by the copy_from_user at the socket write.
    std::uint32_t remaining = seg_bytes;
    while (remaining > 0) {
        const std::uint32_t n = std::min(remaining, kTxFragBytes);
        SkbSegment frag;
        frag.len = n;
        if (sys_.damnMode()) {
            frag.pa = sys_.damn->damnAlloc(cpu, &nic_,
                                           core::Rights::Read, n, actx);
            if (frag.pa == 0) {
                sys_.ctx.pressure.reclaim(cpu);
                frag.pa = sys_.damn->damnAlloc(
                    cpu, &nic_, core::Rights::Read, n, actx);
            }
            frag.owner = SegOwner::Damn;
        } else {
            // Stock kernel: TX payload comes from the per-core
            // sk_page_frag bump allocator.
            frag.pa = sys_.pageFrag.alloc(cpu, n);
            if (frag.pa == 0) {
                sys_.ctx.pressure.reclaim(cpu);
                frag.pa = sys_.pageFrag.alloc(cpu, n);
            }
            frag.owner = SegOwner::PageFrag;
        }
        if (frag.pa == 0) {
            skb.allocFailed = true;
            break;
        }
        skb.append(frag);
        remaining -= n;
    }
    if (skb.allocFailed) {
        // Memory pressure beat the reclaimers: free what was built and
        // let the caller back off (flagged on the returned skb).
        sys_.accessor().freeSkb(cpu, skb, actx);
        sys_.ctx.stats.add("net.tx_alloc_fails");
        return skb;
    }

    // copy_from_user of the payload: netperf cycles one send buffer,
    // so the source is cache-hot.
    chargeCopy(cpu, seg_bytes, c.txUserCopyBytesPerNs);

    cpu.charge(sim::TimeNs(double(c.stackPerSegmentNs) * factor));
    cpu.charge(c.ackPerSegmentNs);

    if (!driver.txMap(cpu, skb)) {
        sys_.accessor().freeSkb(cpu, skb, actx);
        skb.allocFailed = true;
        return skb;
    }
    sys_.ctx.stats.add("net.tx_segments");
    sys_.ctx.stats.add("net.tx_bytes", seg_bytes);
    return skb;
}

SkBuff
TcpStack::txBuildZeroCopy(sim::CpuCursor &cpu,
                          const std::vector<mem::Pa> &file_pages,
                          std::uint32_t seg_bytes, double factor,
                          core::AllocCtx actx)
{
    const auto &c = sys_.ctx.cost;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetStack,
                        "stack.tx_build_zc");
    span.bytes(seg_bytes);
    SkBuff skb;
    skb.dev = &nic_;

    // Headers still need a (tiny) kernel buffer.
    SkbSegment head;
    head.len = kTxHeadBytes;
    if (sys_.damnMode()) {
        head.pa = sys_.damn->damnAlloc(cpu, &nic_, core::Rights::Read,
                                       kTxHeadBytes, actx);
        if (head.pa == 0) {
            sys_.ctx.pressure.reclaim(cpu);
            head.pa = sys_.damn->damnAlloc(cpu, &nic_,
                                           core::Rights::Read,
                                           kTxHeadBytes, actx);
        }
        head.owner = SegOwner::Damn;
    } else {
        cpu.charge(c.kmallocNs);
        head.pa = sys_.heap.kmalloc(kTxHeadBytes);
        if (head.pa == 0) {
            sys_.ctx.pressure.reclaim(cpu);
            head.pa = sys_.heap.kmalloc(kTxHeadBytes);
        }
        head.owner = SegOwner::Kmalloc;
    }
    if (head.pa == 0) {
        skb.allocFailed = true;
        sys_.ctx.stats.add("net.tx_alloc_fails");
        return skb;
    }
    skb.append(head);

    // File pages attach as borrowed frags: no copy at all.
    std::uint32_t remaining = seg_bytes;
    for (const mem::Pa pa : file_pages) {
        if (remaining == 0)
            break;
        SkbSegment frag;
        frag.pa = pa;
        frag.len = std::min<std::uint32_t>(remaining,
                                           std::uint32_t(mem::kPageSize));
        frag.owner = SegOwner::Borrowed; // the page cache owns them
        skb.append(frag);
        remaining -= frag.len;
    }
    assert(remaining == 0 && "not enough file pages for seg_bytes");

    cpu.charge(sim::TimeNs(double(c.stackPerSegmentNs) * factor));
    if (!driver.txMap(cpu, skb)) {
        sys_.accessor().freeSkb(cpu, skb, actx);
        skb.allocFailed = true;
        return skb;
    }
    sys_.ctx.stats.add("net.tx_zerocopy_segments");
    return skb;
}

void
TcpStack::txComplete(sim::CpuCursor &cpu, SkBuff &skb, double factor,
                     core::AllocCtx actx)
{
    const auto &c = sys_.ctx.cost;
    sim::TraceSpan span(sys_.ctx.tracer, cpu, sim::TraceCat::NetDriver,
                        "driver.tx_complete");
    cpu.charge(sim::TimeNs(double(c.irqPerSegmentNs +
                                  c.driverPerBufferNs) * factor));
    driver.txUnmap(cpu, skb);
    sys_.accessor().freeSkb(cpu, skb, actx);
}

void
TcpStack::txAbort(sim::CpuCursor &cpu, SkBuff &skb, core::AllocCtx actx)
{
    driver.txUnmap(cpu, skb);
    sys_.accessor().freeSkb(cpu, skb, actx);
    sys_.ctx.stats.add("net.tx_aborted_segments");
}

} // namespace damn::net
