/**
 * @file
 * Socket buffers (skbuffs) and the accessor API DAMN interposes on.
 *
 * Packet data may live in a non-contiguous set of buffers, so all OS
 * code must access it through this accessor API (paper section 5.2).
 * That API is DAMN's TOCTTOU interposition point: the first time the
 * OS touches a byte range whose backing store is device-writable DAMN
 * memory, the range is copied into a kernel buffer out of the device's
 * reach, and the skbuff is adjusted to point at the copy.  The device
 * can then no longer change data the OS has already seen.
 */

#ifndef DAMN_NET_SKBUFF_HH
#define DAMN_NET_SKBUFF_HH

#include <cstdint>
#include <vector>

#include "core/damn_allocator.hh"
#include "dma/dma_api.hh"
#include "iommu/io_pgtable.hh"
#include "mem/page_frag.hh"
#include "mem/phys.hh"
#include "sim/cpu_cursor.hh"

namespace damn::net {

/** How a data segment of an skbuff is owned / should be freed. */
enum class SegOwner : std::uint8_t
{
    Damn,       //!< damn_alloc'ed (freed via damn_free)
    Kmalloc,    //!< kmalloc'ed
    Pages,      //!< raw pages from the buddy allocator
    PageFrag,   //!< sk_page_frag fragment (stock TX payload)
    Borrowed,   //!< not owned (e.g., shared clone); never freed
};

/** One contiguous piece of packet data. */
struct SkbSegment
{
    mem::Pa pa = 0;
    std::uint32_t len = 0;
    SegOwner owner = SegOwner::Borrowed;
    std::uint8_t pageOrder = 0;   //!< for SegOwner::Pages
    bool secured = false;         //!< already copied out of device reach

    // DMA-mapping state while the segment is device-visible.
    iommu::Iova dmaAddr = 0;
    std::uint32_t dmaLen = 0;
    bool dmaMapped = false;
    dma::Dir dmaDir = dma::Dir::FromDevice;
};

/**
 * A socket buffer: an ordered list of data segments plus packet
 * metadata.  (Linux's head+frags layout collapses to the same thing
 * for our purposes: an ordered set of contiguous byte ranges.)
 */
class SkBuff
{
  public:
    std::vector<SkbSegment> segs;
    dma::Device *dev = nullptr;     //!< originating/target device
    std::uint32_t headerLen = 66;   //!< Ethernet+IP+TCP header bytes
    /** Build gave up under memory pressure; drop + retry, don't send. */
    bool allocFailed = false;

    /** Total packet bytes. */
    std::uint32_t
    len() const
    {
        std::uint32_t n = 0;
        for (const auto &s : segs)
            n += s.len;
        return n;
    }

    /** Append a data segment. */
    void
    append(const SkbSegment &seg)
    {
        segs.push_back(seg);
    }
};

/**
 * The TOCTTOU guard: interposes on skbuff data accesses and copies
 * device-writable DAMN bytes to kernel memory on first OS access.
 *
 * For non-DAMN configurations, the guard degrades to a plain reader
 * (the data either is in kernel memory already, or the scheme made it
 * inaccessible to the device at dma_unmap time).
 */
class SkbAccessor
{
  public:
    /**
     * @param alloc  the DAMN allocator, or nullptr when the system
     *               under test does not use DAMN.
     */
    SkbAccessor(sim::Context &ctx, mem::PageAllocator &pa,
                mem::KmallocHeap &heap, mem::PageFragAllocator &frag,
                core::DamnAllocator *alloc)
        : ctx_(ctx), pageAlloc_(pa), pm_(pa.phys()), heap_(heap),
          frag_(frag), alloc_(alloc)
    {}

    /**
     * OS read of packet bytes [off, off+len): secures the range first
     * if needed, then optionally copies it to @p dst (may be nullptr
     * for a touch-only access such as checksum or filter inspection;
     * the securing copy still happens).
     */
    void access(sim::CpuCursor &cpu, SkBuff &skb, std::uint32_t off,
                std::uint32_t len, void *dst = nullptr);

    /**
     * Copy device-writable DAMN bytes [off, off+len) into kernel
     * buffers and repoint the skbuff (the core of section 5.2).
     * Ranges already secured are skipped.
     * @return bytes actually copied.
     */
    std::uint64_t secureRange(sim::CpuCursor &cpu, SkBuff &skb,
                              std::uint32_t off, std::uint32_t len);

    /** Free all owned segments of @p skb. */
    void freeSkb(sim::CpuCursor &cpu, SkBuff &skb,
                 core::AllocCtx actx = core::AllocCtx::Standard);

    /** Cumulative bytes the guard copied (figure 8 accounting). */
    std::uint64_t securedBytes() const { return securedBytes_; }

  private:
    bool needsSecuring(const SkbSegment &seg) const;

    sim::Context &ctx_;
    mem::PageAllocator &pageAlloc_;
    mem::PhysicalMemory &pm_;
    mem::KmallocHeap &heap_;
    mem::PageFragAllocator &frag_;
    core::DamnAllocator *alloc_;
    std::uint64_t securedBytes_ = 0;
};

} // namespace damn::net

#endif // DAMN_NET_SKBUFF_HH
