/**
 * @file
 * A complete simulated machine ("deployment") under one protection
 * scheme: memory, IOMMU, DMA API, and — for the damn scheme — the DAMN
 * allocator wired in as the DMA-API interposition layer.
 *
 * Experiments construct one System per evaluated configuration; there
 * is no global state, so a bench can build five Systems (iommu-off,
 * strict, deferred, shadow, damn) side by side.
 */

#ifndef DAMN_NET_SYSTEM_HH
#define DAMN_NET_SYSTEM_HH

#include <memory>

#include "core/damn_dma.hh"
#include "dma/schemes.hh"
#include "mem/kmalloc.hh"
#include "net/skbuff.hh"

namespace damn::net {

/** Configuration of a simulated machine. */
struct SystemParams
{
    dma::SchemeKind scheme = dma::SchemeKind::IommuOff;
    /** Hardware IOMMU model the machine deploys (VT-d or SMMUv3). */
    iommu::BackendKind backend = iommu::BackendKind::Vtd;
    std::uint64_t physBytes = 1ull << 32;   //!< 4 GiB (sparsely backed)
    sim::CostModel cost{};
    unsigned sockets = 2;
    unsigned coresPerSocket = 14;

    // DAMN variants (Table 3).
    core::DmaCacheConfig damnCache{};
    /** damn's fallback scheme for non-DAMN buffers (section 5.3). */
    dma::SchemeKind damnFallback = dma::SchemeKind::Deferred;

    /**
     * DMA-API IOVA-space budget in bytes; 0 keeps the scheme's full
     * space.  Pressure experiments shrink it to hit the exhaustion
     * wall and exercise forced reclaim.
     */
    std::uint64_t iovaSpaceBytes = 0;
};

/**
 * Shard map of a scale-out partition: how one logical run splits into
 * K machine shards for `sim::ShardedEngine` (DESIGN.md §15).  Each
 * shard is a full System (its own Context/engine) standing in for one
 * server machine behind the ToR; shards exchange cross-machine
 * traffic over channels whose lookahead is the minimum modeled link
 * latency between two machines.
 */
struct ShardPlan
{
    /** Number of machine shards (one System each). */
    unsigned shards = 4;
    /**
     * Cross-shard channel lookahead; 0 derives the floor from the
     * cost model (2 x NIC wire + one cut-through switch hop).
     */
    sim::TimeNs linkLatencyNs = 0;
    /**
     * Virtual period of the cross-shard telemetry heartbeat each
     * shard sends its ring neighbor.  Senders promise silence until
     * the next tick (promiseNoSendBefore), so this — not the raw link
     * latency — bounds the conservative window width.
     */
    sim::TimeNs telemetryPeriodNs = 100 * sim::kNsPerUs;

    sim::TimeNs
    resolvedLinkNs(const sim::CostModel &cost) const
    {
        return linkLatencyNs != 0 ? linkLatencyNs
                                  : cost.interMachineLinkNs();
    }
};

/** Everything one experiment machine owns. */
class System
{
  public:
    explicit System(SystemParams p)
        : params(p),
          ctx(p.cost, p.sockets, p.coresPerSocket),
          phys(p.physBytes),
          pageAlloc(phys, p.sockets),
          heap(pageAlloc),
          mmu(ctx, /*enabled=*/schemeUsesIommu(p), p.backend),
          pageFrag(ctx, pageAlloc),
          accessorStorage_()
    {
        if (p.scheme == dma::SchemeKind::Damn) {
            damn = std::make_unique<core::DamnAllocator>(
                ctx, pageAlloc, heap, mmu,
                core::DamnConfig{p.damnCache});
            // Non-DAMN buffers still get DMA-API protection through
            // the fallback scheme ("damn without iommu" pairs with the
            // passthrough fallback since the IOMMU is off entirely).
            auto fb = p.damnCache.mapInIommu
                ? dma::makeScheme(p.damnFallback, ctx, mmu, pageAlloc)
                : dma::makeScheme(dma::SchemeKind::IommuOff, ctx, mmu,
                                  pageAlloc);
            dmaApi = std::make_unique<core::DamnDmaApi>(ctx, *damn,
                                                        std::move(fb));
        } else {
            dmaApi = dma::makeScheme(p.scheme, ctx, mmu, pageAlloc);
        }
        accessorStorage_ = std::make_unique<SkbAccessor>(
            ctx, pageAlloc, heap, pageFrag, damn.get());
        if (p.iovaSpaceBytes != 0)
            dmaApi->setIovaSpaceBytes(p.iovaSpaceBytes);
        wirePressure();
    }

    /** True when the scheme programs the IOMMU at all. */
    static bool
    schemeUsesIommu(const SystemParams &p)
    {
        if (p.scheme == dma::SchemeKind::IommuOff)
            return false;
        if (p.scheme == dma::SchemeKind::Damn)
            return p.damnCache.mapInIommu;
        return true;
    }

    bool damnMode() const { return damn != nullptr; }
    SkbAccessor &accessor() { return *accessorStorage_; }

    SystemParams params;
    sim::Context ctx;
    mem::PhysicalMemory phys;
    mem::PageAllocator pageAlloc;
    mem::KmallocHeap heap;
    iommu::Iommu mmu;
    mem::PageFragAllocator pageFrag;
    std::unique_ptr<core::DamnAllocator> damn;  //!< damn scheme only
    std::unique_ptr<dma::DmaApi> dmaApi;

  private:
    /**
     * Register the machine's resources and reclaim callbacks with the
     * pressure controller (sim/pressure.hh): watermarked usage probes
     * for pages / kmalloc / IOVA space / DAMN caches / shadow pools,
     * and reclaimers ordered cheapest-first — force-flush batched
     * invalidations, shrink DAMN magazines, release idle shadow pools.
     */
    void
    wirePressure()
    {
        auto &pc = ctx.pressure;
        const auto totalFrames = [this] {
            return double(pageAlloc.allocatedFrames() +
                          pageAlloc.freeFrames());
        };

        pc.registerResource("pages", [this, totalFrames] {
            const double total = totalFrames();
            return total == 0.0
                       ? 0.0
                       : double(pageAlloc.allocatedFrames()) / total;
        });
        pc.registerResource("kmalloc", [this, totalFrames] {
            const double total = totalFrames();
            return total == 0.0 ? 0.0
                                : double(heap.pinnedPages()) / total;
        });
        pc.registerResource("iova",
                            [this] { return dmaApi->iovaUtilization(); });
        if (damn) {
            pc.registerResource("damn", [this, totalFrames] {
                const double total = totalFrames() * mem::kPageSize;
                return total == 0.0
                           ? 0.0
                           : double(damn->ownedBytes()) / total;
            });
        }
        if (auto *sh =
                dynamic_cast<dma::ShadowDmaApi *>(dmaApi.get())) {
            pc.registerResource("shadow", [this, sh, totalFrames] {
                const double total = totalFrames();
                return total == 0.0
                           ? 0.0
                           : double(sh->poolFrames()) / total;
            });
        }

        pc.registerReclaimer(
            "flush_pending", 10, [this](sim::CpuCursor &cpu) {
                const std::uint64_t before = dmaApi->outstandingIovas();
                dmaApi->flushPending(cpu);
                const std::uint64_t after = dmaApi->outstandingIovas();
                return before > after ? before - after : 0;
            });
        if (damn) {
            pc.registerReclaimer("damn_shrink", 20,
                                 [this](sim::CpuCursor &cpu) {
                                     return damn->shrink(cpu);
                                 });
        }
        if (auto *sh =
                dynamic_cast<dma::ShadowDmaApi *>(dmaApi.get())) {
            pc.registerReclaimer("shadow_shrink", 30,
                                 [sh](sim::CpuCursor &cpu) {
                                     return sh->shrinkIdle(cpu);
                                 });
        }
    }

    std::unique_ptr<SkbAccessor> accessorStorage_;
};

} // namespace damn::net

#endif // DAMN_NET_SYSTEM_HH
