/**
 * @file
 * Resource-pressure resilience tests: the pressure controller's
 * watermark/reclaim machinery, fail-soft allocation paths under
 * exhaustion (kmalloc, DMA map, shadow pools), forced-flush recovery
 * for the deferred scheme, and the engine's stall watchdog.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "dma/schemes.hh"
#include "net/nic.hh"
#include "net/system.hh"
#include "sim/pressure.hh"

using namespace damn;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

/** Minimal harness: a context plus a cursor to charge reclaim to. */
struct PressureFixture : ::testing::Test
{
    PressureFixture() : ctx(sim::CostModel{}, 1, 1) {}

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(ctx.machine.core(0), ctx.now());
    }

    sim::Context ctx;
};

} // namespace

// ---------------------------------------------------------------------
// PressureController
// ---------------------------------------------------------------------

TEST_F(PressureFixture, WatermarksMapToLevels)
{
    double usage = 0.1;
    ctx.pressure.registerResource("x", [&] { return usage; });
    EXPECT_EQ(ctx.pressure.poll(), sim::PressureLevel::Ok);
    usage = 0.80;
    EXPECT_EQ(ctx.pressure.poll(), sim::PressureLevel::Low);
    usage = 0.95;
    EXPECT_EQ(ctx.pressure.poll(), sim::PressureLevel::Critical);
    EXPECT_EQ(ctx.pressure.level("x"), sim::PressureLevel::Critical);
    EXPECT_EQ(ctx.pressure.level("unknown"), sim::PressureLevel::Ok);
}

TEST_F(PressureFixture, LevelTransitionsAreCounted)
{
    double usage = 0.1;
    ctx.pressure.registerResource("x", [&] { return usage; });
    ctx.pressure.poll();
    usage = 0.95;
    ctx.pressure.poll();
    ctx.pressure.poll(); // unchanged level: no second transition
    usage = 0.1;
    ctx.pressure.poll();
    EXPECT_EQ(ctx.stats.get("pressure.x.to_critical"), 1u);
    EXPECT_EQ(ctx.stats.get("pressure.x.to_ok"), 1u);
}

TEST_F(PressureFixture, ReclaimRunsCheapestFirst)
{
    double usage = 0.95;
    ctx.pressure.registerResource("x", [&] { return usage; });
    std::vector<std::string> order;
    // Registered expensive-first: cost must decide, not registration.
    ctx.pressure.registerReclaimer("slow", 30, [&](sim::CpuCursor &) {
        order.push_back("slow");
        usage = 0.1;
        return std::uint64_t{1};
    });
    ctx.pressure.registerReclaimer("fast", 10, [&](sim::CpuCursor &) {
        order.push_back("fast");
        return std::uint64_t{1};
    });
    auto c = cpu();
    EXPECT_EQ(ctx.pressure.reclaim(c), 2u);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "fast");
    EXPECT_EQ(order[1], "slow");
}

TEST_F(PressureFixture, ReclaimStopsOncePressureIsRelieved)
{
    double usage = 0.95;
    ctx.pressure.registerResource("x", [&] { return usage; });
    unsigned expensiveRuns = 0;
    ctx.pressure.registerReclaimer("cheap", 10, [&](sim::CpuCursor &) {
        usage = 0.1; // single pass fully relieves the pressure
        return std::uint64_t{100};
    });
    ctx.pressure.registerReclaimer("expensive", 20,
                                   [&](sim::CpuCursor &) {
                                       ++expensiveRuns;
                                       return std::uint64_t{100};
                                   });
    auto c = cpu();
    EXPECT_EQ(ctx.pressure.reclaim(c), 100u);
    EXPECT_EQ(expensiveRuns, 0u);
    EXPECT_EQ(ctx.stats.get("pressure.reclaimed.cheap"), 100u);
    EXPECT_EQ(ctx.stats.get("pressure.reclaimed.expensive"), 0u);
}

TEST_F(PressureFixture, FutileReclaimIsCounted)
{
    ctx.pressure.registerResource("x", [] { return 0.95; });
    ctx.pressure.registerReclaimer(
        "empty", 10, [](sim::CpuCursor &) { return std::uint64_t{0}; });
    auto c = cpu();
    EXPECT_EQ(ctx.pressure.reclaim(c), 0u);
    EXPECT_EQ(ctx.stats.get("pressure.reclaim_futile"), 1u);
    EXPECT_EQ(ctx.pressure.reclaimEvents(), 1u);
    EXPECT_EQ(ctx.pressure.reclaimedUnits(), 0u);
}

TEST_F(PressureFixture, NestedReclaimDoesNotRecurse)
{
    // A reclaimer whose own allocation fails re-enters reclaim();
    // the guard must turn that into a no-op instead of infinite
    // recursion.
    ctx.pressure.registerResource("x", [] { return 0.95; });
    unsigned calls = 0;
    ctx.pressure.registerReclaimer("reent", 10, [&](sim::CpuCursor &c) {
        ++calls;
        EXPECT_EQ(ctx.pressure.reclaim(c), 0u);
        return std::uint64_t{1};
    });
    auto c = cpu();
    EXPECT_EQ(ctx.pressure.reclaim(c), 1u);
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(ctx.pressure.reclaimEvents(), 1u);
}

// ---------------------------------------------------------------------
// Fail-soft allocators
// ---------------------------------------------------------------------

TEST(KmallocPressure, ReturnsZeroWhenPagesExhausted)
{
    // 8 MiB / 1 zone: the first max-order block is reserved (frame 0),
    // leaving exactly one free max-order block to pin.
    mem::PhysicalMemory pm(8 * kMiB);
    mem::PageAllocator pa(pm, 1);
    mem::KmallocHeap heap(pa);
    // Pin every frame so slab refill has nowhere to grow.
    std::vector<mem::Pfn> hog;
    for (;;) {
        const mem::Pfn pfn = pa.allocPages(0, 0);
        if (pfn == mem::kInvalidPfn)
            break;
        hog.push_back(pfn);
    }
    ASSERT_FALSE(hog.empty());
    EXPECT_EQ(heap.kmalloc(256), 0u);
    EXPECT_GT(heap.refillFails(), 0u);
    // Relief: freeing pages makes kmalloc work again.
    pa.freePages(hog.back(), 0);
    hog.pop_back();
    EXPECT_NE(heap.kmalloc(256), 0u);
    for (const mem::Pfn pfn : hog)
        pa.freePages(pfn, 0);
}

namespace {

/** DMA scheme harness mirroring test_dma's fixture, sized small. */
struct SchemePressureFixture : ::testing::Test
{
    SchemePressureFixture()
        : ctx(sim::CostModel{}, 1, 2), pm(16 * kMiB), pa(pm, 1),
          mmu(ctx, /*enabled=*/true), dev(ctx, "dev0", mmu, pm)
    {}

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(ctx.machine.core(0), ctx.now());
    }

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    iommu::Iommu mmu;
    dma::Device dev;
};

} // namespace

TEST_F(SchemePressureFixture, StrictMapFailsSoftAndRecovers)
{
    auto api = dma::makeScheme(dma::SchemeKind::Strict, ctx, mmu, pa);
    api->setIovaSpaceBytes(4 * mem::kPageSize);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0);
    iommu::Iova held[4];
    for (iommu::Iova &iova : held) {
        iova = api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                        dma::Dir::FromDevice);
        ASSERT_NE(iova, dma::kMapFailed);
    }
    // Space exhausted with everything still mapped: no assert, a
    // counted failure.
    EXPECT_EQ(api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                       dma::Dir::FromDevice),
              dma::kMapFailed);
    EXPECT_EQ(api->mapFailures(), 1u);
    EXPECT_EQ(ctx.stats.get("dma.map_fails"), 1u);
    // Unmapping one range makes the next map succeed (recycled).
    api->unmap(c, dev, held[0], mem::kPageSize, dma::Dir::FromDevice);
    EXPECT_NE(api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                       dma::Dir::FromDevice),
              dma::kMapFailed);
}

TEST_F(SchemePressureFixture, DeferredForcedFlushRecoversIovaSpace)
{
    auto api = dma::makeScheme(dma::SchemeKind::Deferred, ctx, mmu, pa);
    api->setIovaSpaceBytes(16 * mem::kPageSize);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0);
    // Deferred unmaps park IOVAs in the flush queue, so a map/unmap
    // loop exhausts a 16-page space fast — every wraparound must
    // force-flush the queue (Linux's fq_ring fallback) and carry on.
    for (int i = 0; i < 200; ++i) {
        const iommu::Iova iova =
            api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                     dma::Dir::FromDevice);
        ASSERT_NE(iova, dma::kMapFailed) << "iteration " << i;
        api->unmap(c, dev, iova, mem::kPageSize, dma::Dir::FromDevice);
    }
    EXPECT_GT(ctx.stats.get("iommu.iova_forced_flushes"), 0u);
    EXPECT_GT(ctx.stats.get("iommu.iova_flush_recoveries"), 0u);
    EXPECT_EQ(api->mapFailures(), 0u);
}

TEST_F(SchemePressureFixture, ShadowPoolGrowthFailsSoft)
{
    auto api = dma::makeScheme(dma::SchemeKind::Shadow, ctx, mmu, pa);
    auto c = cpu();
    const mem::Pfn buf = pa.allocPages(0, 0);
    // Pin all remaining frames: the shadow pool cannot grow its
    // order-5 blocks.
    std::vector<mem::Pfn> hog;
    for (;;) {
        const mem::Pfn pfn = pa.allocPages(0, 0);
        if (pfn == mem::kInvalidPfn)
            break;
        hog.push_back(pfn);
    }
    EXPECT_EQ(api->map(c, dev, mem::pfnToPa(buf), mem::kPageSize,
                       dma::Dir::ToDevice),
              dma::kMapFailed);
    EXPECT_GT(ctx.stats.get("shadow.pool_grow_fails"), 0u);
    // Relief: release the hog and the same map succeeds.
    for (const mem::Pfn pfn : hog)
        pa.freePages(pfn, 0);
    const iommu::Iova iova = api->map(
        c, dev, mem::pfnToPa(buf), mem::kPageSize, dma::Dir::ToDevice);
    EXPECT_NE(iova, dma::kMapFailed);
    api->unmap(c, dev, iova, mem::kPageSize, dma::Dir::ToDevice);
}

// ---------------------------------------------------------------------
// System wiring
// ---------------------------------------------------------------------

TEST(SystemPressure, ResourcesAndReclaimersAreRegistered)
{
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    p.sockets = 1;
    p.coresPerSocket = 2;
    p.physBytes = 16 * kMiB;
    net::System sys(p);
    // pages + kmalloc + iova + damn, flush_pending + damn_shrink.
    EXPECT_GE(sys.ctx.pressure.numResources(), 4u);
    EXPECT_GE(sys.ctx.pressure.numReclaimers(), 2u);

    net::SystemParams q;
    q.scheme = dma::SchemeKind::Shadow;
    q.sockets = 1;
    q.coresPerSocket = 2;
    q.physBytes = 16 * kMiB;
    net::System shadowSys(q);
    // pages + kmalloc + iova + shadow, flush_pending + shadow_shrink.
    EXPECT_GE(shadowSys.ctx.pressure.numResources(), 4u);
    EXPECT_GE(shadowSys.ctx.pressure.numReclaimers(), 2u);
}

TEST(SystemPressure, IovaSpaceParamIsApplied)
{
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Strict;
    p.sockets = 1;
    p.coresPerSocket = 2;
    p.physBytes = 16 * kMiB;
    p.iovaSpaceBytes = 8 * mem::kPageSize;
    net::System sys(p);
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);
    net::NicDevice nic(sys, "nic0");
    const mem::Pfn pfn = sys.pageAlloc.allocPages(0, 0);
    for (int i = 0; i < 8; ++i)
        ASSERT_NE(sys.dmaApi->map(c, nic, mem::pfnToPa(pfn),
                                  mem::kPageSize, dma::Dir::FromDevice),
                  dma::kMapFailed);
    EXPECT_EQ(sys.dmaApi->map(c, nic, mem::pfnToPa(pfn), mem::kPageSize,
                              dma::Dir::FromDevice),
              dma::kMapFailed);
    EXPECT_DOUBLE_EQ(sys.dmaApi->iovaUtilization(), 1.0);
}

// ---------------------------------------------------------------------
// Stall watchdog
// ---------------------------------------------------------------------

TEST(Watchdog, DetectsLivelockAndStopsRun)
{
    sim::Engine e;
    // Self-rescheduling event with a flat progress probe: the classic
    // retry livelock.  Without the watchdog this run would never end.
    std::function<void()> tick = [&] { e.scheduleIn(10, [&] { tick(); }); };
    e.schedule(0, [&] { tick(); });
    bool reported = false;
    e.armWatchdog(
        1000, [] { return std::uint64_t{0}; },
        [&](const sim::StallInfo &info) {
            reported = true;
            EXPECT_GE(info.eventsSinceProgress, 1000u);
            EXPECT_GT(info.pending, 0u);
        });
    e.run(~sim::TimeNs{0});
    EXPECT_EQ(e.stallsDetected(), 1u);
    EXPECT_TRUE(reported);
    EXPECT_GT(e.pending(), 0u); // the livelocked event is still queued
}

TEST(Watchdog, ProgressPreventsStall)
{
    sim::Engine e;
    std::uint64_t work = 0;
    std::function<void()> tick = [&] {
        if (++work < 5000)
            e.scheduleIn(10, [&] { tick(); });
    };
    e.schedule(0, [&] { tick(); });
    e.armWatchdog(100, [&] { return work; });
    e.runAll();
    EXPECT_EQ(e.stallsDetected(), 0u);
    EXPECT_EQ(work, 5000u);
}

TEST(Watchdog, DisarmedEngineRunsNormally)
{
    sim::Engine e;
    std::uint64_t work = 0;
    std::function<void()> tick = [&] {
        if (++work < 2000)
            e.scheduleIn(10, [&] { tick(); });
    };
    e.schedule(0, [&] { tick(); });
    e.armWatchdog(100, [] { return std::uint64_t{0}; });
    e.disarmWatchdog();
    e.runAll();
    EXPECT_EQ(e.stallsDetected(), 0u);
    EXPECT_EQ(work, 2000u);
}

TEST(Watchdog, RearmedAfterStallTripsAgain)
{
    sim::Engine e;
    std::function<void()> tick = [&] { e.scheduleIn(10, [&] { tick(); }); };
    e.schedule(0, [&] { tick(); });
    e.armWatchdog(500, [] { return std::uint64_t{0}; });
    e.run(~sim::TimeNs{0});
    EXPECT_EQ(e.stallsDetected(), 1u);
    // Continuing after a trip is legal: the baseline was reset, so the
    // second stall needs another full budget of flat progress.
    const std::uint64_t before = e.dispatched();
    e.run(~sim::TimeNs{0});
    EXPECT_EQ(e.stallsDetected(), 2u);
    EXPECT_GE(e.dispatched() - before, 500u);
}
