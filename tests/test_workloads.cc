/**
 * @file
 * Tests for the workload library: Graph500 kernel, netperf/memcached/
 * fio runners (smoke-level invariants), kbuild churn, and the full DMA
 * attack suite — the paper's Table 1 security claims as assertions.
 */

#include <gtest/gtest.h>

#include "workloads/attacks.hh"
#include "workloads/fio.hh"
#include "workloads/graph500.hh"
#include "workloads/kbuild.hh"
#include "workloads/memcached.hh"
#include "workloads/netperf.hh"

using namespace damn;
using namespace damn::work;

// ---------------------------------------------------------------------
// Graph500 kernel (real BFS, not the co-runner)
// ---------------------------------------------------------------------

TEST(Graph500, GeneratorShape)
{
    const Graph g = Graph::generate(10, 8, 42);
    EXPECT_EQ(g.numVertices(), 1024u);
    EXPECT_EQ(g.numEdges(), 2u * 1024 * 8); // symmetric CSR
    // Degree sum equals edge-entry count.
    std::uint64_t deg = 0;
    for (std::uint32_t v = 0; v < g.numVertices(); ++v)
        deg += g.degree(v);
    EXPECT_EQ(deg, g.numEdges());
}

TEST(Graph500, GeneratorDeterministic)
{
    const Graph a = Graph::generate(8, 4, 7);
    const Graph b = Graph::generate(8, 4, 7);
    for (std::uint32_t v = 0; v < a.numVertices(); ++v)
        ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(Graph500, BfsCoversConnectedComponent)
{
    const Graph g = Graph::generate(10, 16, 1);
    const BfsResult r = bfs(g, 0);
    EXPECT_GT(r.verticesVisited, g.numVertices() / 2)
        << "R-MAT graphs have a giant component";
    EXPECT_EQ(r.parent[0], 0);
    EXPECT_GT(r.edgesTraversed, 0u);
}

TEST(Graph500, BfsValidates)
{
    const Graph g = Graph::generate(10, 16, 3);
    const BfsResult r = bfs(g, 5);
    EXPECT_TRUE(validateBfs(g, 5, r));
}

TEST(Graph500, ValidationCatchesTampering)
{
    const Graph g = Graph::generate(10, 16, 3);
    BfsResult r = bfs(g, 5);
    // Find a reached non-root vertex and corrupt its parent.
    for (std::uint32_t v = 0; v < g.numVertices(); ++v) {
        if (v != 5 && r.parent[v] >= 0) {
            r.parent[v] = std::int64_t(v); // self-parent != root
            break;
        }
    }
    EXPECT_FALSE(validateBfs(g, 5, r));
}

TEST(Graph500, BfsFromDifferentRootsConsistentReach)
{
    const Graph g = Graph::generate(9, 8, 11);
    const BfsResult a = bfs(g, 1);
    // Any vertex reached from 1 reaches 1 as well (undirected).
    for (std::uint32_t v = 0; v < g.numVertices() && v < 32; ++v) {
        if (a.parent[v] >= 0 && g.degree(v) > 0) {
            const BfsResult b = bfs(g, v);
            EXPECT_GE(b.verticesVisited, 1u);
            EXPECT_TRUE(b.parent[1] >= 0);
        }
    }
}

TEST(Graph500, CorunnerMakesProgress)
{
    sim::Context ctx(sim::CostModel{}, 2, 14);
    BfsCorunner::Config cfg;
    cfg.bytesPerIteration = 64ull << 20;
    BfsCorunner co(ctx, cfg);
    co.start();
    ctx.engine.run(100 * sim::kNsPerMs);
    EXPECT_GT(co.meanIterationSeconds(ctx.now()), 0.0);
}

TEST(Graph500, CorunnerSlowsUnderMemoryPressure)
{
    // Saturate the controllers with a fake competing stream; the BFS
    // iteration time must stretch.
    const auto run = [](bool pressure) {
        sim::Context ctx(sim::CostModel{}, 2, 14);
        BfsCorunner::Config cfg;
        cfg.bytesPerIteration = 64ull << 20;
        BfsCorunner co(ctx, cfg);
        co.start();
        if (pressure) {
            std::function<void()> hog = [&ctx, &hog] {
                ctx.memBw.occupy(ctx.now(), 40 * 1024);
                ctx.engine.scheduleIn(1000, hog);
            };
            ctx.engine.schedule(0, hog);
        }
        ctx.engine.run(100 * sim::kNsPerMs);
        return co.meanIterationSeconds(ctx.now());
    };
    EXPECT_GT(run(true), run(false) * 1.2);
}

// ---------------------------------------------------------------------
// Attack suite — Table 1 as assertions
// ---------------------------------------------------------------------

TEST(Attacks, IommuOffIsDefenseless)
{
    const AttackReport r = runAttacks(dma::SchemeKind::IommuOff);
    EXPECT_TRUE(r.colocationTheft);
    EXPECT_TRUE(r.staleWindowTheft);
    EXPECT_TRUE(r.tocttou);
}

TEST(Attacks, StrictStopsWindowsButNotColocation)
{
    const AttackReport r = runAttacks(dma::SchemeKind::Strict);
    EXPECT_TRUE(r.colocationTheft) << "page granularity: partial only";
    EXPECT_FALSE(r.staleWindowTheft);
    EXPECT_FALSE(r.tocttou);
}

TEST(Attacks, DeferredHasTheWindow)
{
    const AttackReport r = runAttacks(dma::SchemeKind::Deferred);
    EXPECT_TRUE(r.colocationTheft);
    EXPECT_TRUE(r.staleWindowTheft) << "the batched-flush window";
    EXPECT_TRUE(r.tocttou);
}

TEST(Attacks, ShadowBuffersBlockEverything)
{
    const AttackReport r = runAttacks(dma::SchemeKind::Shadow);
    EXPECT_FALSE(r.colocationTheft);
    EXPECT_FALSE(r.staleWindowTheft);
    EXPECT_FALSE(r.tocttou);
}

TEST(Attacks, DamnBlocksEverything)
{
    const AttackReport r = runAttacks(dma::SchemeKind::Damn);
    EXPECT_FALSE(r.colocationTheft) << "byte granularity by separation";
    EXPECT_FALSE(r.staleWindowTheft) << "secrets never land in chunks";
    EXPECT_FALSE(r.tocttou) << "copy-on-access defense";
    EXPECT_FALSE(r.anySucceeded());
}

// ---------------------------------------------------------------------
// netperf runner invariants (smoke scale)
// ---------------------------------------------------------------------

namespace {

NetperfOpts
smokeOpts(dma::SchemeKind k, NetMode mode)
{
    NetperfOpts o;
    o.scheme = k;
    o.mode = mode;
    o.instances = 4;
    o.coreLimit = 4;
    o.segBytes = 16 * 1024;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 20 * sim::kNsPerMs;
    return o;
}

} // namespace

TEST(Netperf, AllSchemesMoveTraffic)
{
    for (const auto k :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
          dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
          dma::SchemeKind::Damn}) {
        const auto run = runNetperf(smokeOpts(k, NetMode::Rx));
        EXPECT_GT(run.res.rxGbps, 1.0) << dma::schemeKindName(k);
        EXPECT_LE(run.res.cpuPct, 100.0);
    }
}

TEST(Netperf, DamnTracksIommuOff)
{
    const auto off =
        runNetperf(smokeOpts(dma::SchemeKind::IommuOff, NetMode::Rx));
    const auto dam =
        runNetperf(smokeOpts(dma::SchemeKind::Damn, NetMode::Rx));
    EXPECT_GT(dam.res.rxGbps, off.res.rxGbps * 0.9)
        << "the headline claim: damn ~ unprotected";
}

TEST(Netperf, ShadowSlowerThanDamnSingleCore)
{
    NetperfOpts shadow_opts = smokeOpts(dma::SchemeKind::Shadow,
                                        NetMode::Rx);
    shadow_opts.singleCore = true;
    NetperfOpts damn_opts = smokeOpts(dma::SchemeKind::Damn,
                                      NetMode::Rx);
    damn_opts.singleCore = true;
    const auto shadow = runNetperf(shadow_opts);
    const auto dam = runNetperf(damn_opts);
    EXPECT_GT(dam.res.rxGbps, shadow.res.rxGbps * 1.5);
}

TEST(Netperf, BidiUsesBothDirections)
{
    const auto run =
        runNetperf(smokeOpts(dma::SchemeKind::IommuOff, NetMode::Bidi));
    EXPECT_GT(run.res.rxGbps, 1.0);
    EXPECT_GT(run.res.txGbps, 1.0);
}

TEST(Netperf, NoDmaFaultsDuringNormalTraffic)
{
    const auto run =
        runNetperf(smokeOpts(dma::SchemeKind::Strict, NetMode::Bidi));
    EXPECT_EQ(run.nic->faultedDmas(), 0u);
}

TEST(Netperf, DeterministicAcrossRuns)
{
    const auto a =
        runNetperf(smokeOpts(dma::SchemeKind::Deferred, NetMode::Rx));
    const auto b =
        runNetperf(smokeOpts(dma::SchemeKind::Deferred, NetMode::Rx));
    EXPECT_DOUBLE_EQ(a.res.rxGbps, b.res.rxGbps);
    EXPECT_DOUBLE_EQ(a.res.cpuPct, b.res.cpuPct);
}

TEST(Netperf, DamnMemoryStaysBounded)
{
    auto o = smokeOpts(dma::SchemeKind::Damn, NetMode::Bidi);
    o.runWindow.measureNs = 50 * sim::kNsPerMs;
    const auto run = runNetperf(o);
    // DMA caches recycle: owned memory is far below traffic volume.
    EXPECT_LT(run.sys->damn->ownedBytes(), 64ull << 20);
    EXPECT_GT(run.res.totalGbps, 1.0);
}

// ---------------------------------------------------------------------
// memcached / fio / kbuild
// ---------------------------------------------------------------------

TEST(Memcached, MovesOperations)
{
    MemcachedOpts o;
    o.scheme = dma::SchemeKind::IommuOff;
    o.instances = 4;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 20 * sim::kNsPerMs;
    const MemcachedResult r = runMemcached(o);
    EXPECT_GT(r.common.opsPerSec, 100.0);
    EXPECT_LE(r.common.cpuPct, 100.0);
}

TEST(Memcached, StrictWellBelowOthers)
{
    MemcachedOpts o;
    o.instances = 8;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 25 * sim::kNsPerMs;
    o.scheme = dma::SchemeKind::Damn;
    const double damn_tps = runMemcached(o).common.opsPerSec;
    o.scheme = dma::SchemeKind::Strict;
    const double strict_tps = runMemcached(o).common.opsPerSec;
    EXPECT_LT(strict_tps, damn_tps * 0.8);
}

TEST(Fio, DeviceBoundAt512B)
{
    FioOpts o;
    o.scheme = dma::SchemeKind::IommuOff;
    o.blockBytes = 512;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 30 * sim::kNsPerMs;
    const FioResult r = runFio(o);
    EXPECT_NEAR(r.kiops(), 900.0, 50.0);
}

TEST(Fio, ThroughputBoundAtLargeBlocks)
{
    FioOpts o;
    o.scheme = dma::SchemeKind::Deferred;
    o.blockBytes = 65536;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 30 * sim::kNsPerMs;
    const FioResult r = runFio(o);
    EXPECT_NEAR(r.throughputGBps, 3.4, 0.3); // ~3.2 GiB/s media cap
}

TEST(Fio, NoSchemeThrottlesTheDevice)
{
    FioOpts o;
    o.blockBytes = 512;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 30 * sim::kNsPerMs;
    double iops[4];
    unsigned i = 0;
    for (const auto k :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Deferred,
          dma::SchemeKind::Strict, dma::SchemeKind::Shadow}) {
        o.scheme = k;
        iops[i++] = runFio(o).kiops();
    }
    for (unsigned j = 1; j < 4; ++j)
        EXPECT_GT(iops[j], iops[0] * 0.93);
}

TEST(Fio, StrictBurnsMoreCpuAtSmallBlocks)
{
    FioOpts o;
    o.blockBytes = 512;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 30 * sim::kNsPerMs;
    o.scheme = dma::SchemeKind::Deferred;
    const double deferred_cpu = runFio(o).common.cpuPct;
    o.scheme = dma::SchemeKind::Strict;
    const double strict_cpu = runFio(o).common.cpuPct;
    EXPECT_GT(strict_cpu, deferred_cpu * 1.5);
}

TEST(Kbuild, ChurnAllocatesAndFrees)
{
    sim::Context ctx(sim::CostModel{}, 1, 14);
    mem::PhysicalMemory pm(1ull << 30);
    mem::PageAllocator pa(pm, 1);
    KbuildChurn churn(ctx, pa, {});
    churn.start();
    ctx.engine.run(50 * sim::kNsPerMs);
    EXPECT_GT(churn.bursts(), 1000u);
    // Held pages are bounded (bursts expire).
    EXPECT_LT(pa.allocatedFrames(), pm.numFrames() / 2);
}

TEST(Kbuild, ChurnForcesDmaPageDiversity)
{
    // The figure-9 mechanism: with churn, the set of pages ever used
    // for RX DMA grows well beyond the working set.
    NetperfOpts o;
    o.scheme = dma::SchemeKind::Deferred;
    o.mode = NetMode::Rx;
    o.instances = 2;
    o.coreLimit = 2;
    o.segBytes = 65536;
    NetperfRun run = makeNetperfSystem(o);
    KbuildChurn churn(run.sys->ctx, run.sys->pageAlloc, {});
    churn.start();
    net::StreamEngine eng(*run.sys, *run.nic, *run.stack, {});
    addNetperfFlows(run, eng, o);
    eng.startAll();
    run.sys->ctx.engine.run(50 * sim::kNsPerMs);
    const auto ever = run.sys->mmu.everMappedFrames();
    const auto current = run.sys->mmu.currentlyMappedPages();
    EXPECT_GT(ever, current * 3) << "ever-mapped must outgrow current";
}
