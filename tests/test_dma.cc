/**
 * @file
 * Unit tests for the DMA API layer: devices and the four legacy
 * protection schemes, including their functional security semantics.
 */

#include <gtest/gtest.h>

#include "dma/schemes.hh"

using namespace damn;
using namespace damn::dma;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct DmaFixture : ::testing::TestWithParam<SchemeKind>
{
    DmaFixture()
        : ctx(sim::CostModel{}, 1, 2),
          pm(128 * kMiB),
          pa(pm, 1),
          mmu(ctx, /*enabled=*/GetParam() != SchemeKind::IommuOff),
          dev(ctx, "dev0", mmu, pm),
          api(makeScheme(GetParam(), ctx, mmu, pa))
    {}

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(ctx.machine.core(0), ctx.now());
    }

    /** Allocate a page-backed buffer with a recognizable pattern. */
    mem::Pa
    makeBuffer(std::uint32_t len, std::uint8_t fill)
    {
        const mem::Pfn pfn = pa.allocPages(4, 0, true);
        pm.fill(mem::pfnToPa(pfn), fill, len);
        return mem::pfnToPa(pfn);
    }

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    iommu::Iommu mmu;
    Device dev;
    std::unique_ptr<DmaApi> api;
};

} // namespace

TEST_P(DmaFixture, TxDataReachesDevice)
{
    auto c = cpu();
    const mem::Pa buf = makeBuffer(4096, 0x5c);
    const iommu::Iova dma = api->map(c, dev, buf, 4096, Dir::ToDevice);

    std::vector<std::uint8_t> wire(4096, 0);
    const DmaOutcome out = dev.dmaRead(c.time, dma, wire.data(), 4096);
    EXPECT_TRUE(out.ok);
    for (const std::uint8_t b : wire)
        ASSERT_EQ(b, 0x5c);

    api->unmap(c, dev, dma, 4096, Dir::ToDevice);
}

TEST_P(DmaFixture, RxDataReachesBuffer)
{
    auto c = cpu();
    const mem::Pa buf = makeBuffer(4096, 0);
    const iommu::Iova dma = api->map(c, dev, buf, 4096, Dir::FromDevice);

    std::vector<std::uint8_t> wire(4096, 0x7e);
    EXPECT_TRUE(dev.dmaWrite(c.time, dma, wire.data(), 4096).ok);
    api->unmap(c, dev, dma, 4096, Dir::FromDevice);

    // After unmap the *driver's buffer* holds the data (shadow copies
    // it back; the others DMAed in place).
    EXPECT_EQ(pm.readByte(buf), 0x7e);
    EXPECT_EQ(pm.readByte(buf + 4095), 0x7e);
}

TEST_P(DmaFixture, SubPageBuffersWork)
{
    auto c = cpu();
    const mem::Pa buf = makeBuffer(512, 0x21) + 128; // unaligned
    const iommu::Iova dma = api->map(c, dev, buf, 256, Dir::ToDevice);
    std::uint8_t wire[256];
    EXPECT_TRUE(dev.dmaRead(c.time, dma, wire, 256).ok);
    EXPECT_EQ(wire[0], 0x21);
    api->unmap(c, dev, dma, 256, Dir::ToDevice);
}

TEST_P(DmaFixture, ScatterGatherBatchUnmap)
{
    auto c = cpu();
    std::vector<DmaApi::UnmapReq> reqs;
    for (int i = 0; i < 5; ++i) {
        const mem::Pa buf = makeBuffer(4096, std::uint8_t(i));
        const iommu::Iova dma =
            api->map(c, dev, buf, 4096, Dir::ToDevice);
        reqs.push_back({dma, 4096, Dir::ToDevice});
    }
    api->unmapBatch(c, dev, reqs);
    // After a batch unmap, the addresses must no longer be usable
    // (for schemes that enforce a boundary at all).
    if (GetParam() == SchemeKind::Strict) {
        std::uint8_t b;
        EXPECT_TRUE(dev.dmaRead(c.time, reqs[0].dmaAddr, &b, 1).fault);
    }
}

TEST_P(DmaFixture, ManyMapsUnmapsStaySane)
{
    auto c = cpu();
    for (int round = 0; round < 200; ++round) {
        const mem::Pa buf = makeBuffer(8192, std::uint8_t(round));
        const iommu::Iova dma =
            api->map(c, dev, buf, 8192, Dir::FromDevice);
        EXPECT_TRUE(dev.dmaTouch(c.time, dma, 8192, true).ok);
        api->unmap(c, dev, dma, 8192, Dir::FromDevice);
        pa.freePages(mem::paToPfn(buf), 4);
    }
    EXPECT_EQ(dev.faultedDmas(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, DmaFixture,
    ::testing::Values(SchemeKind::IommuOff, SchemeKind::Strict,
                      SchemeKind::Deferred, SchemeKind::Shadow),
    [](const auto &param_info) {
        std::string n = schemeKindName(param_info.param);
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Scheme-specific semantics
// ---------------------------------------------------------------------

namespace {

struct SchemeFixture : ::testing::Test
{
    SchemeFixture()
        : ctx(sim::CostModel{}, 1, 2),
          pm(128 * kMiB),
          pa(pm, 1),
          mmu(ctx),
          dev(ctx, "dev0", mmu, pm)
    {}

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(ctx.machine.core(0), ctx.now());
    }

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    iommu::Iommu mmu;
    Device dev;
};

} // namespace

TEST_F(SchemeFixture, StrictClosesWindowImmediately)
{
    StrictDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).ok);
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).fault);
}

TEST_F(SchemeFixture, DeferredLeavesWindowUntilFlush)
{
    DeferredDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).ok); // warm IOTLB
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    // The vulnerability window: stale IOTLB entry still translates.
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).ok);
    EXPECT_EQ(api.pendingFlushes(), 1u);
    api.flushPending(c);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).fault);
    EXPECT_EQ(api.pendingFlushes(), 0u);
}

TEST_F(SchemeFixture, DeferredWindowClosedWithoutWarmTlb)
{
    // If the translation was never cached, clearing the PTE suffices.
    DeferredDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).fault);
}

TEST_F(SchemeFixture, DeferredBatchThresholdFlushes)
{
    DeferredDmaApi api(ctx, mmu);
    auto c = cpu();
    const unsigned batch = ctx.cost.deferredBatch;
    for (unsigned i = 0; i < batch; ++i) {
        const mem::Pfn pfn = pa.allocPages(0, 0);
        const iommu::Iova dma =
            api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
        api.unmap(c, dev, dma, 4096, Dir::FromDevice);
        pa.freePages(pfn, 0);
    }
    EXPECT_EQ(api.pendingFlushes(), 0u) << "threshold flush fired";
    EXPECT_EQ(ctx.stats.get("dma.deferred_flushes"), 1u);
}

TEST_F(SchemeFixture, DeferredTimerFlushes)
{
    DeferredDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    EXPECT_TRUE(dev.dmaTouch(c.time, dma, 4096, true).ok);
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    ctx.engine.run(ctx.cost.deferredFlushTimerNs + 1);
    EXPECT_EQ(api.pendingFlushes(), 0u);
    EXPECT_TRUE(dev.dmaTouch(ctx.now(), dma, 4096, true).fault);
}

TEST_F(SchemeFixture, DeferredRecyclesIovaOnlyAfterFlush)
{
    DeferredDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn p1 = pa.allocPages(0, 0, true);
    const iommu::Iova dma1 =
        api.map(c, dev, mem::pfnToPa(p1), 4096, Dir::FromDevice);
    api.unmap(c, dev, dma1, 4096, Dir::FromDevice);
    // Before the flush, a new map must not reuse the stale IOVA.
    const mem::Pfn p2 = pa.allocPages(0, 0, true);
    const iommu::Iova dma2 =
        api.map(c, dev, mem::pfnToPa(p2), 4096, Dir::FromDevice);
    EXPECT_NE(dma2 & ~iommu::Iova(0xfff), dma1 & ~iommu::Iova(0xfff));
}

TEST_F(SchemeFixture, ShadowTxCopiesAtMapTime)
{
    ShadowDmaApi api(ctx, mmu, pa);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    pm.fill(buf, 0x44, 4096);
    const iommu::Iova dma = api.map(c, dev, buf, 4096, Dir::ToDevice);

    // Changing the original *after* map must not be visible: the
    // device reads the shadow copy (that is the security property).
    pm.fill(buf, 0x99, 4096);
    std::uint8_t wire[16];
    EXPECT_TRUE(dev.dmaRead(c.time, dma, wire, 16).ok);
    EXPECT_EQ(wire[0], 0x44);
    api.unmap(c, dev, dma, 4096, Dir::ToDevice);
}

TEST_F(SchemeFixture, ShadowRxCopiesBackAtUnmap)
{
    ShadowDmaApi api(ctx, mmu, pa);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    const iommu::Iova dma = api.map(c, dev, buf, 4096, Dir::FromDevice);
    std::vector<std::uint8_t> wire(4096, 0x31);
    EXPECT_TRUE(dev.dmaWrite(c.time, dma, wire.data(), 4096).ok);
    EXPECT_EQ(pm.readByte(buf), 0) << "data must not be in place yet";
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    EXPECT_EQ(pm.readByte(buf), 0x31);
}

TEST_F(SchemeFixture, ShadowDriverBufferNeverDeviceVisible)
{
    ShadowDmaApi api(ctx, mmu, pa);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    const iommu::Iova dma = api.map(c, dev, buf, 4096, Dir::FromDevice);
    (void)dma;
    // The *driver buffer's own PA* is not a valid DMA address.
    std::uint8_t b;
    EXPECT_TRUE(dev.dmaRead(c.time, buf, &b, 1).fault);
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
}

TEST_F(SchemeFixture, ShadowPoolRecyclesBuffers)
{
    ShadowDmaApi api(ctx, mmu, pa);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    const iommu::Iova d1 = api.map(c, dev, buf, 2048, Dir::ToDevice);
    api.unmap(c, dev, d1, 2048, Dir::ToDevice);
    const iommu::Iova d2 = api.map(c, dev, buf, 2048, Dir::ToDevice);
    EXPECT_EQ(d1, d2) << "freed shadow buffer should be reused (LIFO)";
    api.unmap(c, dev, d2, 2048, Dir::ToDevice);
    const std::uint64_t frames = api.poolFrames();
    // Another cycle must not grow the pool.
    const iommu::Iova d3 = api.map(c, dev, buf, 2048, Dir::ToDevice);
    api.unmap(c, dev, d3, 2048, Dir::ToDevice);
    EXPECT_EQ(api.poolFrames(), frames);
}

TEST_F(SchemeFixture, DeviceFaultCounting)
{
    StrictDmaApi api(ctx, mmu);
    auto c = cpu();
    std::uint8_t b;
    EXPECT_TRUE(dev.dmaRead(c.time, 0xdead000, &b, 1).fault);
    EXPECT_EQ(dev.faultedDmas(), 1u);
}

TEST_F(SchemeFixture, DmaStopsAtFaultingPage)
{
    StrictDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    // Write 8 KiB: the second page is unmapped.
    std::vector<std::uint8_t> wire(8192, 0x66);
    const DmaOutcome out =
        dev.dmaWrite(c.time, dma, wire.data(), wire.size());
    EXPECT_TRUE(out.fault);
    EXPECT_EQ(out.bytesDone, 4096u);
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
}

TEST_F(SchemeFixture, PermDirectionEnforced)
{
    StrictDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::ToDevice);
    std::uint8_t b = 7;
    EXPECT_TRUE(dev.dmaRead(c.time, dma, &b, 1).ok);
    EXPECT_TRUE(dev.dmaWrite(c.time, dma, &b, 1).fault)
        << "TX mapping must not be writable by the device";
    api.unmap(c, dev, dma, 4096, Dir::ToDevice);
}

TEST_F(SchemeFixture, StrictChargesInvalidationTime)
{
    StrictDmaApi api(ctx, mmu);
    auto c = cpu();
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const iommu::Iova dma =
        api.map(c, dev, mem::pfnToPa(pfn), 4096, Dir::FromDevice);
    const sim::TimeNs before = c.time;
    api.unmap(c, dev, dma, 4096, Dir::FromDevice);
    EXPECT_GE(c.time - before, ctx.cost.strictInvalidateNs);
}

TEST_F(SchemeFixture, SchemeNamesAndProperties)
{
    PassthroughDmaApi off(ctx);
    StrictDmaApi strict(ctx, mmu);
    DeferredDmaApi deferred(ctx, mmu);
    ShadowDmaApi shadow(ctx, mmu, pa);

    EXPECT_STREQ(off.name(), "iommu-off");
    EXPECT_STREQ(strict.name(), "strict");
    EXPECT_STREQ(deferred.name(), "deferred");
    EXPECT_STREQ(shadow.name(), "shadow");

    // Table 1 property bits.
    EXPECT_FALSE(strict.subpage());
    EXPECT_TRUE(strict.windowFree());
    EXPECT_TRUE(strict.zeroCopy());
    EXPECT_FALSE(deferred.windowFree());
    EXPECT_TRUE(shadow.subpage());
    EXPECT_TRUE(shadow.windowFree());
    EXPECT_FALSE(shadow.zeroCopy());
}
