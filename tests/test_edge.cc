/**
 * @file
 * Edge cases and defensive-invariant tests (including death tests for
 * the contracts the library enforces with assertions).
 */

#include <gtest/gtest.h>

#include "net/stream.hh"
#include "workloads/memcached.hh"

using namespace damn;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct DamnSys
{
    DamnSys()
    {
        net::SystemParams p;
        p.scheme = dma::SchemeKind::Damn;
        sys = std::make_unique<net::System>(p);
        nic = std::make_unique<net::NicDevice>(*sys, "mlx5_0");
    }

    sim::CpuCursor
    cpu(sim::CoreId c = 0)
    {
        return sim::CpuCursor(sys->ctx.machine.core(c), sys->ctx.now());
    }

    std::unique_ptr<net::System> sys;
    std::unique_ptr<net::NicDevice> nic;
};

} // namespace

// ---------------------------------------------------------------------
// Short / degenerate packets
// ---------------------------------------------------------------------

TEST(Edge, PacketShorterThanHeaderStillProcessed)
{
    DamnSys d;
    net::TcpStack stack(*d.sys, *d.nic);
    auto c = d.cpu();
    net::RxBuffer buf = stack.driver.allocRxBuffer(c, 4096);
    std::uint8_t tiny[40] = {0x09};
    d.nic->dmaWrite(0, buf.seg.dmaAddr, tiny, sizeof(tiny));
    net::SkBuff skb = stack.driver.rxBuild(c, buf, 40);
    stack.rxSegment(c, skb, 1.0); // header access clamps to len
    EXPECT_LE(d.sys->accessor().securedBytes(), 40u);
    d.sys->accessor().freeSkb(c, skb);
}

TEST(Edge, MinimumSizeAllocations)
{
    DamnSys d;
    auto c = d.cpu();
    const mem::Pa one =
        d.sys->damn->damnAlloc(c, d.nic.get(), core::Rights::Write, 1);
    ASSERT_NE(one, 0u);
    EXPECT_TRUE(d.sys->damn->isDamnBuffer(one));
    d.sys->damn->damnFree(c, one);
}

TEST(Edge, ZeroLengthSecureRangeIsNoop)
{
    DamnSys d;
    net::TcpStack stack(*d.sys, *d.nic);
    auto c = d.cpu();
    net::RxBuffer buf = stack.driver.allocRxBuffer(c, 4096);
    d.nic->dmaTouch(0, buf.seg.dmaAddr, 4096, true);
    net::SkBuff skb = stack.driver.rxBuild(c, buf, 4096);
    EXPECT_EQ(d.sys->accessor().secureRange(c, skb, 100, 0), 0u);
    d.sys->accessor().freeSkb(c, skb);
}

TEST(Edge, TouchOnlyAccessStillSecures)
{
    // access() with a null destination (checksum-style touch) must
    // still trigger the TOCTTOU copy.
    DamnSys d;
    net::TcpStack stack(*d.sys, *d.nic);
    auto c = d.cpu();
    net::RxBuffer buf = stack.driver.allocRxBuffer(c, 4096);
    d.nic->dmaTouch(0, buf.seg.dmaAddr, 4096, true);
    net::SkBuff skb = stack.driver.rxBuild(c, buf, 4096);
    d.sys->accessor().access(c, skb, 0, 512, nullptr);
    EXPECT_EQ(d.sys->accessor().securedBytes(), 512u);
    d.sys->accessor().freeSkb(c, skb);
}

TEST(Edge, AllRightsCombinationsAllocate)
{
    DamnSys d;
    auto c = d.cpu();
    for (const auto r :
         {core::Rights::Read, core::Rights::Write, core::Rights::RW}) {
        const mem::Pa buf =
            d.sys->damn->damnAlloc(c, d.nic.get(), r, 1024);
        ASSERT_NE(buf, 0u);
        EXPECT_EQ(d.sys->damn->rightsOf(buf), r);
        const iommu::Iova iova = d.sys->damn->iovaOf(buf);
        const bool can_read =
            d.sys->mmu.translate(d.nic->domain(), iova, false).ok;
        const bool can_write =
            d.sys->mmu.translate(d.nic->domain(), iova, true).ok;
        EXPECT_EQ(can_read, r != core::Rights::Write);
        EXPECT_EQ(can_write, r != core::Rights::Read);
        d.sys->damn->damnFree(c, buf);
    }
}

TEST(Edge, ManyDevicesGetDistinctCaches)
{
    DamnSys d;
    auto c = d.cpu();
    std::vector<std::unique_ptr<dma::Device>> devs;
    std::set<iommu::Iova> iovas;
    for (int i = 0; i < 16; ++i) {
        devs.push_back(std::make_unique<dma::Device>(
            d.sys->ctx, "dev" + std::to_string(i), d.sys->mmu,
            d.sys->phys));
        const mem::Pa buf = d.sys->damn->damnAlloc(
            c, devs.back().get(), core::Rights::Write, 4096);
        const iommu::Iova iova = d.sys->damn->iovaOf(buf);
        EXPECT_TRUE(iovas.insert(iova).second);
        // Each device's buffer is invisible to every other device.
        for (const auto &other : devs) {
            const bool ok =
                d.sys->mmu.translate(other->domain(), iova, true).ok;
            EXPECT_EQ(ok, other.get() == devs.back().get());
        }
        d.sys->damn->damnFree(c, buf);
    }
}

// ---------------------------------------------------------------------
// Contract violations die loudly (asserts are on in all build types)
// ---------------------------------------------------------------------

using EdgeDeath = ::testing::Test;

TEST(EdgeDeath, DoubleDamnFreeAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            DamnSys d;
            auto c = d.cpu();
            // Whole-chunk buffer; a second alloc retires the chunk's
            // bump bias so the first free drops its refcount to zero.
            const mem::Pa a = d.sys->damn->damnAlloc(
                c, d.nic.get(), core::Rights::Write, 65536);
            const mem::Pa b = d.sys->damn->damnAlloc(
                c, d.nic.get(), core::Rights::Write, 65536);
            (void)b;
            d.sys->damn->damnFree(c, a);
            d.sys->damn->damnFree(c, a); // double free of a dead chunk
        },
        "damn_free of a free buffer");
}

TEST(EdgeDeath, OversizeDamnAllocAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            DamnSys d;
            auto c = d.cpu();
            d.sys->damn->damnAlloc(c, d.nic.get(), core::Rights::Write,
                                   65537);
        },
        "size");
}

TEST(EdgeDeath, BuddyDoubleFreeAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            mem::PhysicalMemory pm(64 * kMiB);
            mem::PageAllocator pa(pm, 1);
            const mem::Pfn p = pa.allocPages(2, 0);
            pa.freePages(p, 2);
            pa.freePages(p, 2);
        },
        "double free");
}

TEST(EdgeDeath, KfreeOfNonSlabAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ASSERT_DEATH(
        {
            mem::PhysicalMemory pm(64 * kMiB);
            mem::PageAllocator pa(pm, 1);
            mem::KmallocHeap heap(pa);
            const mem::Pfn p = pa.allocPages(0, 0);
            heap.kfree(mem::pfnToPa(p));
        },
        "non-slab");
}

// ---------------------------------------------------------------------
// Determinism of the full workloads
// ---------------------------------------------------------------------

TEST(Edge, MemcachedDeterministic)
{
    work::MemcachedOpts o;
    o.instances = 4;
    o.runWindow.warmupNs = 5 * sim::kNsPerMs;
    o.runWindow.measureNs = 20 * sim::kNsPerMs;
    const auto a = work::runMemcached(o);
    const auto b = work::runMemcached(o);
    EXPECT_DOUBLE_EQ(a.common.opsPerSec, b.common.opsPerSec);
    EXPECT_DOUBLE_EQ(a.common.cpuPct, b.common.cpuPct);
}

TEST(Edge, SystemsAreFullyIsolated)
{
    // Two Systems in one process share nothing: traffic in one leaves
    // the other untouched.
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    net::System a(p), b(p);
    net::NicDevice nic_a(a, "a0");
    sim::CpuCursor c(a.ctx.machine.core(0), 0);
    const mem::Pa buf =
        a.damn->damnAlloc(c, &nic_a, core::Rights::Write, 4096);
    (void)buf;
    EXPECT_GT(a.pageAlloc.allocatedFrames(), 0u);
    EXPECT_EQ(b.pageAlloc.allocatedFrames(), 0u);
    EXPECT_EQ(b.ctx.stats.get("damn.allocs"), 0u);
    EXPECT_EQ(b.mmu.everMappedFrames(), 0u);
}

TEST(Edge, HugeVariantSurvivesManyChunks)
{
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    p.damnCache.hugeIovaPages = true;
    p.damnCache.denseIova = true;
    net::System sys(p);
    net::NicDevice nic(sys, "mlx5_0");
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);
    // More than one 2 MiB block's worth of chunks (32 per block).
    std::vector<mem::Pa> bufs;
    for (int i = 0; i < 80; ++i) {
        bufs.push_back(sys.damn->damnAlloc(c, &nic, core::Rights::Write,
                                           65536));
    }
    std::set<mem::Pa> uniq(bufs.begin(), bufs.end());
    EXPECT_EQ(uniq.size(), bufs.size());
    for (const mem::Pa b : bufs) {
        const auto tr =
            sys.mmu.translate(nic.domain(), sys.damn->iovaOf(b), true);
        ASSERT_TRUE(tr.ok);
        ASSERT_EQ(tr.pa, b);
    }
    for (const mem::Pa b : bufs)
        sys.damn->damnFree(c, b);
}

TEST(Edge, FallbackSchemeConfigurable)
{
    // damn with a strict fallback: legacy buffers get strict semantics.
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    p.damnFallback = dma::SchemeKind::Strict;
    net::System sys(p);
    net::NicDevice nic(sys, "mlx5_0");
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);
    const mem::Pa kbuf = sys.heap.kmalloc(512);
    const iommu::Iova dma =
        sys.dmaApi->map(c, nic, kbuf, 512, dma::Dir::ToDevice);
    EXPECT_TRUE(nic.dmaTouch(0, dma, 512, false).ok);
    sys.dmaApi->unmap(c, nic, dma, 512, dma::Dir::ToDevice);
    EXPECT_TRUE(nic.dmaTouch(0, dma, 512, false).fault)
        << "strict fallback closes immediately";
    sys.heap.kfree(kbuf);
}

TEST(Edge, StatsSurviveHeavyUse)
{
    DamnSys d;
    auto c = d.cpu();
    for (int i = 0; i < 1000; ++i) {
        const mem::Pa buf = d.sys->damn->damnAlloc(
            c, d.nic.get(), core::Rights::Write, 2048);
        d.sys->damn->damnFree(c, buf);
    }
    EXPECT_EQ(d.sys->ctx.stats.get("damn.allocs"), 1000u);
    EXPECT_EQ(d.sys->ctx.stats.get("damn.frees"), 1000u);
}
