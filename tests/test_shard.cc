/**
 * @file
 * Sharded-simulation suite (ctest labels `shard`, `par`): the
 * conservative-lookahead parallel engine (sim/shard.hh) must be
 * byte-identical to serial at any worker count, handle zero-lookahead
 * edges in serial FIFO order, honor sender promises, report per-shard
 * stalls, and carry the whole damn_bench --intra-jobs path end to end.
 *
 * Built into the verify-tsan tree as well: under -fsanitize=thread the
 * multi-worker cases double as a data-race audit of the round
 * protocol, the channel outboxes, and everything the intra-run cell
 * pool executes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/driver.hh"
#include "sim/shard.hh"
#include "workloads/sharded.hh"

using namespace damn;

namespace {

// ---------------------------------------------------------------------
// Engine peek primitive
// ---------------------------------------------------------------------

TEST(Shard, NextEventTimePeeksAndPrunes)
{
    sim::Engine eng;
    EXPECT_EQ(eng.nextEventTime(), sim::kTimeNever);
    const auto id = eng.schedule(50, [] {});
    eng.schedule(90, [] {});
    EXPECT_EQ(eng.nextEventTime(), 50u);
    // A cancelled head must be pruned, not reported.
    eng.cancel(id);
    EXPECT_EQ(eng.nextEventTime(), 90u);
    eng.runAll();
    EXPECT_EQ(eng.nextEventTime(), sim::kTimeNever);
}

// ---------------------------------------------------------------------
// Cross-shard message exchange vs a single-engine reference
// ---------------------------------------------------------------------

/** Two shards ping-pong a counter; the single-engine reference runs
 *  the same exchange with plain schedule() calls.  The sharded run
 *  must match the reference trace exactly, at every worker count. */
std::vector<std::uint64_t>
pingPongReference(unsigned hops, sim::TimeNs latency)
{
    sim::Engine eng;
    std::vector<std::uint64_t> trace;
    std::function<void(unsigned)> hop = [&](unsigned n) {
        trace.push_back(eng.now());
        if (n + 1 < hops)
            eng.scheduleIn(latency, [&hop, n] { hop(n + 1); });
    };
    eng.schedule(10, [&hop] { hop(0); });
    eng.runAll();
    return trace;
}

std::vector<std::uint64_t>
pingPongSharded(unsigned hops, sim::TimeNs latency, unsigned workers)
{
    sim::Engine a, b;
    sim::ShardedEngine se;
    se.addShard("a", a);
    se.addShard("b", b);
    const unsigned ab = se.connect(0, 1, latency);
    const unsigned ba = se.connect(1, 0, latency);

    std::vector<std::uint64_t> trace;
    struct Ctx
    {
        sim::ShardedEngine *se;
        sim::Engine *self;
        unsigned out;     //!< channel to the peer
        Ctx *peer;
        std::vector<std::uint64_t> *trace;
        unsigned hops;
    };
    Ctx ca{&se, &a, ab, nullptr, &trace, hops};
    Ctx cb{&se, &b, ba, &ca, &trace, hops};
    ca.peer = &cb;
    std::function<void(Ctx *, unsigned)> hop = [&hop](Ctx *c,
                                                      unsigned n) {
        c->trace->push_back(c->self->now());
        if (n + 1 < c->hops) {
            Ctx *peer = c->peer;
            c->se->send(c->out,
                        [&hop, peer, n] { hop(peer, n + 1); });
        }
    };
    a.schedule(10, [&hop, &ca] { hop(&ca, 0); });
    se.runAll(workers);
    return trace;
}

TEST(Shard, PingPongMatchesSingleEngineReference)
{
    const auto ref = pingPongReference(12, 250);
    ASSERT_EQ(ref.size(), 12u);
    for (const unsigned workers : {1u, 2u, 4u})
        EXPECT_EQ(pingPongSharded(12, 250, workers), ref)
            << "workers=" << workers;
}

// ---------------------------------------------------------------------
// Zero-lookahead edges: serial FIFO order at equal timestamps
// ---------------------------------------------------------------------

TEST(Shard, ZeroLookaheadDeliversAfterPreexistingSameTimeEvents)
{
    // Regression for the same-timestamp tie-break: a message sent over
    // a zero-lookahead channel at time T must dispatch *after* the
    // destination's pre-existing events at T — the order a single
    // serial engine would produce for a callback scheduled at `now`.
    for (const unsigned workers : {1u, 2u, 4u}) {
        sim::Engine src, dst;
        sim::ShardedEngine se;
        se.addShard("src", src);
        se.addShard("dst", dst);
        const unsigned ch = se.connect(0, 1, 0);

        std::vector<std::string> order;
        dst.schedule(100, [&order] { order.push_back("dst-pre"); });
        src.schedule(100, [&] {
            order.push_back("src-send");
            se.send(ch, [&order] { order.push_back("dst-msg"); });
        });
        se.runAll(workers);

        // Shard execution order within a lockstep round is
        // unspecified between different shards' events; what is
        // guaranteed is dst-pre before dst-msg on the destination.
        const auto pre = std::find(order.begin(), order.end(),
                                   "dst-pre");
        const auto msg = std::find(order.begin(), order.end(),
                                   "dst-msg");
        ASSERT_NE(pre, order.end()) << "workers=" << workers;
        ASSERT_NE(msg, order.end()) << "workers=" << workers;
        EXPECT_LT(pre - order.begin(), msg - order.begin())
            << "workers=" << workers;
        EXPECT_GT(se.lastRunStats().lockstepRounds, 0u)
            << "zero lookahead must force lock-step rounds";
    }
}

// ---------------------------------------------------------------------
// Promises widen windows (null messages as state)
// ---------------------------------------------------------------------

TEST(Shard, PromisesReduceRoundCount)
{
    // Two shards with busy local timers and one quiet channel: without
    // a promise the window is bounded by src activity + lookahead;
    // with a promise covering the whole run the shards advance in one
    // window each.
    const auto rounds = [](bool promise) {
        sim::Engine a, b;
        sim::ShardedEngine se;
        se.addShard("a", a);
        se.addShard("b", b);
        const unsigned ch = se.connect(0, 1, 100);
        for (sim::TimeNs t = 10; t <= 10000; t += 10) {
            a.schedule(t, [] {});
            b.schedule(t, [] {});
        }
        if (promise)
            se.promiseNoSendBefore(ch, 1'000'000);
        se.run(10000, 1);
        return se.lastRunStats().rounds;
    };
    const std::uint64_t quiet = rounds(true);
    const std::uint64_t chatty = rounds(false);
    EXPECT_LT(quiet, chatty);
    EXPECT_LE(quiet, 2u);
}

// ---------------------------------------------------------------------
// Per-shard stall watchdog
// ---------------------------------------------------------------------

TEST(Shard, WatchdogReportsStallingShardByName)
{
    for (const unsigned workers : {1u, 2u}) {
        sim::Engine healthy, stuck;
        sim::ShardedEngine se;
        se.addShard("healthy", healthy);
        se.addShard("stuck", stuck);

        // Both shards run self-perpetuating timers; only the healthy
        // one's progress probe advances.
        std::uint64_t healthyWork = 0;
        std::function<void()> h = [&] {
            ++healthyWork;
            healthy.scheduleIn(10, h);
        };
        std::function<void()> s = [&] { stuck.scheduleIn(10, s); };
        healthy.schedule(10, h);
        stuck.schedule(10, s);

        se.armWatchdog(1000, [&healthyWork](unsigned shard) {
            return shard == 0 ? healthyWork : 0;
        });
        se.run(1'000'000, workers);

        ASSERT_EQ(se.stallsDetected(), 1u) << "workers=" << workers;
        EXPECT_EQ(se.stalls()[0].shard, 1u);
        EXPECT_EQ(se.stalls()[0].name, "stuck");
        EXPECT_GE(se.stalls()[0].info.eventsSinceProgress, 1000u);
    }
}

// ---------------------------------------------------------------------
// Task shards: isolated cells, error propagation
// ---------------------------------------------------------------------

TEST(Shard, TasksAllRunAndFirstErrorInTaskOrderWins)
{
    for (const unsigned workers : {1u, 4u}) {
        sim::ShardedEngine se;
        std::atomic<unsigned> ran{0};
        se.addTask("ok0", [&] { ++ran; });
        se.addTask("boom1", [&]() -> void {
            ++ran;
            throw std::runtime_error("first failure");
        });
        se.addTask("boom2", [&]() -> void {
            ++ran;
            throw std::logic_error("second failure");
        });
        se.addTask("ok3", [&] { ++ran; });
        try {
            se.runAll(workers);
            FAIL() << "expected a throw, workers=" << workers;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first failure");
        }
        // A failing task must not stop its siblings.
        EXPECT_EQ(ran.load(), 4u) << "workers=" << workers;
    }
}

// ---------------------------------------------------------------------
// Sharded netperf: digests identical at any worker count
// ---------------------------------------------------------------------

TEST(Shard, ShardedNetperfDigestIdenticalAcrossWorkers)
{
    work::ShardedNetperfOpts o;
    o.plan.shards = 3;
    o.runWindow = work::RunWindow{sim::kNsPerMs, 2 * sim::kNsPerMs};
    o.instancesPerShard = 4;
    o.stallBudgetEvents = 200'000;

    o.workers = 1;
    const work::ShardedNetperfResult serial =
        work::runShardedNetperf(o);
    EXPECT_GT(serial.segments, 0u);
    EXPECT_GT(serial.telemetryReceived, 0u);
    EXPECT_TRUE(serial.stalls.empty());
    for (const unsigned workers : {2u, 4u}) {
        o.workers = workers;
        const work::ShardedNetperfResult r =
            work::runShardedNetperf(o);
        EXPECT_EQ(r.digest, serial.digest) << "workers=" << workers;
        EXPECT_EQ(r.events, serial.events) << "workers=" << workers;
        EXPECT_EQ(r.segments, serial.segments)
            << "workers=" << workers;
        EXPECT_EQ(r.messages, serial.messages)
            << "workers=" << workers;
    }
}

// ---------------------------------------------------------------------
// The --intra-jobs driver path, end to end in-process
// ---------------------------------------------------------------------

exp::DriverOptions
matrixOpts(const std::string &only, unsigned intraJobs)
{
    exp::DriverOptions o;
    o.only = only;
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 2 * sim::kNsPerMs;
    o.jobs = 1;
    o.intraJobs = intraJobs;
    o.schemes = {dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
                 dma::SchemeKind::Deferred, dma::SchemeKind::Damn};
    o.backends = {iommu::BackendKind::Vtd, iommu::BackendKind::SmmuV3};
    // Non-empty trace path => trace-event recording, so the byte
    // comparison covers the Chrome exporter too.
    o.tracePath = "unused-in-process";
    return o;
}

struct Serialized
{
    std::string json;
    std::string trace;
};

Serialized
serialize(const exp::DriverOptions &o)
{
    const exp::Report r = exp::runExperiments(o);
    return {exp::reportJson(r).dump(), exp::chromeTraceForReport(r)};
}

TEST(Shard, IntraJobsMatrixByteIdenticalToSerial)
{
    // 4 schemes x both backends through the cell-routed experiment,
    // at every --intra-jobs point of the acceptance matrix.
    const Serialized serial = serialize(matrixOpts("netperf_stream", 1));
    EXPECT_GT(serial.trace.size(), 1000u)
        << "trace suspiciously small; comparison would be vacuous";
    for (const unsigned k : {2u, 4u, 8u}) {
        const Serialized sharded =
            serialize(matrixOpts("netperf_stream", k));
        EXPECT_EQ(serial.json, sharded.json) << "intra-jobs=" << k;
        EXPECT_EQ(serial.trace, sharded.trace) << "intra-jobs=" << k;
    }
}

TEST(Shard, IntraJobsComposesWithJobs)
{
    exp::DriverOptions serial = matrixOpts("rdma_pagefault", 1);
    exp::DriverOptions both = matrixOpts("rdma_pagefault", 4);
    both.jobs = 2;
    both.repeat = serial.repeat = 2;
    const Serialized a = serialize(serial);
    const Serialized b = serialize(both);
    EXPECT_EQ(a.json, b.json);
    EXPECT_EQ(a.trace, b.trace);
}

TEST(Shard, IntraJobsFlagParses)
{
    exp::DriverOptions o;
    std::string err;
    const char *argv[] = {"damn_bench", "--intra-jobs=4"};
    ASSERT_TRUE(exp::parseArgs(2, argv, &o, &err)) << err;
    EXPECT_EQ(o.intraJobs, 4u);

    exp::DriverOptions d;
    const char *argv1[] = {"damn_bench"};
    ASSERT_TRUE(exp::parseArgs(1, argv1, &d, &err)) << err;
    EXPECT_EQ(d.intraJobs, 1u) << "default must stay serial";

    exp::DriverOptions bad;
    const char *argv0[] = {"damn_bench", "--intra-jobs=0"};
    EXPECT_FALSE(exp::parseArgs(2, argv0, &bad, &err));
    const char *argvx[] = {"damn_bench", "--intra-jobs=x"};
    EXPECT_FALSE(exp::parseArgs(2, argvx, &bad, &err));
}

} // namespace
