/**
 * @file
 * Release-build (NDEBUG) verification: this TU and the library it
 * links (damn_work_ndebug) are compiled with asserts removed, so the
 * fail-soft exhaustion paths must hold up with no assert safety net —
 * exactly how a production kernel runs.  The scenarios mirror the
 * pressure suite at smaller scale.
 */

#ifndef NDEBUG
#error "test_release must be compiled with NDEBUG"
#endif

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "dma/schemes.hh"
#include "iommu/iova_alloc.hh"
#include "net/system.hh"

using namespace damn;

namespace {
constexpr std::uint64_t kMiB = 1ull << 20;
} // namespace

TEST(Release, IovaExhaustionFailsSoft)
{
    iommu::IovaAllocator a;
    a.setSpaceBytes(8 * mem::kPageSize);
    for (int i = 0; i < 8; ++i)
        EXPECT_NE(a.alloc(1), iommu::kInvalidIova);
    EXPECT_EQ(a.alloc(1), iommu::kInvalidIova);
    EXPECT_EQ(a.failures(), 1u);
}

TEST(Release, KmallocExhaustionReturnsZero)
{
    mem::PhysicalMemory pm(8 * kMiB);
    mem::PageAllocator pa(pm, 1);
    mem::KmallocHeap heap(pa);
    std::vector<mem::Pfn> hog;
    for (;;) {
        const mem::Pfn pfn = pa.allocPages(0, 0);
        if (pfn == mem::kInvalidPfn)
            break;
        hog.push_back(pfn);
    }
    ASSERT_FALSE(hog.empty());
    EXPECT_EQ(heap.kmalloc(512), 0u);
    for (const mem::Pfn pfn : hog)
        pa.freePages(pfn, 0);
    EXPECT_NE(heap.kmalloc(512), 0u);
}

TEST(Release, StrictMapExhaustionFailsSoft)
{
    sim::Context ctx(sim::CostModel{}, 1, 2);
    mem::PhysicalMemory pm(16 * kMiB);
    mem::PageAllocator pa(pm, 1);
    iommu::Iommu mmu(ctx, /*enabled=*/true);
    dma::Device dev(ctx, "dev0", mmu, pm);
    auto api = dma::makeScheme(dma::SchemeKind::Strict, ctx, mmu, pa);
    api->setIovaSpaceBytes(2 * mem::kPageSize);
    sim::CpuCursor c(ctx.machine.core(0), 0);
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const iommu::Iova a = api->map(c, dev, mem::pfnToPa(pfn),
                                   mem::kPageSize, dma::Dir::ToDevice);
    const iommu::Iova b = api->map(c, dev, mem::pfnToPa(pfn),
                                   mem::kPageSize, dma::Dir::ToDevice);
    EXPECT_NE(a, dma::kMapFailed);
    EXPECT_NE(b, dma::kMapFailed);
    EXPECT_EQ(api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                       dma::Dir::ToDevice),
              dma::kMapFailed);
    api->unmap(c, dev, a, mem::kPageSize, dma::Dir::ToDevice);
    EXPECT_NE(api->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                       dma::Dir::ToDevice),
              dma::kMapFailed);
}

TEST(Release, WatchdogTripsWithoutAsserts)
{
    sim::Engine e;
    std::function<void()> tick = [&] { e.scheduleIn(10, [&] { tick(); }); };
    e.schedule(0, [&] { tick(); });
    e.armWatchdog(500, [] { return std::uint64_t{0}; });
    e.run(~sim::TimeNs{0});
    EXPECT_EQ(e.stallsDetected(), 1u);
}

TEST(Release, SystemBootsAndMapsUnderPressureWiring)
{
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Deferred;
    p.sockets = 1;
    p.coresPerSocket = 2;
    p.physBytes = 16 * kMiB;
    p.iovaSpaceBytes = 16 * mem::kPageSize;
    net::System sys(p);
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);
    const mem::Pfn pfn = sys.pageAlloc.allocPages(0, 0);
    // Deferred map/unmap churn across a tiny space: forced flushes
    // keep it alive, and nothing trips with asserts compiled out.
    dma::Device dev(sys.ctx, "dev0", sys.mmu, sys.phys);
    for (int i = 0; i < 100; ++i) {
        const iommu::Iova iova =
            sys.dmaApi->map(c, dev, mem::pfnToPa(pfn), mem::kPageSize,
                            dma::Dir::FromDevice);
        ASSERT_NE(iova, dma::kMapFailed) << "iteration " << i;
        sys.dmaApi->unmap(c, dev, iova, mem::kPageSize,
                          dma::Dir::FromDevice);
    }
    EXPECT_GT(sys.ctx.stats.get("iommu.iova_forced_flushes"), 0u);
    EXPECT_EQ(sys.dmaApi->mapFailures(), 0u);
}
