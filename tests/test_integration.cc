/**
 * @file
 * Cross-module integration tests: full packet flows with real data
 * under every scheme, end-to-end security sequences, allocator/IOMMU
 * interaction under sustained traffic, and property sweeps.
 */

#include <gtest/gtest.h>

#include "net/stream.hh"
#include "workloads/netperf.hh"

using namespace damn;
using namespace damn::net;

namespace {

struct E2E : ::testing::TestWithParam<dma::SchemeKind>
{
    E2E()
    {
        SystemParams p;
        p.scheme = GetParam();
        sys = std::make_unique<System>(p);
        nic = std::make_unique<NicDevice>(*sys, "mlx5_0");
        stack = std::make_unique<TcpStack>(*sys, *nic);
    }

    sim::CpuCursor
    cpu(sim::CoreId c = 0)
    {
        return sim::CpuCursor(sys->ctx.machine.core(c), sys->ctx.now());
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<NicDevice> nic;
    std::unique_ptr<TcpStack> stack;
};

std::string
schemeName(const ::testing::TestParamInfo<dma::SchemeKind> &info)
{
    std::string n = dma::schemeKindName(info.param);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(E2E, HundredPacketsSurviveIntact)
{
    auto c = cpu();
    sim::Rng rng(99);
    for (int pkt = 0; pkt < 100; ++pkt) {
        const auto len = std::uint32_t(rng.between(64, 16384));
        RxBuffer buf = stack->driver.allocRxBuffer(c, 16384);
        std::vector<std::uint8_t> wire(len);
        for (auto &b : wire)
            b = std::uint8_t(rng.next());
        ASSERT_TRUE(nic->dmaWrite(c.time, buf.seg.dmaAddr, wire.data(),
                                  len).ok);
        SkBuff skb = stack->driver.rxBuild(c, buf, len);
        stack->rxSegment(c, skb, 1.0);
        std::vector<std::uint8_t> out(len);
        sys->accessor().access(c, skb, 0, len, out.data());
        ASSERT_EQ(out, wire) << "packet " << pkt;
        sys->accessor().freeSkb(c, skb);
    }
    EXPECT_EQ(sys->heap.liveObjects(), 0u);
}

TEST_P(E2E, InterleavedRxTxFlows)
{
    auto c = cpu();
    std::vector<SkBuff> tx;
    std::vector<RxBuffer> rx;
    for (int i = 0; i < 8; ++i) {
        tx.push_back(stack->txBuild(c, 32 * 1024, 1.0));
        rx.push_back(stack->driver.allocRxBuffer(c, 16384));
    }
    for (auto &buf : rx)
        ASSERT_TRUE(nic->dmaTouch(c.time, buf.seg.dmaAddr, 16384,
                                  true).ok);
    for (auto &skb : tx)
        for (const auto &[iova, len] : stack->driver.sgOf(skb))
            ASSERT_TRUE(nic->dmaTouch(c.time, iova, len, false).ok);
    for (auto &skb : tx)
        stack->txComplete(c, skb, 1.0);
    for (auto &buf : rx) {
        SkBuff skb = stack->driver.rxBuild(c, buf, 16384);
        stack->appRead(c, skb, 1.0);
    }
    EXPECT_EQ(nic->faultedDmas(), 0u);
}

TEST_P(E2E, SoakTrafficKeepsMemoryBounded)
{
    // Sustained traffic must not leak pages: the allocated-frame count
    // at the end is close to where it started.
    work::NetperfOpts o;
    o.scheme = GetParam();
    o.mode = work::NetMode::Bidi;
    o.instances = 4;
    o.coreLimit = 4;
    o.segBytes = 16 * 1024;
    o.runWindow.warmupNs = 2 * sim::kNsPerMs;
    o.runWindow.measureNs = 40 * sim::kNsPerMs;
    const auto run = work::runNetperf(o);
    EXPECT_GT(run.res.totalGbps, 1.0);
    // Bound: posted buffers + DAMN/shadow pools + slack, well under
    // the gigabytes of traffic moved.
    EXPECT_LT(run.sys->pageAlloc.allocatedFrames() * mem::kPageSize,
              256ull << 20);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, E2E,
    ::testing::Values(dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
                      dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
                      dma::SchemeKind::Damn),
    schemeName);

// ---------------------------------------------------------------------
// Security end-to-end sequences
// ---------------------------------------------------------------------

TEST(SecurityE2E, FirewallDecisionStandsUnderDamn)
{
    // Full TOCTTOU storyline against the real stack: firewall approves
    // a packet; the device rewrites it; the approved bytes are what
    // the application receives.
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);

    bool approved = false;
    stack.addHook([&](sim::CpuCursor &cpu, SkBuff &skb,
                      SkbAccessor &acc) {
        std::uint8_t hdr[64];
        acc.access(cpu, skb, 0, 64, hdr);
        approved = hdr[0] == 0x10; // "allow" rule
    });

    RxBuffer buf = stack.driver.allocRxBuffer(c, 4096);
    std::vector<std::uint8_t> wire(4096, 0x10);
    nic.dmaWrite(0, buf.seg.dmaAddr, wire.data(), wire.size());
    const iommu::Iova dma = buf.seg.dmaAddr;
    SkBuff skb = stack.driver.rxBuild(c, buf, 4096);
    stack.rxSegment(c, skb, 1.0);
    EXPECT_TRUE(approved);

    // Attacker rewrites the packet to a "deny"-worthy payload.
    std::vector<std::uint8_t> evil(4096, 0xE0);
    nic.dmaWrite(sys.ctx.now(), dma, evil.data(), evil.size());

    std::uint8_t delivered[64];
    sys.accessor().access(c, skb, 0, 64, delivered);
    EXPECT_EQ(delivered[0], 0x10) << "the OS must use checked bytes";
    sys.accessor().freeSkb(c, skb);
}

TEST(SecurityE2E, DamnChunksNeverHoldKernelData)
{
    // Sweep every frame DAMN ever mapped and verify it belongs to a
    // DAMN compound (never a slab page or other kernel data) — the
    // paper's TX security argument as a machine-checked invariant.
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);

    // Generate mixed kernel + DAMN activity.
    for (int i = 0; i < 40; ++i) {
        const mem::Pa k = sys.heap.kmalloc(512);
        SkBuff skb = stack.txBuild(c, 32 * 1024, 1.0);
        stack.txComplete(c, skb, 1.0);
        sys.heap.kfree(k);
    }

    const auto &pt = sys.mmu.pageTable(nic.domain());
    std::uint64_t checked = 0;
    for (mem::Pfn pfn = 0; pfn < sys.phys.numFrames(); ++pfn) {
        const mem::Page &pg = sys.phys.page(pfn);
        if (!(pg.test(mem::PG_head) || pg.test(mem::PG_tail)))
            continue;
        const mem::Pfn head =
            pg.test(mem::PG_head) ? pfn : pg.compoundHead;
        if (!sys.phys.page(head + 2).test(mem::PG_damn))
            continue;
        EXPECT_FALSE(pg.test(mem::PG_slab));
        ++checked;
    }
    EXPECT_GT(checked, 0u);
    (void)pt;
}

TEST(SecurityE2E, ShrinkerClosesDeviceAccessBeforePageReuse)
{
    // After the shrinker returns chunks to the OS and the kernel
    // reuses a page for a secret, the device must not reach it through
    // any path (PTEs gone + IOTLB flushed).
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    sim::CpuCursor c(sys.ctx.machine.core(0), 0);

    const mem::Pa buf =
        sys.damn->damnAlloc(c, &nic, core::Rights::Write, 65536);
    const iommu::Iova iova = sys.damn->iovaOf(buf);
    std::uint8_t tmp[8] = {};
    EXPECT_TRUE(nic.dmaWrite(0, iova, tmp, 8).ok); // warm the IOTLB
    sys.damn->damnFree(c, buf);
    sys.damn->shrink(c);

    // OS reuses the frames for "secret" kernel data.
    sys.phys.fill(buf, 0xAB, 65536);
    std::uint8_t loot[64] = {};
    const dma::DmaOutcome steal =
        nic.dmaRead(sys.ctx.now(), iova, loot, sizeof(loot));
    EXPECT_TRUE(steal.fault);
}

// ---------------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------------

TEST(Properties, DamnIovaUniquenessUnderChurn)
{
    // Every live buffer's IOVA is unique and translates to its own PA,
    // across sizes, cores, contexts, rights and recycling.
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    sim::Rng rng(5);

    std::map<iommu::Iova, mem::Pa> live;
    std::vector<std::pair<mem::Pa, sim::CoreId>> bufs;
    for (int step = 0; step < 2000; ++step) {
        const auto core = sim::CoreId(rng.below(28));
        sim::CpuCursor c(sys.ctx.machine.core(core), sys.ctx.now());
        if (bufs.empty() || rng.chance(0.6)) {
            const auto sz = std::uint32_t(rng.between(8, 65536));
            const auto rights =
                rng.chance(0.5) ? core::Rights::Write
                                : core::Rights::Read;
            const mem::Pa pa = sys.damn->damnAlloc(c, &nic, rights, sz);
            ASSERT_NE(pa, 0u);
            const iommu::Iova iova = sys.damn->iovaOf(pa);
            // Distinct from every other live buffer's IOVA.
            ASSERT_EQ(live.count(iova), 0u) << "step " << step;
            live[iova] = pa;
            bufs.emplace_back(pa, core);
        } else {
            const auto idx = rng.below(bufs.size());
            auto [pa, owner] = bufs[idx];
            bufs.erase(bufs.begin() + long(idx));
            live.erase(sys.damn->iovaOf(pa));
            sim::CpuCursor fc(sys.ctx.machine.core(owner),
                              sys.ctx.now());
            sys.damn->damnFree(fc, pa);
        }
    }
    // All remaining translations are exact.
    for (const auto &[iova, pa] : live) {
        const auto tr = sys.mmu.translate(nic.domain(), iova, false);
        const auto tw = sys.mmu.translate(nic.domain(), iova, true);
        EXPECT_TRUE(tr.ok || tw.ok);
        EXPECT_EQ(tr.ok ? tr.pa : tw.pa, pa);
    }
}

TEST(Properties, RefcountNeverLeaksAcrossPatterns)
{
    // Alternating alloc/free patterns across two contexts and cores;
    // at quiescence every chunk's refcount must be 0 or the bump bias.
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    sim::Rng rng(17);
    std::vector<std::tuple<mem::Pa, sim::CoreId, core::AllocCtx>> live;

    for (int step = 0; step < 3000; ++step) {
        const auto core = sim::CoreId(rng.below(4));
        const auto actx = rng.chance(0.5) ? core::AllocCtx::Standard
                                          : core::AllocCtx::Interrupt;
        sim::CpuCursor c(sys.ctx.machine.core(core), sys.ctx.now());
        if (live.size() < 64 && rng.chance(0.55)) {
            const mem::Pa pa = sys.damn->damnAlloc(
                c, &nic, core::Rights::Write,
                std::uint32_t(rng.between(64, 16384)), actx);
            live.emplace_back(pa, core, actx);
        } else if (!live.empty()) {
            const auto idx = rng.below(live.size());
            auto [pa, owner, octx] = live[idx];
            live.erase(live.begin() + long(idx));
            sim::CpuCursor fc(sys.ctx.machine.core(owner),
                              sys.ctx.now());
            sys.damn->damnFree(fc, pa, octx);
        }
    }
    for (auto &[pa, owner, octx] : live) {
        sim::CpuCursor fc(sys.ctx.machine.core(owner), sys.ctx.now());
        sys.damn->damnFree(fc, pa, octx);
    }
    // Quiescent: every DAMN head page holds only the bump bias (1) or
    // is fully free (0).
    for (mem::Pfn pfn = 0; pfn < sys.phys.numFrames(); ++pfn) {
        const mem::Page &pg = sys.phys.page(pfn);
        if (pg.test(mem::PG_head) &&
            sys.phys.page(pfn + 2).test(mem::PG_damn)) {
            EXPECT_LE(pg.refcount, 1) << "pfn " << pfn;
        }
    }
}

TEST(Properties, SchemesAgreeOnDeliveredBytes)
{
    // Functional equivalence: for identical wire input, every scheme
    // delivers identical bytes to the application.
    std::vector<std::vector<std::uint8_t>> delivered;
    for (const auto k :
         {dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
          dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
          dma::SchemeKind::Damn}) {
        SystemParams p;
        p.scheme = k;
        System sys(p);
        NicDevice nic(sys, "mlx5_0");
        TcpStack stack(sys, nic);
        sim::CpuCursor c(sys.ctx.machine.core(0), 0);

        sim::Rng rng(1234);
        std::vector<std::uint8_t> wire(8192);
        for (auto &b : wire)
            b = std::uint8_t(rng.next());

        RxBuffer buf = stack.driver.allocRxBuffer(c, 8192);
        nic.dmaWrite(0, buf.seg.dmaAddr, wire.data(), wire.size());
        SkBuff skb = stack.driver.rxBuild(c, buf, 8192);
        stack.rxSegment(c, skb, 1.0);
        std::vector<std::uint8_t> out(8192);
        sys.accessor().access(c, skb, 0, 8192, out.data());
        sys.accessor().freeSkb(c, skb);
        delivered.push_back(std::move(out));
    }
    for (std::size_t i = 1; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], delivered[0]);
}
