/**
 * @file
 * Unit tests for the simulation substrate: engine, machine, locks,
 * bandwidth server, RNG, cost model.
 */

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/context.hh"
#include "sim/cpu_cursor.hh"
#include "sim/sim_mutex.hh"

using namespace damn::sim;

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

TEST(Engine, StartsAtZero)
{
    Engine e;
    EXPECT_EQ(e.now(), 0u);
    EXPECT_EQ(e.pending(), 0u);
}

TEST(Engine, DispatchesInTimeOrder)
{
    Engine e;
    std::vector<int> order;
    e.schedule(30, [&] { order.push_back(3); });
    e.schedule(10, [&] { order.push_back(1); });
    e.schedule(20, [&] { order.push_back(2); });
    e.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeIsFifo)
{
    Engine e;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        e.schedule(5, [&order, i] { order.push_back(i); });
    e.runAll();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, NowAdvancesToEventTime)
{
    Engine e;
    TimeNs seen = 0;
    e.schedule(1234, [&] { seen = e.now(); });
    e.runAll();
    EXPECT_EQ(seen, 1234u);
    EXPECT_EQ(e.now(), 1234u);
}

TEST(Engine, RunStopsAtLimit)
{
    Engine e;
    int fired = 0;
    e.schedule(100, [&] { ++fired; });
    e.schedule(200, [&] { ++fired; });
    e.run(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 1u);
    e.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, EventAtExactLimitFires)
{
    Engine e;
    int fired = 0;
    e.schedule(150, [&] { ++fired; });
    e.run(150);
    EXPECT_EQ(fired, 1);
}

TEST(Engine, PastSchedulingClampsToNow)
{
    Engine e;
    TimeNs when = ~TimeNs{0};
    e.schedule(100, [&] {
        e.schedule(50, [&] { when = e.now(); }); // in the past
    });
    e.runAll();
    EXPECT_EQ(when, 100u);
}

TEST(Engine, CancelPreventsDispatch)
{
    Engine e;
    int fired = 0;
    const auto id = e.schedule(10, [&] { ++fired; });
    EXPECT_TRUE(e.cancel(id));
    EXPECT_EQ(e.pending(), 0u);
    e.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(Engine, DoubleCancelReturnsFalse)
{
    Engine e;
    const auto id = e.schedule(10, [] {});
    EXPECT_TRUE(e.cancel(id));
    EXPECT_FALSE(e.cancel(id));
    e.runAll();
}

TEST(Engine, ScheduleInIsRelative)
{
    Engine e;
    TimeNs seen = 0;
    e.schedule(100, [&] {
        e.scheduleIn(50, [&] { seen = e.now(); });
    });
    e.runAll();
    EXPECT_EQ(seen, 150u);
}

TEST(Engine, SelfPerpetuatingChainStopsAtLimit)
{
    Engine e;
    std::uint64_t count = 0;
    std::function<void()> tick = [&] {
        ++count;
        e.scheduleIn(10, tick);
    };
    e.schedule(0, tick);
    e.run(1000);
    EXPECT_EQ(count, 101u); // t = 0, 10, ..., 1000
}

TEST(Engine, DispatchedCounts)
{
    Engine e;
    for (int i = 0; i < 5; ++i)
        e.schedule(TimeNs(i), [] {});
    e.runAll();
    EXPECT_EQ(e.dispatched(), 5u);
}

// Regression: the seed engine recorded a cancel of an already-
// dispatched id in its lazy-cancel set forever and decremented the
// live count below the true number of pending events.  Stale handles
// must be recognized exactly.
TEST(Engine, CancelAfterDispatchIsRejected)
{
    Engine e;
    int fired = 0;
    const auto id = e.schedule(10, [&] { ++fired; });
    e.schedule(50, [&] { ++fired; });
    e.run(20);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 1u);
    EXPECT_FALSE(e.cancel(id)); // already dispatched: stale handle
    EXPECT_EQ(e.pending(), 1u); // live count not corrupted
    e.runAll();
    EXPECT_EQ(fired, 2);        // the remaining event still fires
    EXPECT_EQ(e.pending(), 0u);
}

// A stale handle must never cancel an unrelated newer event, even when
// the newer event reuses the old event's internal storage slot.
TEST(Engine, StaleHandleCannotCancelSlotReuse)
{
    Engine e;
    int fired = 0;
    const auto old_id = e.schedule(10, [&] { ++fired; });
    e.run(10); // dispatches and frees the slot
    EXPECT_EQ(fired, 1);
    e.schedule(20, [&] { ++fired; }); // reuses the freed slot
    EXPECT_FALSE(e.cancel(old_id));
    EXPECT_EQ(e.pending(), 1u);
    e.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelledThenReusedSlotKeepsPendingExact)
{
    Engine e;
    int fired = 0;
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 16; ++i)
        ids.push_back(e.schedule(TimeNs(100 + i), [&] { ++fired; }));
    for (const auto id : ids)
        EXPECT_TRUE(e.cancel(id));
    EXPECT_EQ(e.pending(), 0u);
    for (const auto id : ids)
        EXPECT_FALSE(e.cancel(id)); // double-cancel of every handle
    // Reuse the freed slots; old handles must stay dead.
    for (int i = 0; i < 16; ++i)
        e.schedule(TimeNs(200 + i), [&] { ++fired; });
    EXPECT_EQ(e.pending(), 16u);
    e.runAll();
    EXPECT_EQ(fired, 16);
    EXPECT_EQ(e.dispatched(), 16u);
}

// A same-timestamp batch member cancelled by an earlier member's
// callback must not fire.
TEST(Engine, CancelWithinSameTimestampBatch)
{
    Engine e;
    int fired = 0;
    std::uint64_t victim = 0;
    e.schedule(10, [&] { e.cancel(victim); });
    victim = e.schedule(10, [&] { ++fired; });
    e.schedule(10, [&] { ++fired; });
    e.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.pending(), 0u);
}

// Events scheduled *at the current instant* from inside a batch fire
// after the whole batch, in scheduling order.
TEST(Engine, SameInstantScheduleFromBatchRunsAfterBatch)
{
    Engine e;
    std::vector<int> order;
    e.schedule(10, [&] {
        order.push_back(1);
        e.scheduleIn(0, [&] { order.push_back(3); });
    });
    e.schedule(10, [&] { order.push_back(2); });
    e.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Callbacks larger than SmallFn's inline buffer must still work (heap
// fallback path).
TEST(Engine, OversizedCallbackFallsBackToHeap)
{
    Engine e;
    std::array<std::uint64_t, 16> payload{};
    payload.fill(7);
    std::uint64_t sum = 0;
    e.schedule(5, [payload, &sum] {
        for (const auto v : payload)
            sum += v;
    });
    e.runAll();
    EXPECT_EQ(sum, 16u * 7u);
}

// ---------------------------------------------------------------------
// Core / Machine
// ---------------------------------------------------------------------

TEST(Core, ChargeAccumulatesBusyTime)
{
    Core c(0, 0);
    EXPECT_EQ(c.charge(0, 100), 100u);
    EXPECT_EQ(c.busyNs(), 100u);
    EXPECT_EQ(c.charge(100, 50), 150u);
    EXPECT_EQ(c.busyNs(), 150u);
}

TEST(Core, ChargeSerializesWork)
{
    Core c(0, 0);
    c.charge(0, 100);
    // New work "arriving" at t=20 must wait until t=100.
    EXPECT_EQ(c.charge(20, 30), 130u);
}

TEST(Core, ChargeAfterIdleGap)
{
    Core c(0, 0);
    c.charge(0, 100);
    EXPECT_EQ(c.charge(500, 10), 510u);
    EXPECT_EQ(c.busyNs(), 110u); // the idle gap is not busy
}

TEST(Core, OccupyBooksFraction)
{
    Core c(0, 0);
    c.occupy(0, 1000, 0.25);
    EXPECT_EQ(c.busyNs(), 250u);
    EXPECT_EQ(c.freeAt(), 1000u);
}

TEST(Core, ResetAccountingClearsBusyNotFreeAt)
{
    Core c(0, 0);
    c.charge(0, 100);
    c.resetAccounting();
    EXPECT_EQ(c.busyNs(), 0u);
    EXPECT_EQ(c.freeAt(), 100u);
}

TEST(Machine, TopologyInterleavesSockets)
{
    Machine m(2, 14);
    EXPECT_EQ(m.numCores(), 28u);
    EXPECT_EQ(m.numaOf(0), 0u);
    EXPECT_EQ(m.numaOf(1), 1u);
    EXPECT_EQ(m.numaOf(2), 0u);
    EXPECT_EQ(m.numaOf(27), 1u);
}

TEST(Machine, UtilizationConvention)
{
    // Paper convention: one fully busy core out of 28 = 3.57%.
    Machine m(2, 14);
    m.core(0).charge(0, 1000);
    EXPECT_NEAR(m.utilizationPct(1000), 100.0 / 28, 0.01);
    EXPECT_NEAR(m.coreUtilizationPct(0, 1000), 100.0, 0.01);
}

TEST(Machine, TotalBusySums)
{
    Machine m(1, 4);
    m.core(0).charge(0, 100);
    m.core(3).charge(0, 200);
    EXPECT_EQ(m.totalBusyNs(), 300u);
}

// ---------------------------------------------------------------------
// SimMutex / SerialResource
// ---------------------------------------------------------------------

TEST(SimMutex, UncontendedAcquireCostsHoldOnly)
{
    Core c(0, 0);
    SimMutex m;
    EXPECT_EQ(m.acquireAndHold(c, 100, 50), 150u);
    EXPECT_EQ(m.totalSpinNs(), 0u);
    EXPECT_EQ(c.busyNs(), 50u);
}

TEST(SimMutex, ContendedAcquireSpins)
{
    Core a(0, 0), b(1, 0);
    SimMutex m;
    m.acquireAndHold(a, 0, 100);
    EXPECT_EQ(m.acquireAndHold(b, 30, 10), 110u);
    EXPECT_EQ(m.totalSpinNs(), 70u);
    EXPECT_EQ(b.busyNs(), 80u); // 70 spin + 10 hold
}

TEST(SimMutex, PartialSpinBusyFraction)
{
    Core a(0, 0), b(1, 0);
    SimMutex m;
    m.acquireAndHold(a, 0, 100);
    m.acquireAndHold(b, 0, 100, 0.5);
    // b spun 100 (50 busy) then held 100 (fully busy).
    EXPECT_EQ(b.busyNs(), 150u);
    EXPECT_EQ(b.freeAt(), 200u);
}

TEST(SimMutex, SerializesManyAcquirers)
{
    Machine mach(1, 8);
    SimMutex m;
    TimeNs last = 0;
    for (unsigned i = 0; i < 8; ++i)
        last = m.acquireAndHold(mach.core(i), 0, 100);
    EXPECT_EQ(last, 800u);
    EXPECT_EQ(m.acquisitions(), 8u);
    EXPECT_EQ(m.maxSpinNs(), 700u);
}

TEST(SerialResource, FifoService)
{
    SerialResource r;
    EXPECT_EQ(r.submit(0, 100), 100u);
    EXPECT_EQ(r.submit(0, 100), 200u);
    EXPECT_EQ(r.submit(500, 100), 600u); // idle gap
    EXPECT_EQ(r.busyNs(), 300u);
    EXPECT_EQ(r.requests(), 3u);
}

// ---------------------------------------------------------------------
// MemBwServer
// ---------------------------------------------------------------------

TEST(MemBw, TransferPacesAtCapacity)
{
    MemBwServer bw(10.0); // 10 B/ns
    EXPECT_EQ(bw.transfer(0, 1000), 100u);
    EXPECT_EQ(bw.transfer(0, 1000), 200u); // queues behind the first
    EXPECT_EQ(bw.totalBytes(), 2000u);
}

TEST(MemBw, IdleGapResets)
{
    MemBwServer bw(10.0);
    bw.transfer(0, 1000);
    EXPECT_EQ(bw.transfer(1000, 100), 1010u);
}

TEST(MemBw, AchievedBandwidth)
{
    MemBwServer bw(10.0);
    bw.transfer(0, 5000);
    EXPECT_DOUBLE_EQ(bw.achievedGBps(1000), 5.0);
    bw.resetAccounting();
    EXPECT_EQ(bw.totalBytes(), 0u);
}

TEST(MemBw, UtilizationTracksSustainedLoad)
{
    MemBwServer bw(10.0);
    // Inject 50% load over 1 ms: 500 B every 100 ns costs 50 ns.
    for (TimeNs t = 0; t < 1'000'000; t += 100)
        bw.occupy(t, 500);
    const double rho = bw.utilization(1'000'000);
    EXPECT_NEAR(rho, 0.5, 0.05);
}

TEST(MemBw, UtilizationDropsWhenLoadStops)
{
    MemBwServer bw(10.0);
    for (TimeNs t = 0; t < 500'000; t += 100)
        bw.occupy(t, 1000);
    // 400 us later the window has rolled past the load entirely.
    EXPECT_NEAR(bw.utilization(900'000), 0.0, 0.01);
}

TEST(MemBw, StallFactorShape)
{
    EXPECT_DOUBLE_EQ(memStallFactor(0.0), 1.0);
    EXPECT_DOUBLE_EQ(memStallFactor(0.8), 1.0);
    EXPECT_NEAR(memStallFactor(0.9), 2.0, 1e-9);
    EXPECT_LE(memStallFactor(1.5), 5.0);
    // Monotone.
    double prev = 0.0;
    for (double r = 0.0; r < 1.2; r += 0.01) {
        EXPECT_GE(memStallFactor(r), prev);
        prev = memStallFactor(r);
    }
}

TEST(MemBw, OutOfOrderTimestampsTolerated)
{
    MemBwServer bw(10.0);
    bw.occupy(500'000, 1000);
    bw.occupy(100'000, 1000); // late-arriving injection
    EXPECT_GE(bw.utilization(550'000), 0.0);
    EXPECT_EQ(bw.totalBytes(), 2000u);
}

// ---------------------------------------------------------------------
// Context / CpuCursor / CostModel / Rng
// ---------------------------------------------------------------------

TEST(CpuCursor, ChargeAdvancesCursorAndCore)
{
    Machine m(1, 1);
    CpuCursor cpu(m.core(0), 100);
    cpu.charge(50);
    EXPECT_EQ(cpu.time, 150u);
    EXPECT_EQ(m.core(0).busyNs(), 50u);
}

TEST(CpuCursor, WaitUntilDoesNotBurnCpu)
{
    Machine m(1, 1);
    CpuCursor cpu(m.core(0), 100);
    cpu.waitUntil(500);
    EXPECT_EQ(cpu.time, 500u);
    EXPECT_EQ(m.core(0).busyNs(), 0u);
    cpu.waitUntil(200); // never goes backwards
    EXPECT_EQ(cpu.time, 500u);
}

TEST(Context, CopyCostNoStallWhenIdle)
{
    Context ctx;
    const TimeNs t = ctx.copyCost(0, 1100, 11.0, 2200);
    EXPECT_EQ(t, ctx.cost.copyCallNs + 100);
}

TEST(Context, CopyCostStallsUnderLoad)
{
    Context ctx;
    // Saturate the controllers for a window.
    for (TimeNs t = 0; t < 400'000; t += 100)
        ctx.memBw.occupy(t, 10'000);
    const TimeNs stalled = ctx.copyCost(400'000, 11'000, 11.0, 0);
    EXPECT_GT(stalled, ctx.cost.copyCallNs + 1000);
}

TEST(CostModel, CyclesToNs)
{
    CostModel cm;
    cm.cpuGhz = 2.0;
    EXPECT_EQ(cm.cyclesToNs(2000), 1000u);
}

TEST(CostModel, CopyHelpers)
{
    CostModel cm;
    EXPECT_EQ(cm.warmCopyNs(1100),
              cm.copyCallNs + TimeNs(1100 / cm.warmCopyBytesPerNs));
    EXPECT_GT(cm.coldCopyNs(4096), cm.warmCopyNs(4096));
}

TEST(Types, UnitConversions)
{
    EXPECT_DOUBLE_EQ(gbpsToBytesPerNs(8.0), 1.0);
    EXPECT_DOUBLE_EQ(bytesPerNsToGbps(1.0), 8.0);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BetweenInclusive)
{
    Rng r(7);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.between(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        hit_lo |= v == 3;
        hit_hi |= v == 5;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Stats, AddSetMaxGet)
{
    Stats s;
    s.add("a");
    s.add("a", 4);
    EXPECT_EQ(s.get("a"), 5u);
    s.set("b", 7);
    EXPECT_EQ(s.get("b"), 7u);
    s.max("c", 3);
    s.max("c", 1);
    EXPECT_EQ(s.get("c"), 3u);
    EXPECT_EQ(s.get("missing"), 0u);
    EXPECT_TRUE(s.has("a"));
    s.clear();
    EXPECT_FALSE(s.has("a"));
}
