/**
 * @file
 * Tracer/observability tests: attribution invariants, ring-buffer
 * bounds, the zero-virtual-cost rule, golden-trace determinism of the
 * exporter, and the schema-v2 attribution block.
 */

#include <gtest/gtest.h>

#include "exp/driver.hh"
#include "net/system.hh"
#include "workloads/netperf.hh"

using namespace damn;
using exp::Json;

// ---------------------------------------------------------------------
// Attribution mechanics
// ---------------------------------------------------------------------

namespace {

struct TracerFixture : ::testing::Test
{
    TracerFixture() : ctx(sim::CostModel{}, 1, 4) {}
    sim::Context ctx;
};

} // namespace

TEST_F(TracerFixture, BusyTimeLandsInTheInnermostCategory)
{
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    cpu.charge(100); // outside any span -> "other"
    {
        sim::TraceSpan outer(ctx.tracer, cpu, sim::TraceCat::NetStack,
                             "outer");
        cpu.charge(200);
        {
            sim::TraceSpan inner(ctx.tracer, cpu, sim::TraceCat::Copy,
                                 "inner");
            cpu.charge(50);
        }
        cpu.charge(25);
    }
    EXPECT_EQ(ctx.tracer.attributedNs(sim::TraceCat::Other), 100u);
    EXPECT_EQ(ctx.tracer.attributedNs(sim::TraceCat::NetStack), 225u);
    EXPECT_EQ(ctx.tracer.attributedNs(sim::TraceCat::Copy), 50u);
}

TEST_F(TracerFixture, AttributionCoversAllBusyTimeByConstruction)
{
    sim::CpuCursor a(ctx.machine.core(0), 0);
    sim::CpuCursor b(ctx.machine.core(2), 10);
    a.charge(123);
    {
        sim::TraceSpan s(ctx.tracer, b, sim::TraceCat::DmaMap, "m");
        b.charge(456);
    }
    const sim::TraceBundle bd = ctx.tracer.bundle(ctx.machine, 2.0);
    EXPECT_EQ(bd.totalBusyNs, 579u);
    EXPECT_EQ(bd.attributedNs, bd.totalBusyNs);
    EXPECT_DOUBLE_EQ(bd.coveragePct(), 100.0);
    EXPECT_EQ(bd.totalCycles, std::uint64_t(579 * 2.0));
}

TEST_F(TracerFixture, RecordingIsOffByDefaultAndCostsNoVirtualTime)
{
    EXPECT_FALSE(ctx.tracer.recording());
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    {
        sim::TraceSpan s(ctx.tracer, cpu, sim::TraceCat::App, "a");
        ctx.tracer.instant(0, sim::TraceCat::Fault, "f", 5);
    }
    EXPECT_EQ(ctx.tracer.bufferedEvents(), 0u);
    // Spans and instants never advance the cursor by themselves.
    EXPECT_EQ(cpu.time, 0u);
}

TEST_F(TracerFixture, RingIsBoundedAndCountsDrops)
{
    ctx.tracer.startRecording(/*capacity=*/8);
    for (unsigned i = 0; i < 20; ++i)
        ctx.tracer.instant(0, sim::TraceCat::NicRing, "e", i, 0, i);
    EXPECT_EQ(ctx.tracer.bufferedEvents(), 8u);
    EXPECT_EQ(ctx.tracer.droppedEvents(), 12u);
    // The ring keeps the *newest* events: 12..19 survive.
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    ASSERT_EQ(b.events.size(), 8u);
    for (const sim::TraceEvent &ev : b.events)
        EXPECT_GE(ev.aux, 12u);
    EXPECT_EQ(b.droppedEvents, 12u);
}

TEST_F(TracerFixture, ResetWindowClearsTotalsAndEventsButNotNames)
{
    ctx.tracer.startRecording(16);
    sim::CpuCursor cpu(ctx.machine.core(1), 0);
    {
        sim::TraceSpan s(ctx.tracer, cpu, sim::TraceCat::Nvme, "io");
        cpu.charge(77);
    }
    const std::uint32_t id = ctx.tracer.intern("io");
    ctx.tracer.resetWindow();
    EXPECT_EQ(ctx.tracer.attributedNs(sim::TraceCat::Nvme), 0u);
    EXPECT_EQ(ctx.tracer.bufferedEvents(), 0u);
    EXPECT_TRUE(ctx.tracer.recording()) << "recording flag survives";
    EXPECT_EQ(ctx.tracer.intern("io"), id) << "name ids stay stable";
}

TEST_F(TracerFixture, EventsSortByTimeThenSequence)
{
    ctx.tracer.startRecording(16);
    // Same timestamp on two cores: record order breaks the tie.
    ctx.tracer.instant(1, sim::TraceCat::NicRing, "first", 100);
    ctx.tracer.instant(0, sim::TraceCat::NicRing, "second", 100);
    ctx.tracer.instant(2, sim::TraceCat::NicRing, "earlier", 50);
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    ASSERT_EQ(b.events.size(), 3u);
    EXPECT_EQ(b.names[b.events[0].nameId], "earlier");
    EXPECT_EQ(b.names[b.events[1].nameId], "first");
    EXPECT_EQ(b.names[b.events[2].nameId], "second");
}

// ---------------------------------------------------------------------
// Exporter: valid, deterministic Chrome trace JSON
// ---------------------------------------------------------------------

TEST_F(TracerFixture, ChromeJsonIsValidAndEscaped)
{
    ctx.tracer.startRecording(16);
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    {
        sim::TraceSpan s(ctx.tracer, cpu, sim::TraceCat::Copy,
                         "weird \"name\"\n\t\\");
        cpu.charge(1500);
        s.bytes(4096);
        s.aux(7);
    }
    ctx.tracer.instant(1, sim::TraceCat::Fault, "f", 250);
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    const std::string json =
        sim::chromeTraceJson({{"proc \"zero\"", &b}});

    const Json doc = Json::parse(json);
    const Json *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    // metadata + span + instant
    ASSERT_EQ(evs->items().size(), 3u);
    const Json &meta = evs->items()[0];
    EXPECT_EQ(meta.find("ph")->str(), "M");
    EXPECT_EQ(meta.find("args")->find("name")->str(), "proc \"zero\"");
    const Json &span = evs->items()[1];
    EXPECT_EQ(span.find("ph")->str(), "X");
    EXPECT_EQ(span.find("name")->str(), "weird \"name\"\n\t\\");
    EXPECT_EQ(span.find("cat")->str(), "copy");
    EXPECT_EQ(span.find("args")->find("bytes")->asUint(), 4096u);
    const Json &inst = evs->items()[2];
    EXPECT_EQ(inst.find("ph")->str(), "i");
}

TEST_F(TracerFixture, TimestampsAreMicrosecondsWithFixedPrecision)
{
    ctx.tracer.startRecording(4);
    ctx.tracer.instant(0, sim::TraceCat::NicRing, "e", 1234567);
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    const std::string json = sim::chromeTraceJson({{"p", &b}});
    EXPECT_NE(json.find("\"ts\":1234.567"), std::string::npos) << json;
}

// ---------------------------------------------------------------------
// Golden-trace determinism and the zero-cost rule, through the full
// netperf + driver pipeline
// ---------------------------------------------------------------------

namespace {

exp::DriverOptions
traceDriverOpts()
{
    exp::DriverOptions o;
    o.only = "netperf_stream";
    o.schemes = {dma::SchemeKind::Strict, dma::SchemeKind::Damn};
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 4 * sim::kNsPerMs;
    o.tracePath = "unused"; // non-empty => RunCtx.traceEvents
    return o;
}

} // namespace

TEST(GoldenTrace, SameSeedSameGlobByteIdenticalOutput)
{
    const exp::DriverOptions o = traceDriverOpts();
    const exp::Report r1 = exp::runExperiments(o);
    const exp::Report r2 = exp::runExperiments(o);

    const std::string t1 = exp::chromeTraceForReport(r1);
    const std::string t2 = exp::chromeTraceForReport(r2);
    EXPECT_FALSE(t1.empty());
    EXPECT_EQ(t1, t2) << "trace output must be byte-identical";

    const std::string j1 = exp::reportJson(r1).dump();
    const std::string j2 = exp::reportJson(r2).dump();
    EXPECT_EQ(j1, j2) << "attribution JSON must be byte-identical";
}

TEST(GoldenTrace, TraceIsValidJsonWithLabeledProcesses)
{
    const exp::Report r = exp::runExperiments(traceDriverOpts());
    const Json doc = Json::parse(exp::chromeTraceForReport(r));
    const Json *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_GT(evs->items().size(), 100u);
    // One labeled process per traced run (two schemes selected).
    unsigned procs = 0;
    for (const Json &ev : evs->items())
        if (ev.find("ph")->str() == "M") {
            ++procs;
            const std::string label =
                ev.find("args")->find("name")->str();
            EXPECT_EQ(label.rfind("netperf_stream/", 0), 0u) << label;
        }
    EXPECT_EQ(procs, 2u);
}

TEST(GoldenTrace, RecordingDoesNotChangeMetrics)
{
    work::NetperfOpts o =
        work::multiCoreOpts(dma::SchemeKind::Strict, work::NetMode::Rx);
    o.runWindow = work::RunWindow{1 * sim::kNsPerMs, 4 * sim::kNsPerMs};

    o.trace = false;
    const work::NetperfRun off = work::runNetperf(o);
    o.trace = true;
    const work::NetperfRun on = work::runNetperf(o);

    EXPECT_EQ(off.res.totalGbps, on.res.totalGbps);
    EXPECT_EQ(off.res.cpuPct, on.res.cpuPct);
    EXPECT_EQ(off.common.opsPerSec, on.common.opsPerSec);
    EXPECT_TRUE(off.common.trace.events.empty());
    EXPECT_FALSE(on.common.trace.events.empty());
    // Attribution itself is identical with recording on or off.
    ASSERT_EQ(off.common.trace.categories.size(),
              on.common.trace.categories.size());
    for (std::size_t i = 0; i < off.common.trace.categories.size();
         ++i) {
        EXPECT_EQ(off.common.trace.categories[i].name,
                  on.common.trace.categories[i].name);
        EXPECT_EQ(off.common.trace.categories[i].ns,
                  on.common.trace.categories[i].ns);
    }
}

TEST(GoldenTrace, AttributionCoversAtLeast95PctForEveryScheme)
{
    for (const dma::SchemeKind k : exp::defaultSchemes()) {
        work::NetperfOpts o = work::multiCoreOpts(k, work::NetMode::Rx);
        o.runWindow =
            work::RunWindow{1 * sim::kNsPerMs, 4 * sim::kNsPerMs};
        const work::NetperfRun run = work::runNetperf(o);
        const sim::TraceBundle &b = run.common.trace;
        EXPECT_GT(b.totalBusyNs, 0u) << dma::schemeKindName(k);
        EXPECT_GE(b.coveragePct(), 95.0) << dma::schemeKindName(k);
    }
}

TEST(GoldenTrace, RdmaPagefaultRunIsByteIdenticalAndServicesFaults)
{
    exp::DriverOptions o;
    o.only = "rdma_pagefault";
    o.schemes = {dma::SchemeKind::Strict, dma::SchemeKind::Deferred};
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 2 * sim::kNsPerMs;
    o.tracePath = "unused"; // non-empty => RunCtx.traceEvents

    const exp::Report r1 = exp::runExperiments(o);
    const exp::Report r2 = exp::runExperiments(o);
    const std::string j1 = exp::reportJson(r1).dump();
    EXPECT_EQ(j1, exp::reportJson(r2).dump())
        << "rdma_pagefault JSON must be byte-identical";
    EXPECT_EQ(exp::chromeTraceForReport(r1),
              exp::chromeTraceForReport(r2))
        << "rdma_pagefault trace must be byte-identical";

    // Every run of the sweep must actually exercise the PRI path and
    // report the new metric block.
    const Json doc = Json::parse(j1);
    const Json *runs = nullptr;
    for (const Json &e : doc.find("experiments")->items())
        if (e.find("name")->str() == "rdma_pagefault")
            runs = e.find("runs");
    ASSERT_NE(runs, nullptr);
    EXPECT_FALSE(runs->items().empty());
    for (const Json &run : runs->items()) {
        const Json *m = run.find("metrics");
        ASSERT_NE(m, nullptr);
        for (const char *name :
             {"faults_serviced", "auto_responses", "prq_max_depth",
              "devtlb_hit_rate", "fault_service_avg_ns"})
            ASSERT_NE(m->find(name), nullptr) << name;
        EXPECT_GT(m->find("faults_serviced")->find("value")->asDouble(),
                  0.0)
            << run.find("scheme")->str() << "/"
            << run.find("params")->find("backend")->str();
        EXPECT_GT(m->find("prq_max_depth")->find("value")->asDouble(),
                  0.0);
    }
}

TEST(GoldenTrace, SchemaV2AttributionBlockIsDocumentedShape)
{
    const exp::Report r = exp::runExperiments(traceDriverOpts());
    const Json doc = Json::parse(exp::reportJson(r).dump());
    EXPECT_EQ(doc.find("schema_version")->asInt(), 2);
    const Json &run =
        doc.find("experiments")->items()[0].find("runs")->items()[0];
    const Json *attr = run.find("attribution");
    ASSERT_NE(attr, nullptr);
    ASSERT_NE(attr->find("total_busy_ns"), nullptr);
    ASSERT_NE(attr->find("total_cycles"), nullptr);
    ASSERT_NE(attr->find("attributed_ns"), nullptr);
    ASSERT_NE(attr->find("coverage_pct"), nullptr);
    ASSERT_NE(attr->find("dropped_events"), nullptr);
    const Json *cats = attr->find("categories");
    ASSERT_NE(cats, nullptr);
    EXPECT_FALSE(cats->members().empty());
    bool saw_dma_map = false;
    for (const auto &[name, jc] : cats->members()) {
        ASSERT_NE(jc.find("ns"), nullptr) << name;
        ASSERT_NE(jc.find("cycles"), nullptr) << name;
        ASSERT_NE(jc.find("bytes"), nullptr) << name;
        ASSERT_NE(jc.find("events"), nullptr) << name;
        if (name == "dma.map")
            saw_dma_map = true;
    }
    EXPECT_TRUE(saw_dma_map) << "strict runs must attribute dma.map";
    EXPECT_GE(attr->find("coverage_pct")->asDouble(), 95.0);
}
