/**
 * @file
 * Fault-injection framework, IOMMU fault reporting, and end-to-end
 * recovery paths: injector determinism, fault-log semantics,
 * quarantine round trips, the per-domain deferred-flush scoping
 * regression, TCP-lite retransmission healing dropped segments
 * byte-exactly under every protection scheme, and NVMe bounded retry.
 */

#include <gtest/gtest.h>

#include "net/stream.hh"
#include "nvme/nvme.hh"
#include "workloads/attacks.hh"
#include "workloads/netperf.hh"

using namespace damn;
using namespace damn::net;

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjector, DeterministicAcrossReruns)
{
    sim::FaultInjector a, b;
    a.enable(123);
    b.enable(123);
    a.setProbability(sim::FaultSite::NicRx, 0.1);
    b.setProbability(sim::FaultSite::NicRx, 0.1);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_EQ(a.shouldFail(sim::FaultSite::NicRx),
                  b.shouldFail(sim::FaultSite::NicRx));
    }
    EXPECT_EQ(a.ops(sim::FaultSite::NicRx), 10000u);
    EXPECT_EQ(a.injected(sim::FaultSite::NicRx),
              b.injected(sim::FaultSite::NicRx));
    EXPECT_GT(a.injected(sim::FaultSite::NicRx), 0u);
}

TEST(FaultInjector, SeedChangesSequence)
{
    sim::FaultInjector a, b;
    a.enable(1);
    b.enable(2);
    a.setProbability(sim::FaultSite::NicTx, 0.2);
    b.setProbability(sim::FaultSite::NicTx, 0.2);
    bool differ = false;
    for (int i = 0; i < 1000; ++i) {
        if (a.shouldFail(sim::FaultSite::NicTx) !=
            b.shouldFail(sim::FaultSite::NicTx))
            differ = true;
    }
    EXPECT_TRUE(differ);
}

TEST(FaultInjector, FailNthExactlyOnce)
{
    sim::FaultInjector f;
    f.enable(5);
    f.failNth(sim::FaultSite::NicTx, 3);
    EXPECT_FALSE(f.shouldFail(sim::FaultSite::NicTx));
    EXPECT_FALSE(f.shouldFail(sim::FaultSite::NicTx));
    EXPECT_TRUE(f.shouldFail(sim::FaultSite::NicTx));
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(f.shouldFail(sim::FaultSite::NicTx));
    EXPECT_EQ(f.injected(sim::FaultSite::NicTx), 1u);
    EXPECT_EQ(f.totalInjected(), 1u);
}

TEST(FaultInjector, DisabledIsInert)
{
    sim::FaultInjector f;
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(f.shouldFail(sim::FaultSite::DmaTranslate));
    // No accounting either: disabled means zero cost, zero state.
    EXPECT_EQ(f.ops(sim::FaultSite::DmaTranslate), 0u);
    EXPECT_EQ(f.totalInjected(), 0u);
}

TEST(FaultInjector, SitesHaveIndependentStreams)
{
    // Decisions at one site must not shift when another site is
    // exercised in between (each site draws its own RNG stream).
    sim::FaultInjector a, b;
    a.enable(77);
    b.enable(77);
    a.setProbability(sim::FaultSite::NicRx, 0.05);
    b.setProbability(sim::FaultSite::NicRx, 0.05);
    b.setProbability(sim::FaultSite::NvmeCmd, 0.5);
    for (int i = 0; i < 1000; ++i) {
        b.shouldFail(sim::FaultSite::NvmeCmd);
        EXPECT_EQ(a.shouldFail(sim::FaultSite::NicRx),
                  b.shouldFail(sim::FaultSite::NicRx));
    }
}

TEST(FaultInjector, ResetClearsEverything)
{
    sim::FaultInjector f;
    f.enable(9);
    f.setProbability(sim::FaultSite::NicRx, 1.0);
    EXPECT_TRUE(f.shouldFail(sim::FaultSite::NicRx));
    f.reset();
    EXPECT_FALSE(f.enabled());
    EXPECT_FALSE(f.shouldFail(sim::FaultSite::NicRx));
    EXPECT_EQ(f.ops(sim::FaultSite::NicRx), 0u);
    EXPECT_EQ(f.totalInjected(), 0u);
}

TEST(FaultInjector, EnableResetEnableReproducesSchedule)
{
    // The reset() contract: enable(s) -> reset() -> enable(s) must
    // replay the exact fault schedule of the first enable(s), because
    // enable() re-seeds every per-site stream from its argument.  The
    // chaos soak leans on this to re-arm the storm every cycle.
    const auto schedule = [](sim::FaultInjector &f) {
        f.setProbability(sim::FaultSite::NicRx, 0.1);
        f.setProbability(sim::FaultSite::NvmeCmd, 0.3);
        std::vector<bool> s;
        for (int i = 0; i < 2000; ++i) {
            s.push_back(f.shouldFail(sim::FaultSite::NicRx));
            s.push_back(f.shouldFail(sim::FaultSite::NvmeCmd));
        }
        return s;
    };

    sim::FaultInjector f;
    f.enable(31337);
    const std::vector<bool> first = schedule(f);

    f.reset();
    // Between reset() and enable() the injector is disarmed: nothing
    // fires, no counters move, no RNG state advances.
    EXPECT_FALSE(f.shouldFail(sim::FaultSite::NicRx));
    EXPECT_EQ(f.ops(sim::FaultSite::NicRx), 0u);

    f.enable(31337);
    EXPECT_EQ(schedule(f), first);
}

// ---------------------------------------------------------------------
// IOMMU fault reporting
// ---------------------------------------------------------------------

namespace {

struct FaultIommuFixture : ::testing::Test
{
    FaultIommuFixture() : ctx(sim::CostModel{}, 1, 2), mmu(ctx) {}

    sim::Context ctx;
    iommu::Iommu mmu;
};

} // namespace

TEST_F(FaultIommuFixture, LogRecordsReasonsAndDetails)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRead));

    EXPECT_TRUE(mmu.translate(d, 0x9000, false).fault);
    EXPECT_TRUE(mmu.translate(d, 0x1000, true).fault);

    ASSERT_EQ(mmu.faultLog().size(), 2u);
    const iommu::FaultRecord &np = mmu.faultLog()[0];
    EXPECT_EQ(np.domain, d);
    EXPECT_EQ(np.iova, 0x9000u);
    EXPECT_FALSE(np.isWrite);
    EXPECT_EQ(np.reason, iommu::FaultReason::NotPresent);
    const iommu::FaultRecord &perm = mmu.faultLog()[1];
    EXPECT_EQ(perm.iova, 0x1000u);
    EXPECT_TRUE(perm.isWrite);
    EXPECT_EQ(perm.reason, iommu::FaultReason::Permission);

    EXPECT_EQ(mmu.faults(), 2u);
    EXPECT_EQ(mmu.domainFaults(d), 2u);
}

TEST_F(FaultIommuFixture, LogOverflowKeepsOldestEntries)
{
    const iommu::DomainId d = mmu.createDomain();
    mmu.setFaultLogCapacity(4);
    for (unsigned i = 0; i < 6; ++i)
        EXPECT_TRUE(
            mmu.translate(d, 0x10000 + i * 0x1000, false).fault);

    EXPECT_EQ(mmu.faultLog().size(), 4u);
    EXPECT_EQ(mmu.faultLogOverflows(), 2u);
    EXPECT_EQ(mmu.faults(), 6u); // counters see every fault
    EXPECT_EQ(mmu.faultLog().front().iova, 0x10000u);

    mmu.clearFaultLog();
    EXPECT_TRUE(mmu.faultLog().empty());
    EXPECT_EQ(mmu.faultLogOverflows(), 0u);
}

TEST_F(FaultIommuFixture, LogOverflowAccountingResumesAfterClear)
{
    const iommu::DomainId d = mmu.createDomain();
    mmu.setFaultLogCapacity(2);
    for (unsigned i = 0; i < 5; ++i)
        EXPECT_TRUE(
            mmu.translate(d, 0x30000 + i * 0x1000, false).fault);
    EXPECT_EQ(mmu.faultLog().size(), 2u);
    EXPECT_EQ(mmu.faultLogOverflows(), 3u);

    // clearFaultLog() models the driver draining the recording
    // registers: the log refills from empty and the overflow counter
    // restarts — it is per-drain accounting, not a lifetime total.
    mmu.clearFaultLog();
    for (unsigned i = 0; i < 3; ++i)
        EXPECT_TRUE(
            mmu.translate(d, 0x40000 + i * 0x1000, false).fault);
    EXPECT_EQ(mmu.faultLog().size(), 2u);
    EXPECT_EQ(mmu.faultLogOverflows(), 1u);
    EXPECT_EQ(mmu.faultLog().front().iova, 0x40000u);
    // The aggregate counters keep the full history.
    EXPECT_EQ(mmu.faults(), 8u);
}

TEST_F(FaultIommuFixture, CallbackFiresEvenPastOverflow)
{
    const iommu::DomainId d = mmu.createDomain();
    mmu.setFaultLogCapacity(1);
    unsigned calls = 0;
    iommu::Iova last = 0;
    mmu.onFault([&](const iommu::FaultRecord &r) {
        ++calls;
        last = r.iova;
    });
    for (unsigned i = 0; i < 3; ++i)
        mmu.translate(d, 0x20000 + i * 0x1000, true);
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(last, 0x22000u);
}

TEST_F(FaultIommuFixture, QuarantineAndResetRoundTrip)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    mmu.setQuarantineThreshold(3);

    for (unsigned i = 0; i < 3; ++i)
        EXPECT_TRUE(
            mmu.translate(d, 0x90000 + i * 0x1000, false).fault);
    EXPECT_TRUE(mmu.quarantined(d));

    // Even a perfectly valid mapping faults while quarantined.
    const iommu::TranslateResult t = mmu.translate(d, 0x1000, false);
    EXPECT_TRUE(t.fault);
    EXPECT_EQ(mmu.faultLog().back().reason,
              iommu::FaultReason::Quarantined);
    EXPECT_EQ(mmu.domainFaults(d), 4u);

    mmu.resetDomain(d);
    EXPECT_FALSE(mmu.quarantined(d));
    EXPECT_EQ(mmu.domainFaults(d), 0u);
    EXPECT_TRUE(mmu.translate(d, 0x1800, false).ok);
}

TEST_F(FaultIommuFixture, QuarantineDoesNotLeakAcrossDomains)
{
    const iommu::DomainId bad = mmu.createDomain();
    const iommu::DomainId good = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(good, 0x1000, 0x5000, iommu::PermRW));
    mmu.setQuarantineThreshold(2);
    mmu.translate(bad, 0xa0000, false);
    mmu.translate(bad, 0xa1000, false);
    EXPECT_TRUE(mmu.quarantined(bad));
    EXPECT_FALSE(mmu.quarantined(good));
    EXPECT_TRUE(mmu.translate(good, 0x1000, true).ok);
}

TEST_F(FaultIommuFixture, InjectedTranslateFaultIsAttributed)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ctx.faults.enable(11);
    ctx.faults.failNth(sim::FaultSite::DmaTranslate, 1);
    EXPECT_TRUE(mmu.translate(d, 0x1000, false).fault);
    ASSERT_EQ(mmu.faultLog().size(), 1u);
    EXPECT_EQ(mmu.faultLog()[0].reason, iommu::FaultReason::Injected);
    // The transient fault is gone on retry.
    EXPECT_TRUE(mmu.translate(d, 0x1000, false).ok);
}

TEST_F(FaultIommuFixture, InjectedInvalDropKeepsStaleEntry)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.translate(d, 0x1000, false).ok); // fill IOTLB
    ASSERT_NE(mmu.iotlb().lookup(d, 0x1000), nullptr);

    ctx.faults.enable(13);
    ctx.faults.failNth(sim::FaultSite::IommuInval, 1);
    mmu.backend().syncInvalidate(ctx.machine.core(0), 0, d, 0x1000,
                                 4096);
    // The dropped command left the stale entry behind...
    EXPECT_NE(mmu.iotlb().lookup(d, 0x1000), nullptr);
    // ...and the next (uninjected) invalidation clears it.
    mmu.backend().syncInvalidate(ctx.machine.core(0), 0, d, 0x1000,
                                 4096);
    EXPECT_EQ(mmu.iotlb().lookup(d, 0x1000), nullptr);
}

// ---------------------------------------------------------------------
// Per-domain deferred flush (cross-domain IOTLB pollution regression)
// ---------------------------------------------------------------------

TEST(DeferredFlush, ScopedToDomainsWithPendingUnmaps)
{
    SystemParams p;
    p.scheme = dma::SchemeKind::Deferred;
    System sys(p);
    NicDevice a(sys, "nic_a");
    NicDevice b(sys, "nic_b");
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);

    const mem::Pa pa_a = mem::pfnToPa(sys.pageAlloc.allocPages(0, 0));
    const mem::Pa pa_b = mem::pfnToPa(sys.pageAlloc.allocPages(0, 0));
    const iommu::Iova ia =
        sys.dmaApi->map(cpu, a, pa_a, 4096, dma::Dir::FromDevice);
    const iommu::Iova ib =
        sys.dmaApi->map(cpu, b, pa_b, 4096, dma::Dir::FromDevice);

    ASSERT_TRUE(a.dmaTouch(cpu.time, ia, 64, true).ok);
    ASSERT_TRUE(b.dmaTouch(cpu.time, ib, 64, true).ok);
    ASSERT_NE(sys.mmu.iotlb().lookup(a.domain(), ia), nullptr);

    // B unmaps and its deferred flush lands: A's warm entry — a
    // different domain with nothing pending — must survive.
    sys.dmaApi->unmap(cpu, b, ib, 4096, dma::Dir::FromDevice);
    sys.dmaApi->flushPending(cpu);
    EXPECT_NE(sys.mmu.iotlb().lookup(a.domain(), ia), nullptr);
    EXPECT_EQ(sys.mmu.iotlb().lookup(b.domain(), ib), nullptr);
}

// ---------------------------------------------------------------------
// TCP-lite recovery: byte-exact healing under every scheme
// ---------------------------------------------------------------------

namespace {

struct FaultNetFixture : ::testing::TestWithParam<dma::SchemeKind>
{
    FaultNetFixture()
    {
        SystemParams p;
        p.scheme = GetParam();
        sys = std::make_unique<System>(p);
        nic = std::make_unique<NicDevice>(*sys, "mlx5_0");
        stack = std::make_unique<TcpStack>(*sys, *nic);
    }

    sim::CpuCursor
    cpu(sim::CoreId core = 0)
    {
        return sim::CpuCursor(sys->ctx.machine.core(core),
                              sys->ctx.now());
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<NicDevice> nic;
    std::unique_ptr<TcpStack> stack;
};

std::string
schemeName(const ::testing::TestParamInfo<dma::SchemeKind> &info)
{
    std::string n = dma::schemeKindName(info.param);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

TEST_P(FaultNetFixture, RetransmitHealsDroppedSegmentsByteExactly)
{
    constexpr std::uint32_t kSeg = 4096;
    constexpr unsigned kSegs = 8;

    // Deterministic drops: the 2nd and 5th RX DMA attempts are lost.
    sys->ctx.faults.enable(7);
    sys->ctx.faults.failNth(sim::FaultSite::NicRx, 2);
    sys->ctx.faults.failNth(sim::FaultSite::NicRx, 5);

    auto c = cpu();
    std::vector<std::uint8_t> expected, delivered;
    unsigned drops = 0;
    RxBuffer buf = stack->driver.allocRxBuffer(c, kSeg);
    for (unsigned s = 0; s < kSegs; ++s) {
        std::vector<std::uint8_t> wire(kSeg);
        for (std::size_t i = 0; i < wire.size(); ++i)
            wire[i] = std::uint8_t(s * 31 + i * 7 + 1);
        expected.insert(expected.end(), wire.begin(), wire.end());

        // Driver RX loop: on a faulted DMA the buffer is re-posted and
        // the peer retransmits the same segment.
        for (unsigned attempt = 0;; ++attempt) {
            ASSERT_LT(attempt, 5u) << "retransmit did not converge";
            const dma::DmaOutcome out = nic->transferSegment(
                c.time, 0, Traffic::Rx, buf.seg.dmaAddr, kSeg);
            if (out.fault) {
                ++drops;
                continue;
            }
            // The paced transfer is timing-only; land the payload.
            ASSERT_TRUE(nic->dmaWrite(c.time, buf.seg.dmaAddr,
                                      wire.data(), kSeg)
                            .ok);
            break;
        }

        SkBuff skb = stack->driver.rxBuild(c, buf, kSeg);
        buf = stack->driver.allocRxBuffer(c, kSeg); // ring refill
        std::vector<std::uint8_t> out(kSeg);
        sys->accessor().access(c, skb, 0, kSeg, out.data());
        delivered.insert(delivered.end(), out.begin(), out.end());
        sys->accessor().freeSkb(c, skb);
    }

    EXPECT_EQ(drops, 2u);
    // Every payload byte arrives exactly once, in order, unmodified.
    EXPECT_EQ(delivered, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, FaultNetFixture,
    ::testing::Values(dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
                      dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
                      dma::SchemeKind::Damn),
    schemeName);

// ---------------------------------------------------------------------
// StreamEngine under a fault storm: recovery + bit-exact reproducibility
// ---------------------------------------------------------------------

namespace {

work::NetperfRun
runStorm()
{
    work::NetperfOpts opts =
        work::singleCoreOpts(dma::SchemeKind::Deferred,
                             work::NetMode::Rx);
    opts.runWindow.warmupNs = 2 * sim::kNsPerMs;
    opts.runWindow.measureNs = 10 * sim::kNsPerMs;
    return work::runNetperf(opts, [](work::NetperfRun &r) {
        r.sys->ctx.faults.enable(42);
        r.sys->ctx.faults.setProbability(sim::FaultSite::NicRx, 0.01);
    });
}

} // namespace

TEST(StreamRecovery, FaultStormHealsAndIsBitIdenticalAcrossRuns)
{
    const work::NetperfRun a = runStorm();
    const work::NetperfRun b = runStorm();

    EXPECT_GT(a.res.drops, 0u);
    EXPECT_EQ(a.res.retransmits, a.res.drops);
    EXPECT_EQ(a.res.failedFlows, 0u);
    EXPECT_GT(a.res.totalGbps, 0.0);

    // Same seed, same configuration: the whole run must reproduce
    // bit-for-bit, drops included.
    ASSERT_EQ(a.res.flows.size(), b.res.flows.size());
    for (std::size_t i = 0; i < a.res.flows.size(); ++i) {
        EXPECT_EQ(a.res.flows[i].segments, b.res.flows[i].segments);
        EXPECT_EQ(a.res.flows[i].bytes, b.res.flows[i].bytes);
        EXPECT_EQ(a.res.flows[i].drops, b.res.flows[i].drops);
        EXPECT_EQ(a.res.flows[i].retransmits,
                  b.res.flows[i].retransmits);
    }
    EXPECT_DOUBLE_EQ(a.res.totalGbps, b.res.totalGbps);
}

TEST(StreamRecovery, TxDropsAreRetransmitted)
{
    work::NetperfOpts opts = work::singleCoreOpts(
        dma::SchemeKind::Deferred, work::NetMode::Tx);
    opts.runWindow.warmupNs = 2 * sim::kNsPerMs;
    opts.runWindow.measureNs = 10 * sim::kNsPerMs;
    const work::NetperfRun r =
        work::runNetperf(opts, [](work::NetperfRun &run) {
            run.sys->ctx.faults.enable(42);
            run.sys->ctx.faults.setProbability(sim::FaultSite::NicTx,
                                               0.005);
        });
    EXPECT_GT(r.res.drops, 0u);
    EXPECT_EQ(r.res.retransmits, r.res.drops);
    EXPECT_EQ(r.res.failedFlows, 0u);
}

// ---------------------------------------------------------------------
// NVMe command timeout + bounded retry
// ---------------------------------------------------------------------

namespace {

struct NvmeFaultFixture : ::testing::Test
{
    NvmeFaultFixture()
    {
        SystemParams p;
        p.scheme = dma::SchemeKind::Strict;
        sys = std::make_unique<System>(p);
        dev = std::make_unique<nvme::NvmeDevice>(sys->ctx, "nvme0",
                                                 sys->mmu, sys->phys);
        sim::CpuCursor cpu(sys->ctx.machine.core(0), 0);
        pa = mem::pfnToPa(sys->pageAlloc.allocPages(0, 0));
        dma = sys->dmaApi->map(cpu, *dev, pa, 4096,
                               dma::Dir::FromDevice);
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<nvme::NvmeDevice> dev;
    mem::Pa pa = 0;
    iommu::Iova dma = 0;
};

} // namespace

TEST_F(NvmeFaultFixture, SingleDropTimesOutAndRetries)
{
    sys->ctx.faults.enable(3);
    sys->ctx.faults.failNth(sim::FaultSite::NvmeCmd, 1);
    const nvme::NvmeCmdResult r = dev->submitRead(0, dma, 4096);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.timeouts, 1u);
    // The lost command costs at least one full timeout.
    EXPECT_GE(r.completes, sys->ctx.cost.nvmeTimeoutNs);
    EXPECT_EQ(dev->completedIos(), 1u);
    EXPECT_EQ(dev->cmdDrops(), 1u);
}

TEST_F(NvmeFaultFixture, RetryExhaustionSurfacesErrorInsteadOfHanging)
{
    sys->ctx.faults.enable(3);
    sys->ctx.faults.setProbability(sim::FaultSite::NvmeCmd, 1.0);
    const nvme::NvmeCmdResult r = dev->submitRead(0, dma, 4096);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.attempts, sys->ctx.cost.nvmeMaxRetries + 1);
    EXPECT_EQ(r.timeouts, r.attempts);
    EXPECT_EQ(dev->completedIos(), 0u);
    EXPECT_EQ(dev->failedCmds(), 1u);
    // Virtual time moved past every timeout: the submitter got an
    // answer in bounded time, not a hang.
    EXPECT_GE(r.completes,
              r.attempts * sys->ctx.cost.nvmeTimeoutNs);
}

// ---------------------------------------------------------------------
// Attack attribution through the fault log
// ---------------------------------------------------------------------

TEST(AttackAttribution, StrictBlocksStaleWindowWithMatchingRecords)
{
    const work::AttackReport rep =
        work::runAttacks(dma::SchemeKind::Strict);
    EXPECT_FALSE(rep.staleWindowTheft);
    ASSERT_FALSE(rep.staleWindowFaults.empty());
    for (const iommu::FaultRecord &r : rep.staleWindowFaults) {
        EXPECT_EQ(r.domain, rep.attackerDomain);
        EXPECT_EQ(r.reason, iommu::FaultReason::NotPresent);
        EXPECT_FALSE(r.isWrite); // the attacker was *reading* secrets
    }
}

TEST(AttackAttribution, DeferredStaleWindowTheftLeavesNoFaultTrail)
{
    const work::AttackReport rep =
        work::runAttacks(dma::SchemeKind::Deferred);
    // The vulnerability window: the theft succeeds and, because the
    // stale IOTLB entry translated "successfully", no fault records it.
    EXPECT_TRUE(rep.staleWindowTheft);
    EXPECT_TRUE(rep.staleWindowFaults.empty());
}

TEST(AttackAttribution, AttackerDeviceMarkFiltersOwnDomain)
{
    SystemParams p;
    p.scheme = dma::SchemeKind::Strict;
    System sys(p);
    work::AttackerDevice evil(sys.ctx, "evil", sys.mmu, sys.phys);
    NicDevice good(sys, "good");

    evil.markFaults();
    std::uint8_t scratch[64];
    good.dmaRead(0, 0xdead000, scratch, sizeof(scratch));
    evil.dmaRead(0, 0xbeef000, scratch, sizeof(scratch));

    const auto recs = evil.faultsSinceMark();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].domain, evil.domain());
    EXPECT_EQ(recs[0].iova, 0xbeef000u);
    EXPECT_EQ(recs[0].reason, iommu::FaultReason::NotPresent);
    EXPECT_FALSE(recs[0].isWrite);
    EXPECT_EQ(sys.mmu.domainFaults(evil.domain()), 1u);
}
