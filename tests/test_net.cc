/**
 * @file
 * Unit tests for the networking substrate: skbuffs, the accessor API
 * and TOCTTOU guard, the driver, the TCP-lite stack, and the NIC
 * model.
 */

#include <gtest/gtest.h>

#include "net/stream.hh"

using namespace damn;
using namespace damn::net;

namespace {

struct NetFixture : ::testing::TestWithParam<dma::SchemeKind>
{
    NetFixture()
    {
        SystemParams p;
        p.scheme = GetParam();
        sys = std::make_unique<System>(p);
        nic = std::make_unique<NicDevice>(*sys, "mlx5_0");
        stack = std::make_unique<TcpStack>(*sys, *nic);
    }

    sim::CpuCursor
    cpu(sim::CoreId core = 0)
    {
        return sim::CpuCursor(sys->ctx.machine.core(core),
                              sys->ctx.now());
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<NicDevice> nic;
    std::unique_ptr<TcpStack> stack;
};

std::string
schemeName(const ::testing::TestParamInfo<dma::SchemeKind> &info)
{
    std::string n = dma::schemeKindName(info.param);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// SkBuff basics
// ---------------------------------------------------------------------

TEST(SkBuff, LenSumsSegments)
{
    SkBuff skb;
    skb.append({0x1000, 100, SegOwner::Borrowed, 0, false, 0, 0, false,
                dma::Dir::FromDevice});
    skb.append({0x2000, 200, SegOwner::Borrowed, 0, false, 0, 0, false,
                dma::Dir::FromDevice});
    EXPECT_EQ(skb.len(), 300u);
}

// ---------------------------------------------------------------------
// Driver + stack across all schemes
// ---------------------------------------------------------------------

TEST_P(NetFixture, RxBufferAllocatedAndMapped)
{
    auto c = cpu();
    RxBuffer buf = stack->driver.allocRxBuffer(c, 16384);
    EXPECT_TRUE(buf.seg.dmaMapped);
    EXPECT_EQ(buf.seg.len, 16384u);
    if (sys->damnMode()) {
        EXPECT_EQ(buf.seg.owner, SegOwner::Damn);
        EXPECT_TRUE(core::isDamnIova(buf.seg.dmaAddr));
    } else {
        EXPECT_EQ(buf.seg.owner, SegOwner::Pages);
    }
    // The device can DMA into the posted buffer under every scheme.
    EXPECT_TRUE(
        nic->dmaTouch(c.time, buf.seg.dmaAddr, 16384, true).ok);
    SkBuff skb = stack->driver.rxBuild(c, buf, 16384);
    sys->accessor().freeSkb(c, skb);
}

TEST_P(NetFixture, RxEndToEndDataIntegrity)
{
    auto c = cpu();
    RxBuffer buf = stack->driver.allocRxBuffer(c, 8192);
    std::vector<std::uint8_t> wire(8192);
    for (std::size_t i = 0; i < wire.size(); ++i)
        wire[i] = std::uint8_t(i * 13 + 1);
    ASSERT_TRUE(
        nic->dmaWrite(c.time, buf.seg.dmaAddr, wire.data(), 8192).ok);

    SkBuff skb = stack->driver.rxBuild(c, buf, 8192);
    stack->rxSegment(c, skb, 1.0);

    // What the application reads must be exactly what was on the wire,
    // under every protection scheme.
    std::vector<std::uint8_t> out(8192);
    sys->accessor().access(c, skb, 0, 8192, out.data());
    EXPECT_EQ(out, wire);
    sys->accessor().freeSkb(c, skb);
}

TEST_P(NetFixture, TxSkbLayout)
{
    auto c = cpu();
    SkBuff skb = stack->txBuild(c, 64 * 1024, 1.0);
    // head + 4 x 16 KiB frags.
    ASSERT_EQ(skb.segs.size(), 5u);
    EXPECT_EQ(skb.segs[0].len, TcpStack::kTxHeadBytes);
    for (int i = 1; i <= 4; ++i)
        EXPECT_EQ(skb.segs[i].len, TcpStack::kTxFragBytes);
    for (const auto &seg : skb.segs)
        EXPECT_TRUE(seg.dmaMapped);
    EXPECT_EQ(stack->driver.sgOf(skb).size(), 5u);
    stack->txComplete(c, skb, 1.0);
}

TEST_P(NetFixture, TxSegmentReadableByDevice)
{
    auto c = cpu();
    SkBuff skb = stack->txBuild(c, 32 * 1024, 1.0);
    for (const auto &[iova, len] : stack->driver.sgOf(skb))
        EXPECT_TRUE(nic->dmaTouch(c.time, iova, len, false).ok);
    stack->txComplete(c, skb, 1.0);
}

TEST_P(NetFixture, TxCompleteReleasesEverything)
{
    auto c = cpu();
    const std::uint64_t heap_before = sys->heap.liveObjects();
    SkBuff skb = stack->txBuild(c, 64 * 1024, 1.0);
    stack->txComplete(c, skb, 1.0);
    EXPECT_TRUE(skb.segs.empty());
    EXPECT_EQ(sys->heap.liveObjects(), heap_before);
}

TEST_P(NetFixture, NetfilterHooksRunInOrder)
{
    auto c = cpu();
    std::vector<int> order;
    stack->addHook([&](sim::CpuCursor &, SkBuff &, SkbAccessor &) {
        order.push_back(1);
    });
    stack->addHook([&](sim::CpuCursor &, SkBuff &, SkbAccessor &) {
        order.push_back(2);
    });
    RxBuffer buf = stack->driver.allocRxBuffer(c, 4096);
    nic->dmaTouch(c.time, buf.seg.dmaAddr, 4096, true);
    SkBuff skb = stack->driver.rxBuild(c, buf, 4096);
    stack->rxSegment(c, skb, 1.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    sys->accessor().freeSkb(c, skb);
    stack->clearHooks();
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, NetFixture,
    ::testing::Values(dma::SchemeKind::IommuOff, dma::SchemeKind::Strict,
                      dma::SchemeKind::Deferred, dma::SchemeKind::Shadow,
                      dma::SchemeKind::Damn),
    schemeName);

// ---------------------------------------------------------------------
// TOCTTOU guard specifics (DAMN system)
// ---------------------------------------------------------------------

namespace {

struct GuardFixture : ::testing::Test
{
    GuardFixture()
    {
        SystemParams p;
        p.scheme = dma::SchemeKind::Damn;
        sys = std::make_unique<System>(p);
        nic = std::make_unique<NicDevice>(*sys, "mlx5_0");
        stack = std::make_unique<TcpStack>(*sys, *nic);
    }

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(sys->ctx.machine.core(0), sys->ctx.now());
    }

    /** A received skb backed by device-writable DAMN memory. */
    SkBuff
    rxSkb(sim::CpuCursor &c, std::uint32_t len, std::uint8_t fill)
    {
        RxBuffer buf = stack->driver.allocRxBuffer(c, len);
        std::vector<std::uint8_t> wire(len, fill);
        nic->dmaWrite(c.time, buf.seg.dmaAddr, wire.data(), len);
        return stack->driver.rxBuild(c, buf, len);
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<NicDevice> nic;
    std::unique_ptr<TcpStack> stack;
};

} // namespace

TEST_F(GuardFixture, FirstAccessCopiesRange)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 4096, 0x11);
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 0, 128), 128u);
    EXPECT_EQ(sys->accessor().securedBytes(), 128u);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, SecondAccessIsFree)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 4096, 0x11);
    sys->accessor().secureRange(c, skb, 0, 128);
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 0, 128), 0u)
        << "already-secured bytes must not be copied again";
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 64, 64), 0u);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, SecuredBytesImmuneToDeviceWrites)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 2048, 0x33);
    const iommu::Iova dma = sys->damn->iovaOf(skb.segs[0].pa);

    std::vector<std::uint8_t> before(256);
    sys->accessor().access(c, skb, 0, 256, before.data());

    // Device rewrites the whole buffer (it is permanently writable).
    std::vector<std::uint8_t> forged(2048, 0xEE);
    ASSERT_TRUE(nic->dmaWrite(c.time, dma, forged.data(), 2048).ok);

    std::vector<std::uint8_t> after(256);
    sys->accessor().access(c, skb, 0, 256, after.data());
    EXPECT_EQ(after, before) << "OS view changed under its feet";

    // Unaccessed bytes *do* change — that is fine (indistinguishable
    // from a valid DMA while mapped).
    std::vector<std::uint8_t> tail(16);
    sys->accessor().access(c, skb, 1024, 16, tail.data());
    EXPECT_EQ(tail[0], 0xEE);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, MiddleRangeSplitsSegment)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 4096, 0x44);
    sys->accessor().secureRange(c, skb, 1000, 500);
    // Content must read back seamlessly across the splits.
    std::vector<std::uint8_t> out(4096);
    sys->accessor().access(c, skb, 0, 4096, out.data());
    for (const std::uint8_t b : out)
        ASSERT_EQ(b, 0x44);
    EXPECT_EQ(skb.len(), 4096u);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, OverlappingRangesCopyOnlyFreshBytes)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 4096, 0x55);
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 0, 200), 200u);
    // [100, 400): only [200, 400) is new.
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 100, 300), 200u);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, LargeRangeUsesPageBuffer)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 32768, 0x66);
    EXPECT_EQ(sys->accessor().secureRange(c, skb, 0, 32768), 32768u);
    std::vector<std::uint8_t> out(32768);
    sys->accessor().access(c, skb, 0, 32768, out.data());
    for (const std::uint8_t b : out)
        ASSERT_EQ(b, 0x66);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, TxBuffersAreNotSecured)
{
    // Device-readable (TX) memory cannot be modified by the device;
    // the guard must not copy it.
    auto c = cpu();
    SkBuff skb = stack->txBuild(c, 16384, 1.0);
    const std::uint64_t before = sys->accessor().securedBytes();
    sys->accessor().access(c, skb, 0, 1024);
    EXPECT_EQ(sys->accessor().securedBytes(), before);
    stack->txComplete(c, skb, 1.0);
}

TEST_F(GuardFixture, HeaderSecuredDuringRxProcessing)
{
    auto c = cpu();
    SkBuff skb = rxSkb(c, 16384, 0x77);
    stack->rxSegment(c, skb, 1.0);
    // Only the header-sized prefix was copied.
    EXPECT_EQ(sys->accessor().securedBytes(), skb.headerLen);
    sys->accessor().freeSkb(c, skb);
}

TEST_F(GuardFixture, FreeSkbReleasesBackingChunkOnce)
{
    auto c = cpu();
    const std::uint64_t owned = sys->damn->ownedBytes();
    for (int round = 0; round < 50; ++round) {
        SkBuff skb = rxSkb(c, 4096, 0x12);
        sys->accessor().secureRange(c, skb, 100, 1000);
        sys->accessor().freeSkb(c, skb);
    }
    // No chunk leak: owned memory is bounded by the cache prefill.
    EXPECT_LE(sys->damn->ownedBytes(), owned + 17 * 65536);
    EXPECT_EQ(sys->heap.liveObjects(), 0u);
}

// ---------------------------------------------------------------------
// NIC model
// ---------------------------------------------------------------------

TEST(NicModel, WireBytesAddsFrameOverhead)
{
    SystemParams p;
    System sys(p);
    NicDevice nic(sys, "mlx5_0");
    const auto &c = sys.ctx.cost;
    // 64 KiB at 9000 MTU = 8 frames.
    EXPECT_EQ(nic.wireBytes(65536),
              65536 + 8 * c.perFrameOverheadBytes);
    EXPECT_EQ(nic.wireBytes(1000), 1000 + c.perFrameOverheadBytes);
}

TEST(NicModel, LineRatePacing)
{
    SystemParams p;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    auto cpu = sim::CpuCursor(sys.ctx.machine.core(0), 0);
    RxBuffer buf = stack.driver.allocRxBuffer(cpu, 65536);

    // Streaming 100 segments through one port cannot beat line rate.
    sim::TimeNs done = 0;
    for (int i = 0; i < 100; ++i) {
        done = nic.transferSegment(0, 0, Traffic::Rx, buf.seg.dmaAddr,
                                   65536).completes;
    }
    const double gbps = 100.0 * 65536 * 8 / double(done);
    EXPECT_LE(gbps, sys.ctx.cost.nicPortGbps);
    EXPECT_GT(gbps, sys.ctx.cost.nicPortGbps * 0.8);
}

TEST(NicModel, PcieSharedAcrossPorts)
{
    SystemParams p;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    auto cpu = sim::CpuCursor(sys.ctx.machine.core(0), 0);
    RxBuffer buf = stack.driver.allocRxBuffer(cpu, 65536);

    // Both ports together are limited by the PCIe ceiling, not 2x port.
    sim::TimeNs done = 0;
    for (int i = 0; i < 200; ++i) {
        done = nic.transferSegment(0, i % 2, Traffic::Rx,
                                   buf.seg.dmaAddr, 65536).completes;
    }
    const double gbps = 200.0 * 65536 * 8 / double(done);
    EXPECT_LE(gbps, sys.ctx.cost.pcieGbps * 1.02);
}

// ---------------------------------------------------------------------
// StreamEngine closed loop
// ---------------------------------------------------------------------

TEST(StreamEngine, SingleRxFlowReachesLineRate)
{
    SystemParams p;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    StreamConfig sc;
    sc.warmupNs = 5 * sim::kNsPerMs;
    sc.measureNs = 20 * sim::kNsPerMs;
    StreamEngine eng(sys, nic, stack, sc);
    FlowSpec f;
    f.kind = Traffic::Rx;
    f.core = 0;
    f.segBytes = 65536;
    eng.addFlow(f);
    const StreamResult r = eng.run();
    EXPECT_GT(r.rxGbps, 50.0);
    EXPECT_LE(r.rxGbps, 100.0);
    EXPECT_EQ(r.txGbps, 0.0);
}

TEST(StreamEngine, TxFlowIsCpuBound)
{
    SystemParams p;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    StreamConfig sc;
    sc.warmupNs = 5 * sim::kNsPerMs;
    sc.measureNs = 20 * sim::kNsPerMs;
    StreamEngine eng(sys, nic, stack, sc);
    FlowSpec f;
    f.kind = Traffic::Tx;
    f.core = 3;
    f.segBytes = 16384;
    eng.addFlow(f);
    const StreamResult r = eng.run();
    EXPECT_GT(r.txGbps, 5.0);
    // The flow's core is saturated; others are idle.
    EXPECT_NEAR(sys.ctx.machine.coreUtilizationPct(3, sc.measureNs),
                100.0, 2.0);
    EXPECT_LT(sys.ctx.machine.coreUtilizationPct(0, sc.measureNs), 1.0);
}

TEST(StreamEngine, PerFlowResultsSumToTotal)
{
    SystemParams p;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    TcpStack stack(sys, nic);
    StreamConfig sc;
    sc.warmupNs = 2 * sim::kNsPerMs;
    sc.measureNs = 10 * sim::kNsPerMs;
    StreamEngine eng(sys, nic, stack, sc);
    for (unsigned i = 0; i < 4; ++i) {
        FlowSpec f;
        f.kind = i % 2 ? Traffic::Tx : Traffic::Rx;
        f.core = i;
        f.port = i % 2;
        f.segBytes = 16384;
        eng.addFlow(f);
    }
    const StreamResult r = eng.run();
    double sum = 0;
    for (const auto &fr : r.flows)
        sum += fr.gbps;
    EXPECT_NEAR(sum, r.totalGbps, 1e-6);
    EXPECT_NEAR(r.rxGbps + r.txGbps, r.totalGbps, 1e-6);
}
