/**
 * @file
 * Unit tests for the IOMMU substrate: I/O page tables, IOTLB,
 * invalidation queue, IOVA allocator, translation facade.
 */

#include <gtest/gtest.h>

#include "iommu/backend_smmu.hh"
#include "iommu/backend_vtd.hh"
#include "iommu/iommu.hh"
#include "iommu/iova_alloc.hh"
#include "sim/fault_injector.hh"

using namespace damn;
using namespace damn::iommu;

// ---------------------------------------------------------------------
// IoPageTable
// ---------------------------------------------------------------------

TEST(IoPageTable, MapWalkUnmap)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.map(0x4000, 0x1000, PermRead));
    const WalkResult w = pt.walk(0x4123);
    EXPECT_TRUE(w.present);
    EXPECT_EQ(w.pa, 0x1123u);
    EXPECT_EQ(w.perm, std::uint32_t(PermRead));
    EXPECT_FALSE(w.huge);
    EXPECT_TRUE(pt.unmap(0x4000));
    EXPECT_FALSE(pt.walk(0x4123).present);
}

TEST(IoPageTable, DoubleMapRefused)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.map(0x4000, 0x1000, PermRead));
    EXPECT_FALSE(pt.map(0x4000, 0x2000, PermRead));
}

TEST(IoPageTable, UnmapMissingReturnsFalse)
{
    IoPageTable pt;
    EXPECT_FALSE(pt.unmap(0x9000));
}

TEST(IoPageTable, PermutationsPreserved)
{
    IoPageTable pt;
    pt.map(0x1000, 0xa000, PermRead);
    pt.map(0x2000, 0xb000, PermWrite);
    pt.map(0x3000, 0xc000, PermRW);
    EXPECT_EQ(pt.walk(0x1000).perm, std::uint32_t(PermRead));
    EXPECT_EQ(pt.walk(0x2000).perm, std::uint32_t(PermWrite));
    EXPECT_EQ(pt.walk(0x3000).perm, std::uint32_t(PermRW));
}

TEST(IoPageTable, SparseHighAddresses)
{
    IoPageTable pt;
    const Iova high = (1ull << 47) | 0x123456000;
    EXPECT_TRUE(pt.map(high, 0x7000, PermRW));
    EXPECT_TRUE(pt.walk(high | 0xfff).present);
    EXPECT_EQ(pt.walk(high | 0xfff).pa, 0x7fffu);
}

TEST(IoPageTable, MappedPagesAccounting)
{
    IoPageTable pt;
    for (unsigned i = 0; i < 16; ++i)
        pt.map(Iova(i) << 12, mem::Pa(i) << 12, PermRW);
    EXPECT_EQ(pt.mappedPages(), 16u);
    pt.unmap(0);
    EXPECT_EQ(pt.mappedPages(), 15u);
}

TEST(IoPageTable, HugeMapCovers2MiB)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0, 0x200000, PermRW));
    const WalkResult w = pt.walk(0x1fffff);
    EXPECT_TRUE(w.present);
    EXPECT_TRUE(w.huge);
    EXPECT_EQ(w.pa, 0x200000u + 0x1fffff);
    EXPECT_EQ(pt.mappedPages(), 512u);
    EXPECT_TRUE(pt.unmapHuge(0));
    EXPECT_FALSE(pt.walk(0x100000).present);
}

TEST(IoPageTable, HugeAnd4kCoexistInDifferentRegions)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0x400000, 0x200000, PermRead));
    EXPECT_TRUE(pt.map(0x1000, 0x9000, PermWrite));
    EXPECT_TRUE(pt.walk(0x400000).huge);
    EXPECT_FALSE(pt.walk(0x1000).huge);
}

TEST(IoPageTable, HugeDoubleMapRefused)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0, 0x200000, PermRW));
    EXPECT_FALSE(pt.mapHuge(0, 0x400000, PermRW));
}

// ---------------------------------------------------------------------
// Iotlb
// ---------------------------------------------------------------------

namespace {

WalkResult
walkOf(mem::Pa pa, std::uint32_t perm, bool huge = false)
{
    WalkResult w;
    w.present = true;
    w.pa = pa;
    w.perm = perm;
    w.huge = huge;
    return w;
}

} // namespace

TEST(Iotlb, MissThenHit)
{
    Iotlb tlb;
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_EQ(tlb.misses(), 1u);
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    const TlbEntry *e = tlb.lookup(0, 0x5432);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->paPage, 0x9000u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Iotlb, DomainsAreIsolated)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    EXPECT_EQ(tlb.lookup(1, 0x5000), nullptr);
}

TEST(Iotlb, InvalidateRange)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(0, 0x6000, walkOf(0xa000, PermRW));
    tlb.invalidateRange(0, 0x5000, 0x1000);
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_NE(tlb.lookup(0, 0x6000), nullptr);
}

TEST(Iotlb, InvalidateDomainLeavesOthers)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(1, 0x5000, walkOf(0xb000, PermRW));
    tlb.invalidateDomain(0);
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_NE(tlb.lookup(1, 0x5000), nullptr);
}

TEST(Iotlb, InvalidateAll)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(1, 0x7000, walkOf(0xc000, PermRW));
    tlb.invalidateAll();
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_EQ(tlb.lookup(1, 0x7000), nullptr);
}

TEST(Iotlb, LruEvictionWithinSet)
{
    // 1 set x 2 ways: third insert evicts the least recently used.
    Iotlb tlb(1, 2, 1, 1);
    tlb.insert(0, 0x1000, walkOf(0x1000, PermRW));
    tlb.insert(0, 0x2000, walkOf(0x2000, PermRW));
    EXPECT_NE(tlb.lookup(0, 0x1000), nullptr); // touch 0x1000
    tlb.insert(0, 0x3000, walkOf(0x3000, PermRW));
    EXPECT_NE(tlb.lookup(0, 0x1000), nullptr); // survived
    EXPECT_EQ(tlb.lookup(0, 0x2000), nullptr); // evicted
}

TEST(Iotlb, HugeEntryServes4kLookups)
{
    Iotlb tlb;
    tlb.insert(0, 0x0, walkOf(0x200000, PermRW, /*huge=*/true));
    const TlbEntry *e = tlb.lookup(0, 0x12345);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->huge);
    EXPECT_EQ(e->paPage, 0x200000u);
}

TEST(Iotlb, LowBitIndexingConflicts)
{
    // Two IOVAs that differ only in high bits land in the same set —
    // the conflict behaviour DAMN's metadata encoding suffers from.
    Iotlb tlb(4, 1, 1, 1); // 4 sets x 1 way
    const Iova a = 0x0000'0000'5000;
    const Iova b = 0x4000'0000'5000; // same low bits
    tlb.insert(0, a, walkOf(0x1000, PermRW));
    tlb.insert(0, b, walkOf(0x2000, PermRW));
    EXPECT_EQ(tlb.lookup(0, a), nullptr); // evicted by b
    EXPECT_NE(tlb.lookup(0, b), nullptr);
}

TEST(Iotlb, WalkCacheHitsOnRegionReuse)
{
    Iotlb tlb;
    EXPECT_FALSE(tlb.walkCached(0, 0x100000)); // cold
    EXPECT_TRUE(tlb.walkCached(0, 0x150000));  // same 2 MiB region
    EXPECT_FALSE(tlb.walkCached(0, 0x400000)); // different region
}

TEST(Iotlb, WalkCacheThrashesAcrossManyRegions)
{
    Iotlb tlb;
    // Touch 64 distinct regions (cache holds 32): round two misses.
    for (Iova r = 0; r < 64; ++r)
        tlb.walkCached(0, r << 21);
    EXPECT_FALSE(tlb.walkCached(0, 0ull << 21));
}

TEST(Iotlb, HitRateStat)
{
    Iotlb tlb;
    tlb.insert(0, 0x1000, walkOf(0x1000, PermRW));
    tlb.lookup(0, 0x1000);
    tlb.lookup(0, 0x2000);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
    tlb.resetAccounting();
    EXPECT_EQ(tlb.hits() + tlb.misses(), 0u);
}

// ---------------------------------------------------------------------
// IovaAllocator
// ---------------------------------------------------------------------

TEST(IovaAllocator, AllocatesDistinctRanges)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    const Iova y = a.alloc(4);
    EXPECT_NE(x, y);
    EXPECT_GE(y, x + 4 * mem::kPageSize);
}

TEST(IovaAllocator, RecyclesFreedRanges)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    a.free(x, 4);
    EXPECT_EQ(a.alloc(4), x);
    EXPECT_EQ(a.recycled(), 1u);
}

TEST(IovaAllocator, SizeBucketsIndependent)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    a.free(x, 4);
    const Iova y = a.alloc(2); // different bucket: no reuse
    EXPECT_NE(y, x);
}

TEST(IovaAllocator, StaysBelowDamnBit)
{
    IovaAllocator a;
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(a.alloc(16), kDamnIovaBit);
}

TEST(IovaAllocator, PageAligned)
{
    IovaAllocator a;
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.alloc(3) % mem::kPageSize, 0u);
}

TEST(IovaAllocator, ExhaustionReturnsInvalid)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    for (int i = 0; i < 4; ++i)
        EXPECT_NE(a.alloc(4), kInvalidIova);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
    EXPECT_EQ(a.failures(), 1u);
    EXPECT_DOUBLE_EQ(a.utilization(), 1.0);
}

TEST(IovaAllocator, ExhaustionRecoversViaRecycling)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    Iova ranges[4];
    for (Iova &r : ranges)
        r = a.alloc(4);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
    a.free(ranges[2], 4);
    EXPECT_EQ(a.alloc(4), ranges[2]);
    // The freelist hit does not count as a failure.
    EXPECT_EQ(a.failures(), 1u);
}

TEST(IovaAllocator, SplitsLargerRecycledRangeWhenExhausted)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    const Iova big = a.alloc(16);
    a.free(big, 16);
    // Fresh space is gone; a 4-page request must carve the recycled
    // 16-page range instead of failing on a size-bucket miss.
    EXPECT_EQ(a.alloc(4), big);
    EXPECT_EQ(a.splits(), 1u);
    // The 12-page remainder keeps satisfying smaller requests.
    EXPECT_EQ(a.alloc(4), big + 4 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), big + 8 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), big + 12 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
}

TEST(IovaAllocator, OutstandingChurnDoesNotLeak)
{
    IovaAllocator a;
    a.setSpaceBytes(64 * mem::kPageSize);
    for (int round = 0; round < 1000; ++round) {
        const Iova x = a.alloc(4);
        const Iova y = a.alloc(2);
        ASSERT_NE(x, kInvalidIova);
        ASSERT_NE(y, kInvalidIova);
        a.free(x, 4);
        a.free(y, 2);
    }
    EXPECT_EQ(a.outstanding(), 0u);
    EXPECT_EQ(a.failures(), 0u);
    EXPECT_GT(a.recycled(), 0u);
}

TEST(IovaAllocator, ShrinkingSpaceOnlyAffectsFreshAllocations)
{
    IovaAllocator a;
    const Iova x = a.alloc(8);
    a.setSpaceBytes(4 * mem::kPageSize); // below the high-water mark
    a.free(x, 8);
    EXPECT_EQ(a.alloc(8), x); // recycling still works
}

// ---------------------------------------------------------------------
// Iommu facade
// ---------------------------------------------------------------------

namespace {

struct IommuFixture : ::testing::Test
{
    IommuFixture() : ctx(sim::CostModel{}, 1, 2), mmu(ctx) {}

    sim::Context ctx;
    Iommu mmu;
};

} // namespace

TEST_F(IommuFixture, DisabledIsIdentity)
{
    Iommu off(ctx, /*enabled=*/false);
    const DomainId d = off.createDomain();
    const TranslateResult r = off.translate(d, 0x12345678, true);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x12345678u);
    EXPECT_EQ(r.latencyNs, 0u);
}

TEST_F(IommuFixture, MissingMappingFaults)
{
    const DomainId d = mmu.createDomain();
    const TranslateResult r = mmu.translate(d, 0x5000, false);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(mmu.faults(), 1u);
}

TEST_F(IommuFixture, PermissionEnforced)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRead);
    EXPECT_TRUE(mmu.translate(d, 0x5000, false).ok);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, WalkThenTlbHit)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    const TranslateResult miss = mmu.translate(d, 0x5100, true);
    EXPECT_TRUE(miss.ok);
    EXPECT_EQ(miss.pa, 0x9100u);
    EXPECT_GT(miss.latencyNs, 0u);
    const TranslateResult hit = mmu.translate(d, 0x5200, true);
    EXPECT_TRUE(hit.ok);
    EXPECT_EQ(hit.latencyNs, 0u);
}

TEST_F(IommuFixture, StaleTlbServesAfterPteClear)
{
    // The deferred-window mechanism in one test: clearing the PTE does
    // not revoke a cached translation until an IOTLB invalidation.
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true); // cache it
    mmu.unmapPage(d, 0x5000);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).ok) << "stale hit";
    mmu.iotlb().invalidateRange(d, 0x5000, 0x1000);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, PerDomainPageTables)
{
    const DomainId d0 = mmu.createDomain();
    const DomainId d1 = mmu.createDomain();
    mmu.mapPage(d0, 0x5000, 0x9000, PermRW);
    EXPECT_TRUE(mmu.translate(d0, 0x5000, true).ok);
    EXPECT_TRUE(mmu.translate(d1, 0x5000, true).fault);
}

TEST_F(IommuFixture, EverVsCurrentlyMapped)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.mapPage(d, 0x6000, 0xa000, PermRW);
    EXPECT_EQ(mmu.everMappedFrames(), 2u);
    EXPECT_EQ(mmu.currentlyMappedPages(), 2u);
    mmu.unmapPage(d, 0x5000);
    EXPECT_EQ(mmu.everMappedFrames(), 2u); // monotonic
    EXPECT_EQ(mmu.currentlyMappedPages(), 1u);
    // Re-mapping the same frame does not grow the ever set.
    mmu.mapPage(d, 0x7000, 0x9000, PermRW);
    EXPECT_EQ(mmu.everMappedFrames(), 2u);
}

TEST_F(IommuFixture, SyncInvalidateSerializesOnLock)
{
    const DomainId d = mmu.createDomain();
    auto &be = mmu.backend();
    sim::Core &a = ctx.machine.core(0);
    sim::Core &b = ctx.machine.core(1);
    const sim::TimeNs t1 = be.syncInvalidate(a, 0, d, 0x5000, 0x1000);
    EXPECT_EQ(t1, ctx.cost.strictInvalidateNs);
    const sim::TimeNs t2 = be.syncInvalidate(b, 0, d, 0x6000, 0x1000);
    EXPECT_EQ(t2, 2 * ctx.cost.strictInvalidateNs);
}

TEST_F(IommuFixture, BatchedFlushInvalidatesEverything)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true);
    mmu.unmapPage(d, 0x5000);
    mmu.backend().batchedFlush(ctx.machine.core(0), 0, {d});
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, HugeMappingTranslates)
{
    const DomainId d = mmu.createDomain();
    mmu.mapHuge(d, 0, 0x200000, PermRW);
    const TranslateResult r = mmu.translate(d, 0x123456, false);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x200000u + 0x123456);
    EXPECT_EQ(mmu.everMappedFrames(), 512u);
}

// ---------------------------------------------------------------------
// Backend conformance: both hardware models must behave identically
// through the facade (map/unmap/translate/invalidate/fault/detach).
// ---------------------------------------------------------------------

class BackendConformance : public ::testing::TestWithParam<BackendKind>
{
  protected:
    BackendConformance()
        : ctx(sim::CostModel{}, 1, 2), mmu(ctx, true, GetParam())
    {}

    sim::Context ctx;
    Iommu mmu;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformance,
    ::testing::Values(BackendKind::Vtd, BackendKind::SmmuV3),
    [](const ::testing::TestParamInfo<BackendKind> &p) {
        return std::string(backendKindName(p.param)) == "vtd" ? "vtd"
                                                              : "smmuv3";
    });

TEST_P(BackendConformance, ReportsItsKind)
{
    EXPECT_EQ(mmu.backendKind(), GetParam());
    EXPECT_EQ(mmu.backend().kind(), GetParam());
    EXPECT_STREQ(mmu.backend().name(), backendKindName(GetParam()));
}

TEST_P(BackendConformance, MapTranslateUnmap)
{
    const DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x5000, 0x9000, PermRW));
    const TranslateResult r = mmu.translate(d, 0x5123, true);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x9123u);
    ASSERT_TRUE(mmu.unmapPage(d, 0x5000));
    mmu.backend().syncInvalidate(ctx.machine.core(0), 0, d, 0x5000,
                                 4096);
    EXPECT_TRUE(mmu.translate(d, 0x5123, true).fault);
}

TEST_P(BackendConformance, SyncInvalidateRevokesStaleEntry)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true); // cache it
    mmu.unmapPage(d, 0x5000);
    // Stale until a flush covering the range completes: the contract
    // every deferred-window experiment relies on, on both backends.
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).ok);
    const sim::TimeNs done = mmu.backend().syncInvalidate(
        ctx.machine.core(0), 0, d, 0x5000, 4096);
    EXPECT_GT(done, 0u);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_P(BackendConformance, SyncInvalidateRangesRevokesAll)
{
    const DomainId d = mmu.createDomain();
    for (Iova va = 0x5000; va < 0x8000; va += 0x1000) {
        mmu.mapPage(d, va, 0x10000 + va, PermRW);
        mmu.translate(d, va, true);
        mmu.unmapPage(d, va);
    }
    const std::vector<IommuBackend::InvalRange> ranges = {
        {d, 0x5000, 4096}, {d, 0x6000, 4096}, {d, 0x7000, 4096}};
    mmu.backend().syncInvalidateRanges(ctx.machine.core(0), 0, ranges);
    for (Iova va = 0x5000; va < 0x8000; va += 0x1000)
        EXPECT_TRUE(mmu.translate(d, va, true).fault) << va;
}

TEST_P(BackendConformance, BatchedFlushScopedToDomains)
{
    const DomainId a = mmu.createDomain();
    const DomainId b = mmu.createDomain();
    mmu.mapPage(a, 0x5000, 0x9000, PermRW);
    mmu.mapPage(b, 0x5000, 0xa000, PermRW);
    mmu.translate(a, 0x5000, true);
    mmu.translate(b, 0x5000, true);
    mmu.unmapPage(a, 0x5000);
    mmu.backend().batchedFlush(ctx.machine.core(0), 0, {a});
    EXPECT_TRUE(mmu.translate(a, 0x5000, true).fault);
    // Domain b's warm entry must survive a flush scoped to a.
    EXPECT_NE(mmu.iotlb().lookup(b, 0x5000), nullptr);
}

TEST_P(BackendConformance, BatchedFlushAllClearsEverything)
{
    const DomainId a = mmu.createDomain();
    const DomainId b = mmu.createDomain();
    mmu.mapPage(a, 0x5000, 0x9000, PermRW);
    mmu.mapPage(b, 0x6000, 0xa000, PermRW);
    mmu.translate(a, 0x5000, true);
    mmu.translate(b, 0x6000, true);
    mmu.backend().batchedFlushAll(ctx.machine.core(0), 0);
    EXPECT_EQ(mmu.iotlb().lookup(a, 0x5000), nullptr);
    EXPECT_EQ(mmu.iotlb().lookup(b, 0x6000), nullptr);
}

TEST_P(BackendConformance, FaultRecordedOnUnmappedAccess)
{
    const DomainId d = mmu.createDomain();
    EXPECT_TRUE(mmu.translate(d, 0xdead000, true).fault);
    ASSERT_EQ(mmu.faultLog().size(), 1u);
    EXPECT_EQ(mmu.faultLog()[0].domain, d);
    EXPECT_EQ(mmu.faultLog()[0].iova, 0xdead000u);
    EXPECT_EQ(mmu.faultLog()[0].reason, FaultReason::NotPresent);
}

TEST_P(BackendConformance, PermissionFaultParity)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRead);
    EXPECT_TRUE(mmu.translate(d, 0x5000, false).ok);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
    ASSERT_EQ(mmu.faultLog().size(), 1u);
    EXPECT_EQ(mmu.faultLog()[0].reason, FaultReason::Permission);
}

TEST_P(BackendConformance, DetachStopsTranslation)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true);
    mmu.detachDomain(d);
    const TranslateResult r = mmu.translate(d, 0x5000, true);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(mmu.faultLog().back().reason, FaultReason::Detached);
}

TEST_P(BackendConformance, LayoutPartitionsAt48Bits)
{
    // Both modeled configurations implement 48 input bits, so DAMN's
    // encoding and the DMA-API allocator ceiling are identical.
    const AddressLayout lay = mmu.layout();
    EXPECT_EQ(lay.iovaBits, 48u);
    EXPECT_EQ(lay.dmaApiLimit(), Iova{1} << 47);
}

// ---------------------------------------------------------------------
// AddressLayout derivations
// ---------------------------------------------------------------------

TEST(AddressLayout, Default48BitMatchesPaperSplit)
{
    constexpr AddressLayout lay{};
    EXPECT_EQ(lay.tagBit(), 47u);
    EXPECT_EQ(lay.tagMask(), 1ull << 47);
    EXPECT_EQ(lay.cpuShift(), 40u);
    EXPECT_EQ(lay.rightsShift(), 37u);
    EXPECT_EQ(lay.devShift(), 30u);
    EXPECT_EQ(lay.numaShift(), 29u);
    EXPECT_EQ(lay.offsetMask(), (1ull << 29) - 1);
    EXPECT_EQ(lay.denseRegionShift(), 34u);
}

TEST(AddressLayout, NarrowLayoutShiftsWholeEncodingDown)
{
    constexpr AddressLayout lay{40};
    EXPECT_EQ(lay.tagBit(), 39u);
    EXPECT_EQ(lay.dmaApiLimit(), 1ull << 39);
    EXPECT_EQ(lay.cpuShift(), 32u);
    EXPECT_EQ(lay.numaShift(), 21u);
    EXPECT_EQ(lay.offsetMask(), (1ull << 21) - 1);
}

TEST(IovaAllocator, AddressLimitCapsFreshSpace)
{
    IovaAllocator a;
    a.setAddressLimit(kIovaBase + 2 * mem::kPageSize);
    const Iova first = a.alloc(1);
    const Iova second = a.alloc(1);
    EXPECT_NE(first, kInvalidIova);
    EXPECT_NE(second, kInvalidIova);
    EXPECT_EQ(a.alloc(1), kInvalidIova) << "past the backend ceiling";
    a.free(first, 1);
    EXPECT_EQ(a.alloc(1), first) << "recycling still works at the cap";
}

TEST(IovaAllocator, SpaceBytesClampedToAddressLimit)
{
    IovaAllocator a;
    a.setAddressLimit(kIovaBase + (1ull << 20));
    a.setSpaceBytes(1ull << 40); // experiment knob above the ceiling
    EXPECT_EQ(a.spaceBytes(), 1ull << 20);
}

// ---------------------------------------------------------------------
// SMMUv3 specifics: command-queue batching, CMD_SYNC ordering, the
// config cache, and the bounded event queue.
// ---------------------------------------------------------------------

namespace {

struct SmmuFixture : ::testing::Test
{
    SmmuFixture() : SmmuFixture(sim::CostModel{}) {}
    explicit SmmuFixture(const sim::CostModel &cm)
        : ctx(cm, 1, 2), mmu(ctx, true, BackendKind::SmmuV3),
          smmu(dynamic_cast<SmmuV3Backend &>(mmu.backend()))
    {}

    sim::Context ctx;
    Iommu mmu;
    SmmuV3Backend &smmu;
};

} // namespace

TEST_F(SmmuFixture, TlbiIsPendingUntilCmdSync)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true);
    mmu.unmapPage(d, 0x5000);

    smmu.submitTlbiRange(ctx.machine.core(0), 0, d, 0x5000, 4096);
    EXPECT_EQ(smmu.pendingCommands(), 1u);
    // No CMD_SYNC yet: the stale translation is still served.
    EXPECT_NE(mmu.iotlb().lookup(d, 0x5000), nullptr);

    smmu.sync(ctx.machine.core(0), 0);
    EXPECT_EQ(smmu.pendingCommands(), 0u);
    EXPECT_EQ(mmu.iotlb().lookup(d, 0x5000), nullptr);
}

TEST_F(SmmuFixture, CmdSyncCoversEveryPriorCommand)
{
    const DomainId d = mmu.createDomain();
    for (Iova va = 0x5000; va < 0x8000; va += 0x1000) {
        mmu.mapPage(d, va, 0x10000 + va, PermRW);
        mmu.translate(d, va, true);
        mmu.unmapPage(d, va);
        smmu.submitTlbiRange(ctx.machine.core(0), 0, d, va, 4096);
    }
    EXPECT_EQ(smmu.pendingCommands(), 3u);
    smmu.sync(ctx.machine.core(0), 0);
    for (Iova va = 0x5000; va < 0x8000; va += 0x1000)
        EXPECT_EQ(mmu.iotlb().lookup(d, va), nullptr) << va;
}

TEST_F(SmmuFixture, BatchedRangesBeatPerOpSyncs)
{
    const DomainId d = mmu.createDomain();
    const std::vector<IommuBackend::InvalRange> ranges = {
        {d, 0x5000, 4096}, {d, 0x6000, 4096}, {d, 0x7000, 4096}};
    const sim::TimeNs batched = smmu.syncInvalidateRanges(
        ctx.machine.core(0), 0, ranges);

    // Per-op on the second core, serially: each unmap pays its own
    // CMD_SYNC round trip.
    sim::TimeNs serial = 0;
    for (const auto &r : ranges) {
        serial = smmu.syncInvalidate(ctx.machine.core(1), serial,
                                     r.domain, r.iova, r.len);
    }
    EXPECT_LT(batched, serial)
        << "one CMD_SYNC amortizes over the whole batch";
}

TEST_F(SmmuFixture, ProducerLockReleasedBeforeConsumption)
{
    // The architectural asymmetry vs VT-d: with the same per-core
    // arrival times, the second core's batch completes well before
    // two full VT-d invalidation round trips (2 * 1650 ns), because
    // the cmdq lock covers only command production.
    const DomainId d = mmu.createDomain();
    smmu.submitTlbiRange(ctx.machine.core(0), 0, d, 0x5000, 4096);
    const sim::TimeNs other =
        smmu.syncInvalidate(ctx.machine.core(1), 0, d, 0x6000, 4096);
    EXPECT_LT(other, 2 * ctx.cost.strictInvalidateNs);
}

TEST_F(SmmuFixture, ConfigCacheFetchesDescriptorOnce)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    EXPECT_FALSE(smmu.configCached(d));
    const sim::TimeNs first = smmu.walkLatency(d, 0x5000);
    EXPECT_TRUE(smmu.configCached(d));
    const sim::TimeNs second = smmu.walkLatency(d, 0x5000);
    EXPECT_GT(first, second) << "CD fetch + cold walk vs cached walk";
    EXPECT_EQ(ctx.stats.get("smmu.cd_fetches"), 1u);
}

TEST_F(SmmuFixture, DetachDropsStreamTableEntryAndConfigCache)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    smmu.walkLatency(d, 0x5000);
    ASSERT_TRUE(smmu.configCached(d));
    mmu.detachDomain(d);
    EXPECT_FALSE(smmu.configCached(d));
    EXPECT_GE(ctx.stats.get("smmu.cfgi_ste"), 1u);
}

TEST_F(SmmuFixture, InjectedInvalDropKeepsStaleEntries)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true);
    mmu.unmapPage(d, 0x5000);

    ctx.faults.enable(13);
    ctx.faults.failNth(sim::FaultSite::IommuInval, 1);
    smmu.syncInvalidate(ctx.machine.core(0), 0, d, 0x5000, 4096);
    // The dropped CMD_SYNC left the stale entry behind...
    EXPECT_NE(mmu.iotlb().lookup(d, 0x5000), nullptr);
    EXPECT_EQ(ctx.stats.get("iommu.inval_dropped"), 1u);
    // ...and the next (uninjected) one clears it.
    smmu.syncInvalidate(ctx.machine.core(0), 0, d, 0x5000, 4096);
    EXPECT_EQ(mmu.iotlb().lookup(d, 0x5000), nullptr);
}

namespace {

struct SmmuTinyQueues : SmmuFixture
{
    static sim::CostModel
    tiny()
    {
        sim::CostModel cm;
        cm.smmuCmdqDepth = 4;
        cm.smmuEvtqDepth = 2;
        return cm;
    }
    SmmuTinyQueues() : SmmuFixture(tiny()) {}
};

} // namespace

TEST_F(SmmuTinyQueues, FullCommandQueueStallsTheProducer)
{
    const DomainId d = mmu.createDomain();
    sim::TimeNs t = 0;
    for (unsigned i = 0; i < 6; ++i) {
        t = smmu.submitTlbiRange(ctx.machine.core(0), t, d,
                                 0x5000 + Iova(i) * 0x1000, 4096);
    }
    EXPECT_GE(ctx.stats.get("smmu.cmdq_stalls"), 1u)
        << "6 TLBIs through a 4-deep ring must stall at least once";
    smmu.sync(ctx.machine.core(0), t);
}

TEST_F(SmmuTinyQueues, EventQueueBoundedWithOverflowFlag)
{
    const DomainId d = mmu.createDomain();
    for (Iova va = 0; va < 4; ++va)
        EXPECT_TRUE(mmu.translate(d, 0xdead000 + va * 0x1000, true)
                        .fault);
    // Two records fit; two raised the overflow condition.  The
    // driver-side facade log is NOT bounded by the hardware ring.
    EXPECT_EQ(smmu.eventQueue().size(), 2u);
    EXPECT_EQ(smmu.eventQueueOverflows(), 2u);
    EXPECT_EQ(mmu.faultLog().size(), 4u);
    EXPECT_EQ(ctx.stats.get("smmu.evtq_overflows"), 2u);

    // Draining the ring clears the condition: new records land again.
    const auto drained = smmu.drainEventQueue();
    EXPECT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].reason, FaultReason::NotPresent);
    EXPECT_TRUE(mmu.translate(d, 0xbeef000, true).fault);
    EXPECT_EQ(smmu.eventQueue().size(), 1u);
}
