/**
 * @file
 * Unit tests for the IOMMU substrate: I/O page tables, IOTLB,
 * invalidation queue, IOVA allocator, translation facade.
 */

#include <gtest/gtest.h>

#include "iommu/iommu.hh"
#include "iommu/iova_alloc.hh"

using namespace damn;
using namespace damn::iommu;

// ---------------------------------------------------------------------
// IoPageTable
// ---------------------------------------------------------------------

TEST(IoPageTable, MapWalkUnmap)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.map(0x4000, 0x1000, PermRead));
    const WalkResult w = pt.walk(0x4123);
    EXPECT_TRUE(w.present);
    EXPECT_EQ(w.pa, 0x1123u);
    EXPECT_EQ(w.perm, std::uint32_t(PermRead));
    EXPECT_FALSE(w.huge);
    EXPECT_TRUE(pt.unmap(0x4000));
    EXPECT_FALSE(pt.walk(0x4123).present);
}

TEST(IoPageTable, DoubleMapRefused)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.map(0x4000, 0x1000, PermRead));
    EXPECT_FALSE(pt.map(0x4000, 0x2000, PermRead));
}

TEST(IoPageTable, UnmapMissingReturnsFalse)
{
    IoPageTable pt;
    EXPECT_FALSE(pt.unmap(0x9000));
}

TEST(IoPageTable, PermutationsPreserved)
{
    IoPageTable pt;
    pt.map(0x1000, 0xa000, PermRead);
    pt.map(0x2000, 0xb000, PermWrite);
    pt.map(0x3000, 0xc000, PermRW);
    EXPECT_EQ(pt.walk(0x1000).perm, std::uint32_t(PermRead));
    EXPECT_EQ(pt.walk(0x2000).perm, std::uint32_t(PermWrite));
    EXPECT_EQ(pt.walk(0x3000).perm, std::uint32_t(PermRW));
}

TEST(IoPageTable, SparseHighAddresses)
{
    IoPageTable pt;
    const Iova high = (1ull << 47) | 0x123456000;
    EXPECT_TRUE(pt.map(high, 0x7000, PermRW));
    EXPECT_TRUE(pt.walk(high | 0xfff).present);
    EXPECT_EQ(pt.walk(high | 0xfff).pa, 0x7fffu);
}

TEST(IoPageTable, MappedPagesAccounting)
{
    IoPageTable pt;
    for (unsigned i = 0; i < 16; ++i)
        pt.map(Iova(i) << 12, mem::Pa(i) << 12, PermRW);
    EXPECT_EQ(pt.mappedPages(), 16u);
    pt.unmap(0);
    EXPECT_EQ(pt.mappedPages(), 15u);
}

TEST(IoPageTable, HugeMapCovers2MiB)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0, 0x200000, PermRW));
    const WalkResult w = pt.walk(0x1fffff);
    EXPECT_TRUE(w.present);
    EXPECT_TRUE(w.huge);
    EXPECT_EQ(w.pa, 0x200000u + 0x1fffff);
    EXPECT_EQ(pt.mappedPages(), 512u);
    EXPECT_TRUE(pt.unmapHuge(0));
    EXPECT_FALSE(pt.walk(0x100000).present);
}

TEST(IoPageTable, HugeAnd4kCoexistInDifferentRegions)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0x400000, 0x200000, PermRead));
    EXPECT_TRUE(pt.map(0x1000, 0x9000, PermWrite));
    EXPECT_TRUE(pt.walk(0x400000).huge);
    EXPECT_FALSE(pt.walk(0x1000).huge);
}

TEST(IoPageTable, HugeDoubleMapRefused)
{
    IoPageTable pt;
    EXPECT_TRUE(pt.mapHuge(0, 0x200000, PermRW));
    EXPECT_FALSE(pt.mapHuge(0, 0x400000, PermRW));
}

// ---------------------------------------------------------------------
// Iotlb
// ---------------------------------------------------------------------

namespace {

WalkResult
walkOf(mem::Pa pa, std::uint32_t perm, bool huge = false)
{
    WalkResult w;
    w.present = true;
    w.pa = pa;
    w.perm = perm;
    w.huge = huge;
    return w;
}

} // namespace

TEST(Iotlb, MissThenHit)
{
    Iotlb tlb;
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_EQ(tlb.misses(), 1u);
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    const TlbEntry *e = tlb.lookup(0, 0x5432);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->paPage, 0x9000u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Iotlb, DomainsAreIsolated)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    EXPECT_EQ(tlb.lookup(1, 0x5000), nullptr);
}

TEST(Iotlb, InvalidateRange)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(0, 0x6000, walkOf(0xa000, PermRW));
    tlb.invalidateRange(0, 0x5000, 0x1000);
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_NE(tlb.lookup(0, 0x6000), nullptr);
}

TEST(Iotlb, InvalidateDomainLeavesOthers)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(1, 0x5000, walkOf(0xb000, PermRW));
    tlb.invalidateDomain(0);
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_NE(tlb.lookup(1, 0x5000), nullptr);
}

TEST(Iotlb, InvalidateAll)
{
    Iotlb tlb;
    tlb.insert(0, 0x5000, walkOf(0x9000, PermRW));
    tlb.insert(1, 0x7000, walkOf(0xc000, PermRW));
    tlb.invalidateAll();
    EXPECT_EQ(tlb.lookup(0, 0x5000), nullptr);
    EXPECT_EQ(tlb.lookup(1, 0x7000), nullptr);
}

TEST(Iotlb, LruEvictionWithinSet)
{
    // 1 set x 2 ways: third insert evicts the least recently used.
    Iotlb tlb(1, 2, 1, 1);
    tlb.insert(0, 0x1000, walkOf(0x1000, PermRW));
    tlb.insert(0, 0x2000, walkOf(0x2000, PermRW));
    EXPECT_NE(tlb.lookup(0, 0x1000), nullptr); // touch 0x1000
    tlb.insert(0, 0x3000, walkOf(0x3000, PermRW));
    EXPECT_NE(tlb.lookup(0, 0x1000), nullptr); // survived
    EXPECT_EQ(tlb.lookup(0, 0x2000), nullptr); // evicted
}

TEST(Iotlb, HugeEntryServes4kLookups)
{
    Iotlb tlb;
    tlb.insert(0, 0x0, walkOf(0x200000, PermRW, /*huge=*/true));
    const TlbEntry *e = tlb.lookup(0, 0x12345);
    ASSERT_NE(e, nullptr);
    EXPECT_TRUE(e->huge);
    EXPECT_EQ(e->paPage, 0x200000u);
}

TEST(Iotlb, LowBitIndexingConflicts)
{
    // Two IOVAs that differ only in high bits land in the same set —
    // the conflict behaviour DAMN's metadata encoding suffers from.
    Iotlb tlb(4, 1, 1, 1); // 4 sets x 1 way
    const Iova a = 0x0000'0000'5000;
    const Iova b = 0x4000'0000'5000; // same low bits
    tlb.insert(0, a, walkOf(0x1000, PermRW));
    tlb.insert(0, b, walkOf(0x2000, PermRW));
    EXPECT_EQ(tlb.lookup(0, a), nullptr); // evicted by b
    EXPECT_NE(tlb.lookup(0, b), nullptr);
}

TEST(Iotlb, WalkCacheHitsOnRegionReuse)
{
    Iotlb tlb;
    EXPECT_FALSE(tlb.walkCached(0, 0x100000)); // cold
    EXPECT_TRUE(tlb.walkCached(0, 0x150000));  // same 2 MiB region
    EXPECT_FALSE(tlb.walkCached(0, 0x400000)); // different region
}

TEST(Iotlb, WalkCacheThrashesAcrossManyRegions)
{
    Iotlb tlb;
    // Touch 64 distinct regions (cache holds 32): round two misses.
    for (Iova r = 0; r < 64; ++r)
        tlb.walkCached(0, r << 21);
    EXPECT_FALSE(tlb.walkCached(0, 0ull << 21));
}

TEST(Iotlb, HitRateStat)
{
    Iotlb tlb;
    tlb.insert(0, 0x1000, walkOf(0x1000, PermRW));
    tlb.lookup(0, 0x1000);
    tlb.lookup(0, 0x2000);
    EXPECT_DOUBLE_EQ(tlb.hitRate(), 0.5);
    tlb.resetAccounting();
    EXPECT_EQ(tlb.hits() + tlb.misses(), 0u);
}

// ---------------------------------------------------------------------
// IovaAllocator
// ---------------------------------------------------------------------

TEST(IovaAllocator, AllocatesDistinctRanges)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    const Iova y = a.alloc(4);
    EXPECT_NE(x, y);
    EXPECT_GE(y, x + 4 * mem::kPageSize);
}

TEST(IovaAllocator, RecyclesFreedRanges)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    a.free(x, 4);
    EXPECT_EQ(a.alloc(4), x);
    EXPECT_EQ(a.recycled(), 1u);
}

TEST(IovaAllocator, SizeBucketsIndependent)
{
    IovaAllocator a;
    const Iova x = a.alloc(4);
    a.free(x, 4);
    const Iova y = a.alloc(2); // different bucket: no reuse
    EXPECT_NE(y, x);
}

TEST(IovaAllocator, StaysBelowDamnBit)
{
    IovaAllocator a;
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(a.alloc(16), kDamnIovaBit);
}

TEST(IovaAllocator, PageAligned)
{
    IovaAllocator a;
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.alloc(3) % mem::kPageSize, 0u);
}

TEST(IovaAllocator, ExhaustionReturnsInvalid)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    for (int i = 0; i < 4; ++i)
        EXPECT_NE(a.alloc(4), kInvalidIova);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
    EXPECT_EQ(a.failures(), 1u);
    EXPECT_DOUBLE_EQ(a.utilization(), 1.0);
}

TEST(IovaAllocator, ExhaustionRecoversViaRecycling)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    Iova ranges[4];
    for (Iova &r : ranges)
        r = a.alloc(4);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
    a.free(ranges[2], 4);
    EXPECT_EQ(a.alloc(4), ranges[2]);
    // The freelist hit does not count as a failure.
    EXPECT_EQ(a.failures(), 1u);
}

TEST(IovaAllocator, SplitsLargerRecycledRangeWhenExhausted)
{
    IovaAllocator a;
    a.setSpaceBytes(16 * mem::kPageSize);
    const Iova big = a.alloc(16);
    a.free(big, 16);
    // Fresh space is gone; a 4-page request must carve the recycled
    // 16-page range instead of failing on a size-bucket miss.
    EXPECT_EQ(a.alloc(4), big);
    EXPECT_EQ(a.splits(), 1u);
    // The 12-page remainder keeps satisfying smaller requests.
    EXPECT_EQ(a.alloc(4), big + 4 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), big + 8 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), big + 12 * mem::kPageSize);
    EXPECT_EQ(a.alloc(4), kInvalidIova);
}

TEST(IovaAllocator, OutstandingChurnDoesNotLeak)
{
    IovaAllocator a;
    a.setSpaceBytes(64 * mem::kPageSize);
    for (int round = 0; round < 1000; ++round) {
        const Iova x = a.alloc(4);
        const Iova y = a.alloc(2);
        ASSERT_NE(x, kInvalidIova);
        ASSERT_NE(y, kInvalidIova);
        a.free(x, 4);
        a.free(y, 2);
    }
    EXPECT_EQ(a.outstanding(), 0u);
    EXPECT_EQ(a.failures(), 0u);
    EXPECT_GT(a.recycled(), 0u);
}

TEST(IovaAllocator, ShrinkingSpaceOnlyAffectsFreshAllocations)
{
    IovaAllocator a;
    const Iova x = a.alloc(8);
    a.setSpaceBytes(4 * mem::kPageSize); // below the high-water mark
    a.free(x, 8);
    EXPECT_EQ(a.alloc(8), x); // recycling still works
}

// ---------------------------------------------------------------------
// Iommu facade
// ---------------------------------------------------------------------

namespace {

struct IommuFixture : ::testing::Test
{
    IommuFixture() : ctx(sim::CostModel{}, 1, 2), mmu(ctx) {}

    sim::Context ctx;
    Iommu mmu;
};

} // namespace

TEST_F(IommuFixture, DisabledIsIdentity)
{
    Iommu off(ctx, /*enabled=*/false);
    const DomainId d = off.createDomain();
    const TranslateResult r = off.translate(d, 0x12345678, true);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x12345678u);
    EXPECT_EQ(r.latencyNs, 0u);
}

TEST_F(IommuFixture, MissingMappingFaults)
{
    const DomainId d = mmu.createDomain();
    const TranslateResult r = mmu.translate(d, 0x5000, false);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.fault);
    EXPECT_EQ(mmu.faults(), 1u);
}

TEST_F(IommuFixture, PermissionEnforced)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRead);
    EXPECT_TRUE(mmu.translate(d, 0x5000, false).ok);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, WalkThenTlbHit)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    const TranslateResult miss = mmu.translate(d, 0x5100, true);
    EXPECT_TRUE(miss.ok);
    EXPECT_EQ(miss.pa, 0x9100u);
    EXPECT_GT(miss.latencyNs, 0u);
    const TranslateResult hit = mmu.translate(d, 0x5200, true);
    EXPECT_TRUE(hit.ok);
    EXPECT_EQ(hit.latencyNs, 0u);
}

TEST_F(IommuFixture, StaleTlbServesAfterPteClear)
{
    // The deferred-window mechanism in one test: clearing the PTE does
    // not revoke a cached translation until an IOTLB invalidation.
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true); // cache it
    mmu.unmapPage(d, 0x5000);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).ok) << "stale hit";
    mmu.iotlb().invalidateRange(d, 0x5000, 0x1000);
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, PerDomainPageTables)
{
    const DomainId d0 = mmu.createDomain();
    const DomainId d1 = mmu.createDomain();
    mmu.mapPage(d0, 0x5000, 0x9000, PermRW);
    EXPECT_TRUE(mmu.translate(d0, 0x5000, true).ok);
    EXPECT_TRUE(mmu.translate(d1, 0x5000, true).fault);
}

TEST_F(IommuFixture, EverVsCurrentlyMapped)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.mapPage(d, 0x6000, 0xa000, PermRW);
    EXPECT_EQ(mmu.everMappedFrames(), 2u);
    EXPECT_EQ(mmu.currentlyMappedPages(), 2u);
    mmu.unmapPage(d, 0x5000);
    EXPECT_EQ(mmu.everMappedFrames(), 2u); // monotonic
    EXPECT_EQ(mmu.currentlyMappedPages(), 1u);
    // Re-mapping the same frame does not grow the ever set.
    mmu.mapPage(d, 0x7000, 0x9000, PermRW);
    EXPECT_EQ(mmu.everMappedFrames(), 2u);
}

TEST_F(IommuFixture, SyncInvalidateSerializesOnLock)
{
    const DomainId d = mmu.createDomain();
    auto &q = mmu.invalQueue();
    sim::Core &a = ctx.machine.core(0);
    sim::Core &b = ctx.machine.core(1);
    const sim::TimeNs t1 =
        q.syncInvalidate(a, 0, mmu.iotlb(), d, 0x5000, 0x1000);
    EXPECT_EQ(t1, ctx.cost.strictInvalidateNs);
    const sim::TimeNs t2 =
        q.syncInvalidate(b, 0, mmu.iotlb(), d, 0x6000, 0x1000);
    EXPECT_EQ(t2, 2 * ctx.cost.strictInvalidateNs);
}

TEST_F(IommuFixture, BatchedFlushInvalidatesEverything)
{
    const DomainId d = mmu.createDomain();
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    mmu.translate(d, 0x5000, true);
    mmu.unmapPage(d, 0x5000);
    mmu.invalQueue().batchedFlush(ctx.machine.core(0), 0, mmu.iotlb(),
                                  {d});
    EXPECT_TRUE(mmu.translate(d, 0x5000, true).fault);
}

TEST_F(IommuFixture, HugeMappingTranslates)
{
    const DomainId d = mmu.createDomain();
    mmu.mapHuge(d, 0, 0x200000, PermRW);
    const TranslateResult r = mmu.translate(d, 0x123456, false);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, 0x200000u + 0x123456);
    EXPECT_EQ(mmu.everMappedFrames(), 512u);
}
