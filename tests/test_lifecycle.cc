/**
 * @file
 * Device lifecycle hardening: surprise unplug, orderly teardown, the
 * allocator/DMA-API drain paths, Iommu::detachDomain semantics, the
 * resetDomain IOTLB-flush regression, and the damn::audit invariant
 * battery proving zero live mappings, zero stale IOTLB entries, and
 * zero leaked IOVAs after every teardown.
 */

#include <gtest/gtest.h>

#include "core/audit.hh"
#include "net/stream.hh"
#include "nvme/nvme.hh"
#include "workloads/netperf.hh"

using namespace damn;
using namespace damn::net;

namespace {

/** Allocator-side IOVA leak count for one domain (the audit input). */
std::uint64_t
outstandingIovasOf(System &sys, iommu::DomainId d)
{
    std::uint64_t n = sys.dmaApi->outstandingIovas();
    if (sys.damnMode())
        n += sys.damn->outstandingIovaSlots(d);
    return n;
}

/**
 * One System + NIC + stack + auditor under the parameterized scheme,
 * with helpers running the unplug -> teardown -> drain -> detach ->
 * audit sequence the chaos soak loops over.
 */
struct LifecycleFixture : ::testing::TestWithParam<dma::SchemeKind>
{
    LifecycleFixture()
    {
        SystemParams p;
        p.scheme = GetParam();
        sys = std::make_unique<System>(p);
        sys->ctx.functionalData = false;
        nic = std::make_unique<NicDevice>(*sys, "mlx5_0");
        // The auditor must observe every map: install it before any
        // traffic (construction maps nothing).
        auditor = std::make_unique<audit::Auditor>(sys->mmu);
        stack = std::make_unique<TcpStack>(*sys, *nic);
        stream = std::make_unique<StreamEngine>(*sys, *nic, *stack);
        for (unsigned i = 0; i < 4; ++i) {
            FlowSpec f;
            f.kind = i % 2 == 0 ? Traffic::Rx : Traffic::Tx;
            f.core = i % 2;
            f.port = i % 2;
            f.segBytes = 16 * 1024;
            f.window = 8;
            f.maxRetries = 5;
            f.rtoNs = 10 * sim::kNsPerUs;
            stream->addFlow(f);
        }
    }

    /** Drive traffic for @p ns of virtual time. */
    void
    burst(sim::TimeNs ns)
    {
        stream->startAll();
        clock += ns;
        sys->ctx.engine.run(clock);
    }

    /**
     * The canonical drain ordering: rings, then caches, then page
     * table + IOTLB (detach).  Returns the audit report.
     */
    audit::TeardownReport
    teardownAndAudit()
    {
        sys->ctx.faults.reset();
        if (nic->attached())
            nic->unplug();
        {
            sim::CpuCursor cpu(sys->ctx.machine.core(0), clock);
            stream->teardown(cpu);
            clock = std::max(clock, cpu.time);
        }
        // Virtual-time watchdog: every in-flight segment and pending
        // retransmit timer must have aborted by now.
        clock += 2 * sim::kNsPerMs;
        sys->ctx.engine.run(clock);
        EXPECT_TRUE(stream->quiesced()) << "flows did not quiesce";

        sim::CpuCursor cpu(sys->ctx.machine.core(0), clock);
        sys->dmaApi->drainDomain(cpu, *nic);
        const std::uint64_t forced =
            sys->mmu.detachDomain(nic->domain());
        return auditor->verifyTeardown(
            nic->domain(), outstandingIovasOf(*sys, nic->domain()),
            forced);
    }

    std::unique_ptr<System> sys;
    std::unique_ptr<NicDevice> nic;
    std::unique_ptr<audit::Auditor> auditor;
    std::unique_ptr<TcpStack> stack;
    std::unique_ptr<StreamEngine> stream;
    sim::TimeNs clock = 0;
};

std::string
schemeName(const ::testing::TestParamInfo<dma::SchemeKind> &info)
{
    std::string n = dma::schemeKindName(info.param);
    for (char &c : n)
        if (c == '-')
            c = '_';
    return n;
}

} // namespace

// ---------------------------------------------------------------------
// Orderly teardown: zero live mappings / stale TLB / leaked IOVAs
// ---------------------------------------------------------------------

TEST_P(LifecycleFixture, DetachAfterCleanTeardownAuditsClean)
{
    burst(500 * sim::kNsPerUs);
    EXPECT_GT(auditor->mapEvents() + sys->ctx.stats.get("damn.allocs"),
              0u)
        << "burst moved no traffic; the audit would be vacuous";

    const audit::TeardownReport rep = teardownAndAudit();
    EXPECT_TRUE(rep.clean())
        << ::testing::PrintToString(rep.violations);
    EXPECT_EQ(rep.ledgerPages, 0u);
    EXPECT_EQ(rep.tablePages, 0u);
    EXPECT_EQ(rep.tlbEntries, 0u);
    EXPECT_EQ(rep.staleTlbEntries, 0u);
    EXPECT_EQ(rep.leakedIovas, 0u);
    // Nothing was left for detachDomain() to force-clear: the drivers
    // and allocators released every mapping themselves.
    EXPECT_EQ(rep.forceCleared, 0u);
}

TEST_P(LifecycleFixture, SurpriseUnplugAbortsInsteadOfHanging)
{
    // The 20th device DMA yanks the NIC mid-burst.
    sys->ctx.faults.enable(99);
    sys->ctx.faults.failNth(sim::FaultSite::DeviceUnplug, 20);
    burst(500 * sim::kNsPerUs);
    EXPECT_FALSE(nic->attached()) << "scheduled unplug never fired";
    EXPECT_GT(sys->ctx.stats.get("dma.unplugged_aborts"), 0u);

    const audit::TeardownReport rep = teardownAndAudit();
    EXPECT_TRUE(rep.clean())
        << ::testing::PrintToString(rep.violations);
    // Unplug fails flows (no retransmit can ever land) rather than
    // letting them spin against a dead device.
    EXPECT_GT(stream->failedFlows() + stream->abortedSegments(), 0u);
}

TEST_P(LifecycleFixture, TranslateFaultsDetachedAfterTeardown)
{
    burst(200 * sim::kNsPerUs);
    const audit::TeardownReport rep = teardownAndAudit();
    ASSERT_TRUE(rep.clean());

    if (!sys->mmu.enabled())
        return; // damn-without-iommu variant: nothing to translate
    const iommu::TranslateResult t =
        sys->mmu.translate(nic->domain(), 0x4000, false);
    EXPECT_TRUE(t.fault);
    EXPECT_EQ(sys->mmu.faultLog().back().reason,
              iommu::FaultReason::Detached);

    // Replug: a fresh attach lifts the detached state.
    sys->mmu.attachDomain(nic->domain());
    nic->replug();
    EXPECT_FALSE(sys->mmu.detached(nic->domain()));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, LifecycleFixture,
    ::testing::Values(dma::SchemeKind::Strict, dma::SchemeKind::Deferred,
                      dma::SchemeKind::Shadow, dma::SchemeKind::Damn),
    schemeName);

// ---------------------------------------------------------------------
// Iommu domain lifecycle primitives
// ---------------------------------------------------------------------

namespace {

struct IommuLifecycle : ::testing::Test
{
    IommuLifecycle() : ctx(sim::CostModel{}, 1, 2), mmu(ctx) {}

    sim::Context ctx;
    iommu::Iommu mmu;
};

} // namespace

// Satellite regression: resetDomain() must flush the domain's IOTLB
// entries, or a reset device resumes with translations for mappings
// that no longer exist.
TEST_F(IommuLifecycle, ResetDomainFlushesIotlb)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.translate(d, 0x1000, false).ok); // fill the IOTLB
    ASSERT_EQ(mmu.iotlb().validEntries(d).size(), 1u);

    // Tear the PTE out from under the cached entry: the stale IOTLB
    // entry still translates (this is the deferred-mode vulnerability
    // window, working as modeled)...
    ASSERT_TRUE(mmu.unmapPage(d, 0x1000));
    EXPECT_TRUE(mmu.translate(d, 0x1000, false).ok);

    // ...and resetDomain() must clear it along with the quarantine
    // state, so the post-reset device starts from nothing.
    mmu.resetDomain(d);
    EXPECT_TRUE(mmu.iotlb().validEntries(d).empty());
    EXPECT_TRUE(mmu.translate(d, 0x1000, false).fault);
}

TEST_F(IommuLifecycle, DetachDomainClearsEverythingAndBlocksDma)
{
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.mapHuge(d, 0x200000, 0x400000, iommu::PermRead));
    ASSERT_TRUE(mmu.translate(d, 0x1000, false).ok);

    // The driver "forgot" 513 pages: detach force-clears and reports
    // them, flushes the IOTLB, and fences later DMA.
    EXPECT_EQ(mmu.detachDomain(d), 513u);
    EXPECT_TRUE(mmu.detached(d));
    EXPECT_EQ(mmu.pageTable(d).mappedPages(), 0u);
    EXPECT_TRUE(mmu.iotlb().validEntries(d).empty());

    const iommu::TranslateResult t = mmu.translate(d, 0x1000, false);
    EXPECT_TRUE(t.fault);
    EXPECT_EQ(mmu.faultLog().back().reason,
              iommu::FaultReason::Detached);

    // attachDomain() re-arms the (empty) domain.
    mmu.attachDomain(d);
    EXPECT_FALSE(mmu.detached(d));
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    EXPECT_TRUE(mmu.translate(d, 0x1000, false).ok);
}

TEST_F(IommuLifecycle, DetachDoesNotDisturbOtherDomains)
{
    const iommu::DomainId a = mmu.createDomain();
    const iommu::DomainId b = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(a, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.mapPage(b, 0x1000, 0x6000, iommu::PermRW));
    ASSERT_TRUE(mmu.translate(b, 0x1000, false).ok);

    mmu.detachDomain(a);
    EXPECT_FALSE(mmu.detached(b));
    EXPECT_EQ(mmu.pageTable(b).mappedPages(), 1u);
    EXPECT_EQ(mmu.iotlb().validEntries(b).size(), 1u);
    EXPECT_TRUE(mmu.translate(b, 0x1000, false).ok);
}

// ---------------------------------------------------------------------
// Auditor ledger semantics
// ---------------------------------------------------------------------

TEST_F(IommuLifecycle, AuditorLedgerTracksMapUnmapAndDetach)
{
    audit::Auditor auditor(mmu);
    const iommu::DomainId d = mmu.createDomain();

    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.mapHuge(d, 0x200000, 0x400000, iommu::PermRead));
    EXPECT_EQ(auditor.ledgerPages(d), 513u);
    EXPECT_EQ(auditor.mapEvents(), 2u);

    ASSERT_TRUE(mmu.unmapPage(d, 0x1000));
    EXPECT_EQ(auditor.ledgerPages(d), 512u);
    EXPECT_EQ(auditor.unmapEvents(), 1u);

    // A failed map (already present) must not double-count.
    EXPECT_FALSE(mmu.mapHuge(d, 0x200000, 0x400000, iommu::PermRead));
    EXPECT_EQ(auditor.ledgerPages(d), 512u);

    // Detach with the huge mapping leaked: the audit pins the blame.
    const std::uint64_t forced = mmu.detachDomain(d);
    EXPECT_EQ(forced, 512u);
    EXPECT_EQ(auditor.ledgerPages(d), 0u); // DetachClear resets it
    const audit::TeardownReport rep =
        auditor.verifyTeardown(d, 0, forced);
    EXPECT_FALSE(rep.clean());
    EXPECT_EQ(rep.forceCleared, 512u);
}

TEST_F(IommuLifecycle, AuditorFlagsStaleTlbEntries)
{
    audit::Auditor auditor(mmu);
    const iommu::DomainId d = mmu.createDomain();
    ASSERT_TRUE(mmu.mapPage(d, 0x1000, 0x5000, iommu::PermRW));
    ASSERT_TRUE(mmu.translate(d, 0x1000, false).ok);
    EXPECT_EQ(auditor.staleTlbEntries(d), 0u);

    // PTE gone, entry cached: one stale translation.
    ASSERT_TRUE(mmu.unmapPage(d, 0x1000));
    EXPECT_EQ(auditor.staleTlbEntries(d), 1u);

    mmu.iotlb().invalidateRange(d, 0x1000, 4096);
    EXPECT_EQ(auditor.staleTlbEntries(d), 0u);
}

// ---------------------------------------------------------------------
// Allocator drain (DAMN chunk caches)
// ---------------------------------------------------------------------

TEST(AllocatorDrain, DamnDrainReleasesEveryCachedChunk)
{
    SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    System sys(p);
    sys.ctx.functionalData = false;
    NicDevice nic(sys, "mlx5_0");
    audit::Auditor auditor(sys.mmu);
    TcpStack stack(sys, nic);

    // Pull a pile of RX buffers through the DAMN caches, spread over
    // cores (per-core magazines + depot all get populated)...
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    std::vector<RxBuffer> bufs;
    for (unsigned core = 0; core < 4; ++core) {
        sim::CpuCursor c(sys.ctx.machine.core(core), cpu.time);
        for (unsigned i = 0; i < 64; ++i)
            bufs.push_back(stack.driver.allocRxBuffer(c, 16 * 1024));
    }
    EXPECT_GT(sys.damn->ownedBytes(), 0u);

    // ...free them all back (rings emptied)...
    for (RxBuffer &b : bufs)
        stack.driver.abortRxBuffer(cpu, b);
    bufs.clear();

    // ...then drain: every cached chunk's mappings come back through
    // the scheme's unmap path, and nothing stays outstanding.
    sys.damn->drainDomain(cpu, nic.domain());
    EXPECT_EQ(sys.damn->outstandingIovaSlots(nic.domain()), 0u);

    const std::uint64_t forced = sys.mmu.detachDomain(nic.domain());
    const audit::TeardownReport rep = auditor.verifyTeardown(
        nic.domain(), outstandingIovasOf(sys, nic.domain()), forced);
    EXPECT_TRUE(rep.clean())
        << ::testing::PrintToString(rep.violations);
}

// ---------------------------------------------------------------------
// Memory-pressure injection (mem.page_alloc site)
// ---------------------------------------------------------------------

TEST(MemoryPressure, InjectedAllocFailuresRecoverWithoutFailingFlows)
{
    work::NetperfOpts opts = work::singleCoreOpts(
        dma::SchemeKind::Deferred, work::NetMode::Rx);
    opts.runWindow.warmupNs = 2 * sim::kNsPerMs;
    opts.runWindow.measureNs = 10 * sim::kNsPerMs;
    const work::NetperfRun r =
        work::runNetperf(opts, [](work::NetperfRun &run) {
            run.sys->ctx.faults.enable(21);
            run.sys->ctx.faults.setProbability(
                sim::FaultSite::PageAlloc, 0.02);
        });

    // Pressure was real...
    const auto it = r.common.stats.find("mem.injected_alloc_fails");
    ASSERT_NE(it, r.common.stats.end());
    EXPECT_GT(it->second, 0u);
    // ...and the ring-refill retry path healed every failure: traffic
    // flowed and no flow died.
    EXPECT_GT(r.res.totalGbps, 0.0);
    EXPECT_EQ(r.res.failedFlows, 0u);
}

// ---------------------------------------------------------------------
// NVMe lifecycle: abort semantics on unplug
// ---------------------------------------------------------------------

TEST(NvmeLifecycle, UnpluggedSubmitAbortsInBoundedTime)
{
    SystemParams p;
    p.scheme = dma::SchemeKind::Strict;
    System sys(p);
    nvme::NvmeDevice dev(sys.ctx, "nvme0", sys.mmu, sys.phys);
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    const mem::Pa pa = mem::pfnToPa(sys.pageAlloc.allocPages(0, 0));
    const iommu::Iova dma =
        sys.dmaApi->map(cpu, dev, pa, 4096, dma::Dir::FromDevice);

    // Unplug before submission: the driver aborts without a single
    // device-side attempt or timeout.
    dev.unplug();
    const nvme::NvmeCmdResult pre = dev.submitRead(1000, dma, 4096);
    EXPECT_FALSE(pre.ok);
    EXPECT_TRUE(pre.aborted);
    EXPECT_EQ(pre.attempts, 0u);
    EXPECT_EQ(pre.completes, 1000u); // no timeout burned

    // Unplug *during* the command: the faulting DMA is the unplug;
    // the driver aborts instead of entering the retry/timeout loop.
    dev.replug();
    sys.ctx.faults.enable(5);
    sys.ctx.faults.failNth(sim::FaultSite::DeviceUnplug, 1);
    const nvme::NvmeCmdResult mid = dev.submitRead(2000, dma, 4096);
    EXPECT_FALSE(mid.ok);
    EXPECT_TRUE(mid.aborted);
    EXPECT_EQ(mid.attempts, 1u);
    EXPECT_EQ(mid.timeouts, 0u);
    EXPECT_LT(mid.completes, 2000 + sys.ctx.cost.nvmeTimeoutNs);
    EXPECT_EQ(dev.abortedCmds(), 2u);
}
