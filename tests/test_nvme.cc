/**
 * @file
 * Unit tests for the NVMe device model.
 */

#include <gtest/gtest.h>

#include "mem/page_alloc.hh"
#include "nvme/nvme.hh"

using namespace damn;
using namespace damn::nvme;

namespace {

struct NvmeFixture : ::testing::Test
{
    NvmeFixture()
        : ctx(sim::CostModel{}, 2, 12),
          pm(256ull << 20),
          pa(pm, 1),
          mmu(ctx, /*enabled=*/false),
          dev(ctx, "nvme0", mmu, pm)
    {}

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    iommu::Iommu mmu;
    NvmeDevice dev;
};

} // namespace

TEST_F(NvmeFixture, SmallBlocksAreIopsBound)
{
    // 1000 back-to-back 512 B reads take >= 1000 / maxIops seconds.
    const mem::Pfn pfn = pa.allocPages(0, 0);
    sim::TimeNs done = 0;
    for (int i = 0; i < 1000; ++i)
        done = dev.readIo(0, mem::pfnToPa(pfn), 512).completes;
    const double iops = 1000.0 / (double(done) / 1e9);
    EXPECT_NEAR(iops, ctx.cost.nvmeMaxIops, ctx.cost.nvmeMaxIops * 0.02);
}

TEST_F(NvmeFixture, LargeBlocksAreBandwidthBound)
{
    const mem::Pfn pfn = pa.allocPages(5, 0);
    sim::TimeNs done = 0;
    for (int i = 0; i < 200; ++i)
        done = dev.readIo(0, mem::pfnToPa(pfn), 131072).completes;
    const double bps = 200.0 * 131072 / double(done); // B/ns
    EXPECT_NEAR(bps, ctx.cost.nvmeMaxBytesPerNs,
                ctx.cost.nvmeMaxBytesPerNs * 0.03);
}

TEST_F(NvmeFixture, DataActuallyLands)
{
    ctx.functionalData = true;
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    // With the IOMMU off, the DMA address is the PA; the model writes
    // block data (zeros via dmaTouch, so use dmaWrite directly).
    std::vector<std::uint8_t> block(512, 0x5a);
    EXPECT_TRUE(dev.dmaWrite(0, buf, block.data(), 512).ok);
    EXPECT_EQ(pm.readByte(buf + 511), 0x5a);
}

TEST_F(NvmeFixture, IommuBlocksUnmappedIo)
{
    iommu::Iommu on(ctx, /*enabled=*/true);
    NvmeDevice guarded(ctx, "nvme1", on, pm);
    const auto out = guarded.readIo(0, 0x10000, 4096);
    EXPECT_TRUE(out.fault);
}

TEST_F(NvmeFixture, CompletedIosCount)
{
    const mem::Pfn pfn = pa.allocPages(0, 0);
    for (int i = 0; i < 7; ++i)
        dev.readIo(0, mem::pfnToPa(pfn), 512);
    EXPECT_EQ(dev.completedIos(), 7u);
}

TEST_F(NvmeFixture, IdleGapsDoNotAccumulateCredit)
{
    const mem::Pfn pfn = pa.allocPages(0, 0);
    dev.readIo(0, mem::pfnToPa(pfn), 512);
    // A long idle gap, then two IOs: the second still waits a slot.
    const auto a = dev.readIo(1'000'000, mem::pfnToPa(pfn), 512);
    const auto b = dev.readIo(1'000'000, mem::pfnToPa(pfn), 512);
    EXPECT_GT(b.completes, a.completes);
}
