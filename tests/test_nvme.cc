/**
 * @file
 * Unit tests for the NVMe device model.
 */

#include <gtest/gtest.h>

#include "mem/page_alloc.hh"
#include "nvme/nvme.hh"

using namespace damn;
using namespace damn::nvme;

namespace {

struct NvmeFixture : ::testing::Test
{
    NvmeFixture()
        : ctx(sim::CostModel{}, 2, 12),
          pm(256ull << 20),
          pa(pm, 1),
          mmu(ctx, /*enabled=*/false),
          dev(ctx, "nvme0", mmu, pm)
    {}

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    iommu::Iommu mmu;
    NvmeDevice dev;
};

} // namespace

TEST_F(NvmeFixture, SmallBlocksAreIopsBound)
{
    // 1000 back-to-back 512 B reads take >= 1000 / maxIops seconds.
    const mem::Pfn pfn = pa.allocPages(0, 0);
    sim::TimeNs done = 0;
    for (int i = 0; i < 1000; ++i)
        done = dev.readIo(0, mem::pfnToPa(pfn), 512).completes;
    const double iops = 1000.0 / (double(done) / 1e9);
    EXPECT_NEAR(iops, ctx.cost.nvmeMaxIops, ctx.cost.nvmeMaxIops * 0.02);
}

TEST_F(NvmeFixture, LargeBlocksAreBandwidthBound)
{
    const mem::Pfn pfn = pa.allocPages(5, 0);
    sim::TimeNs done = 0;
    for (int i = 0; i < 200; ++i)
        done = dev.readIo(0, mem::pfnToPa(pfn), 131072).completes;
    const double bps = 200.0 * 131072 / double(done); // B/ns
    EXPECT_NEAR(bps, ctx.cost.nvmeMaxBytesPerNs,
                ctx.cost.nvmeMaxBytesPerNs * 0.03);
}

TEST_F(NvmeFixture, DataActuallyLands)
{
    ctx.functionalData = true;
    const mem::Pfn pfn = pa.allocPages(0, 0, true);
    const mem::Pa buf = mem::pfnToPa(pfn);
    // With the IOMMU off, the DMA address is the PA; the model writes
    // block data (zeros via dmaTouch, so use dmaWrite directly).
    std::vector<std::uint8_t> block(512, 0x5a);
    EXPECT_TRUE(dev.dmaWrite(0, buf, block.data(), 512).ok);
    EXPECT_EQ(pm.readByte(buf + 511), 0x5a);
}

TEST_F(NvmeFixture, IommuBlocksUnmappedIo)
{
    iommu::Iommu on(ctx, /*enabled=*/true);
    NvmeDevice guarded(ctx, "nvme1", on, pm);
    const auto out = guarded.readIo(0, 0x10000, 4096);
    EXPECT_TRUE(out.fault);
}

TEST_F(NvmeFixture, CompletedIosCount)
{
    const mem::Pfn pfn = pa.allocPages(0, 0);
    for (int i = 0; i < 7; ++i)
        dev.readIo(0, mem::pfnToPa(pfn), 512);
    EXPECT_EQ(dev.completedIos(), 7u);
}

TEST_F(NvmeFixture, IdleGapsDoNotAccumulateCredit)
{
    const mem::Pfn pfn = pa.allocPages(0, 0);
    dev.readIo(0, mem::pfnToPa(pfn), 512);
    // A long idle gap, then two IOs: the second still waits a slot.
    const auto a = dev.readIo(1'000'000, mem::pfnToPa(pfn), 512);
    const auto b = dev.readIo(1'000'000, mem::pfnToPa(pfn), 512);
    EXPECT_GT(b.completes, a.completes);
}

// ---------------------------------------------------------------------
// Completion ordering under queue pressure
// ---------------------------------------------------------------------

TEST_F(NvmeFixture, QueuePressureCompletesInSubmissionOrder)
{
    // A deep queue submitted at one instant: the IOPS engine is a
    // serial resource, so completions must come back in submission
    // order, strictly spaced by at least one IOPS slot.
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const sim::TimeNs slot = sim::TimeNs(1e9 / ctx.cost.nvmeMaxIops);
    sim::TimeNs prev = 0;
    for (int i = 0; i < 64; ++i) {
        const auto out = dev.readIo(0, mem::pfnToPa(pfn), 512);
        EXPECT_TRUE(out.ok);
        if (i > 0) {
            EXPECT_GT(out.completes, prev)
                << "completion " << i << " reordered";
            EXPECT_GE(out.completes - prev, slot);
        }
        prev = out.completes;
    }
}

TEST_F(NvmeFixture, MixedBlockSizesStillCompleteInOrder)
{
    // Large blocks occupy the media engine longer, but the serial
    // resources forbid overtaking: a later small IO never completes
    // before an earlier large one.
    const mem::Pfn pfn = pa.allocPages(5, 0);
    sim::TimeNs prev = 0;
    for (int i = 0; i < 40; ++i) {
        const std::uint32_t bytes = i % 2 == 0 ? 131072 : 512;
        const auto out = dev.readIo(0, mem::pfnToPa(pfn), bytes);
        EXPECT_TRUE(out.ok);
        EXPECT_GE(out.completes, prev) << "IO " << i << " overtook";
        prev = out.completes;
    }
}

// ---------------------------------------------------------------------
// Bounded retry / timeout paths
// ---------------------------------------------------------------------

TEST_F(NvmeFixture, LostCommandRetriesAfterTimeout)
{
    ctx.faults.enable(7);
    ctx.faults.failNth(sim::FaultSite::NvmeCmd, 1);
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const NvmeCmdResult r = dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(r.timeouts, 1u);
    EXPECT_GE(r.completes, ctx.cost.nvmeTimeoutNs);
}

TEST_F(NvmeFixture, PersistentLossExhaustsTheBudgetInBoundedTime)
{
    ctx.faults.enable(7);
    ctx.faults.setProbability(sim::FaultSite::NvmeCmd, 1.0);
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const NvmeCmdResult r = dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.attempts, ctx.cost.nvmeMaxRetries + 1);
    EXPECT_EQ(r.timeouts, ctx.cost.nvmeMaxRetries + 1);
    // Bounded: every attempt costs exactly one timeout here (the lost
    // command consumes no device slot).
    EXPECT_EQ(r.completes,
              sim::TimeNs(ctx.cost.nvmeMaxRetries + 1) *
                  ctx.cost.nvmeTimeoutNs);
    EXPECT_EQ(dev.failedCmds(), 1u);
}

TEST_F(NvmeFixture, UnplugAbortsInsteadOfBurningTimeouts)
{
    const mem::Pfn pfn = pa.allocPages(0, 0);
    dev.unplug();
    const NvmeCmdResult r = dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    EXPECT_FALSE(r.ok);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(r.attempts, 0u);
    EXPECT_EQ(r.completes, 0u) << "abort must not wait out timeouts";
    EXPECT_EQ(dev.abortedCmds(), 1u);
}

// ---------------------------------------------------------------------
// Trace events on the NVMe command lifecycle
// ---------------------------------------------------------------------

namespace {

/** Names of buffered NVMe trace events, in record order. */
std::vector<std::string>
nvmeEventNames(sim::Context &ctx)
{
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    std::vector<std::string> names;
    for (const sim::TraceEvent &ev : b.events)
        if (ev.cat == sim::TraceCat::Nvme)
            names.push_back(b.names[ev.nameId]);
    return names;
}

} // namespace

TEST_F(NvmeFixture, TraceRecordsSubmitAndComplete)
{
    ctx.tracer.startRecording();
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const NvmeCmdResult r = dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    ASSERT_TRUE(r.ok);
    const auto names = nvmeEventNames(ctx);
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "nvme.submit");
    EXPECT_EQ(names[1], "nvme.complete");
}

TEST_F(NvmeFixture, TraceRecordsTimeoutsAndFailure)
{
    ctx.tracer.startRecording();
    ctx.faults.enable(7);
    ctx.faults.setProbability(sim::FaultSite::NvmeCmd, 1.0);
    const mem::Pfn pfn = pa.allocPages(0, 0);
    const NvmeCmdResult r = dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    ASSERT_FALSE(r.ok);
    const auto names = nvmeEventNames(ctx);
    // submit/timeout per attempt, one final fail marker.
    ASSERT_EQ(names.size(), 2u * (ctx.cost.nvmeMaxRetries + 1) + 1);
    EXPECT_EQ(names.front(), "nvme.submit");
    EXPECT_EQ(names[1], "nvme.timeout");
    EXPECT_EQ(names.back(), "nvme.fail");
}

TEST_F(NvmeFixture, TraceRecordsAbortOnUnplug)
{
    ctx.tracer.startRecording();
    const mem::Pfn pfn = pa.allocPages(0, 0);
    dev.unplug();
    (void)dev.submitRead(0, mem::pfnToPa(pfn), 4096);
    const auto names = nvmeEventNames(ctx);
    ASSERT_EQ(names.size(), 1u);
    EXPECT_EQ(names[0], "nvme.abort");
}
