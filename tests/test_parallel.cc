/**
 * @file
 * Parallel-determinism suite (ctest label `par`): the --jobs worker
 * pool must be invisible in every output byte.  Runs the driver
 * in-process at --jobs=1 and --jobs=8 over two seeds and asserts the
 * serialized JSON report and the Chrome trace are byte-identical; also
 * covers the unit decomposition/merge corners (repeat reps, glob
 * subsets, worker-pool exception propagation).
 *
 * Built into the verify-tsan tree as well: under -fsanitize=thread the
 * jobs=8 cases double as a data-race audit of the whole
 * experiment/workload/sim stack.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/driver.hh"

using namespace damn;

namespace {

exp::DriverOptions
smallOpts(const std::string &only, std::uint64_t seed, unsigned jobs,
          unsigned repeat = 1)
{
    exp::DriverOptions o;
    o.only = only;
    o.seed = seed;
    o.jobs = jobs;
    o.repeat = repeat;
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 2 * sim::kNsPerMs;
    // Non-empty trace path => experiments record trace events, so the
    // comparison covers the event rings and the Chrome exporter too.
    o.tracePath = "unused-in-process";
    return o;
}

struct Serialized
{
    std::string json;
    std::string trace;
};

Serialized
serialize(const exp::DriverOptions &o)
{
    const exp::Report r = exp::runExperiments(o);
    return {exp::reportJson(r).dump(), exp::chromeTraceForReport(r)};
}

} // namespace

TEST(Parallel, JobsProduceByteIdenticalOutputAcrossSeeds)
{
    // netperf_stream attaches full trace bundles (fig4 reports only
    // stats snapshots), so the trace comparison is non-vacuous.
    for (const std::uint64_t seed : {42ull, 1234ull}) {
        const Serialized serial =
            serialize(smallOpts("netperf_stream", seed, 1));
        const Serialized parallel =
            serialize(smallOpts("netperf_stream", seed, 8));
        EXPECT_EQ(serial.json, parallel.json) << "seed " << seed;
        EXPECT_EQ(serial.trace, parallel.trace) << "seed " << seed;
        EXPECT_GT(serial.trace.size(), 1000u)
            << "trace suspiciously small; comparison would be vacuous";
    }
}

TEST(Parallel, RepeatRepsMergeInOrder)
{
    const Serialized serial = serialize(smallOpts("fig4*", 42, 1, 3));
    const Serialized parallel =
        serialize(smallOpts("fig4*", 42, 8, 3));
    EXPECT_EQ(serial.json, parallel.json);
    EXPECT_EQ(serial.trace, parallel.trace);
    // Reps really are distinct units: rep=0/1/2 all present.
    for (const char *tag : {"\"rep\": \"0\"", "\"rep\": \"1\"",
                            "\"rep\": \"2\""})
        EXPECT_NE(serial.json.find(tag), std::string::npos) << tag;
}

TEST(Parallel, MultiExperimentSelectionKeepsRegistrationOrder)
{
    // A glob spanning several experiments; order in the report must be
    // the sorted registry order regardless of which worker finishes
    // first.
    const Serialized serial = serialize(smallOpts("fig*", 7, 1));
    const Serialized parallel = serialize(smallOpts("fig*", 7, 8));
    EXPECT_EQ(serial.json, parallel.json);
    EXPECT_EQ(serial.trace, parallel.trace);
}

TEST(Parallel, EffectiveJobsDefaultsToHardware)
{
    exp::DriverOptions o;
    EXPECT_GE(exp::effectiveJobs(o), 1u);
    o.jobs = 5;
    EXPECT_EQ(exp::effectiveJobs(o), 5u);
}

TEST(Parallel, JobsFlagParses)
{
    exp::DriverOptions o;
    std::string err;
    const char *argv[] = {"damn_bench", "--jobs=8"};
    ASSERT_TRUE(exp::parseArgs(2, argv, &o, &err)) << err;
    EXPECT_EQ(o.jobs, 8u);

    exp::DriverOptions bad;
    const char *argv0[] = {"damn_bench", "--jobs=0"};
    EXPECT_FALSE(exp::parseArgs(2, argv0, &bad, &err));
    const char *argvx[] = {"damn_bench", "--jobs=x"};
    EXPECT_FALSE(exp::parseArgs(2, argvx, &bad, &err));
}

TEST(Parallel, WorkerExceptionPropagates)
{
    // Register a throwing experiment on the fly; the pool must join
    // cleanly and rethrow on the caller's thread.
    static const bool reg [[maybe_unused]] =
        exp::registerExperiment([] {
            exp::Experiment e;
            e.name = "zz_test_parallel_throws";
            e.title = "always throws (test fixture)";
            e.paper = "test";
            e.run = [](exp::RunCtx &) {
                throw std::runtime_error("unit failure");
            };
            return e;
        }());
    exp::DriverOptions o = smallOpts("zz_test_parallel_throws", 42, 4);
    o.repeat = 4; // several units so the pool actually spins up
    EXPECT_THROW(exp::runExperiments(o), std::runtime_error);
}
