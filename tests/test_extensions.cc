/**
 * @file
 * Tests for extension features beyond the paper's core evaluation:
 * the latency histogram, per-segment latency reporting, and the
 * zero-copy (sendfile) fallback path of section 2.2.
 */

#include <gtest/gtest.h>

#include "net/stream.hh"
#include "sim/histogram.hh"
#include "workloads/netperf.hh"

using namespace damn;

// ---------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------

TEST(Histogram, BasicStats)
{
    sim::LatencyHistogram h;
    for (sim::TimeNs v : {100u, 200u, 300u, 400u, 500u})
        h.record(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.minNs(), 100u);
    EXPECT_EQ(h.maxNs(), 500u);
    EXPECT_NEAR(h.meanNs(), 300.0, 1.0);
}

TEST(Histogram, QuantilesWithinBucketResolution)
{
    sim::LatencyHistogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(sim::TimeNs(i));
    // 19% bucket resolution: quantiles land near the true values.
    EXPECT_NEAR(double(h.p50()), 500.0, 500.0 * 0.25);
    EXPECT_NEAR(double(h.p99()), 990.0, 990.0 * 0.25);
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
}

TEST(Histogram, WideRange)
{
    sim::LatencyHistogram h;
    h.record(1);
    h.record(1'000'000'000ull);
    h.record(1'000'000'000'000ull);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_GE(h.quantile(1.0), 1'000'000'000'000ull);
}

TEST(Histogram, ResetClears)
{
    sim::LatencyHistogram h;
    h.record(123);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.p99(), 0u);
}

TEST(Histogram, MonotoneQuantiles)
{
    sim::LatencyHistogram h;
    sim::Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        h.record(rng.between(50, 500000));
    sim::TimeNs prev = 0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        EXPECT_GE(h.quantile(q), prev);
        prev = h.quantile(q);
    }
}

// ---------------------------------------------------------------------
// Stream latency reporting
// ---------------------------------------------------------------------

TEST(StreamLatency, StrictHasFatterTailThanDamn)
{
    const auto run = [](dma::SchemeKind k) {
        work::NetperfOpts o;
        o.scheme = k;
        o.mode = work::NetMode::Rx;
        o.instances = 28;
        o.segBytes = 16 * 1024;
        o.costFactor = o.sysParams.cost.multiFlowFactor;
        o.runWindow.warmupNs = 5 * sim::kNsPerMs;
        o.runWindow.measureNs = 30 * sim::kNsPerMs;
        return work::runNetperf(o);
    };
    const auto strict = run(dma::SchemeKind::Strict);
    const auto dam = run(dma::SchemeKind::Damn);
    ASSERT_GT(strict.res.latency.count(), 0u);
    ASSERT_GT(dam.res.latency.count(), 0u);
    // Invalidation-lock queueing shows up in strict's tail latency.
    EXPECT_GT(strict.res.latency.p99(), dam.res.latency.p99() * 2);
}

TEST(StreamLatency, RecordsEverySegmentInWindow)
{
    work::NetperfOpts o;
    o.scheme = dma::SchemeKind::IommuOff;
    o.instances = 2;
    o.coreLimit = 2;
    o.runWindow.warmupNs = 2 * sim::kNsPerMs;
    o.runWindow.measureNs = 10 * sim::kNsPerMs;
    const auto run = work::runNetperf(o);
    std::uint64_t segs = 0;
    for (const auto &f : run.res.flows)
        segs += f.segments;
    EXPECT_EQ(run.res.latency.count(), segs);
}

// ---------------------------------------------------------------------
// Zero-copy (sendfile) fallback — paper section 2.2
// ---------------------------------------------------------------------

namespace {

struct ZeroCopyFixture : ::testing::Test
{
    ZeroCopyFixture()
    {
        net::SystemParams p;
        p.scheme = dma::SchemeKind::Damn;
        p.damnFallback = dma::SchemeKind::Strict;
        sys = std::make_unique<net::System>(p);
        nic = std::make_unique<net::NicDevice>(*sys, "mlx5_0");
        stack = std::make_unique<net::TcpStack>(*sys, *nic);
    }

    sim::CpuCursor
    cpu()
    {
        return sim::CpuCursor(sys->ctx.machine.core(0), sys->ctx.now());
    }

    /** Simulated page-cache pages holding file data. */
    std::vector<mem::Pa>
    fileCache(unsigned pages, std::uint8_t fill)
    {
        std::vector<mem::Pa> out;
        for (unsigned i = 0; i < pages; ++i) {
            const mem::Pfn pfn = sys->pageAlloc.allocPages(0, 0, true);
            sys->phys.fill(mem::pfnToPa(pfn), fill, mem::kPageSize);
            out.push_back(mem::pfnToPa(pfn));
        }
        return out;
    }

    std::unique_ptr<net::System> sys;
    std::unique_ptr<net::NicDevice> nic;
    std::unique_ptr<net::TcpStack> stack;
};

} // namespace

TEST_F(ZeroCopyFixture, FilePagesMapThroughFallback)
{
    auto c = cpu();
    const auto pages = fileCache(4, 0x42);
    net::SkBuff skb =
        stack->txBuildZeroCopy(c, pages, 4 * 4096, 1.0);

    // The head is DAMN; the file frags are legacy-mapped.
    const std::uint64_t damn_hits =
        sys->ctx.stats.get("damn.map_hits");
    EXPECT_EQ(damn_hits, 1u) << "only the header buffer is DAMN's";
    unsigned legacy = 0;
    for (const auto &seg : skb.segs)
        if (!core::isDamnIova(seg.dmaAddr))
            ++legacy;
    EXPECT_EQ(legacy, 4u);
    stack->txComplete(c, skb, 1.0);
    for (const mem::Pa pa : pages)
        sys->pageAlloc.freePages(mem::paToPfn(pa), 0);
}

TEST_F(ZeroCopyFixture, DeviceReadsFileDataWithoutCopies)
{
    auto c = cpu();
    const auto pages = fileCache(2, 0x6c);
    net::SkBuff skb = stack->txBuildZeroCopy(c, pages, 8192, 1.0);

    // No user->kernel copy happened: tx path stats show a zero-copy
    // segment, and the device reads the page-cache bytes directly.
    EXPECT_EQ(sys->ctx.stats.get("net.tx_zerocopy_segments"), 1u);
    std::vector<std::uint8_t> wire(4096);
    const auto sg = stack->driver.sgOf(skb);
    ASSERT_EQ(sg.size(), 3u); // head + 2 file pages
    EXPECT_TRUE(
        nic->dmaRead(c.time, sg[1].first, wire.data(), 4096).ok);
    EXPECT_EQ(wire[0], 0x6c);
    EXPECT_EQ(wire[4095], 0x6c);
    stack->txComplete(c, skb, 1.0);
    for (const mem::Pa pa : pages)
        sys->pageAlloc.freePages(mem::paToPfn(pa), 0);
}

TEST_F(ZeroCopyFixture, FallbackProtectionStillApplies)
{
    // With a *strict* fallback, the file pages become inaccessible the
    // moment the zero-copy skb completes — full protection maintained
    // for the path DAMN does not cover.
    auto c = cpu();
    const auto pages = fileCache(1, 0x31);
    net::SkBuff skb = stack->txBuildZeroCopy(c, pages, 4096, 1.0);
    const auto sg = stack->driver.sgOf(skb);
    const iommu::Iova file_iova = sg[1].first;
    EXPECT_TRUE(nic->dmaTouch(c.time, file_iova, 64, false).ok);

    stack->txComplete(c, skb, 1.0);
    EXPECT_TRUE(nic->dmaTouch(c.time, file_iova, 64, false).fault)
        << "strict fallback must revoke access at unmap";
    for (const mem::Pa pa : pages)
        sys->pageAlloc.freePages(mem::paToPfn(pa), 0);
}

TEST_F(ZeroCopyFixture, PageCachePagesSurviveSkbFree)
{
    auto c = cpu();
    const auto pages = fileCache(2, 0x77);
    net::SkBuff skb = stack->txBuildZeroCopy(c, pages, 8192, 1.0);
    stack->txComplete(c, skb, 1.0);
    // Borrowed frags: the page-cache data is untouched after free.
    EXPECT_EQ(sys->phys.readByte(pages[0]), 0x77);
    EXPECT_EQ(sys->phys.readByte(pages[1] + 4095), 0x77);
    for (const mem::Pa pa : pages)
        sys->pageAlloc.freePages(mem::paToPfn(pa), 0);
}
