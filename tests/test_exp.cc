/**
 * @file
 * Tests for the experiment layer: the registry, the glob/argument
 * parsing, the JSON value type, and — the expensive part — one
 * end-to-end sweep of every registered experiment at tiny windows,
 * asserting the --json schema and its bit-identical determinism.
 */

#include <gtest/gtest.h>

#include <set>

#include "exp/driver.hh"

using namespace damn;
using exp::Json;

namespace {

TEST(Registry, AllTwentyExperimentsRegistered)
{
    const auto all = exp::allExperiments();
    ASSERT_EQ(all.size(), 20u);

    std::set<std::string> names;
    for (const exp::Experiment *e : all) {
        EXPECT_TRUE(names.insert(e->name).second) << e->name;
        EXPECT_FALSE(e->title.empty()) << e->name;
        EXPECT_FALSE(e->paper.empty()) << e->name;
        EXPECT_TRUE(bool(e->run)) << e->name;
    }
    for (const char *want :
         {"fig1_tradeoffs", "fig2_graph500", "fig4_singlecore",
          "fig5_multicore", "fig6_membw", "fig7_memcached",
          "fig8_tocttou", "fig9_stock_pages", "fig10_memory",
          "fig11_nvme", "table1_matrix", "table3_variants",
          "latency_profile", "micro_allocator", "fault_storm",
          "chaos_soak", "netperf_stream", "backend_matrix",
          "rdma_pagefault"})
        EXPECT_NE(names.count(want), 0u) << want;
}

TEST(Registry, LookupAndSchemeNames)
{
    EXPECT_NE(exp::findExperiment("fig4_singlecore"), nullptr);
    EXPECT_EQ(exp::findExperiment("nope"), nullptr);

    EXPECT_EQ(exp::defaultSchemes().size(), 5u);
    dma::SchemeKind k;
    ASSERT_TRUE(exp::schemeFromName("damn", &k));
    EXPECT_EQ(k, dma::SchemeKind::Damn);
    ASSERT_TRUE(exp::schemeFromName("iommu-off", &k));
    EXPECT_EQ(k, dma::SchemeKind::IommuOff);
    EXPECT_FALSE(exp::schemeFromName("passthrough", &k));
}

TEST(Registry, GlobMatch)
{
    EXPECT_TRUE(exp::globMatch("fig4*", "fig4_singlecore"));
    EXPECT_TRUE(exp::globMatch("*", "anything"));
    EXPECT_TRUE(exp::globMatch("fig?_membw", "fig6_membw"));
    EXPECT_TRUE(exp::globMatch("*matrix", "table1_matrix"));
    EXPECT_TRUE(exp::globMatch("f*g*5*", "fig5_multicore"));
    EXPECT_FALSE(exp::globMatch("fig4*", "fig5_multicore"));
    EXPECT_FALSE(exp::globMatch("fig4", "fig4_singlecore"));
    EXPECT_FALSE(exp::globMatch("", "x"));
    EXPECT_TRUE(exp::globMatch("", ""));
}

TEST(Driver, ParseArgs)
{
    const char *argv[] = {"damn_bench",   "--only=fig4*",
                          "--schemes=damn,iommu-off",
                          "--repeat=3",   "--measure-ms=2",
                          "--warmup-ms=1", "--seed=7",
                          "--json=/tmp/x.json"};
    exp::DriverOptions o;
    std::string err;
    ASSERT_TRUE(exp::parseArgs(8, argv, &o, &err)) << err;
    EXPECT_EQ(o.only, "fig4*");
    ASSERT_EQ(o.schemes.size(), 2u);
    EXPECT_EQ(o.schemes[0], dma::SchemeKind::Damn);
    EXPECT_EQ(o.schemes[1], dma::SchemeKind::IommuOff);
    EXPECT_EQ(o.repeat, 3u);
    EXPECT_EQ(o.measureNs, 2 * sim::kNsPerMs);
    EXPECT_EQ(o.warmupNs, 1 * sim::kNsPerMs);
    EXPECT_EQ(o.seed, 7u);
    EXPECT_EQ(o.jsonPath, "/tmp/x.json");
}

TEST(Driver, ParseArgsRejectsBadInput)
{
    const auto bad = [](std::initializer_list<const char *> extra) {
        std::vector<const char *> argv = {"damn_bench"};
        argv.insert(argv.end(), extra);
        exp::DriverOptions o;
        std::string err;
        const bool ok =
            exp::parseArgs(int(argv.size()), argv.data(), &o, &err);
        EXPECT_FALSE(err.empty() || ok);
        return !ok;
    };
    EXPECT_TRUE(bad({"--schemes=bogus"}));
    EXPECT_TRUE(bad({"--repeat=0"}));
    EXPECT_TRUE(bad({"--repeat=x"}));
    EXPECT_TRUE(bad({"--measure-ms=0"}));
    EXPECT_TRUE(bad({"--json="}));
    EXPECT_TRUE(bad({"--frobnicate"}));
    EXPECT_TRUE(bad({"positional"}));
}

TEST(Driver, SelectionHonorsGlob)
{
    exp::DriverOptions o;
    o.only = "table*";
    const auto sel = exp::selectExperiments(o);
    ASSERT_EQ(sel.size(), 2u);
    EXPECT_EQ(sel[0]->name, "table1_matrix");
    EXPECT_EQ(sel[1]->name, "table3_variants");
}

TEST(JsonValue, BuildDumpParseRoundTrip)
{
    Json doc = Json::object();
    doc.set("int", std::int64_t(-3));
    doc.set("uint", std::uint64_t(18446744073709551615ull));
    doc.set("double", 0.1);
    doc.set("string", "a \"quoted\"\n\tstring");
    doc.set("bool", true);
    doc.set("null", Json());
    Json arr = Json::array();
    arr.push(1);
    arr.push("two");
    doc.set("arr", std::move(arr));
    doc.set("empty_obj", Json::object());
    doc.set("empty_arr", Json::array());

    const std::string text = doc.dump();
    const Json back = Json::parse(text);
    // Round-trip must preserve bytes: reserialize and compare.
    EXPECT_EQ(back.dump(), text);
    EXPECT_EQ(back.find("int")->asInt(), -3);
    EXPECT_EQ(back.find("uint")->asUint(), 18446744073709551615ull);
    EXPECT_DOUBLE_EQ(back.find("double")->asDouble(), 0.1);
    EXPECT_EQ(back.find("string")->str(), "a \"quoted\"\n\tstring");
    EXPECT_TRUE(back.find("bool")->boolean());
    EXPECT_EQ(back.find("arr")->items().size(), 2u);
    EXPECT_THROW(Json::parse("{\"unterminated\": "),
                 std::runtime_error);
    EXPECT_THROW(Json::parse("[1, 2] trailing"), std::runtime_error);
}

/**
 * The expensive end-to-end contract, in one sweep: every registered
 * experiment runs at tiny windows, produces at least one run with at
 * least one metric under the documented schema, and the whole report
 * is bit-identical when re-run at the same seed.
 */
TEST(EndToEnd, EveryExperimentRunsAndJsonIsDeterministic)
{
    exp::DriverOptions o;
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 2 * sim::kNsPerMs;

    const exp::Report r1 = exp::runExperiments(o);
    const std::string json1 = exp::reportJson(r1).dump();
    const std::string json2 =
        exp::reportJson(exp::runExperiments(o)).dump();
    EXPECT_EQ(json1, json2) << "same seed must be bit-identical";

    ASSERT_EQ(r1.experiments.size(), exp::allExperiments().size());
    for (const exp::ExperimentResult &er : r1.experiments) {
        EXPECT_FALSE(er.runs.empty()) << er.exp->name;
        for (const exp::Run &run : er.runs) {
            EXPECT_FALSE(run.scheme.empty()) << er.exp->name;
            EXPECT_FALSE(run.metrics.empty()) << er.exp->name;
            for (const exp::Metric &m : run.metrics)
                EXPECT_FALSE(m.name.empty()) << er.exp->name;
        }
    }

    // The flattened view keys every metric value.
    const auto rows = exp::flatten(r1);
    std::size_t metric_count = 0;
    for (const exp::ExperimentResult &er : r1.experiments)
        for (const exp::Run &run : er.runs)
            metric_count += run.metrics.size();
    EXPECT_EQ(rows.size(), metric_count);
    for (const exp::ResultRow &row : rows) {
        EXPECT_FALSE(row.experiment.empty());
        EXPECT_NE(row.stats, nullptr);
    }

    // Schema round-trip: parse the emitted JSON and check the
    // documented keys, then reserialize byte-identically.
    const Json doc = Json::parse(json1);
    EXPECT_EQ(doc.dump(), json1);
    ASSERT_NE(doc.find("schema_version"), nullptr);
    EXPECT_EQ(doc.find("schema_version")->asInt(),
              exp::kJsonSchemaVersion);
    EXPECT_EQ(doc.find("generator")->str(), "damn_bench");
    EXPECT_EQ(doc.find("seed")->asUint(), o.seed);
    EXPECT_EQ(doc.find("schemes")->items().size(), 5u);
    const Json *exps = doc.find("experiments");
    ASSERT_NE(exps, nullptr);
    ASSERT_EQ(exps->items().size(), r1.experiments.size());
    for (const Json &je : exps->items()) {
        ASSERT_NE(je.find("name"), nullptr);
        ASSERT_NE(je.find("paper"), nullptr);
        const Json *runs = je.find("runs");
        ASSERT_NE(runs, nullptr) << je.find("name")->str();
        for (const Json &jr : runs->items()) {
            ASSERT_NE(jr.find("scheme"), nullptr);
            ASSERT_NE(jr.find("params"), nullptr);
            const Json *metrics = jr.find("metrics");
            ASSERT_NE(metrics, nullptr);
            EXPECT_FALSE(metrics->members().empty());
            for (const auto &[name, jm] : metrics->members()) {
                EXPECT_FALSE(name.empty());
                ASSERT_NE(jm.find("value"), nullptr);
                ASSERT_NE(jm.find("unit"), nullptr);
            }
            ASSERT_NE(jr.find("stats"), nullptr);
        }
    }
}

/** Different seeds must be allowed to differ (the seed is real). */
TEST(EndToEnd, SeedReachesStochasticExperiments)
{
    exp::DriverOptions o;
    o.only = "fault_storm";
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 4 * sim::kNsPerMs;
    o.schemes = {dma::SchemeKind::Damn};

    const std::string a = exp::reportJson(exp::runExperiments(o)).dump();
    const std::string b = exp::reportJson(exp::runExperiments(o)).dump();
    EXPECT_EQ(a, b);
    o.seed = 1234567;
    const std::string c = exp::reportJson(exp::runExperiments(o)).dump();
    EXPECT_NE(a, c) << "seed must reach the fault injector";
}

TEST(EndToEnd, SchemeFilterAndRepeatShapeTheReport)
{
    exp::DriverOptions o;
    o.only = "fig7_memcached";
    o.warmupNs = 1 * sim::kNsPerMs;
    o.measureNs = 2 * sim::kNsPerMs;
    o.schemes = {dma::SchemeKind::IommuOff, dma::SchemeKind::Damn};
    o.repeat = 2;

    const exp::Report r = exp::runExperiments(o);
    ASSERT_EQ(r.experiments.size(), 1u);
    ASSERT_EQ(r.experiments[0].runs.size(), 4u);
    for (const exp::Run &run : r.experiments[0].runs) {
        ASSERT_FALSE(run.params.empty());
        EXPECT_EQ(run.params[0].first, "rep");
    }
    EXPECT_EQ(r.experiments[0].runs[0].scheme, "iommu-off");
    EXPECT_EQ(r.experiments[0].runs[1].scheme, "damn");
    EXPECT_EQ(r.experiments[0].runs[2].params[0].second, "1");
}

} // namespace
