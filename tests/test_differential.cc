/**
 * @file
 * Differential scheme-equivalence suite.
 *
 * The four DMA-API protection schemes (iommu-off, strict, deferred,
 * shadow) are *performance/security* variants: none of them is allowed
 * to change what the application observes.  This suite runs the same
 * seeded functional DMA workload under every scheme and asserts:
 *
 *  1. delivered payload bytes are byte-identical across schemes
 *     (RX: device-written data as read by the kernel after unmap;
 *      TX: buffer data as seen by the device on the wire);
 *  2. the app-visible delivery order is identical;
 *  3. the *security* outcomes differ exactly as Table 1 predicts —
 *     equivalence covers benign traffic, not attacks.
 *
 * A deliberate-bug fixture corrupts one delivered byte and checks the
 * comparison machinery actually detects the divergence (the suite must
 * be able to fail).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <sstream>

#include "dma/faultable.hh"
#include "iommu/ats.hh"
#include "iommu/sva.hh"
#include "net/system.hh"
#include "sim/rng.hh"
#include "workloads/attacks.hh"

using namespace damn;

namespace {

/** One delivered packet as the application would observe it. */
struct Delivered
{
    unsigned id = 0;                   //!< workload packet id
    std::vector<std::uint8_t> payload; //!< bytes after the DMA path
};

/** Everything one scheme delivered for a given seed. */
struct SchemeRun
{
    std::string scheme;
    std::vector<Delivered> rx; //!< device -> kernel, in delivery order
    std::vector<Delivered> tx; //!< kernel -> device ("wire" bytes)
};

constexpr unsigned kPackets = 48;
constexpr unsigned kWindow = 8; //!< concurrently mapped RX buffers

/**
 * Run the seeded workload under @p kind.  @p corrupt_packet, when set,
 * flips one byte of that RX packet's buffer after the unmap — the
 * injected "scheme bug" the detection test relies on.
 */
SchemeRun
runScheme(dma::SchemeKind kind, std::uint64_t seed,
          std::optional<unsigned> corrupt_packet = std::nullopt,
          iommu::BackendKind backend = iommu::BackendKind::Vtd)
{
    net::SystemParams p;
    p.scheme = kind;
    p.backend = backend;
    net::System sys(p);
    sys.ctx.functionalData = true; // payload bytes must actually move

    dma::Device dev(sys.ctx, "diffnic", sys.mmu, sys.phys);
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);

    SchemeRun out;
    out.scheme = dma::schemeKindName(kind);
    sim::Rng rng(seed);

    struct Inflight
    {
        unsigned id;
        mem::Pfn pfn;
        unsigned order;
        std::uint32_t len;
        iommu::Iova iova;
        std::vector<std::uint8_t> wire; //!< bytes the device will write
    };

    // --- RX: device writes a window of mapped buffers, the kernel
    // unmaps and reads them in map order (the app-visible order).
    std::vector<Inflight> window;
    unsigned next_id = 0;
    const auto drainOne = [&]() {
        Inflight f = window.front();
        window.erase(window.begin());
        // The device writes while the buffer is mapped...
        const dma::DmaOutcome w =
            dev.dmaWrite(cpu.time, f.iova, f.wire.data(), f.len);
        EXPECT_TRUE(w.ok) << out.scheme << " packet " << f.id;
        // ...then the driver unmaps (shadow copies back here) and the
        // stack reads what landed.
        sys.dmaApi->unmap(cpu, dev, f.iova, f.len,
                          dma::Dir::FromDevice);
        const mem::Pa pa = mem::pfnToPa(f.pfn);
        if (corrupt_packet && *corrupt_packet == f.id) {
            // The injected bug: one delivered byte silently flips.
            const std::uint8_t b = sys.phys.readByte(pa + f.len / 2);
            sys.phys.fill(pa + f.len / 2, std::uint8_t(b ^ 0x01), 1);
        }
        Delivered d;
        d.id = f.id;
        d.payload.resize(f.len);
        sys.phys.read(pa, d.payload.data(), f.len);
        out.rx.push_back(std::move(d));
        sys.pageAlloc.freePages(f.pfn, f.order);
    };

    while (next_id < kPackets || !window.empty()) {
        if (next_id < kPackets && window.size() < kWindow) {
            Inflight f;
            f.id = next_id++;
            f.len = std::uint32_t(rng.between(1, 3 * mem::kPageSize));
            f.order = 0;
            while ((mem::kPageSize << f.order) < f.len)
                ++f.order;
            f.pfn = sys.pageAlloc.allocPages(f.order, 0);
            EXPECT_NE(f.pfn, mem::kInvalidPfn);
            // Poison so undelivered bytes cannot masquerade as data.
            sys.phys.fill(mem::pfnToPa(f.pfn), 0xee, f.len);
            f.wire.resize(f.len);
            for (auto &b : f.wire)
                b = std::uint8_t(rng.below(256));
            f.iova = sys.dmaApi->map(cpu, dev, mem::pfnToPa(f.pfn),
                                     f.len, dma::Dir::FromDevice);
            window.push_back(std::move(f));
        } else {
            drainOne();
        }
    }

    // --- TX: the kernel fills buffers, maps them, and the device
    // reads them out (what would go on the wire).
    for (unsigned i = 0; i < kPackets / 2; ++i) {
        const auto len =
            std::uint32_t(rng.between(1, 2 * mem::kPageSize));
        unsigned order = 0;
        while ((mem::kPageSize << order) < len)
            ++order;
        const mem::Pfn pfn = sys.pageAlloc.allocPages(order, 0);
        EXPECT_NE(pfn, mem::kInvalidPfn) << out.scheme;
        std::vector<std::uint8_t> src(len);
        for (auto &b : src)
            b = std::uint8_t(rng.below(256));
        sys.phys.write(mem::pfnToPa(pfn), src.data(), len);

        const iommu::Iova iova = sys.dmaApi->map(
            cpu, dev, mem::pfnToPa(pfn), len, dma::Dir::ToDevice);
        Delivered d;
        d.id = kPackets + i;
        d.payload.resize(len);
        const dma::DmaOutcome r =
            dev.dmaRead(cpu.time, iova, d.payload.data(), len);
        EXPECT_TRUE(r.ok) << out.scheme << " tx packet " << d.id;
        sys.dmaApi->unmap(cpu, dev, iova, len, dma::Dir::ToDevice);
        out.tx.push_back(std::move(d));
        sys.pageAlloc.freePages(pfn, order);
    }
    return out;
}

/** First divergence between two runs, or nullopt when equivalent. */
std::optional<std::string>
firstDivergence(const SchemeRun &a, const SchemeRun &b)
{
    const auto diffStreams =
        [&](const std::vector<Delivered> &x,
            const std::vector<Delivered> &y,
            const char *dir) -> std::optional<std::string> {
        if (x.size() != y.size())
            return std::string(dir) + " packet count differs";
        for (std::size_t i = 0; i < x.size(); ++i) {
            std::ostringstream msg;
            if (x[i].id != y[i].id) {
                msg << dir << " delivery order diverges at slot " << i
                    << ": " << a.scheme << " delivered packet "
                    << x[i].id << ", " << b.scheme << " delivered "
                    << y[i].id;
                return msg.str();
            }
            if (x[i].payload != y[i].payload) {
                std::size_t off = 0;
                while (off < x[i].payload.size() &&
                       off < y[i].payload.size() &&
                       x[i].payload[off] == y[i].payload[off])
                    ++off;
                msg << dir << " payload of packet " << x[i].id
                    << " diverges at byte " << off << " ("
                    << a.scheme << " vs " << b.scheme << ")";
                return msg.str();
            }
        }
        return std::nullopt;
    };
    if (auto d = diffStreams(a.rx, b.rx, "rx"))
        return d;
    return diffStreams(a.tx, b.tx, "tx");
}

const dma::SchemeKind kSchemes[] = {
    dma::SchemeKind::IommuOff,
    dma::SchemeKind::Strict,
    dma::SchemeKind::Deferred,
    dma::SchemeKind::Shadow,
};

} // namespace

// ---------------------------------------------------------------------
// Equivalence: all four schemes deliver identical bytes in identical
// order for the same seed.
// ---------------------------------------------------------------------

TEST(Differential, SchemesDeliverIdenticalPayloads)
{
    const SchemeRun base = runScheme(dma::SchemeKind::IommuOff, 42);
    ASSERT_EQ(base.rx.size(), kPackets);
    for (const dma::SchemeKind k : kSchemes) {
        if (k == dma::SchemeKind::IommuOff)
            continue;
        const SchemeRun other = runScheme(k, 42);
        const auto d = firstDivergence(base, other);
        EXPECT_FALSE(d.has_value()) << *d;
    }
}

TEST(Differential, EquivalenceHoldsAcrossSeeds)
{
    for (const std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
        const SchemeRun base =
            runScheme(dma::SchemeKind::Shadow, seed);
        const SchemeRun other =
            runScheme(dma::SchemeKind::Strict, seed);
        const auto d = firstDivergence(base, other);
        EXPECT_FALSE(d.has_value()) << "seed " << seed << ": " << *d;
    }
}

TEST(Differential, SameSchemeSameSeedIsDeterministic)
{
    for (const dma::SchemeKind k : kSchemes) {
        const SchemeRun a = runScheme(k, 99);
        const SchemeRun b = runScheme(k, 99);
        const auto d = firstDivergence(a, b);
        EXPECT_FALSE(d.has_value())
            << dma::schemeKindName(k) << ": " << *d;
    }
}

// ---------------------------------------------------------------------
// Backend equivalence: the IOMMU hardware model (VT-d vs SMMUv3) is a
// *timing* variant — it must never change what the application sees.
// ---------------------------------------------------------------------

TEST(Differential, SchemesDeliverIdenticalPayloadsOnSmmuV3)
{
    const SchemeRun base =
        runScheme(dma::SchemeKind::IommuOff, 42, std::nullopt,
                  iommu::BackendKind::SmmuV3);
    ASSERT_EQ(base.rx.size(), kPackets);
    for (const dma::SchemeKind k : kSchemes) {
        if (k == dma::SchemeKind::IommuOff)
            continue;
        const SchemeRun other = runScheme(k, 42, std::nullopt,
                                          iommu::BackendKind::SmmuV3);
        const auto d = firstDivergence(base, other);
        EXPECT_FALSE(d.has_value()) << *d;
    }
}

TEST(Differential, BackendsDeliverIdenticalPayloads)
{
    for (const dma::SchemeKind k : kSchemes) {
        const SchemeRun vtd = runScheme(k, 42, std::nullopt,
                                        iommu::BackendKind::Vtd);
        const SchemeRun smmu = runScheme(k, 42, std::nullopt,
                                         iommu::BackendKind::SmmuV3);
        const auto d = firstDivergence(vtd, smmu);
        EXPECT_FALSE(d.has_value())
            << dma::schemeKindName(k) << " vtd vs smmuv3: " << *d;
    }
}

// ---------------------------------------------------------------------
// The suite can fail: an injected one-byte corruption in one scheme's
// delivery path must be detected as a divergence.
// ---------------------------------------------------------------------

TEST(Differential, InjectedCorruptionIsDetected)
{
    const SchemeRun good = runScheme(dma::SchemeKind::IommuOff, 42);
    const SchemeRun bad =
        runScheme(dma::SchemeKind::Strict, 42, /*corrupt_packet=*/7);
    const auto d = firstDivergence(good, bad);
    ASSERT_TRUE(d.has_value())
        << "comparison machinery missed an injected corruption";
    EXPECT_NE(d->find("packet 7"), std::string::npos) << *d;
}

TEST(Differential, InjectedReorderIsDetected)
{
    SchemeRun a = runScheme(dma::SchemeKind::IommuOff, 42);
    SchemeRun b = runScheme(dma::SchemeKind::Deferred, 42);
    ASSERT_GE(b.rx.size(), 2u);
    std::swap(b.rx[0], b.rx[1]); // a buggy scheme reorders delivery
    const auto d = firstDivergence(a, b);
    ASSERT_TRUE(d.has_value());
    EXPECT_NE(d->find("delivery order"), std::string::npos) << *d;
}

// ---------------------------------------------------------------------
// Faulting RDMA (ATS/PRI): payloads that land through the page-fault
// path — device stalls, page request, service, resume — must be just
// as scheme- and backend-invariant as the pinned-buffer paths above.
// ---------------------------------------------------------------------

namespace {

/** What the faulting-RDMA workload delivered into pageable memory. */
struct FaultingRun
{
    std::string label;
    std::vector<Delivered> messages; //!< bytes as they landed
    std::uint64_t faultsServiced = 0;
};

FaultingRun
runFaultingRdma(dma::SchemeKind kind, std::uint64_t seed,
                iommu::BackendKind backend = iommu::BackendKind::Vtd)
{
    net::SystemParams p;
    p.scheme = kind;
    p.backend = backend;
    net::System sys(p);
    sys.ctx.functionalData = true;

    dma::Device dev(sys.ctx, "rdmadiff", sys.mmu, sys.phys);
    iommu::SvaDomain sva(sys.ctx, sys.mmu, sys.pageAlloc,
                         /*residentLimitPages=*/8);
    iommu::AtsAgent ats(sys.ctx, sys.mmu, sva.domain());
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    sim::Rng rng(seed);

    // One pinned descriptor page keeps the scheme-priced DMA-API
    // control path in the loop, as the real workload does.
    const mem::Pfn descPfn = sys.pageAlloc.allocPages(0, 0);
    const mem::Pa descPa = mem::pfnToPa(descPfn);

    FaultingRun out;
    out.label = std::string(dma::schemeKindName(kind)) + "/" +
                iommu::backendKindName(backend);
    constexpr iommu::Iova kBase = 0x7f0000000000ull;
    constexpr unsigned kMessages = 24;
    constexpr unsigned kWindowPages = 16; //!< > resident limit: evicts

    for (unsigned i = 0; i < kMessages; ++i) {
        const iommu::Iova d = sys.dmaApi->map(cpu, dev, descPa, 64,
                                              dma::Dir::ToDevice);
        if (d != dma::kMapFailed)
            sys.dmaApi->unmap(cpu, dev, d, 64, dma::Dir::ToDevice);

        const iommu::Iova va =
            kBase + rng.below(kWindowPages) * mem::kPageSize;
        const auto len =
            std::uint32_t(rng.between(1, 3 * mem::kPageSize));
        std::vector<std::uint8_t> wire(len);
        for (auto &b : wire)
            b = std::uint8_t(rng.below(256));

        const dma::FaultableDmaResult w = dma::faultableDma(
            cpu, dev, ats, sva, va, wire.data(), len,
            /*is_write=*/true);
        EXPECT_TRUE(w.ok) << out.label << " message " << i;
        out.faultsServiced += w.faultsServiced;

        // Read back through a second faultable DMA: pages the write
        // left resident hit the ATC, pages the LRU already evicted
        // re-fault — the full device-visible landing bytes either way.
        Delivered msg;
        msg.id = i;
        msg.payload.resize(len);
        const dma::FaultableDmaResult r = dma::faultableDma(
            cpu, dev, ats, sva, va, msg.payload.data(), len,
            /*is_write=*/false);
        EXPECT_TRUE(r.ok) << out.label << " message " << i;
        out.faultsServiced += r.faultsServiced;
        out.messages.push_back(std::move(msg));
    }
    sys.pageAlloc.freePages(descPfn, 0);
    return out;
}

std::optional<std::string>
faultingDivergence(const FaultingRun &a, const FaultingRun &b)
{
    if (a.messages.size() != b.messages.size())
        return std::string("message count differs");
    for (std::size_t i = 0; i < a.messages.size(); ++i) {
        if (a.messages[i].payload != b.messages[i].payload)
            return "message " + std::to_string(i) +
                   " payload diverges (" + a.label + " vs " + b.label +
                   ")";
    }
    return std::nullopt;
}

} // namespace

TEST(Differential, FaultingRdmaDeliversIdenticalPayloadsAcrossSchemes)
{
    for (const iommu::BackendKind bk :
         {iommu::BackendKind::Vtd, iommu::BackendKind::SmmuV3}) {
        const FaultingRun base =
            runFaultingRdma(dma::SchemeKind::IommuOff, 42, bk);
        EXPECT_GT(base.faultsServiced, 0u)
            << "workload never exercised the PRI path";
        for (const dma::SchemeKind k : kSchemes) {
            if (k == dma::SchemeKind::IommuOff)
                continue;
            const FaultingRun other = runFaultingRdma(k, 42, bk);
            const auto d = faultingDivergence(base, other);
            EXPECT_FALSE(d.has_value()) << *d;
            EXPECT_EQ(base.faultsServiced, other.faultsServiced)
                << other.label;
        }
    }
}

TEST(Differential, FaultingRdmaDeliversIdenticalPayloadsAcrossBackends)
{
    for (const dma::SchemeKind k : kSchemes) {
        const FaultingRun vtd =
            runFaultingRdma(k, 7, iommu::BackendKind::Vtd);
        const FaultingRun smmu =
            runFaultingRdma(k, 7, iommu::BackendKind::SmmuV3);
        const auto d = faultingDivergence(vtd, smmu);
        EXPECT_FALSE(d.has_value())
            << dma::schemeKindName(k) << ": " << *d;
    }
}

// ---------------------------------------------------------------------
// Security outcomes are NOT equivalent: the per-scheme attack matrix
// (paper Table 1) is part of the differential contract.
// ---------------------------------------------------------------------

TEST(Differential, SecurityOutcomesMatchTable1)
{
    struct Expect
    {
        dma::SchemeKind kind;
        bool colocation, staleWindow, tocttou;
    };
    const Expect table[] = {
        {dma::SchemeKind::IommuOff, true, true, true},
        {dma::SchemeKind::Strict, true, false, false},
        {dma::SchemeKind::Deferred, true, true, true},
        {dma::SchemeKind::Shadow, false, false, false},
    };
    // The protection matrix is a property of the *scheme*, not of the
    // IOMMU hardware model: pin it on both backends.
    for (const iommu::BackendKind bk :
         {iommu::BackendKind::Vtd, iommu::BackendKind::SmmuV3}) {
        for (const Expect &e : table) {
            const work::AttackReport r = work::runAttacks(e.kind, bk);
            EXPECT_EQ(r.colocationTheft, e.colocation)
                << dma::schemeKindName(e.kind) << " on "
                << iommu::backendKindName(bk);
            EXPECT_EQ(r.staleWindowTheft, e.staleWindow)
                << dma::schemeKindName(e.kind) << " on "
                << iommu::backendKindName(bk);
            EXPECT_EQ(r.tocttou, e.tocttou)
                << dma::schemeKindName(e.kind) << " on "
                << iommu::backendKindName(bk);
        }
    }
}
